package repro_test

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"repro"
)

// TestPublicAPI exercises the root re-exports of the flow pipeline —
// the documented entry point (examples/quickstart) must keep working
// against exactly this surface.
func TestPublicAPI(t *testing.T) {
	src := repro.Source{
		Name:       "pub",
		Text:       `void twice(int[] a, int n) { for (int i = 0; i < n; i = i + 1) { a[i] = 2 * a[i]; } }`,
		Func:       "twice",
		ArraySizes: map[string]int{"a": 4},
		ScalarArgs: map[string]int64{"n": 4},
		Inputs:     map[string][]int64{"a": {1, 2, 3, 4}},
	}
	var progress strings.Builder
	out, err := repro.Run(src,
		repro.WithBackend(repro.DefaultBackend),
		repro.WithClock(repro.DefaultClockPeriod),
		repro.WithObserver(repro.NewProgressObserver(&progress)),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !out.OK() {
		t.Fatalf("verdict: %+v", out.Verdict)
	}
	if got := out.Sim.Memories["a"]; len(got) != 4 || got[3] != 8 {
		t.Fatalf("a=%v", got)
	}
	if !strings.Contains(progress.String(), "configuration") {
		t.Fatalf("progress=%q", progress.String())
	}
	infos := repro.Backends()
	if infos[0].Name != repro.DefaultBackend || infos[0].Kind != "event" {
		t.Fatalf("Backends()=%v", infos)
	}
	if names := repro.BackendNames(); names[0] != repro.DefaultBackend {
		t.Fatalf("BackendNames()=%v", names)
	}
	if _, err := repro.LookupBackend("heapref"); err != nil {
		t.Fatal(err)
	}
	if _, err := repro.New(repro.WithBackend("bogus")); err == nil {
		t.Fatal("bogus backend must fail")
	}
}

// TestPublicServiceAPI exercises the root re-exports of the service
// surface: a server mounted on a test listener, driven through the
// repro.Client with a builder-chained request, plus the session layer
// on a context-prepared design.
func TestPublicServiceAPI(t *testing.T) {
	ts := httptest.NewServer(repro.NewServer(repro.ServerConfig{}))
	defer ts.Close()
	client := repro.NewClient(ts.URL, ts.Client())

	req := repro.NewRequest("hamming", map[string]int{"words": 8}).
		WithBackend(repro.DefaultBackend).WithRounds(2)
	res, err := client.Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Summary.Passed || res.Summary.Rounds != 2 {
		t.Fatalf("summary: %+v", res.Summary)
	}
	st, err := client.Stats(context.Background())
	if err != nil || st.Sessions != 1 {
		t.Fatalf("stats: %+v %v", st, err)
	}

	p, err := repro.New()
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.PrepareContext(context.Background(), repro.Source{
		Name:       "pub",
		Text:       `void twice(int[] a, int n) { for (int i = 0; i < n; i = i + 1) { a[i] = 2 * a[i]; } }`,
		Func:       "twice",
		ArraySizes: map[string]int{"a": 4},
		ScalarArgs: map[string]int64{"n": 4},
		Inputs:     map[string][]int64{"a": {1, 2, 3, 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	sess := repro.NewSession(repro.PoolKey{Workload: "pub"}, d, 2)
	out, err := sess.RunContext(context.Background())
	if err != nil || !out.OK() {
		t.Fatalf("session round: %v %+v", err, out)
	}
	if ss := sess.Stats(); ss.Runs != 1 || ss.Elaborations == 0 {
		t.Fatalf("session stats: %+v", ss)
	}
}
