package repro_test

import (
	"strings"
	"testing"

	"repro"
)

// TestPublicAPI exercises the root re-exports of the flow pipeline —
// the documented entry point (examples/quickstart) must keep working
// against exactly this surface.
func TestPublicAPI(t *testing.T) {
	src := repro.Source{
		Name:       "pub",
		Text:       `void twice(int[] a, int n) { for (int i = 0; i < n; i = i + 1) { a[i] = 2 * a[i]; } }`,
		Func:       "twice",
		ArraySizes: map[string]int{"a": 4},
		ScalarArgs: map[string]int64{"n": 4},
		Inputs:     map[string][]int64{"a": {1, 2, 3, 4}},
	}
	var progress strings.Builder
	out, err := repro.Run(src,
		repro.WithBackend(repro.DefaultBackend),
		repro.WithClock(repro.DefaultClockPeriod),
		repro.WithObserver(repro.NewProgressObserver(&progress)),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !out.OK() {
		t.Fatalf("verdict: %+v", out.Verdict)
	}
	if got := out.Sim.Memories["a"]; len(got) != 4 || got[3] != 8 {
		t.Fatalf("a=%v", got)
	}
	if !strings.Contains(progress.String(), "configuration") {
		t.Fatalf("progress=%q", progress.String())
	}
	names := repro.Backends()
	if names[0] != repro.DefaultBackend {
		t.Fatalf("Backends()=%v", names)
	}
	if _, err := repro.LookupBackend("heapref"); err != nil {
		t.Fatal(err)
	}
	if _, err := repro.New(repro.WithBackend("bogus")); err == nil {
		t.Fatal("bogus backend must fail")
	}
}
