// Hamming example: decodes a noisy Hamming(7,4) codeword stream on the
// generated hardware, using memory files on disk exactly as the paper's
// flow does (stimulus in, results out, contents compared), and emits the
// XML plus dot/java/hds artifacts into a work directory.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/memfile"
	"repro/internal/workloads"
)

func main() {
	dir, err := os.MkdirTemp("", "hamming-example-")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("work directory:", dir)

	const n = 64
	sizes, args, inputs, expected := workloads.HammingCase(n, 2026)
	tc := core.TestCase{
		Name: "hamming", Source: workloads.HammingSource, Func: "hamming",
		ArraySizes: sizes, ScalarArgs: args, Inputs: inputs,
		Expected: map[string][]int64{"out": expected},
	}
	res, err := core.RunCase(tc, core.Options{WorkDir: dir, EmitArtifacts: true})
	if err != nil {
		log.Fatal(err)
	}
	if res.Err != nil {
		log.Fatal(res.Err)
	}
	fmt.Printf("decoded %d codewords (every 3rd had an injected single-bit error)\n", n)
	fmt.Println(res.Summary())

	// The infrastructure wrote the simulated output memory to disk;
	// compare it against the expected nibbles the generator produced.
	out, err := memfile.Load(res.Artifacts["mem:out"])
	if err != nil {
		log.Fatal(err)
	}
	ms := memfile.Compare(expected, out, 0)
	fmt.Println(memfile.FormatMismatches("out.mem vs expected nibbles", ms, 5))

	var labels []string
	for label := range res.Artifacts {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	fmt.Println("artifacts:")
	for _, l := range labels {
		fmt.Printf("  %-24s %s\n", l, res.Artifacts[l])
	}
}
