// Handcrafted example: the infrastructure is not tied to the compiler —
// any design expressed in the XML dialects can be simulated. This
// program hand-writes a datapath (a stimulus-fed accumulator) and its
// FSM, then exercises the observability features the paper motivates:
// probes on internal connections, an assertion, a VCD waveform dump and
// a sink collecting the output stream.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/hades"
	"repro/internal/netlist"
	"repro/internal/operators"
	"repro/internal/xmlspec"
)

func design() (*xmlspec.Datapath, *xmlspec.FSM) {
	dp := &xmlspec.Datapath{
		Name:  "acc",
		Width: 32,
		Operators: []xmlspec.Operator{
			{ID: "src", Type: "stim"},  // replays the stimulus file
			{ID: "r_acc", Type: "reg"}, // accumulator register
			{ID: "add0", Type: "add"},  // acc + src
			{ID: "cap", Type: "sink"},  // records the running sum
			{ID: "c100", Type: "const", Value: 1000},
			{ID: "lt0", Type: "lt"}, // acc < 1000
		},
		Connections: []xmlspec.Connection{
			{From: "r_acc.q", To: "add0.a"},
			{From: "src.out", To: "add0.b"},
			{From: "add0.y", To: "r_acc.d"},
			{From: "r_acc.q", To: "cap.in"},
			{From: "r_acc.q", To: "lt0.a"},
			{From: "c100.y", To: "lt0.b"},
		},
		Controls: []xmlspec.Control{
			{Name: "en_acc", Targets: []xmlspec.ControlTo{{Port: "r_acc.en"}}},
			{Name: "en_cap", Targets: []xmlspec.ControlTo{{Port: "cap.en"}}},
		},
		Statuses: []xmlspec.Status{
			{Name: "below", From: "lt0.y"},
			{Name: "last", From: "src.last"},
		},
	}
	fsm := &xmlspec.FSM{
		Name:    "acc_ctl",
		Inputs:  []xmlspec.FSMSignal{{Name: "below"}, {Name: "last"}},
		Outputs: []xmlspec.FSMSignal{{Name: "en_acc"}, {Name: "en_cap"}, {Name: "done"}},
		States: []xmlspec.State{
			{
				Name: "RUN", Initial: true,
				Assigns: []xmlspec.Assign{
					{Signal: "en_acc", Value: 1},
					{Signal: "en_cap", Value: 1},
				},
				Transitions: []xmlspec.Transition{
					{Cond: "below & !last", Next: "RUN"},
					{Next: "END"},
				},
			},
			{Name: "END", Final: true, Assigns: []xmlspec.Assign{{Signal: "done", Value: 1}}},
		},
	}
	return dp, fsm
}

func main() {
	dp, fsm := design()
	sim := hades.NewSimulator()
	clk := sim.NewSignal("clk", 1)
	stimulus := []int64{5, 10, 20, 40, 80, 160, 320, 640, 1280}
	el, err := netlist.Elaborate(sim, clk, dp, fsm, netlist.Options{
		InitData: map[string][]int64{"src": stimulus},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Observability: probe the accumulator, dump all signals to VCD,
	// assert the accumulator never goes negative.
	probe := hades.NewProbe(el.Wires["r_acc.q"], 0)
	vcdFile, err := os.CreateTemp("", "acc-*.vcd")
	if err != nil {
		log.Fatal(err)
	}
	defer vcdFile.Close()
	vcd := hades.NewVCDWriter(vcdFile)
	vcd.AddAll(sim)
	vcd.Header("acc")
	acc := el.Wires["r_acc.q"]
	assertion := hades.NewAssertion("acc >= 0", func() bool { return acc.Int() >= 0 }, acc)

	res, err := el.RunToCompletion(10, 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("finished in state %s after %d cycles (completed=%v)\n",
		res.FinalState, res.Cycles, res.Completed)
	fmt.Println("accumulator trace:", probe.Dump())
	fmt.Println("sink captured:", el.Sinks["cap"].Recorded())
	if assertion.Failed() {
		fmt.Println("assertion violations:", assertion.Violations())
	} else {
		fmt.Println("assertion held: accumulator never negative")
	}
	fmt.Println("waveforms:", vcdFile.Name())

	// The same hand-written design also validates against the dialect
	// schema, like compiler output does.
	if err := xmlspec.ValidateDatapath(dp, operators.DefaultRegistry()); err != nil {
		log.Fatal(err)
	}
	if err := xmlspec.ValidateFSM(fsm); err != nil {
		log.Fatal(err)
	}
	fmt.Println("hand-written XML validates against the dialect schemas")
}
