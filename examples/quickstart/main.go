// Quickstart: compile a tiny MiniJ program, simulate the generated
// architecture, and verify the memory contents against the golden
// interpreter — the whole verification flow in one page of code.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

const src = `
// Compute b[i] = 3*a[i] + i over n elements.
void scale(int[] a, int[] b, int n) {
  for (int i = 0; i < n; i = i + 1) {
    b[i] = 3 * a[i] + i;
  }
}
`

func main() {
	tc := core.TestCase{
		Name:       "quickstart",
		Source:     src,
		Func:       "scale",
		ArraySizes: map[string]int{"a": 16, "b": 16},
		ScalarArgs: map[string]int64{"n": 16},
		Inputs: map[string][]int64{
			"a": {5, -3, 12, 7, 0, 1, 2, 3, 100, -100, 42, 9, 8, 7, 6, 5},
		},
	}
	res, err := core.RunCase(tc, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if res.Err != nil {
		log.Fatal(res.Err)
	}
	fmt.Println(res.Summary())
	p := res.Partitions[0]
	fmt.Printf("generated architecture: %d operators, %d FSM states\n", p.Operators, p.States)
	fmt.Printf("simulated %d clock cycles in %v; golden reference took %v\n",
		p.Cycles, p.SimWall, res.RefWall)
	if res.Passed {
		fmt.Println("memory contents match the golden algorithm: design verified")
	} else {
		fmt.Println("MISMATCH:", res.Failed())
	}
}
