// Quickstart: the whole verification flow on the public pipeline API —
// compile a tiny MiniJ program, simulate the generated architecture on
// a selectable backend while streaming progress, and verify the memory
// contents against the golden interpreter.
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

const src = `
// Compute b[i] = 3*a[i] + i over n elements.
void scale(int[] a, int[] b, int n) {
  for (int i = 0; i < n; i = i + 1) {
    b[i] = 3 * a[i] + i;
  }
}
`

func main() {
	source := repro.Source{
		Name:       "quickstart",
		Text:       src,
		Func:       "scale",
		ArraySizes: map[string]int{"a": 16, "b": 16},
		ScalarArgs: map[string]int64{"n": 16},
		Inputs: map[string][]int64{
			"a": {5, -3, 12, 7, 0, 1, 2, 3, 100, -100, 42, 9, 8, 7, 6, 5},
		},
	}

	// Run the same flow on every registered simulator backend; the
	// event kernels agree event for event, the compiled cycle engine
	// clock edge for clock edge.
	for _, backend := range repro.Backends() {
		fmt.Printf("--- backend %s (%s) ---\n", backend.Name, backend.Kind)
		out, err := repro.Run(source,
			repro.WithBackend(backend.Name),
			repro.WithObserver(repro.NewProgressObserver(os.Stdout)),
		)
		if err != nil {
			log.Fatal(err)
		}
		if out.Verdict == nil {
			log.Fatalf("simulation incomplete after cycle cap")
		}
		p := out.Compiled.Partitions[0]
		fmt.Printf("generated architecture: %d operators, %d FSM states\n", p.Operators, p.States)
		fmt.Printf("simulated %d clock cycles in %v; golden reference took %v\n",
			out.Sim.TotalCycles, out.Sim.SimWall, out.Verdict.RefWall)
		if out.OK() {
			fmt.Println("memory contents match the golden algorithm: design verified")
		} else {
			log.Fatalf("MISMATCH: %v", out.Verdict.Failed())
		}
	}
}
