// Codesign example: the paper's further-work direction — a
// microprocessor tightly coupled to the reconfigurable hardware —
// simulated functionally. Software (behavioural MiniJ, the CPU stand-in)
// Hamming-encodes a message and injects channel errors; the compiled
// hardware decoder corrects them on the simulated fabric; software then
// verifies the round trip. All phases share one memory pool.
package main

import (
	"fmt"
	"log"

	"repro/internal/cosim"
)

const encodeSrc = `
void encode(int[] data, int[] chan_mem, int n) {
  for (int i = 0; i < n; i = i + 1) {
    int d1 = (data[i] >> 3) & 1;
    int d2 = (data[i] >> 2) & 1;
    int d3 = (data[i] >> 1) & 1;
    int d4 = data[i] & 1;
    int p1 = d1 ^ d2 ^ d4;
    int p2 = d1 ^ d3 ^ d4;
    int p3 = d2 ^ d3 ^ d4;
    int cw = p1 * 64 + p2 * 32 + d1 * 16 + p3 * 8 + d2 * 4 + d3 * 2 + d4;
    if (i % 2 == 0) { cw = cw ^ (1 << (i % 7)); }
    chan_mem[i] = cw;
  }
}
`

const decodeHW = `
void decode(int[] chan_mem, int[] out, int n) {
  int i;
  for (i = 0; i < n; i = i + 1) {
    int c = chan_mem[i];
    int b1 = (c >> 6) & 1;
    int b2 = (c >> 5) & 1;
    int b3 = (c >> 4) & 1;
    int b4 = (c >> 3) & 1;
    int b5 = (c >> 2) & 1;
    int b6 = (c >> 1) & 1;
    int b7 = c & 1;
    int s1 = b1 ^ b3 ^ b5 ^ b7;
    int s2 = b2 ^ b3 ^ b6 ^ b7;
    int s4 = b4 ^ b5 ^ b6 ^ b7;
    int syn = s4 * 4 + s2 * 2 + s1;
    if (syn != 0) { c = c ^ (1 << (7 - syn)); }
    out[i] = ((c >> 4) & 1) * 8 + ((c >> 2) & 1) * 4 + ((c >> 1) & 1) * 2 + (c & 1);
  }
}
`

const checkSrc = `
void check(int[] data, int[] out, int[] status, int n) {
  int errors = 0;
  for (int i = 0; i < n; i = i + 1) {
    if (out[i] != data[i]) { errors = errors + 1; }
  }
  status[0] = errors;
}
`

func main() {
	const n = 32
	sys := cosim.NewSystem(map[string]int{
		"data": n, "chan_mem": n, "out": n, "status": 1,
	})
	message := make([]int64, n)
	for i := range message {
		message[i] = int64((i*11 + 3) % 16)
	}
	if err := sys.Load("data", message); err != nil {
		log.Fatal(err)
	}
	args := map[string]int64{"n": n}
	if err := sys.RunSoftware(encodeSrc, "encode", args); err != nil {
		log.Fatal(err)
	}
	if err := sys.RunHardware(decodeHW, "decode", args); err != nil {
		log.Fatal(err)
	}
	if err := sys.RunSoftware(checkSrc, "check", args); err != nil {
		log.Fatal(err)
	}
	for _, p := range sys.Log() {
		extra := ""
		if p.Kind == "hardware" {
			extra = fmt.Sprintf(" (%d clock cycles on the fabric)", p.Cycles)
		} else {
			extra = fmt.Sprintf(" (%d interpreted statements)", p.Steps)
		}
		fmt.Printf("%-8s phase %-8s %v%s\n", p.Kind, p.Name, p.Wall, extra)
	}
	status, err := sys.Memory("status")
	if err != nil {
		log.Fatal(err)
	}
	if status[0] == 0 {
		fmt.Printf("software check: all %d nibbles recovered after channel error injection\n", n)
	} else {
		fmt.Printf("software check: %d decode errors\n", status[0])
	}
}
