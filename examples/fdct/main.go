// FDCT example: the paper's main workload. Runs the 8x8-block DCT over a
// 4,096-pixel image in both the single-configuration (FDCT1) and
// two-temporal-partition (FDCT2) implementations, verifies both against
// the golden algorithm, and prints the Table I columns.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/workloads"
)

func main() {
	const pixels = 4096
	for _, variant := range []struct {
		name string
		two  bool
	}{
		{"FDCT1 (one configuration)", false},
		{"FDCT2 (two temporal partitions via the RTG)", true},
	} {
		src, sizes, args, inputs := workloads.FDCTCase(variant.name, pixels, variant.two, 42)
		tc := core.TestCase{
			Name: variant.name, Source: src, Func: "fdct",
			ArraySizes: sizes, ScalarArgs: args, Inputs: inputs,
		}
		res, err := core.RunCase(tc, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		fmt.Printf("%s\n", variant.name)
		fmt.Printf("  source: %d lines of MiniJ; image: %d pixels (%d blocks)\n",
			res.SourceLoC, pixels, pixels/64)
		for _, p := range res.Partitions {
			fmt.Printf("  %s: %4d operators, %3d states, XML %4d+%3d lines, fsm.java %3d lines, %7d cycles, %v\n",
				p.ID, p.Operators, p.States, p.XMLDatapathLoC, p.XMLFSMLoC,
				p.JavaFSMLoC, p.Cycles, p.SimWall.Round(time.Millisecond))
		}
		status := "VERIFIED against the golden algorithm"
		if !res.Passed {
			status = fmt.Sprintf("FAILED: %v", res.Failed())
		}
		fmt.Printf("  total simulation %v — %s\n\n", res.SimWall.Round(time.Millisecond), status)
	}
}
