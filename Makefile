# Local targets mirror .github/workflows/ci.yml exactly: `make ci` runs
# what CI runs.

GO ?= go

.PHONY: build test race bench fmt fmt-check vet ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/... ./internal/hades/...

bench:
	$(GO) test -run XXX -bench . -benchtime 1x .

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

vet:
	$(GO) vet ./...

ci: build vet fmt-check test race
