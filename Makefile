# Local targets mirror .github/workflows/ci.yml exactly: `make ci` runs
# what CI runs (modulo the Actions-only staticcheck install and artifact
# upload).

GO ?= go

.PHONY: build test quickstart simd smoke scenario-smoke sweep-smoke sweep-chaos race bench bench-update bench-go cover lint linkcheck fmt fmt-check vet ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# quickstart builds and runs the documented public-API entry point
# (examples/quickstart on the root repro package), so the README's
# first program can never silently rot.
quickstart:
	$(GO) run ./examples/quickstart

# simd builds the simulation server; `make simd && ./bin/simd` serves
# on :8047 (see docs/SERVER.md).
simd:
	mkdir -p bin
	$(GO) build -o bin/simd ./cmd/simd

# smoke drives a freshly built simd server over HTTP: verify + pooled
# sweep via curl, /statsz shape, SIGTERM drain. Mirrors the CI smoke job.
smoke:
	sh scripts/simd_smoke.sh

# scenario-smoke mirrors the CI scenario step: record a fault-injection
# campaign, replay the trace bit-identically (same backend and across
# backends), then counterfactually swap the backend — which must
# preserve every verdict and digest (docs/SCENARIOS.md).
scenario-smoke:
	@tmp=$$(mktemp) && \
	$(GO) run ./cmd/testsuite -scenario examples/scenarios/erasure-recover.json -trace $$tmp && \
	$(GO) run ./cmd/testsuite -replay $$tmp && \
	$(GO) run ./cmd/testsuite -replay $$tmp -backend compiled && \
	$(GO) run ./cmd/testsuite -replay $$tmp -counterfactual backend=heapref; \
	rc=$$?; rm -f $$tmp; exit $$rc

# sweep-smoke mirrors the CI sweep step: run a sharded campaign across
# subprocess workers with a kill injected mid-shard, resume it, and
# diff the merged file against a single-shard reference — it must be
# byte-identical and replay bit-identically (docs/SWEEP.md).
sweep-smoke:
	sh scripts/sweep_smoke.sh

# sweep-chaos runs the dispatch-layer chaos matrix under -race: fleets
# with flaky (fail-N-then-succeed), slow (injected latency) and
# blackholed (accept-then-hang) endpoints must route around the
# faults, hedge the stragglers, and still merge byte-identical
# campaigns (docs/SWEEP.md "Scheduling & fault tolerance").
sweep-chaos:
	$(GO) test -race -count=1 \
		-run 'TestChaosMatrixFleet|TestRouteAroundDeadEndpoint|TestFallbackWhenFleetQuarantined|TestSlowEndpointStillMerges|TestRemoteErrorClassification|TestFleetRoutesAroundDeadRemote' \
		./internal/sweep/ ./internal/simd/

race:
	$(GO) test -race ./internal/core/... ./internal/hades/... \
		./internal/rtg/... ./internal/flow/... ./internal/simd/... \
		./internal/sweep/...

# bench runs the pinned benchmark scenarios once per registered
# simulator backend, writes BENCH_<name>.json files to
# bench-out/<backend>/, and fails on a >25% events/sec drop or a >25%
# allocs/event rise versus that backend's checked-in baseline
# (bench/baseline/<backend>/).
bench:
	for b in $$($(GO) run ./cmd/bench -list-backends | awk '{print $$1}'); do \
		mkdir -p bench-out/$$b; \
		$(GO) run ./cmd/bench -backend $$b -scenarios pinned -reps 3 \
			-out bench-out/$$b -baseline bench/baseline/$$b -threshold 0.25 || exit 1; \
	done

# bench-update refreshes every backend's checked-in baseline on this machine.
bench-update:
	for b in $$($(GO) run ./cmd/bench -list-backends | awk '{print $$1}'); do \
		$(GO) run ./cmd/bench -backend $$b -scenarios pinned -reps 3 \
			-baseline bench/baseline/$$b -update-baseline || exit 1; \
	done

# bench-go runs the go-test benchmarks (Table I rows, kernel two-level
# vs heap reference) once each.
bench-go:
	$(GO) test -run XXX -bench . -benchtime 1x .
	$(GO) test -run XXX -bench 'BenchmarkKernel' -benchtime 0.2s ./internal/hades/

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# lint always vets and checks the markdown links (README + docs/);
# staticcheck (the SA bug analyses plus ST1000 package comments, as in
# CI) runs when the binary is installed —
# `go install honnef.co/go/tools/cmd/staticcheck@2024.1.1`.
lint: vet linkcheck
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck -checks 'SA*,ST1000' ./...; \
	else \
		echo "staticcheck not installed; ran go vet + linkcheck only"; \
	fi

linkcheck:
	$(GO) test -run TestMarkdownLinks .

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

vet:
	$(GO) vet ./...

ci: build vet fmt-check lint test quickstart smoke scenario-smoke sweep-smoke sweep-chaos race cover bench
