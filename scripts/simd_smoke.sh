#!/usr/bin/env sh
# Smoke-test the simd server end to end, the way CI does: build it,
# serve on a local port, drive a verify and a pooled sweep with curl,
# assert the NDJSON and /statsz shapes, then check SIGTERM drains to a
# clean exit. Run via `make smoke`.
set -eu

PORT="${SIMD_PORT:-$((20000 + $$ % 20000))}"
BASE="http://127.0.0.1:$PORT"
WORKDIR="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

go build -o "$WORKDIR/simd" ./cmd/simd
"$WORKDIR/simd" -addr "127.0.0.1:$PORT" -workers 4 -max-sessions 2 &
SERVER_PID=$!

ok=0
for _ in $(seq 1 100); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then ok=1; break; fi
    sleep 0.1
done
[ "$ok" = 1 ] || { echo "simd smoke: server never came up on $BASE" >&2; exit 1; }

echo "== verify: NDJSON stream with config records and a passing summary =="
VERIFY=$(curl -fsS "$BASE/v1/verify" -d '{"workload":"hamming","params":{"words":64}}')
echo "$VERIFY"
echo "$VERIFY" | grep -q '"record":"config"'
echo "$VERIFY" | grep -q '"record":"summary"'
echo "$VERIFY" | grep -q '"schema_version":1'
echo "$VERIFY" | grep -q '"verified":true'
echo "$VERIFY" | grep -q '"passed":true'

echo "== sweep: pooled session, reset-and-replay rounds =="
SWEEP=$(curl -fsS "$BASE/v1/sweep" -d '{"workload":"hamming","params":{"words":64},"rounds":4}')
echo "$SWEEP" | tail -1
echo "$SWEEP" | grep -q '"pool_hit":true'
echo "$SWEEP" | grep -q '"rounds":4'
echo "$SWEEP" | grep -q '"elaborations":'
[ "$(echo "$SWEEP" | grep -c '"record":"config"')" -ge 4 ]

echo "== scenario: NDJSON trace stream that replays bit-identically =="
SCEN=$(curl -fsS "$BASE/v1/scenario" --data-binary @examples/scenarios/mixed-poisson.json)
echo "$SCEN" | head -1
echo "$SCEN" | tail -1
echo "$SCEN" | grep -q '"record":"scenario"'
echo "$SCEN" | grep -q '"record":"case"'
echo "$SCEN" | grep -q '"record":"scenario_summary"'
echo "$SCEN" | grep -q '"ok":true'
echo "$SCEN" > "$WORKDIR/trace.jsonl"
go run ./cmd/testsuite -replay "$WORKDIR/trace.jsonl" | grep -q "replay matches the recorded trace"
echo "replayed $(grep -c '"record":"case"' "$WORKDIR/trace.jsonl") recorded cases bit-identically"
# a malformed spec is a clean 400, not a broken stream
CODE=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/scenario" -d '{"name":"bad","cases":1,"mix":[]}')
[ "$CODE" = 400 ] || { echo "scenario validation: HTTP $CODE, want 400" >&2; exit 1; }

echo "== sharded sweep: one shard job streamed as shard records =="
CAMP='{"name":"smoke-camp","shards":2,"grid":{"workloads":["hamming,words=8"],"seed_from":1,"seed_to":5}}'
SHARD=$(curl -fsS "$BASE/v1/sweep/sharded" -d "{\"spec\":$CAMP,\"shard\":0}")
echo "$SHARD" | head -1
echo "$SHARD" | tail -1
echo "$SHARD" | grep -q '"record":"shard"'
echo "$SHARD" | grep -q '"record":"case"'
echo "$SHARD" | grep -q '"record":"shard_result"'
echo "$SHARD" | grep -q '"campaign":"smoke-camp"'
# a shard index outside the campaign layout is a clean 400
CODE=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/sweep/sharded" -d "{\"spec\":$CAMP,\"shard\":9}")
[ "$CODE" = 400 ] || { echo "sharded sweep validation: HTTP $CODE, want 400" >&2; exit 1; }

echo "== backends: descriptor catalog with the server default =="
BACKENDS=$(curl -fsS "$BASE/v1/backends")
echo "$BACKENDS"
echo "$BACKENDS" | grep -q '"schema_version":1'
echo "$BACKENDS" | grep -q '"default":"twolevel"'
echo "$BACKENDS" | grep -q '"name":"twolevel"'
echo "$BACKENDS" | grep -q '"kind":"event"'
echo "$BACKENDS" | grep -q '"name":"compiled"'
echo "$BACKENDS" | grep -q '"kind":"cycle"'
echo "$BACKENDS" | grep -q '"supports_gang":true'

echo "== statsz: pool and throughput counters =="
STATS=$(curl -fsS "$BASE/statsz")
echo "$STATS"
echo "$STATS" | grep -q '"schema_version":1'
echo "$STATS" | grep -q '"sessions":1'
echo "$STATS" | grep -q '"pool_hits":1'
echo "$STATS" | grep -q '"pool_misses":1'
echo "$STATS" | grep -q '"sessions_detail"'

echo "== SIGTERM drains to a clean exit =="
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
SERVER_PID=""

echo "simd smoke: OK"
