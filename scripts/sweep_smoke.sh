#!/usr/bin/env sh
# Smoke-test the sharded sweep coordinator end to end, the way CI does:
# run a single-shard reference campaign, run the same campaign sharded
# across subprocess workers with a kill injected mid-shard (the pass
# must fail and preserve its completed shards), resume it, and assert
# the merged file is byte-identical to the reference and replays
# bit-identically. Run via `make sweep-smoke`.
set -eu

WORKDIR="$(mktemp -d)"
cleanup() { rm -rf "$WORKDIR"; }
trap cleanup EXIT

go build -o "$WORKDIR/testsuite" ./cmd/testsuite
SPEC=examples/sweeps/mixed-campaign.json

echo "== reference: the same campaign as one shard, one worker =="
"$WORKDIR/testsuite" sweep run -spec "$SPEC" -shards 1 -out-dir "$WORKDIR/ref" -q

echo "== chaos: sharded subprocess campaign, worker killed mid-shard =="
if SWEEP_FAULT=kill:1 "$WORKDIR/testsuite" sweep run -spec "$SPEC" -subprocess -out-dir "$WORKDIR/camp" -q; then
    echo "sweep smoke: injected kill did not fail the pass" >&2
    exit 1
fi
if [ -f "$WORKDIR/camp/campaign.jsonl" ]; then
    echo "sweep smoke: merged file written despite a torn shard" >&2
    exit 1
fi
"$WORKDIR/testsuite" sweep status -out-dir "$WORKDIR/camp"

echo "== resume: only the lost shards re-execute =="
"$WORKDIR/testsuite" sweep run -spec "$SPEC" -out-dir "$WORKDIR/camp" -resume -shard-workers 2 -q

echo "== merged campaign is byte-identical to the single-shard reference =="
cmp "$WORKDIR/ref/campaign.jsonl" "$WORKDIR/camp/campaign.jsonl"

echo "== merged campaign replays bit-identically =="
go run ./cmd/testsuite -replay "$WORKDIR/camp/campaign.jsonl" | grep -q "replay matches the recorded trace"

echo "sweep smoke: OK"
