#!/usr/bin/env sh
# Smoke-test the sharded sweep coordinator end to end, the way CI does:
# run a single-shard reference campaign, run the same campaign sharded
# across subprocess workers with a kill injected mid-shard (the pass
# must fail and preserve its completed shards), resume it, and assert
# the merged file is byte-identical to the reference and replays
# bit-identically. Run via `make sweep-smoke`.
set -eu

WORKDIR="$(mktemp -d)"
cleanup() { rm -rf "$WORKDIR"; }
trap cleanup EXIT

go build -o "$WORKDIR/testsuite" ./cmd/testsuite
SPEC=examples/sweeps/mixed-campaign.json

echo "== reference: the same campaign as one shard, one worker =="
"$WORKDIR/testsuite" sweep run -spec "$SPEC" -shards 1 -out-dir "$WORKDIR/ref" -q

echo "== chaos: sharded subprocess campaign, worker killed mid-shard =="
if SWEEP_FAULT=kill:1 "$WORKDIR/testsuite" sweep run -spec "$SPEC" -subprocess -out-dir "$WORKDIR/camp" -q; then
    echo "sweep smoke: injected kill did not fail the pass" >&2
    exit 1
fi
if [ -f "$WORKDIR/camp/campaign.jsonl" ]; then
    echo "sweep smoke: merged file written despite a torn shard" >&2
    exit 1
fi
"$WORKDIR/testsuite" sweep status -out-dir "$WORKDIR/camp"

echo "== resume: only the lost shards re-execute =="
"$WORKDIR/testsuite" sweep run -spec "$SPEC" -out-dir "$WORKDIR/camp" -resume -shard-workers 2 -q

echo "== merged campaign is byte-identical to the single-shard reference =="
cmp "$WORKDIR/ref/campaign.jsonl" "$WORKDIR/camp/campaign.jsonl"

echo "== merged campaign replays bit-identically =="
go run ./cmd/testsuite -replay "$WORKDIR/camp/campaign.jsonl" | grep -q "replay matches the recorded trace"

echo "== flaky remote fleet: one live simd server, one dead endpoint =="
# The dispatch layer must quarantine the unreachable endpoint, requeue
# its shards on the live server, and still merge the identical bytes.
go build -o "$WORKDIR/simd" ./cmd/simd
PORT="${SIMD_PORT:-$((20000 + $$ % 20000))}"
"$WORKDIR/simd" -addr "127.0.0.1:$PORT" -workers 4 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true; cleanup' EXIT
ok=0
for _ in $(seq 1 100); do
    if curl -fsS "http://127.0.0.1:$PORT/healthz" >/dev/null 2>&1; then ok=1; break; fi
    sleep 0.1
done
[ "$ok" = 1 ] || { echo "sweep smoke: simd never came up on :$PORT" >&2; exit 1; }

"$WORKDIR/testsuite" sweep run -spec "$SPEC" -out-dir "$WORKDIR/fleet" \
    -remote "http://127.0.0.1:$PORT,http://127.0.0.1:1" \
    -shard-workers 2 2>"$WORKDIR/fleet.log"
cat "$WORKDIR/fleet.log"

echo "== fleet merge is byte-identical to the single-shard reference =="
cmp "$WORKDIR/ref/campaign.jsonl" "$WORKDIR/fleet/campaign.jsonl"

echo "== the dead endpoint was routed around, not retried into failure =="
grep -q "requeues" "$WORKDIR/fleet.log" || {
    echo "sweep smoke: no requeues reported with a dead endpoint in the fleet" >&2
    exit 1
}

echo "sweep smoke: OK"
