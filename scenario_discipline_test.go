package repro_test

import (
	"bytes"
	"context"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/scenario"
)

// TestExampleScenariosMatchEmbedded pins the checked-in example specs
// (examples/scenarios/, the ones the docs tell users to run) byte-for-
// byte against the embedded copies the engine, the bench registry and
// the CI smoke step execute. A drifted copy would make "run the
// documented spec" and "run the tested spec" different campaigns.
func TestExampleScenariosMatchEmbedded(t *testing.T) {
	names := scenario.ExampleNames()
	if len(names) < 2 {
		t.Fatalf("embedded spec registry too small: %v", names)
	}
	onDisk, err := filepath.Glob("examples/scenarios/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(onDisk) != len(names) {
		t.Fatalf("examples/scenarios holds %d specs, embedded registry %d: %v vs %v",
			len(onDisk), len(names), onDisk, names)
	}
	for _, name := range names {
		want, _ := scenario.ExampleSpec(name)
		got, err := os.ReadFile(filepath.Join("examples", "scenarios", name))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("examples/scenarios/%s differs from the embedded copy (internal/scenario/specs/%s)", name, name)
		}
	}
}

// TestSeedDisciplineSingleRandomSource walks every non-test source file
// and rejects math/rand imports outside internal/scenario. Scenario
// campaigns promise bit-identical replay from one recorded seed; a
// stray random stream anywhere else in the flow would silently break
// that promise, so the discipline is: all randomness flows through the
// scenario package's labeled sub-streams (internal/scenario/streams.go).
func TestSeedDisciplineSingleRandomSource(t *testing.T) {
	fset := token.NewFileSet()
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if strings.HasPrefix(name, ".") || name == "testdata" || name == "examples" {
				return fs.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p != "math/rand" && p != "math/rand/v2" {
				continue
			}
			if filepath.Dir(path) == filepath.Join("internal", "scenario") {
				continue
			}
			t.Errorf("%s imports %s: seeded randomness must flow through internal/scenario's labeled sub-streams", path, p)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestScenarioPublicAPI exercises the root re-exports of the scenario
// engine the way docs/SCENARIOS.md documents them: load a checked-in
// spec, run the campaign, replay its trace bit-identically.
func TestScenarioPublicAPI(t *testing.T) {
	sc, err := repro.LoadScenarioFile("examples/scenarios/mixed-poisson.json", nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Run(context.Background(), repro.ScenarioOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("campaign went red: %+v", res.Summary)
	}
	rep, err := repro.ReplayTrace(context.Background(), res.Trace(), repro.ScenarioOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if diffs := repro.CompareTraces(res.Cases, rep.Cases, true); len(diffs) != 0 {
		t.Fatalf("replay diverged: %v", diffs)
	}
}
