package netlist

import (
	"sort"

	"repro/internal/hades"
)

// EdgeSample is one signal's value at a clock edge: the raw (masked)
// word plus whether the signal was defined.
type EdgeSample struct {
	Val   uint64
	Valid bool
}

// EdgeTrace samples every wire and control line at each rising clock
// edge — the event-kernel counterpart of the cycle engine's per-edge
// trace, keyed identically ("op.port" for wires, "ctl.<name>" for FSM
// outputs) so traces from both engines compare row by row.
//
// The tap listens on the clock and samples in the edge's own delta:
// clocked components publish their edge updates one delta later (Set
// with zero delay), so every sampled value is the pre-edge state of the
// net, independent of listener order.
type EdgeTrace struct {
	keys []string
	sigs []*hades.Signal
	rows [][]EdgeSample
}

// AttachEdgeTrace taps the elaboration's clock with an edge trace.
// Attach after elaboration (and re-attach after Reset: like probes and
// VCD taps, the listener is detached by the replay rewind). One row is
// recorded per rising edge.
func (el *Elaboration) AttachEdgeTrace() *EdgeTrace {
	tr := &EdgeTrace{}
	for ep := range el.Wires {
		tr.keys = append(tr.keys, ep)
	}
	for name := range el.Controls {
		tr.keys = append(tr.keys, "ctl."+name)
	}
	sort.Strings(tr.keys)
	tr.sigs = make([]*hades.Signal, len(tr.keys))
	for i, key := range tr.keys {
		if sig, ok := el.Wires[key]; ok {
			tr.sigs[i] = sig
		} else {
			tr.sigs[i] = el.Controls[key[len("ctl."):]]
		}
	}
	clk := el.Clk
	el.Clk.Listen(&hades.ReactorFunc{Label: "edge-trace", Fn: func(sim *hades.Simulator) {
		if !clk.Bool() {
			return
		}
		row := make([]EdgeSample, len(tr.sigs))
		for i, sig := range tr.sigs {
			row[i] = EdgeSample{Val: sig.Uint(), Valid: sig.Valid()}
		}
		tr.rows = append(tr.rows, row)
	}})
	return tr
}

// Keys returns the sampled signal names in row order.
func (tr *EdgeTrace) Keys() []string { return tr.keys }

// Rows returns the recorded trace: one row per rising clock edge, one
// EdgeSample per key.
func (tr *EdgeTrace) Rows() [][]EdgeSample { return tr.rows }
