package netlist

import (
	"testing"

	"repro/internal/hades"
	"repro/internal/xmlspec"
)

// accumulatorDesign is a stimulus-fed accumulator with a sink capture —
// the examples/handcrafted shape — exercising every stateful operator
// class the replay path must rewind: stimulus position, register value,
// sink recording and the FSM.
func accumulatorDesign() (*xmlspec.Datapath, *xmlspec.FSM) {
	dp := &xmlspec.Datapath{
		Name:  "acc",
		Width: 32,
		Operators: []xmlspec.Operator{
			{ID: "src", Type: "stim"},
			{ID: "r_acc", Type: "reg"},
			{ID: "add0", Type: "add"},
			{ID: "cap", Type: "sink"},
		},
		Connections: []xmlspec.Connection{
			{From: "r_acc.q", To: "add0.a"},
			{From: "src.out", To: "add0.b"},
			{From: "add0.y", To: "r_acc.d"},
			{From: "r_acc.q", To: "cap.in"},
		},
		Controls: []xmlspec.Control{
			{Name: "en_acc", Targets: []xmlspec.ControlTo{{Port: "r_acc.en"}}},
			{Name: "en_cap", Targets: []xmlspec.ControlTo{{Port: "cap.en"}}},
		},
		Statuses: []xmlspec.Status{{Name: "last", From: "src.last"}},
	}
	fsm := &xmlspec.FSM{
		Name:    "acc_ctl",
		Inputs:  []xmlspec.FSMSignal{{Name: "last"}},
		Outputs: []xmlspec.FSMSignal{{Name: "en_acc"}, {Name: "en_cap"}, {Name: "done"}},
		States: []xmlspec.State{
			{
				Name: "RUN", Initial: true,
				Assigns: []xmlspec.Assign{
					{Signal: "en_acc", Value: 1},
					{Signal: "en_cap", Value: 1},
				},
				Transitions: []xmlspec.Transition{
					{Cond: "!last", Next: "RUN"},
					{Next: "END"},
				},
			},
			{Name: "END", Final: true, Assigns: []xmlspec.Assign{{Signal: "done", Value: 1}}},
		},
	}
	return dp, fsm
}

func stimVec(seed, n int) []int64 {
	vec := make([]int64, n)
	for i := range vec {
		vec[i] = int64((i*31 + seed*17) % 97)
	}
	return vec
}

type accRun struct {
	res   RunResult
	stats hades.Stats
	rec   []int64
}

func runAccumulator(t *testing.T, el *Elaboration) accRun {
	t.Helper()
	rr, err := el.RunToCompletion(10, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Completed {
		t.Fatalf("incomplete: %+v", rr)
	}
	rec := append([]int64(nil), el.Sinks["cap"].Recorded()...)
	return accRun{res: *rr, stats: el.Sim.Stats(), rec: rec}
}

func sameAccRun(a, b accRun) bool {
	if a.res != b.res {
		return false
	}
	if a.stats.Events != b.stats.Events || a.stats.Deltas != b.stats.Deltas ||
		a.stats.Reactions != b.stats.Reactions || a.stats.Instants != b.stats.Instants {
		return false
	}
	if len(a.rec) != len(b.rec) {
		return false
	}
	for i := range a.rec {
		if a.rec[i] != b.rec[i] {
			return false
		}
	}
	return true
}

// TestElaborationResetReplaysFresh pins that Reset + RunToCompletion
// reproduces a fresh elaboration bit for bit — run records, per-run
// kernel stats and sink recordings — across rounds with differing
// stimulus contents, on both kernels.
func TestElaborationResetReplaysFresh(t *testing.T) {
	kernels := []struct {
		name string
		mk   func() *hades.Simulator
	}{
		{hades.KernelTwoLevel, hades.NewSimulator},
		{hades.KernelHeapRef, hades.NewHeapRefSimulator},
	}
	for _, k := range kernels {
		t.Run(k.name, func(t *testing.T) {
			dp, fsm := accumulatorDesign()
			fresh := func(vec []int64) accRun {
				sim := k.mk()
				clk := sim.NewSignal("clk", 1)
				el, err := Elaborate(sim, clk, dp, fsm, Options{InitData: map[string][]int64{"src": vec}})
				if err != nil {
					t.Fatal(err)
				}
				return runAccumulator(t, el)
			}

			sim := k.mk()
			clk := sim.NewSignal("clk", 1)
			el, err := Elaborate(sim, clk, dp, fsm, Options{InitData: map[string][]int64{"src": stimVec(0, 64)}})
			if err != nil {
				t.Fatal(err)
			}
			first := runAccumulator(t, el)
			if want := fresh(stimVec(0, 64)); !sameAccRun(first, want) {
				t.Fatalf("pre-replay sanity: %+v vs %+v", first, want)
			}
			for round := 1; round <= 3; round++ {
				vec := stimVec(round, 64)
				el.Reset(map[string][]int64{"src": vec})
				got := runAccumulator(t, el)
				if want := fresh(vec); !sameAccRun(got, want) {
					t.Fatalf("round %d: replay diverged from fresh elaboration:\n got %+v\nwant %+v", round, got, want)
				}
				if st := el.Sim.Stats(); st.Elaborations != 1 || st.Resets != uint64(round) {
					t.Fatalf("round %d: lifetime counters %+v", round, st)
				}
			}
		})
	}
}

// TestResetFallsBackToOriginalSeeds pins the init-override contract:
// components absent from the Reset map reload the contents they were
// elaborated with, not whatever the previous run left behind.
func TestResetFallsBackToOriginalSeeds(t *testing.T) {
	dp, fsm := accumulatorDesign()
	vec := stimVec(1, 16)
	sim := hades.NewSimulator()
	clk := sim.NewSignal("clk", 1)
	el, err := Elaborate(sim, clk, dp, fsm, Options{InitData: map[string][]int64{"src": vec}})
	if err != nil {
		t.Fatal(err)
	}
	first := runAccumulator(t, el)
	el.Reset(nil) // no overrides: original stimulus again
	again := runAccumulator(t, el)
	if !sameAccRun(first, again) {
		t.Fatalf("replay with original seeds diverged:\n got %+v\nwant %+v", again, first)
	}
}

// TestReplaySteadyStateAllocs locks in the amortization the replay
// subsystem exists for: once elaborated and warmed, a reset-and-replay
// round of a full design run stays within a handful of allocations
// (the RunResult itself) — against the thousands a fresh elaboration
// pays — on both kernels. Mirrors hades.TestResetSteadyStateAllocs one
// layer up.
func TestReplaySteadyStateAllocs(t *testing.T) {
	kernels := []struct {
		name string
		mk   func() *hades.Simulator
	}{
		{hades.KernelTwoLevel, hades.NewSimulator},
		{hades.KernelHeapRef, hades.NewHeapRefSimulator},
	}
	for _, k := range kernels {
		t.Run(k.name, func(t *testing.T) {
			dp, fsm := accumulatorDesign()
			vec := stimVec(3, 256)
			init := map[string][]int64{"src": vec}
			sim := k.mk()
			clk := sim.NewSignal("clk", 1)
			el, err := Elaborate(sim, clk, dp, fsm, Options{InitData: init})
			if err != nil {
				t.Fatal(err)
			}
			// Warm: first run grows pools, sink capacity, clock/watchdog.
			for i := 0; i < 2; i++ {
				if i > 0 {
					el.Reset(init)
				}
				runAccumulator(t, el)
			}
			avg := testing.AllocsPerRun(10, func() {
				el.Reset(init)
				rr, err := el.RunToCompletion(10, 10_000)
				if err != nil || !rr.Completed {
					t.Fatalf("replay failed: %v %+v", err, rr)
				}
			})
			if avg > 4 {
				t.Fatalf("reset-and-replay allocates %v objects per configuration, want ~0 (<=4)", avg)
			}
		})
	}
}
