package netlist

import (
	"strings"
	"testing"

	"repro/internal/hades"
	"repro/internal/xmlspec"
)

// counterDesign returns a datapath/FSM pair implementing
//
//	i = 0; while (i < limit) i = i + 1;
//
// with the loop register written through an FSM-controlled enable.
func counterDesign(limit int64) (*xmlspec.Datapath, *xmlspec.FSM) {
	dp := &xmlspec.Datapath{
		Name:  "count",
		Width: 32,
		Operators: []xmlspec.Operator{
			{ID: "c1", Type: "const", Value: 1},
			{ID: "cl", Type: "const", Value: limit},
			{ID: "r_i", Type: "reg"},
			{ID: "add0", Type: "add"},
			{ID: "lt0", Type: "lt"},
		},
		Connections: []xmlspec.Connection{
			{From: "r_i.q", To: "add0.a"},
			{From: "c1.y", To: "add0.b"},
			{From: "add0.y", To: "r_i.d"},
			{From: "r_i.q", To: "lt0.a"},
			{From: "cl.y", To: "lt0.b"},
		},
		Controls: []xmlspec.Control{
			{Name: "en_i", Targets: []xmlspec.ControlTo{{Port: "r_i.en"}}},
		},
		Statuses: []xmlspec.Status{
			{Name: "i_lt", From: "lt0.y"},
		},
	}
	fsm := &xmlspec.FSM{
		Name:    "count_ctl",
		Inputs:  []xmlspec.FSMSignal{{Name: "i_lt"}},
		Outputs: []xmlspec.FSMSignal{{Name: "en_i"}, {Name: "done"}},
		States: []xmlspec.State{
			{
				Name: "LOOP", Initial: true,
				Assigns: []xmlspec.Assign{{Signal: "en_i", Value: 1}},
				Transitions: []xmlspec.Transition{
					{Cond: "i_lt", Next: "LOOP"},
					{Next: "END"},
				},
			},
			{Name: "END", Final: true, Assigns: []xmlspec.Assign{{Signal: "done", Value: 1}}},
		},
	}
	return dp, fsm
}

func TestElaborateAndRunCounter(t *testing.T) {
	sim := hades.NewSimulator()
	clk := sim.NewSignal("clk", 1)
	dp, fsm := counterDesign(10)
	el, err := Elaborate(sim, clk, dp, fsm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := el.RunToCompletion(10, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("did not complete: %+v", res)
	}
	if res.FinalState != "END" {
		t.Fatalf("final state %s", res.FinalState)
	}
	// The loop register overshoots by one (the enable is still high on
	// the edge where the FSM leaves the loop), standard for this control
	// style: i counts 0..limit, then one extra increment lands.
	q := el.Wires["r_i.q"]
	if q.Int() != 11 {
		t.Fatalf("r_i.q=%d want 11", q.Int())
	}
	if !el.Done.Bool() {
		t.Fatal("done must be asserted")
	}
	// ~1 cycle per iteration: 11 loop edges + 1 exit edge, small slack.
	if res.Cycles < 11 || res.Cycles > 14 {
		t.Fatalf("cycles=%d", res.Cycles)
	}
}

func TestElaborateExposesStructure(t *testing.T) {
	sim := hades.NewSimulator()
	clk := sim.NewSignal("clk", 1)
	dp, fsm := counterDesign(3)
	el, err := Elaborate(sim, clk, dp, fsm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(el.Components) != 5 {
		t.Fatalf("components=%d", len(el.Components))
	}
	if el.Controls["en_i"] == nil || el.Controls["done"] == nil {
		t.Fatal("control signals missing")
	}
	if el.Statuses["i_lt"] == nil {
		t.Fatal("status signal missing")
	}
	if el.Wires["add0.y"] == nil || el.Wires["r_i.q"] == nil {
		t.Fatal("wires missing")
	}
}

func TestTimeZeroSettling(t *testing.T) {
	// Before any clock edge the combinational net must have settled from
	// power-on register values: add0.y = 0+1, lt0.y = (0<3).
	sim := hades.NewSimulator()
	clk := sim.NewSignal("clk", 1)
	dp, fsm := counterDesign(3)
	el, err := Elaborate(sim, clk, dp, fsm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(0); err != nil { // process only time-zero deltas
		t.Fatal(err)
	}
	if got := el.Wires["add0.y"].Int(); got != 1 {
		t.Fatalf("add0.y=%d want 1", got)
	}
	if got := el.Wires["lt0.y"].Uint(); got != 1 {
		t.Fatalf("lt0.y=%d want 1", got)
	}
}

func TestProbeAll(t *testing.T) {
	sim := hades.NewSimulator()
	clk := sim.NewSignal("clk", 1)
	dp, fsm := counterDesign(3)
	el, err := Elaborate(sim, clk, dp, fsm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	probes := el.ProbeAll(0, "r_i")
	if len(probes) != 1 || probes["r_i.q"] == nil {
		t.Fatalf("probes=%v", probes)
	}
	if _, err := el.RunToCompletion(10, 100); err != nil {
		t.Fatal(err)
	}
	// r_i.q visits 1..4 after power-on 0 (driven, not a change event).
	if probes["r_i.q"].Transitions() != 4 {
		t.Fatalf("transitions=%d", probes["r_i.q"].Transitions())
	}
	all := el.ProbeAll(0)
	if len(all) != len(el.Wires) {
		t.Fatalf("ProbeAll()=%d wires=%d", len(all), len(el.Wires))
	}
}

func TestRunToCompletionCycleCap(t *testing.T) {
	sim := hades.NewSimulator()
	clk := sim.NewSignal("clk", 1)
	dp, fsm := counterDesign(1 << 30) // far beyond the cycle cap
	el, err := Elaborate(sim, clk, dp, fsm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := el.RunToCompletion(10, 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("must not complete under the cap")
	}
	if res.Cycles > 51 {
		t.Fatalf("cycles=%d exceeded cap", res.Cycles)
	}
}

func TestFSMInputWithoutStatusFails(t *testing.T) {
	sim := hades.NewSimulator()
	clk := sim.NewSignal("clk", 1)
	dp, fsm := counterDesign(3)
	dp.Statuses = nil
	_, err := Elaborate(sim, clk, dp, fsm, Options{})
	if err == nil || !strings.Contains(err.Error(), "no datapath status") {
		t.Fatalf("err=%v", err)
	}
}

func TestControlWithoutFSMOutputFails(t *testing.T) {
	sim := hades.NewSimulator()
	clk := sim.NewSignal("clk", 1)
	dp, fsm := counterDesign(3)
	fsm.Outputs = []xmlspec.FSMSignal{{Name: "done"}}
	fsm.States[0].Assigns = nil
	_, err := Elaborate(sim, clk, dp, fsm, Options{})
	if err == nil || !strings.Contains(err.Error(), "no FSM output") {
		t.Fatalf("err=%v", err)
	}
}

func TestRAMTieDefaultsAllowReadOnly(t *testing.T) {
	// A ROM-style RAM: only read, we/din tied automatically.
	sim := hades.NewSimulator()
	clk := sim.NewSignal("clk", 1)
	dp := &xmlspec.Datapath{
		Name:  "romish",
		Width: 32,
		Operators: []xmlspec.Operator{
			{ID: "m", Type: "ram", Depth: 8},
			{ID: "a0", Type: "const", Value: 2, Width: 3},
		},
		Connections: []xmlspec.Connection{
			{From: "a0.y", To: "m.addr"},
		},
		Statuses: []xmlspec.Status{{Name: "nz", From: "m.dout"}},
	}
	fsm := &xmlspec.FSM{
		Name:    "romish_ctl",
		Inputs:  []xmlspec.FSMSignal{{Name: "nz"}},
		Outputs: []xmlspec.FSMSignal{{Name: "done"}},
		States: []xmlspec.State{
			{Name: "S", Initial: true, Transitions: []xmlspec.Transition{{Next: "E"}}},
			{Name: "E", Final: true, Assigns: []xmlspec.Assign{{Signal: "done", Value: 1}}},
		},
	}
	el, err := Elaborate(sim, clk, dp, fsm, Options{
		InitData: map[string][]int64{"m": {9, 8, 7, 6}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := el.RunToCompletion(10, 10); err != nil {
		t.Fatal(err)
	}
	if el.Wires["m.dout"].Int() != 7 {
		t.Fatalf("dout=%d want 7", el.Wires["m.dout"].Int())
	}
}

func TestSharedRAMRefExposure(t *testing.T) {
	sim := hades.NewSimulator()
	clk := sim.NewSignal("clk", 1)
	dp := &xmlspec.Datapath{
		Name:  "shared",
		Width: 32,
		Operators: []xmlspec.Operator{
			{ID: "m0", Type: "ram", Depth: 8, Ref: "img"},
			{ID: "a0", Type: "const", Value: 0, Width: 3},
		},
		Connections: []xmlspec.Connection{{From: "a0.y", To: "m0.addr"}},
		Statuses:    []xmlspec.Status{{Name: "s", From: "m0.dout"}},
	}
	fsm := &xmlspec.FSM{
		Name:    "shared_ctl",
		Inputs:  []xmlspec.FSMSignal{{Name: "s"}},
		Outputs: []xmlspec.FSMSignal{{Name: "done"}},
		States: []xmlspec.State{
			{Name: "E", Initial: true, Final: true, Assigns: []xmlspec.Assign{{Signal: "done", Value: 1}}},
		},
	}
	el, err := Elaborate(sim, clk, dp, fsm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if el.Shared["img"] == nil || el.Shared["img"] != el.RAMs["m0"] {
		t.Fatal("shared memory binding missing")
	}
}
