// Package netlist elaborates a datapath/FSM pair from the XML dialects
// into a live hades component graph — the counterpart of the paper's
// "to hds" translation followed by Hades design loading.
package netlist

import (
	"fmt"
	"strings"

	"repro/internal/fsmsim"
	"repro/internal/hades"
	"repro/internal/operators"
	"repro/internal/xmlspec"
)

// Options tunes elaboration.
type Options struct {
	Registry *operators.Registry // nil: operators.DefaultRegistry()
	// InitData provides initial contents for ram/rom/stim instances,
	// keyed by operator id. For rams bound to RTG shared memories the
	// reconfiguration controller fills this from the shared store.
	InitData map[string][]int64
	// Reset, when non-nil, is wired to the FSM (registers are controlled
	// purely through enables, as the compiler generates them).
	Reset *hades.Signal
}

// Elaboration is a live configuration: every component instantiated and
// wired, the FSM bound, and the memory/port structures exposed for the
// verification flow.
type Elaboration struct {
	Sim        *hades.Simulator
	Clk        *hades.Signal
	Machine    *fsmsim.Machine
	Components map[string]hades.Reactor
	RAMs       map[string]*operators.RAM  // by operator id
	Shared     map[string]*operators.RAM  // by RTG shared-memory ref
	Sinks      map[string]*operators.Sink // by operator id
	Controls   map[string]*hades.Signal   // FSM outputs by name ("done" included)
	Statuses   map[string]*hades.Signal   // status lines by name
	Wires      map[string]*hades.Signal   // driver endpoint -> signal
	Done       *hades.Signal              // Controls["done"] when declared

	// Replay support: the components in elaboration order with the seed
	// data each was built with, the lazily created ground signal, and
	// the clock/watchdog RunToCompletion reuses across replay rounds.
	inits []compInit
	gnd   *hades.Signal
	clock *hades.Clock
	dog   *hades.Watchdog
}

// compInit remembers one component's elaboration-order position and the
// initial contents it was built with, so Reset can reseed it.
type compInit struct {
	id   string
	comp hades.Reactor
	init []int64
}

// tieDefaults lists input ports that may legitimately be left undriven
// and are tied to constant zero, per operator type (a read-only RAM has
// no writer; a sink may have no enable).
var tieDefaults = map[string][]string{
	"ram":  {"we", "din"},
	"sink": {"en"},
}

// Elaborate builds the component graph for one configuration on sim,
// clocked by clk.
func Elaborate(sim *hades.Simulator, clk *hades.Signal, dp *xmlspec.Datapath,
	fsm *xmlspec.FSM, opts Options) (*Elaboration, error) {

	reg := opts.Registry
	if reg == nil {
		reg = operators.DefaultRegistry()
	}
	if err := xmlspec.ValidateDatapath(dp, reg); err != nil {
		return nil, err
	}
	if err := xmlspec.ValidateFSM(fsm); err != nil {
		return nil, err
	}

	el := &Elaboration{
		Sim:        sim,
		Clk:        clk,
		Components: map[string]hades.Reactor{},
		RAMs:       map[string]*operators.RAM{},
		Shared:     map[string]*operators.RAM{},
		Sinks:      map[string]*operators.Sink{},
		Controls:   map[string]*hades.Signal{},
		Statuses:   map[string]*hades.Signal{},
		Wires:      map[string]*hades.Signal{},
	}

	// Pass 1: create one signal per operator output port.
	type pending struct {
		op    *xmlspec.Operator
		spec  *operators.Spec
		param operators.Params
		ports []operators.PortSpec
	}
	var todo []pending
	for i := range dp.Operators {
		op := &dp.Operators[i]
		spec, _ := reg.Lookup(op.Type)
		param := xmlspec.ParamsOf(op, dp.Width)
		if data, ok := opts.InitData[op.ID]; ok {
			param.Init = data
		}
		ports := spec.Ports(param)
		for _, ps := range ports {
			if ps.Dir == operators.Out {
				ep := op.ID + "." + ps.Name
				el.Wires[ep] = sim.NewSignal(dp.Name+"."+ep, ps.Width)
			}
		}
		todo = append(todo, pending{op: op, spec: spec, param: param, ports: ports})
	}

	// Control lines: one signal per FSM output; datapath controls map
	// them onto operator input ports. FSM outputs without datapath
	// targets (e.g. done) still get signals.
	ctlWidth := map[string]int{}
	for _, c := range dp.Controls {
		ctlWidth[c.Name] = c.ControlWidth()
	}
	for _, out := range fsm.Outputs {
		w := out.SignalWidth()
		if dw, ok := ctlWidth[out.Name]; ok && dw > w {
			w = dw
		}
		el.Controls[out.Name] = sim.NewSignal(dp.Name+".ctl."+out.Name, w)
	}
	for _, c := range dp.Controls {
		if _, ok := el.Controls[c.Name]; !ok {
			return nil, fmt.Errorf("netlist: %s: control %q has no FSM output", dp.Name, c.Name)
		}
	}

	// Sink map for input ports: endpoint -> driving signal.
	drive := map[string]*hades.Signal{}
	for _, cn := range dp.Connections {
		src, ok := el.Wires[cn.From]
		if !ok {
			return nil, fmt.Errorf("netlist: %s: connect from unknown output %q", dp.Name, cn.From)
		}
		drive[cn.To] = src
	}
	for _, c := range dp.Controls {
		for _, to := range c.Targets {
			drive[to.Port] = el.Controls[c.Name]
		}
	}

	// Status lines alias operator outputs.
	for _, st := range dp.Statuses {
		src, ok := el.Wires[st.From]
		if !ok {
			return nil, fmt.Errorf("netlist: %s: status %q from unknown output %q", dp.Name, st.Name, st.From)
		}
		el.Statuses[st.Name] = src
	}

	// Ground for tie-able inputs.
	var gnd *hades.Signal
	ground := func(width int) *hades.Signal {
		if gnd == nil {
			gnd = sim.NewSignal(dp.Name+".gnd", 64)
			sim.Drive(gnd, 0)
		}
		return gnd
	}

	// Pass 2: build components with their connection maps.
	for _, pd := range todo {
		conn := map[string]*hades.Signal{}
		for _, ps := range pd.ports {
			ep := pd.op.ID + "." + ps.Name
			if ps.Dir == operators.Out {
				conn[ps.Name] = el.Wires[ep]
				continue
			}
			if ps.Name == "clk" {
				conn["clk"] = clk
				continue
			}
			if sig, ok := drive[ep]; ok {
				conn[ps.Name] = sig
				continue
			}
			if tieable(pd.op.Type, ps.Name) {
				conn[ps.Name] = ground(ps.Width)
			}
			// reg en/rst stay nil (optional in the operator model).
		}
		comp, err := pd.spec.Build(sim, pd.op.ID, pd.param, conn)
		if err != nil {
			return nil, fmt.Errorf("netlist: %s: %w", dp.Name, err)
		}
		el.Components[pd.op.ID] = comp
		switch c := comp.(type) {
		case *operators.RAM:
			el.RAMs[pd.op.ID] = c
			if pd.op.Ref != "" {
				el.Shared[pd.op.Ref] = c
			}
		case *operators.Sink:
			el.Sinks[pd.op.ID] = c
		}
	}

	// Bind the FSM.
	inputs := map[string]*hades.Signal{}
	for _, in := range fsm.Inputs {
		sig, ok := el.Statuses[in.Name]
		if !ok {
			return nil, fmt.Errorf("netlist: %s: FSM input %q has no datapath status", dp.Name, in.Name)
		}
		inputs[in.Name] = sig
	}
	m, err := fsmsim.New(sim, fsm, clk, opts.Reset, inputs, el.Controls)
	if err != nil {
		return nil, err
	}
	el.Machine = m
	el.Done = el.Controls["done"]

	// Time-zero initialisation: with the FSM's initial-state controls
	// driven, evaluate every component once so the combinational network
	// settles from the power-on register/constant/control values before
	// the first clock edge (clocked components see no edge and ignore
	// the call).
	for _, pd := range todo {
		el.Components[pd.op.ID].React(sim)
	}

	// Arm replay: remember each component's seed data in elaboration
	// order, and mark the simulator so Reset can detach everything
	// attached after this point (clock, watchdog, probes, VCD taps).
	for _, pd := range todo {
		el.inits = append(el.inits, compInit{id: pd.op.ID, comp: el.Components[pd.op.ID], init: pd.param.Init})
	}
	el.gnd = gnd
	sim.NoteElaboration()
	sim.Mark()
	return el, nil
}

// Reset rewinds a live elaboration so the same wired component graph
// can be run again without rebuilding — the replay half of the
// reconfiguration cache. The simulator is reset (events, time, per-run
// stats, signal definedness), then the elaboration-time initialisation
// is replayed in the original order: power-on drives re-asserted,
// memories and stimuli reseeded, the FSM rewound to its initial state,
// sinks cleared, and the combinational settle pass re-run. init
// overrides a component's seed contents by operator id (the
// reconfiguration controller passes the current shared-store images);
// components absent from init reload the contents they were originally
// elaborated with.
//
// After Reset the elaboration is bit-for-bit in the state a fresh
// Elaborate with the same seeds would produce, which
// rtg.TestReplayMatchesFreshElaboration pins on both kernels.
func (el *Elaboration) Reset(init map[string][]int64) {
	sim := el.Sim
	sim.Reset()
	if el.gnd != nil {
		sim.Drive(el.gnd, 0)
	}
	for _, ci := range el.inits {
		data, ok := init[ci.id]
		if !ok {
			data = ci.init
		}
		if r, replayable := ci.comp.(operators.Replayable); replayable {
			r.ResetState(sim, data)
		}
	}
	el.Machine.Reset(sim)
	for _, ci := range el.inits {
		ci.comp.React(sim)
	}
}

func tieable(typ, port string) bool {
	for _, p := range tieDefaults[typ] {
		if p == port {
			return true
		}
	}
	return false
}

// ProbeAll attaches probes to every wire whose endpoint matches one of
// the given prefixes (empty list = all wires) and returns them keyed by
// endpoint — the infrastructure's "inclusion of probes" facility.
func (el *Elaboration) ProbeAll(maxHistory int, prefixes ...string) map[string]*hades.Probe {
	probes := map[string]*hades.Probe{}
	for ep, sig := range el.Wires {
		if len(prefixes) > 0 && !hasAnyPrefix(ep, prefixes) {
			continue
		}
		probes[ep] = hades.NewProbe(sig, maxHistory)
	}
	return probes
}

func hasAnyPrefix(s string, prefixes []string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(s, p) {
			return true
		}
	}
	return false
}

// RunResult summarises one configuration execution.
type RunResult struct {
	Cycles     uint64
	EndTime    hades.Time
	Completed  bool // done asserted before the cycle cap
	FinalState string
}

// RunToCompletion drives the elaborated configuration with its clock
// until the FSM asserts done (or reaches a final state), bounded by
// maxCycles. It owns the clock: the caller must not have started one,
// and between successive calls the elaboration must be Reset (the
// replay path), which detaches the previous round's clock and watchdog
// so this call can re-arm the same instances allocation-free.
func (el *Elaboration) RunToCompletion(period hades.Time, maxCycles uint64) (*RunResult, error) {
	limit := hades.Time(int64(maxCycles)*int64(period)) + el.Sim.Now()
	if el.clock == nil || el.clock.Period() != period {
		el.clock = hades.NewClock("clk", el.Clk, period, limit)
	} else {
		el.clock.SetLimit(limit)
	}
	el.clock.Start(el.Sim)
	if el.Done != nil {
		if el.dog == nil {
			el.dog = hades.NewWatchdog("done", el.Done, 1)
		} else {
			el.dog.Rearm()
		}
	}
	end, err := el.Sim.Run(limit)
	if err != nil {
		return nil, err
	}
	res := &RunResult{
		Cycles:     el.Machine.Cycles(),
		EndTime:    end,
		FinalState: el.Machine.CurrentState(),
	}
	stopped, _ := el.Sim.Stopped()
	res.Completed = el.Machine.InFinal() || (el.Done != nil && el.Done.Bool()) || stopped
	return res, nil
}
