package core

import (
	"context"
	"testing"

	"repro/internal/flow"
	"repro/internal/workloads"
)

// smallSuite shrinks the heavyweight families so the cross-backend
// matrix below stays fast; the remaining families run their suite
// presets as-is.
var smallSuite = map[string]workloads.Values{
	"fdct1":   {"pixels": 256},
	"fdct2":   {"pixels": 256},
	"hamming": {"words": 16},
}

// TestRegistrySuiteVerifiesOnEveryBackend is the end-to-end acceptance
// check of the workload registry: every registered family's suite case
// must compile, simulate and verify against its pure-Go reference model
// on every registered simulator backend.
func TestRegistrySuiteVerifiesOnEveryBackend(t *testing.T) {
	for _, backend := range flow.BackendNames() {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			suite, err := RegistrySuite("registry-"+backend, smallSuite)
			if err != nil {
				t.Fatal(err)
			}
			if len(suite.Cases) != len(workloads.Names()) {
				t.Fatalf("suite has %d cases for %d families", len(suite.Cases), len(workloads.Names()))
			}
			for _, c := range suite.Cases {
				if len(c.Expected) == 0 {
					t.Fatalf("%s: no reference-model expectations pinned", c.Name)
				}
			}
			res := (&Runner{Workers: 2}).Run(context.Background(), suite,
				Options{Backend: backend})
			for _, r := range res.Results {
				if r.Err != nil {
					t.Errorf("%s: %v", r.Name, r.Err)
					continue
				}
				if !r.Passed {
					t.Errorf("%s: verification failed: %v", r.Name, r.Failed())
				}
			}
			if !res.Passed() {
				t.Fatalf("registry suite failed on backend %s", backend)
			}
		})
	}
}

// TestRegistrySuiteOverrides pins the override plumbing the testsuite
// command's -pixels/-words flags rely on.
func TestRegistrySuiteOverrides(t *testing.T) {
	suite, err := RegistrySuite("s", map[string]workloads.Values{
		"fdct1":   {"pixels": 128},
		"hamming": {"words": 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]TestCase{}
	for _, c := range suite.Cases {
		byName[c.Name] = c
	}
	if got := byName["fdct1"].ArraySizes["img"]; got != 128 {
		t.Fatalf("fdct1 img size = %d", got)
	}
	if got := byName["hamming"].ArraySizes["in"]; got != 5 {
		t.Fatalf("hamming in size = %d", got)
	}
	// Unoverridden families keep their suite-preset sizes.
	if got := byName["matmul"].ScalarArgs["n"]; got != 8 {
		t.Fatalf("matmul n = %d", got)
	}
	if _, err := RegistrySuite("s", map[string]workloads.Values{
		"fdct1": {"pixels": -1},
	}); err == nil {
		t.Fatal("out-of-range override must fail suite construction")
	}
}
