package core

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/workloads"
)

func trivialSuite(n int) *Suite {
	s := &Suite{Name: "trivial"}
	for i := 0; i < n; i++ {
		s.Cases = append(s.Cases, hammingCase(fmt.Sprintf("ham%02d", i), 4+i%4))
	}
	return s
}

// durationRE matches Go duration renderings ("1.5ms", "1m0.5s", "300µs").
var durationRE = regexp.MustCompile(`(\d+(\.\d+)?(h|ms|µs|us|ns|m|s))+`)

// normalizeReport blanks wall times, the derived speedup, and the worker
// count so reports from different worker counts can be compared byte
// for byte — everything else must be deterministic.
func normalizeReport(s string) string {
	s = durationRE.ReplaceAllString(s, "T")
	s = regexp.MustCompile(`speedup \d+(\.\d+)?x`).ReplaceAllString(s, "speedup Sx")
	s = regexp.MustCompile(`workers: \d+`).ReplaceAllString(s, "workers: N")
	s = regexp.MustCompile(`kernel \d+ events/sec`).ReplaceAllString(s, "kernel E events/sec")
	return s
}

func TestRunnerDeterministicOrdering(t *testing.T) {
	suite := trivialSuite(12)
	seq := (&Runner{Workers: 1}).Run(context.Background(), suite, Options{})
	par := (&Runner{Workers: 8}).Run(context.Background(), suite, Options{})
	if !seq.Passed() || !par.Passed() {
		t.Fatalf("seq passed=%v par passed=%v", seq.Passed(), par.Passed())
	}
	if len(par.Results) != len(suite.Cases) {
		t.Fatalf("results=%d", len(par.Results))
	}
	for i, r := range par.Results {
		if r.Name != suite.Cases[i].Name {
			t.Fatalf("result %d is %q, want %q", i, r.Name, suite.Cases[i].Name)
		}
	}
	var bufSeq, bufPar bytes.Buffer
	seq.Report(&bufSeq)
	par.Report(&bufPar)
	nSeq, nPar := normalizeReport(bufSeq.String()), normalizeReport(bufPar.String())
	if nSeq != nPar {
		t.Fatalf("reports differ beyond wall times:\n--- workers=1\n%s\n--- workers=8\n%s", nSeq, nPar)
	}
}

func TestRunnerTimeoutSurfacesAsFailedCase(t *testing.T) {
	// The slow FDCT takes seconds uninterrupted; the kernel must notice
	// the deadline mid-simulation and fail the case promptly.
	src, sizes, args, inputs := workloads.FDCTCase("slow", 65536, false, 42)
	slow := TestCase{Name: "slow", Source: src, Func: "fdct",
		ArraySizes: sizes, ScalarArgs: args, Inputs: inputs}
	suite := &Suite{Name: "timeouts", Cases: []TestCase{slow, hammingCase("fast", 8)}}

	start := time.Now()
	res := (&Runner{Workers: 2, Timeout: 150 * time.Millisecond}).Run(context.Background(), suite, Options{})
	wall := time.Since(start)

	if res.Passed() {
		t.Fatal("suite with a timed-out case must not pass")
	}
	sr := res.Results[0]
	if sr.OK() || sr.Err == nil || !strings.Contains(sr.Err.Error(), "timeout after") {
		t.Fatalf("slow case: OK=%v err=%v", sr.OK(), sr.Err)
	}
	if sr.Skipped {
		t.Fatal("timed-out case must be failed, not skipped")
	}
	if fr := res.Results[1]; !fr.OK() {
		t.Fatalf("fast case must still pass: %+v", fr)
	}
	// Far below the multi-second uninterrupted runtime: proves the
	// kernel stopped at the deadline instead of running to completion.
	if wall > 5*time.Second {
		t.Fatalf("suite took %v; timeout did not interrupt the simulation", wall)
	}
	passed, failed := res.Counts()
	if passed != 1 || failed != 1 {
		t.Fatalf("passed=%d failed=%d", passed, failed)
	}
}

func TestRunnerFailFastSkipsPending(t *testing.T) {
	suite := &Suite{Name: "failfast", Cases: []TestCase{
		{Name: "broken", Source: "void f( {", Func: "f"},
		hammingCase("later1", 8),
		hammingCase("later2", 8),
	}}
	res := (&Runner{Workers: 1, FailFast: true}).Run(context.Background(), suite, Options{})
	if res.Passed() {
		t.Fatal("suite must fail")
	}
	if res.Results[0].OK() || res.Results[0].Skipped {
		t.Fatalf("first case must be a real failure: %+v", res.Results[0])
	}
	for i := 1; i < 3; i++ {
		r := res.Results[i]
		if !r.Skipped {
			t.Fatalf("case %d must be skipped after fail-fast, got %+v", i, r)
		}
		if r.Err == nil || !strings.Contains(r.Err.Error(), "skipped") {
			t.Fatalf("case %d error=%v", i, r.Err)
		}
	}
	if n := res.Skipped(); n != 2 {
		t.Fatalf("skipped=%d", n)
	}
	var buf bytes.Buffer
	res.Report(&buf)
	out := buf.String()
	for _, want := range []string{"SKIP", "(2 skipped)", "0 passed, 3 failed"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestRunnerFailFastCancelsInFlight(t *testing.T) {
	// With two workers the broken case fails almost instantly while the
	// slow FDCT is (or is about to start) executing; fail-fast must
	// interrupt it mid-simulation and record it as skipped, not as a
	// second failure.
	src, sizes, args, inputs := workloads.FDCTCase("slow", 65536, false, 42)
	slow := TestCase{Name: "slow", Source: src, Func: "fdct",
		ArraySizes: sizes, ScalarArgs: args, Inputs: inputs}
	suite := &Suite{Name: "ff-inflight", Cases: []TestCase{
		{Name: "broken", Source: "void f( {", Func: "f"},
		slow,
	}}
	start := time.Now()
	res := (&Runner{Workers: 2, FailFast: true}).Run(context.Background(), suite, Options{})
	wall := time.Since(start)
	if res.Results[0].Skipped || res.Results[0].OK() {
		t.Fatalf("broken case must be the one real failure: %+v", res.Results[0])
	}
	if r := res.Results[1]; !r.Skipped {
		t.Fatalf("in-flight case must be skipped, got err=%v passed=%v", r.Err, r.Passed)
	}
	if res.Skipped() != 1 {
		t.Fatalf("skipped=%d", res.Skipped())
	}
	// Far below the slow case's multi-second uninterrupted runtime.
	if wall > 5*time.Second {
		t.Fatalf("fail-fast did not interrupt the in-flight case (suite took %v)", wall)
	}
}

func TestRunnerNoFailFastRunsEverything(t *testing.T) {
	suite := &Suite{Name: "keep-going", Cases: []TestCase{
		{Name: "broken", Source: "void f( {", Func: "f"},
		hammingCase("later", 8),
	}}
	res := (&Runner{Workers: 1}).Run(context.Background(), suite, Options{})
	if res.Skipped() != 0 {
		t.Fatalf("nothing may be skipped without fail-fast: %+v", res.Results)
	}
	if !res.Results[1].OK() {
		t.Fatalf("second case must run and pass: %+v", res.Results[1])
	}
}

// TestRunnerManyTrivialCasesConcurrently exists chiefly for the race
// detector: every case builds its own compiler and simulator, and this
// drives many of them through all workers at once.
func TestRunnerManyTrivialCasesConcurrently(t *testing.T) {
	suite := trivialSuite(32)
	res := (&Runner{Workers: 8}).Run(context.Background(), suite, Options{})
	if !res.Passed() {
		for _, r := range res.Results {
			if !r.OK() {
				t.Errorf("case %s: err=%v passed=%v", r.Name, r.Err, r.Passed)
			}
		}
		t.Fatal("suite failed")
	}
	if passed, failed := res.Counts(); passed != 32 || failed != 0 {
		t.Fatalf("passed=%d failed=%d", passed, failed)
	}
}

func TestRunnerCancellationSkipsCases(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := (&Runner{Workers: 2}).Run(ctx, trivialSuite(4), Options{})
	if res.Passed() {
		t.Fatal("canceled suite must not pass")
	}
	for i, r := range res.Results {
		if !r.Skipped {
			t.Fatalf("case %d must be skipped under a canceled context: %+v", i, r)
		}
	}
}

func TestEmptySuiteNotPassed(t *testing.T) {
	res := (&Suite{Name: "empty"}).Run(Options{})
	if res.Passed() {
		t.Fatal("an empty suite must report not-passed")
	}
	if passed, failed := res.Counts(); passed != 0 || failed != 0 {
		t.Fatalf("passed=%d failed=%d", passed, failed)
	}
	var buf bytes.Buffer
	res.Report(&buf)
	out := buf.String()
	for _, want := range []string{"0 passed, 0 failed", "workers: 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestSuiteResultAggregates(t *testing.T) {
	res := (&Runner{Workers: 2}).Run(context.Background(), trivialSuite(4), Options{})
	if !res.Passed() {
		t.Fatal("suite failed")
	}
	if res.Workers != 2 {
		t.Fatalf("workers=%d", res.Workers)
	}
	if res.TotalEvents == 0 {
		t.Fatal("TotalEvents must aggregate kernel events")
	}
	if res.MaxCaseWall <= 0 || res.MaxCaseWall > res.Wall {
		t.Fatalf("MaxCaseWall=%v Wall=%v", res.MaxCaseWall, res.Wall)
	}
	if res.Speedup <= 0 {
		t.Fatalf("Speedup=%v", res.Speedup)
	}
	if res.TotalSimWall <= 0 {
		t.Fatalf("TotalSimWall=%v", res.TotalSimWall)
	}
	if want := float64(res.TotalEvents) / res.TotalSimWall.Seconds(); res.EventsPerSec != want {
		t.Fatalf("EventsPerSec=%v want %v", res.EventsPerSec, want)
	}
	for _, r := range res.Results {
		if r.Wall <= 0 {
			t.Fatalf("case %s has no wall time", r.Name)
		}
		if r.Events() == 0 {
			t.Fatalf("case %s has no events", r.Name)
		}
	}
}

func TestSuiteWriteJSON(t *testing.T) {
	suite := &Suite{Name: "jsonl", Cases: []TestCase{
		hammingCase("good", 8),
		{Name: "broken", Source: "void f( {", Func: "f"},
	}}
	res := (&Runner{Workers: 2}).Run(context.Background(), suite, Options{})
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 2 case lines + 1 summary, got %d:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], `"name":"good"`) || !strings.Contains(lines[0], `"passed":true`) {
		t.Errorf("case line 0: %s", lines[0])
	}
	if !strings.Contains(lines[1], `"name":"broken"`) || !strings.Contains(lines[1], `"passed":false`) ||
		!strings.Contains(lines[1], `"error"`) {
		t.Errorf("case line 1: %s", lines[1])
	}
	if !strings.Contains(lines[2], `"ok":false`) || !strings.Contains(lines[2], `"workers":2`) {
		t.Errorf("summary: %s", lines[2])
	}
	if !strings.Contains(lines[2], `"events_per_sec"`) || !strings.Contains(lines[2], `"sim_wall_ns"`) {
		t.Errorf("summary missing kernel throughput stats: %s", lines[2])
	}
}

// TestSuiteJSONDecodesIntoAPITypes is the suite half of the shared-
// schema acceptance criterion: every JSONL line the suite emits decodes
// losslessly into the versioned internal/api wire types.
func TestSuiteJSONDecodesIntoAPITypes(t *testing.T) {
	suite := &Suite{Name: "apiround", Cases: []TestCase{hammingCase("h8", 8)}}
	res := (&Runner{Workers: 1, Repeat: 2}).Run(context.Background(), suite, Options{})
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(&buf)
	var rec api.CaseRecord
	if err := dec.Decode(&rec); err != nil {
		t.Fatal(err)
	}
	if err := api.CheckVersion(rec.SchemaVersion); err != nil {
		t.Fatal(err)
	}
	if rec.SchemaVersion != api.SchemaVersion {
		t.Fatalf("case record schema_version = %d, want %d", rec.SchemaVersion, api.SchemaVersion)
	}
	want := res.CaseRecord(res.Results[0])
	if !reflect.DeepEqual(rec, want) {
		t.Fatalf("case record round trip: got %+v, want %+v", rec, want)
	}
	if rec.Replays != 2 || !rec.Passed || rec.Events == 0 {
		t.Fatalf("unexpected case record: %+v", rec)
	}
	var sum api.SuiteRecord
	if err := dec.Decode(&sum); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sum, res.SuiteRecord()) {
		t.Fatalf("suite record round trip: got %+v, want %+v", sum, res.SuiteRecord())
	}
	if sum.SchemaVersion != api.SchemaVersion || !sum.OK || sum.Cases != 1 {
		t.Fatalf("unexpected suite record: %+v", sum)
	}
}
