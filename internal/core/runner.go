package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Runner shards a Suite's cases across a pool of workers. Every case
// builds its own compiler pipeline and hades.Simulator, so cases are
// independent by construction; the runner adds deterministic result
// ordering (results land at the case's index regardless of completion
// order), per-case timeouts, cancellation, and fail-fast.
//
// This is the paper's feasibility argument made concrete: "verify, at
// high abstraction levels, compiler results over a complete test suite
// in feasible time" — suite wall time comes from sharding independent
// cases over cores, not from a faster single lane.
type Runner struct {
	// Workers is the pool size; <=0 means runtime.GOMAXPROCS(0).
	Workers int
	// Timeout bounds each case's end-to-end wall time; 0 means none. A
	// case that exceeds it is recorded as failed (never hung): the event
	// kernel polls cancellation once per simulated instant.
	Timeout time.Duration
	// FailFast cancels the remaining cases after the first failure:
	// cases not yet started and cases interrupted mid-run are both
	// recorded as skipped, so the one real failure stays identifiable.
	FailFast bool
	// Repeat runs each case's simulate-and-verify round this many times
	// on its once-prepared design (<=0 means 1). Rounds after the first
	// reset and replay the cached configuration graphs, so a verify
	// sweep pays compile and elaboration once per case, not per round.
	Repeat int
}

// Run executes the suite and returns one result per case, in case
// order. It never returns nil results: errored, timed-out, and skipped
// cases are all materialised as failed CaseResults so the suite always
// reports in full.
func (r *Runner) Run(ctx context.Context, s *Suite, opts Options) *SuiteResult {
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(s.Cases) {
		workers = max(1, len(s.Cases))
	}
	out := &SuiteResult{
		Name:    s.Name,
		Workers: workers,
		Results: make([]*CaseResult, len(s.Cases)),
	}

	ctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)

	start := time.Now()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(s.Cases) {
					return
				}
				tc := s.Cases[i]
				if err := context.Cause(ctx); err != nil {
					out.Results[i] = &CaseResult{
						Name:    tc.Name,
						Skipped: true,
						Err:     fmt.Errorf("core: %s: skipped: %w", tc.Name, err),
					}
					continue
				}
				res := r.runOne(ctx, tc, opts)
				out.Results[i] = res
				if r.FailFast && !res.OK() && !res.Skipped {
					cancel(errFailFast)
				}
			}
		}()
	}
	wg.Wait()
	out.Wall = time.Since(start)
	out.aggregate()
	return out
}

var errFailFast = errors.New("fail-fast after earlier failure")

func (r *Runner) runOne(ctx context.Context, tc TestCase, opts Options) *CaseResult {
	cctx := ctx
	if r.Timeout > 0 {
		var cancel context.CancelFunc
		cctx, cancel = context.WithTimeout(ctx, r.Timeout)
		defer cancel()
	}
	start := time.Now()
	res, err := RunCaseRepeatContext(cctx, tc, opts, r.Repeat)
	wall := time.Since(start)
	if err != nil {
		switch cause := context.Cause(ctx); {
		case cause != nil:
			// The suite was canceled (fail-fast or caller) while this
			// case was executing: skipped, not a failure of its own.
			res = &CaseResult{
				Name:    tc.Name,
				Skipped: true,
				Err:     fmt.Errorf("core: %s: skipped mid-run: %w", tc.Name, cause),
			}
		case errors.Is(cctx.Err(), context.DeadlineExceeded):
			res = &CaseResult{
				Name: tc.Name,
				Err:  fmt.Errorf("core: %s: timeout after %v: %w", tc.Name, r.Timeout, err),
			}
		default:
			res = &CaseResult{Name: tc.Name, Err: err}
		}
	}
	res.Wall = wall
	return res
}

// aggregate fills the suite-level statistics from the per-case results.
func (s *SuiteResult) aggregate() {
	var sum time.Duration
	for _, r := range s.Results {
		if r == nil {
			continue
		}
		s.TotalEvents += r.Events()
		s.TotalSimWall += r.SimWall
		sum += r.Wall
		if r.Wall > s.MaxCaseWall {
			s.MaxCaseWall = r.Wall
		}
	}
	if s.TotalSimWall > 0 {
		s.EventsPerSec = float64(s.TotalEvents) / s.TotalSimWall.Seconds()
	}
	if s.Wall > 0 {
		s.Speedup = float64(sum) / float64(s.Wall)
	}
}
