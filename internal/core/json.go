package core

import (
	"encoding/json"
	"io"
	"sort"

	"repro/internal/api"
)

// CaseRecord renders one case result as the shared versioned wire type
// (internal/api) — the same schema the bench harness and the simd
// server emit.
func (s *SuiteResult) CaseRecord(r *CaseResult) api.CaseRecord {
	rec := api.CaseRecord{
		SchemaVersion: api.SchemaVersion,
		Suite:         s.Name,
		Name:          r.Name,
		Passed:        r.OK(),
		Skipped:       r.Skipped,
		Replays:       r.Replays,
		WallNS:        r.Wall.Nanoseconds(),
		SimWallNS:     r.SimWall.Nanoseconds(),
		RefWallNS:     r.RefWall.Nanoseconds(),
		SourceLoC:     r.SourceLoC,
		TotalOps:      r.TotalOps,
		Events:        r.Events(),
		RefSteps:      r.RefSteps,
	}
	if r.Err != nil {
		rec.Error = r.Err.Error()
	}
	for name, ms := range r.Mismatches {
		if len(ms) > 0 {
			if rec.Mismatches == nil {
				rec.Mismatches = map[string]int{}
			}
			rec.Mismatches[name] = len(ms)
		}
	}
	for _, p := range r.Partitions {
		rec.Partitions = append(rec.Partitions, api.PartitionRecord{
			ID:        p.ID,
			Operators: p.Operators,
			States:    p.States,
			Cycles:    p.Cycles,
			Events:    p.SimulatedEvents,
			SimWallNS: p.SimWall.Nanoseconds(),
		})
	}
	sort.Slice(rec.Partitions, func(i, j int) bool { return rec.Partitions[i].ID < rec.Partitions[j].ID })
	return rec
}

// SuiteRecord renders the suite summary as the shared versioned wire
// type (internal/api).
func (s *SuiteResult) SuiteRecord() api.SuiteRecord {
	passed, failed := s.Counts()
	return api.SuiteRecord{
		SchemaVersion: api.SchemaVersion,
		Suite:         s.Name,
		Cases:         len(s.Results),
		Passed:        passed,
		Failed:        failed,
		Skipped:       s.Skipped(),
		Workers:       s.Workers,
		WallNS:        s.Wall.Nanoseconds(),
		MaxCaseNS:     s.MaxCaseWall.Nanoseconds(),
		TotalEvents:   s.TotalEvents,
		SimWallNS:     s.TotalSimWall.Nanoseconds(),
		EventsPerSec:  s.EventsPerSec,
		Speedup:       s.Speedup,
		OK:            s.Passed(),
	}
}

// WriteJSON emits one JSON object per case in case order, followed by a
// suite summary object, one object per line (JSON Lines). The objects
// are the versioned internal/api wire types.
func (s *SuiteResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, r := range s.Results {
		if err := enc.Encode(s.CaseRecord(r)); err != nil {
			return err
		}
	}
	return enc.Encode(s.SuiteRecord())
}
