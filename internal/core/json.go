package core

import (
	"encoding/json"
	"io"
	"sort"
)

// caseRecord is the machine-readable view of one CaseResult, emitted as
// one JSON object per line so CI can stream, grep, and archive it.
type caseRecord struct {
	Suite      string            `json:"suite"`
	Name       string            `json:"name"`
	Passed     bool              `json:"passed"`
	Skipped    bool              `json:"skipped,omitempty"`
	Replays    int               `json:"replays,omitempty"`
	Error      string            `json:"error,omitempty"`
	WallNS     int64             `json:"wall_ns"`
	SimWallNS  int64             `json:"sim_wall_ns"`
	RefWallNS  int64             `json:"ref_wall_ns"`
	SourceLoC  int               `json:"source_loc"`
	TotalOps   int               `json:"total_ops"`
	Events     uint64            `json:"events"`
	RefSteps   uint64            `json:"ref_steps"`
	Mismatches map[string]int    `json:"mismatches,omitempty"`
	Partitions []partitionRecord `json:"partitions,omitempty"`
}

type partitionRecord struct {
	ID        string `json:"id"`
	Operators int    `json:"operators"`
	States    int    `json:"states"`
	Cycles    uint64 `json:"cycles"`
	Events    uint64 `json:"events"`
	SimWallNS int64  `json:"sim_wall_ns"`
}

// suiteRecord is the trailing summary object of a JSON suite report.
type suiteRecord struct {
	Suite        string  `json:"suite"`
	Cases        int     `json:"cases"`
	Passed       int     `json:"passed"`
	Failed       int     `json:"failed"`
	Skipped      int     `json:"skipped"`
	Workers      int     `json:"workers"`
	WallNS       int64   `json:"wall_ns"`
	MaxCaseNS    int64   `json:"max_case_wall_ns"`
	TotalEvents  uint64  `json:"total_events"`
	SimWallNS    int64   `json:"sim_wall_ns"`
	EventsPerSec float64 `json:"events_per_sec"`
	Speedup      float64 `json:"speedup"`
	OK           bool    `json:"ok"`
}

// WriteJSON emits one JSON object per case in case order, followed by a
// suite summary object, one object per line (JSON Lines).
func (s *SuiteResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, r := range s.Results {
		rec := caseRecord{
			Suite:     s.Name,
			Name:      r.Name,
			Passed:    r.OK(),
			Skipped:   r.Skipped,
			Replays:   r.Replays,
			WallNS:    r.Wall.Nanoseconds(),
			SimWallNS: r.SimWall.Nanoseconds(),
			RefWallNS: r.RefWall.Nanoseconds(),
			SourceLoC: r.SourceLoC,
			TotalOps:  r.TotalOps,
			Events:    r.Events(),
			RefSteps:  r.RefSteps,
		}
		if r.Err != nil {
			rec.Error = r.Err.Error()
		}
		for name, ms := range r.Mismatches {
			if len(ms) > 0 {
				if rec.Mismatches == nil {
					rec.Mismatches = map[string]int{}
				}
				rec.Mismatches[name] = len(ms)
			}
		}
		for _, p := range r.Partitions {
			rec.Partitions = append(rec.Partitions, partitionRecord{
				ID:        p.ID,
				Operators: p.Operators,
				States:    p.States,
				Cycles:    p.Cycles,
				Events:    p.SimulatedEvents,
				SimWallNS: p.SimWall.Nanoseconds(),
			})
		}
		sort.Slice(rec.Partitions, func(i, j int) bool { return rec.Partitions[i].ID < rec.Partitions[j].ID })
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	passed, failed := s.Counts()
	return enc.Encode(suiteRecord{
		Suite:        s.Name,
		Cases:        len(s.Results),
		Passed:       passed,
		Failed:       failed,
		Skipped:      s.Skipped(),
		Workers:      s.Workers,
		WallNS:       s.Wall.Nanoseconds(),
		MaxCaseNS:    s.MaxCaseWall.Nanoseconds(),
		TotalEvents:  s.TotalEvents,
		SimWallNS:    s.TotalSimWall.Nanoseconds(),
		EventsPerSec: s.EventsPerSec,
		Speedup:      s.Speedup,
		OK:           s.Passed(),
	})
}
