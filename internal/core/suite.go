package core

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/memfile"
)

// Suite is the regression automation of the infrastructure — the role
// the ANT build plays in the paper: "verify, at high abstraction levels,
// compiler results over a complete test suite in feasible time."
type Suite struct {
	Name  string
	Cases []TestCase
}

// SuiteResult aggregates a suite run.
type SuiteResult struct {
	Name    string
	Results []*CaseResult
	Wall    time.Duration
}

// Passed reports whether every case passed.
func (s *SuiteResult) Passed() bool {
	for _, r := range s.Results {
		if !r.Passed || r.Err != nil {
			return false
		}
	}
	return len(s.Results) > 0
}

// Counts returns (passed, failed).
func (s *SuiteResult) Counts() (passed, failed int) {
	for _, r := range s.Results {
		if r.Passed && r.Err == nil {
			passed++
		} else {
			failed++
		}
	}
	return
}

// Run executes every case; a case that errors is recorded as failed
// rather than aborting the suite (the whole suite must always report).
func (s *Suite) Run(opts Options) *SuiteResult {
	out := &SuiteResult{Name: s.Name}
	start := time.Now()
	for _, tc := range s.Cases {
		r, err := RunCase(tc, opts)
		if err != nil {
			r = &CaseResult{Name: tc.Name, Passed: false, Err: err}
		}
		out.Results = append(out.Results, r)
	}
	out.Wall = time.Since(start)
	return out
}

// Report writes a human-readable suite report.
func (s *SuiteResult) Report(w io.Writer) {
	fmt.Fprintf(w, "suite %s: %d case(s), %v\n", s.Name, len(s.Results), s.Wall.Round(time.Millisecond))
	for _, r := range s.Results {
		if r.Err != nil {
			fmt.Fprintf(w, "  %-12s ERROR %v\n", r.Name, r.Err)
			continue
		}
		fmt.Fprintf(w, "  %s\n", r.Summary())
		if !r.Passed {
			for name, ms := range r.Mismatches {
				if len(ms) > 0 {
					fmt.Fprintf(w, "    %s\n", indent(memfile.FormatMismatches(name, ms, 4), "    "))
				}
			}
		}
	}
	passed, failed := s.Counts()
	fmt.Fprintf(w, "result: %d passed, %d failed\n", passed, failed)
}

func indent(s, pad string) string {
	return strings.ReplaceAll(s, "\n", "\n"+pad)
}
