package core

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/memfile"
)

// Suite is the regression automation of the infrastructure — the role
// the ANT build plays in the paper: "verify, at high abstraction levels,
// compiler results over a complete test suite in feasible time."
type Suite struct {
	Name  string
	Cases []TestCase
}

// SuiteResult aggregates a suite run.
type SuiteResult struct {
	Name         string
	Results      []*CaseResult
	Wall         time.Duration
	Workers      int           // worker-pool size the suite ran with
	TotalEvents  uint64        // kernel events summed over every case
	TotalSimWall time.Duration // kernel wall time summed over every case
	EventsPerSec float64       // kernel throughput: TotalEvents / TotalSimWall
	MaxCaseWall  time.Duration // slowest single case (the parallel critical path)
	Speedup      float64       // sum of case walls / suite wall
}

// Passed reports whether every case passed. An empty suite reports
// not-passed: a regression run that verified nothing must never be
// mistaken for a green one.
func (s *SuiteResult) Passed() bool {
	for _, r := range s.Results {
		if !r.OK() {
			return false
		}
	}
	return len(s.Results) > 0
}

// Counts returns (passed, failed); skipped cases count as failed.
func (s *SuiteResult) Counts() (passed, failed int) {
	for _, r := range s.Results {
		if r.OK() {
			passed++
		} else {
			failed++
		}
	}
	return
}

// Skipped counts the cases skipped by fail-fast or cancellation.
func (s *SuiteResult) Skipped() int {
	n := 0
	for _, r := range s.Results {
		if r.Skipped {
			n++
		}
	}
	return n
}

// Run executes every case sequentially; a case that errors is recorded
// as failed rather than aborting the suite (the whole suite must always
// report). Use a Runner directly for parallel execution, timeouts, and
// fail-fast.
func (s *Suite) Run(opts Options) *SuiteResult {
	return (&Runner{Workers: 1}).Run(context.Background(), s, opts)
}

// Report writes a human-readable suite report. Its output is
// deterministic for a given suite regardless of worker count, modulo
// wall times and the derived speedup.
func (s *SuiteResult) Report(w io.Writer) {
	fmt.Fprintf(w, "suite %s: %d case(s), %v\n", s.Name, len(s.Results), s.Wall.Round(time.Millisecond))
	for _, r := range s.Results {
		if r.Skipped {
			fmt.Fprintf(w, "  %-12s SKIP %v\n", r.Name, r.Err)
			continue
		}
		if r.Err != nil {
			fmt.Fprintf(w, "  %-12s ERROR %v\n", r.Name, r.Err)
			continue
		}
		fmt.Fprintf(w, "  %s\n", r.Summary())
		if !r.Passed {
			for name, ms := range r.Mismatches {
				if len(ms) > 0 {
					fmt.Fprintf(w, "    %s\n", indent(memfile.FormatMismatches(name, ms, 4), "    "))
				}
			}
		}
	}
	passed, failed := s.Counts()
	fmt.Fprintf(w, "result: %d passed, %d failed", passed, failed)
	if n := s.Skipped(); n > 0 {
		fmt.Fprintf(w, " (%d skipped)", n)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "workers: %d, events: %d, kernel %.0f events/sec, max case %v, speedup %.2fx\n",
		s.Workers, s.TotalEvents, s.EventsPerSec, s.MaxCaseWall.Round(time.Millisecond), s.Speedup)
}

func indent(s, pad string) string {
	return strings.ReplaceAll(s, "\n", "\n"+pad)
}
