package core

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"repro/internal/flow"
	"repro/internal/workloads"
)

func fdctCase(t *testing.T, name string, pixels int, two bool) TestCase {
	t.Helper()
	src, sizes, args, inputs := workloads.FDCTCase(name, pixels, two, 42)
	return TestCase{
		Name: name, Source: src, Func: "fdct",
		ArraySizes: sizes, ScalarArgs: args, Inputs: inputs,
	}
}

func hammingCase(name string, n int) TestCase {
	sizes, args, inputs, expected := workloads.HammingCase(n, 9)
	return TestCase{
		Name: name, Source: workloads.HammingSource, Func: "hamming",
		ArraySizes: sizes, ScalarArgs: args, Inputs: inputs,
		Expected: map[string][]int64{"out": expected},
	}
}

func TestRunCaseFDCT1Small(t *testing.T) {
	res, err := RunCase(fdctCase(t, "fdct1", 128, false), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Passed {
		t.Fatalf("mismatches: %v", res.Failed())
	}
	if len(res.Partitions) != 1 {
		t.Fatalf("partitions=%d", len(res.Partitions))
	}
	p := res.Partitions[0]
	if p.Operators < 100 {
		t.Fatalf("operators=%d suspiciously few for FDCT", p.Operators)
	}
	if p.XMLDatapathLoC <= p.XMLFSMLoC {
		t.Fatalf("datapath XML (%d) should dominate FSM XML (%d)", p.XMLDatapathLoC, p.XMLFSMLoC)
	}
	if p.Cycles == 0 || p.SimWall == 0 {
		t.Fatalf("stats=%+v", p)
	}
	if res.SourceLoC < 40 {
		t.Fatalf("source LoC=%d", res.SourceLoC)
	}
}

func TestRunCaseFDCT2TwoPartitions(t *testing.T) {
	res, err := RunCase(fdctCase(t, "fdct2", 128, true), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed || res.Err != nil {
		t.Fatalf("res=%+v", res)
	}
	if len(res.Partitions) != 2 {
		t.Fatalf("partitions=%d", len(res.Partitions))
	}
	// Each FDCT2 partition must be roughly half of FDCT1 (paper: 169 vs
	// 90/90 operators).
	fdct1, err := RunCase(fdctCase(t, "fdct1", 128, false), Options{})
	if err != nil {
		t.Fatal(err)
	}
	total1 := fdct1.Partitions[0].Operators
	for _, p := range res.Partitions {
		if p.Operators >= total1 {
			t.Fatalf("partition %s (%d ops) not smaller than FDCT1 (%d)", p.ID, p.Operators, total1)
		}
		if p.Operators < total1/3 {
			t.Fatalf("partition %s (%d ops) implausibly small vs FDCT1 (%d)", p.ID, p.Operators, total1)
		}
	}
}

func TestRunCaseHamming(t *testing.T) {
	res, err := RunCase(hammingCase("hamming", 32), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed || res.Err != nil {
		t.Fatalf("res=%+v mism=%v", res, res.Mismatches)
	}
	if len(res.Partitions) != 1 {
		t.Fatalf("partitions=%d", len(res.Partitions))
	}
}

func TestHammingSmallerThanFDCT(t *testing.T) {
	// Table I ordering: Hamming is far smaller than the FDCTs on every
	// size column.
	h, err := RunCase(hammingCase("hamming", 16), Options{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := RunCase(fdctCase(t, "fdct1", 128, false), Options{})
	if err != nil {
		t.Fatal(err)
	}
	hp, fp := h.Partitions[0], f.Partitions[0]
	if hp.Operators >= fp.Operators {
		t.Fatalf("hamming ops %d !< fdct ops %d", hp.Operators, fp.Operators)
	}
	if hp.XMLDatapathLoC >= fp.XMLDatapathLoC {
		t.Fatalf("hamming dp xml %d !< fdct %d", hp.XMLDatapathLoC, fp.XMLDatapathLoC)
	}
	if hp.JavaFSMLoC >= fp.JavaFSMLoC {
		t.Fatalf("hamming java %d !< fdct %d", hp.JavaFSMLoC, fp.JavaFSMLoC)
	}
}

func TestRunCaseEmitsArtifacts(t *testing.T) {
	dir := t.TempDir()
	tc := hammingCase("hamming", 8)
	res, err := RunCase(tc, Options{WorkDir: dir, EmitArtifacts: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed {
		t.Fatal("case failed")
	}
	for _, label := range []string{
		"rtg", "datapath:hamming_p1", "fsm:hamming_p1_ctl",
		"dot:rtg", "java:rtg", "dot:hamming_p1", "hds:hamming_p1",
		"dot:hamming_p1_ctl", "java:hamming_p1_ctl",
		"mem-in:in", "mem:out",
	} {
		path, ok := res.Artifacts[label]
		if !ok {
			t.Errorf("missing artifact %q (have %v)", label, keys(res.Artifacts))
			continue
		}
		if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
			t.Errorf("artifact %q empty or missing: %v", label, err)
		}
	}
}

func keys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestRunCaseDetectsInjectedMismatch(t *testing.T) {
	tc := hammingCase("bad", 8)
	// Corrupt the pinned expectation: the infrastructure must flag it.
	tc.Expected["out"][3] ^= 1
	res, err := RunCase(tc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed {
		t.Fatal("corrupted expectation must fail")
	}
	ms := res.Mismatches["out"]
	if len(ms) != 1 || ms[0].Addr != 3 {
		t.Fatalf("mismatches=%v", ms)
	}
}

func TestRunCaseIncompleteSimulationReported(t *testing.T) {
	res, err := RunCase(hammingCase("tiny", 8), Options{MaxCycles: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err == nil || !strings.Contains(res.Err.Error(), "incomplete") {
		t.Fatalf("res.Err=%v", res.Err)
	}
	if res.Passed {
		t.Fatal("incomplete run cannot pass")
	}
}

func TestSuiteRunAndReport(t *testing.T) {
	s := &Suite{
		Name: "regression",
		Cases: []TestCase{
			hammingCase("hamming", 8),
			fdctCase(t, "fdct1", 64, false),
		},
	}
	res := s.Run(Options{})
	if !res.Passed() {
		t.Fatalf("suite failed: %+v", res.Results)
	}
	passed, failed := res.Counts()
	if passed != 2 || failed != 0 {
		t.Fatalf("passed=%d failed=%d", passed, failed)
	}
	var buf bytes.Buffer
	res.Report(&buf)
	out := buf.String()
	for _, want := range []string{"suite regression", "hamming", "fdct1", "PASS", "2 passed, 0 failed"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestSuiteReportsFailuresWithoutAborting(t *testing.T) {
	bad := hammingCase("corrupted", 8)
	bad.Expected["out"][0] ^= 3
	s := &Suite{
		Name: "mixed",
		Cases: []TestCase{
			bad,
			hammingCase("good", 8),
			{Name: "broken", Source: "void f( {", Func: "f"},
		},
	}
	res := s.Run(Options{})
	if res.Passed() {
		t.Fatal("suite must fail")
	}
	passed, failed := res.Counts()
	if passed != 1 || failed != 2 {
		t.Fatalf("passed=%d failed=%d", passed, failed)
	}
	var buf bytes.Buffer
	res.Report(&buf)
	out := buf.String()
	for _, want := range []string{"FAIL", "ERROR", "1 passed, 2 failed", "mismatch"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestZeroOptionsObserveFlowDefaults is the defaults-dedup contract:
// a zero core.Options resolves to exactly the flow constants — core
// holds no defaults of its own. Together with the rtg strictness test
// (rtg.TestOptionsRequireExplicitBounds) and the CLI flag test
// (cliutil.TestFlowFlagsDefaultsAreTheFlowDefaults), this pins the
// single source of truth: core, rtg and cmd/hsim all observe the same
// ClockPeriod/MaxCycles.
func TestZeroOptionsObserveFlowDefaults(t *testing.T) {
	p, err := flow.New(Options{}.FlowOptions(nil)...)
	if err != nil {
		t.Fatal(err)
	}
	cfg := p.Config()
	if cfg.ClockPeriod != flow.DefaultClockPeriod {
		t.Errorf("ClockPeriod=%v want %v", cfg.ClockPeriod, flow.DefaultClockPeriod)
	}
	if cfg.MaxCycles != flow.DefaultMaxCycles {
		t.Errorf("MaxCycles=%v want %v", cfg.MaxCycles, flow.DefaultMaxCycles)
	}
	if cfg.MaxConfigs != flow.DefaultMaxConfigs {
		t.Errorf("MaxConfigs=%v want %v", cfg.MaxConfigs, flow.DefaultMaxConfigs)
	}
	if cfg.Backend != flow.DefaultBackend {
		t.Errorf("Backend=%q want %q", cfg.Backend, flow.DefaultBackend)
	}
	// Explicit values still pass through.
	p2, err := flow.New(Options{ClockPeriod: 4, MaxCycles: 123, Backend: "heapref"}.FlowOptions(nil)...)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := p2.Config()
	if cfg2.ClockPeriod != 4 || cfg2.MaxCycles != 123 || cfg2.Backend != "heapref" {
		t.Fatalf("cfg2=%+v", cfg2)
	}
}

// TestSuitePassesUnderEveryBackend runs the hamming regression case on
// every registered backend — the suite-level acceptance of the
// backend registry (`testsuite -backend heapref` in miniature).
func TestSuitePassesUnderEveryBackend(t *testing.T) {
	for _, backend := range flow.Backends() {
		if strings.HasPrefix(backend.Name, "test-") {
			continue // synthetic registrations from other tests
		}
		s := &Suite{Name: "backend-" + backend.Name, Cases: []TestCase{hammingCase("hamming", 16)}}
		res := s.Run(Options{Backend: backend.Name})
		if !res.Passed() {
			t.Fatalf("%s: suite failed: %+v", backend.Name, res.Results[0].Err)
		}
		if res.TotalEvents == 0 {
			t.Fatalf("%s: no events recorded", backend.Name)
		}
	}
}

// TestCaseObserversStream: reporting is a sink, not a result field —
// per-case observers see each configuration complete.
func TestCaseObserversStream(t *testing.T) {
	var lines bytes.Buffer
	opts := Options{Observers: []flow.Observer{flow.NewProgressObserver(&lines)}}
	res, err := RunCase(hammingCase("hamming", 16), opts)
	if err != nil || !res.OK() {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(lines.String(), "configuration") {
		t.Fatalf("observer saw %q", lines.String())
	}
}

// TestRunCaseRepeatReplays pins the verify-sweep shape: one prepared
// design, several verified rounds, the case reporting how many replays
// it served, with a multi-partition design in the loop.
func TestRunCaseRepeatReplays(t *testing.T) {
	res, err := RunCaseRepeatContext(nil, fdctCase(t, "fdct2", 128, true), Options{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil || !res.Passed {
		t.Fatalf("repeat run failed: err=%v mismatches=%v", res.Err, res.Failed())
	}
	if res.Replays != 3 {
		t.Fatalf("Replays=%d want 3", res.Replays)
	}
	if len(res.Partitions) != 2 || res.Partitions[0].SimulatedEvents == 0 {
		t.Fatalf("partitions=%+v", res.Partitions)
	}
}
