package core

import (
	"fmt"

	"repro/internal/workloads"
)

// WorkloadCase renders a materialized workload as a suite test case.
// The workload's reference-model expectations become the case's pinned
// Expected contents, so the verify stage compares the simulation
// against the pure-Go golden model (arrays the model omits fall back to
// the golden interpreter).
func WorkloadCase(c *workloads.Case) TestCase {
	return TestCase{
		Name:       c.Name,
		Source:     c.Source,
		Func:       c.Func,
		ArraySizes: c.ArraySizes,
		ScalarArgs: c.ScalarArgs,
		Inputs:     c.Inputs,
		Expected:   c.Expected,
	}
}

// RegistrySuite builds the regression suite from the workload registry:
// one case per suite preset of every registered family, in registry
// order. overrides, keyed by family name, merges extra parameter values
// over a preset's own (e.g. {"fdct1": {"pixels": 1024}} shrinks the
// FDCT image, the testsuite command's -pixels flag).
func RegistrySuite(name string, overrides map[string]workloads.Values) (*Suite, error) {
	s := &Suite{Name: name}
	for _, w := range workloads.All() {
		for _, p := range w.Presets() {
			if !p.Suite {
				continue
			}
			v := p.Values.Clone()
			for k, val := range overrides[w.Name()] {
				v[k] = val
			}
			c, err := workloads.BuildWorkload(w, v)
			if err != nil {
				return nil, fmt.Errorf("core: suite case %s: %w", p.Name, err)
			}
			c.Name = p.Name
			s.Cases = append(s.Cases, WorkloadCase(c))
		}
	}
	return s, nil
}
