// Package core is the regression-suite façade of the test
// infrastructure: it keeps the suite automation that replaces the ANT
// build (TestCase, CaseResult, the parallel Runner) and delegates the
// actual verification flow of the paper's Figure 1 — compile →
// transform → elaborate → simulate → verify — to internal/flow, which
// owns the staged pipeline, the defaults, the observers and the
// simulator backend registry.
package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/flow"
	"repro/internal/hades"
	"repro/internal/memfile"
	"repro/internal/xmlspec"
)

// Options tunes a flow run. The zero value is fully usable: every
// unset field resolves to the flow defaults (flow.DefaultClockPeriod,
// flow.DefaultMaxCycles, …) — core itself holds no default values.
type Options struct {
	Width          int
	AutoPartitions int
	ClockPeriod    int64  // simulator ticks; 0: flow.DefaultClockPeriod
	MaxCycles      uint64 // per configuration; 0: flow.DefaultMaxCycles
	WorkDir        string // when set, XML/dot/java/hds/mem artifacts are written here
	EmitArtifacts  bool   // emit dot/java/hds translations (requires WorkDir)
	Backend        string // simulator backend name; "": flow.DefaultBackend
	// Observers stream stage and per-configuration progress for every
	// case run with these options (reporting sinks, VCD taps, …). The
	// same instances are shared by every case, and a parallel Runner
	// runs cases concurrently: observers used with Workers > 1 must be
	// safe for concurrent use (flow.VCDObserver in particular is
	// per-run; see its doc).
	Observers []flow.Observer
}

// FlowOptions renders the options as the flow functional options they
// resolve to; ctx may be nil.
func (o Options) FlowOptions(ctx context.Context) []flow.Option {
	fo := []flow.Option{
		flow.WithWidth(o.Width),
		flow.WithAutoPartitions(o.AutoPartitions),
		flow.WithWorkDir(o.WorkDir),
		flow.WithArtifacts(o.EmitArtifacts),
		flow.WithBackend(o.Backend),
	}
	if o.ClockPeriod > 0 {
		fo = append(fo, flow.WithClock(hades.Time(o.ClockPeriod)))
	}
	if o.MaxCycles > 0 {
		fo = append(fo, flow.WithMaxCycles(o.MaxCycles))
	}
	if ctx != nil {
		fo = append(fo, flow.WithContext(ctx))
	}
	for _, obs := range o.Observers {
		fo = append(fo, flow.WithObserver(obs))
	}
	return fo
}

// TestCase is one entry of the regression suite: a MiniJ source, its
// design parameters, and the initial memory contents.
type TestCase struct {
	Name       string
	Source     string
	Func       string
	ArraySizes map[string]int
	ScalarArgs map[string]int64
	Inputs     map[string][]int64
	// Expected optionally pins exact expected contents per array,
	// checked on top of the golden interpreter's result (the paper's
	// flow); an array matching the interpreter but not its pin fails.
	Expected map[string][]int64
}

// FlowSource renders the case as a flow pipeline source.
func (tc TestCase) FlowSource() flow.Source {
	return flow.Source{
		Name:       tc.Name,
		Text:       tc.Source,
		Func:       tc.Func,
		ArraySizes: tc.ArraySizes,
		ScalarArgs: tc.ScalarArgs,
		Inputs:     tc.Inputs,
		Expected:   tc.Expected,
	}
}

// PartitionStats reports one configuration for the Table I columns.
type PartitionStats struct {
	ID              string
	Operators       int
	States          int
	XMLDatapathLoC  int
	XMLFSMLoC       int
	JavaFSMLoC      int
	Cycles          uint64
	SimWall         time.Duration
	SimulatedEvents uint64
}

// CaseResult reports one verified test case.
type CaseResult struct {
	Name       string
	Passed     bool
	Skipped    bool // true when fail-fast or cancellation skipped the case
	Replays    int  // simulate-and-verify rounds run on the prepared design (>= 1)
	Mismatches map[string][]memfile.Mismatch
	Partitions []PartitionStats
	SourceLoC  int
	TotalOps   int
	Wall       time.Duration // end-to-end case wall time (set by the suite runner)
	SimWall    time.Duration
	RefWall    time.Duration
	RefSteps   uint64
	Artifacts  map[string]string // label -> path (when WorkDir set)
	Err        error
}

// OK reports whether the case ran to completion and verified.
func (r *CaseResult) OK() bool { return r.Passed && r.Err == nil && !r.Skipped }

// Events sums the simulated kernel events across all partitions.
func (r *CaseResult) Events() uint64 {
	var n uint64
	for _, p := range r.Partitions {
		n += p.SimulatedEvents
	}
	return n
}

// Failed lists the arrays with mismatches.
func (r *CaseResult) Failed() []string {
	var out []string
	for name, ms := range r.Mismatches {
		if len(ms) > 0 {
			out = append(out, name)
		}
	}
	return out
}

// Summary renders a one-line report.
func (r *CaseResult) Summary() string {
	status := "PASS"
	if r.Skipped {
		status = "SKIP"
	} else if !r.Passed {
		status = "FAIL"
	}
	return fmt.Sprintf("%-12s %s ops=%d sim=%v ref=%v", r.Name, status, r.TotalOps, r.SimWall, r.RefWall)
}

// CompileOnly compiles a test case's source to its design without
// simulating, for tooling and benchmarks that manage execution directly.
func CompileOnly(tc TestCase, opts Options) (*xmlspec.Design, error) {
	p, err := flow.New(opts.FlowOptions(nil)...)
	if err != nil {
		return nil, err
	}
	c, err := p.Compile(tc.FlowSource())
	if err != nil {
		return nil, err
	}
	return c.Design, nil
}

// RunCase executes the full verification flow for one case with no
// cancellation; see RunCaseContext.
func RunCase(tc TestCase, opts Options) (*CaseResult, error) {
	return RunCaseContext(context.Background(), tc, opts)
}

// RunCaseContext executes the full verification flow for one case
// through the flow pipeline: compile → emit/validate XML → (optionally
// translate to dot/java/hds) → simulate through the RTG on the selected
// backend → run the golden algorithm on copies of the memory files →
// compare memory contents. The context cancels the flow between stages
// and is polled by the event kernel once per simulated instant, so a
// timed-out case fails promptly instead of hanging the suite.
func RunCaseContext(ctx context.Context, tc TestCase, opts Options) (*CaseResult, error) {
	return RunCaseRepeatContext(ctx, tc, opts, 1)
}

// RunCaseRepeatContext is RunCaseContext with the case's design
// prepared once and the simulate-and-verify round run reps times
// through the reconfiguration replay cache — the verify-sweep shape
// that amortizes compile and elaboration across rounds. Every round
// must verify; the recorded per-partition statistics and SimWall come
// from the final round (replayed rounds are trace-identical, so the
// rounds agree).
func RunCaseRepeatContext(ctx context.Context, tc TestCase, opts Options, reps int) (*CaseResult, error) {
	if reps <= 0 {
		reps = 1
	}
	p, err := flow.New(opts.FlowOptions(ctx)...)
	if err != nil {
		return nil, err
	}
	res := &CaseResult{Name: tc.Name, Mismatches: map[string][]memfile.Mismatch{}, Artifacts: map[string]string{}}

	d, err := p.Prepare(tc.FlowSource())
	if err != nil {
		return nil, err
	}
	c := d.Compiled()
	res.SourceLoC = c.SourceLoC
	res.TotalOps = c.TotalOps
	for _, pi := range c.Partitions {
		res.Partitions = append(res.Partitions, PartitionStats{
			ID:             pi.ID,
			Operators:      pi.Operators,
			States:         pi.States,
			XMLDatapathLoC: pi.XMLDatapathLoC,
			XMLFSMLoC:      pi.XMLFSMLoC,
			JavaFSMLoC:     pi.JavaFSMLoC,
		})
	}
	for label, path := range c.Artifacts {
		res.Artifacts[label] = path
	}

	for rep := 0; rep < reps; rep++ {
		sim, err := d.Simulate()
		if err != nil {
			return nil, err
		}
		res.Replays = rep + 1
		for i, run := range sim.Runs {
			if i < len(res.Partitions) {
				res.Partitions[i].Cycles = run.Cycles
				res.Partitions[i].SimWall = run.Wall
				res.Partitions[i].SimulatedEvents = run.Events
			}
		}
		res.SimWall = sim.SimWall
		for label, path := range sim.Artifacts {
			res.Artifacts[label] = path
		}
		if !sim.Completed {
			res.Passed = false
			res.Err = fmt.Errorf("core: %s: simulation incomplete after cycle cap (round %d of %d)", tc.Name, rep+1, reps)
			return res, nil
		}

		v, err := p.Verify(c, sim)
		if err != nil {
			return nil, err
		}
		res.Passed = v.Passed
		res.Mismatches = v.Mismatches
		res.RefWall = v.RefWall
		res.RefSteps = v.RefSteps
		if !v.Passed {
			return res, nil // mismatches mark the failure, as in the single-round flow
		}
	}
	return res, nil
}
