// Package core is the public façade of the test infrastructure: it wires
// the compiler, the XML dialects, the transformation layer, the
// event-driven simulator and the golden-reference interpreter into the
// verification flow of the paper's Figure 1, and provides the regression
// suite automation that replaces the ANT build.
package core

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/compiler"
	"repro/internal/hades"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/memfile"
	"repro/internal/rtg"
	"repro/internal/xmlspec"
	"repro/internal/xsl"
)

// Options tunes a flow run.
type Options struct {
	Width          int
	AutoPartitions int
	ClockPeriod    int64  // simulator ticks; default 10
	MaxCycles      uint64 // per configuration; default 50M
	WorkDir        string // when set, XML/dot/java/hds/mem artifacts are written here
	EmitArtifacts  bool   // emit dot/java/hds translations (requires WorkDir)
}

// TestCase is one entry of the regression suite: a MiniJ source, its
// design parameters, and the initial memory contents.
type TestCase struct {
	Name       string
	Source     string
	Func       string
	ArraySizes map[string]int
	ScalarArgs map[string]int64
	Inputs     map[string][]int64
	// Expected optionally pins exact expected contents per array; when
	// nil the golden interpreter's result is the expectation (the
	// paper's flow).
	Expected map[string][]int64
}

// PartitionStats reports one configuration for the Table I columns.
type PartitionStats struct {
	ID              string
	Operators       int
	States          int
	XMLDatapathLoC  int
	XMLFSMLoC       int
	JavaFSMLoC      int
	Cycles          uint64
	SimWall         time.Duration
	SimulatedEvents uint64
}

// CaseResult reports one verified test case.
type CaseResult struct {
	Name       string
	Passed     bool
	Skipped    bool // true when fail-fast or cancellation skipped the case
	Mismatches map[string][]memfile.Mismatch
	Partitions []PartitionStats
	SourceLoC  int
	TotalOps   int
	Wall       time.Duration // end-to-end case wall time (set by the suite runner)
	SimWall    time.Duration
	RefWall    time.Duration
	RefSteps   uint64
	Artifacts  map[string]string // label -> path (when WorkDir set)
	Err        error
}

// OK reports whether the case ran to completion and verified.
func (r *CaseResult) OK() bool { return r.Passed && r.Err == nil && !r.Skipped }

// Events sums the simulated kernel events across all partitions.
func (r *CaseResult) Events() uint64 {
	var n uint64
	for _, p := range r.Partitions {
		n += p.SimulatedEvents
	}
	return n
}

// Failed lists the arrays with mismatches.
func (r *CaseResult) Failed() []string {
	var out []string
	for name, ms := range r.Mismatches {
		if len(ms) > 0 {
			out = append(out, name)
		}
	}
	return out
}

// Summary renders a one-line report.
func (r *CaseResult) Summary() string {
	status := "PASS"
	if r.Skipped {
		status = "SKIP"
	} else if !r.Passed {
		status = "FAIL"
	}
	return fmt.Sprintf("%-12s %s ops=%d sim=%v ref=%v", r.Name, status, r.TotalOps, r.SimWall, r.RefWall)
}

// CompileOnly compiles a test case's source to its design without
// simulating, for tooling and benchmarks that manage execution directly.
func CompileOnly(tc TestCase, opts Options) (*xmlspec.Design, error) {
	prog, err := lang.Parse(tc.Source)
	if err != nil {
		return nil, err
	}
	comp, err := compiler.Compile(prog, tc.Func, compiler.Config{
		Width:          opts.Width,
		ArraySizes:     tc.ArraySizes,
		ScalarArgs:     tc.ScalarArgs,
		AutoPartitions: opts.AutoPartitions,
	})
	if err != nil {
		return nil, err
	}
	return comp.Design, nil
}

// RunCase executes the full verification flow for one case with no
// cancellation; see RunCaseContext.
func RunCase(tc TestCase, opts Options) (*CaseResult, error) {
	return RunCaseContext(context.Background(), tc, opts)
}

// RunCaseContext executes the full verification flow for one case: compile →
// emit/validate XML → (optionally translate to dot/java/hds) → simulate
// through the RTG → run the golden algorithm on copies of the memory
// files → compare memory contents. The context cancels the flow between
// phases and is polled by the event kernel once per simulated instant,
// so a timed-out case fails promptly instead of hanging the suite.
func RunCaseContext(ctx context.Context, tc TestCase, opts Options) (*CaseResult, error) {
	res := &CaseResult{Name: tc.Name, Mismatches: map[string][]memfile.Mismatch{}, Artifacts: map[string]string{}}

	prog, err := lang.Parse(tc.Source)
	if err != nil {
		return nil, err
	}
	res.SourceLoC = countLines(tc.Source)

	comp, err := compiler.Compile(prog, tc.Func, compiler.Config{
		Width:          opts.Width,
		ArraySizes:     tc.ArraySizes,
		ScalarArgs:     tc.ScalarArgs,
		AutoPartitions: opts.AutoPartitions,
	})
	if err != nil {
		return nil, err
	}

	// Size metrics per partition.
	for _, meta := range comp.Meta {
		dpDoc, err := xmlspec.Marshal(comp.Design.Datapaths[meta.Datapath])
		if err != nil {
			return nil, err
		}
		fsmDoc, err := xmlspec.Marshal(comp.Design.FSMs[meta.FSM])
		if err != nil {
			return nil, err
		}
		javaOut, err := xsl.TransformBytes(xsl.FSMToJava(), fsmDoc)
		if err != nil {
			return nil, err
		}
		res.Partitions = append(res.Partitions, PartitionStats{
			ID:             meta.ID,
			Operators:      meta.Operators,
			States:         meta.States,
			XMLDatapathLoC: xmlspec.LineCount(dpDoc),
			XMLFSMLoC:      xmlspec.LineCount(fsmDoc),
			JavaFSMLoC:     countLines(javaOut),
		})
		res.TotalOps += meta.Operators
	}

	if opts.WorkDir != "" {
		if err := emitArtifacts(tc, comp, opts, res); err != nil {
			return nil, err
		}
	}

	// Simulate.
	ctl, err := rtg.NewController(comp.Design, rtg.Options{
		ClockPeriod: clockPeriod(opts),
		MaxCycles:   maxCycles(opts),
		Context:     ctx,
	})
	if err != nil {
		return nil, err
	}
	for name, depth := range tc.ArraySizes {
		words := make([]int64, depth)
		copy(words, tc.Inputs[name])
		if err := ctl.LoadMemory(name, words); err != nil {
			return nil, err
		}
	}
	exec, err := ctl.Execute()
	if err != nil {
		return nil, err
	}
	if !exec.Completed {
		res.Err = fmt.Errorf("core: %s: simulation incomplete after cycle cap", tc.Name)
		return res, nil
	}
	for i, run := range exec.Runs {
		if i < len(res.Partitions) {
			res.Partitions[i].Cycles = run.Cycles
			res.Partitions[i].SimWall = run.Wall
			res.Partitions[i].SimulatedEvents = run.Events
		}
		res.SimWall += run.Wall
	}

	// Golden reference on copies of the same inputs.
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: %s: %w", tc.Name, err)
	}
	ref := map[string][]int64{}
	for name, depth := range tc.ArraySizes {
		words := make([]int64, depth)
		copy(words, tc.Inputs[name])
		ref[name] = words
	}
	start := time.Now()
	ri, err := interp.Run(comp.Func, ref, tc.ScalarArgs, interp.Options{})
	if err != nil {
		return nil, err
	}
	res.RefWall = time.Since(start)
	res.RefSteps = ri.Steps

	// Compare memory contents (the paper's pass criterion).
	res.Passed = true
	for name := range tc.ArraySizes {
		expected := ref[name]
		if tc.Expected != nil && tc.Expected[name] != nil {
			expected = tc.Expected[name]
		}
		actual, err := ctl.Memory(name)
		if err != nil {
			return nil, err
		}
		ms := memfile.Compare(expected, actual, 0)
		res.Mismatches[name] = ms
		if len(ms) > 0 {
			res.Passed = false
		}
	}

	if opts.WorkDir != "" {
		for name := range tc.ArraySizes {
			actual, _ := ctl.Memory(name)
			path := filepath.Join(opts.WorkDir, tc.Name, name+".out.mem")
			if err := memfile.Save(path, actual, "simulated contents of "+name); err != nil {
				return nil, err
			}
			res.Artifacts["mem:"+name] = path
		}
	}
	return res, nil
}

func emitArtifacts(tc TestCase, comp *compiler.Result, opts Options, res *CaseResult) error {
	dir := filepath.Join(opts.WorkDir, tc.Name)
	files, err := xmlspec.SaveDesign(comp.Design, dir)
	if err != nil {
		return err
	}
	for label, path := range files {
		res.Artifacts[label] = path
	}
	for name := range tc.ArraySizes {
		words := make([]int64, tc.ArraySizes[name])
		copy(words, tc.Inputs[name])
		path := filepath.Join(dir, name+".mem")
		if err := memfile.Save(path, words, "initial contents of "+name); err != nil {
			return err
		}
		res.Artifacts["mem-in:"+name] = path
	}
	if !opts.EmitArtifacts {
		return nil
	}
	emit := func(label, name, content string) error {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			return err
		}
		res.Artifacts[label] = path
		return nil
	}
	rtgDoc, err := xmlspec.Marshal(comp.Design.RTG)
	if err != nil {
		return err
	}
	if out, err := xsl.TransformBytes(xsl.RTGToDot(), rtgDoc); err != nil {
		return err
	} else if err := emit("dot:rtg", "rtg.dot", out); err != nil {
		return err
	}
	if out, err := xsl.TransformBytes(xsl.RTGToJava(), rtgDoc); err != nil {
		return err
	} else if err := emit("java:rtg", "rtg.java", out); err != nil {
		return err
	}
	for name, dp := range comp.Design.Datapaths {
		doc, err := xmlspec.Marshal(dp)
		if err != nil {
			return err
		}
		if out, err := xsl.TransformBytes(xsl.DatapathToDot(), doc); err != nil {
			return err
		} else if err := emit("dot:"+name, name+".dot", out); err != nil {
			return err
		}
		if out, err := xsl.TransformBytes(xsl.DatapathToHDS(), doc); err != nil {
			return err
		} else if err := emit("hds:"+name, name+".hds", out); err != nil {
			return err
		}
	}
	for name, fsm := range comp.Design.FSMs {
		doc, err := xmlspec.Marshal(fsm)
		if err != nil {
			return err
		}
		if out, err := xsl.TransformBytes(xsl.FSMToDot(), doc); err != nil {
			return err
		} else if err := emit("dot:"+name, name+".dot", out); err != nil {
			return err
		}
		if out, err := xsl.TransformBytes(xsl.FSMToJava(), doc); err != nil {
			return err
		} else if err := emit("java:"+name, name+".java", out); err != nil {
			return err
		}
	}
	return nil
}

func clockPeriod(opts Options) hades.Time {
	if opts.ClockPeriod > 0 {
		return hades.Time(opts.ClockPeriod)
	}
	return 10
}

func maxCycles(opts Options) uint64 {
	if opts.MaxCycles > 0 {
		return opts.MaxCycles
	}
	return 50_000_000
}

func countLines(s string) int {
	n := 0
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			line := s[start:i]
			start = i + 1
			if nonBlank(line) {
				n++
			}
		}
	}
	return n
}

func nonBlank(line string) bool {
	for i := 0; i < len(line); i++ {
		if line[i] != ' ' && line[i] != '\t' && line[i] != '\r' {
			return true
		}
	}
	return false
}
