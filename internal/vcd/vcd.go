// Package vcd parses Value Change Dump files back into waveforms and
// compares them. Together with hades.VCDWriter this closes the loop on
// the observability features the paper motivates: waveforms captured
// from a known-good simulation can be diffed against a later run, making
// signal activity itself a regression artifact.
package vcd

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Change is one recorded transition.
type Change struct {
	At    int64
	Value uint64
	Undef bool // the X state
}

// Waveform is the change history of one variable.
type Waveform struct {
	Name    string
	Width   int
	Changes []Change
}

// ValueAt returns the value as of time t and whether it was defined.
func (w *Waveform) ValueAt(t int64) (uint64, bool) {
	val, ok := uint64(0), false
	for _, c := range w.Changes {
		if c.At > t {
			break
		}
		val, ok = c.Value, !c.Undef
	}
	return val, ok
}

// Dump is a parsed VCD file.
type Dump struct {
	Timescale string
	Scope     string
	Waves     map[string]*Waveform // by variable name
	End       int64                // last timestamp seen
}

// Names returns the variable names in sorted order.
func (d *Dump) Names() []string {
	out := make([]string, 0, len(d.Waves))
	for n := range d.Waves {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Parse reads a VCD document.
func Parse(r io.Reader) (*Dump, error) {
	d := &Dump{Waves: map[string]*Waveform{}}
	byID := map[string]*Waveform{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	now := int64(0)
	inDefs := true
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "$timescale"):
			d.Timescale = strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(line, "$timescale"), "$end"))
		case strings.HasPrefix(line, "$scope"):
			fields := strings.Fields(line)
			if len(fields) >= 3 {
				d.Scope = fields[2]
			}
		case strings.HasPrefix(line, "$var"):
			// $var wire <width> <id> <name> $end
			fields := strings.Fields(line)
			if len(fields) < 6 {
				return nil, fmt.Errorf("vcd: line %d: malformed $var: %q", lineNo, line)
			}
			width, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("vcd: line %d: bad width in %q", lineNo, line)
			}
			w := &Waveform{Name: fields[4], Width: width}
			byID[fields[3]] = w
			d.Waves[w.Name] = w
		case strings.HasPrefix(line, "$enddefinitions"):
			inDefs = false
		case strings.HasPrefix(line, "$dumpvars"), line == "$end",
			strings.HasPrefix(line, "$upscope"), strings.HasPrefix(line, "$date"),
			strings.HasPrefix(line, "$version"), strings.HasPrefix(line, "$comment"):
			// structural or ignorable
		case strings.HasPrefix(line, "#"):
			t, err := strconv.ParseInt(line[1:], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("vcd: line %d: bad timestamp %q", lineNo, line)
			}
			now = t
			if t > d.End {
				d.End = t
			}
		default:
			if inDefs {
				continue
			}
			if err := parseChange(line, byID, now, lineNo); err != nil {
				return nil, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(d.Waves) == 0 {
		return nil, fmt.Errorf("vcd: no variables declared")
	}
	return d, nil
}

func parseChange(line string, byID map[string]*Waveform, now int64, lineNo int) error {
	record := func(w *Waveform, c Change) {
		// Same-instant updates overwrite (deltas collapse to the final value).
		if n := len(w.Changes); n > 0 && w.Changes[n-1].At == c.At {
			w.Changes[n-1] = c
			return
		}
		w.Changes = append(w.Changes, c)
	}
	switch line[0] {
	case '0', '1':
		w, ok := byID[line[1:]]
		if !ok {
			return fmt.Errorf("vcd: line %d: unknown id %q", lineNo, line[1:])
		}
		record(w, Change{At: now, Value: uint64(line[0] - '0')})
		return nil
	case 'x', 'X':
		w, ok := byID[line[1:]]
		if !ok {
			return fmt.Errorf("vcd: line %d: unknown id %q", lineNo, line[1:])
		}
		record(w, Change{At: now, Undef: true})
		return nil
	case 'b', 'B':
		val, id, found := strings.Cut(line[1:], " ")
		if !found {
			return fmt.Errorf("vcd: line %d: malformed vector change %q", lineNo, line)
		}
		w, ok := byID[id]
		if !ok {
			return fmt.Errorf("vcd: line %d: unknown id %q", lineNo, id)
		}
		if val == "x" {
			record(w, Change{At: now, Undef: true})
			return nil
		}
		v, err := strconv.ParseUint(val, 2, 64)
		if err != nil {
			return fmt.Errorf("vcd: line %d: bad vector %q", lineNo, val)
		}
		record(w, Change{At: now, Value: v})
		return nil
	default:
		return fmt.Errorf("vcd: line %d: unrecognised change %q", lineNo, line)
	}
}

// Diff is one divergence between two dumps.
type Diff struct {
	Signal string
	At     int64
	A, B   string
}

func (d Diff) String() string {
	return fmt.Sprintf("%s@%d: %s vs %s", d.Signal, d.At, d.A, d.B)
}

// Compare checks two dumps for equivalent signal activity on their
// common variables at every timestamp either dump mentions, returning up
// to max differences (0 = all). Variables present in only one dump are
// reported as a single Diff at time -1.
func Compare(a, b *Dump, max int) []Diff {
	var out []Diff
	add := func(d Diff) bool {
		out = append(out, d)
		return max > 0 && len(out) >= max
	}
	for _, name := range a.Names() {
		if _, ok := b.Waves[name]; !ok {
			if add(Diff{Signal: name, At: -1, A: "present", B: "missing"}) {
				return out
			}
		}
	}
	for _, name := range b.Names() {
		if _, ok := a.Waves[name]; !ok {
			if add(Diff{Signal: name, At: -1, A: "missing", B: "present"}) {
				return out
			}
		}
	}
	for _, name := range a.Names() {
		wa := a.Waves[name]
		wb, ok := b.Waves[name]
		if !ok {
			continue
		}
		times := map[int64]bool{}
		for _, c := range wa.Changes {
			times[c.At] = true
		}
		for _, c := range wb.Changes {
			times[c.At] = true
		}
		sorted := make([]int64, 0, len(times))
		for t := range times {
			sorted = append(sorted, t)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, t := range sorted {
			va, oka := wa.ValueAt(t)
			vb, okb := wb.ValueAt(t)
			if va != vb || oka != okb {
				if add(Diff{Signal: name, At: t, A: render(va, oka), B: render(vb, okb)}) {
					return out
				}
			}
		}
	}
	return out
}

func render(v uint64, defined bool) string {
	if !defined {
		return "x"
	}
	return strconv.FormatUint(v, 10)
}
