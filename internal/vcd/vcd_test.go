package vcd

import (
	"strings"
	"testing"

	"repro/internal/hades"
	"repro/internal/netlist"
	"repro/internal/xmlspec"
)

const sample = `$timescale 1ns $end
$scope module top $end
$var wire 1 ! clk $end
$var wire 8 " bus $end
$upscope $end
$enddefinitions $end
$dumpvars
0!
bx "
$end
#5
1!
b10101011 "
#10
0!
#15
1!
b1 "
`

func TestParseSample(t *testing.T) {
	d, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if d.Timescale != "1ns" || d.Scope != "top" || d.End != 15 {
		t.Fatalf("meta=%+v", d)
	}
	names := d.Names()
	if len(names) != 2 || names[0] != "bus" || names[1] != "clk" {
		t.Fatalf("names=%v", names)
	}
	clk := d.Waves["clk"]
	if len(clk.Changes) != 4 {
		t.Fatalf("clk changes=%v", clk.Changes)
	}
	if v, ok := clk.ValueAt(7); !ok || v != 1 {
		t.Fatalf("clk@7=%d,%v", v, ok)
	}
	if v, ok := clk.ValueAt(12); !ok || v != 0 {
		t.Fatalf("clk@12=%d,%v", v, ok)
	}
	bus := d.Waves["bus"]
	if _, ok := bus.ValueAt(2); ok {
		t.Fatal("bus must be undefined before #5")
	}
	if v, ok := bus.ValueAt(9); !ok || v != 0xAB {
		t.Fatalf("bus@9=%#x,%v", v, ok)
	}
	if v, ok := bus.ValueAt(20); !ok || v != 1 {
		t.Fatalf("bus@20=%d,%v", v, ok)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"$var wire x ! a $end\n$enddefinitions $end\n",
		"$var wire 1 ! a $end\n$enddefinitions $end\n#z\n",
		"$var wire 1 ! a $end\n$enddefinitions $end\n1?\n",
		"$var wire 1 ! a $end\n$enddefinitions $end\nq!\n",
		"$var wire 1 ! a $end\n$enddefinitions $end\nb10!\n",
	}
	for _, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("Parse(%q) must fail", src)
		}
	}
}

func TestCompareEqualAndDiverged(t *testing.T) {
	a, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if diffs := Compare(a, b, 0); len(diffs) != 0 {
		t.Fatalf("identical dumps diff: %v", diffs)
	}
	// Perturb one change.
	b.Waves["bus"].Changes[1].Value = 0xFF
	diffs := Compare(a, b, 0)
	if len(diffs) == 0 {
		t.Fatal("divergence not detected")
	}
	if diffs[0].Signal != "bus" || diffs[0].At != 5 {
		t.Fatalf("diffs=%v", diffs)
	}
	if got := Compare(a, b, 1); len(got) != 1 {
		t.Fatalf("cap ignored: %v", got)
	}
}

func TestCompareMissingSignal(t *testing.T) {
	a, _ := Parse(strings.NewReader(sample))
	b, _ := Parse(strings.NewReader(sample))
	delete(b.Waves, "bus")
	diffs := Compare(a, b, 0)
	if len(diffs) != 1 || diffs[0].At != -1 || diffs[0].B != "missing" {
		t.Fatalf("diffs=%v", diffs)
	}
	if !strings.Contains(diffs[0].String(), "bus@-1") {
		t.Fatalf("render=%q", diffs[0].String())
	}
}

// TestRoundTripFromKernel closes the loop: run a real design with
// hades.VCDWriter, parse the dump back, and check the waveform matches
// the live signals' recorded history.
func TestRoundTripFromKernel(t *testing.T) {
	dp := &xmlspec.Datapath{
		Name:  "count",
		Width: 8,
		Operators: []xmlspec.Operator{
			{ID: "c1", Type: "const", Value: 1},
			{ID: "cn", Type: "const", Value: 5},
			{ID: "r_i", Type: "reg"},
			{ID: "add0", Type: "add"},
			{ID: "lt0", Type: "lt"},
		},
		Connections: []xmlspec.Connection{
			{From: "r_i.q", To: "add0.a"},
			{From: "c1.y", To: "add0.b"},
			{From: "add0.y", To: "r_i.d"},
			{From: "r_i.q", To: "lt0.a"},
			{From: "cn.y", To: "lt0.b"},
		},
		Controls: []xmlspec.Control{{Name: "en", Targets: []xmlspec.ControlTo{{Port: "r_i.en"}}}},
		Statuses: []xmlspec.Status{{Name: "lt", From: "lt0.y"}},
	}
	fsm := &xmlspec.FSM{
		Name:    "count_ctl",
		Inputs:  []xmlspec.FSMSignal{{Name: "lt"}},
		Outputs: []xmlspec.FSMSignal{{Name: "en"}, {Name: "done"}},
		States: []xmlspec.State{
			{Name: "RUN", Initial: true,
				Assigns:     []xmlspec.Assign{{Signal: "en", Value: 1}},
				Transitions: []xmlspec.Transition{{Cond: "lt", Next: "RUN"}, {Next: "END"}}},
			{Name: "END", Final: true, Assigns: []xmlspec.Assign{{Signal: "done", Value: 1}}},
		},
	}
	sim := hades.NewSimulator()
	clk := sim.NewSignal("clk", 1)
	el, err := netlist.Elaborate(sim, clk, dp, fsm, netlist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	w := hades.NewVCDWriter(&buf)
	w.AddAll(sim)
	w.Header("count")
	probe := hades.NewProbe(el.Wires["r_i.q"], 0)
	if _, err := el.RunToCompletion(10, 100); err != nil {
		t.Fatal(err)
	}
	if w.Err() != nil {
		t.Fatal(w.Err())
	}

	dump, err := Parse(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	wave, ok := dump.Waves["count.r_i.q"]
	if !ok {
		t.Fatalf("r_i.q missing from dump: %v", dump.Names())
	}
	if wave.Width != 8 {
		t.Fatalf("width=%d", wave.Width)
	}
	// Every probed transition must appear in the parsed waveform with
	// the same value at the same instant.
	for _, c := range probe.History() {
		v, defined := wave.ValueAt(int64(c.At))
		if !defined || int64(v) != c.Value {
			t.Fatalf("r_i.q@%d: vcd=%d,%v probe=%d", c.At, v, defined, c.Value)
		}
	}
	if len(probe.History()) < 5 {
		t.Fatalf("counter barely ran: %v", probe.History())
	}
	// done asserts at the end in the dump as well.
	done := dump.Waves["count.ctl.done"]
	if done == nil {
		t.Fatalf("done missing: %v", dump.Names())
	}
	if v, ok := done.ValueAt(dump.End); !ok || v != 1 {
		t.Fatalf("done@end=%d,%v", v, ok)
	}
}
