package bench

import (
	"runtime"
	"sync/atomic"
	"time"
)

// Counters is a live, concurrency-safe view of simulation throughput:
// the same metrics the offline BENCH_*.json files record (events/sec,
// configs/sec, allocs/config), maintained incrementally so a
// long-running consumer — the simd server's /statsz endpoint — can
// report them at any instant without stopping the workload. All methods
// are safe for concurrent use.
type Counters struct {
	start        time.Time
	startMallocs uint64

	events  atomic.Uint64
	configs atomic.Uint64
	rounds  atomic.Uint64
}

// NewCounters starts a counter set; rates are measured from this call.
func NewCounters() *Counters {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return &Counters{start: time.Now(), startMallocs: ms.Mallocs}
}

// ObserveRound records one completed simulation round: its kernel
// events and the configurations it executed.
func (c *Counters) ObserveRound(events, configs uint64) {
	c.events.Add(events)
	c.configs.Add(configs)
	c.rounds.Add(1)
}

// CounterSnapshot is one instant's view of a Counters set.
type CounterSnapshot struct {
	Uptime          time.Duration
	Events          uint64
	Configs         uint64
	Rounds          uint64
	EventsPerSec    float64 // events / uptime
	ConfigsPerSec   float64 // configs / uptime
	AllocsPerConfig float64 // process-wide mallocs since start / configs
}

// Snapshot reads the counters. The allocation figure is process-wide
// (runtime mallocs since NewCounters divided by executed configs), so
// it is an upper bound on the simulation's own allocation rate — the
// live analog of the bench harness's allocs/config column.
func (c *Counters) Snapshot() CounterSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := CounterSnapshot{
		Uptime:  time.Since(c.start),
		Events:  c.events.Load(),
		Configs: c.configs.Load(),
		Rounds:  c.rounds.Load(),
	}
	if secs := s.Uptime.Seconds(); secs > 0 {
		s.EventsPerSec = float64(s.Events) / secs
		s.ConfigsPerSec = float64(s.Configs) / secs
	}
	if s.Configs > 0 {
		s.AllocsPerConfig = float64(ms.Mallocs-c.startMallocs) / float64(s.Configs)
	}
	return s
}
