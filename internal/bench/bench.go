// Package bench is the repeatable benchmark subsystem: named workload
// scenarios (raw kernel traffic, the paper's evaluation workloads end to
// end, and rtg-generated designs at several widths), a runner that
// repeats each scenario and keeps the best observation, and
// machine-readable BENCH_<name>.json output so the performance
// trajectory of the simulator is recorded and CI can fail on
// regressions (see Compare).
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/api"
)

// Measure is what one timed execution of a scenario observed. Wall is
// the simulation wall time only for kernel and end-to-end scenarios
// (compile and golden-reference phases are excluded, so events/sec is a
// kernel throughput number), and the whole reconfiguration loop —
// reset/elaborate included — for the replay/fresh contrast scenarios,
// whose point is the reconfiguration overhead itself. Configs counts
// executed configurations when the scenario walks an RTG (0 for raw
// kernel scenarios).
type Measure struct {
	Events  uint64
	Cycles  uint64
	Configs uint64
	Wall    time.Duration
}

// RunFunc executes one prepared, timed iteration of a scenario.
type RunFunc func() (Measure, error)

// Scenario is a named repeatable workload. Prepare does the one-time
// setup (compiling a design, generating inputs) and returns the timed
// closure; the runner calls it once and then times Reps executions.
type Scenario struct {
	Name    string
	Desc    string
	Family  string // workload-registry family the scenario derives from ("" for kernel/handcrafted scenarios)
	Pinned  bool   // part of the CI regression set
	Backend string // simulator backend the scenario executes on
	Prepare func() (RunFunc, error)
}

// Result is the machine-readable outcome of one scenario, serialised as
// BENCH_<name>.json. It is the shared versioned wire type
// (api.BenchResult): the bench files, `bench -json` output, the suite
// JSONL and the simd server all speak internal/api. Results written
// before the schema_version field existed (the checked-in baselines)
// load with SchemaVersion 0, which is read as version 1.
type Result = api.BenchResult

// Run prepares the scenario once and times reps executions, reporting
// the best observation (best-of-N is the stable estimator for
// throughput under scheduler noise). Allocation counts are averaged
// across the repetitions.
func Run(sc Scenario, reps int) (*Result, error) {
	if reps <= 0 {
		reps = 1
	}
	run, err := sc.Prepare()
	if err != nil {
		return nil, fmt.Errorf("bench: %s: prepare: %w", sc.Name, err)
	}
	res := &Result{
		SchemaVersion: api.SchemaVersion,
		Name:          sc.Name,
		Desc:          sc.Desc,
		Pinned:        sc.Pinned,
		Backend:       sc.Backend,
		Reps:          reps,
		UnixTime:      time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		CPUs:          runtime.NumCPU(),
	}
	var totalAllocs, totalEvents, totalConfigs uint64
	best := -1.0
	for i := 0; i < reps; i++ {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		m, err := run()
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", sc.Name, err)
		}
		runtime.ReadMemStats(&after)
		if m.Events == 0 || m.Wall <= 0 {
			return nil, fmt.Errorf("bench: %s: empty measure (events=%d wall=%v)", sc.Name, m.Events, m.Wall)
		}
		totalAllocs += after.Mallocs - before.Mallocs
		totalEvents += m.Events
		totalConfigs += m.Configs
		if eps := float64(m.Events) / m.Wall.Seconds(); eps > best {
			best = eps
			res.Events = m.Events
			res.Cycles = m.Cycles
			res.Configs = m.Configs
			res.WallNS = m.Wall.Nanoseconds()
			res.EventsPerSec = eps
			if m.Configs > 0 {
				res.ConfigsPerSec = float64(m.Configs) / m.Wall.Seconds()
			}
		}
	}
	res.AllocsPerEvent = float64(totalAllocs) / float64(totalEvents)
	if totalConfigs > 0 {
		res.AllocsPerCfg = float64(totalAllocs) / float64(totalConfigs)
	}
	return res, nil
}

// FileName returns the BENCH_<name>.json file name for a scenario name.
func FileName(name string) string {
	clean := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		}
		return '-'
	}, name)
	return "BENCH_" + clean + ".json"
}

// Save writes the result as BENCH_<name>.json under dir. (Result is an
// alias of the shared wire type api.BenchResult, so this is a package
// function rather than a method.)
func Save(r *Result, dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	doc, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, FileName(r.Name))
	return path, os.WriteFile(path, append(doc, '\n'), 0o644)
}

// Load reads every BENCH_*.json under dir, keyed by scenario name.
func Load(dir string) (map[string]*Result, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	out := map[string]*Result{}
	for _, path := range matches {
		doc, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var r Result
		if err := json.Unmarshal(doc, &r); err != nil {
			return nil, fmt.Errorf("bench: %s: %w", path, err)
		}
		if r.Name == "" {
			return nil, fmt.Errorf("bench: %s: missing scenario name", path)
		}
		if err := api.CheckVersion(r.SchemaVersion); err != nil {
			return nil, fmt.Errorf("bench: %s: %w", path, err)
		}
		out[r.Name] = &r
	}
	return out, nil
}

// Regression is one scenario that fell outside the baseline tolerance
// on some metric, or whose run and baseline are not comparable at all
// (Mismatch set).
type Regression struct {
	Name     string
	Metric   string  // "events/sec" (lower is worse) or "allocs/event" (higher is worse)
	Baseline float64 // baseline value of the metric
	Current  float64 // current value of the metric
	Ratio    float64 // current / baseline
	Mismatch string  // non-empty: results are incomparable (wrong backend)
}

func (r Regression) String() string {
	if r.Mismatch != "" {
		return fmt.Sprintf("%s: %s", r.Name, r.Mismatch)
	}
	metric := r.Metric
	if metric == "" {
		metric = "events/sec"
	}
	return fmt.Sprintf("%s: %.4g %s vs baseline %.4g (%.2fx)",
		r.Name, r.Current, metric, r.Baseline, r.Ratio)
}

// allocFloor is the absolute allocs/event slack below which the alloc
// gate stays silent: near-zero baselines (fractions of an allocation
// per thousand events) would otherwise fail on measurement noise from
// a 25% relative check.
const allocFloor = 0.05

// Compare checks current results against a baseline on two metrics:
// events/sec must stay within threshold below baseline (e.g. 0.25
// fails below 75%), and allocs/event must stay within threshold above
// baseline (0.25 fails past 125%, with allocFloor absolute slack so
// near-zero baselines don't gate on noise) — a perf win that paid for
// itself in garbage is a regression too. A missing current result is
// reported as a regression with zero throughput so a silently-dropped
// scenario can never pass the gate, and a backend mismatch between a
// result and its baseline is reported as incomparable — gating a
// backend against another backend's numbers (a stale -baseline path)
// must never pass or fail on the difference between the kernels.
func Compare(current, baseline map[string]*Result, threshold float64) []Regression {
	var regs []Regression
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base := baseline[name]
		if base.EventsPerSec <= 0 {
			continue
		}
		cur, ok := current[name]
		if !ok {
			regs = append(regs, Regression{Name: name, Metric: "events/sec", Baseline: base.EventsPerSec})
			continue
		}
		if base.Backend != "" && cur.Backend != "" && base.Backend != cur.Backend {
			regs = append(regs, Regression{
				Name:     name,
				Baseline: base.EventsPerSec,
				Current:  cur.EventsPerSec,
				Mismatch: fmt.Sprintf("ran on backend %q but baseline was recorded on %q", cur.Backend, base.Backend),
			})
			continue
		}
		if ratio := cur.EventsPerSec / base.EventsPerSec; ratio < 1-threshold {
			regs = append(regs, Regression{
				Name:     name,
				Metric:   "events/sec",
				Baseline: base.EventsPerSec,
				Current:  cur.EventsPerSec,
				Ratio:    ratio,
			})
		}
		if cur.AllocsPerEvent > base.AllocsPerEvent*(1+threshold) &&
			cur.AllocsPerEvent-base.AllocsPerEvent > allocFloor {
			ratio := 0.0
			if base.AllocsPerEvent > 0 {
				ratio = cur.AllocsPerEvent / base.AllocsPerEvent
			}
			regs = append(regs, Regression{
				Name:     name,
				Metric:   "allocs/event",
				Baseline: base.AllocsPerEvent,
				Current:  cur.AllocsPerEvent,
				Ratio:    ratio,
			})
		}
	}
	return regs
}
