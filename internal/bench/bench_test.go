package bench

import (
	"strings"
	"testing"
	"time"
)

func fakeScenario(name string, events uint64, wall time.Duration) Scenario {
	return Scenario{
		Name:   name,
		Pinned: true,
		Prepare: func() (RunFunc, error) {
			return func() (Measure, error) {
				return Measure{Events: events, Cycles: 7, Wall: wall}, nil
			}, nil
		},
	}
}

func TestRunComputesThroughput(t *testing.T) {
	res, err := Run(fakeScenario("fake", 1000, 10*time.Millisecond), 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Name != "fake" || res.Reps != 3 || res.Events != 1000 || res.Cycles != 7 {
		t.Fatalf("result = %+v", res)
	}
	want := 1000 / (10 * time.Millisecond).Seconds()
	if res.EventsPerSec != want {
		t.Fatalf("events/sec = %f want %f", res.EventsPerSec, want)
	}
	if res.GoVersion == "" || res.CPUs <= 0 || res.UnixTime == 0 {
		t.Fatalf("host metadata missing: %+v", res)
	}
}

func TestRunRejectsEmptyMeasure(t *testing.T) {
	if _, err := Run(fakeScenario("empty", 0, time.Millisecond), 1); err == nil {
		t.Fatal("zero-event measure must error")
	}
}

func TestFileName(t *testing.T) {
	if got := FileName("kernel-rings"); got != "BENCH_kernel-rings.json" {
		t.Fatalf("got %q", got)
	}
	if got := FileName("we ird/na:me"); got != "BENCH_we-ird-na-me.json" {
		t.Fatalf("got %q", got)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	res, err := Run(fakeScenario("round-trip", 500, 5*time.Millisecond), 1)
	if err != nil {
		t.Fatal(err)
	}
	path, err := Save(res, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(path, "BENCH_round-trip.json") {
		t.Fatalf("path %q", path)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := loaded["round-trip"]
	if !ok {
		t.Fatalf("loaded = %v", loaded)
	}
	if got.EventsPerSec != res.EventsPerSec || got.Events != res.Events {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, res)
	}
}

func TestCompare(t *testing.T) {
	base := map[string]*Result{
		"a": {Name: "a", EventsPerSec: 1000},
		"b": {Name: "b", EventsPerSec: 1000},
		"c": {Name: "c", EventsPerSec: 1000},
	}
	cur := map[string]*Result{
		"a": {Name: "a", EventsPerSec: 800}, // within 25%
		"b": {Name: "b", EventsPerSec: 700}, // regressed
		// c missing entirely
	}
	regs := Compare(cur, base, 0.25)
	if len(regs) != 2 {
		t.Fatalf("regressions = %v", regs)
	}
	if regs[0].Name != "b" || regs[1].Name != "c" {
		t.Fatalf("regressions = %v", regs)
	}
	if regs[0].Ratio >= 0.75 {
		t.Fatalf("ratio = %f", regs[0].Ratio)
	}
	if regs[1].Current != 0 {
		t.Fatalf("missing scenario must report zero throughput: %v", regs[1])
	}
	if got := Compare(base, base, 0.25); len(got) != 0 {
		t.Fatalf("identical runs must pass: %v", got)
	}
}

// TestScenarioNamesUnique guards the seam between the hand-rolled
// scenarios (kernel traffic, handcrafted design) and the
// registry-derived ones: the workload registry enforces preset-name
// uniqueness among families but cannot know bench's static names, and a
// duplicate would make Select ambiguous and silently overwrite
// BENCH_<name>.json files.
func TestScenarioNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, sc := range Scenarios() {
		if seen[sc.Name] {
			t.Errorf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
	}
}

func TestSelect(t *testing.T) {
	all := Scenarios()
	pinned, err := Select("pinned", all)
	if err != nil {
		t.Fatal(err)
	}
	if len(pinned) == 0 || len(pinned) > len(all) {
		t.Fatalf("pinned = %d of %d", len(pinned), len(all))
	}
	for _, sc := range pinned {
		if !sc.Pinned {
			t.Fatalf("%s not pinned", sc.Name)
		}
	}
	got, err := Select("kernel-rings,hamming-256", all)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "kernel-rings" || got[1].Name != "hamming-256" {
		t.Fatalf("select = %v", got)
	}
	if _, err := Select("nope", all); err == nil {
		t.Fatal("unknown scenario must error")
	}
}

// TestPinnedScenariosExecute runs every pinned scenario once with tiny
// durations to keep the registry executable — a scenario that breaks
// should fail here, not in the CI bench job.
func TestPinnedScenariosExecute(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	pinned, err := Select("pinned", Scenarios())
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range pinned {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res, err := Run(sc, 1)
			if err != nil {
				t.Fatal(err)
			}
			if res.Events == 0 || res.EventsPerSec <= 0 {
				t.Fatalf("suspicious result: %+v", res)
			}
		})
	}
}

// TestScenariosPerBackend: the registry parameterizes over the
// simulator backends; a kernel scenario and an e2e scenario must
// prepare and execute on heapref, and the results must carry the
// backend name for the per-backend baseline gate.
func TestScenariosPerBackend(t *testing.T) {
	scs, err := Select("kernel-fanout,hamming-256", ScenariosFor("heapref"))
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range scs {
		if sc.Backend != "heapref" {
			t.Fatalf("%s: backend %q", sc.Name, sc.Backend)
		}
		res, err := Run(sc, 1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Backend != "heapref" || res.Events == 0 {
			t.Fatalf("%s: result %+v", sc.Name, res)
		}
	}
	if _, err := Select("kernel-fanout", ScenariosFor("no-such-backend")); err != nil {
		t.Fatal(err) // selection works; preparation reports the bad backend
	}
	bad := ScenariosFor("no-such-backend")
	if _, err := Run(bad[0], 1); err == nil {
		t.Fatal("unknown backend must surface at prepare time")
	}
}

func TestCompareRejectsBackendMismatch(t *testing.T) {
	base := map[string]*Result{"s": {Name: "s", Backend: "twolevel", EventsPerSec: 1000}}
	cur := map[string]*Result{"s": {Name: "s", Backend: "heapref", EventsPerSec: 1000}}
	regs := Compare(cur, base, 0.25)
	if len(regs) != 1 || regs[0].Mismatch == "" {
		t.Fatalf("regs=%v", regs)
	}
	if !strings.Contains(regs[0].String(), "baseline was recorded on") {
		t.Fatalf("message=%q", regs[0].String())
	}
	// Pre-split baselines without a backend field still compare.
	base["s"].Backend = ""
	if regs := Compare(cur, base, 0.25); len(regs) != 0 {
		t.Fatalf("legacy baseline must stay comparable: %v", regs)
	}
}

// TestCompareAllocsGate: the gate also fails on allocs/event blowups —
// but only past the absolute floor, so near-zero baselines don't gate
// on noise.
func TestCompareAllocsGate(t *testing.T) {
	base := map[string]*Result{
		"hot":  {Name: "hot", EventsPerSec: 1000, AllocsPerEvent: 1.0},
		"cold": {Name: "cold", EventsPerSec: 1000, AllocsPerEvent: 0.001},
	}
	cur := map[string]*Result{
		"hot":  {Name: "hot", EventsPerSec: 1000, AllocsPerEvent: 2.0},   // blown up
		"cold": {Name: "cold", EventsPerSec: 1000, AllocsPerEvent: 0.01}, // 10x but under the floor
	}
	regs := Compare(cur, base, 0.25)
	if len(regs) != 1 || regs[0].Name != "hot" || regs[0].Metric != "allocs/event" {
		t.Fatalf("regs=%v", regs)
	}
	if !strings.Contains(regs[0].String(), "allocs/event") {
		t.Fatalf("message=%q", regs[0].String())
	}
	// A scenario can regress on both metrics at once.
	cur["hot"].EventsPerSec = 100
	if regs := Compare(cur, base, 0.25); len(regs) != 2 {
		t.Fatalf("both metrics must report: %v", regs)
	}
}

// TestReplayBeatsFreshReconfiguration is the acceptance check for the
// replay cache: on the repeat-heavy contrast scenario, reset-and-replay
// must deliver at least 2x the configs/sec of the fresh-elaboration
// path with a fraction of its allocations per configuration.
func TestReplayBeatsFreshReconfiguration(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	scs, err := Select("replay-hamming-x64,fresh-hamming-x64", Scenarios())
	if err != nil {
		t.Fatal(err)
	}
	results := map[string]*Result{}
	for _, sc := range scs {
		res, err := Run(sc, 3)
		if err != nil {
			t.Fatal(err)
		}
		if res.Configs == 0 || res.ConfigsPerSec <= 0 {
			t.Fatalf("%s: no configuration metrics: %+v", sc.Name, res)
		}
		results[sc.Name] = res
	}
	replay, fresh := results["replay-hamming-x64"], results["fresh-hamming-x64"]
	if ratio := replay.ConfigsPerSec / fresh.ConfigsPerSec; ratio < 2 {
		t.Fatalf("replay %.0f configs/sec vs fresh %.0f: %.2fx, want >= 2x",
			replay.ConfigsPerSec, fresh.ConfigsPerSec, ratio)
	}
	if replay.AllocsPerCfg > fresh.AllocsPerCfg/10 {
		t.Fatalf("replay allocs/config %.1f vs fresh %.1f: cache is not near-zero",
			replay.AllocsPerCfg, fresh.AllocsPerCfg)
	}
}

// TestCompiledGangBeatsSequential is the gang acceptance check: on the
// pinned gang scenarios, the compiled backend's lockstep
// struct-of-arrays evaluation must deliver at least 5x the configs/sec
// of the event backend's sequential lane-by-lane replay of the same
// 32-lane population.
func TestCompiledGangBeatsSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, name := range []string{"gang-newton", "gang-erasure"} {
		name := name
		t.Run(name, func(t *testing.T) {
			perBackend := map[string]*Result{}
			for _, backend := range []string{"compiled", "twolevel"} {
				scs, err := Select(name, ScenariosFor(backend))
				if err != nil {
					t.Fatal(err)
				}
				res, err := Run(scs[0], 3)
				if err != nil {
					t.Fatal(err)
				}
				if res.Configs == 0 || res.ConfigsPerSec <= 0 {
					t.Fatalf("%s@%s: no configuration metrics: %+v", name, backend, res)
				}
				perBackend[backend] = res
			}
			lockstep, sequential := perBackend["compiled"], perBackend["twolevel"]
			if lockstep.Configs != sequential.Configs {
				t.Fatalf("gang population diverged: compiled ran %d configs, twolevel %d",
					lockstep.Configs, sequential.Configs)
			}
			if ratio := lockstep.ConfigsPerSec / sequential.ConfigsPerSec; ratio < 5 {
				t.Fatalf("compiled gang %.0f configs/sec vs sequential %.0f: %.2fx, want >= 5x",
					lockstep.ConfigsPerSec, sequential.ConfigsPerSec, ratio)
			}
		})
	}
}

// TestCampaignScenarioExecutes runs the mixed-workload embedded-spec
// campaign once end to end: the measure must carry real simulated work
// from every case in the spec.
func TestCampaignScenarioExecutes(t *testing.T) {
	var sc *Scenario
	for _, s := range Scenarios() {
		if s.Name == "campaign-mixed-poisson" {
			s := s
			sc = &s
			break
		}
	}
	if sc == nil {
		t.Fatal("campaign-mixed-poisson not in the registry")
	}
	if sc.Pinned {
		t.Fatal("campaign scenarios must stay unpinned (no baselines for them)")
	}
	run, err := sc.Prepare()
	if err != nil {
		t.Fatal(err)
	}
	m, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Configs < 10 || m.Cycles == 0 || m.Events == 0 || m.Wall <= 0 {
		t.Fatalf("campaign measure: %+v", m)
	}
}
