package bench

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/hades"
	"repro/internal/netlist"
	"repro/internal/scenario"
	"repro/internal/workloads"
	"repro/internal/xmlspec"
)

// Scenarios returns the benchmark registry on the default simulator
// backend; see ScenariosFor.
func Scenarios() []Scenario { return ScenariosFor(flow.DefaultBackend) }

// ScenariosFor returns the benchmark registry in a stable order, every
// scenario executing on the named simulator backend. The pinned subset
// is the CI regression set — gated once per registered backend against
// that backend's own baseline; the rest are opt-in investigations
// (larger images, monolithic-vs-partitioned contrast).
//
// The registry is descriptor-aware: raw kernel scenarios and the
// handcrafted design construct an event simulator directly, so they
// only exist for event-kind backends — a cycle backend (compiled) has
// no event queue to measure and its registry starts at the compiled
// flow. Unknown backend names get the full event registry; preparation
// reports the lookup error.
func ScenariosFor(backend string) []Scenario {
	var list []Scenario
	if backendKind(backend) == flow.KindEvent {
		list = []Scenario{
			// Raw kernel traffic: the substrate numbers behind every
			// simulation time. Mirrors the pinned shapes benchmarked against
			// the heap kernel in internal/hades.
			kernelScenario(backend, "kernel-rings", "64 self-rescheduling rings, periods 2..17 (lane traffic)", true,
				200_000, buildRings),
			kernelScenario(backend, "kernel-deltastorm", "32 rings with two zero-delay hops per firing (delta traffic)", true,
				100_000, buildDeltaStorm),
			kernelScenario(backend, "kernel-fanout", "one ring fanning out to 256 listeners (wide batches)", true,
				20_000, buildFanout),
			kernelScenario(backend, "kernel-timers", "128 timers with periods 2000..14300 (overflow-heap traffic)", true,
				2_000_000, buildFarTimers),

			// A handcrafted design in the XML dialects (the examples/
			// handcrafted accumulator, scaled up): netlist elaboration
			// without the compiler in the loop.
			{Name: "handcrafted-acc", Desc: "stimulus-fed accumulator over 4096 words (examples/handcrafted)",
				Pinned: true, Prepare: prepareHandcrafted(backend)},
		}
	}
	list = append(list, reconfigScenarios(backend)...)
	list = append(list, gangScenarios(backend)...)
	list = append(list, campaignScenarios(backend)...)

	// Every registered workload family's bench presets, end to end
	// through the RTG; wall time is the simulation only. Width presets
	// (rtg-hamming-w8/16/32) time the architecture the compiler
	// generates at that datapath width; the golden check is not in the
	// timed path for any of them.
	for _, w := range workloads.All() {
		w := w
		for _, p := range w.Presets() {
			if p.Suite {
				continue // suite-sized parameterizations belong to the regression suite
			}
			p := p
			sc := e2eScenario(backend, p.Name, p.Desc, p.Pinned,
				func() (core.TestCase, error) {
					// Inputs only: the timed path never verifies, so the
					// reference model would be computed just to be discarded.
					c, err := workloads.BuildWorkloadInputs(w, p.Values)
					if err != nil {
						return core.TestCase{}, err
					}
					c.Name = p.Name
					return core.WorkloadCase(c), nil
				},
				core.Options{Width: p.Width})
			sc.Family = w.Name()
			list = append(list, sc)
		}
	}
	sort.SliceStable(list, func(i, j int) bool { return list[i].Name < list[j].Name })
	for i := range list {
		list[i].Backend = backend
	}
	return list
}

// Select resolves a scenario selector: "all", "pinned", or a
// comma-separated list of names.
func Select(selector string, all []Scenario) ([]Scenario, error) {
	switch selector {
	case "", "pinned":
		var out []Scenario
		for _, sc := range all {
			if sc.Pinned {
				out = append(out, sc)
			}
		}
		return out, nil
	case "all":
		return all, nil
	}
	byName := map[string]Scenario{}
	for _, sc := range all {
		byName[sc.Name] = sc
	}
	var out []Scenario
	for _, name := range strings.Split(selector, ",") {
		if name == "" {
			continue
		}
		sc, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("bench: unknown scenario %q", name)
		}
		out = append(out, sc)
	}
	return out, nil
}

// backendKind resolves a backend name to its registered kind. Unknown
// names read as event so the registry shape stays stable; the backend
// error surfaces when a scenario prepares.
func backendKind(backend string) flow.BackendKind {
	for _, b := range flow.Backends() {
		if b.Name == backend {
			return b.Kind
		}
	}
	return flow.KindEvent
}

// --- kernel scenarios -------------------------------------------------------

// kernelScenario builds a fresh simulator on the scenario's backend per
// iteration and runs it for a fixed simulated horizon; only the Run
// call is timed.
func kernelScenario(backend, name, desc string, pinned bool, horizon hades.Time, build func(sim *hades.Simulator)) Scenario {
	return Scenario{
		Name:   name,
		Desc:   desc,
		Pinned: pinned,
		Prepare: func() (RunFunc, error) {
			be, err := flow.LookupBackend(backend)
			if err != nil {
				return nil, err
			}
			return func() (Measure, error) {
				sim := be.New()
				build(sim)
				start := time.Now()
				if _, err := sim.Run(horizon); err != nil {
					return Measure{}, err
				}
				return Measure{Events: sim.Stats().Events, Wall: time.Since(start)}, nil
			}, nil
		},
	}
}

func buildRings(sim *hades.Simulator) {
	for k := 0; k < 64; k++ {
		sig := sim.NewSignal(fmt.Sprintf("ring%d", k), 32)
		p := hades.Time(k%16 + 2)
		sig.Listen(&hades.ReactorFunc{Label: "ring", Fn: func(s *hades.Simulator) {
			s.SetUint(sig, sig.Uint()+1, p)
		}})
		sim.SetUint(sig, 1, hades.Time(k%7+1))
	}
}

func buildDeltaStorm(sim *hades.Simulator) {
	for k := 0; k < 32; k++ {
		a := sim.NewSignal(fmt.Sprintf("a%d", k), 32)
		b := sim.NewSignal(fmt.Sprintf("b%d", k), 32)
		c := sim.NewSignal(fmt.Sprintf("c%d", k), 32)
		p := hades.Time(k%7 + 5)
		a.Listen(&hades.ReactorFunc{Label: "s0", Fn: func(s *hades.Simulator) { s.SetUint(b, a.Uint(), 0) }})
		b.Listen(&hades.ReactorFunc{Label: "s1", Fn: func(s *hades.Simulator) { s.SetUint(c, b.Uint(), 0) }})
		c.Listen(&hades.ReactorFunc{Label: "s2", Fn: func(s *hades.Simulator) { s.SetUint(a, c.Uint()+1, p) }})
		sim.SetUint(a, 1, hades.Time(k%5+1))
	}
}

func buildFanout(sim *hades.Simulator) {
	drv := sim.NewSignal("drv", 32)
	drv.Listen(&hades.ReactorFunc{Label: "drv", Fn: func(s *hades.Simulator) {
		s.SetUint(drv, drv.Uint()+1, 4)
	}})
	for k := 0; k < 256; k++ {
		out := sim.NewSignal(fmt.Sprintf("o%d", k), 32)
		d := hades.Time(k%4 + 1)
		drv.Listen(&hades.ReactorFunc{Label: "tap", Fn: func(s *hades.Simulator) {
			s.SetUint(out, drv.Uint(), d)
		}})
	}
	sim.SetUint(drv, 1, 1)
}

func buildFarTimers(sim *hades.Simulator) {
	for k := 0; k < 128; k++ {
		sig := sim.NewSignal(fmt.Sprintf("t%d", k), 32)
		p := hades.Time(2000 + k*97)
		sig.Listen(&hades.ReactorFunc{Label: "timer", Fn: func(s *hades.Simulator) {
			s.SetUint(sig, sig.Uint()+1, p)
		}})
		sim.SetUint(sig, 1, hades.Time(k+1))
	}
}

// --- end-to-end scenarios ---------------------------------------------------

// e2eScenario compiles and prepares the case once, then per iteration
// reseeds and walks the RTG through the reconfiguration replay cache.
// Wall is the sum of the per-configuration simulation walls: compile,
// memory seeding and reset/elaboration are excluded, so events/sec
// tracks the kernel, not the frontend (the replay/fresh contrast
// scenarios measure the frontend; see reconfigScenarios).
func e2eScenario(backend, name, desc string, pinned bool, tc func() (core.TestCase, error), opts core.Options) Scenario {
	return Scenario{
		Name:   name,
		Desc:   desc,
		Pinned: pinned,
		Prepare: func() (RunFunc, error) {
			pd, err := prepareCase(backend, tc, opts, false)
			if err != nil {
				return nil, err
			}
			return func() (Measure, error) { return simulateOnce(pd) }, nil
		},
	}
}

// prepareCase materializes, compiles and prepares a test case's design
// on the given backend, seeding the prepared design with the case's
// inputs.
func prepareCase(backend string, tc func() (core.TestCase, error), opts core.Options, fresh bool) (*flow.PreparedDesign, error) {
	c, err := tc()
	if err != nil {
		return nil, err
	}
	design, err := core.CompileOnly(c, opts)
	if err != nil {
		return nil, err
	}
	pipe, err := flow.New(flow.WithBackend(backend), flow.WithFreshElaboration(fresh))
	if err != nil {
		return nil, err
	}
	pd, err := pipe.PrepareDesign(design)
	if err != nil {
		return nil, err
	}
	for name, depth := range c.ArraySizes {
		words := make([]int64, depth)
		copy(words, c.Inputs[name])
		if err := pd.SetSeed(name, words); err != nil {
			return nil, err
		}
	}
	return pd, nil
}

// simulateOnce runs one reseed-and-execute round, reporting sim-only
// wall time.
func simulateOnce(pd *flow.PreparedDesign) (Measure, error) {
	exec, err := pd.Simulate()
	if err != nil {
		return Measure{}, err
	}
	if !exec.Completed {
		return Measure{}, fmt.Errorf("bench: %s: simulation incomplete", pd.Name())
	}
	var m Measure
	for _, run := range exec.Runs {
		m.Events += run.Events
		m.Cycles += run.Cycles
		m.Wall += run.Wall
	}
	m.Configs = uint64(len(exec.Runs))
	return m, nil
}

// --- reconfiguration scenarios ----------------------------------------------

// reconfigScenarios is the repeat-heavy contrast pair behind the replay
// cache: the same small designs run in a tight reconfiguration loop,
// once through reset-and-replay (replay-*) and once rebuilding every
// configuration (fresh-*, the paper's original flow). Unlike every
// other scenario, Wall covers the whole loop — reconfiguration
// included — so configs/sec and allocs/config quantify exactly the
// overhead the cache removes; comparing a replay-* result with its
// fresh-* sibling is the A/B. Small workloads on purpose: the shorter
// the per-configuration run, the more reconfiguration dominates, which
// is the worst case for the fresh path and the target of this cache.
func reconfigScenarios(backend string) []Scenario {
	type shape struct {
		family string
		name   string
		desc   string
		vals   workloads.Values
		rounds int
	}
	shapes := []shape{
		// Deliberately tiny run on a full-sized decoder: per-visit work
		// is almost all reconfiguration, the cache's best case and the
		// fresh path's worst.
		{"hamming", "hamming-x64", "hamming(words=1) reconfiguration loop, 64 runs per iteration", workloads.Values{"words": 1}, 64},
		// Multi-partition coverage: every loop round walks a two-node
		// RTG, so the cache serves two configurations per run.
		{"fdct2", "fdct2-x8", "fdct2(pixels=64) two-partition RTG loop, 8 runs per iteration", workloads.Values{"pixels": 64}, 8},
	}
	var list []Scenario
	for _, sh := range shapes {
		sh := sh
		tc := func() (core.TestCase, error) {
			w, err := workloads.Lookup(sh.family)
			if err != nil {
				return core.TestCase{}, err
			}
			c, err := workloads.BuildWorkloadInputs(w, sh.vals)
			if err != nil {
				return core.TestCase{}, err
			}
			c.Name = sh.name
			return core.WorkloadCase(c), nil
		}
		for _, mode := range []struct {
			prefix string
			fresh  bool
		}{{"replay", false}, {"fresh", true}} {
			mode := mode
			list = append(list, Scenario{
				Name:   mode.prefix + "-" + sh.name,
				Desc:   sh.desc + " (" + mode.prefix + " reconfiguration)",
				Family: sh.family,
				Pinned: true,
				Prepare: func() (RunFunc, error) {
					pd, err := prepareCase(backend, tc, core.Options{}, mode.fresh)
					if err != nil {
						return nil, err
					}
					rounds := sh.rounds
					return func() (Measure, error) {
						var m Measure
						start := time.Now()
						for i := 0; i < rounds; i++ {
							exec, err := pd.Simulate()
							if err != nil {
								return Measure{}, err
							}
							if !exec.Completed {
								return Measure{}, fmt.Errorf("bench: %s: simulation incomplete", pd.Name())
							}
							for _, run := range exec.Runs {
								m.Events += run.Events
								m.Cycles += run.Cycles
							}
							m.Configs += uint64(len(exec.Runs))
						}
						m.Wall = time.Since(start)
						return m, nil
					}, nil
				},
			})
		}
	}
	return list
}

// --- gang scenarios ---------------------------------------------------------

// gangScenarios is the lane-parallel pair behind the compiled backend's
// gang mode: one prepared design, 32 lanes with per-lane input images,
// all executed by a single SimulateGang call per timed iteration. Wall
// covers the whole gang round — reseed and reset included — so
// configs/sec is directly comparable between the lockstep path
// (compiled evaluates every lane inside one struct-of-arrays instance)
// and the sequential fallback an event backend runs lane by lane; that
// contrast is the gang acceptance ratio (see
// TestCompiledGangBeatsSequential). Each lane's inputs are a distinct
// rotation of the case's input stream, so lanes carry different data
// without changing the cycle count.
func gangScenarios(backend string) []Scenario {
	type shape struct {
		family string
		name   string
		desc   string
		vals   workloads.Values
		lanes  int
	}
	shapes := []shape{
		{"newton", "gang-newton", "newton(n=64,iters=12), 32 data lanes per gang round", workloads.Values{"n": 64, "iters": 12}, 32},
		{"erasure", "gang-erasure", "erasure(k=4,stripes=16), 32 data lanes per gang round", workloads.Values{"k": 4, "stripes": 16}, 32},
	}
	var list []Scenario
	for _, sh := range shapes {
		sh := sh
		list = append(list, Scenario{
			Name:   sh.name,
			Desc:   sh.desc,
			Family: sh.family,
			Pinned: true,
			Prepare: func() (RunFunc, error) {
				w, err := workloads.Lookup(sh.family)
				if err != nil {
					return nil, err
				}
				c, err := workloads.BuildWorkloadInputs(w, sh.vals)
				if err != nil {
					return nil, err
				}
				c.Name = sh.name
				tcase := core.WorkloadCase(c)
				pd, err := prepareCase(backend, func() (core.TestCase, error) { return tcase, nil }, core.Options{}, false)
				if err != nil {
					return nil, err
				}
				laneSeeds := make([]map[string][]int64, sh.lanes)
				for l := range laneSeeds {
					seeds := map[string][]int64{}
					for name, depth := range tcase.ArraySizes {
						src := tcase.Inputs[name]
						if len(src) == 0 {
							continue // output arrays keep the prepared zero seed
						}
						words := make([]int64, depth)
						for i := range src {
							if i >= depth {
								break
							}
							words[i] = src[(i+l)%len(src)]
						}
						seeds[name] = words
					}
					laneSeeds[l] = seeds
				}
				return func() (Measure, error) {
					var m Measure
					start := time.Now()
					sims, err := pd.SimulateGang(laneSeeds)
					if err != nil {
						return Measure{}, err
					}
					for l, s := range sims {
						if !s.Completed {
							return Measure{}, fmt.Errorf("bench: %s: lane %d incomplete", sh.name, l)
						}
						m.Events += s.Events
						m.Cycles += s.TotalCycles
						m.Configs += uint64(len(s.Runs))
					}
					m.Wall = time.Since(start)
					return m, nil
				}, nil
			},
		})
	}
	return list
}

// --- scenario-campaign scenarios --------------------------------------------

// campaignScenarios derives benchmarks from the embedded scenario specs
// (the same pinned specs checked in under examples/scenarios): one
// timed iteration runs the whole campaign — seeded expansion, prepared
// designs reused across repeated draws, faulted reseeding, per-case
// verification — so configs/sec measures the scenario engine end to
// end rather than a single kernel. The specs are validated by expanding
// once in Prepare; campaigns stay unpinned because their wall time
// folds in compile and verify work, making them investigations rather
// than kernel regression gates.
func campaignScenarios(backend string) []Scenario {
	var list []Scenario
	for _, name := range scenario.ExampleNames() {
		name := name
		short := strings.TrimSuffix(name, ".json")
		list = append(list, Scenario{
			Name: "campaign-" + short,
			Desc: "full " + short + " scenario campaign per iteration (examples/scenarios)",
			Prepare: func() (RunFunc, error) {
				sc, err := scenario.LoadExample(name, nil)
				if err != nil {
					return nil, err
				}
				if _, err := sc.Expand(); err != nil {
					return nil, err
				}
				opts := scenario.Options{Backend: backend}
				return func() (Measure, error) {
					start := time.Now()
					res, err := sc.Run(context.Background(), opts, nil)
					if err != nil {
						return Measure{}, err
					}
					if !res.OK() {
						return Measure{}, fmt.Errorf("bench: campaign %s went red: %+v", short, res.Summary)
					}
					return Measure{
						Events:  res.Summary.Events,
						Cycles:  res.Summary.Cycles,
						Configs: res.Summary.Configs,
						Wall:    time.Since(start),
					}, nil
				}, nil
			},
		})
	}
	return list
}

// --- handcrafted scenario ---------------------------------------------------

// prepareHandcrafted is the examples/handcrafted accumulator scaled to a
// 4096-word stimulus: a design written directly in the XML dialects,
// elaborated by netlist with no compiler involved (so the backend's
// simulator is built directly rather than through a controller).
func prepareHandcrafted(backend string) func() (RunFunc, error) {
	return func() (RunFunc, error) {
		be, err := flow.LookupBackend(backend)
		if err != nil {
			return nil, err
		}
		stimulus := make([]int64, 4096)
		for i := range stimulus {
			stimulus[i] = int64(i%251 + 1)
		}
		dp, fsm := handcraftedDesign()
		return func() (Measure, error) {
			sim := be.New()
			clk := sim.NewSignal("clk", 1)
			el, err := netlist.Elaborate(sim, clk, dp, fsm, netlist.Options{
				InitData: map[string][]int64{"src": stimulus},
			})
			if err != nil {
				return Measure{}, err
			}
			start := time.Now()
			rr, err := el.RunToCompletion(10, 1_000_000)
			if err != nil {
				return Measure{}, err
			}
			wall := time.Since(start)
			if !rr.Completed {
				return Measure{}, fmt.Errorf("bench: handcrafted-acc: incomplete after %d cycles", rr.Cycles)
			}
			return Measure{Events: sim.Stats().Events, Cycles: rr.Cycles, Wall: wall}, nil
		}, nil
	}
}

func handcraftedDesign() (*xmlspec.Datapath, *xmlspec.FSM) {
	dp := &xmlspec.Datapath{
		Name:  "acc",
		Width: 32,
		Operators: []xmlspec.Operator{
			{ID: "src", Type: "stim"},
			{ID: "r_acc", Type: "reg"},
			{ID: "add0", Type: "add"},
			{ID: "cap", Type: "sink"},
		},
		Connections: []xmlspec.Connection{
			{From: "r_acc.q", To: "add0.a"},
			{From: "src.out", To: "add0.b"},
			{From: "add0.y", To: "r_acc.d"},
			{From: "r_acc.q", To: "cap.in"},
		},
		Controls: []xmlspec.Control{
			{Name: "en_acc", Targets: []xmlspec.ControlTo{{Port: "r_acc.en"}}},
			{Name: "en_cap", Targets: []xmlspec.ControlTo{{Port: "cap.en"}}},
		},
		Statuses: []xmlspec.Status{
			{Name: "last", From: "src.last"},
		},
	}
	fsm := &xmlspec.FSM{
		Name:    "acc_ctl",
		Inputs:  []xmlspec.FSMSignal{{Name: "last"}},
		Outputs: []xmlspec.FSMSignal{{Name: "en_acc"}, {Name: "en_cap"}, {Name: "done"}},
		States: []xmlspec.State{
			{
				Name: "RUN", Initial: true,
				Assigns: []xmlspec.Assign{
					{Signal: "en_acc", Value: 1},
					{Signal: "en_cap", Value: 1},
				},
				Transitions: []xmlspec.Transition{
					{Cond: "!last", Next: "RUN"},
					{Next: "END"},
				},
			},
			{Name: "END", Final: true, Assigns: []xmlspec.Assign{{Signal: "done", Value: 1}}},
		},
	}
	return dp, fsm
}
