package hades

import (
	"fmt"
	"io"
	"sort"
)

// VCDWriter streams signal activity to a Value Change Dump file, the
// de-facto waveform interchange format. Attach signals before the run;
// every change is emitted as it happens. Hades exposes waveforms through
// its GUI; a VCD file is the headless equivalent.
type VCDWriter struct {
	IDBase
	w       io.Writer
	ids     map[*Signal]string
	order   []*Signal
	started bool
	lastT   Time
	err     error
}

// NewVCDWriter creates a writer targeting w.
func NewVCDWriter(w io.Writer) *VCDWriter {
	v := &VCDWriter{w: w, ids: make(map[*Signal]string), lastT: -1}
	v.AssignID(NextID())
	return v
}

// Name identifies the writer.
func (v *VCDWriter) Name() string { return "vcd" }

// Add registers a signal for dumping; must precede Header.
func (v *VCDWriter) Add(sig *Signal) {
	if _, dup := v.ids[sig]; dup {
		return
	}
	v.ids[sig] = vcdID(len(v.order))
	v.order = append(v.order, sig)
	sig.Listen(v)
}

// AddAll registers every signal of the simulator.
func (v *VCDWriter) AddAll(sim *Simulator) {
	sigs := append([]*Signal(nil), sim.Signals()...)
	sort.Slice(sigs, func(i, j int) bool { return sigs[i].Name() < sigs[j].Name() })
	for _, s := range sigs {
		v.Add(s)
	}
}

// Header writes the VCD preamble; call once before Run.
func (v *VCDWriter) Header(module string) {
	v.printf("$timescale 1ns $end\n$scope module %s $end\n", module)
	for _, s := range v.order {
		v.printf("$var wire %d %s %s $end\n", s.Width(), v.ids[s], sanitizeVCDName(s.Name()))
	}
	v.printf("$upscope $end\n$enddefinitions $end\n$dumpvars\n")
	for _, s := range v.order {
		v.emit(s)
	}
	v.printf("$end\n")
	v.started = true
}

// React emits changes for the current instant.
func (v *VCDWriter) React(sim *Simulator) {
	if !v.started || v.err != nil {
		return
	}
	if sim.Now() != v.lastT {
		v.printf("#%d\n", int64(sim.Now()))
		v.lastT = sim.Now()
	}
	// The kernel coalesces one React per delta; emit every registered
	// signal that changed at this instant.
	for _, s := range v.order {
		if s.LastChange() == sim.Now() && s.Valid() {
			v.emit(s)
		}
	}
}

// Err returns the first write error, if any.
func (v *VCDWriter) Err() error { return v.err }

func (v *VCDWriter) emit(s *Signal) {
	if !s.Valid() {
		if s.Width() == 1 {
			v.printf("x%s\n", v.ids[s])
		} else {
			v.printf("bx %s\n", v.ids[s])
		}
		return
	}
	if s.Width() == 1 {
		v.printf("%d%s\n", s.Uint()&1, v.ids[s])
		return
	}
	v.printf("b%b %s\n", s.Uint(), v.ids[s])
}

func (v *VCDWriter) printf(format string, args ...interface{}) {
	if v.err != nil {
		return
	}
	_, v.err = fmt.Fprintf(v.w, format, args...)
}

// vcdID maps an index to the printable-character identifier code VCD uses.
func vcdID(n int) string {
	const base = 94 // printable ASCII '!'..'~'
	id := []byte{}
	for {
		id = append(id, byte('!'+n%base))
		n /= base
		if n == 0 {
			break
		}
		n--
	}
	return string(id)
}

func sanitizeVCDName(name string) string {
	out := make([]byte, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c == ' ' || c == '\t' {
			c = '_'
		}
		out[i] = c
	}
	return string(out)
}
