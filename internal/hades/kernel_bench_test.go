package hades

import (
	"fmt"
	"testing"
)

// Pinned kernel scenarios, each built identically on the two-level
// kernel and on the seed heap kernel (heapref_test.go), so
// `go test -bench . ./internal/hades/...` reports the redesign's
// events/sec and allocs/op side by side:
//
//   ring-near:   64 self-rescheduling rings, periods 2..17 — dense
//                near-future traffic, lanes only.
//   delta-storm: 32 three-signal rings with two zero-delay hops per
//                firing — next-delta FIFO traffic.
//   far-timers:  128 timers with periods 2000..14300 — every event
//                detours through the overflow heap and a rebase.
//   fanout:      one period-4 ring fanning out to 256 listeners that
//                each schedule a private event — listener-scheduling
//                heavy with wide batches.

func benchTwoLevel(b *testing.B, window Time, build func(sim *Simulator)) {
	sim := NewSimulator()
	build(sim)
	if _, err := sim.Run(window); err != nil {
		b.Fatal(err)
	}
	start := sim.Stats().Events
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sim.Now() + window); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	ev := sim.Stats().Events - start
	b.ReportMetric(float64(ev)/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(float64(ev)/float64(b.N), "events/op")
}

func benchHeapRef(b *testing.B, window Time, build func(hs *heapSim)) {
	hs := newHeapSim()
	build(hs)
	if _, err := hs.run(window); err != nil {
		b.Fatal(err)
	}
	start := hs.events
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hs.run(hs.now + window); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	ev := hs.events - start
	b.ReportMetric(float64(ev)/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(float64(ev)/float64(b.N), "events/op")
}

// --- ring-near -------------------------------------------------------------

func ringsNearNew(sim *Simulator) {
	for k := 0; k < 64; k++ {
		sig := sim.NewSignal(fmt.Sprintf("ring%d", k), 32)
		p := Time(k%16 + 2)
		sig.Listen(&ReactorFunc{Label: "ring", Fn: func(s *Simulator) {
			s.SetUint(sig, sig.Uint()+1, p)
		}})
		sim.SetUint(sig, 1, Time(k%7+1))
	}
}

func ringsNearRef(hs *heapSim) {
	for k := 0; k < 64; k++ {
		sig := hs.newSignal(32)
		p := Time(k%16 + 2)
		r := &refReactor{id: k + 1}
		r.fn = func() { hs.set(sig, sig.Uint()+1, p) }
		sig.listeners = append(sig.listeners, r)
		hs.set(sig, 1, Time(k%7+1))
	}
}

// --- delta-storm -----------------------------------------------------------

func deltaStormNew(sim *Simulator) {
	for k := 0; k < 32; k++ {
		a := sim.NewSignal(fmt.Sprintf("a%d", k), 32)
		bb := sim.NewSignal(fmt.Sprintf("b%d", k), 32)
		c := sim.NewSignal(fmt.Sprintf("c%d", k), 32)
		p := Time(k%7 + 5)
		a.Listen(&ReactorFunc{Label: "s0", Fn: func(s *Simulator) { s.SetUint(bb, a.Uint(), 0) }})
		bb.Listen(&ReactorFunc{Label: "s1", Fn: func(s *Simulator) { s.SetUint(c, bb.Uint(), 0) }})
		c.Listen(&ReactorFunc{Label: "s2", Fn: func(s *Simulator) { s.SetUint(a, c.Uint()+1, p) }})
		sim.SetUint(a, 1, Time(k%5+1))
	}
}

func deltaStormRef(hs *heapSim) {
	for k := 0; k < 32; k++ {
		a := hs.newSignal(32)
		bb := hs.newSignal(32)
		c := hs.newSignal(32)
		p := Time(k%7 + 5)
		r0 := &refReactor{id: 3*k + 1, fn: func() { hs.set(bb, a.Uint(), 0) }}
		r1 := &refReactor{id: 3*k + 2, fn: func() { hs.set(c, bb.Uint(), 0) }}
		r2 := &refReactor{id: 3*k + 3, fn: func() { hs.set(a, c.Uint()+1, p) }}
		a.listeners = append(a.listeners, r0)
		bb.listeners = append(bb.listeners, r1)
		c.listeners = append(c.listeners, r2)
		hs.set(a, 1, Time(k%5+1))
	}
}

// --- far-timers ------------------------------------------------------------

func farTimersNew(sim *Simulator) {
	for k := 0; k < 128; k++ {
		sig := sim.NewSignal(fmt.Sprintf("t%d", k), 32)
		p := Time(2000 + k*97)
		sig.Listen(&ReactorFunc{Label: "timer", Fn: func(s *Simulator) {
			s.SetUint(sig, sig.Uint()+1, p)
		}})
		sim.SetUint(sig, 1, Time(k+1))
	}
}

func farTimersRef(hs *heapSim) {
	for k := 0; k < 128; k++ {
		sig := hs.newSignal(32)
		p := Time(2000 + k*97)
		r := &refReactor{id: k + 1}
		r.fn = func() { hs.set(sig, sig.Uint()+1, p) }
		sig.listeners = append(sig.listeners, r)
		hs.set(sig, 1, Time(k+1))
	}
}

// --- fanout ----------------------------------------------------------------

func fanoutNew(sim *Simulator) {
	drv := sim.NewSignal("drv", 32)
	drv.Listen(&ReactorFunc{Label: "drv", Fn: func(s *Simulator) {
		s.SetUint(drv, drv.Uint()+1, 4)
	}})
	for k := 0; k < 256; k++ {
		out := sim.NewSignal(fmt.Sprintf("o%d", k), 32)
		d := Time(k%4 + 1)
		drv.Listen(&ReactorFunc{Label: "tap", Fn: func(s *Simulator) {
			s.SetUint(out, drv.Uint(), d)
		}})
	}
	sim.SetUint(drv, 1, 1)
}

func fanoutRef(hs *heapSim) {
	drv := hs.newSignal(32)
	r := &refReactor{id: 1}
	r.fn = func() { hs.set(drv, drv.Uint()+1, 4) }
	drv.listeners = append(drv.listeners, r)
	for k := 0; k < 256; k++ {
		out := hs.newSignal(32)
		d := Time(k%4 + 1)
		rt := &refReactor{id: k + 2}
		rt.fn = func() { hs.set(out, drv.Uint(), d) }
		drv.listeners = append(drv.listeners, rt)
	}
	hs.set(drv, 1, 1)
}

// --- the benchmarks ----------------------------------------------------------

// Window sizes per scenario: far-timers needs a window spanning many
// timer periods so every iteration actually pops overflow events.
const (
	nearWindow = 1000
	farWindow  = 100000
)

func BenchmarkKernelTwoLevel(b *testing.B) {
	b.Run("ring-near", func(b *testing.B) { benchTwoLevel(b, nearWindow, ringsNearNew) })
	b.Run("delta-storm", func(b *testing.B) { benchTwoLevel(b, nearWindow, deltaStormNew) })
	b.Run("far-timers", func(b *testing.B) { benchTwoLevel(b, farWindow, farTimersNew) })
	b.Run("fanout", func(b *testing.B) { benchTwoLevel(b, nearWindow, fanoutNew) })
}

func BenchmarkKernelHeapRef(b *testing.B) {
	b.Run("ring-near", func(b *testing.B) { benchHeapRef(b, nearWindow, ringsNearRef) })
	b.Run("delta-storm", func(b *testing.B) { benchHeapRef(b, nearWindow, deltaStormRef) })
	b.Run("far-timers", func(b *testing.B) { benchHeapRef(b, farWindow, farTimersRef) })
	b.Run("fanout", func(b *testing.B) { benchHeapRef(b, nearWindow, fanoutRef) })
}
