package hades

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// --- property: two-level queue order == seed heap order -----------------
//
// The seed kernel ordered events by (time, delta, insertion) through one
// binary heap. The two-level queue must be observationally identical, so
// we replay randomized schedules — near delays, zero-delay chains, and
// far delays that detour through the overflow heap — on mirrored
// topologies and require the full reaction traces to match exactly.

type traceEntry struct {
	at  Time
	idx int
	val uint64
}

// follow is the shared follow-on rule both kernels execute from their
// reactors; it spawns delta chains, near events inside the lane window,
// and far events beyond it (laneCount=1024 < 2000).
func follow(i int, v uint64, n int) (tgt int, val uint64, delay Time, ok bool) {
	switch v % 5 {
	case 0:
		return (i + 1) % n, v + 1, 0, true
	case 1:
		return (i + 2) % n, v + 7, Time(v%13 + 1), true
	case 2:
		return (i + 3) % n, v + 11, Time(2000 + (v%7)*911), true
	}
	return 0, 0, 0, false
}

type mirrorReactor struct {
	IDBase
	fn func()
}

func (m *mirrorReactor) Name() string     { return "mirror" }
func (m *mirrorReactor) React(*Simulator) { m.fn() }

func runMirrored(t *testing.T, seed int64, newSim func() *Simulator, nsig, nevents, maxVal, maxDelay int) {
	t.Helper()
	sim := newSim()
	ref := newHeapSim()
	sigs := make([]*Signal, nsig)
	refs := make([]*refSignal, nsig)
	var simTrace, refTrace []traceEntry

	for i := 0; i < nsig; i++ {
		sigs[i] = sim.NewSignal(fmt.Sprintf("s%d", i), 32)
		refs[i] = ref.newSignal(32)
	}
	for i := 0; i < nsig; i++ {
		i := i
		mr := &mirrorReactor{fn: func() {
			v := sigs[i].Uint()
			simTrace = append(simTrace, traceEntry{sim.Now(), i, v})
			if tgt, val, d, ok := follow(i, v, nsig); ok {
				sim.SetUint(sigs[tgt], val, d)
			}
		}}
		mr.AssignID(i + 1)
		sigs[i].Listen(mr)

		rr := &refReactor{id: i + 1}
		rr.fn = func() {
			v := refs[i].Uint()
			refTrace = append(refTrace, traceEntry{ref.now, i, v})
			if tgt, val, d, ok := follow(i, v, nsig); ok {
				ref.set(refs[tgt], val, d)
			}
		}
		refs[i].listeners = append(refs[i].listeners, rr)
	}

	rng := rand.New(rand.NewSource(seed))
	for k := 0; k < nevents; k++ {
		i := rng.Intn(nsig)
		v := uint64(rng.Intn(maxVal))
		d := Time(rng.Intn(maxDelay))
		sim.SetUint(sigs[i], v, d)
		ref.set(refs[i], v, d)
	}

	if _, err := sim.Run(TimeMax); err != nil {
		t.Fatalf("seed %d: sim: %v", seed, err)
	}
	if _, err := ref.run(TimeMax); err != nil {
		t.Fatalf("seed %d: ref: %v", seed, err)
	}
	if len(simTrace) != len(refTrace) {
		t.Fatalf("seed %d: trace length %d != reference %d", seed, len(simTrace), len(refTrace))
	}
	for k := range simTrace {
		if simTrace[k] != refTrace[k] {
			t.Fatalf("seed %d: trace[%d] = %+v, reference %+v", seed, k, simTrace[k], refTrace[k])
		}
	}
	if sim.Stats().Events != ref.events {
		t.Fatalf("seed %d: events %d != reference %d", seed, sim.Stats().Events, ref.events)
	}
	for i := range sigs {
		if sigs[i].Uint() != refs[i].Uint() || sigs[i].Valid() != refs[i].valid {
			t.Fatalf("seed %d: signal %d = %d/%v, reference %d/%v",
				seed, i, sigs[i].Uint(), sigs[i].Valid(), refs[i].val, refs[i].valid)
		}
	}
}

func TestQueueOrderMatchesHeapProperty(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		runMirrored(t, seed, NewSimulator, 8, 40, 1000, 3000)
	}
}

func TestQueueOrderDuplicateTimes(t *testing.T) {
	// Small value/delay ranges force duplicate instants, same-value
	// suppression, and repeated (time, seq) collisions around the
	// lane-window boundary.
	for seed := int64(100); seed < 130; seed++ {
		runMirrored(t, seed, NewSimulator, 4, 60, 5, 2600)
	}
}

// --- stop / interrupt ordering ------------------------------------------

func TestStopDuringDeltaCycle(t *testing.T) {
	sim := NewSimulator()
	a := sim.NewSignal("a", 32)
	var after []uint64
	r1 := &mirrorReactor{fn: func() {
		v := a.Uint()
		if v < 10 {
			sim.SetUint(a, v+1, 0) // scheduled before the stop request
		}
		if v == 3 {
			sim.RequestStop("saw three")
		}
	}}
	r1.AssignID(1)
	r2 := &mirrorReactor{fn: func() { after = append(after, a.Uint()) }}
	r2.AssignID(2)
	a.Listen(r1)
	a.Listen(r2)

	sim.Set(a, 1, 5)
	end, err := sim.Run(TimeMax)
	if err != nil {
		t.Fatal(err)
	}
	if end != 5 || sim.Now() != 5 {
		t.Fatalf("end=%v now=%v, want 5", end, sim.Now())
	}
	if stopped, why := sim.Stopped(); !stopped || why != "saw three" {
		t.Fatalf("stopped=%v why=%q", stopped, why)
	}
	// r2 has the higher id: it must not observe the delta in which the
	// stop was requested.
	if len(after) != 2 || after[0] != 1 || after[1] != 2 {
		t.Fatalf("post-stop reactor saw %v, want [1 2]", after)
	}
	// The zero-delay event r1 scheduled in the stopping delta stays
	// queued, unapplied.
	if a.Uint() != 3 {
		t.Fatalf("a=%d, want 3 (value of the stopping delta)", a.Uint())
	}
	if n := sim.PendingEvents(); n != 1 {
		t.Fatalf("pending=%d, want the 1 unapplied zero-delay event", n)
	}

	// A stopped simulator must not touch the queue again: resuming is a
	// no-op that leaves events, values and counters untouched.
	ev := sim.Stats().Events
	end, err = sim.Run(TimeMax)
	if err != nil || end != 5 {
		t.Fatalf("resume after stop: end=%v err=%v", end, err)
	}
	if sim.Stats().Events != ev || sim.PendingEvents() != 1 || len(after) != 2 {
		t.Fatal("stopped run must not process events")
	}
}

func TestInterruptPolledPerInstantNotPerEvent(t *testing.T) {
	sim := NewSimulator()
	a := sim.NewSignal("a", 32)
	b := sim.NewSignal("b", 32)
	// 20 instants, 3 events each; plus a 30-delta zero-delay chain on
	// the first instant: the poll count must equal the instant count.
	for i := 1; i <= 20; i++ {
		for j := 0; j < 3; j++ {
			sim.SetUint(a, uint64(100*i+j), Time(i*7))
		}
	}
	depth := 0
	r := &mirrorReactor{fn: func() {
		if sim.Now() == 7 && depth < 30 {
			depth++
			sim.SetUint(b, uint64(depth), 0)
		}
	}}
	r.AssignID(1)
	a.Listen(r)
	b.Listen(r)

	polls := 0
	sim.Interrupt = func() bool { polls++; return false }
	if _, err := sim.Run(TimeMax); err != nil {
		t.Fatal(err)
	}
	st := sim.Stats()
	if st.Instants != 20 {
		t.Fatalf("instants=%d want 20", st.Instants)
	}
	if polls != int(st.Instants) {
		t.Fatalf("interrupt polled %d times for %d instants", polls, st.Instants)
	}
}

func TestInterruptStopsBeforeNextInstant(t *testing.T) {
	sim := NewSimulator()
	a := sim.NewSignal("a", 32)
	for i := 1; i <= 5; i++ {
		sim.SetUint(a, uint64(i), Time(i*10))
	}
	polls := 0
	sim.Interrupt = func() bool { polls++; return polls > 2 }
	end, err := sim.Run(TimeMax)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err=%v want ErrInterrupted", err)
	}
	if end != 20 || a.Uint() != 2 {
		t.Fatalf("end=%v a=%d; want interruption after the 2nd instant", end, a.Uint())
	}
	if sim.PendingEvents() != 3 {
		t.Fatalf("pending=%d, want 3 future events left queued", sim.PendingEvents())
	}
}

// --- two-level specifics --------------------------------------------------

func TestLazyRebaseAllowsBackfill(t *testing.T) {
	// A limit-bounded run must not rebase the lane window onto a far
	// event it will not process: events scheduled later, between now and
	// that far event, would land behind the window.
	sim := NewSimulator()
	a := sim.NewSignal("a", 32)
	var trace []traceEntry
	r := &mirrorReactor{fn: func() { trace = append(trace, traceEntry{sim.Now(), 0, a.Uint()}) }}
	r.AssignID(1)
	a.Listen(r)

	sim.SetUint(a, 1, 1)
	sim.SetUint(a, 2, 50000) // far beyond the lane window: overflow
	if _, err := sim.Run(10); err != nil {
		t.Fatal(err)
	}
	sim.SetUint(a, 3, 100) // backfill: earlier than the far event
	if _, err := sim.Run(TimeMax); err != nil {
		t.Fatal(err)
	}
	want := []traceEntry{{1, 0, 1}, {101, 0, 3}, {50000, 0, 2}}
	if len(trace) != len(want) {
		t.Fatalf("trace=%v want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace=%v want %v", trace, want)
		}
	}
}

func TestLimitBoundedRunAllowsEarlierLaneBackfill(t *testing.T) {
	// A Run bounded below a pending in-window event advances the lane
	// scan onto that event's instant without processing it; an event
	// scheduled afterwards at an earlier time must still be delivered
	// in order, at its own time, not aliased behind the scan position.
	sim := NewSimulator()
	a := sim.NewSignal("a", 32)
	var trace []traceEntry
	r := &mirrorReactor{fn: func() { trace = append(trace, traceEntry{sim.Now(), 0, a.Uint()}) }}
	r.AssignID(1)
	a.Listen(r)

	sim.SetUint(a, 1, 1)
	sim.SetUint(a, 2, 500) // in-window, beyond the first run's limit
	if _, err := sim.Run(10); err != nil {
		t.Fatal(err)
	}
	sim.SetUint(a, 3, 100) // earlier than the peeked instant: t=101
	if _, err := sim.Run(TimeMax); err != nil {
		t.Fatal(err)
	}
	want := []traceEntry{{1, 0, 1}, {101, 0, 3}, {500, 0, 2}}
	if len(trace) != len(want) {
		t.Fatalf("trace=%v want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace=%v want %v", trace, want)
		}
	}
	if a.Uint() != 2 {
		t.Fatalf("a=%d want 2", a.Uint())
	}
}

func TestInterruptedRunAllowsEarlierBackfillBeforeRebase(t *testing.T) {
	// An interrupt fires after the next instant is peeked but before it
	// is processed. When that instant lives in the overflow heap, the
	// window must not have been rebased onto it: an event scheduled
	// after the interrupted Run, earlier than the far instant, would
	// otherwise land behind the window and alias a lane.
	sim := NewSimulator()
	a := sim.NewSignal("a", 32)
	var trace []traceEntry
	r := &mirrorReactor{fn: func() { trace = append(trace, traceEntry{sim.Now(), 0, a.Uint()}) }}
	r.AssignID(1)
	a.Listen(r)

	sim.SetUint(a, 1, 1)
	sim.SetUint(a, 2, 5000) // beyond the lane window: overflow
	polls := 0
	sim.Interrupt = func() bool { polls++; return polls > 1 }
	if _, err := sim.Run(TimeMax); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err=%v want ErrInterrupted", err)
	}
	sim.Interrupt = nil
	sim.SetUint(a, 3, 100) // earlier than the peeked far instant
	if _, err := sim.Run(TimeMax); err != nil {
		t.Fatal(err)
	}
	want := []traceEntry{{1, 0, 1}, {101, 0, 3}, {5000, 0, 2}}
	if len(trace) != len(want) {
		t.Fatalf("trace=%v want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace=%v want %v", trace, want)
		}
	}
}

func TestPendingEventsDrainToZero(t *testing.T) {
	sim := NewSimulator()
	a := sim.NewSignal("a", 8)
	sim.Set(a, 1, 3)
	sim.Set(a, 2, 30000)
	sim.Set(a, 3, 0)
	if got := sim.PendingEvents(); got != 3 {
		t.Fatalf("pending=%d want 3", got)
	}
	if _, err := sim.Run(TimeMax); err != nil {
		t.Fatal(err)
	}
	if got := sim.PendingEvents(); got != 0 {
		t.Fatalf("pending=%d want 0 after drain", got)
	}
}

// --- free-list win --------------------------------------------------------

func TestKernelSteadyStateAllocs(t *testing.T) {
	sim := NewSimulator()
	// Self-sustaining traffic over every queue path: near rings (lanes),
	// a zero-delay chain (next-delta FIFO), and far timers (overflow).
	for k := 0; k < 8; k++ {
		sig := sim.NewSignal(fmt.Sprintf("ring%d", k), 32)
		p := Time(k%5 + 3)
		sig.Listen(&ReactorFunc{Label: "ring", Fn: func(s *Simulator) {
			s.SetUint(sig, sig.Uint()+1, p)
		}})
		sim.SetUint(sig, 1, Time(k+1))
	}
	da := sim.NewSignal("da", 32)
	db := sim.NewSignal("db", 32)
	da.Listen(&ReactorFunc{Label: "d0", Fn: func(s *Simulator) { s.SetUint(db, da.Uint(), 0) }})
	db.Listen(&ReactorFunc{Label: "d1", Fn: func(s *Simulator) { s.SetUint(da, db.Uint()+1, 9) }})
	sim.SetUint(da, 1, 2)
	far := sim.NewSignal("far", 32)
	far.Listen(&ReactorFunc{Label: "far", Fn: func(s *Simulator) {
		s.SetUint(far, far.Uint()+1, 5000)
	}})
	sim.SetUint(far, 1, 4)

	// Warm up: grows the event pool, the overflow heap backing array,
	// the reactor-order slice and the lazy reactor-id map.
	if _, err := sim.Run(20000); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(50, func() {
		if _, err := sim.Run(sim.Now() + 500); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state kernel allocates %v objects per 500-tick window, want 0", avg)
	}
}
