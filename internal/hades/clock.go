package hades

// Clock drives a 1-bit signal with a square wave. It schedules its own
// toggle events, so it needs no external stimulus; Start must be called
// once before Run.
type Clock struct {
	IDBase
	label  string
	sig    *Signal
	period Time
	phase  bool
	limit  Time
}

// NewClock creates a clock on sig with the given period (ticks). The
// clock stops scheduling once the next edge would pass limit, which keeps
// the event queue finite for drain-style runs.
func NewClock(label string, sig *Signal, period Time, limit Time) *Clock {
	if period < 2 {
		panic("hades: clock period must be at least 2 ticks")
	}
	c := &Clock{label: label, sig: sig, period: period, limit: limit}
	c.AssignID(NextID())
	return c
}

// Name returns the clock label.
func (c *Clock) Name() string { return c.label }

// Signal returns the driven clock signal.
func (c *Clock) Signal() *Signal { return c.sig }

// Period returns the clock period in ticks.
func (c *Clock) Period() Time { return c.period }

// SetLimit reprograms the scheduling horizon, for reusing one clock
// across reset-and-replay rounds (the limit of a fresh round differs
// when the caller's cycle cap does).
func (c *Clock) SetLimit(limit Time) { c.limit = limit }

// Start drives the signal low and schedules the first rising edge.
func (c *Clock) Start(sim *Simulator) {
	sim.Drive(c.sig, 0)
	c.phase = false
	c.sig.Listen(c)
	sim.Set(c.sig, 1, c.period/2)
}

// React schedules the next half-period toggle.
func (c *Clock) React(sim *Simulator) {
	next := sim.Now() + c.period/2
	if next > c.limit {
		return
	}
	if c.sig.Bool() {
		sim.Set(c.sig, 0, c.period/2)
	} else {
		sim.Set(c.sig, 1, c.period/2)
	}
}

// RisingEdge reports whether sig just transitioned to 1, tracking the
// previous observation in prev (caller-owned storage).
func RisingEdge(sig *Signal, prev *bool) bool {
	cur := sig.Bool()
	rose := cur && !*prev
	*prev = cur
	return rose
}

// ResetPulse drives a 1-bit reset signal active for the first 'active'
// ticks of simulation and then deasserts it.
type ResetPulse struct {
	IDBase
	label string
	sig   *Signal
}

// NewResetPulse drives sig high immediately and schedules the deassertion
// at the given time.
func NewResetPulse(label string, sim *Simulator, sig *Signal, active Time) *ResetPulse {
	r := &ResetPulse{label: label, sig: sig}
	r.AssignID(NextID())
	sim.Drive(sig, 1)
	sim.Set(sig, 0, active)
	return r
}

// Name returns the reset label.
func (r *ResetPulse) Name() string { return r.label }

// React is a no-op; the pulse is entirely pre-scheduled.
func (r *ResetPulse) React(*Simulator) {}
