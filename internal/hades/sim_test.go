package hades

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSignalDefaults(t *testing.T) {
	sim := NewSimulator()
	s := sim.NewSignal("a", 8)
	if s.Valid() {
		t.Fatal("fresh signal must be undefined")
	}
	if s.Uint() != 0 || s.Int() != 0 {
		t.Fatal("undefined signal must read 0")
	}
	if s.Name() != "a" || s.Width() != 8 {
		t.Fatalf("metadata mismatch: %s/%d", s.Name(), s.Width())
	}
}

func TestSignalWidthValidation(t *testing.T) {
	sim := NewSimulator()
	for _, w := range []int{0, -1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("width %d must panic", w)
				}
			}()
			sim.NewSignal("bad", w)
		}()
	}
}

func TestMask(t *testing.T) {
	cases := []struct {
		v    uint64
		w    int
		want uint64
	}{
		{0xFF, 4, 0xF},
		{0x100, 8, 0},
		{math.MaxUint64, 64, math.MaxUint64},
		{math.MaxUint64, 1, 1},
		{0, 32, 0},
	}
	for _, c := range cases {
		if got := Mask(c.v, c.w); got != c.want {
			t.Errorf("Mask(%#x,%d)=%#x want %#x", c.v, c.w, got, c.want)
		}
	}
}

func TestSignExtend(t *testing.T) {
	cases := []struct {
		v    uint64
		w    int
		want int64
	}{
		{0xF, 4, -1},
		{0x7, 4, 7},
		{0x80, 8, -128},
		{0x7F, 8, 127},
		{0xFFFFFFFF, 32, -1},
		{1 << 31, 32, math.MinInt32},
	}
	for _, c := range cases {
		if got := SignExtend(c.v, c.w); got != c.want {
			t.Errorf("SignExtend(%#x,%d)=%d want %d", c.v, c.w, got, c.want)
		}
	}
}

func TestSignExtendRoundTripProperty(t *testing.T) {
	// For any int64 v and width w, masking then sign-extending a value
	// that fits in w bits must return the value unchanged.
	f := func(v int32) bool {
		return SignExtend(Mask(uint64(int64(v)), 32), 32) == int64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEventDeliveryAndOrder(t *testing.T) {
	sim := NewSimulator()
	a := sim.NewSignal("a", 32)
	var seen []int64
	r := &ReactorFunc{Label: "rec", Fn: func(s *Simulator) {
		seen = append(seen, a.Int())
	}}
	a.Listen(r)
	sim.Set(a, 3, 30)
	sim.Set(a, 1, 10)
	sim.Set(a, 2, 20)
	if _, err := sim.Run(TimeMax); err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 2, 3}
	if len(seen) != len(want) {
		t.Fatalf("saw %v want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("saw %v want %v", seen, want)
		}
	}
}

func TestNoReactionOnSameValue(t *testing.T) {
	sim := NewSimulator()
	a := sim.NewSignal("a", 8)
	count := 0
	a.Listen(&ReactorFunc{Label: "c", Fn: func(*Simulator) { count++ }})
	sim.Set(a, 5, 1)
	sim.Set(a, 5, 2) // same value: no change, no reaction
	sim.Set(a, 6, 3)
	if _, err := sim.Run(TimeMax); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("reactions = %d, want 2", count)
	}
}

func TestDeltaCycleSeparation(t *testing.T) {
	// b follows a with zero delay; the update must land in the next
	// delta of the same instant, not the same delta.
	sim := NewSimulator()
	a := sim.NewSignal("a", 8)
	b := sim.NewSignal("b", 8)
	var bAtReact []int64
	a.Listen(&ReactorFunc{Label: "follow", Fn: func(s *Simulator) {
		bAtReact = append(bAtReact, b.Int())
		s.Set(b, a.Int(), 0)
	}})
	sim.Set(a, 7, 5)
	end, err := sim.Run(TimeMax)
	if err != nil {
		t.Fatal(err)
	}
	if end != 5 {
		t.Fatalf("end=%v want 5", end)
	}
	if b.Int() != 7 {
		t.Fatalf("b=%d want 7", b.Int())
	}
	if len(bAtReact) != 1 || bAtReact[0] != 0 {
		t.Fatalf("b must still be old value during a's delta: %v", bAtReact)
	}
	if st := sim.Stats(); st.Deltas < 2 {
		t.Fatalf("expected at least 2 deltas, got %d", st.Deltas)
	}
}

func TestCombinationalLoopDetected(t *testing.T) {
	sim := NewSimulator()
	a := sim.NewSignal("a", 1)
	// Inverter feeding itself: oscillates forever in delta time.
	a.Listen(&ReactorFunc{Label: "inv", Fn: func(s *Simulator) {
		s.Set(a, 1-a.Int(), 0)
	}})
	sim.MaxDeltas = 50
	sim.Set(a, 1, 1)
	if _, err := sim.Run(TimeMax); err == nil {
		t.Fatal("expected delta limit error")
	} else if !strings.Contains(err.Error(), "delta cycle limit") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestRunLimitLeavesFutureEvents(t *testing.T) {
	sim := NewSimulator()
	a := sim.NewSignal("a", 8)
	sim.Set(a, 1, 10)
	sim.Set(a, 2, 1000)
	end, err := sim.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if end != 10 || a.Int() != 1 {
		t.Fatalf("end=%v a=%d; want 10, 1", end, a.Int())
	}
	// Resume to process the rest.
	end, err = sim.Run(TimeMax)
	if err != nil {
		t.Fatal(err)
	}
	if end != 1000 || a.Int() != 2 {
		t.Fatalf("after resume end=%v a=%d", end, a.Int())
	}
}

func TestRequestStop(t *testing.T) {
	sim := NewSimulator()
	a := sim.NewSignal("a", 8)
	a.Listen(&ReactorFunc{Label: "stopper", Fn: func(s *Simulator) {
		if a.Int() == 3 {
			s.RequestStop("saw three")
		}
	}})
	for i := 1; i <= 10; i++ {
		sim.Set(a, int64(i), Time(i))
	}
	end, err := sim.Run(TimeMax)
	if err != nil {
		t.Fatal(err)
	}
	if end != 3 {
		t.Fatalf("end=%v want 3", end)
	}
	stopped, why := sim.Stopped()
	if !stopped || why != "saw three" {
		t.Fatalf("stopped=%v why=%q", stopped, why)
	}
}

func TestDriveInitialization(t *testing.T) {
	sim := NewSimulator()
	a := sim.NewSignal("a", 16)
	sim.Drive(a, -2)
	if !a.Valid() || a.Int() != -2 {
		t.Fatalf("drive failed: valid=%v val=%d", a.Valid(), a.Int())
	}
	if a.Uint() != 0xFFFE {
		t.Fatalf("masked store wrong: %#x", a.Uint())
	}
}

func TestClockGeneratesEdges(t *testing.T) {
	sim := NewSimulator()
	clk := sim.NewSignal("clk", 1)
	c := NewClock("clk", clk, 10, 100)
	c.Start(sim)
	rises := 0
	prev := false
	clk.Listen(&ReactorFunc{Label: "cnt", Fn: func(*Simulator) {
		if RisingEdge(clk, &prev) {
			rises++
		}
	}})
	if _, err := sim.Run(TimeMax); err != nil {
		t.Fatal(err)
	}
	if rises != 10 {
		t.Fatalf("rises=%d want 10", rises)
	}
}

func TestClockPeriodValidation(t *testing.T) {
	sim := NewSimulator()
	clk := sim.NewSignal("clk", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("period < 2 must panic")
		}
	}()
	NewClock("bad", clk, 1, 100)
}

func TestResetPulse(t *testing.T) {
	sim := NewSimulator()
	rst := sim.NewSignal("rst", 1)
	NewResetPulse("rst", sim, rst, 15)
	if !rst.Bool() {
		t.Fatal("reset must start asserted")
	}
	if _, err := sim.Run(TimeMax); err != nil {
		t.Fatal(err)
	}
	if rst.Bool() {
		t.Fatal("reset must deassert")
	}
	if rst.LastChange() != 15 {
		t.Fatalf("deassert at %v want 15", rst.LastChange())
	}
}

func TestProbeHistoryAndValueAt(t *testing.T) {
	sim := NewSimulator()
	a := sim.NewSignal("a", 8)
	p := NewProbe(a, 0)
	sim.Set(a, 1, 10)
	sim.Set(a, 2, 20)
	sim.Set(a, 3, 30)
	if _, err := sim.Run(TimeMax); err != nil {
		t.Fatal(err)
	}
	if p.Transitions() != 3 {
		t.Fatalf("transitions=%d", p.Transitions())
	}
	if v, ok := p.ValueAt(25); !ok || v != 2 {
		t.Fatalf("ValueAt(25)=%d,%v", v, ok)
	}
	if _, ok := p.ValueAt(5); ok {
		t.Fatal("no value before first change")
	}
	if !strings.Contains(p.Dump(), "20:2") {
		t.Fatalf("dump missing entry: %s", p.Dump())
	}
}

func TestProbeBoundedHistory(t *testing.T) {
	sim := NewSimulator()
	a := sim.NewSignal("a", 32)
	p := NewProbe(a, 5)
	for i := 1; i <= 20; i++ {
		sim.Set(a, int64(i), Time(i))
	}
	if _, err := sim.Run(TimeMax); err != nil {
		t.Fatal(err)
	}
	if len(p.History()) != 5 {
		t.Fatalf("history=%d want 5", len(p.History()))
	}
	if p.Dropped() != 15 || p.Transitions() != 20 {
		t.Fatalf("dropped=%d transitions=%d", p.Dropped(), p.Transitions())
	}
	if p.History()[0].Value != 16 {
		t.Fatalf("oldest kept=%d want 16", p.History()[0].Value)
	}
}

func TestAssertionRecordsAndStops(t *testing.T) {
	sim := NewSimulator()
	a := sim.NewSignal("a", 8)
	as := NewAssertion("a<=3", func() bool { return a.Int() <= 3 }, a)
	as.StopOnFail = true
	for i := 1; i <= 10; i++ {
		sim.Set(a, int64(i), Time(i))
	}
	if _, err := sim.Run(TimeMax); err != nil {
		t.Fatal(err)
	}
	if !as.Failed() || len(as.Violations()) != 1 {
		t.Fatalf("violations=%v", as.Violations())
	}
	if as.Violations()[0].At != 4 {
		t.Fatalf("violation at %v want 4", as.Violations()[0].At)
	}
	if stopped, _ := sim.Stopped(); !stopped {
		t.Fatal("must stop on failure")
	}
}

func TestAssertionNonStopCollectsAll(t *testing.T) {
	sim := NewSimulator()
	a := sim.NewSignal("a", 8)
	as := NewAssertion("even", func() bool { return a.Int()%2 == 0 }, a)
	for i := 1; i <= 6; i++ {
		sim.Set(a, int64(i), Time(i))
	}
	if _, err := sim.Run(TimeMax); err != nil {
		t.Fatal(err)
	}
	if len(as.Violations()) != 3 {
		t.Fatalf("violations=%d want 3", len(as.Violations()))
	}
}

func TestWatchdogStopsOnValue(t *testing.T) {
	sim := NewSimulator()
	done := sim.NewSignal("done", 1)
	w := NewWatchdog("done", done, 1)
	sim.Set(done, 0, 1)
	sim.Set(done, 1, 42)
	end, err := sim.Run(TimeMax)
	if err != nil {
		t.Fatal(err)
	}
	fired, at := w.Fired()
	if !fired || at != 42 || end != 42 {
		t.Fatalf("fired=%v at=%v end=%v", fired, at, end)
	}
}

func TestVCDOutput(t *testing.T) {
	sim := NewSimulator()
	a := sim.NewSignal("a", 1)
	b := sim.NewSignal("bus", 8)
	var sb strings.Builder
	v := NewVCDWriter(&sb)
	v.Add(a)
	v.Add(b)
	v.Header("top")
	sim.Set(a, 1, 5)
	sim.Set(b, 0xAB, 5)
	sim.Set(a, 0, 9)
	if _, err := sim.Run(TimeMax); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"$timescale 1ns $end",
		"$var wire 1 ! a $end",
		"$var wire 8 \" bus $end",
		"#5", "1!", "b10101011 \"", "#9", "0!",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("vcd missing %q in:\n%s", want, out)
		}
	}
	if v.Err() != nil {
		t.Fatal(v.Err())
	}
}

func TestVCDIDUniqueness(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 5000; i++ {
		id := vcdID(i)
		if seen[id] {
			t.Fatalf("duplicate vcd id %q at %d", id, i)
		}
		seen[id] = true
	}
}

func TestStatsCounters(t *testing.T) {
	sim := NewSimulator()
	a := sim.NewSignal("a", 8)
	a.Listen(&ReactorFunc{Label: "nop", Fn: func(*Simulator) {}})
	sim.Set(a, 1, 1)
	sim.Set(a, 2, 2)
	if _, err := sim.Run(TimeMax); err != nil {
		t.Fatal(err)
	}
	st := sim.Stats()
	if st.Events != 2 || st.Reactions != 2 || st.Instants != 2 {
		t.Fatalf("stats=%+v", st)
	}
}

func TestOnFinishRuns(t *testing.T) {
	sim := NewSimulator()
	called := false
	sim.OnFinish(func() { called = true })
	if _, err := sim.Run(TimeMax); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("finalizer not called")
	}
}

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		5:             "5ns",
		1_500:         "1.5us",
		2_000_000:     "2ms",
		3_000_000_000: "3s",
	}
	for tm, want := range cases {
		if got := tm.String(); got != want {
			t.Errorf("%d.String()=%q want %q", int64(tm), got, want)
		}
	}
}

func TestDeterministicReactionOrder(t *testing.T) {
	// Two reactors on the same signal must always fire in creation order.
	for trial := 0; trial < 10; trial++ {
		sim := NewSimulator()
		a := sim.NewSignal("a", 8)
		var order []string
		r1 := &orderedReactor{label: "first", out: &order}
		r1.AssignID(NextID())
		r2 := &orderedReactor{label: "second", out: &order}
		r2.AssignID(NextID())
		a.Listen(r2) // listen order reversed on purpose
		a.Listen(r1)
		sim.Set(a, 1, 1)
		if _, err := sim.Run(TimeMax); err != nil {
			t.Fatal(err)
		}
		if len(order) != 2 || order[0] != "first" || order[1] != "second" {
			t.Fatalf("order=%v", order)
		}
	}
}

type orderedReactor struct {
	IDBase
	label string
	out   *[]string
}

func (o *orderedReactor) Name() string     { return o.label }
func (o *orderedReactor) React(*Simulator) { *o.out = append(*o.out, o.label) }

func TestEventMonotonicityProperty(t *testing.T) {
	// Property: regardless of the (delay, value) schedule order, reactions
	// observe a non-decreasing time sequence.
	f := func(delays []uint8) bool {
		sim := NewSimulator()
		a := sim.NewSignal("a", 32)
		last := Time(-1)
		ok := true
		a.Listen(&ReactorFunc{Label: "mono", Fn: func(s *Simulator) {
			if s.Now() < last {
				ok = false
			}
			last = s.Now()
		}})
		for i, d := range delays {
			sim.Set(a, int64(i+1), Time(d))
		}
		if _, err := sim.Run(TimeMax); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
