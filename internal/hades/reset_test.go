package hades

import (
	"fmt"
	"testing"
)

// resetKernels enumerates the queue implementations reset must cover.
var resetKernels = []struct {
	name string
	mk   func() *Simulator
}{
	{KernelTwoLevel, NewSimulator},
	{KernelHeapRef, NewHeapRefSimulator},
}

// buildResetTraffic wires self-sustaining traffic over every queue path
// (lanes, delta FIFO, overflow heap); seed re-arms it after a Reset.
func buildResetTraffic(sim *Simulator) (seed func()) {
	var sigs []*Signal
	for k := 0; k < 8; k++ {
		sig := sim.NewSignal(fmt.Sprintf("ring%d", k), 32)
		p := Time(k%5 + 3)
		sig.Listen(&ReactorFunc{Label: "ring", Fn: func(s *Simulator) {
			s.SetUint(sig, sig.Uint()+1, p)
		}})
		sigs = append(sigs, sig)
	}
	da := sim.NewSignal("da", 32)
	db := sim.NewSignal("db", 32)
	da.Listen(&ReactorFunc{Label: "d0", Fn: func(s *Simulator) { s.SetUint(db, da.Uint(), 0) }})
	db.Listen(&ReactorFunc{Label: "d1", Fn: func(s *Simulator) { s.SetUint(da, db.Uint()+1, 9) }})
	far := sim.NewSignal("far", 32)
	far.Listen(&ReactorFunc{Label: "far", Fn: func(s *Simulator) {
		s.SetUint(far, far.Uint()+1, 5000)
	}})
	sigs = append(sigs, da, db, far)
	return func() {
		for k, sig := range sigs[:8] {
			sim.SetUint(sig, 1, Time(k+1))
		}
		sim.SetUint(da, 1, 2)
		sim.SetUint(far, 1, 4)
	}
}

type simSnapshot struct {
	stats Stats
	now   Time
	vals  []uint64
}

func snapshot(sim *Simulator) simSnapshot {
	s := simSnapshot{stats: sim.Stats(), now: sim.Now()}
	s.stats.Elaborations, s.stats.Resets = 0, 0 // lifetime counters differ by design
	for _, sig := range sim.Signals() {
		s.vals = append(s.vals, sig.Uint())
	}
	return s
}

func equalSnapshots(a, b simSnapshot) bool {
	if a.stats != b.stats || a.now != b.now || len(a.vals) != len(b.vals) {
		return false
	}
	for i := range a.vals {
		if a.vals[i] != b.vals[i] {
			return false
		}
	}
	return true
}

// TestResetReplayMatchesFreshRun pins that a reset simulator re-running
// the same schedule produces exactly the per-run stats and final values
// of a freshly built one, on both kernels, across several rounds.
func TestResetReplayMatchesFreshRun(t *testing.T) {
	const horizon = 20_000
	for _, k := range resetKernels {
		t.Run(k.name, func(t *testing.T) {
			ref := k.mk()
			seedRef := buildResetTraffic(ref)
			seedRef()
			if _, err := ref.Run(horizon); err != nil {
				t.Fatal(err)
			}
			want := snapshot(ref)
			if want.stats.Events == 0 {
				t.Fatal("reference run processed no events")
			}

			sim := k.mk()
			seed := buildResetTraffic(sim)
			for round := 0; round < 3; round++ {
				if round > 0 {
					sim.Reset()
				}
				seed()
				if _, err := sim.Run(horizon); err != nil {
					t.Fatal(err)
				}
				if got := snapshot(sim); !equalSnapshots(got, want) {
					t.Fatalf("round %d diverged: got %+v want %+v", round, got.stats, want.stats)
				}
				if got := sim.Stats().Resets; got != uint64(round) {
					t.Fatalf("round %d: Resets=%d", round, got)
				}
			}
		})
	}
}

// TestResetClearsPendingAndStop pins the kernel-state portion of Reset:
// queued events vanish (back to the pool), time and per-run stats
// rewind, stop state clears, and every signal reads undefined again.
func TestResetClearsPendingAndStop(t *testing.T) {
	for _, k := range resetKernels {
		t.Run(k.name, func(t *testing.T) {
			sim := k.mk()
			sig := sim.NewSignal("s", 8)
			sim.Set(sig, 5, 0)    // delta FIFO
			sim.Set(sig, 6, 3)    // near window / heap
			sim.Set(sig, 7, 9999) // overflow / heap
			sim.RequestStop("test")
			if sim.PendingEvents() != 3 {
				t.Fatalf("pending=%d", sim.PendingEvents())
			}
			sim.Reset()
			if sim.PendingEvents() != 0 {
				t.Fatalf("pending after reset=%d", sim.PendingEvents())
			}
			if stopped, _ := sim.Stopped(); stopped {
				t.Fatal("stop must clear on reset")
			}
			if sim.Now() != 0 {
				t.Fatalf("now=%v", sim.Now())
			}
			if sig.Valid() {
				t.Fatal("signals must be undefined after reset")
			}
			st := sim.Stats()
			if st.Events != 0 || st.Resets != 1 {
				t.Fatalf("stats=%+v", st)
			}
		})
	}
}

// TestResetDetachesPostMarkListeners pins the Mark/Reset contract: a
// listener and a finish callback attached after Mark are detached by
// Reset, while pre-Mark listeners keep firing.
func TestResetDetachesPostMarkListeners(t *testing.T) {
	sim := NewSimulator()
	sig := sim.NewSignal("s", 8)
	preFired, postFired, finished := 0, 0, 0
	sig.Listen(&ReactorFunc{Label: "pre", Fn: func(*Simulator) { preFired++ }})
	sim.Mark()
	sig.Listen(&ReactorFunc{Label: "post", Fn: func(*Simulator) { postFired++ }})
	extra := sim.NewSignal("extra", 1)
	sim.OnFinish(func() { finished++ })

	sim.Reset()
	if n := len(sim.Signals()); n != 1 {
		t.Fatalf("post-mark signal must be dropped, have %d signals", n)
	}
	_ = extra
	sim.Set(sig, 1, 1)
	if _, err := sim.Run(10); err != nil {
		t.Fatal(err)
	}
	if preFired != 1 || postFired != 0 {
		t.Fatalf("pre=%d post=%d, want 1/0", preFired, postFired)
	}
	if finished != 0 {
		t.Fatal("post-mark OnFinish must be dropped by reset")
	}
}

// TestResetSteadyStateAllocs mirrors TestKernelSteadyStateAllocs for the
// replay path: once the pools are warm, a reset-and-rerun round performs
// no allocations on either kernel.
func TestResetSteadyStateAllocs(t *testing.T) {
	for _, k := range resetKernels {
		t.Run(k.name, func(t *testing.T) {
			sim := k.mk()
			seed := buildResetTraffic(sim)
			seed()
			if _, err := sim.Run(20_000); err != nil {
				t.Fatal(err)
			}
			avg := testing.AllocsPerRun(20, func() {
				sim.Reset()
				seed()
				if _, err := sim.Run(2_000); err != nil {
					t.Fatal(err)
				}
			})
			if avg != 0 {
				t.Fatalf("reset-and-replay allocates %v objects per round, want 0", avg)
			}
		})
	}
}
