package hades

import "fmt"

// Violation records one assertion failure.
type Violation struct {
	At      Time
	Message string
}

// Assertion checks a predicate over signals whenever any watched signal
// changes — the "assertions" requirement from the paper's introduction.
// If StopOnFail is set, the first violation halts the run.
type Assertion struct {
	IDBase
	label      string
	pred       func() bool
	violations []Violation
	StopOnFail bool
	MaxRecord  int
}

// NewAssertion builds an assertion with the given label and predicate and
// arms it on the listed signals.
func NewAssertion(label string, pred func() bool, watch ...*Signal) *Assertion {
	a := &Assertion{label: label, pred: pred, MaxRecord: 1000}
	a.AssignID(NextID())
	for _, s := range watch {
		s.Listen(a)
	}
	return a
}

// Name returns the assertion label.
func (a *Assertion) Name() string { return "assert:" + a.label }

// React evaluates the predicate and records/stops on failure.
func (a *Assertion) React(sim *Simulator) {
	if a.pred() {
		return
	}
	if len(a.violations) < a.MaxRecord {
		a.violations = append(a.violations, Violation{
			At:      sim.Now(),
			Message: fmt.Sprintf("assertion %q failed at %s", a.label, sim.Now()),
		})
	}
	if a.StopOnFail {
		sim.RequestStop("assertion failed: " + a.label)
	}
}

// Violations returns recorded failures in time order.
func (a *Assertion) Violations() []Violation { return a.violations }

// Failed reports whether the assertion ever failed.
func (a *Assertion) Failed() bool { return len(a.violations) > 0 }

// Watchdog stops the simulation when a signal reaches a target value,
// typically a datapath's done flag, or complains if it never does.
type Watchdog struct {
	IDBase
	label  string
	sig    *Signal
	want   int64
	fired  bool
	firedT Time
}

// NewWatchdog arms a watchdog on sig == want.
func NewWatchdog(label string, sig *Signal, want int64) *Watchdog {
	w := &Watchdog{label: label, sig: sig, want: want}
	w.AssignID(NextID())
	sig.Listen(w)
	return w
}

// Name returns the watchdog label.
func (w *Watchdog) Name() string { return "watchdog:" + w.label }

// React stops the simulation when the condition is met. The comparison is
// width-masked so that e.g. want=1 matches a 1-bit signal holding 1.
func (w *Watchdog) React(sim *Simulator) {
	if !w.fired && w.sig.Valid() && w.sig.Uint() == Mask(uint64(w.want), w.sig.Width()) {
		w.fired = true
		w.firedT = sim.Now()
		sim.RequestStop(fmt.Sprintf("watchdog %s: %s == %d", w.label, w.sig.Name(), w.want))
	}
}

// Fired reports whether the condition was observed, and when.
func (w *Watchdog) Fired() (bool, Time) { return w.fired, w.firedT }

// Rearm clears the fired state and re-attaches the watchdog to its
// signal. Only call it after Simulator.Reset has detached the listeners
// added since the elaboration Mark; rearming a still-attached watchdog
// would double-register it.
func (w *Watchdog) Rearm() {
	w.fired = false
	w.firedT = 0
	w.sig.Listen(w)
}
