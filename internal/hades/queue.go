package hades

import "math/bits"

// kernelQueue is the scheduling core behind a Simulator: it owns every
// pending future event (the same-instant delta FIFO lives in the
// Simulator itself). Two implementations exist — the two-level queue
// below (the default) and the promoted seed heap kernel in heapqueue.go
// — selectable per simulator so the flow layer can expose them as
// backends and the suite can run identically under both.
//
// The contract mirrors the Run loop's needs: peekTime finds the
// earliest queued instant without committing window movement (the
// caller may abandon it on a limit or interrupt), commitTime finalises
// a peeked instant, and popInstant hands back the whole (time) batch as
// a seq-ordered chain. alloc/release pool event structs so the steady
// state schedules without allocating; reset returns every pending event
// to that pool and rewinds the structure to time zero, so a replayed
// run reuses the warmed pool instead of reallocating it.
type kernelQueue interface {
	alloc() *event
	release(*event)
	len() int
	schedule(*event)
	peekTime(limit Time) (t Time, deferred bool, ok bool)
	commitTime(t Time, deferred bool)
	popInstant(t Time) *event
	reset()
}

// eventPool is the intrusive free list shared by the queue
// implementations; the event's chain pointer doubles as the pool link.
type eventPool struct {
	free *event
}

// alloc takes an event from the pool, or allocates one.
func (p *eventPool) alloc() *event {
	if e := p.free; e != nil {
		p.free = e.next
		e.next = nil
		return e
	}
	return &event{}
}

// release returns a processed event to the pool. The signal pointer is
// dropped so the pool never outlives a signal's reachability.
func (p *eventPool) release(e *event) {
	e.sig = nil
	e.next = p.free
	p.free = e
}

// Two-level event queue. The kernel spends almost all of its cycle
// budget scheduling and popping events, so the structure is tuned for
// the traffic an HDL simulation actually produces: the overwhelming
// majority of events land within a few clock periods of the current
// instant, and all events of one (time, delta) batch are popped
// together.
//
// Level 1 is a ring of laneCount time-bucketed lanes covering the
// window [base, base+laneCount): one singly-linked FIFO chain per
// distinct simulated instant. Scheduling into the window and popping a
// whole instant are O(1) with no comparisons and no heap fixups.
//
// Level 2 is an overflow binary min-heap keyed by (time, seq) that
// absorbs events beyond the window. It is touched only when an event is
// scheduled far ahead, and drained back into the lanes when the window
// is rebased onto the next far instant — so heap cost is paid per
// *far event*, not per event.
//
// Event structs are pooled on an intrusive free list: the same chain
// pointer links a pooled event, a lane chain, and is reused by the
// next-delta FIFO in the simulator. Steady-state scheduling performs no
// allocations (locked in by TestKernelSteadyStateAllocs).
//
// Ordering invariant: within one instant, events are delivered in seq
// (insertion) order. Lane chains append in seq order because seq is
// monotonic; the overflow heap orders by (time, seq); and a rebase only
// happens when the lanes are empty, so migrated events (lower seq) are
// always appended before any event scheduled after the rebase.

// laneCount is the window width in simulated ticks (power of two).
// 1024 covers ~100 periods of the default 10-tick clock.
const (
	laneCount = 1024
	laneMask  = laneCount - 1
	laneWords = laneCount / 64 // occupancy bitmap words
)

// event is a pending signal update. Events live in exactly one place at
// a time — a lane chain, the overflow heap, the simulator's next-delta
// FIFO, or the free list — and next links the chain in all but the heap.
type event struct {
	at   Time
	seq  uint64
	sig  *Signal
	val  uint64
	next *event
}

type twoLevelQueue struct {
	eventPool

	laneHead [laneCount]*event
	laneTail [laneCount]*event
	laneBits [laneWords]uint64 // occupancy bitmap over the lane ring
	laneLive int               // events currently in the lanes
	base     Time              // window start (inclusive); window is [base, base+laneCount)
	scan     Time              // no lane event is earlier than this

	overflow []*event // min-heap keyed (at, seq)
}

// len reports the number of queued events (lanes + overflow).
func (q *twoLevelQueue) len() int { return q.laneLive + len(q.overflow) }

// reset releases every queued event back to the pool and rewinds the
// window onto time zero. The pool itself and the overflow heap's
// backing array are kept, so a replayed run schedules allocation-free
// from the first event.
func (q *twoLevelQueue) reset() {
	for idx := range q.laneHead {
		for e := q.laneHead[idx]; e != nil; {
			next := e.next
			q.release(e)
			e = next
		}
		q.laneHead[idx], q.laneTail[idx] = nil, nil
	}
	for i := range q.laneBits {
		q.laneBits[i] = 0
	}
	q.laneLive = 0
	q.base, q.scan = 0, 0
	for i, e := range q.overflow {
		q.release(e)
		q.overflow[i] = nil
	}
	q.overflow = q.overflow[:0]
}

// windowEnd returns base+laneCount saturated at TimeMax.
func (q *twoLevelQueue) windowEnd() Time {
	end := q.base + laneCount
	if end < q.base {
		return TimeMax
	}
	return end
}

// schedule files a future event (e.at is strictly after the current
// instant, which guarantees it is at or after scan).
func (q *twoLevelQueue) schedule(e *event) {
	if e.at < q.windowEnd() {
		q.pushLane(e)
		return
	}
	q.pushOverflow(e)
}

func (q *twoLevelQueue) pushLane(e *event) {
	// A limit-bounded run may have advanced scan onto an instant beyond
	// its limit without processing it; an event scheduled afterwards can
	// legally land earlier, so pull scan back to keep its invariant.
	if e.at < q.scan {
		q.scan = e.at
	}
	idx := int(e.at) & laneMask
	if tail := q.laneTail[idx]; tail != nil {
		tail.next = e
	} else {
		q.laneHead[idx] = e
		q.laneBits[idx>>6] |= 1 << uint(idx&63)
	}
	q.laneTail[idx] = e
	q.laneLive++
}

// peekTime finds the earliest queued instant without committing any
// window movement. It returns ok=false when the queue is drained or the
// next instant is beyond limit; fromOverflow reports that the instant
// still lives in the overflow heap, and the caller must commitTime
// before popping it. Deferring the rebase until the caller is certain
// to process the instant (past its limit check and interrupt poll)
// keeps the window invariant `base <= now` at every point where user
// code can schedule: an event scheduled after an abandoned peek can
// never land behind the window and alias a lane.
func (q *twoLevelQueue) peekTime(limit Time) (t Time, fromOverflow, ok bool) {
	if q.laneLive == 0 {
		if len(q.overflow) == 0 {
			return 0, false, false
		}
		t = q.overflow[0].at
		if t > limit {
			return 0, false, false
		}
		return t, true, true
	}
	t = q.nextLaneTime()
	q.scan = t // safe even when t > limit: pushLane pulls scan back
	if t > limit {
		return 0, false, false
	}
	return t, false, true
}

// commitTime finalises a peeked instant: a far instant rebases the
// window onto it and migrates its in-window overflow companions.
func (q *twoLevelQueue) commitTime(t Time, fromOverflow bool) {
	if fromOverflow {
		q.rebase(t)
	}
}

// nextLaneTime returns the earliest populated instant at or after scan.
// It walks the occupancy bitmap ring, so the cost is a handful of word
// tests regardless of how sparse the window is. Requires laneLive > 0.
//
// Every set bit names a real event time in [scan, windowEnd): lane
// events are confined to the window and none precede scan, so a bit at
// ring distance d from scan is the instant scan+d with no ambiguity.
func (q *twoLevelQueue) nextLaneTime() Time {
	pos := int(q.scan) & laneMask
	wi := pos >> 6
	bit := pos & 63
	if w := q.laneBits[wi] >> uint(bit); w != 0 {
		return q.scan + Time(bits.TrailingZeros64(w))
	}
	dist := Time(64 - bit)
	for i := 1; i <= laneWords; i++ {
		if w := q.laneBits[(wi+i)&(laneWords-1)]; w != 0 {
			return q.scan + dist + Time(bits.TrailingZeros64(w))
		}
		dist += 64
	}
	// Unreachable while laneLive > 0: every lane event is in the window.
	panic("hades: event queue lane accounting corrupted")
}

// popInstant removes and returns the whole chain of events at instant t
// (which must come from nextTime), in seq order.
func (q *twoLevelQueue) popInstant(t Time) *event {
	idx := int(t) & laneMask
	head := q.laneHead[idx]
	q.laneHead[idx], q.laneTail[idx] = nil, nil
	q.laneBits[idx>>6] &^= 1 << uint(idx&63)
	for e := head; e != nil; e = e.next {
		q.laneLive--
	}
	q.scan = t + 1
	return head
}

// rebase moves the window to start at t (the next populated instant,
// with the lanes empty) and migrates every overflow event inside the
// new window into the lanes. Migration pops in (at, seq) order, so lane
// chains stay seq-ordered.
func (q *twoLevelQueue) rebase(t Time) {
	q.base, q.scan = t, t
	end := q.windowEnd()
	for len(q.overflow) > 0 && q.overflow[0].at < end {
		q.pushLane(q.popOverflow())
	}
}

func (q *twoLevelQueue) pushOverflow(e *event) {
	h := append(q.overflow, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !heapLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	q.overflow = h
}

func (q *twoLevelQueue) popOverflow() *event {
	h := q.overflow
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	h = h[:n]
	i := 0
	for {
		kid := 2*i + 1
		if kid >= n {
			break
		}
		if kid+1 < n && heapLess(h[kid+1], h[kid]) {
			kid++
		}
		if !heapLess(h[kid], h[i]) {
			break
		}
		h[i], h[kid] = h[kid], h[i]
		i = kid
	}
	q.overflow = h
	top.next = nil
	return top
}
