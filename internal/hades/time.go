// Package hades implements a discrete-event simulation kernel modelled
// after Hades, the Java event-based simulator the paper uses as its
// simulation engine (Hendrich, EWME'00). The kernel provides signals,
// delta cycles, clocked and combinational reactors, probes with VCD dump,
// assertions and stop control — the features the paper lists as the reason
// to test by functional simulation rather than on the FPGA (access to
// values on connections, assertions, probes and stop mechanisms).
package hades

import "fmt"

// Time is a simulation timestamp in ticks. The infrastructure nominally
// interprets one tick as one nanosecond, but nothing in the kernel depends
// on the unit; clocks define periods in ticks.
type Time int64

// TimeMax is the largest representable simulation time.
const TimeMax = Time(1<<63 - 1)

// String renders the time in engineering notation (ns base unit).
func (t Time) String() string {
	switch {
	case t < 0:
		return fmt.Sprintf("%dticks", int64(t))
	case t >= 1_000_000_000:
		return fmt.Sprintf("%gs", float64(t)/1e9)
	case t >= 1_000_000:
		return fmt.Sprintf("%gms", float64(t)/1e6)
	case t >= 1_000:
		return fmt.Sprintf("%gus", float64(t)/1e3)
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}
