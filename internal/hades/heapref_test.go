package hades

import (
	"container/heap"
	"sort"
)

// This file keeps the seed's binary-heap kernel alive as a test-only
// reference model. The two-level-queue kernel must order events exactly
// like the heap did — (time, delta, insertion) — so the property tests
// replay identical schedules on both and compare the full reaction
// traces, and the benchmarks report the speedup of the redesign against
// the original on the same pinned scenarios.
//
// The reference has its own tiny signal/reactor types so that it stays
// byte-for-byte faithful to the seed's scheduling loop (container/heap
// with per-push boxing, per-event pops, sort.Slice per delta) without
// entangling the production Simulator API.

type refEvent struct {
	at    Time
	delta int
	seq   uint64
	sig   *refSignal
	val   uint64
}

type refHeap []refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].delta != h[j].delta {
		return h[i].delta < h[j].delta
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(refEvent)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

type refSignal struct {
	width     int
	val       uint64
	valid     bool
	listeners []*refReactor
}

func (s *refSignal) Uint() uint64 { return s.val }

type refReactor struct {
	id int
	fn func()
}

type heapSim struct {
	now     Time
	delta   int
	seq     uint64
	queue   refHeap
	stopped bool

	maxDeltas int
	events    uint64
	deltas    uint64
	instants  uint64

	pending map[*refReactor]bool
	order   []*refReactor
}

func newHeapSim() *heapSim {
	return &heapSim{maxDeltas: 10000, pending: map[*refReactor]bool{}}
}

func (s *heapSim) newSignal(width int) *refSignal { return &refSignal{width: width} }

func (s *heapSim) set(sig *refSignal, val uint64, delay Time) {
	s.seq++
	e := refEvent{at: s.now + delay, seq: s.seq, sig: sig, val: Mask(val, sig.width)}
	if delay == 0 {
		e.delta = s.delta + 1
	}
	heap.Push(&s.queue, e)
}

// run is the seed Simulator.Run loop, verbatim modulo renamed types.
func (s *heapSim) run(limit Time) (Time, error) {
	for len(s.queue) > 0 && !s.stopped {
		at, delta := s.queue[0].at, s.queue[0].delta
		if at > limit {
			return s.now, nil
		}
		if at != s.now {
			s.instants++
			s.delta = 0
		} else if delta > s.maxDeltas {
			return s.now, ErrMaxDeltas
		}
		s.now, s.delta = at, delta
		s.deltas++

		for k := range s.pending {
			delete(s.pending, k)
		}
		s.order = s.order[:0]
		for len(s.queue) > 0 && s.queue[0].at == at && s.queue[0].delta == delta {
			e := heap.Pop(&s.queue).(refEvent)
			s.events++
			changed := !e.sig.valid || e.sig.val != e.val
			e.sig.val = e.val
			e.sig.valid = true
			if changed {
				for _, r := range e.sig.listeners {
					if !s.pending[r] {
						s.pending[r] = true
						s.order = append(s.order, r)
					}
				}
			}
		}

		sort.Slice(s.order, func(i, j int) bool { return s.order[i].id < s.order[j].id })
		for _, r := range s.order {
			delete(s.pending, r)
			r.fn()
			if s.stopped {
				break
			}
		}
	}
	return s.now, nil
}
