package hades

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Reactor is anything that reacts to signal changes: operators,
// finite-state machines, probes, assertions. React is invoked once per
// delta cycle in which at least one watched signal changed, after all
// signal updates of that delta have been applied.
type Reactor interface {
	Name() string
	React(sim *Simulator)
}

// ReactorFunc adapts a function to the Reactor interface.
type ReactorFunc struct {
	Label string
	Fn    func(sim *Simulator)
}

// Name returns the reactor label.
func (r *ReactorFunc) Name() string { return r.Label }

// React invokes the wrapped function.
func (r *ReactorFunc) React(sim *Simulator) { r.Fn(sim) }

// Stats accumulates kernel counters; the paper's evaluation reports
// simulation wall times, which the benchmarks derive while these counters
// support the ablation experiments.
//
// Events through Instants are per-run counters: Reset rewinds them to
// zero along with simulated time. Elaborations and Resets are lifetime
// counters that survive Reset — together they record how often this
// simulator's fabric was rebuilt versus reset-and-replayed, the
// reconfiguration cost the replay cache amortizes.
type Stats struct {
	Events    uint64 // signal-update events applied
	Deltas    uint64 // delta cycles executed
	Reactions uint64 // reactor invocations
	Instants  uint64 // distinct simulated time points

	Elaborations uint64 // netlist elaborations built on this simulator
	Resets       uint64 // reset-and-replay rounds served
}

// ErrMaxDeltas is returned when a single instant exceeds the delta-cycle
// bound, which indicates combinational feedback in the design under test.
var ErrMaxDeltas = errors.New("hades: delta cycle limit exceeded (combinational loop?)")

// ErrInterrupted is returned by Run when the Interrupt hook asks the
// kernel to stop (per-case timeouts and suite cancellation).
var ErrInterrupted = errors.New("hades: run interrupted")

// Simulator is the event-driven kernel. Create with NewSimulator, build
// signals and reactors, then Run.
//
// Events are held in a two-level queue (see queue.go): future instants
// in time-bucketed lanes backed by an overflow heap, and the zero-delay
// events of the current instant in a plain FIFO, because a delta cycle
// at (T, d) can only ever schedule into (T, d+1). The whole batch of an
// instant or delta is popped in one step with no per-event ordering
// work.
type Simulator struct {
	now    Time
	delta  int
	seq    uint64
	q      kernelQueue
	kernel string // kernelQueue implementation name (KernelTwoLevel, ...)

	// nextDelta chains the zero-delay events of the current instant in
	// insertion order; they run as one batch at delta s.delta+1.
	nextDeltaHead *event
	nextDeltaTail *event
	nextDeltaLen  int

	signals  []*Signal
	stats    Stats
	stopped  bool
	stopWhy  string
	finalize []func()

	// MaxDeltas bounds delta cycles per instant (default 10000).
	MaxDeltas int

	// Interrupt, when set, is polled once per simulated instant — on the
	// time-advance path, never per event — and when it returns true, Run
	// stops immediately and returns ErrInterrupted. Suite runners use it
	// to enforce per-case timeouts and cancellation without abandoning
	// the goroutine that owns the kernel.
	Interrupt func() bool

	pending map[Reactor]bool // reactors to run this delta
	order   []Reactor
	ids     map[Reactor]int // ordering ids for reactors without their own
	nextID  int

	mark simMark // structural baseline Reset rewinds to (see Mark)
}

// simMark is the structural snapshot taken by Mark: how many signals
// exist, how many listeners each carries, and how many finish callbacks
// are registered. Reset truncates back to these counts, detaching
// everything attached after the mark (clocks, watchdogs, probes, VCD
// taps) while keeping the wired component graph itself.
type simMark struct {
	valid     bool
	signals   int
	listeners []int // per signal, parallel to Simulator.signals
	finalize  int
}

// Kernel names for the queue implementations behind a Simulator. The
// flow package registers one simulator backend per kernel.
const (
	KernelTwoLevel = "twolevel" // two-level time-bucketed queue (queue.go)
	KernelHeapRef  = "heapref"  // seed binary-heap kernel (heapqueue.go)
)

// NewSimulator returns an empty simulator on the default two-level
// queue kernel.
func NewSimulator() *Simulator {
	return newSimulator(&twoLevelQueue{}, KernelTwoLevel)
}

// NewHeapRefSimulator returns an empty simulator on the promoted seed
// heap kernel — the reference scheduling discipline the two-level queue
// is property-tested against, available as a real backend so suites can
// cross-check full runs under both kernels.
func NewHeapRefSimulator() *Simulator {
	return newSimulator(&heapQueue{}, KernelHeapRef)
}

func newSimulator(q kernelQueue, kernel string) *Simulator {
	return &Simulator{
		q:         q,
		kernel:    kernel,
		MaxDeltas: 10000,
		pending:   make(map[Reactor]bool),
		ids:       make(map[Reactor]int),
	}
}

// Kernel reports which queue implementation drives this simulator.
func (s *Simulator) Kernel() string { return s.kernel }

// NewSignal creates and registers a signal of the given width (1..64).
func (s *Simulator) NewSignal(name string, width int) *Signal {
	if width <= 0 || width > 64 {
		panic(fmt.Sprintf("hades: signal %q has invalid width %d", name, width))
	}
	sig := &Signal{name: name, width: width, mask: Mask(^uint64(0), width), id: len(s.signals)}
	s.signals = append(s.signals, sig)
	return sig
}

// Signals returns all registered signals in creation order.
func (s *Simulator) Signals() []*Signal { return s.signals }

// Now returns the current simulation time.
func (s *Simulator) Now() Time { return s.now }

// Stats returns a copy of the kernel counters.
func (s *Simulator) Stats() Stats { return s.stats }

// NoteElaboration counts one netlist elaboration built on this
// simulator (a lifetime counter; see Stats).
func (s *Simulator) NoteElaboration() { s.stats.Elaborations++ }

// Mark snapshots the simulator's structure — registered signals, their
// listener counts, and finish callbacks — as the baseline Reset rewinds
// to. The elaboration layer calls it once the component graph is wired,
// so anything attached afterwards (clocks, watchdogs, probes, VCD taps)
// is detached again by Reset while the graph itself survives. A later
// Mark replaces the earlier one.
func (s *Simulator) Mark() {
	s.mark.valid = true
	s.mark.signals = len(s.signals)
	s.mark.listeners = s.mark.listeners[:0]
	for _, sig := range s.signals {
		s.mark.listeners = append(s.mark.listeners, len(sig.listeners))
	}
	s.mark.finalize = len(s.finalize)
}

// Reset rewinds the simulator so the same wired design can be run again
// without rebuilding: every pending event (both queue levels and the
// delta FIFO) returns to the free list, simulated time, the event
// sequence counter and the per-run Stats counters rewind to zero, any
// requested stop is cleared, and every signal becomes undefined again
// (the power-on X state). When a Mark was taken, signals created and
// listeners/finish callbacks attached after it are removed.
//
// Reset touches only kernel state. Re-establishing the design's
// power-on drives (constants, register reset values, FSM outputs) is
// the elaboration layer's job — see netlist.Elaboration.Reset, which
// wraps this and replays the elaboration-time initialisation.
func (s *Simulator) Reset() {
	for e := s.nextDeltaHead; e != nil; {
		next := e.next
		s.q.release(e)
		e = next
	}
	s.nextDeltaHead, s.nextDeltaTail, s.nextDeltaLen = nil, nil, 0
	s.q.reset()
	s.now, s.delta, s.seq = 0, 0, 0
	s.stopped, s.stopWhy = false, ""
	for k := range s.pending {
		delete(s.pending, k)
	}
	s.order = s.order[:0]
	if s.mark.valid {
		for _, sig := range s.signals[s.mark.signals:] {
			sig.listeners = nil
		}
		s.signals = s.signals[:s.mark.signals]
		for i, sig := range s.signals {
			sig.listeners = sig.listeners[:s.mark.listeners[i]]
		}
		s.finalize = s.finalize[:s.mark.finalize]
	}
	for _, sig := range s.signals {
		sig.val, sig.valid, sig.lastChange = 0, false, 0
	}
	s.stats = Stats{Elaborations: s.stats.Elaborations, Resets: s.stats.Resets + 1}
}

// PendingEvents reports the number of scheduled-but-unapplied events.
func (s *Simulator) PendingEvents() int { return s.q.len() + s.nextDeltaLen }

// Set schedules sig to take value val after delay ticks. A zero delay
// schedules for the next delta cycle of the current instant, preserving
// the evaluate/update separation of an HDL simulator.
func (s *Simulator) Set(sig *Signal, val int64, delay Time) {
	s.set(sig, uint64(val), delay)
}

// SetUint is Set for raw unsigned values.
func (s *Simulator) SetUint(sig *Signal, val uint64, delay Time) {
	s.set(sig, val, delay)
}

func (s *Simulator) set(sig *Signal, val uint64, delay Time) {
	if delay < 0 {
		panic("hades: negative delay")
	}
	s.seq++
	e := s.q.alloc()
	e.at = s.now + delay
	e.seq = s.seq
	e.sig = sig
	e.val = Mask(val, sig.width)
	if delay == 0 {
		// Same instant, next delta: a plain FIFO, because every event
		// appended here belongs to delta s.delta+1 and seq is monotonic.
		if s.nextDeltaTail != nil {
			s.nextDeltaTail.next = e
		} else {
			s.nextDeltaHead = e
		}
		s.nextDeltaTail = e
		s.nextDeltaLen++
		return
	}
	s.q.schedule(e)
}

// Drive immediately forces a signal value without an event; intended for
// initialisation before Run (e.g. loading reset states).
func (s *Simulator) Drive(sig *Signal, val int64) {
	sig.val = Mask(uint64(val), sig.width)
	sig.valid = true
}

// RequestStop asks the run loop to stop after the current delta; the
// paper lists explicit stop mechanisms among the requirements testing by
// implementation cannot offer.
func (s *Simulator) RequestStop(why string) {
	s.stopped = true
	s.stopWhy = why
}

// Stopped reports whether a stop was requested and why.
func (s *Simulator) Stopped() (bool, string) { return s.stopped, s.stopWhy }

// OnFinish registers a callback invoked when Run returns (e.g. VCD flush).
func (s *Simulator) OnFinish(fn func()) { s.finalize = append(s.finalize, fn) }

// Run processes events until the queue drains, until time exceeds limit,
// or until a stop is requested. It returns the time of the last processed
// instant.
//
// The stop flag is re-checked at the top of every batch, before any
// queue state is read: a reactor that calls RequestStop mid delta cycle
// ends the run with the remaining same-instant events still queued and
// no further reactors invoked.
func (s *Simulator) Run(limit Time) (Time, error) {
	defer func() {
		for _, fn := range s.finalize {
			fn()
		}
	}()
	for !s.stopped {
		// Current instant first: drain the delta chain before time moves.
		if s.nextDeltaHead != nil {
			if s.now > limit {
				return s.now, nil
			}
			d := s.delta + 1
			if d > s.MaxDeltas {
				return s.now, fmt.Errorf("%w at t=%s", ErrMaxDeltas, s.now)
			}
			head := s.nextDeltaHead
			s.nextDeltaHead, s.nextDeltaTail, s.nextDeltaLen = nil, nil, 0
			s.delta = d
			s.runBatch(head)
			continue
		}
		at, fromOverflow, ok := s.q.peekTime(limit)
		if !ok {
			return s.now, nil // drained, or next instant beyond limit
		}
		// Per-instant path: poll cancellation once per time advance,
		// before the queue commits any window movement to the instant.
		if s.Interrupt != nil && s.Interrupt() {
			return s.now, ErrInterrupted
		}
		s.q.commitTime(at, fromOverflow)
		s.stats.Instants++
		s.now, s.delta = at, 0
		s.runBatch(s.q.popInstant(at))
	}
	return s.now, nil
}

// runBatch applies one (time, delta) batch of signal updates and then
// evaluates the affected reactors deterministically.
func (s *Simulator) runBatch(head *event) {
	s.stats.Deltas++

	// Phase 1: apply all signal updates of this (time, delta).
	for k := range s.pending {
		delete(s.pending, k) // leftovers only after a mid-batch stop
	}
	s.order = s.order[:0]
	for e := head; e != nil; {
		s.stats.Events++
		sig := e.sig
		changed := !sig.valid || sig.val != e.val
		sig.val = e.val
		sig.valid = true
		if changed {
			sig.lastChange = s.now
			for _, r := range sig.listeners {
				s.schedule(r)
			}
		}
		next := e.next
		s.q.release(e)
		e = next
	}

	// Phase 2: evaluate affected reactors deterministically.
	s.sortOrder()
	for _, r := range s.order {
		delete(s.pending, r)
		s.stats.Reactions++
		r.React(s)
		if s.stopped {
			break
		}
	}
}

func (s *Simulator) schedule(r Reactor) {
	if !s.pending[r] {
		s.pending[r] = true
		s.order = append(s.order, r)
	}
}

// sortOrder sorts the pending reactors by id. Batches are small and
// listeners mostly fire in creation order already, so an insertion sort
// beats sort.Slice here and — unlike sort.Slice — does not allocate,
// keeping the steady-state event path allocation-free.
func (s *Simulator) sortOrder() {
	for i := 1; i < len(s.order); i++ {
		r := s.order[i]
		id := s.reactorID(r)
		j := i - 1
		for j >= 0 && s.reactorID(s.order[j]) > id {
			s.order[j+1] = s.order[j]
			j--
		}
		s.order[j+1] = r
	}
}

// identified is implemented by reactors that carry a stable ordering id.
type identified interface{ ReactorID() int }

func (s *Simulator) reactorID(r Reactor) int {
	if id, ok := r.(identified); ok {
		return id.ReactorID()
	}
	id, ok := s.ids[r]
	if !ok {
		s.nextID++
		id = 1<<30 + s.nextID
		s.ids[r] = id
	}
	return id
}

// IDBase hands out stable reactor ids; embed in components.
type IDBase struct{ id int }

// AssignID gives the component its ordering id (done by NewComponent).
func (b *IDBase) AssignID(id int) { b.id = id }

// ReactorID returns the stable ordering id.
func (b *IDBase) ReactorID() int { return b.id }

var globalID atomic.Int64

// NextID returns a fresh monotonically increasing reactor id. It is safe
// for concurrent use: independent simulators are routinely built in
// parallel by the suite runner, and ids only order reactors within one
// simulator, so cross-simulator gaps are harmless.
func NextID() int {
	return int(globalID.Add(1))
}
