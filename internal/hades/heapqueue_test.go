package hades

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// kernelConstructors enumerates the queue implementations a Simulator
// can run on, for tests that must hold under every kernel.
func kernelConstructors() map[string]func() *Simulator {
	return map[string]func() *Simulator{
		KernelTwoLevel: NewSimulator,
		KernelHeapRef:  NewHeapRefSimulator,
	}
}

func TestKernelNames(t *testing.T) {
	for want, mk := range kernelConstructors() {
		if got := mk().Kernel(); got != want {
			t.Errorf("Kernel() = %q, want %q", got, want)
		}
	}
}

// runMirroredSims replays one randomized schedule on two production
// Simulators built on different kernels and requires identical reaction
// traces, final signal values and event counts — the same property the
// two-level queue is held to against the seed reference model, now
// between the two selectable backends.
func runMirroredSims(t *testing.T, seed int64, newA, newB func() *Simulator, nsig, nevents, maxVal, maxDelay int) {
	t.Helper()
	simA, simB := newA(), newB()
	build := func(sim *Simulator) (sigs []*Signal, trace *[]traceEntry) {
		sigs = make([]*Signal, nsig)
		trace = &[]traceEntry{}
		for i := 0; i < nsig; i++ {
			sigs[i] = sim.NewSignal(fmt.Sprintf("s%d", i), 32)
		}
		for i := 0; i < nsig; i++ {
			i := i
			mr := &mirrorReactor{fn: func() {
				v := sigs[i].Uint()
				*trace = append(*trace, traceEntry{sim.Now(), i, v})
				if tgt, val, d, ok := follow(i, v, nsig); ok {
					sim.SetUint(sigs[tgt], val, d)
				}
			}}
			mr.AssignID(i + 1)
			sigs[i].Listen(mr)
		}
		return sigs, trace
	}
	sigsA, traceA := build(simA)
	sigsB, traceB := build(simB)

	rng := rand.New(rand.NewSource(seed))
	for k := 0; k < nevents; k++ {
		i := rng.Intn(nsig)
		v := uint64(rng.Intn(maxVal))
		d := Time(rng.Intn(maxDelay))
		simA.SetUint(sigsA[i], v, d)
		simB.SetUint(sigsB[i], v, d)
	}

	if _, err := simA.Run(TimeMax); err != nil {
		t.Fatalf("seed %d: %s: %v", seed, simA.Kernel(), err)
	}
	if _, err := simB.Run(TimeMax); err != nil {
		t.Fatalf("seed %d: %s: %v", seed, simB.Kernel(), err)
	}
	if len(*traceA) != len(*traceB) {
		t.Fatalf("seed %d: trace length %d != %d", seed, len(*traceA), len(*traceB))
	}
	for k := range *traceA {
		if (*traceA)[k] != (*traceB)[k] {
			t.Fatalf("seed %d: trace[%d] = %+v (%s), %+v (%s)",
				seed, k, (*traceA)[k], simA.Kernel(), (*traceB)[k], simB.Kernel())
		}
	}
	if simA.Stats().Events != simB.Stats().Events {
		t.Fatalf("seed %d: events %d != %d", seed, simA.Stats().Events, simB.Stats().Events)
	}
	for i := range sigsA {
		if sigsA[i].Uint() != sigsB[i].Uint() || sigsA[i].Valid() != sigsB[i].Valid() {
			t.Fatalf("seed %d: signal %d diverged: %d/%v vs %d/%v", seed, i,
				sigsA[i].Uint(), sigsA[i].Valid(), sigsB[i].Uint(), sigsB[i].Valid())
		}
	}
}

func TestHeapKernelMatchesTwoLevelProperty(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		runMirroredSims(t, seed, NewSimulator, NewHeapRefSimulator, 8, 40, 1000, 3000)
	}
}

func TestHeapKernelMatchesTwoLevelDuplicateTimes(t *testing.T) {
	for seed := int64(100); seed < 130; seed++ {
		runMirroredSims(t, seed, NewSimulator, NewHeapRefSimulator, 4, 60, 5, 2600)
	}
}

// TestHeapKernelMatchesSeedReference closes the triangle: the promoted
// heap queue replays the seed scheduling loop itself (heapref_test.go)
// event for event.
func TestHeapKernelMatchesSeedReference(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		runMirrored(t, seed, NewHeapRefSimulator, 8, 40, 1000, 3000)
	}
}

// TestHeapKernelInterruptPerInstant pins the Run-loop contract that is
// independent of the queue choice: the interrupt hook is polled once
// per simulated instant under the heap kernel too, and an interrupted
// run leaves the remaining events queued.
func TestHeapKernelInterruptPerInstant(t *testing.T) {
	sim := NewHeapRefSimulator()
	a := sim.NewSignal("a", 32)
	for i := 1; i <= 5; i++ {
		sim.SetUint(a, uint64(i), Time(i*10))
	}
	polls := 0
	sim.Interrupt = func() bool { polls++; return polls > 2 }
	end, err := sim.Run(TimeMax)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err=%v want ErrInterrupted", err)
	}
	if end != 20 || a.Uint() != 2 {
		t.Fatalf("end=%v a=%d; want interruption after the 2nd instant", end, a.Uint())
	}
	if sim.PendingEvents() != 3 {
		t.Fatalf("pending=%d, want 3 future events left queued", sim.PendingEvents())
	}
}

// TestHeapKernelPoolsEvents: the promoted kernel keeps the free-list
// win — steady-state traffic reuses pooled event structs instead of
// re-boxing per push as the seed's container/heap loop did.
func TestHeapKernelPoolsEvents(t *testing.T) {
	sim := NewHeapRefSimulator()
	for k := 0; k < 8; k++ {
		sig := sim.NewSignal(fmt.Sprintf("ring%d", k), 32)
		p := Time(k%5 + 3)
		sig.Listen(&ReactorFunc{Label: "ring", Fn: func(s *Simulator) {
			s.SetUint(sig, sig.Uint()+1, p)
		}})
		sim.SetUint(sig, 1, Time(k+1))
	}
	if _, err := sim.Run(20000); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(50, func() {
		if _, err := sim.Run(sim.Now() + 500); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state heap kernel allocates %v objects per 500-tick window, want 0", avg)
	}
}
