package hades

// heapQueue is the seed kernel's scheduling core promoted to a real,
// selectable queue implementation: one binary min-heap keyed by
// (time, seq), a sift per push and a sift per pop. It preserves the
// seed's ordering discipline exactly — (time, insertion) — which the
// two-level queue is property-tested against (queue_test.go), so a full
// suite run under this kernel is a live cross-check of the fast path.
// Its cost profile is the seed's too: O(log n) comparisons per event
// with per-event pop fixups, which is what the benchmark contrast
// (BenchmarkKernelTwoLevel vs BenchmarkKernelHeapRef) quantifies.
//
// Unlike the seed it pools event structs (the boxing the seed paid per
// push was an artifact of container/heap, not of the algorithm), so the
// comparison isolates the data-structure choice.
type heapQueue struct {
	eventPool

	h []*event // min-heap keyed (at, seq)
}

func (q *heapQueue) len() int { return len(q.h) }

// reset releases every queued event back to the pool, keeping the heap's
// backing array for the next run.
func (q *heapQueue) reset() {
	for i, e := range q.h {
		q.release(e)
		q.h[i] = nil
	}
	q.h = q.h[:0]
}

func (q *heapQueue) schedule(e *event) {
	h := append(q.h, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !heapLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	q.h = h
}

// peekTime reports the root's instant. There is no window to move, so
// deferred is always false and commitTime is a no-op: abandoning a peek
// (limit reached, interrupt) leaves the heap untouched by construction.
func (q *heapQueue) peekTime(limit Time) (t Time, deferred, ok bool) {
	if len(q.h) == 0 {
		return 0, false, false
	}
	t = q.h[0].at
	if t > limit {
		return 0, false, false
	}
	return t, false, true
}

func (q *heapQueue) commitTime(Time, bool) {}

// popInstant pops every event at instant t — each with its own
// sift-down, the per-event fixup cost the two-level queue eliminates —
// and chains them in (time, seq) pop order, which within one instant is
// seq order.
func (q *heapQueue) popInstant(t Time) *event {
	var head, tail *event
	for len(q.h) > 0 && q.h[0].at == t {
		e := q.pop()
		if tail != nil {
			tail.next = e
		} else {
			head = e
		}
		tail = e
	}
	return head
}

func (q *heapQueue) pop() *event {
	h := q.h
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	h = h[:n]
	i := 0
	for {
		kid := 2*i + 1
		if kid >= n {
			break
		}
		if kid+1 < n && heapLess(h[kid+1], h[kid]) {
			kid++
		}
		if !heapLess(h[kid], h[i]) {
			break
		}
		h[i], h[kid] = h[kid], h[i]
		i = kid
	}
	q.h = h
	top.next = nil
	return top
}

func heapLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}
