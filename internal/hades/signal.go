package hades

import "fmt"

// Signal is a named wire carrying a word value of a fixed bit width.
// Signals begin undefined (the X state of an HDL simulator) and become
// defined on their first update. Values are stored masked to the signal
// width; readers that need a signed interpretation use Signed.
type Signal struct {
	name  string
	width int
	mask  uint64

	val   uint64
	valid bool

	id        int
	listeners []Reactor

	// lastChange is used by probes/VCD for change detection bookkeeping.
	lastChange Time
}

// Name returns the signal's hierarchical name.
func (s *Signal) Name() string { return s.name }

// Width returns the signal's bit width (1..64).
func (s *Signal) Width() int { return s.width }

// Valid reports whether the signal has been driven at least once.
func (s *Signal) Valid() bool { return s.valid }

// Uint returns the current value zero-extended. Undefined signals read 0.
func (s *Signal) Uint() uint64 { return s.val }

// Int returns the current value sign-extended from the signal width.
func (s *Signal) Int() int64 { return SignExtend(s.val, s.width) }

// Bool reports whether the low bit is set; convenient for 1-bit controls.
func (s *Signal) Bool() bool { return s.val&1 == 1 }

// LastChange returns the time of the most recent value change.
func (s *Signal) LastChange() Time { return s.lastChange }

// Listen registers r to be scheduled whenever the signal changes value.
func (s *Signal) Listen(r Reactor) { s.listeners = append(s.listeners, r) }

func (s *Signal) String() string {
	if !s.valid {
		return fmt.Sprintf("%s=X", s.name)
	}
	return fmt.Sprintf("%s=%d", s.name, s.Int())
}

// Mask returns v truncated to width bits.
func Mask(v uint64, width int) uint64 {
	if width >= 64 {
		return v
	}
	return v & (1<<uint(width) - 1)
}

// SignExtend interprets the low width bits of v as a two's-complement
// number and returns it as int64.
func SignExtend(v uint64, width int) int64 {
	if width >= 64 {
		return int64(v)
	}
	v = Mask(v, width)
	if v&(1<<uint(width-1)) != 0 {
		return int64(v | ^uint64(0)<<uint(width))
	}
	return int64(v)
}
