package hades

import (
	"fmt"
	"strings"
)

// Change is one recorded transition on a probed signal.
type Change struct {
	At    Time
	Value int64
}

// Probe records every value change of one signal, giving the "access to
// values on certain connections" the paper cites as a requirement that
// testing on the FPGA itself cannot satisfy.
type Probe struct {
	IDBase
	sig     *Signal
	history []Change
	max     int // 0 = unbounded
	dropped int
}

// NewProbe attaches a probe to sig. maxHistory bounds stored changes
// (0 = unbounded); older entries are dropped first.
func NewProbe(sig *Signal, maxHistory int) *Probe {
	p := &Probe{sig: sig, max: maxHistory}
	p.AssignID(NextID())
	sig.Listen(p)
	return p
}

// Name identifies the probe by its signal.
func (p *Probe) Name() string { return "probe:" + p.sig.Name() }

// Signal returns the probed signal.
func (p *Probe) Signal() *Signal { return p.sig }

// React records the change.
func (p *Probe) React(sim *Simulator) {
	p.history = append(p.history, Change{At: sim.Now(), Value: p.sig.Int()})
	if p.max > 0 && len(p.history) > p.max {
		n := len(p.history) - p.max
		p.history = append(p.history[:0], p.history[n:]...)
		p.dropped += n
	}
}

// History returns the recorded changes in time order.
func (p *Probe) History() []Change { return p.history }

// Dropped returns how many changes were discarded due to the bound.
func (p *Probe) Dropped() int { return p.dropped }

// ValueAt returns the probed signal's value as of time t (the last change
// at or before t) and whether any change had occurred by then.
func (p *Probe) ValueAt(t Time) (int64, bool) {
	v, ok := int64(0), false
	for _, c := range p.history {
		if c.At > t {
			break
		}
		v, ok = c.Value, true
	}
	return v, ok
}

// Transitions counts recorded changes.
func (p *Probe) Transitions() int { return p.dropped + len(p.history) }

// Dump renders the history as "t:v t:v ..." for debugging and reports.
func (p *Probe) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", p.sig.Name())
	for _, c := range p.history {
		fmt.Fprintf(&b, " %d:%d", int64(c.At), c.Value)
	}
	return b.String()
}
