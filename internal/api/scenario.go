package api

import (
	"encoding/json"
	"fmt"
	"io"
)

// This file defines the scenario-engine wire shapes: the declarative
// scenario spec consumed by `testsuite -scenario`, `hsim -scenario` and
// POST /v1/scenario, and the JSONL trace records the scenario runner
// emits. Trace records deliberately carry no wall-clock fields — two
// same-seed runs of the same spec produce byte-identical traces, which
// is what makes record/replay/counterfactual possible.

// Dist is one parameter distribution of a scenario spec. Exactly one of
// the three shapes is set: a constant (JSON: a bare number or
// {"const": n}), a uniform integer range over [Min, Max] (JSON:
// {"uniform": {"min": a, "max": b}}), or a choice drawn uniformly from
// an explicit list (JSON: {"choice": [a, b, c]}).
type Dist struct {
	Const   *int      `json:"const,omitempty"`
	Uniform *IntRange `json:"uniform,omitempty"`
	Choice  []int     `json:"choice,omitempty"`
}

// IntRange is an inclusive integer interval.
type IntRange struct {
	Min int `json:"min"`
	Max int `json:"max"`
}

// UnmarshalJSON accepts the bare-number constant shorthand alongside
// the object form.
func (d *Dist) UnmarshalJSON(data []byte) error {
	var n int
	if err := json.Unmarshal(data, &n); err == nil {
		d.Const, d.Uniform, d.Choice = &n, nil, nil
		return nil
	}
	type plain Dist
	var p plain
	if err := json.Unmarshal(data, &p); err != nil {
		return fmt.Errorf("api: distribution must be a number, {\"const\":n}, {\"uniform\":{\"min\":a,\"max\":b}} or {\"choice\":[...]}: %w", err)
	}
	*d = Dist(p)
	return nil
}

// MarshalJSON renders a constant back to the bare-number shorthand.
func (d Dist) MarshalJSON() ([]byte, error) {
	if d.Const != nil && d.Uniform == nil && d.Choice == nil {
		return json.Marshal(*d.Const)
	}
	type plain Dist
	return json.Marshal(plain(d))
}

// Validate checks that exactly one shape is set and that it is sane;
// range validation against a workload schema happens at scenario load.
func (d Dist) Validate() error {
	set := 0
	if d.Const != nil {
		set++
	}
	if d.Uniform != nil {
		set++
		if d.Uniform.Min > d.Uniform.Max {
			return fmt.Errorf("api: uniform min %d > max %d", d.Uniform.Min, d.Uniform.Max)
		}
	}
	if len(d.Choice) > 0 {
		set++
	}
	if set != 1 {
		return fmt.Errorf("api: distribution needs exactly one of const, uniform, choice")
	}
	return nil
}

// MixEntry is one workload family in a scenario mix: the family name, a
// relative selection weight, and per-parameter distributions over the
// family's schema.
type MixEntry struct {
	Family string          `json:"family"`
	Weight float64         `json:"weight,omitempty"` // <=0 means 1
	Params map[string]Dist `json:"params,omitempty"`
}

// The arrival-process kinds of a scenario spec.
const (
	// ArrivalDeterministic spaces cases by a fixed interval.
	ArrivalDeterministic = "deterministic"
	// ArrivalPoisson draws exponential inter-arrival times.
	ArrivalPoisson = "poisson"
	// ArrivalGamma draws gamma-distributed inter-arrival times.
	ArrivalGamma = "gamma"
)

// ArrivalSpec is the stochastic arrival process for reconfiguration
// requests: how the scenario's cases are spaced in virtual time. A nil
// ArrivalSpec means all cases arrive at time zero.
type ArrivalSpec struct {
	Kind string `json:"kind"`
	// IntervalNS is the fixed spacing of a deterministic process.
	IntervalNS int64 `json:"interval_ns,omitempty"`
	// Rate is the mean arrivals per second of a Poisson or Gamma process.
	Rate float64 `json:"rate,omitempty"`
	// Shape is the Gamma shape parameter k (>0); 1 degenerates to Poisson.
	Shape float64 `json:"shape,omitempty"`
}

// The fault expected-outcome policies.
const (
	// PolicyObserve records each fault's outcome without judging it.
	PolicyObserve = "observe"
	// PolicyMustRecover requires the faulted output to match the clean
	// reference — the fault must be absorbed (erasure: flips confined to
	// erased symbols, which the MDS decoder reconstructs from survivors).
	PolicyMustRecover = "must-recover"
	// PolicyMustFail requires the faulted output to diverge from the
	// clean reference — the fault must propagate.
	PolicyMustFail = "must-fail"
)

// FaultPlan is a scenario's seeded fault-injection plan: bit flips into
// the initial contents of shared memories (stimulus vectors, RAM/ROM
// images) at a per-word rate, judged under a policy.
type FaultPlan struct {
	// Arrays names the memories eligible for flips; empty means every
	// input array of the case.
	Arrays []string `json:"arrays,omitempty"`
	// Rate is the per-word flip probability in [0,1].
	Rate float64 `json:"rate"`
	// Bits is how many low bits are eligible to flip (1..32, default 8).
	Bits int `json:"bits,omitempty"`
	// MaxFlips caps the flips per case (0 = unlimited).
	MaxFlips int `json:"max_flips,omitempty"`
	// Policy is the expected outcome: observe, must-recover, must-fail.
	// The must-* policies require every mix family to be "erasure", whose
	// MDS decoder provides the recovery oracle.
	Policy string `json:"policy,omitempty"` // "" = observe
}

// ScenarioSpec is the declarative, file-driven description of a
// stochastic simulation campaign: a weighted mix of workload families
// with parameter distributions, an arrival process, an optional fault
// plan, and one top-level seed every random decision derives from.
type ScenarioSpec struct {
	SchemaVersion int          `json:"schema_version,omitempty"`
	Name          string       `json:"name"`
	Seed          int64        `json:"seed"`
	Cases         int          `json:"cases"`
	Backend       string       `json:"backend,omitempty"` // "" = runner default
	Width         int          `json:"width,omitempty"`   // datapath width override
	Mix           []MixEntry   `json:"mix"`
	Arrival       *ArrivalSpec `json:"arrival,omitempty"`
	Faults        *FaultPlan   `json:"faults,omitempty"`
}

// DecodeScenarioSpec decodes one scenario spec object from r and
// checks its schema version; structural validation against a workload
// registry is the scenario package's Load.
func DecodeScenarioSpec(r io.Reader) (*ScenarioSpec, error) {
	var spec ScenarioSpec
	if err := json.NewDecoder(r).Decode(&spec); err != nil {
		return nil, fmt.Errorf("api: bad scenario spec: %w", err)
	}
	if err := CheckVersion(spec.SchemaVersion); err != nil {
		return nil, err
	}
	return &spec, nil
}

// The record discriminators of a scenario trace stream.
const (
	// RecordTraceHeader is the leading line of a trace.
	RecordTraceHeader = "scenario"
	// RecordTraceCase is one executed case of a trace.
	RecordTraceCase = "case"
	// RecordTraceSummary is the trailing aggregate line of a trace.
	RecordTraceSummary = "scenario_summary"
)

// FaultRecord is one injected bit flip: which word of which array,
// which bit, and the value before and after. Traces carry the full
// record so replay can re-apply (and cross-check) every flip without
// re-deriving it from the seed.
type FaultRecord struct {
	Array  string `json:"array"`
	Word   int    `json:"word"`
	Bit    int    `json:"bit"`
	Before int64  `json:"before"`
	After  int64  `json:"after"`
}

// TraceHeader is the first line of a scenario trace: which spec ran,
// under which seed, on which backend.
type TraceHeader struct {
	SchemaVersion int    `json:"schema_version,omitempty"`
	Record        string `json:"record"` // RecordTraceHeader
	Scenario      string `json:"scenario"`
	Seed          int64  `json:"seed"`
	Cases         int    `json:"cases"`
	Backend       string `json:"backend"`
	Width         int    `json:"width,omitempty"`
	// FaultsOff marks a counterfactual re-run with injection disabled.
	FaultsOff bool `json:"faults_off,omitempty"`
}

// TraceConfig is one executed configuration of one traced case — the
// deterministic slice of an rtg.ConfigRun (no wall clock).
type TraceConfig struct {
	ID         string `json:"id"`
	Cycles     uint64 `json:"cycles"`
	Events     uint64 `json:"events"`
	FinalState string `json:"final_state,omitempty"`
}

// TraceCase is one materialized, executed case of a scenario run: every
// decision the expander made (family, resolved params, arrival time,
// injected faults) plus the deterministic outcome (per-config walk,
// verdict, fault outcome, memory/sink digests). Replay re-executes
// these records bit-identically.
type TraceCase struct {
	SchemaVersion int    `json:"schema_version,omitempty"`
	Record        string `json:"record"` // RecordTraceCase
	Index         int    `json:"index"`
	Family        string `json:"family"`
	Params        string `json:"params"` // canonical "k=v,k=v"
	ArrivalNS     int64  `json:"arrival_ns"`

	Policy string        `json:"policy,omitempty"`
	Faults []FaultRecord `json:"faults,omitempty"`

	Configs   []TraceConfig `json:"configs"`
	Completed bool          `json:"completed"`
	Passed    bool          `json:"passed"`
	// FaultOutcome is "recovered" when the faulted run's pure outputs
	// match the clean reference, "diverged" otherwise; empty without
	// faults.
	FaultOutcome string `json:"fault_outcome,omitempty"`
	// PolicyOK reports the fault outcome against the plan's policy.
	PolicyOK bool `json:"policy_ok"`

	// MemoryDigest hashes every final shared memory; SinkDigest hashes
	// every configuration's sink streams. Both are deterministic and
	// pinned identical across backends.
	MemoryDigest string `json:"memory_digest"`
	SinkDigest   string `json:"sink_digest,omitempty"`
}

// The fault outcomes recorded in TraceCase.FaultOutcome.
const (
	// OutcomeRecovered means the faulted outputs matched the clean reference.
	OutcomeRecovered = "recovered"
	// OutcomeDiverged means the faulted outputs differed from the clean reference.
	OutcomeDiverged = "diverged"
)

// TraceSummary is the trailing line of a scenario trace: deterministic
// aggregates of the whole campaign (again, no wall clock).
type TraceSummary struct {
	SchemaVersion    int    `json:"schema_version,omitempty"`
	Record           string `json:"record"` // RecordTraceSummary
	Scenario         string `json:"scenario"`
	Cases            int    `json:"cases"`
	Passed           int    `json:"passed"`
	Failed           int    `json:"failed"`
	PolicyViolations int    `json:"policy_violations"`
	FaultsInjected   int    `json:"faults_injected"`
	Recovered        int    `json:"recovered"`
	Diverged         int    `json:"diverged"`
	Configs          uint64 `json:"configs"`
	Cycles           uint64 `json:"cycles"`
	Events           uint64 `json:"events"`
	OK               bool   `json:"ok"`
	Error            string `json:"error,omitempty"`
}
