// Package api defines the versioned, serializable wire types shared by
// every result-producing layer of the infrastructure: the regression
// suite's JSONL output (testsuite -json via core.SuiteResult.WriteJSON),
// the benchmark harness's BENCH_<name>.json files and `bench -json`
// stream, and the simd simulation server's request/response schema.
//
// There is exactly one schema. A consumer that can decode the suite
// JSONL can decode a simd NDJSON response with the same types, and every
// emitted object carries schema_version so readers can detect a future
// incompatible revision instead of silently misparsing it. Objects
// written before the field existed (the checked-in bench baselines)
// decode with SchemaVersion 0, which readers must treat as version 1 —
// the field was introduced without changing any other field's meaning.
package api

import (
	"encoding/json"
	"fmt"
	"io"
)

// SchemaVersion is the current wire schema version. Bump only on an
// incompatible change (a field renamed, retyped, or re-interpreted);
// adding fields is compatible and does not bump the version.
const SchemaVersion = 1

// CheckVersion validates a decoded object's schema_version: 0 (emitted
// before the field existed, or omitted by a request writer) and the
// current version are accepted, anything newer is rejected so an old
// reader fails loudly on output from a future writer.
func CheckVersion(v int) error {
	if v < 0 || v > SchemaVersion {
		return fmt.Errorf("api: unsupported schema_version %d (this reader speaks <= %d)", v, SchemaVersion)
	}
	return nil
}

// PartitionRecord is one temporal partition (configuration) of a case
// record — the per-partition Table I columns.
type PartitionRecord struct {
	ID        string `json:"id"`
	Operators int    `json:"operators"`
	States    int    `json:"states"`
	Cycles    uint64 `json:"cycles"`
	Events    uint64 `json:"events"`
	SimWallNS int64  `json:"sim_wall_ns"`
}

// CaseRecord is the machine-readable view of one verified regression
// case, emitted as one JSON object per line (JSON Lines) so CI can
// stream, grep, and archive it.
type CaseRecord struct {
	SchemaVersion int               `json:"schema_version,omitempty"`
	Suite         string            `json:"suite"`
	Name          string            `json:"name"`
	Passed        bool              `json:"passed"`
	Skipped       bool              `json:"skipped,omitempty"`
	Replays       int               `json:"replays,omitempty"`
	Error         string            `json:"error,omitempty"`
	WallNS        int64             `json:"wall_ns"`
	SimWallNS     int64             `json:"sim_wall_ns"`
	RefWallNS     int64             `json:"ref_wall_ns"`
	SourceLoC     int               `json:"source_loc"`
	TotalOps      int               `json:"total_ops"`
	Events        uint64            `json:"events"`
	RefSteps      uint64            `json:"ref_steps"`
	Mismatches    map[string]int    `json:"mismatches,omitempty"`
	Partitions    []PartitionRecord `json:"partitions,omitempty"`
}

// SuiteRecord is the trailing summary object of a JSONL suite report.
type SuiteRecord struct {
	SchemaVersion int     `json:"schema_version,omitempty"`
	Suite         string  `json:"suite"`
	Cases         int     `json:"cases"`
	Passed        int     `json:"passed"`
	Failed        int     `json:"failed"`
	Skipped       int     `json:"skipped"`
	Workers       int     `json:"workers"`
	WallNS        int64   `json:"wall_ns"`
	MaxCaseNS     int64   `json:"max_case_wall_ns"`
	TotalEvents   uint64  `json:"total_events"`
	SimWallNS     int64   `json:"sim_wall_ns"`
	EventsPerSec  float64 `json:"events_per_sec"`
	Speedup       float64 `json:"speedup"`
	OK            bool    `json:"ok"`
}

// BenchResult is the machine-readable outcome of one benchmark
// scenario, serialised as BENCH_<name>.json and streamed by
// `bench -json`. The checked-in baselines under bench/baseline/ predate
// schema_version and decode with SchemaVersion 0; every other field is
// unchanged from the original format (see TestBaselineRoundTrip).
type BenchResult struct {
	SchemaVersion  int     `json:"schema_version,omitempty"`
	Name           string  `json:"name"`
	Desc           string  `json:"desc,omitempty"`
	Pinned         bool    `json:"pinned"`
	Backend        string  `json:"backend,omitempty"`
	Reps           int     `json:"reps"`
	Events         uint64  `json:"events"`
	Cycles         uint64  `json:"cycles,omitempty"`
	Configs        uint64  `json:"configs,omitempty"`
	WallNS         int64   `json:"wall_ns"`
	EventsPerSec   float64 `json:"events_per_sec"`
	ConfigsPerSec  float64 `json:"configs_per_sec,omitempty"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	AllocsPerCfg   float64 `json:"allocs_per_config,omitempty"`
	UnixTime       int64   `json:"unix_time"`
	GoVersion      string  `json:"go_version"`
	GOOS           string  `json:"goos"`
	GOARCH         string  `json:"goarch"`
	CPUs           int     `json:"cpus"`
}

// The request kinds the simd server executes.
const (
	// KindVerify runs one compile-elaborate-simulate-verify round per
	// requested round and reports pass/fail against the golden models.
	KindVerify = "verify"
	// KindSweep is a verify sweep: N reset-and-replay rounds on the
	// pooled prepared design, each verified.
	KindSweep = "sweep"
	// KindBench is a timed sweep: N rounds with no verification, for
	// throughput measurement on a pooled session.
	KindBench = "bench"
)

// Request is the one serializable request shape of the simd server: a
// workload selector plus execution knobs. The same JSON object works
// against /v1/verify, /v1/sweep and /v1/bench (the endpoint fixes Kind;
// a non-empty body Kind must agree with the endpoint).
//
// Workload accepts either a bare family name ("hamming") with Params
// supplying parameters, or the CLI's inline spec syntax
// ("hamming,words=64"); inline values are overridden by Params.
type Request struct {
	SchemaVersion int            `json:"schema_version,omitempty"`
	Kind          string         `json:"kind,omitempty"`
	Workload      string         `json:"workload"`
	Params        map[string]int `json:"params,omitempty"`
	Backend       string         `json:"backend,omitempty"` // "" = server default
	Rounds        int            `json:"rounds,omitempty"`  // <=0 = 1
}

// NewRequest builds a request for a workload with the current schema
// version stamped.
func NewRequest(workload string, params map[string]int) Request {
	return Request{SchemaVersion: SchemaVersion, Workload: workload, Params: params}
}

// WithBackend returns a copy of the request targeting a backend.
func (r Request) WithBackend(backend string) Request {
	r.Backend = backend
	return r
}

// WithRounds returns a copy of the request running n rounds.
func (r Request) WithRounds(n int) Request {
	r.Rounds = n
	return r
}

// Validate checks the request's schema version and shape.
func (r Request) Validate() error {
	if err := CheckVersion(r.SchemaVersion); err != nil {
		return err
	}
	if r.Workload == "" {
		return fmt.Errorf("api: request missing workload")
	}
	if r.Rounds < 0 {
		return fmt.Errorf("api: negative rounds %d", r.Rounds)
	}
	switch r.Kind {
	case "", KindVerify, KindSweep, KindBench:
		return nil
	}
	return fmt.Errorf("api: unknown request kind %q", r.Kind)
}

// DecodeRequest decodes and validates one request object from r.
func DecodeRequest(r io.Reader) (Request, error) {
	var req Request
	dec := json.NewDecoder(r)
	if err := dec.Decode(&req); err != nil {
		return req, fmt.Errorf("api: bad request body: %w", err)
	}
	if err := req.Validate(); err != nil {
		return req, err
	}
	return req, nil
}

// The record discriminators of a simd NDJSON response stream.
const (
	// RecordConfig is one executed configuration of one round.
	RecordConfig = "config"
	// RecordSummary is the trailing aggregate record of a response.
	RecordSummary = "summary"
)

// RunRecord is one line of a simd NDJSON response. Record discriminates
// the two shapes: "config" lines stream each executed configuration as
// its round completes (Round, Config, Cycles, Events, WallNS, Kernel,
// Completed), and the single trailing "summary" line aggregates the
// whole request (rounds, totals, throughput, verification verdict, and
// the session's pool/replay statistics). A summary with a non-empty
// Error reports a request that failed after streaming began.
type RunRecord struct {
	SchemaVersion int    `json:"schema_version,omitempty"`
	Record        string `json:"record"`

	// Config-record fields.
	Round     int    `json:"round,omitempty"` // 1-based
	Config    string `json:"config,omitempty"`
	Cycles    uint64 `json:"cycles,omitempty"`
	Kernel    string `json:"kernel,omitempty"`
	Completed bool   `json:"completed,omitempty"`

	// Summary-record fields.
	Kind          string         `json:"kind,omitempty"`
	Workload      string         `json:"workload,omitempty"`
	Params        string         `json:"params,omitempty"` // canonical "k=v,k=v"
	Backend       string         `json:"backend,omitempty"`
	Rounds        int            `json:"rounds,omitempty"`
	Configs       uint64         `json:"configs,omitempty"`
	EventsPerSec  float64        `json:"events_per_sec,omitempty"`
	ConfigsPerSec float64        `json:"configs_per_sec,omitempty"`
	Verified      bool           `json:"verified,omitempty"` // a verdict was computed (verify/sweep)
	Passed        bool           `json:"passed,omitempty"`
	Mismatches    map[string]int `json:"mismatches,omitempty"`
	PoolHit       bool           `json:"pool_hit,omitempty"` // request reused a pooled session
	Elaborations  uint64         `json:"elaborations,omitempty"`
	Resets        uint64         `json:"resets,omitempty"`
	Error         string         `json:"error,omitempty"`

	// Shared by both shapes.
	Events uint64 `json:"events,omitempty"`
	WallNS int64  `json:"wall_ns,omitempty"`
}

// BackendInfo describes one registered simulator backend: the registry
// descriptor served by GET /v1/backends and embedded in /statsz. Added
// without a schema bump — the fields are additive and every earlier
// field keeps its meaning.
type BackendInfo struct {
	Name         string `json:"name"`
	Kind         string `json:"kind"` // "event" or "cycle"
	Desc         string `json:"desc,omitempty"`
	SupportsGang bool   `json:"supports_gang,omitempty"`
}

// BackendsResponse is the GET /v1/backends payload: the server's
// default backend plus every registered descriptor, default first.
type BackendsResponse struct {
	SchemaVersion int           `json:"schema_version,omitempty"`
	Default       string        `json:"default"`
	Backends      []BackendInfo `json:"backends"`
}

// SessionStats is one pooled session's aggregate view in /statsz.
type SessionStats struct {
	Key          string `json:"key"` // "workload(params)@backend"
	Runs         uint64 `json:"runs"`
	InFlight     int    `json:"in_flight"`
	Elaborations uint64 `json:"elaborations"`
	Resets       uint64 `json:"resets"`
}

// ServerStats is the /statsz response: admission, pool and throughput
// counters aggregated since server start.
type ServerStats struct {
	SchemaVersion int   `json:"schema_version,omitempty"`
	UptimeNS      int64 `json:"uptime_ns"`

	// Admission and request lifecycle.
	Requests int64 `json:"requests"` // admitted requests
	Rejected int64 `json:"rejected"` // shed with 429 (token bucket, queue, session caps)
	Failed   int64 `json:"failed"`   // admitted requests that errored
	InFlight int64 `json:"in_flight"`

	// Session pool.
	Sessions    int   `json:"sessions"`
	MaxSessions int   `json:"max_sessions"`
	PoolHits    int64 `json:"pool_hits"`
	PoolMisses  int64 `json:"pool_misses"`
	Evictions   int64 `json:"evictions"`

	// Replay economics across every pooled session: elaborations stay
	// flat while resets grow when the replay cache is doing its job.
	Elaborations uint64 `json:"elaborations"`
	Resets       uint64 `json:"resets"`

	// Throughput since start.
	Events          uint64  `json:"events"`
	Configs         uint64  `json:"configs"`
	Rounds          uint64  `json:"rounds"`
	EventsPerSec    float64 `json:"events_per_sec"`
	ConfigsPerSec   float64 `json:"configs_per_sec"`
	AllocsPerConfig float64 `json:"allocs_per_config"`

	SessionsDetail []SessionStats `json:"sessions_detail,omitempty"`

	// Backends lists the registered backend descriptors (additive,
	// schema unchanged); Backend is the server's default.
	Backend  string        `json:"backend,omitempty"`
	Backends []BackendInfo `json:"backends,omitempty"`

	// Sharded-sweep serving counters (additive; schema unchanged): the
	// shard jobs this server executed for sweep coordinators and the
	// cases they covered. A coordinator's own counters live in its
	// SweepStats sidecar / SweepProgress — these are the worker-side
	// mirror, so a fleet's /statsz pages tell the same story.
	SweepShards     int64 `json:"sweep_shards,omitempty"`
	SweepShardCases int64 `json:"sweep_shard_cases,omitempty"`
}
