package api

import (
	"bytes"
	"encoding/json"
	"reflect"
	"regexp"
	"strings"
	"testing"
)

func TestShardRecordRoundTrips(t *testing.T) {
	hdr := ShardHeader{
		SchemaVersion: SchemaVersion, Record: RecordShardHeader,
		Campaign: "nightly", CampaignDigest: "00ff00ff00ff00ff",
		Shard: 3, Shards: 8, From: 12, To: 16, Backend: "twolevel",
	}
	ftr := ShardResult{
		SchemaVersion: SchemaVersion, Record: RecordShardResult,
		Shard: 3, Cases: 4, Digest: "deadbeefdeadbeef",
	}
	var hdr2 ShardHeader
	var ftr2 ShardResult
	for _, rt := range []struct {
		in, out interface{}
	}{{&hdr, &hdr2}, {&ftr, &ftr2}} {
		b, err := json.Marshal(rt.in)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(b, rt.out); err != nil {
			t.Fatal(err)
		}
	}
	if hdr2 != hdr {
		t.Errorf("ShardHeader round trip: %+v != %+v", hdr2, hdr)
	}
	if ftr2 != ftr {
		t.Errorf("ShardResult round trip: %+v != %+v", ftr2, ftr)
	}
}

func TestShardRecordVersionGate(t *testing.T) {
	// Version 0 (field omitted by an old writer) must decode and pass
	// the gate; a newer version must be rejected by CheckVersion.
	var hdr ShardHeader
	if err := json.Unmarshal([]byte(`{"record":"shard","campaign":"x","campaign_digest":"d","shard":0,"shards":1,"from":0,"to":2,"backend":"twolevel"}`), &hdr); err != nil {
		t.Fatal(err)
	}
	if err := CheckVersion(hdr.SchemaVersion); err != nil {
		t.Errorf("version-0 shard header rejected: %v", err)
	}
	var newer ShardResult
	if err := json.Unmarshal([]byte(`{"schema_version":99,"record":"shard_result","shard":0,"cases":2,"digest":"d"}`), &newer); err != nil {
		t.Fatal(err)
	}
	if err := CheckVersion(newer.SchemaVersion); err == nil {
		t.Error("schema_version 99 footer passed CheckVersion; a future writer must fail loudly")
	}
}

func TestSweepSpecValidate(t *testing.T) {
	grid := &GridSpec{Workloads: []string{"hamming,words=8"}, SeedFrom: 0, SeedTo: 4}
	scen := &ScenarioSpec{Name: "s", Seed: 1, Cases: 4, Mix: []MixEntry{{Family: "hamming"}}}
	cases := []struct {
		name string
		spec SweepSpec
		ok   bool
	}{
		{"grid ok", SweepSpec{Name: "g", Grid: grid}, true},
		{"scenario ok", SweepSpec{Name: "s", Scenario: scen}, true},
		{"no name", SweepSpec{Grid: grid}, false},
		{"both modes", SweepSpec{Name: "b", Grid: grid, Scenario: scen}, false},
		{"no mode", SweepSpec{Name: "n"}, false},
		{"empty grid", SweepSpec{Name: "e", Grid: &GridSpec{SeedFrom: 0, SeedTo: 1}}, false},
		{"empty seed range", SweepSpec{Name: "r", Grid: &GridSpec{Workloads: []string{"fir"}, SeedFrom: 3, SeedTo: 3}}, false},
		{"newer version", SweepSpec{SchemaVersion: SchemaVersion + 1, Name: "v", Grid: grid}, false},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestDecodeSweepRequest(t *testing.T) {
	body := `{"spec":{"name":"g","grid":{"workloads":["hamming,words=8"],"seed_from":0,"seed_to":4}},"shard":1}`
	req, err := DecodeSweepRequest(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if req.Shard != 1 || req.Spec.Grid.Cases() != 4 {
		t.Errorf("decoded request %+v", req)
	}
	if _, err := DecodeSweepRequest(strings.NewReader(`{"spec":{"name":"g"},"shard":-1}`)); err == nil {
		t.Error("negative shard index accepted")
	}
	if _, err := DecodeSweepRequest(strings.NewReader(`{`)); err == nil {
		t.Error("malformed body accepted")
	}
}

// nondeterministicField matches json tags that smuggle wall-clock or
// host identity into a record — the fields that would break the
// byte-identical merge guarantee if they appeared on the merge surface.
// Simulated model time (arrival_ns, cycles, events) is deterministic
// and deliberately not matched.
var nondeterministicField = regexp.MustCompile(
	`wall|unix_time|go_version|goos|goarch|cpus|hostname|per_sec|speedup|uptime`)

// jsonTags walks a struct type (recursing into struct-typed fields) and
// returns every json field name.
func jsonTags(t reflect.Type, out *[]string) {
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		tag := strings.Split(f.Tag.Get("json"), ",")[0]
		if tag != "" && tag != "-" {
			*out = append(*out, tag)
		}
		ft := f.Type
		for ft.Kind() == reflect.Ptr || ft.Kind() == reflect.Slice {
			ft = ft.Elem()
		}
		if ft.Kind() == reflect.Struct {
			jsonTags(ft, out)
		}
	}
}

// TestMergeSurfaceIsDeterministic pins the determinism audit: every
// record type that can appear in a shard file or merged campaign file
// (the trace records plus the shard header/footer) must be free of
// wall-clock and host-dependent fields, transitively. The sweep merge
// is byte-compared against single-process runs, so one timing field
// here would break resumability's central guarantee.
func TestMergeSurfaceIsDeterministic(t *testing.T) {
	mergeSurface := []interface{}{
		TraceHeader{}, TraceCase{}, TraceConfig{}, FaultRecord{},
		TraceSummary{}, ShardHeader{}, ShardResult{},
	}
	for _, rec := range mergeSurface {
		typ := reflect.TypeOf(rec)
		var tags []string
		jsonTags(typ, &tags)
		for _, tag := range tags {
			if nondeterministicField.MatchString(tag) {
				t.Errorf("%s carries nondeterministic field %q; move it to the ShardStats/SweepStats sidecar", typ.Name(), tag)
			}
		}
	}
}

// TestTimingLivesInSidecar pins the other half of the split: the
// sidecar records are exactly where wall-clock and host fields live
// (so observability is not lost, just kept out of the merge), and they
// round-trip. The suite JSONL records (CaseRecord/SuiteRecord) keep
// their timing fields too — which is precisely why the sweep merges
// scenario trace records and not suite records.
func TestTimingLivesInSidecar(t *testing.T) {
	for _, rec := range []interface{}{ShardStats{}, SweepStats{}, CaseRecord{}, SuiteRecord{}} {
		typ := reflect.TypeOf(rec)
		var tags []string
		jsonTags(typ, &tags)
		found := false
		for _, tag := range tags {
			if nondeterministicField.MatchString(tag) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s carries no timing fields; the determinism split expects wall-clock data here", typ.Name())
		}
	}

	in := ShardStats{
		SchemaVersion: SchemaVersion, Record: RecordShardStats,
		Shard: 2, From: 4, To: 8, Attempts: 2, Worker: "process",
		State: "valid", WallNS: 12345,
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(`"wall_ns":12345`)) {
		t.Fatalf("sidecar lost its wall clock: %s", b)
	}
	var out ShardStats
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("ShardStats round trip: %+v != %+v", out, in)
	}
}
