package api

import (
	"encoding/json"
	"fmt"
	"io"
)

// This file defines the sharded-sweep wire shapes: the campaign spec
// the sweep coordinator partitions across worker processes, the shard
// job request POSTed to a simd server's /v1/sweep/sharded endpoint, and
// the JSONL records a shard file is made of.
//
// A shard file is the coordinator's unit of recovery: a ShardHeader
// line tying the file to one campaign layout (spec digest, shard index,
// case range, backend), one TraceCase line per executed case, and a
// trailing ShardResult footer whose digest covers the case lines. A
// file ending in a valid footer is complete and is never re-executed on
// resume; a torn or missing footer classifies the shard as resumable
// work. Like the scenario trace records, shard records carry no
// wall-clock or host-dependent fields — that is what makes the merged
// campaign file byte-identical regardless of worker count, interleaving
// or resume passes. Timing and attempt accounting live in the ShardStats
// and SweepStats sidecar records instead, which are written to a
// separate stats file and never merged.

// GridSpec is the preset-grid campaign mode: the cross product of a
// workload list and an inclusive-exclusive seed range [SeedFrom,
// SeedTo). Case i resolves workload i/span with the seed parameter set
// to SeedFrom + i%span (workload-major order), so every case is a pure
// function of the spec.
type GridSpec struct {
	// Workloads are inline workload specs ("family" or
	// "family,k=v,..."), each resolved against the registry.
	Workloads []string `json:"workloads"`
	// SeedFrom/SeedTo bound the seed range; SeedTo is exclusive.
	SeedFrom int `json:"seed_from"`
	SeedTo   int `json:"seed_to"`
	// SeedParam names the parameter the seed is assigned to (default
	// "seed", which every built-in family exposes).
	SeedParam string `json:"seed_param,omitempty"`
}

// Span is the number of seeds per workload.
func (g *GridSpec) Span() int { return g.SeedTo - g.SeedFrom }

// Cases is the grid's total case count.
func (g *GridSpec) Cases() int { return len(g.Workloads) * g.Span() }

// SweepSpec is the declarative description of a sharded campaign:
// exactly one of Scenario (shard the expanded case list of a scenario
// spec) or Grid (shard a workload-preset x seed-range grid) is set.
// Shards is the campaign's shard layout — it participates in the spec
// digest, so shard files from one layout are never merged into another.
type SweepSpec struct {
	SchemaVersion int    `json:"schema_version,omitempty"`
	Name          string `json:"name"`
	// Shards is the number of contiguous case-range shards; <=0 lets
	// the loader pick a default (clamped to the case count either way).
	Shards int `json:"shards,omitempty"`
	// Backend overrides the simulator backend for the whole campaign
	// ("" defers to the scenario spec's backend, then the flow default).
	Backend  string        `json:"backend,omitempty"`
	Scenario *ScenarioSpec `json:"scenario,omitempty"`
	Grid     *GridSpec     `json:"grid,omitempty"`
}

// Validate checks the spec's schema version and structural shape;
// registry-dependent validation (families exist, parameters in range)
// happens at sweep.Load.
func (s *SweepSpec) Validate() error {
	if err := CheckVersion(s.SchemaVersion); err != nil {
		return err
	}
	if s.Name == "" {
		return fmt.Errorf("api: sweep spec needs a name")
	}
	if (s.Scenario == nil) == (s.Grid == nil) {
		return fmt.Errorf("api: sweep spec %q needs exactly one of scenario, grid", s.Name)
	}
	if g := s.Grid; g != nil {
		if len(g.Workloads) == 0 {
			return fmt.Errorf("api: sweep spec %q: grid needs at least one workload", s.Name)
		}
		if g.SeedFrom < 0 || g.SeedTo <= g.SeedFrom {
			return fmt.Errorf("api: sweep spec %q: grid seed range [%d, %d) is empty or negative",
				s.Name, g.SeedFrom, g.SeedTo)
		}
	}
	return nil
}

// DecodeSweepSpec decodes one sweep spec object from r and validates
// its shape.
func DecodeSweepSpec(r io.Reader) (*SweepSpec, error) {
	var spec SweepSpec
	if err := json.NewDecoder(r).Decode(&spec); err != nil {
		return nil, fmt.Errorf("api: bad sweep spec: %w", err)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &spec, nil
}

// SweepRequest is the POST /v1/sweep/sharded body: execute exactly one
// shard of the campaign and stream its shard records back as NDJSON.
// The server loads the spec against its own registry, so the shard
// header it emits carries the same campaign digest the coordinator
// computed — a mismatched registry or layout surfaces as a foreign
// shard, not a silently wrong merge.
type SweepRequest struct {
	SchemaVersion int       `json:"schema_version,omitempty"`
	Spec          SweepSpec `json:"spec"`
	// Shard is the 0-based shard index to execute (against the spec's
	// Shards layout).
	Shard int `json:"shard"`
}

// Validate checks the request envelope and the embedded spec.
func (r *SweepRequest) Validate() error {
	if err := CheckVersion(r.SchemaVersion); err != nil {
		return err
	}
	if r.Shard < 0 {
		return fmt.Errorf("api: negative shard index %d", r.Shard)
	}
	return r.Spec.Validate()
}

// DecodeSweepRequest decodes and validates one shard job request.
func DecodeSweepRequest(r io.Reader) (*SweepRequest, error) {
	var req SweepRequest
	if err := json.NewDecoder(r).Decode(&req); err != nil {
		return nil, fmt.Errorf("api: bad sweep request: %w", err)
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

// The record discriminators of a shard file and the stats sidecar.
const (
	// RecordShardHeader is the leading line of a shard file.
	RecordShardHeader = "shard"
	// RecordShardResult is the trailing footer line of a complete shard.
	RecordShardResult = "shard_result"
	// RecordShardStats is one shard's sidecar timing/attempt record.
	RecordShardStats = "shard_stats"
	// RecordSweepStats is the sidecar's trailing campaign aggregate.
	RecordSweepStats = "sweep_stats"
	// RecordSweepProgress is a live coordinator snapshot (the /progressz
	// payload); never written to a shard or campaign file.
	RecordSweepProgress = "sweep_progress"
)

// ShardHeader is the first line of a shard file: which campaign layout
// the shard belongs to and which case range it covers. Every field is
// deterministic — two workers producing the same shard write the same
// header.
type ShardHeader struct {
	SchemaVersion int    `json:"schema_version,omitempty"`
	Record        string `json:"record"` // RecordShardHeader
	Campaign      string `json:"campaign"`
	// CampaignDigest fingerprints the normalized campaign spec
	// (including the shard layout); a shard from another campaign, another
	// layout or another backend never passes resume validation.
	CampaignDigest string `json:"campaign_digest"`
	Shard          int    `json:"shard"`  // 0-based
	Shards         int    `json:"shards"` // total
	From           int    `json:"from"`   // first case index (inclusive)
	To             int    `json:"to"`     // last case index (exclusive)
	Backend        string `json:"backend"`
}

// ShardResult is the footer line of a complete shard file: the case
// count and a digest over the raw case-line bytes. A file whose footer
// is missing, whose digest does not match, or whose case count is wrong
// is torn — resumable, not fatal. Deliberately free of wall-clock and
// host fields (see ShardStats).
type ShardResult struct {
	SchemaVersion int    `json:"schema_version,omitempty"`
	Record        string `json:"record"` // RecordShardResult
	Shard         int    `json:"shard"`
	Cases         int    `json:"cases"`
	// Digest is FNV-1a over every case line (each including its
	// trailing newline), in file order.
	Digest string `json:"digest"`
}

// ShardStats is the per-shard sidecar record: everything the
// deterministic shard records must not carry — wall clock, attempt
// counts, worker identity. Written to the coordinator's stats file,
// never into a shard or campaign file.
type ShardStats struct {
	SchemaVersion int    `json:"schema_version,omitempty"`
	Record        string `json:"record"` // RecordShardStats
	Shard         int    `json:"shard"`
	From          int    `json:"from"`
	To            int    `json:"to"`
	// Skipped marks a shard resumed from a previous pass (its file
	// already ended in a valid footer, so it was not re-executed).
	Skipped  bool   `json:"skipped,omitempty"`
	Attempts int    `json:"attempts"`
	Worker   string `json:"worker,omitempty"` // local, process, remote...
	State    string `json:"state"`            // valid, torn, foreign, missing, failed
	Error    string `json:"error,omitempty"`
	WallNS   int64  `json:"wall_ns"`
	// Endpoint names the fleet endpoint that produced the winning shard
	// file (empty before completion and on skipped shards).
	Endpoint string `json:"endpoint,omitempty"`
	// Hedges counts speculative re-dispatches of this shard; HedgeWon
	// marks a hedge attempt (not the primary) producing the winning file.
	Hedges   int  `json:"hedges,omitempty"`
	HedgeWon bool `json:"hedge_won,omitempty"`
	// Stolen marks a shard executed by an endpoint other than its
	// round-robin home placement.
	Stolen bool `json:"stolen,omitempty"`
	// Requeues counts endpoint-attributed failures that re-queued the
	// shard without charging its retry budget (route-around, not retry).
	Requeues int `json:"requeues,omitempty"`
}

// SweepStats is the sidecar's trailing aggregate for one coordinator
// pass.
type SweepStats struct {
	SchemaVersion  int    `json:"schema_version,omitempty"`
	Record         string `json:"record"` // RecordSweepStats
	Campaign       string `json:"campaign"`
	CampaignDigest string `json:"campaign_digest"`
	Cases          int    `json:"cases"`
	Shards         int    `json:"shards"`
	Workers        int    `json:"workers"`
	Executed       int    `json:"executed"` // shards run this pass
	Skipped        int    `json:"skipped"`  // shards resumed as complete
	Failed         int    `json:"failed"`   // shards that exhausted retries
	Retried        int    `json:"retried"`  // extra attempts beyond the first
	// CasesExecuted counts cases actually simulated this pass by
	// in-process workers — the resume economics counter: a resumed pass
	// after a crash executes only the lost shards' cases.
	CasesExecuted int64  `json:"cases_executed"`
	WallNS        int64  `json:"wall_ns"`
	UnixTime      int64  `json:"unix_time"`
	GoVersion     string `json:"go_version,omitempty"`
	// Resilient-dispatch accounting (additive; schema unchanged).
	Hedges    int `json:"hedges,omitempty"`     // speculative re-dispatches launched
	HedgesWon int `json:"hedges_won,omitempty"` // hedges whose file won the shard
	Steals    int `json:"steals,omitempty"`     // shards completed off their home endpoint
	Requeues  int `json:"requeues,omitempty"`   // endpoint-attributed free re-queues
	Fallbacks int `json:"fallbacks,omitempty"`  // shards run on the local fallback worker
	// WorkerHealth snapshots every fleet endpoint's health model at the
	// end of the pass.
	WorkerHealth []WorkerHealth `json:"worker_health,omitempty"`
}

// WorkerHealth is one endpoint's health-model snapshot: circuit-breaker
// state, consecutive failures, and the latency EWMA the hedging
// deadline derives from. Carried in the stats sidecar, SweepProgress
// and /progressz — never in a shard or campaign file.
type WorkerHealth struct {
	Name string `json:"name"`
	// State is the circuit-breaker state: "healthy" (closed), "open"
	// (quarantined, routed around) or "half-open" (probing).
	State string `json:"state"`
	// ConsecutiveFailures is the breaker's trip counter; it resets on
	// every success.
	ConsecutiveFailures int   `json:"consecutive_failures,omitempty"`
	Failures            int64 `json:"failures,omitempty"`
	Successes           int64 `json:"successes,omitempty"`
	// LatencyEWMANS is the endpoint's exponentially weighted moving
	// average of per-shard wall time, in nanoseconds.
	LatencyEWMANS int64 `json:"latency_ewma_ns,omitempty"`
	// Probes counts half-open probe shards dispatched to this endpoint.
	Probes int64 `json:"probes,omitempty"`
}

// SweepProgress is a live coordinator snapshot: the /progressz payload
// and the shape `testsuite sweep status -follow` renders. Shards move
// pending -> running -> done/failed; retried/hedged/stolen count
// dispatch events, not shards, so they can exceed the shard count.
type SweepProgress struct {
	SchemaVersion  int    `json:"schema_version,omitempty"`
	Record         string `json:"record"` // RecordSweepProgress
	Campaign       string `json:"campaign"`
	CampaignDigest string `json:"campaign_digest"`
	Shards         int    `json:"shards"`
	Done           int    `json:"done"` // valid (includes resumed-as-valid)
	Running        int    `json:"running"`
	Pending        int    `json:"pending"`
	Failed         int    `json:"failed"`
	Retried        int    `json:"retried"`
	Hedges         int    `json:"hedges,omitempty"`
	Steals         int    `json:"steals,omitempty"`
	Requeues       int    `json:"requeues,omitempty"`
	Fallbacks      int    `json:"fallbacks,omitempty"`
	CasesTotal     int    `json:"cases_total"`
	CasesDone      int    `json:"cases_done"`
	ElapsedNS      int64  `json:"elapsed_ns"`
	// EtaNS estimates the remaining wall time from the fleet's per-shard
	// latency EWMA and the live slot count; 0 means no estimate yet.
	EtaNS   int64          `json:"eta_ns,omitempty"`
	Workers []WorkerHealth `json:"workers,omitempty"`
}
