package api

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestBaselineRoundTrip decodes every checked-in bench baseline file
// into the api type, re-encodes it, and requires every original field
// to survive byte-for-byte (as decoded JSON values): migrating the
// bench output onto internal/api must not change the meaning of a
// single existing field, or the CI perf gates would silently compare
// incomparable numbers.
func TestBaselineRoundTrip(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join("..", "..", "bench", "baseline", "*", "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no checked-in baselines found under bench/baseline/")
	}
	for _, path := range matches {
		doc, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var r BenchResult
		if err := json.Unmarshal(doc, &r); err != nil {
			t.Fatalf("%s: decode into api.BenchResult: %v", path, err)
		}
		if err := CheckVersion(r.SchemaVersion); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		out, err := json.Marshal(&r)
		if err != nil {
			t.Fatal(err)
		}
		var orig, round map[string]any
		if err := json.Unmarshal(doc, &orig); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(out, &round); err != nil {
			t.Fatal(err)
		}
		for key, want := range orig {
			got, ok := round[key]
			if !ok {
				t.Errorf("%s: field %q lost in round trip", path, key)
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s: field %q changed in round trip: %v -> %v", path, key, want, got)
			}
		}
		for key := range round {
			if _, ok := orig[key]; !ok {
				t.Errorf("%s: round trip invented field %q (baselines must stay stable)", path, key)
			}
		}
	}
}

func TestCheckVersion(t *testing.T) {
	for _, v := range []int{0, SchemaVersion} {
		if err := CheckVersion(v); err != nil {
			t.Errorf("CheckVersion(%d) = %v, want nil", v, err)
		}
	}
	for _, v := range []int{-1, SchemaVersion + 1} {
		if err := CheckVersion(v); err == nil {
			t.Errorf("CheckVersion(%d) accepted", v)
		}
	}
}

func TestRequestValidate(t *testing.T) {
	good := NewRequest("hamming", map[string]int{"words": 8}).WithBackend("twolevel").WithRounds(4)
	if good.SchemaVersion != SchemaVersion {
		t.Fatalf("NewRequest version = %d", good.SchemaVersion)
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	bad := []Request{
		{SchemaVersion: SchemaVersion + 1, Workload: "hamming"},
		{Workload: ""},
		{Workload: "hamming", Rounds: -1},
		{Workload: "hamming", Kind: "explode"},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad request %d accepted: %+v", i, r)
		}
	}
}

func TestDecodeRequestRoundTrip(t *testing.T) {
	req := NewRequest("fir", map[string]int{"n": 256, "taps": 8}).WithRounds(3)
	doc, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRequest(bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, req) {
		t.Fatalf("request round trip: got %+v, want %+v", got, req)
	}
	if _, err := DecodeRequest(strings.NewReader("{")); err == nil {
		t.Fatal("truncated request body accepted")
	}
	if _, err := DecodeRequest(strings.NewReader(`{"workload":""}`)); err == nil {
		t.Fatal("empty workload accepted")
	}
}

// TestRunRecordRoundTrip pins that both NDJSON record shapes survive an
// encode/decode cycle with the version stamped — the decode side of the
// acceptance criterion that simd responses use the shared schema.
func TestRunRecordRoundTrip(t *testing.T) {
	records := []RunRecord{
		{
			SchemaVersion: SchemaVersion, Record: RecordConfig,
			Round: 2, Config: "cfg0", Cycles: 128, Events: 4096,
			WallNS: 1e6, Kernel: "twolevel", Completed: true,
		},
		{
			SchemaVersion: SchemaVersion, Record: RecordSummary,
			Kind: KindSweep, Workload: "hamming", Params: "seed=1,words=8",
			Backend: "twolevel", Rounds: 4, Configs: 4, Events: 16384,
			WallNS: 4e6, EventsPerSec: 4096e3, ConfigsPerSec: 1e3,
			Verified: true, Passed: true, PoolHit: true,
			Elaborations: 1, Resets: 3,
		},
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, r := range records {
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}
	dec := json.NewDecoder(&buf)
	for i, want := range records {
		var got RunRecord
		if err := dec.Decode(&got); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("record %d round trip: got %+v, want %+v", i, got, want)
		}
	}
}

func TestServerStatsRoundTrip(t *testing.T) {
	in := ServerStats{
		SchemaVersion: SchemaVersion, UptimeNS: 5e9,
		Requests: 40, Rejected: 2, Failed: 1, InFlight: 3,
		Sessions: 2, MaxSessions: 16, PoolHits: 38, PoolMisses: 2,
		Elaborations: 3, Resets: 120, Events: 1 << 20, Configs: 123, Rounds: 40,
		EventsPerSec: 2e5, ConfigsPerSec: 24.6, AllocsPerConfig: 27,
		SessionsDetail: []SessionStats{{Key: "hamming(seed=1,words=8)@twolevel", Runs: 38, Elaborations: 1, Resets: 37}},
		Backend:        "twolevel",
		Backends: []BackendInfo{
			{Name: "twolevel", Kind: "event", Desc: "two-level event queue"},
			{Name: "compiled", Kind: "cycle", Desc: "levelized engine", SupportsGang: true},
		},
	}
	doc, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out ServerStats
	if err := json.Unmarshal(doc, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("stats round trip: got %+v, want %+v", out, in)
	}
}

// TestBackendsResponseRoundTrip pins the /v1/backends payload: an
// additive schema-1 object whose descriptors survive the cycle intact.
func TestBackendsResponseRoundTrip(t *testing.T) {
	in := BackendsResponse{
		SchemaVersion: SchemaVersion,
		Default:       "twolevel",
		Backends: []BackendInfo{
			{Name: "twolevel", Kind: "event", Desc: "two-level event queue"},
			{Name: "compiled", Kind: "cycle", Desc: "levelized engine", SupportsGang: true},
			{Name: "heapref", Kind: "event", Desc: "seed binary-heap kernel"},
		},
	}
	doc, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out BackendsResponse
	if err := json.Unmarshal(doc, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("backends round trip: got %+v, want %+v", out, in)
	}
	if err := CheckVersion(out.SchemaVersion); err != nil {
		t.Fatal(err)
	}
}
