package api

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestDistJSONShapes(t *testing.T) {
	cases := []struct {
		in   string
		want func(d Dist) bool
	}{
		{`3`, func(d Dist) bool { return d.Const != nil && *d.Const == 3 }},
		{`{"const": 7}`, func(d Dist) bool { return d.Const != nil && *d.Const == 7 }},
		{`{"uniform": {"min": 2, "max": 9}}`, func(d Dist) bool {
			return d.Uniform != nil && d.Uniform.Min == 2 && d.Uniform.Max == 9
		}},
		{`{"choice": [4, 8, 16]}`, func(d Dist) bool { return len(d.Choice) == 3 && d.Choice[2] == 16 }},
	}
	for _, c := range cases {
		var d Dist
		if err := json.Unmarshal([]byte(c.in), &d); err != nil {
			t.Fatalf("unmarshal %s: %v", c.in, err)
		}
		if !c.want(d) {
			t.Errorf("unmarshal %s: got %+v", c.in, d)
		}
		if err := d.Validate(); err != nil {
			t.Errorf("validate %s: %v", c.in, err)
		}
	}
}

func TestDistMarshalConstShorthand(t *testing.T) {
	n := 5
	b, err := json.Marshal(Dist{Const: &n})
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "5" {
		t.Fatalf("const dist marshals to %s, want bare 5", b)
	}
	var d Dist
	if err := json.Unmarshal(b, &d); err != nil || d.Const == nil || *d.Const != 5 {
		t.Fatalf("round trip: %+v, %v", d, err)
	}
}

func TestDistValidateRejectsAmbiguous(t *testing.T) {
	n := 1
	bad := []Dist{
		{},
		{Const: &n, Choice: []int{1, 2}},
		{Uniform: &IntRange{Min: 5, Max: 2}},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("dist %d: expected validation error", i)
		}
	}
}

func TestDecodeScenarioSpec(t *testing.T) {
	spec, err := DecodeScenarioSpec(strings.NewReader(`{
		"schema_version": 1, "name": "s", "seed": 1, "cases": 2,
		"mix": [{"family": "hamming", "params": {"words": 16}}],
		"arrival": {"kind": "poisson", "rate": 100},
		"faults": {"rate": 0.1, "policy": "observe"}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "s" || spec.Cases != 2 || len(spec.Mix) != 1 {
		t.Fatalf("bad decode: %+v", spec)
	}
	if d := spec.Mix[0].Params["words"]; d.Const == nil || *d.Const != 16 {
		t.Fatalf("bad params decode: %+v", d)
	}
	if _, err := DecodeScenarioSpec(strings.NewReader(`{"schema_version": 99, "name": "x"}`)); err == nil {
		t.Fatal("future schema_version must be rejected")
	}
}
