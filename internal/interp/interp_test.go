package interp

import (
	"testing"
	"testing/quick"

	"repro/internal/lang"
)

func mustFunc(t *testing.T, src, name string) *lang.Func {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lang.Analyze(prog); err != nil {
		t.Fatal(err)
	}
	f, ok := prog.FindFunc(name)
	if !ok {
		t.Fatalf("function %s missing", name)
	}
	return f
}

func TestRunSimpleLoop(t *testing.T) {
	f := mustFunc(t, `void f(int[] a, int n) {
	  for (int i = 0; i < n; i = i + 1) { a[i] = i * i; }
	}`, "f")
	a := make([]int64, 8)
	res, err := Run(f, map[string][]int64{"a": a}, map[string]int64{"n": 8}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != int64(i*i) {
			t.Fatalf("a=%v", a)
		}
	}
	if res.Steps == 0 || res.OOBReads != 0 || res.OOBWrites != 0 {
		t.Fatalf("res=%+v", res)
	}
}

func TestRunIfElseAndWhile(t *testing.T) {
	f := mustFunc(t, `void f(int[] a) {
	  int i = 0;
	  while (i < 6) {
	    if (i % 2 == 0) { a[i] = 100 + i; } else { a[i] = -i; }
	    i = i + 1;
	  }
	}`, "f")
	a := make([]int64, 6)
	if _, err := Run(f, map[string][]int64{"a": a}, nil, Options{}); err != nil {
		t.Fatal(err)
	}
	want := []int64{100, -1, 102, -3, 104, -5}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("a=%v want %v", a, want)
		}
	}
}

func TestJavaIntSemantics(t *testing.T) {
	f := mustFunc(t, `void f(int[] r, int a, int b) {
	  r[0] = a + b;
	  r[1] = a - b;
	  r[2] = a * b;
	  r[3] = a / b;
	  r[4] = a % b;
	  r[5] = a >> 1;
	  r[6] = a >>> 1;
	  r[7] = a << 1;
	}`, "f")
	r := make([]int64, 8)
	// a = Integer.MIN_VALUE+1, b = -3: exercises wrap and sign rules.
	a, b := int64(-2147483647), int64(-3)
	if _, err := Run(f, map[string][]int64{"r": r},
		map[string]int64{"a": a, "b": b}, Options{}); err != nil {
		t.Fatal(err)
	}
	want := []int64{
		2147483646,  // MIN+1 + -3 wraps
		-2147483644, // a - b
		2147483645,  // a*b mod 2^32, Java: (-2147483647)*(-3)=6442450941 -> int 2147483645
		715827882,   // a/b truncates toward zero
		-1,          // a%b keeps dividend sign
		-1073741824, // arithmetic shift (sign in)
		1073741824,  // logical shift  (>>> 1 of 0x80000001 = 0x40000000)
		2,           // a<<1 wraps: 0x80000001<<1 = 0x00000002
	}
	for i := range want {
		if r[i] != want[i] {
			t.Errorf("r[%d]=%d want %d", i, r[i], want[i])
		}
	}
}

func TestDivModByZeroDefined(t *testing.T) {
	f := mustFunc(t, `void f(int[] r, int a) { r[0] = a / 0; r[1] = a % 0; }`, "f")
	r := []int64{7, 7}
	if _, err := Run(f, map[string][]int64{"r": r}, map[string]int64{"a": 5}, Options{}); err != nil {
		t.Fatal(err)
	}
	if r[0] != 0 || r[1] != 0 {
		t.Fatalf("r=%v want zeros", r)
	}
}

func TestLogicalOpsProduceBits(t *testing.T) {
	f := mustFunc(t, `void f(int[] r, int a, int b) {
	  r[0] = a && b;
	  r[1] = a || b;
	  r[2] = !a;
	  r[3] = ~a;
	}`, "f")
	r := make([]int64, 4)
	if _, err := Run(f, map[string][]int64{"r": r},
		map[string]int64{"a": 5, "b": 0}, Options{}); err != nil {
		t.Fatal(err)
	}
	if r[0] != 0 || r[1] != 1 || r[2] != 0 || r[3] != -6 {
		t.Fatalf("r=%v", r)
	}
}

func TestOOBAccounting(t *testing.T) {
	f := mustFunc(t, `void f(int[] a) { a[100] = 1; int x = a[200]; a[0] = x + 1; }`, "f")
	a := make([]int64, 4)
	res, err := Run(f, map[string][]int64{"a": a}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.OOBWrites != 1 || res.OOBReads != 1 {
		t.Fatalf("res=%+v", res)
	}
	if a[0] != 1 { // OOB read returns 0
		t.Fatalf("a=%v", a)
	}
}

func TestStepBound(t *testing.T) {
	f := mustFunc(t, `void f() { int i = 0; while (1) { i = i + 1; } }`, "f")
	_, err := Run(f, nil, nil, Options{MaxSteps: 1000})
	if err == nil {
		t.Fatal("expected step bound error")
	}
}

func TestUnboundParams(t *testing.T) {
	f := mustFunc(t, `void f(int[] a, int n) {}`, "f")
	if _, err := Run(f, nil, map[string]int64{"n": 1}, Options{}); err == nil {
		t.Fatal("missing array must error")
	}
	if _, err := Run(f, map[string][]int64{"a": {}}, nil, Options{}); err == nil {
		t.Fatal("missing scalar must error")
	}
}

func TestPartitionMarkerIsSequential(t *testing.T) {
	f := mustFunc(t, `void f(int[] a, int[] b) {
	  for (int i = 0; i < 4; i = i + 1) { b[i] = a[i] * 3; }
	  partition;
	  for (int j = 0; j < 4; j = j + 1) { a[j] = b[j] + 1; }
	}`, "f")
	a := []int64{1, 2, 3, 4}
	b := make([]int64, 4)
	if _, err := Run(f, map[string][]int64{"a": a, "b": b}, nil, Options{}); err != nil {
		t.Fatal(err)
	}
	if a[3] != 13 || b[3] != 12 {
		t.Fatalf("a=%v b=%v", a, b)
	}
}

func TestInterpreterMatchesGoIntArithmeticProperty(t *testing.T) {
	// Property: for random int32 pairs, MiniJ expression evaluation
	// matches direct Go int32 arithmetic for + - * and comparisons.
	f := mustFunc(t, `void f(int[] r, int a, int b) {
	  r[0] = a + b;
	  r[1] = a - b;
	  r[2] = a * b;
	  r[3] = a < b;
	  r[4] = (a ^ b) & 0xFF;
	}`, "f")
	prop := func(a, b int32) bool {
		r := make([]int64, 5)
		if _, err := Run(f, map[string][]int64{"r": r},
			map[string]int64{"a": int64(a), "b": int64(b)}, Options{}); err != nil {
			return false
		}
		lt := int64(0)
		if a < b {
			lt = 1
		}
		return r[0] == int64(a+b) && r[1] == int64(a-b) && r[2] == int64(a*b) &&
			r[3] == lt && r[4] == int64((a^b)&0xFF)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
