// Package interp executes MiniJ programs directly over the memory
// contents — the golden reference of the verification flow. The paper
// runs the original Java algorithm against the same I/O files and
// compares memory contents after simulation; this interpreter plays the
// role of that Java execution.
//
// Semantics deliberately mirror the operator library bit-for-bit
// (internal/operators Word* functions at width 32): two's-complement
// wrap-around, Java shift/remainder behaviour, division by zero yielding
// zero. Any divergence between interpreter and datapath is a bug the
// comparison step must be able to attribute to the compiler, not to the
// reference.
package interp

import (
	"fmt"

	"repro/internal/hades"
	"repro/internal/lang"
	"repro/internal/operators"
)

// Options bounds interpretation.
type Options struct {
	MaxSteps uint64 // statement execution bound; default 100M
}

// Result reports an interpretation.
type Result struct {
	Steps     uint64 // statements executed
	OOBReads  uint64 // out-of-bounds array reads (read as 0)
	OOBWrites uint64 // out-of-bounds array writes (ignored)
}

// ErrStepBound is returned when MaxSteps is exceeded.
var ErrStepBound = fmt.Errorf("interp: step bound exceeded (non-terminating loop?)")

type machine struct {
	arrays  map[string][]int64
	scalars map[string]int64
	res     Result
	max     uint64
}

// Run executes function f with the given array bindings (mutated in
// place, as the SRAMs are) and scalar argument values.
func Run(f *lang.Func, arrays map[string][]int64, scalarArgs map[string]int64, opts Options) (*Result, error) {
	max := opts.MaxSteps
	if max == 0 {
		max = 100_000_000
	}
	m := &machine{arrays: map[string][]int64{}, scalars: map[string]int64{}, max: max}
	for _, p := range f.Params {
		if p.IsArray {
			arr, ok := arrays[p.Name]
			if !ok {
				return nil, fmt.Errorf("interp: array parameter %q not bound", p.Name)
			}
			m.arrays[p.Name] = arr
		} else {
			v, ok := scalarArgs[p.Name]
			if !ok {
				return nil, fmt.Errorf("interp: scalar parameter %q not bound", p.Name)
			}
			m.scalars[p.Name] = w32(v)
		}
	}
	if err := m.execBlock(f.Body); err != nil {
		return nil, err
	}
	return &m.res, nil
}

// w32 normalises a value to Java int range, exactly as a 32-bit signal
// stores it.
func w32(v int64) int64 { return hades.SignExtend(hades.Mask(uint64(v), 32), 32) }

func (m *machine) step() error {
	m.res.Steps++
	if m.res.Steps > m.max {
		return ErrStepBound
	}
	return nil
}

func (m *machine) execBlock(stmts []lang.Stmt) error {
	for _, s := range stmts {
		if err := m.exec(s); err != nil {
			return err
		}
	}
	return nil
}

func (m *machine) exec(s lang.Stmt) error {
	if err := m.step(); err != nil {
		return err
	}
	switch st := s.(type) {
	case *lang.PartitionStmt:
		// Sequential execution spans all temporal partitions.
		return nil
	case *lang.DeclStmt:
		v := int64(0)
		if st.Init != nil {
			var err error
			v, err = m.eval(st.Init)
			if err != nil {
				return err
			}
		}
		m.scalars[st.Name] = v
		return nil
	case *lang.AssignStmt:
		v, err := m.eval(st.Expr)
		if err != nil {
			return err
		}
		m.scalars[st.Name] = v
		return nil
	case *lang.StoreStmt:
		idx, err := m.eval(st.Index)
		if err != nil {
			return err
		}
		v, err := m.eval(st.Expr)
		if err != nil {
			return err
		}
		arr := m.arrays[st.Array]
		if idx < 0 || idx >= int64(len(arr)) {
			m.res.OOBWrites++
			return nil
		}
		arr[idx] = v
		return nil
	case *lang.IfStmt:
		c, err := m.eval(st.Cond)
		if err != nil {
			return err
		}
		if c != 0 {
			return m.execBlock(st.Then)
		}
		return m.execBlock(st.Else)
	case *lang.WhileStmt:
		for {
			c, err := m.eval(st.Cond)
			if err != nil {
				return err
			}
			if c == 0 {
				return nil
			}
			if err := m.execBlock(st.Body); err != nil {
				return err
			}
			if err := m.step(); err != nil {
				return err
			}
		}
	case *lang.ForStmt:
		if st.Init != nil {
			if err := m.exec(st.Init); err != nil {
				return err
			}
		}
		for {
			if st.Cond != nil {
				c, err := m.eval(st.Cond)
				if err != nil {
					return err
				}
				if c == 0 {
					return nil
				}
			}
			if err := m.execBlock(st.Body); err != nil {
				return err
			}
			if st.Post != nil {
				if err := m.exec(st.Post); err != nil {
					return err
				}
			}
			if err := m.step(); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("interp: unknown statement %T", s)
	}
}

func (m *machine) eval(e lang.Expr) (int64, error) {
	switch ex := e.(type) {
	case *lang.IntLit:
		return w32(ex.Val), nil
	case *lang.VarRef:
		return m.scalars[ex.Name], nil
	case *lang.IndexExpr:
		idx, err := m.eval(ex.Index)
		if err != nil {
			return 0, err
		}
		arr := m.arrays[ex.Array]
		if idx < 0 || idx >= int64(len(arr)) {
			m.res.OOBReads++
			return 0, nil
		}
		return w32(arr[idx]), nil
	case *lang.UnaryExpr:
		x, err := m.eval(ex.X)
		if err != nil {
			return 0, err
		}
		switch ex.Op {
		case lang.OpNeg:
			return w32(operators.WordNeg(x, 32)), nil
		case lang.OpBNot:
			return w32(operators.WordNot(x, 32)), nil
		case lang.OpLNot:
			return operators.WordLNot(x, 32), nil
		}
		return 0, fmt.Errorf("interp: unknown unary %q", ex.Op)
	case *lang.BinaryExpr:
		l, err := m.eval(ex.L)
		if err != nil {
			return 0, err
		}
		r, err := m.eval(ex.R)
		if err != nil {
			return 0, err
		}
		fn, ok := BinFuncs[ex.Op]
		if !ok {
			return 0, fmt.Errorf("interp: unknown binary %q", ex.Op)
		}
		return w32(fn(l, r, 32)), nil
	default:
		return 0, fmt.Errorf("interp: unknown expression %T", e)
	}
}

// BinFuncs maps MiniJ binary operators to the operator-library word
// functions; the compiler uses the same table to pick functional-unit
// types, which is what keeps reference and hardware semantics identical.
var BinFuncs = map[lang.BinOp]operators.BinaryFn{
	lang.OpAdd:  operators.WordAdd,
	lang.OpSub:  operators.WordSub,
	lang.OpMul:  operators.WordMul,
	lang.OpDiv:  operators.WordDiv,
	lang.OpMod:  operators.WordMod,
	lang.OpShl:  operators.WordShl,
	lang.OpShr:  operators.WordSra,
	lang.OpUshr: operators.WordShr,
	lang.OpAnd:  operators.WordAnd,
	lang.OpOr:   operators.WordOr,
	lang.OpXor:  operators.WordXor,
	lang.OpEq:   operators.WordEq,
	lang.OpNe:   operators.WordNe,
	lang.OpLt:   operators.WordLt,
	lang.OpLe:   operators.WordLe,
	lang.OpGt:   operators.WordGt,
	lang.OpGe:   operators.WordGe,
	lang.OpLAnd: logicalAnd,
	lang.OpLOr:  logicalOr,
}

// logicalAnd is non-short-circuit &&: (a!=0) & (b!=0). MiniJ expressions
// have no side effects, so eager evaluation is observationally identical;
// the compiler lowers && the same way (ne/ne/and operators).
func logicalAnd(a, b int64, _ int) int64 {
	if a != 0 && b != 0 {
		return 1
	}
	return 0
}

// logicalOr is non-short-circuit ||.
func logicalOr(a, b int64, _ int) int64 {
	if a != 0 || b != 0 {
		return 1
	}
	return 0
}
