// Package lang implements MiniJ, the Java-like subset the reproduction's
// compiler accepts — standing in for the Java algorithms Galadriel & Nenya
// compile. MiniJ has 32-bit int scalars and int arrays, the full Java
// integer operator set, if/while/for control flow, and an explicit
// `partition;` marker for temporal partitioning.
package lang

import "fmt"

// TokenKind enumerates lexical token kinds.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokInt

	// Keywords.
	TokKwVoid
	TokKwInt
	TokKwIf
	TokKwElse
	TokKwWhile
	TokKwFor
	TokKwPartition

	// Punctuation.
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokLBracket
	TokRBracket
	TokComma
	TokSemicolon

	// Operators.
	TokAssign // =
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokPercent
	TokShl  // <<
	TokShr  // >>  (arithmetic, as in Java)
	TokUshr // >>> (logical, as in Java)
	TokAmp
	TokPipe
	TokCaret
	TokTilde
	TokBang
	TokAndAnd
	TokOrOr
	TokEq // ==
	TokNe // !=
	TokLt
	TokLe
	TokGt
	TokGe
)

var tokenNames = map[TokenKind]string{
	TokEOF: "end of file", TokIdent: "identifier", TokInt: "integer literal",
	TokKwVoid: "void", TokKwInt: "int", TokKwIf: "if", TokKwElse: "else",
	TokKwWhile: "while", TokKwFor: "for", TokKwPartition: "partition",
	TokLParen: "(", TokRParen: ")", TokLBrace: "{", TokRBrace: "}",
	TokLBracket: "[", TokRBracket: "]", TokComma: ",", TokSemicolon: ";",
	TokAssign: "=", TokPlus: "+", TokMinus: "-", TokStar: "*",
	TokSlash: "/", TokPercent: "%", TokShl: "<<", TokShr: ">>", TokUshr: ">>>",
	TokAmp: "&", TokPipe: "|", TokCaret: "^", TokTilde: "~", TokBang: "!",
	TokAndAnd: "&&", TokOrOr: "||", TokEq: "==", TokNe: "!=",
	TokLt: "<", TokLe: "<=", TokGt: ">", TokGe: ">=",
}

// String names the kind for error messages.
func (k TokenKind) String() string {
	if s, ok := tokenNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// Pos is a source position.
type Pos struct {
	Line int
	Col  int
}

// String renders "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind TokenKind
	Lit  string // identifier text or literal digits
	Val  int64  // TokInt value
	Pos  Pos
}

var keywords = map[string]TokenKind{
	"void":      TokKwVoid,
	"int":       TokKwInt,
	"if":        TokKwIf,
	"else":      TokKwElse,
	"while":     TokKwWhile,
	"for":       TokKwFor,
	"partition": TokKwPartition,
}
