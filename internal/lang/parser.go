package lang

import "fmt"

// Parser builds the AST by recursive descent.
type Parser struct {
	toks []Token
	pos  int
}

// Parse tokenises and parses a MiniJ compilation unit.
func Parse(src string) (*Program, error) {
	toks, err := Tokens(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	prog := &Program{}
	for p.cur().Kind != TokEOF {
		f, err := p.parseFunc()
		if err != nil {
			return nil, err
		}
		prog.Funcs = append(prog.Funcs, f)
	}
	if len(prog.Funcs) == 0 {
		return nil, fmt.Errorf("lang: empty program")
	}
	return prog, nil
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) expect(kind TokenKind) (Token, error) {
	t := p.cur()
	if t.Kind != kind {
		return t, fmt.Errorf("lang: %s: expected %s, found %s", t.Pos, kind, describe(t))
	}
	p.pos++
	return t, nil
}

func describe(t Token) string {
	if t.Lit != "" {
		return fmt.Sprintf("%s %q", t.Kind, t.Lit)
	}
	return t.Kind.String()
}

func (p *Parser) parseFunc() (*Func, error) {
	start, err := p.expect(TokKwVoid)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	f := &Func{Name: name.Lit, Pos: start.Pos}
	if p.cur().Kind != TokRParen {
		for {
			param, err := p.parseParam()
			if err != nil {
				return nil, err
			}
			f.Params = append(f.Params, param)
			if p.cur().Kind != TokComma {
				break
			}
			p.next()
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

func (p *Parser) parseParam() (*Param, error) {
	kw, err := p.expect(TokKwInt)
	if err != nil {
		return nil, err
	}
	isArray := false
	if p.cur().Kind == TokLBracket {
		p.next()
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		isArray = true
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	return &Param{Name: name.Lit, IsArray: isArray, Pos: kw.Pos}, nil
}

func (p *Parser) parseBlock() ([]Stmt, error) {
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for p.cur().Kind != TokRBrace {
		if p.cur().Kind == TokEOF {
			return nil, fmt.Errorf("lang: %s: unterminated block", p.cur().Pos)
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	p.next() // }
	return stmts, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	switch p.cur().Kind {
	case TokKwInt:
		s, err := p.parseDecl()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemicolon); err != nil {
			return nil, err
		}
		return s, nil
	case TokKwIf:
		return p.parseIf()
	case TokKwWhile:
		return p.parseWhile()
	case TokKwFor:
		return p.parseFor()
	case TokKwPartition:
		t := p.next()
		if _, err := p.expect(TokSemicolon); err != nil {
			return nil, err
		}
		return &PartitionStmt{Pos: t.Pos}, nil
	case TokIdent:
		s, err := p.parseAssignOrStore()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemicolon); err != nil {
			return nil, err
		}
		return s, nil
	default:
		return nil, fmt.Errorf("lang: %s: unexpected %s at statement start", p.cur().Pos, describe(p.cur()))
	}
}

func (p *Parser) parseDecl() (Stmt, error) {
	kw := p.next() // int
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	d := &DeclStmt{Name: name.Lit, Pos: kw.Pos}
	if p.cur().Kind == TokAssign {
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Init = e
	}
	return d, nil
}

func (p *Parser) parseAssignOrStore() (Stmt, error) {
	name := p.next()
	switch p.cur().Kind {
	case TokAssign:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Name: name.Lit, Expr: e, Pos: name.Pos}, nil
	case TokLBracket:
		p.next()
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokAssign); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &StoreStmt{Array: name.Lit, Index: idx, Expr: e, Pos: name.Pos}, nil
	default:
		return nil, fmt.Errorf("lang: %s: expected = or [ after %q", p.cur().Pos, name.Lit)
	}
}

func (p *Parser) parseIf() (Stmt, error) {
	kw := p.next()
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Cond: cond, Then: then, Pos: kw.Pos}
	if p.cur().Kind == TokKwElse {
		p.next()
		if p.cur().Kind == TokKwIf {
			elif, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			s.Else = []Stmt{elif}
		} else {
			els, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			s.Else = els
		}
	}
	return s, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	kw := p.next()
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body, Pos: kw.Pos}, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	kw := p.next()
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	s := &ForStmt{Pos: kw.Pos}
	if p.cur().Kind != TokSemicolon {
		var init Stmt
		var err error
		if p.cur().Kind == TokKwInt {
			init, err = p.parseDecl()
		} else {
			init, err = p.parseAssignOrStore()
		}
		if err != nil {
			return nil, err
		}
		switch init.(type) {
		case *DeclStmt, *AssignStmt:
		default:
			return nil, fmt.Errorf("lang: %s: for-init must be a declaration or scalar assignment", kw.Pos)
		}
		s.Init = init
	}
	if _, err := p.expect(TokSemicolon); err != nil {
		return nil, err
	}
	if p.cur().Kind != TokSemicolon {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Cond = cond
	}
	if _, err := p.expect(TokSemicolon); err != nil {
		return nil, err
	}
	if p.cur().Kind != TokRParen {
		post, err := p.parseAssignOrStore()
		if err != nil {
			return nil, err
		}
		if _, ok := post.(*AssignStmt); !ok {
			return nil, fmt.Errorf("lang: %s: for-post must be a scalar assignment", kw.Pos)
		}
		s.Post = post
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	s.Body = body
	return s, nil
}

// Expression parsing: precedence climbing matching Java.

func (p *Parser) parseExpr() (Expr, error) { return p.parseLOr() }

func (p *Parser) binLevel(sub func() (Expr, error), ops map[TokenKind]BinOp) (Expr, error) {
	l, err := sub()
	if err != nil {
		return nil, err
	}
	for {
		op, ok := ops[p.cur().Kind]
		if !ok {
			return l, nil
		}
		pos := p.next().Pos
		r, err := sub()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r, Pos: pos}
	}
}

func (p *Parser) parseLOr() (Expr, error) {
	return p.binLevel(p.parseLAnd, map[TokenKind]BinOp{TokOrOr: OpLOr})
}

func (p *Parser) parseLAnd() (Expr, error) {
	return p.binLevel(p.parseBitOr, map[TokenKind]BinOp{TokAndAnd: OpLAnd})
}

func (p *Parser) parseBitOr() (Expr, error) {
	return p.binLevel(p.parseBitXor, map[TokenKind]BinOp{TokPipe: OpOr})
}

func (p *Parser) parseBitXor() (Expr, error) {
	return p.binLevel(p.parseBitAnd, map[TokenKind]BinOp{TokCaret: OpXor})
}

func (p *Parser) parseBitAnd() (Expr, error) {
	return p.binLevel(p.parseEquality, map[TokenKind]BinOp{TokAmp: OpAnd})
}

func (p *Parser) parseEquality() (Expr, error) {
	return p.binLevel(p.parseRelational, map[TokenKind]BinOp{TokEq: OpEq, TokNe: OpNe})
}

func (p *Parser) parseRelational() (Expr, error) {
	return p.binLevel(p.parseShift, map[TokenKind]BinOp{
		TokLt: OpLt, TokLe: OpLe, TokGt: OpGt, TokGe: OpGe,
	})
}

func (p *Parser) parseShift() (Expr, error) {
	return p.binLevel(p.parseAdditive, map[TokenKind]BinOp{
		TokShl: OpShl, TokShr: OpShr, TokUshr: OpUshr,
	})
}

func (p *Parser) parseAdditive() (Expr, error) {
	return p.binLevel(p.parseMultiplicative, map[TokenKind]BinOp{
		TokPlus: OpAdd, TokMinus: OpSub,
	})
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	return p.binLevel(p.parseUnary, map[TokenKind]BinOp{
		TokStar: OpMul, TokSlash: OpDiv, TokPercent: OpMod,
	})
}

func (p *Parser) parseUnary() (Expr, error) {
	switch p.cur().Kind {
	case TokMinus:
		pos := p.next().Pos
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: OpNeg, X: x, Pos: pos}, nil
	case TokTilde:
		pos := p.next().Pos
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: OpBNot, X: x, Pos: pos}, nil
	case TokBang:
		pos := p.next().Pos
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: OpLNot, X: x, Pos: pos}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	switch p.cur().Kind {
	case TokInt:
		t := p.next()
		return &IntLit{Val: t.Val, Pos: t.Pos}, nil
	case TokIdent:
		t := p.next()
		if p.cur().Kind == TokLBracket {
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			return &IndexExpr{Array: t.Lit, Index: idx, Pos: t.Pos}, nil
		}
		return &VarRef{Name: t.Lit, Pos: t.Pos}, nil
	case TokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, fmt.Errorf("lang: %s: unexpected %s in expression", p.cur().Pos, describe(p.cur()))
	}
}
