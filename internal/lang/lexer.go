package lang

import (
	"fmt"
	"strconv"
)

// Lexer tokenises MiniJ source. It supports //-line and /* */ block
// comments, decimal and 0x hexadecimal literals.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src, line: 1, col: 1} }

// Tokens lexes the whole input, ending with a TokEOF token.
func Tokens(src string) ([]Token, error) {
	lx := NewLexer(src)
	var out []Token
	for {
		tok, err := lx.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, tok)
		if tok.Kind == TokEOF {
			return out, nil
		}
	}
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := Pos{l.line, l.col}
			l.advance()
			l.advance()
			for {
				if l.pos >= len(l.src) {
					return fmt.Errorf("lang: %s: unterminated block comment", start)
				}
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := Pos{l.line, l.col}
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := l.peek()

	switch {
	case isLetter(c):
		start := l.pos
		for l.pos < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		lit := l.src[start:l.pos]
		if kw, ok := keywords[lit]; ok {
			return Token{Kind: kw, Lit: lit, Pos: pos}, nil
		}
		return Token{Kind: TokIdent, Lit: lit, Pos: pos}, nil

	case isDigit(c):
		start := l.pos
		base := 10
		if c == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
			l.advance()
			l.advance()
			base = 16
			for l.pos < len(l.src) && isHexDigit(l.peek()) {
				l.advance()
			}
		} else {
			for l.pos < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
		lit := l.src[start:l.pos]
		digits := lit
		if base == 16 {
			digits = lit[2:]
		}
		if digits == "" {
			return Token{}, fmt.Errorf("lang: %s: malformed number %q", pos, lit)
		}
		v, err := strconv.ParseUint(digits, base, 64)
		if err != nil {
			return Token{}, fmt.Errorf("lang: %s: malformed number %q: %v", pos, lit, err)
		}
		if base == 10 && v > 1<<31 {
			return Token{}, fmt.Errorf("lang: %s: literal %q exceeds 32-bit int", pos, lit)
		}
		if base == 16 && v > 0xFFFFFFFF {
			return Token{}, fmt.Errorf("lang: %s: literal %q exceeds 32-bit int", pos, lit)
		}
		return Token{Kind: TokInt, Lit: lit, Val: int64(int32(uint32(v))), Pos: pos}, nil
	}

	l.advance()
	two := func(next byte, kind2 TokenKind, kind1 TokenKind) Token {
		if l.peek() == next {
			l.advance()
			return Token{Kind: kind2, Pos: pos}
		}
		return Token{Kind: kind1, Pos: pos}
	}
	switch c {
	case '(':
		return Token{Kind: TokLParen, Pos: pos}, nil
	case ')':
		return Token{Kind: TokRParen, Pos: pos}, nil
	case '{':
		return Token{Kind: TokLBrace, Pos: pos}, nil
	case '}':
		return Token{Kind: TokRBrace, Pos: pos}, nil
	case '[':
		return Token{Kind: TokLBracket, Pos: pos}, nil
	case ']':
		return Token{Kind: TokRBracket, Pos: pos}, nil
	case ',':
		return Token{Kind: TokComma, Pos: pos}, nil
	case ';':
		return Token{Kind: TokSemicolon, Pos: pos}, nil
	case '+':
		return Token{Kind: TokPlus, Pos: pos}, nil
	case '-':
		return Token{Kind: TokMinus, Pos: pos}, nil
	case '*':
		return Token{Kind: TokStar, Pos: pos}, nil
	case '/':
		return Token{Kind: TokSlash, Pos: pos}, nil
	case '%':
		return Token{Kind: TokPercent, Pos: pos}, nil
	case '~':
		return Token{Kind: TokTilde, Pos: pos}, nil
	case '^':
		return Token{Kind: TokCaret, Pos: pos}, nil
	case '=':
		return two('=', TokEq, TokAssign), nil
	case '!':
		return two('=', TokNe, TokBang), nil
	case '&':
		return two('&', TokAndAnd, TokAmp), nil
	case '|':
		return two('|', TokOrOr, TokPipe), nil
	case '<':
		if l.peek() == '<' {
			l.advance()
			return Token{Kind: TokShl, Pos: pos}, nil
		}
		return two('=', TokLe, TokLt), nil
	case '>':
		if l.peek() == '>' {
			l.advance()
			if l.peek() == '>' {
				l.advance()
				return Token{Kind: TokUshr, Pos: pos}, nil
			}
			return Token{Kind: TokShr, Pos: pos}, nil
		}
		return two('=', TokGe, TokGt), nil
	}
	return Token{}, fmt.Errorf("lang: %s: unexpected character %q", pos, string(c))
}

func isLetter(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || ('a' <= c && c <= 'f') || ('A' <= c && c <= 'F')
}
