package lang

import "fmt"

// FuncInfo summarises a function after semantic analysis.
type FuncInfo struct {
	Name       string
	Arrays     []string // array parameters, in declaration order
	ScalarArgs []string // scalar parameters, in declaration order
	Partitions int      // number of temporal partitions (markers + 1)
}

// Info is the semantic analysis result.
type Info struct {
	Funcs map[string]*FuncInfo
}

type symKind int

const (
	symScalar symKind = iota
	symArray
	symScalarParam // scalar parameter: read-only (compiled to a constant)
)

type scope struct {
	parent *scope
	syms   map[string]symKind
}

func (s *scope) lookup(name string) (symKind, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if k, ok := cur.syms[name]; ok {
			return k, true
		}
	}
	return 0, false
}

func (s *scope) declare(name string, k symKind, pos Pos) error {
	if _, exists := s.lookup(name); exists {
		return fmt.Errorf("lang: %s: %q already declared (shadowing is not allowed)", pos, name)
	}
	s.syms[name] = k
	return nil
}

type analyzer struct {
	arrays map[string]bool // array params (visible across partitions)
}

// Analyze performs semantic checking on the whole program: declaration
// before use, scalar/array usage discipline, partition marker placement,
// and the rule that scalars do not cross temporal partitions (partitions
// communicate only through the array parameters, which become the shared
// SRAMs of the RTG).
func Analyze(prog *Program) (*Info, error) {
	info := &Info{Funcs: map[string]*FuncInfo{}}
	for _, f := range prog.Funcs {
		if _, dup := info.Funcs[f.Name]; dup {
			return nil, fmt.Errorf("lang: %s: duplicate function %q", f.Pos, f.Name)
		}
		fi, err := analyzeFunc(f)
		if err != nil {
			return nil, err
		}
		info.Funcs[f.Name] = fi
	}
	return info, nil
}

func analyzeFunc(f *Func) (*FuncInfo, error) {
	a := &analyzer{arrays: map[string]bool{}}
	fi := &FuncInfo{Name: f.Name, Partitions: 1}
	top := &scope{syms: map[string]symKind{}}
	for _, p := range f.Params {
		k := symScalarParam
		if p.IsArray {
			k = symArray
			a.arrays[p.Name] = true
			fi.Arrays = append(fi.Arrays, p.Name)
		} else {
			fi.ScalarArgs = append(fi.ScalarArgs, p.Name)
		}
		if err := top.declare(p.Name, k, p.Pos); err != nil {
			return nil, err
		}
	}

	// Each partition gets a fresh scalar scope over the shared parameter
	// scope, enforcing the no-scalars-across-partitions rule.
	part := &scope{parent: top, syms: map[string]symKind{}}
	for _, s := range f.Body {
		if marker, ok := s.(*PartitionStmt); ok {
			_ = marker
			fi.Partitions++
			part = &scope{parent: top, syms: map[string]symKind{}}
			continue
		}
		if err := a.checkStmt(s, part, true); err != nil {
			return nil, err
		}
	}
	return fi, nil
}

func (a *analyzer) checkStmt(s Stmt, sc *scope, topLevel bool) error {
	switch st := s.(type) {
	case *PartitionStmt:
		return fmt.Errorf("lang: %s: partition markers are only allowed at function top level", st.Pos)
	case *DeclStmt:
		if st.Init != nil {
			if err := a.checkExpr(st.Init, sc); err != nil {
				return err
			}
		}
		return sc.declare(st.Name, symScalar, st.Pos)
	case *AssignStmt:
		k, ok := sc.lookup(st.Name)
		if !ok {
			return fmt.Errorf("lang: %s: assignment to undeclared %q", st.Pos, st.Name)
		}
		if k == symArray {
			return fmt.Errorf("lang: %s: cannot assign to array %q without an index", st.Pos, st.Name)
		}
		if k == symScalarParam {
			return fmt.Errorf("lang: %s: cannot assign to scalar parameter %q (parameters are design constants)", st.Pos, st.Name)
		}
		return a.checkExpr(st.Expr, sc)
	case *StoreStmt:
		k, ok := sc.lookup(st.Array)
		if !ok {
			return fmt.Errorf("lang: %s: store to undeclared %q", st.Pos, st.Array)
		}
		if k != symArray {
			return fmt.Errorf("lang: %s: %q is not an array", st.Pos, st.Array)
		}
		if err := a.checkExpr(st.Index, sc); err != nil {
			return err
		}
		return a.checkExpr(st.Expr, sc)
	case *IfStmt:
		if err := a.checkExpr(st.Cond, sc); err != nil {
			return err
		}
		inner := &scope{parent: sc, syms: map[string]symKind{}}
		for _, sub := range st.Then {
			if err := a.checkStmt(sub, inner, false); err != nil {
				return err
			}
		}
		inner = &scope{parent: sc, syms: map[string]symKind{}}
		for _, sub := range st.Else {
			if err := a.checkStmt(sub, inner, false); err != nil {
				return err
			}
		}
		return nil
	case *WhileStmt:
		if err := a.checkExpr(st.Cond, sc); err != nil {
			return err
		}
		inner := &scope{parent: sc, syms: map[string]symKind{}}
		for _, sub := range st.Body {
			if err := a.checkStmt(sub, inner, false); err != nil {
				return err
			}
		}
		return nil
	case *ForStmt:
		header := &scope{parent: sc, syms: map[string]symKind{}}
		if st.Init != nil {
			if err := a.checkStmt(st.Init, header, false); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			if err := a.checkExpr(st.Cond, header); err != nil {
				return err
			}
		}
		if st.Post != nil {
			if err := a.checkStmt(st.Post, header, false); err != nil {
				return err
			}
		}
		inner := &scope{parent: header, syms: map[string]symKind{}}
		for _, sub := range st.Body {
			if err := a.checkStmt(sub, inner, false); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("lang: unknown statement %T", s)
	}
}

func (a *analyzer) checkExpr(e Expr, sc *scope) error {
	switch ex := e.(type) {
	case *IntLit:
		return nil
	case *VarRef:
		k, ok := sc.lookup(ex.Name)
		if !ok {
			return fmt.Errorf("lang: %s: undeclared variable %q", ex.Pos, ex.Name)
		}
		if k == symArray {
			return fmt.Errorf("lang: %s: array %q used without an index", ex.Pos, ex.Name)
		}
		return nil
	case *IndexExpr:
		k, ok := sc.lookup(ex.Array)
		if !ok {
			return fmt.Errorf("lang: %s: undeclared array %q", ex.Pos, ex.Array)
		}
		if k != symArray {
			return fmt.Errorf("lang: %s: %q is not an array", ex.Pos, ex.Array)
		}
		return a.checkExpr(ex.Index, sc)
	case *UnaryExpr:
		return a.checkExpr(ex.X, sc)
	case *BinaryExpr:
		if err := a.checkExpr(ex.L, sc); err != nil {
			return err
		}
		return a.checkExpr(ex.R, sc)
	default:
		return fmt.Errorf("lang: unknown expression %T", e)
	}
}
