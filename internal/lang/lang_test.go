package lang

import (
	"strings"
	"testing"
)

func TestLexerBasics(t *testing.T) {
	toks, err := Tokens("void f(int[] a, int n) { a[0] = n + 0x1F; } // tail")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokenKind{
		TokKwVoid, TokIdent, TokLParen, TokKwInt, TokLBracket, TokRBracket,
		TokIdent, TokComma, TokKwInt, TokIdent, TokRParen, TokLBrace,
		TokIdent, TokLBracket, TokInt, TokRBracket, TokAssign, TokIdent,
		TokPlus, TokInt, TokSemicolon, TokRBrace, TokEOF,
	}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens want %d", len(toks), len(kinds))
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Fatalf("token %d: %v want %v", i, toks[i].Kind, k)
		}
	}
	if toks[19].Val != 0x1F {
		t.Fatalf("hex literal=%d", toks[19].Val)
	}
}

func TestLexerOperators(t *testing.T) {
	toks, err := Tokens("<< >> >>> <= >= == != && || & | ^ ~ ! < >")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{
		TokShl, TokShr, TokUshr, TokLe, TokGe, TokEq, TokNe, TokAndAnd,
		TokOrOr, TokAmp, TokPipe, TokCaret, TokTilde, TokBang, TokLt, TokGt, TokEOF,
	}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Fatalf("token %d: %v want %v", i, toks[i].Kind, k)
		}
	}
}

func TestLexerComments(t *testing.T) {
	toks, err := Tokens("/* block\n comment */ x // line\n y")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[0].Lit != "x" || toks[1].Lit != "y" {
		t.Fatalf("toks=%v", toks)
	}
	if toks[1].Pos.Line != 3 {
		t.Fatalf("y at line %d want 3", toks[1].Pos.Line)
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"@", "/* open", "99999999999999999999", "3000000000", "0x1FFFFFFFF"} {
		if _, err := Tokens(src); err == nil {
			t.Errorf("Tokens(%q) must fail", src)
		}
	}
}

func TestLexerNegativeBoundaryLiteral(t *testing.T) {
	// 2147483648 alone exceeds int but is accepted as magnitude for
	// unary minus handling at parse level: the lexer allows up to 1<<31.
	toks, err := Tokens("2147483648")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Val != -2147483648 {
		t.Fatalf("val=%d", toks[0].Val)
	}
}

const fdctLikeSrc = `
// Row pass then column pass with a partition boundary.
void f(int[] img, int[] tmp, int[] out) {
  int i;
  for (i = 0; i < 8; i = i + 1) {
    tmp[i] = img[i] * 2;
  }
  partition;
  int j;
  for (j = 0; j < 8; j = j + 1) {
    out[j] = tmp[j] + 1;
  }
}
`

func TestParseProgram(t *testing.T) {
	prog, err := Parse(fdctLikeSrc)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := prog.FindFunc("f")
	if !ok {
		t.Fatal("function f missing")
	}
	if len(f.Params) != 3 || !f.Params[0].IsArray {
		t.Fatalf("params=%+v", f.Params)
	}
	if len(f.Body) != 5 { // decl, for, partition, decl, for
		t.Fatalf("body has %d stmts", len(f.Body))
	}
	if _, ok := f.Body[2].(*PartitionStmt); !ok {
		t.Fatalf("stmt 2 is %T", f.Body[2])
	}
	loop, ok := f.Body[1].(*ForStmt)
	if !ok {
		t.Fatalf("stmt 1 is %T", f.Body[1])
	}
	if _, ok := loop.Body[0].(*StoreStmt); !ok {
		t.Fatalf("loop body is %T", loop.Body[0])
	}
}

func TestParsePrecedence(t *testing.T) {
	prog, err := Parse("void f(int a, int b, int c) { int x = a + b * c << 1 & 3; }")
	if err != nil {
		t.Fatal(err)
	}
	decl := prog.Funcs[0].Body[0].(*DeclStmt)
	// & is lowest here: ((a + (b*c)) << 1) & 3
	and, ok := decl.Init.(*BinaryExpr)
	if !ok || and.Op != OpAnd {
		t.Fatalf("root=%+v", decl.Init)
	}
	shl, ok := and.L.(*BinaryExpr)
	if !ok || shl.Op != OpShl {
		t.Fatalf("left=%+v", and.L)
	}
	add, ok := shl.L.(*BinaryExpr)
	if !ok || add.Op != OpAdd {
		t.Fatalf("shl.L=%+v", shl.L)
	}
	mul, ok := add.R.(*BinaryExpr)
	if !ok || mul.Op != OpMul {
		t.Fatalf("add.R=%+v", add.R)
	}
}

func TestParseIfElseChain(t *testing.T) {
	src := `void f(int a, int b) {
	  int x = 0;
	  if (a < b) { x = 1; } else if (a == b) { x = 2; } else { x = 3; }
	}`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	iff := prog.Funcs[0].Body[1].(*IfStmt)
	if len(iff.Else) != 1 {
		t.Fatalf("else=%d", len(iff.Else))
	}
	if _, ok := iff.Else[0].(*IfStmt); !ok {
		t.Fatalf("else[0]=%T", iff.Else[0])
	}
}

func TestParseWhileAndUnary(t *testing.T) {
	src := `void f(int n) { int i = 0; while (!(i >= n)) { i = i + 1; } int y = -i + ~n; }`
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src    string
		expect string
	}{
		{"", "empty program"},
		{"void f( { }", "expected"},
		{"void f() { x = ; }", "unexpected"},
		{"void f() { int 3; }", "expected identifier"},
		{"void f() { if (1) x = 2; }", "expected {"},
		{"void f() { for (a[0]=1;;) {} }", "for-init"},
		{"void f(int[] a) { for (;;a[0]=1) {} }", "for-post"},
		{"void f() { x = 1 }", "expected ;"},
		{"void f() {", "unterminated block"},
		{"int f() {}", "expected void"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) must fail", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.expect) {
			t.Errorf("Parse(%q): error %q does not mention %q", c.src, err, c.expect)
		}
	}
}

func TestAnalyzeAcceptsGood(t *testing.T) {
	prog, err := Parse(fdctLikeSrc)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	fi := info.Funcs["f"]
	if fi.Partitions != 2 {
		t.Fatalf("partitions=%d", fi.Partitions)
	}
	if len(fi.Arrays) != 3 || fi.Arrays[0] != "img" {
		t.Fatalf("arrays=%v", fi.Arrays)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	cases := []struct {
		src    string
		expect string
	}{
		{"void f() { x = 1; }", "undeclared"},
		{"void f() { int x; int x; }", "already declared"},
		{"void f(int a) { int a; }", "already declared"},
		{"void f(int[] a) { a = 1; }", "cannot assign to array"},
		{"void f(int a) { a[0] = 1; }", "not an array"},
		{"void f(int a) { a = 2; }", "scalar parameter"},
		{"void f(int[] a) { int x = a; }", "without an index"},
		{"void f(int a) { int x = a[0]; }", "not an array"},
		{"void f() { int y = ghost + 1; }", "undeclared"},
		{"void f() { if (1) { partition; } }", "top level"},
		{"void f() { int i; partition; i = 1; }", "undeclared"},
		{"void f() {} void f() {}", "duplicate function"},
		{"void f() { int i = 0; for (int i = 0; i < 3; i = i + 1) {} }", "already declared"},
	}
	for _, c := range cases {
		prog, err := Parse(c.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		_, err = Analyze(prog)
		if err == nil {
			t.Errorf("Analyze(%q) must fail", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.expect) {
			t.Errorf("Analyze(%q): error %q does not mention %q", c.src, err, c.expect)
		}
	}
}

func TestAnalyzeForScopes(t *testing.T) {
	// The for-init declaration is scoped to the loop; reusing the name
	// after the loop is fine.
	src := `void f(int[] a) {
	  for (int i = 0; i < 4; i = i + 1) { a[i] = i; }
	  for (int i = 0; i < 4; i = i + 1) { a[i] = a[i] + 1; }
	  int i = 9;
	  a[0] = i;
	}`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(prog); err != nil {
		t.Fatal(err)
	}
}

func TestPosReporting(t *testing.T) {
	_, err := Parse("void f() {\n  int x =\n}")
	if err == nil || !strings.Contains(err.Error(), "3:") {
		t.Fatalf("err=%v (want line 3 position)", err)
	}
}
