package lang

// Program is a compilation unit: one or more functions.
type Program struct {
	Funcs []*Func
}

// FindFunc returns the named function.
func (p *Program) FindFunc(name string) (*Func, bool) {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f, true
		}
	}
	return nil, false
}

// Func is a void function; its parameters are the design's external
// interface (arrays become SRAMs, scalars become compile-time constants
// supplied by the harness).
type Func struct {
	Name   string
	Params []*Param
	Body   []Stmt
	Pos    Pos
}

// Param is a function parameter.
type Param struct {
	Name    string
	IsArray bool
	Pos     Pos
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// DeclStmt declares a local int, optionally initialised.
type DeclStmt struct {
	Name string
	Init Expr // may be nil (implicitly 0)
	Pos  Pos
}

// AssignStmt assigns to a scalar variable.
type AssignStmt struct {
	Name string
	Expr Expr
	Pos  Pos
}

// StoreStmt assigns to an array element.
type StoreStmt struct {
	Array string
	Index Expr
	Expr  Expr
	Pos   Pos
}

// IfStmt is a two-way branch.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt // may be nil
	Pos  Pos
}

// WhileStmt is a pre-tested loop.
type WhileStmt struct {
	Cond Expr
	Body []Stmt
	Pos  Pos
}

// ForStmt is the C-style for; Init and Post are simple assignments or
// declarations (Init only).
type ForStmt struct {
	Init Stmt // nil, DeclStmt or AssignStmt
	Cond Expr // nil means true
	Post Stmt // nil or AssignStmt
	Body []Stmt
	Pos  Pos
}

// PartitionStmt marks a temporal partition boundary (top level only).
type PartitionStmt struct {
	Pos Pos
}

func (*DeclStmt) stmtNode()      {}
func (*AssignStmt) stmtNode()    {}
func (*StoreStmt) stmtNode()     {}
func (*IfStmt) stmtNode()        {}
func (*WhileStmt) stmtNode()     {}
func (*ForStmt) stmtNode()       {}
func (*PartitionStmt) stmtNode() {}

// Expr is an expression node.
type Expr interface{ exprNode() }

// IntLit is an integer literal.
type IntLit struct {
	Val int64
	Pos Pos
}

// VarRef reads a scalar variable or scalar parameter.
type VarRef struct {
	Name string
	Pos  Pos
}

// IndexExpr reads an array element.
type IndexExpr struct {
	Array string
	Index Expr
	Pos   Pos
}

// UnaryOp enumerates unary operators.
type UnaryOp string

// Unary operators.
const (
	OpNeg  UnaryOp = "-"
	OpBNot UnaryOp = "~"
	OpLNot UnaryOp = "!"
)

// UnaryExpr applies a unary operator.
type UnaryExpr struct {
	Op  UnaryOp
	X   Expr
	Pos Pos
}

// BinOp enumerates binary operators.
type BinOp string

// Binary operators (Java int semantics).
const (
	OpAdd  BinOp = "+"
	OpSub  BinOp = "-"
	OpMul  BinOp = "*"
	OpDiv  BinOp = "/"
	OpMod  BinOp = "%"
	OpShl  BinOp = "<<"
	OpShr  BinOp = ">>"  // arithmetic
	OpUshr BinOp = ">>>" // logical
	OpAnd  BinOp = "&"
	OpOr   BinOp = "|"
	OpXor  BinOp = "^"
	OpLAnd BinOp = "&&"
	OpLOr  BinOp = "||"
	OpEq   BinOp = "=="
	OpNe   BinOp = "!="
	OpLt   BinOp = "<"
	OpLe   BinOp = "<="
	OpGt   BinOp = ">"
	OpGe   BinOp = ">="
)

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	Op   BinOp
	L, R Expr
	Pos  Pos
}

func (*IntLit) exprNode()     {}
func (*VarRef) exprNode()     {}
func (*IndexExpr) exprNode()  {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}
