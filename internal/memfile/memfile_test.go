package memfile

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "m.mem")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadBasic(t *testing.T) {
	path := writeTemp(t, "1\n2\n-3\n0x10\n")
	words, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 2, -3, 16}
	if len(words) != len(want) {
		t.Fatalf("words=%v", words)
	}
	for i := range want {
		if words[i] != want[i] {
			t.Fatalf("words=%v want %v", words, want)
		}
	}
}

func TestLoadCommentsAndBlank(t *testing.T) {
	path := writeTemp(t, "# header\n\n1 2 3 # trailing\n\n4\n")
	words, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != 4 || words[3] != 4 {
		t.Fatalf("words=%v", words)
	}
}

func TestLoadAddressDirective(t *testing.T) {
	path := writeTemp(t, "@4\n7\n8\n")
	words, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 0, 0, 0, 7, 8}
	if len(words) != len(want) {
		t.Fatalf("words=%v", words)
	}
	for i := range want {
		if words[i] != want[i] {
			t.Fatalf("words=%v", words)
		}
	}
}

func TestLoadErrors(t *testing.T) {
	for _, content := range []string{"zz\n", "@-1\n", "@x\n", "1.5\n"} {
		path := writeTemp(t, content)
		if _, err := Load(path); err == nil {
			t.Errorf("Load(%q) must fail", content)
		}
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.mem")); err == nil {
		t.Error("missing file must fail")
	}
}

func TestLoadSized(t *testing.T) {
	path := writeTemp(t, "1\n2\n")
	words, err := LoadSized(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != 4 || words[0] != 1 || words[2] != 0 {
		t.Fatalf("words=%v", words)
	}
	words, err = LoadSized(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != 1 || words[0] != 1 {
		t.Fatalf("words=%v", words)
	}
}

func TestSaveLoadRoundTripProperty(t *testing.T) {
	dir := t.TempDir()
	i := 0
	f := func(words []int64) bool {
		i++
		path := filepath.Join(dir, "rt.mem")
		if err := Save(path, words, "round trip"); err != nil {
			return false
		}
		back, err := Load(path)
		if err != nil {
			return false
		}
		if len(back) != len(words) {
			return false
		}
		for j := range words {
			if back[j] != words[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCompare(t *testing.T) {
	exp := []int64{1, 2, 3, 4}
	act := []int64{1, 9, 3}
	ms := Compare(exp, act, 0)
	if len(ms) != 2 {
		t.Fatalf("ms=%v", ms)
	}
	if ms[0].Addr != 1 || ms[0].Expected != 2 || ms[0].Actual != 9 {
		t.Fatalf("ms[0]=%+v", ms[0])
	}
	if ms[1].Addr != 3 || ms[1].Actual != 0 {
		t.Fatalf("ms[1]=%+v", ms[1])
	}
	if got := Compare(exp, exp, 0); got != nil {
		t.Fatalf("equal compare=%v", got)
	}
	if got := Compare(exp, act, 1); len(got) != 1 {
		t.Fatalf("capped compare=%v", got)
	}
}

func TestFormatMismatches(t *testing.T) {
	if s := FormatMismatches("out", nil, 5); !strings.Contains(s, "OK") {
		t.Fatalf("s=%q", s)
	}
	ms := Compare([]int64{1, 2, 3}, []int64{0, 0, 0}, 0)
	s := FormatMismatches("out", ms, 2)
	if !strings.Contains(s, "3 mismatch") || !strings.Contains(s, "1 more") {
		t.Fatalf("s=%q", s)
	}
}
