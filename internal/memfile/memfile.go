// Package memfile reads and writes the memory-content and stimulus files
// of the verification flow: "Memory contents and I/O data are stored in
// files. Those files are used when executing the Java input algorithm...
// After simulation, a simple comparison of data content is performed to
// verify results." (paper, §2).
//
// The format is line-oriented text: one word per line, decimal or 0x hex,
// with #-comments and blank lines ignored. An optional "@<addr>" directive
// sets the next write address, allowing sparse files.
package memfile

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Load reads every word of a memory file.
func Load(path string) ([]int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var words []int64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		for _, field := range strings.Fields(line) {
			if strings.HasPrefix(field, "@") {
				addr, err := strconv.ParseInt(field[1:], 0, 64)
				if err != nil || addr < 0 {
					return nil, fmt.Errorf("memfile: %s:%d: bad address directive %q", path, lineNo, field)
				}
				for int64(len(words)) < addr {
					words = append(words, 0)
				}
				if int64(len(words)) > addr {
					words = words[:addr]
				}
				continue
			}
			v, err := strconv.ParseInt(field, 0, 64)
			if err != nil {
				return nil, fmt.Errorf("memfile: %s:%d: bad word %q", path, lineNo, field)
			}
			words = append(words, v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("memfile: %s: %w", path, err)
	}
	return words, nil
}

// LoadSized loads a file and pads/truncates to depth words.
func LoadSized(path string, depth int) ([]int64, error) {
	words, err := Load(path)
	if err != nil {
		return nil, err
	}
	out := make([]int64, depth)
	copy(out, words)
	return out, nil
}

// Save writes words one per line with a header comment.
func Save(path string, words []int64, comment string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	if comment != "" {
		for _, line := range strings.Split(comment, "\n") {
			fmt.Fprintf(w, "# %s\n", line)
		}
	}
	for _, v := range words {
		fmt.Fprintf(w, "%d\n", v)
	}
	return w.Flush()
}

// Mismatch is one differing word between expected and actual contents.
type Mismatch struct {
	Addr     int
	Expected int64
	Actual   int64
}

// Compare checks actual against expected word-by-word (by expected's
// length; actual shorter than expected compares missing words as 0) and
// returns up to max mismatches (0 = all).
func Compare(expected, actual []int64, max int) []Mismatch {
	var out []Mismatch
	for i, want := range expected {
		got := int64(0)
		if i < len(actual) {
			got = actual[i]
		}
		if got != want {
			out = append(out, Mismatch{Addr: i, Expected: want, Actual: got})
			if max > 0 && len(out) >= max {
				return out
			}
		}
	}
	return out
}

// FormatMismatches renders a short human-readable report.
func FormatMismatches(name string, ms []Mismatch, limit int) string {
	if len(ms) == 0 {
		return fmt.Sprintf("%s: OK", name)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d mismatch(es)", name, len(ms))
	for i, m := range ms {
		if limit > 0 && i >= limit {
			fmt.Fprintf(&b, "\n  ... (%d more)", len(ms)-limit)
			break
		}
		fmt.Fprintf(&b, "\n  [%d] expected %d, got %d", m.Addr, m.Expected, m.Actual)
	}
	return b.String()
}
