package fsmsim

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/hades"
	"repro/internal/xmlspec"
)

func TestParseCondBasics(t *testing.T) {
	known := map[string]bool{"a": true, "b": true, "c_1": true}
	cases := []struct {
		src  string
		env  MapEnv
		want bool
	}{
		{"", nil, true},
		{"1", nil, true},
		{"0", nil, false},
		{"a", MapEnv{"a": true}, true},
		{"a", MapEnv{}, false},
		{"!a", MapEnv{}, true},
		{"a & b", MapEnv{"a": true, "b": true}, true},
		{"a & b", MapEnv{"a": true}, false},
		{"a | b", MapEnv{"b": true}, true},
		{"a | b", MapEnv{}, false},
		{"!(a | b)", MapEnv{}, true},
		{"!a & !b", MapEnv{}, true},
		{"a & b | c_1", MapEnv{"c_1": true}, true}, // & binds tighter
		{"a & (b | c_1)", MapEnv{"a": true, "c_1": true}, true},
		{"!!a", MapEnv{"a": true}, true},
	}
	for _, c := range cases {
		cond, err := ParseCond(c.src, known)
		if err != nil {
			t.Fatalf("ParseCond(%q): %v", c.src, err)
		}
		if got := cond.Eval(c.env); got != c.want {
			t.Errorf("%q with %v = %v, want %v", c.src, c.env, got, c.want)
		}
	}
}

func TestParseCondErrors(t *testing.T) {
	known := map[string]bool{"a": true}
	for _, src := range []string{"ghost", "a &", "(a", "a )", "a b", "&", "a @ b"} {
		if _, err := ParseCond(src, known); err == nil {
			t.Errorf("ParseCond(%q) must fail", src)
		}
	}
}

func TestParseCondNilKnownAllowsAnyIdent(t *testing.T) {
	cond, err := ParseCond("whatever", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cond.Eval(MapEnv{"whatever": true}) {
		t.Fatal("eval failed")
	}
}

func TestCondStringRoundTripProperty(t *testing.T) {
	// Property: rendering a parsed condition and re-parsing it preserves
	// semantics on random environments.
	srcs := []string{"a", "!a", "a & b", "a | b & !c", "!(a & b) | c", "a & !b & c"}
	f := func(av, bv, cv bool, idx uint8) bool {
		src := srcs[int(idx)%len(srcs)]
		c1, err := ParseCond(src, nil)
		if err != nil {
			return false
		}
		c2, err := ParseCond(c1.String(), nil)
		if err != nil {
			return false
		}
		env := MapEnv{"a": av, "b": bv, "c": cv}
		return c1.Eval(env) == c2.Eval(env)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// counterFSM is the control unit of a loop running while lt is true.
func counterFSM() *xmlspec.FSM {
	return &xmlspec.FSM{
		Name:    "ctl",
		Inputs:  []xmlspec.FSMSignal{{Name: "lt"}},
		Outputs: []xmlspec.FSMSignal{{Name: "en"}, {Name: "done"}},
		States: []xmlspec.State{
			{
				Name: "LOOP", Initial: true,
				Assigns: []xmlspec.Assign{{Signal: "en", Value: 1}},
				Transitions: []xmlspec.Transition{
					{Cond: "lt", Next: "LOOP"},
					{Next: "END"},
				},
			},
			{
				Name: "END", Final: true,
				Assigns: []xmlspec.Assign{{Signal: "done", Value: 1}},
			},
		},
	}
}

type machineFixture struct {
	sim          *hades.Simulator
	clk, rst     *hades.Signal
	lt, en, done *hades.Signal
	m            *Machine
}

func newMachineFixture(t *testing.T, withRst bool) *machineFixture {
	t.Helper()
	sim := hades.NewSimulator()
	f := &machineFixture{
		sim:  sim,
		clk:  sim.NewSignal("clk", 1),
		lt:   sim.NewSignal("lt", 1),
		en:   sim.NewSignal("en", 1),
		done: sim.NewSignal("done", 1),
	}
	if withRst {
		f.rst = sim.NewSignal("rst", 1)
	}
	m, err := New(sim, counterFSM(), f.clk, f.rst,
		map[string]*hades.Signal{"lt": f.lt},
		map[string]*hades.Signal{"en": f.en, "done": f.done})
	if err != nil {
		t.Fatal(err)
	}
	f.m = m
	return f
}

func (f *machineFixture) tick(t *testing.T) {
	t.Helper()
	f.sim.Set(f.clk, 1, 2)
	f.sim.Set(f.clk, 0, 7)
	if _, err := f.sim.Run(f.sim.Now() + 8); err != nil {
		t.Fatal(err)
	}
}

func TestMachineInitialOutputs(t *testing.T) {
	f := newMachineFixture(t, false)
	if !f.en.Bool() || f.done.Bool() {
		t.Fatalf("initial outputs en=%v done=%v", f.en.Bool(), f.done.Bool())
	}
	if f.m.CurrentState() != "LOOP" || f.m.InFinal() {
		t.Fatalf("state=%s", f.m.CurrentState())
	}
}

func TestMachineLoopsWhileStatusTrue(t *testing.T) {
	f := newMachineFixture(t, false)
	f.sim.Drive(f.lt, 1)
	for i := 0; i < 5; i++ {
		f.tick(t)
		if f.m.CurrentState() != "LOOP" {
			t.Fatalf("tick %d: state=%s", i, f.m.CurrentState())
		}
	}
	f.sim.Drive(f.lt, 0)
	f.tick(t)
	if f.m.CurrentState() != "END" || !f.m.InFinal() {
		t.Fatalf("state=%s", f.m.CurrentState())
	}
	if !f.done.Bool() || f.en.Bool() {
		t.Fatalf("final outputs en=%v done=%v", f.en.Bool(), f.done.Bool())
	}
	if f.m.Cycles() != 6 {
		t.Fatalf("cycles=%d want 6", f.m.Cycles())
	}
}

func TestMachineResetReturnsToInitial(t *testing.T) {
	f := newMachineFixture(t, true)
	f.sim.Drive(f.rst, 0)
	f.sim.Drive(f.lt, 0)
	f.tick(t)
	if f.m.CurrentState() != "END" {
		t.Fatalf("state=%s", f.m.CurrentState())
	}
	f.sim.Drive(f.rst, 1)
	f.tick(t)
	if f.m.CurrentState() != "LOOP" {
		t.Fatalf("after reset state=%s", f.m.CurrentState())
	}
	if !f.en.Bool() || f.done.Bool() {
		t.Fatal("outputs must reflect initial state after reset")
	}
}

func TestMachineTrace(t *testing.T) {
	f := newMachineFixture(t, false)
	f.m.EnableTrace(3)
	f.sim.Drive(f.lt, 1)
	for i := 0; i < 5; i++ {
		f.tick(t)
	}
	f.sim.Drive(f.lt, 0)
	f.tick(t)
	tr := f.m.Trace()
	if len(tr) != 3 {
		t.Fatalf("trace=%v", tr)
	}
	if tr[2] != "END" {
		t.Fatalf("trace=%v", tr)
	}
}

func TestMachineUnboundSignalsFail(t *testing.T) {
	sim := hades.NewSimulator()
	clk := sim.NewSignal("clk", 1)
	en := sim.NewSignal("en", 1)
	done := sim.NewSignal("done", 1)
	_, err := New(sim, counterFSM(), clk, nil,
		map[string]*hades.Signal{}, // lt missing
		map[string]*hades.Signal{"en": en, "done": done})
	if err == nil || !strings.Contains(err.Error(), `input "lt" not bound`) {
		t.Fatalf("err=%v", err)
	}
	lt := sim.NewSignal("lt", 1)
	_, err = New(sim, counterFSM(), clk, nil,
		map[string]*hades.Signal{"lt": lt},
		map[string]*hades.Signal{"en": en}) // done missing
	if err == nil || !strings.Contains(err.Error(), `output "done" not bound`) {
		t.Fatalf("err=%v", err)
	}
}

func TestMachineRejectsInvalidFSM(t *testing.T) {
	sim := hades.NewSimulator()
	clk := sim.NewSignal("clk", 1)
	bad := counterFSM()
	bad.States[0].Initial = false
	_, err := New(sim, bad, clk, nil, map[string]*hades.Signal{}, map[string]*hades.Signal{})
	if err == nil {
		t.Fatal("invalid FSM must be rejected")
	}
}

func TestMachineRejectsBadGuard(t *testing.T) {
	sim := hades.NewSimulator()
	clk := sim.NewSignal("clk", 1)
	lt := sim.NewSignal("lt", 1)
	en := sim.NewSignal("en", 1)
	done := sim.NewSignal("done", 1)
	bad := counterFSM()
	bad.States[0].Transitions[0].Cond = "ghost"
	_, err := New(sim, bad, clk, nil,
		map[string]*hades.Signal{"lt": lt},
		map[string]*hades.Signal{"en": en, "done": done})
	if err == nil || !strings.Contains(err.Error(), "unknown status") {
		t.Fatalf("err=%v", err)
	}
}

func TestMooreSamplingUsesPreEdgeStatus(t *testing.T) {
	// The status flips in the same instant as the edge via a zero-delay
	// event scheduled after the edge; the machine must still see the old
	// value at that edge.
	f := newMachineFixture(t, false)
	f.sim.Drive(f.lt, 1)
	f.tick(t) // stays LOOP
	// Schedule lt:=0 exactly at the next rising edge time.
	f.sim.Set(f.clk, 1, 2)
	f.sim.Set(f.lt, 0, 2)
	f.sim.Set(f.clk, 0, 7)
	if _, err := f.sim.Run(f.sim.Now() + 8); err != nil {
		t.Fatal(err)
	}
	// lt=0 and clk=1 arrive in the same delta; guard evaluation happens in
	// the reaction phase after both updates, so the machine sees lt=0 and
	// exits. This documents the kernel's same-delta semantics.
	if f.m.CurrentState() != "END" {
		t.Fatalf("state=%s", f.m.CurrentState())
	}
}
