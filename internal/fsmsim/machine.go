package fsmsim

import (
	"fmt"

	"repro/internal/hades"
	"repro/internal/xmlspec"
)

// Machine is the executable form of an fsm.xml control unit: a Moore
// machine clocked by the global clock, reading status signals and driving
// control signals. It is the direct counterpart of the fsm.java classes
// the paper's XSLT generates for Hades.
type Machine struct {
	hades.IDBase
	name string

	clk *hades.Signal
	rst *hades.Signal // optional

	states  []compiledState
	byName  map[string]int
	current int
	initial int

	inputs  map[string]*hades.Signal
	outputs []outputBinding

	prevClk bool
	cycles  uint64
	trace   []string
	keepLog int
}

type compiledState struct {
	name        string
	final       bool
	assigns     []xmlspec.Assign
	transitions []compiledTransition
}

type compiledTransition struct {
	cond Cond
	next int
}

type outputBinding struct {
	name string
	sig  *hades.Signal
}

// signalEnv adapts live status signals to the Cond Env interface.
type signalEnv map[string]*hades.Signal

// Truth is true when the named status signal is defined and non-zero.
func (e signalEnv) Truth(name string) bool {
	s, ok := e[name]
	return ok && s.Valid() && s.Uint() != 0
}

// New compiles an FSM description and binds it to live signals. inputs
// must provide a signal per declared FSM input; outputs per declared
// output. The machine starts in the initial state and drives that state's
// outputs at elaboration time.
func New(sim *hades.Simulator, spec *xmlspec.FSM, clk, rst *hades.Signal,
	inputs, outputs map[string]*hades.Signal) (*Machine, error) {

	if err := xmlspec.ValidateFSM(spec); err != nil {
		return nil, err
	}
	known := map[string]bool{}
	for _, in := range spec.Inputs {
		if inputs[in.Name] == nil {
			return nil, fmt.Errorf("fsmsim: %s: input %q not bound", spec.Name, in.Name)
		}
		known[in.Name] = true
	}
	m := &Machine{
		name:    spec.Name,
		clk:     clk,
		rst:     rst,
		byName:  map[string]int{},
		inputs:  map[string]*hades.Signal{},
		keepLog: 0,
	}
	m.AssignID(hades.NextID())
	for name, sig := range inputs {
		m.inputs[name] = sig
	}
	for i, st := range spec.States {
		m.byName[st.Name] = i
	}
	for _, st := range spec.States {
		cs := compiledState{name: st.Name, final: st.Final, assigns: st.Assigns}
		for _, tr := range st.Transitions {
			c, err := ParseCond(tr.Cond, known)
			if err != nil {
				return nil, fmt.Errorf("fsmsim: %s state %s: %w", spec.Name, st.Name, err)
			}
			cs.transitions = append(cs.transitions, compiledTransition{cond: c, next: m.byName[tr.Next]})
		}
		m.states = append(m.states, cs)
		if st.Initial {
			m.initial = len(m.states) - 1
		}
	}
	for _, out := range spec.Outputs {
		sig := outputs[out.Name]
		if sig == nil {
			return nil, fmt.Errorf("fsmsim: %s: output %q not bound", spec.Name, out.Name)
		}
		m.outputs = append(m.outputs, outputBinding{name: out.Name, sig: sig})
	}
	m.current = m.initial
	clk.Listen(m)
	m.driveOutputs(sim, true)
	return m, nil
}

// Name returns the FSM name.
func (m *Machine) Name() string { return m.name }

// Reset rewinds the machine for replay after a simulator reset: back to
// the initial state with the cycle counter, edge tracker and trace
// cleared, immediately driving the initial state's outputs exactly as
// New does at elaboration time.
func (m *Machine) Reset(sim *hades.Simulator) {
	m.current = m.initial
	m.cycles = 0
	m.prevClk = false
	m.trace = m.trace[:0]
	m.driveOutputs(sim, true)
}

// CurrentState returns the name of the state the machine is in.
func (m *Machine) CurrentState() string { return m.states[m.current].name }

// InFinal reports whether the machine reached a final state.
func (m *Machine) InFinal() bool { return m.states[m.current].final }

// Cycles returns the number of rising edges consumed.
func (m *Machine) Cycles() uint64 { return m.cycles }

// EnableTrace keeps the last n visited state names for debugging.
func (m *Machine) EnableTrace(n int) { m.keepLog = n }

// Trace returns the retained state visit log (oldest first).
func (m *Machine) Trace() []string { return m.trace }

// React advances the machine on rising clock edges: transition guards are
// evaluated against the pre-edge status values (Moore semantics under the
// kernel's delta model), then the new state's outputs are driven.
func (m *Machine) React(sim *hades.Simulator) {
	if !hades.RisingEdge(m.clk, &m.prevClk) {
		return
	}
	m.cycles++
	if m.rst != nil && m.rst.Bool() {
		m.current = m.initial
		m.driveOutputs(sim, false)
		return
	}
	st := &m.states[m.current]
	env := signalEnv(m.inputs)
	for _, tr := range st.transitions {
		if tr.cond.Eval(env) {
			m.current = tr.next
			break
		}
	}
	if m.keepLog > 0 {
		m.trace = append(m.trace, m.states[m.current].name)
		if len(m.trace) > m.keepLog {
			m.trace = m.trace[1:]
		}
	}
	m.driveOutputs(sim, false)
}

// driveOutputs asserts the current state's Moore outputs; all declared
// outputs not assigned in the state are driven to 0.
func (m *Machine) driveOutputs(sim *hades.Simulator, immediate bool) {
	st := &m.states[m.current]
	for _, ob := range m.outputs {
		val := int64(0)
		for _, a := range st.assigns {
			if a.Signal == ob.name {
				val = a.Value
				break
			}
		}
		if immediate {
			sim.Drive(ob.sig, val)
		} else {
			sim.Set(ob.sig, val, 0)
		}
	}
}
