// Package fsmsim executes the behavioural FSM descriptions of fsm.xml as
// clocked simulator components — the role the generated fsm.java plays in
// the paper's flow.
package fsmsim

import (
	"fmt"
	"strings"
)

// Cond is a compiled transition guard evaluated against the live status
// signals each clock edge.
type Cond interface {
	Eval(env Env) bool
	String() string
}

// Env resolves a status name to its current truth value (non-zero word).
type Env interface {
	Truth(name string) bool
}

// MapEnv is an Env over a plain map, used in tests and by the RTG
// controller when evaluating edge guards outside a simulation.
type MapEnv map[string]bool

// Truth looks the name up; missing names read false.
func (m MapEnv) Truth(name string) bool { return m[name] }

type condTrue struct{}

func (condTrue) Eval(Env) bool  { return true }
func (condTrue) String() string { return "1" }

type condFalse struct{}

func (condFalse) Eval(Env) bool  { return false }
func (condFalse) String() string { return "0" }

type condVar struct{ name string }

func (v condVar) Eval(env Env) bool { return env.Truth(v.name) }
func (v condVar) String() string    { return v.name }

type condNot struct{ x Cond }

func (n condNot) Eval(env Env) bool { return !n.x.Eval(env) }
func (n condNot) String() string    { return "!" + n.x.String() }

type condAnd struct{ l, r Cond }

func (a condAnd) Eval(env Env) bool { return a.l.Eval(env) && a.r.Eval(env) }
func (a condAnd) String() string    { return "(" + a.l.String() + " & " + a.r.String() + ")" }

type condOr struct{ l, r Cond }

func (o condOr) Eval(env Env) bool { return o.l.Eval(env) || o.r.Eval(env) }
func (o condOr) String() string    { return "(" + o.l.String() + " | " + o.r.String() + ")" }

// ParseCond compiles a guard expression. The grammar, lowest precedence
// first:  or := and ('|' and)* ; and := unary ('&' unary)* ;
// unary := '!' unary | '(' or ')' | '0' | '1' | identifier.
// An empty expression is the always-true default guard. known, when
// non-nil, restricts identifiers to declared status inputs.
func ParseCond(src string, known map[string]bool) (Cond, error) {
	p := &condParser{src: src, known: known}
	p.next()
	if p.tok == tokEOF {
		return condTrue{}, nil
	}
	c, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.tok != tokEOF {
		return nil, fmt.Errorf("fsmsim: cond %q: trailing input at %q", src, p.lit)
	}
	return c, nil
}

type condToken int

const (
	tokEOF condToken = iota
	tokIdent
	tokNot
	tokAnd
	tokOr
	tokLParen
	tokRParen
	tokZero
	tokOne
	tokBad
)

type condParser struct {
	src   string
	pos   int
	tok   condToken
	lit   string
	known map[string]bool
}

func (p *condParser) next() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
	if p.pos >= len(p.src) {
		p.tok, p.lit = tokEOF, ""
		return
	}
	c := p.src[p.pos]
	switch c {
	case '!':
		p.tok, p.lit = tokNot, "!"
		p.pos++
	case '&':
		p.tok, p.lit = tokAnd, "&"
		p.pos++
	case '|':
		p.tok, p.lit = tokOr, "|"
		p.pos++
	case '(':
		p.tok, p.lit = tokLParen, "("
		p.pos++
	case ')':
		p.tok, p.lit = tokRParen, ")"
		p.pos++
	case '0':
		p.tok, p.lit = tokZero, "0"
		p.pos++
	case '1':
		p.tok, p.lit = tokOne, "1"
		p.pos++
	default:
		if isIdentStart(c) {
			start := p.pos
			for p.pos < len(p.src) && isIdentPart(p.src[p.pos]) {
				p.pos++
			}
			p.tok, p.lit = tokIdent, p.src[start:p.pos]
			return
		}
		p.tok, p.lit = tokBad, string(c)
		p.pos++
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || ('0' <= c && c <= '9') }

func (p *condParser) parseOr() (Cond, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.tok == tokOr {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = condOr{l, r}
	}
	return l, nil
}

func (p *condParser) parseAnd() (Cond, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok == tokAnd {
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = condAnd{l, r}
	}
	return l, nil
}

func (p *condParser) parseUnary() (Cond, error) {
	switch p.tok {
	case tokNot:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return condNot{x}, nil
	case tokLParen:
		p.next()
		x, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.tok != tokRParen {
			return nil, fmt.Errorf("fsmsim: cond %q: missing )", p.src)
		}
		p.next()
		return x, nil
	case tokZero:
		p.next()
		return condFalse{}, nil
	case tokOne:
		p.next()
		return condTrue{}, nil
	case tokIdent:
		name := p.lit
		if p.known != nil && !p.known[name] {
			return nil, fmt.Errorf("fsmsim: cond %q: unknown status %q", p.src, name)
		}
		p.next()
		return condVar{name}, nil
	default:
		if strings.TrimSpace(p.lit) == "" {
			return nil, fmt.Errorf("fsmsim: cond %q: unexpected end", p.src)
		}
		return nil, fmt.Errorf("fsmsim: cond %q: unexpected %q", p.src, p.lit)
	}
}
