// Package sweep is the sharded campaign coordinator: it partitions a
// sweep's configuration space — a scenario spec's expanded case list,
// or a workload-preset x seed-range grid — into numbered contiguous
// shards, runs each shard in a worker (in-process pool, spawned
// subprocess, or remote simd endpoint), and merges the per-shard JSONL
// files into one campaign trace whose bytes are identical regardless
// of worker count, interleaving, or how many resume passes it took.
//
// Shards are the unit of recovery: a shard file ending in a valid
// footer digest is never re-executed; torn, missing or foreign shards
// are re-run. The merged file is a plain scenario trace (header, case
// lines, summary), so every downstream consumer — replay,
// counterfactual, trace diff — works on campaign output unchanged.
package sweep

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"

	"repro/internal/api"
	"repro/internal/flow"
	"repro/internal/scenario"
	"repro/internal/workloads"
)

// DefaultShards caps the default shard layout when the spec does not
// pin one.
const DefaultShards = 8

// gridCell is one parsed workload column of a grid campaign.
type gridCell struct {
	w      workloads.Workload
	values workloads.Values // base values from the inline spec, without the seed param
}

// Campaign is a loaded, validated sweep: the normalized spec, its
// digest, the resolved backend, and everything needed to materialize
// any case range deterministically.
type Campaign struct {
	// Spec is the normalized spec: Shards is resolved to the actual
	// layout (never <=0), so the digest covers the layout.
	Spec *api.SweepSpec
	// Digest fingerprints the normalized spec plus the resolved backend
	// and width; shard files carry it, and shards from a different
	// campaign, layout or backend never pass resume validation.
	Digest string
	// Backend is the resolved simulator backend (spec override, then the
	// scenario spec's backend, then the flow default).
	Backend string
	// Width is the resolved datapath width override (0 = compiler default).
	Width int

	sc        *scenario.Scenario
	cells     []gridCell
	seedParam string
}

// Load validates a sweep spec against the registry (nil = default) and
// normalizes its shard layout. The returned campaign is what the
// coordinator, a worker process, and the simd shard endpoint all agree
// on: same spec bytes => same digest => same shard layout and cases.
func Load(spec *api.SweepSpec, reg *workloads.Registry) (*Campaign, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if reg == nil {
		reg = workloads.Default
	}
	norm := *spec
	c := &Campaign{Spec: &norm}
	switch {
	case norm.Scenario != nil:
		sc, err := scenario.Load(norm.Scenario, reg)
		if err != nil {
			return nil, err
		}
		c.sc = sc
		c.Width = norm.Scenario.Width
		c.Backend = norm.Scenario.Backend
	default:
		g := norm.Grid
		c.seedParam = g.SeedParam
		if c.seedParam == "" {
			c.seedParam = "seed"
		}
		for _, ws := range g.Workloads {
			name, v, err := workloads.ParseSpec(ws)
			if err != nil {
				return nil, fmt.Errorf("sweep: %s: %w", norm.Name, err)
			}
			w, err := reg.Lookup(name)
			if err != nil {
				return nil, fmt.Errorf("sweep: %s: %w", norm.Name, err)
			}
			if _, ok := v[c.seedParam]; ok {
				return nil, fmt.Errorf("sweep: %s: workload %q pins %q, which the grid's seed range assigns",
					norm.Name, ws, c.seedParam)
			}
			// Probe both ends of the seed range so a range outside the
			// parameter's schema fails at load, not mid-campaign.
			for _, seed := range []int{g.SeedFrom, g.SeedTo - 1} {
				probe := v.Clone()
				probe[c.seedParam] = seed
				if _, err := workloads.Resolve(w, probe); err != nil {
					return nil, fmt.Errorf("sweep: %s: workload %q with %s=%d: %w",
						norm.Name, ws, c.seedParam, seed, err)
				}
			}
			c.cells = append(c.cells, gridCell{w: w, values: v})
		}
	}
	if norm.Backend != "" {
		c.Backend = norm.Backend
	}
	if c.Backend == "" {
		c.Backend = flow.DefaultBackend
	}
	if _, err := flow.LookupBackend(c.Backend); err != nil {
		return nil, fmt.Errorf("sweep: %s: %w", norm.Name, err)
	}

	cases := c.Cases()
	if norm.Shards <= 0 {
		norm.Shards = DefaultShards
	}
	if norm.Shards > cases {
		norm.Shards = cases
	}
	c.Digest = c.computeDigest()
	return c, nil
}

// Parse decodes and Loads a spec from r.
func Parse(r io.Reader, reg *workloads.Registry) (*Campaign, error) {
	spec, err := api.DecodeSweepSpec(r)
	if err != nil {
		return nil, err
	}
	return Load(spec, reg)
}

// LoadFile reads, decodes and Loads a spec file.
func LoadFile(path string, reg *workloads.Registry) (*Campaign, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	defer f.Close()
	return Parse(f, reg)
}

// WrapScenario lifts a scenario spec into a sweep spec — the CLI's
// `sweep run -scenario` path.
func WrapScenario(spec *api.ScenarioSpec, shards int) *api.SweepSpec {
	return &api.SweepSpec{Name: spec.Name, Shards: shards, Scenario: spec}
}

// computeDigest hashes the normalized spec plus the resolved backend
// and width with FNV-1a. Field order in the marshalled spec is fixed by
// the struct definition, so the digest is stable across processes.
func (c *Campaign) computeDigest() string {
	b, err := json.Marshal(c.Spec)
	if err != nil {
		// A loaded spec round-trips by construction.
		panic(fmt.Sprintf("sweep: marshal normalized spec: %v", err))
	}
	h := fnv.New64a()
	h.Write(b)
	fmt.Fprintf(h, "|%s|%d", c.Backend, c.Width)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Cases is the campaign's total case count.
func (c *Campaign) Cases() int {
	if c.sc != nil {
		return c.Spec.Scenario.Cases
	}
	return c.Spec.Grid.Cases()
}

// Shard is one contiguous case range of the campaign layout.
type Shard struct {
	Index int // 0-based shard number
	Count int // total shards in the layout
	From  int // first case index (inclusive)
	To    int // last case index (exclusive)
}

// Shards returns the campaign's shard layout: Spec.Shards contiguous
// ranges differing in size by at most one case, in case order.
func (c *Campaign) Shards() []Shard {
	n := c.Spec.Shards
	cases := c.Cases()
	base, rem := cases/n, cases%n
	out := make([]Shard, n)
	from := 0
	for i := range out {
		size := base
		if i < rem {
			size++
		}
		out[i] = Shard{Index: i, Count: n, From: from, To: from + size}
		from += size
	}
	return out
}

// ShardAt returns shard i of the layout.
func (c *Campaign) ShardAt(i int) (Shard, error) {
	if i < 0 || i >= c.Spec.Shards {
		return Shard{}, fmt.Errorf("sweep: %s: shard %d outside layout of %d", c.Spec.Name, i, c.Spec.Shards)
	}
	return c.Shards()[i], nil
}

// MaterializeRange builds cases [lo, hi) of the campaign's
// deterministic sequence. Scenario mode delegates to the scenario's
// range expansion; grid mode resolves workload lo/span with the seed
// parameter swept fastest (workload-major order).
func (c *Campaign) MaterializeRange(lo, hi int) ([]*scenario.CaseRun, error) {
	if c.sc != nil {
		return c.sc.ExpandRange(lo, hi)
	}
	if lo < 0 || hi > c.Cases() || lo > hi {
		return nil, fmt.Errorf("sweep: %s: case range [%d, %d) outside [0, %d)", c.Spec.Name, lo, hi, c.Cases())
	}
	g := c.Spec.Grid
	span := g.Span()
	out := make([]*scenario.CaseRun, 0, hi-lo)
	for i := lo; i < hi; i++ {
		cell := c.cells[i/span]
		v := cell.values.Clone()
		v[c.seedParam] = g.SeedFrom + i%span
		rv, err := workloads.Resolve(cell.w, v)
		if err != nil {
			return nil, fmt.Errorf("sweep: %s: case %d: %w", c.Spec.Name, i, err)
		}
		clean, err := workloads.BuildWorkload(cell.w, rv)
		if err != nil {
			return nil, fmt.Errorf("sweep: %s: case %d: %w", c.Spec.Name, i, err)
		}
		out = append(out, &scenario.CaseRun{
			Index:    i,
			Family:   cell.w.Name(),
			Values:   rv,
			Params:   rv.String(),
			Workload: cell.w,
			Clean:    clean,
		})
	}
	return out, nil
}

// Header is the merged campaign file's leading trace header. Scenario
// mode reproduces scenario.Run's header exactly (scenario name and
// seed), so the merged campaign is byte-identical to a single-process
// run and replays with the existing trace tooling; grid mode names the
// sweep itself.
func (c *Campaign) Header() api.TraceHeader {
	h := api.TraceHeader{
		SchemaVersion: api.SchemaVersion,
		Record:        api.RecordTraceHeader,
		Scenario:      c.Spec.Name,
		Cases:         c.Cases(),
		Backend:       c.Backend,
		Width:         c.Width,
	}
	if c.sc != nil {
		h.Scenario = c.Spec.Scenario.Name
		h.Seed = c.Spec.Scenario.Seed
	} else {
		h.Seed = int64(c.Spec.Grid.SeedFrom)
	}
	return h
}

// summaryName is the scenario name the merged summary carries.
func (c *Campaign) summaryName() string {
	if c.sc != nil {
		return c.Spec.Scenario.Name
	}
	return c.Spec.Name
}

// ShardHeader is the header record a shard file for shard sh of this
// campaign must carry.
func (c *Campaign) ShardHeader(sh Shard) api.ShardHeader {
	return api.ShardHeader{
		SchemaVersion:  api.SchemaVersion,
		Record:         api.RecordShardHeader,
		Campaign:       c.Spec.Name,
		CampaignDigest: c.Digest,
		Shard:          sh.Index,
		Shards:         sh.Count,
		From:           sh.From,
		To:             sh.To,
		Backend:        c.Backend,
	}
}
