package sweep

import (
	"time"

	"repro/internal/api"
)

// Endpoint is one independently health-tracked worker in a dispatch
// fleet: typically one simd server, one subprocess lane, or the
// in-process LocalWorker. The dispatcher gives each endpoint its own
// circuit breaker and latency EWMA, so a dead or flaky endpoint stops
// receiving work (route-around) instead of burning shard retry
// budgets.
type Endpoint struct {
	// Worker executes the shards this endpoint is handed. Required.
	Worker Worker
	// Name tags the endpoint in health snapshots and the stats sidecar
	// (default Worker.Name()). Names need not be unique, but distinct
	// names make WorkerHealth legible.
	Name string
	// Slots is how many shards this endpoint runs concurrently
	// (default 1).
	Slots int
}

// Breaker states, as reported in api.WorkerHealth.State.
const (
	healthClosed   = "healthy"
	healthOpen     = "open"
	healthHalfOpen = "half-open"
)

// epHealth is the dispatcher-side health record for one endpoint:
// a consecutive-failure circuit breaker with half-open probe shards,
// plus a latency EWMA over successful attempts. All fields are guarded
// by the dispatcher's mutex.
type epHealth struct {
	Endpoint
	index int

	state       string
	consecFails int
	failures    int64
	successes   int64
	probes      int64
	ewmaNS      float64
	openUntil   time.Time
	probing     bool // a half-open probe shard is in flight
}

// charge records a failed attempt: consecutive failures reaching the
// threshold trip the breaker open, and a failed half-open probe
// re-opens it immediately.
func (h *epHealth) charge(now time.Time, threshold int, cooldown time.Duration, probe bool) {
	h.failures++
	h.consecFails++
	if probe || h.state == healthHalfOpen {
		h.state = healthOpen
		h.openUntil = now.Add(cooldown)
		return
	}
	if h.state == healthClosed && h.consecFails >= threshold {
		h.state = healthOpen
		h.openUntil = now.Add(cooldown)
	}
}

// credit records a successful attempt and folds its wall time into the
// latency EWMA; a successful half-open probe closes the breaker.
func (h *epHealth) credit(d time.Duration) {
	h.successes++
	h.consecFails = 0
	h.state = healthClosed
	const alpha = 0.3
	if h.ewmaNS == 0 {
		h.ewmaNS = float64(d.Nanoseconds())
	} else {
		h.ewmaNS = (1-alpha)*h.ewmaNS + alpha*float64(d.Nanoseconds())
	}
}

// tick advances an open breaker whose cooldown has elapsed into
// half-open, where a single probe shard is allowed through.
func (h *epHealth) tick(now time.Time) {
	if h.state == healthOpen && !now.Before(h.openUntil) {
		h.state = healthHalfOpen
	}
}

// snapshot renders the health record as its wire form.
func (h *epHealth) snapshot() api.WorkerHealth {
	return api.WorkerHealth{
		Name:                h.Name,
		State:               h.state,
		ConsecutiveFailures: h.consecFails,
		Failures:            h.failures,
		Successes:           h.successes,
		LatencyEWMANS:       int64(h.ewmaNS),
		Probes:              h.probes,
	}
}

// breakerFailures resolves the consecutive-failure threshold.
func breakerFailures(configured int) int {
	if configured > 0 {
		return configured
	}
	return 3
}

// splitmix64 is a tiny deterministic PRNG for backoff jitter and
// cooldown spreading. Hand-rolled on purpose: the repro discipline
// audit reserves math/rand for internal/scenario, and jitter only
// shapes *when* work retries — never what it computes — so seed
// quality is irrelevant.
type splitmix64 struct{ s uint64 }

func (r *splitmix64) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// float01 draws from [0,1).
func (r *splitmix64) float01() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// jitterBackoff implements decorrelated jitter: each wait is drawn
// from [base, 3*prev), capped — simultaneous failures spread out
// instead of resynchronizing their retries the way fixed
// multiplicative backoff does.
func jitterBackoff(r *splitmix64, base, prev, cap time.Duration) time.Duration {
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if prev < base {
		prev = base
	}
	if cap < base {
		cap = 10 * base
	}
	span := 3*prev - base
	d := base + time.Duration(r.float01()*float64(span))
	if d > cap {
		d = cap
	}
	return d
}
