package sweep

import (
	"bytes"
	"context"
	"fmt"
	"os/exec"
	"sync/atomic"
)

// Worker executes one shard of a campaign into a file. The coordinator
// retries a worker whose shard comes back torn or failed, so RunShard
// must be safe to call again with the same path (each attempt rewrites
// the file from scratch).
type Worker interface {
	// RunShard executes shard sh of campaign c into path. A nil error
	// means the worker believes it finished; the coordinator still
	// validates the file — trust, but verify.
	RunShard(ctx context.Context, c *Campaign, sh Shard, path string) error
	// Name tags the worker kind in the stats sidecar.
	Name() string
}

// LocalWorker executes shards in-process on the coordinator's
// goroutine pool — the single-binary default.
type LocalWorker struct {
	// Injector arms test-only faults; nil runs clean.
	Injector *Injector

	executed atomic.Int64
}

// Name implements Worker.
func (w *LocalWorker) Name() string { return "local" }

// RunShard implements Worker.
func (w *LocalWorker) RunShard(ctx context.Context, c *Campaign, sh Shard, path string) error {
	n, err := ExecuteShardFile(ctx, c, sh, path, w.Injector)
	w.executed.Add(int64(n))
	return err
}

// CasesExecuted counts the cases this worker actually simulated — the
// resume economics counter: a resume pass after a crash pays only for
// the lost shards' cases.
func (w *LocalWorker) CasesExecuted() int64 { return w.executed.Load() }

// ProcessWorker spawns one subprocess per shard — crash isolation: a
// worker taken down mid-shard (OOM, kill, injected fault) loses only
// its in-flight shard, and the coordinator's process survives to
// retry, fail fast, or resume.
type ProcessWorker struct {
	// Argv builds the subprocess command line for one shard; the
	// subprocess must write the shard file at path itself (the
	// `testsuite sweep worker` contract). The environment is inherited,
	// so EnvFault reaches the child.
	Argv func(c *Campaign, sh Shard, path string) []string
}

// Name implements Worker.
func (w *ProcessWorker) Name() string { return "process" }

// RunShard implements Worker.
func (w *ProcessWorker) RunShard(ctx context.Context, c *Campaign, sh Shard, path string) error {
	argv := w.Argv(c, sh, path)
	if len(argv) == 0 {
		return fmt.Errorf("sweep: process worker built an empty command for shard %d", sh.Index)
	}
	cmd := exec.CommandContext(ctx, argv[0], argv[1:]...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		msg := bytes.TrimSpace(stderr.Bytes())
		if len(msg) > 0 {
			return fmt.Errorf("sweep: shard %d worker: %w: %s", sh.Index, err, msg)
		}
		return fmt.Errorf("sweep: shard %d worker: %w", sh.Index, err)
	}
	return nil
}
