package sweep

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// EnvFault is the environment knob subprocess workers read to arm
// fault injection: a comma-separated list of fault specs, e.g.
// "kill:1" (die mid-shard while executing shard 1), "truncate:2"
// (truncate shard 2's completed file mid-case), "dup:1:3" (the
// coordinator copies shard 1's completed file over shard 3's path
// before merge validation), "flaky:0:2" (fail shard 0 with an
// endpoint-attributed error twice before executing it), "slow:1:50"
// (delay every execution of shard 1 by 50ms), "blackhole:2" (accept
// shard 2, write its header, then hang until cancelled). The shard
// index in flaky/slow/blackhole may be "*" to match every shard —
// that is how a whole endpoint is made flaky, slow or dead: give its
// worker an injector with a wildcard fault. Test-only: the chaos
// suite and the sweep-smoke CI step set it; production campaigns
// never should.
const EnvFault = "SWEEP_FAULT"

// AnyShard is the wildcard shard index ("*" in EnvFault syntax):
// flaky, slow and blackhole faults armed with it apply to every shard
// the injector's worker executes.
const AnyShard = -2

// FaultExitCode is the exit status an injected kill dies with in a
// subprocess worker — distinguishable from an ordinary failure (1) or
// a usage error (2).
const FaultExitCode = 3

// Injector arms test-only faults against specific shards. The zero
// value and the nil injector inject nothing. In-process faults fire
// once per injector (a retry or resume pass after the fault runs
// clean, like a real transient crash); subprocess workers re-read the
// env each run, so persistent chaos needs the retry budget or a
// resume pass without the env, exactly like the smoke test drives it.
type Injector struct {
	// Kill names the shard whose execution dies halfway through, -1 for
	// none. Exit, when set (subprocess workers), terminates the process
	// with FaultExitCode; otherwise the execution returns an error and
	// leaves the shard file torn.
	Kill int
	Exit func(code int)
	// Truncate names the shard whose completed file is cut to two
	// thirds of its size, -1 for none.
	Truncate int
	// Dup/DupAt name a completed shard to copy over another shard's
	// path before merge validation, -1 for none. The copy is a
	// structurally valid shard file in the wrong place — the foreign
	// classification, not torn.
	Dup   int
	DupAt int
	// Flaky names the shard (or AnyShard) whose execution fails with an
	// endpoint-attributed error FlakyTimes times before running clean —
	// the fail-N-then-succeed worker. Unlike kill, the failure happens
	// before any write, like a refused connection.
	Flaky      int
	FlakyTimes int
	// Slow names the shard (or AnyShard) whose every execution is
	// delayed by SlowDelay before the first case runs — the straggler
	// worker the hedging layer routes around.
	Slow      int
	SlowDelay time.Duration
	// Blackhole names the shard (or AnyShard) whose execution writes
	// the shard header and then hangs until its context is cancelled —
	// the accept-then-hang worker only a hedge or timeout rescues.
	Blackhole int

	mu        sync.Mutex
	fired     map[string]bool
	flakyLeft int
	flakyInit sync.Once
}

// NewInjector returns an injector with no faults armed.
func NewInjector() *Injector {
	return &Injector{Kill: -1, Truncate: -1, Dup: -1, DupAt: -1, Flaky: -1, Slow: -1, Blackhole: -1}
}

// ParseFaults parses the EnvFault syntax. Empty input returns a no-op
// injector.
func ParseFaults(s string) (*Injector, error) {
	inj := NewInjector()
	if s == "" {
		return inj, nil
	}
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(part, ":")
		atoi := func(i int) (int, error) {
			n, err := strconv.Atoi(fields[i])
			if err != nil || n < 0 {
				return 0, fmt.Errorf("sweep: bad fault shard index in %q", part)
			}
			return n, nil
		}
		// shard accepts the "*" wildcard (any shard) where atoi does not.
		shard := func(i int) (int, error) {
			if fields[i] == "*" {
				return AnyShard, nil
			}
			return atoi(i)
		}
		var err error
		switch {
		case fields[0] == "kill" && len(fields) == 2:
			inj.Kill, err = atoi(1)
		case fields[0] == "truncate" && len(fields) == 2:
			inj.Truncate, err = atoi(1)
		case fields[0] == "dup" && len(fields) == 3:
			if inj.Dup, err = atoi(1); err == nil {
				inj.DupAt, err = atoi(2)
			}
		case fields[0] == "flaky" && len(fields) == 3:
			if inj.Flaky, err = shard(1); err == nil {
				inj.FlakyTimes, err = atoi(2)
			}
		case fields[0] == "slow" && len(fields) == 3:
			if inj.Slow, err = shard(1); err == nil {
				var ms int
				ms, err = atoi(2)
				inj.SlowDelay = time.Duration(ms) * time.Millisecond
			}
		case fields[0] == "blackhole" && len(fields) == 2:
			inj.Blackhole, err = shard(1)
		default:
			return nil, fmt.Errorf("sweep: bad fault spec %q (want kill:N, truncate:N, dup:N:M, flaky:N:K, slow:N:MS or blackhole:N)", part)
		}
		if err != nil {
			return nil, err
		}
	}
	return inj, nil
}

// FaultsFromEnv builds the injector a subprocess worker runs under,
// from the EnvFault variable. Exit is left nil; the worker CLI wires
// os.Exit.
func FaultsFromEnv() (*Injector, error) {
	return ParseFaults(os.Getenv(EnvFault))
}

// once reports whether the named fault fires now, flipping it off for
// the rest of the injector's life.
func (inj *Injector) once(name string) bool {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.fired[name] {
		return false
	}
	if inj.fired == nil {
		inj.fired = map[string]bool{}
	}
	inj.fired[name] = true
	return true
}

func (inj *Injector) killsShard(i int) bool {
	if inj == nil || inj.Kill != i {
		return false
	}
	return inj.once(fmt.Sprintf("kill:%d", i))
}

func (inj *Injector) truncatesShard(i int) bool {
	if inj == nil || inj.Truncate != i {
		return false
	}
	return inj.once(fmt.Sprintf("truncate:%d", i))
}

// matchesShard matches an armed fault index against a shard, honoring
// the AnyShard wildcard.
func matchesShard(armed, i int) bool {
	return armed == i || armed == AnyShard
}

// flakyFires reports whether this execution of shard i should fail
// with an endpoint-attributed error: true for the first FlakyTimes
// matching executions, clean afterwards — fail-N-then-succeed.
func (inj *Injector) flakyFires(i int) bool {
	if inj == nil || inj.FlakyTimes <= 0 || !matchesShard(inj.Flaky, i) {
		return false
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.flakyInit.Do(func() { inj.flakyLeft = inj.FlakyTimes })
	if inj.flakyLeft <= 0 {
		return false
	}
	inj.flakyLeft--
	return true
}

// slowsShard returns the injected delay for shard i (0 for none).
// Unlike kill, slowness is persistent: every execution pays it.
func (inj *Injector) slowsShard(i int) time.Duration {
	if inj == nil || inj.SlowDelay <= 0 || !matchesShard(inj.Slow, i) {
		return 0
	}
	return inj.SlowDelay
}

// blackholesShard reports whether shard i's execution should hang
// after accepting the work. Persistent, like a truly dead endpoint.
func (inj *Injector) blackholesShard(i int) bool {
	return inj != nil && inj.Blackhole != -1 && matchesShard(inj.Blackhole, i)
}

// dupShards returns the armed duplicate-copy fault, if any.
func (inj *Injector) dupShards() (src, dst int, ok bool) {
	if inj == nil || inj.Dup < 0 || inj.DupAt < 0 {
		return 0, 0, false
	}
	if !inj.once(fmt.Sprintf("dup:%d:%d", inj.Dup, inj.DupAt)) {
		return 0, 0, false
	}
	return inj.Dup, inj.DupAt, true
}

// exit terminates a subprocess worker mid-fault; in-process (Exit nil)
// it is a no-op and the caller returns an error instead.
func (inj *Injector) exit(code int) {
	if inj != nil && inj.Exit != nil {
		inj.Exit(code)
	}
}
