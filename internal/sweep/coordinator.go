package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/api"
	"repro/internal/scenario"
)

// Options configure one coordinator pass over a campaign.
type Options struct {
	// Workers is the number of shards in flight at once (default 1).
	Workers int
	// OutDir holds the campaign spec, the shard files, the stats
	// sidecar, and (by default) the merged output. Required.
	OutDir string
	// Out is the merged campaign file path (default OutDir/campaign.jsonl).
	Out string
	// Resume skips shards whose files already end in a valid footer and
	// re-executes only torn, missing, foreign or failed shards. Without
	// it every shard is re-executed from scratch.
	Resume bool
	// Retries is the extra attempts per shard beyond the first.
	Retries int
	// Backoff is the base wait before a retry (default 100ms). Actual
	// waits use decorrelated jitter in [Backoff, BackoffCap] so
	// simultaneous failures spread out instead of retrying in lockstep.
	Backoff time.Duration
	// BackoffCap bounds the jittered retry backoff (default 10×Backoff).
	BackoffCap time.Duration
	// MaxFailures is the fail-fast budget: once this many shards have
	// exhausted their retries, in-flight work is cancelled (default 1).
	MaxFailures int
	// Worker executes shards (default an in-process LocalWorker). When
	// Endpoints is empty, the coordinator wraps Worker as a single
	// endpoint with Workers slots.
	Worker Worker
	// Endpoints, when set, spreads shards across independently
	// health-tracked workers: each gets its own circuit breaker and
	// latency EWMA, its Slots concurrent shards, and work-stealing /
	// hedging move shards between them. Overrides Worker and Workers
	// for execution.
	Endpoints []Endpoint
	// Fallback executes shards when every endpoint's breaker is open —
	// graceful degradation instead of a failed campaign (default: an
	// in-process LocalWorker sharing Injector).
	Fallback Worker
	// HedgeFactor is the straggler multiple k: a running shard older
	// than k× the fleet latency EWMA may be speculatively re-dispatched
	// to another healthy endpoint, first valid shard file wins
	// (default 3; hedging needs at least two endpoints).
	HedgeFactor float64
	// HedgeMin floors the hedge age threshold (default 200ms).
	HedgeMin time.Duration
	// MaxHedges caps concurrent extra attempts per shard (default 1).
	MaxHedges int
	// ShardTimeout bounds a single shard attempt; 0 means unbounded.
	// The safety net for a fleet whose every endpoint accepts work and
	// hangs — hedging only rescues stragglers while someone completes.
	ShardTimeout time.Duration
	// BreakerFailures is the consecutive-failure count that opens an
	// endpoint's circuit (default 3).
	BreakerFailures int
	// BreakerCooldown is how long an open circuit parks before letting
	// a half-open probe shard through (default 500ms, jittered).
	BreakerCooldown time.Duration
	// Injector arms test-only chaos; it is handed to the default
	// LocalWorker and drives the coordinator-side duplicate-shard fault.
	Injector *Injector
	// OnProgress, when set, receives a live Progress snapshot after
	// every dispatch and settle (called synchronously under the
	// dispatcher lock — hand it to a ProgressTracker, don't block).
	OnProgress func(Progress)
	// Log, when set, receives human progress lines.
	Log io.Writer
}

// Result is one coordinator pass: where the merged file landed and the
// per-shard accounting that also lands in the stats sidecar.
type Result struct {
	Campaign  *Campaign
	Out       string
	StatsPath string
	Shards    []api.ShardStats
	Stats     api.SweepStats
}

// ShardPath names shard i's file inside dir.
func ShardPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%04d.jsonl", i))
}

// SpecPath names the normalized campaign spec file inside dir.
func SpecPath(dir string) string { return filepath.Join(dir, "campaign.json") }

// MergedPath names the default merged campaign file inside dir.
func MergedPath(dir string) string { return filepath.Join(dir, "campaign.jsonl") }

// Run executes one coordinator pass: plan (skipping resumed shards),
// execute the rest on the worker pool with per-shard retries and the
// fail-fast budget, validate every shard file, and merge them in shard
// order into the campaign trace. On partial failure the completed
// shard files keep their value: the error says to re-run with resume,
// and a resume pass executes only what was lost. The merged file is
// byte-identical no matter how many passes, workers, or interleavings
// it took.
func Run(ctx context.Context, c *Campaign, opts Options) (*Result, error) {
	start := time.Now()
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.MaxFailures <= 0 {
		opts.MaxFailures = 1
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 100 * time.Millisecond
	}
	if opts.Worker == nil && len(opts.Endpoints) == 0 {
		opts.Worker = &LocalWorker{Injector: opts.Injector}
	}
	planWorker := "local"
	if opts.Worker != nil {
		planWorker = opts.Worker.Name()
	} else if len(opts.Endpoints) > 0 {
		planWorker = opts.Endpoints[0].Worker.Name()
	}
	if opts.OutDir == "" {
		return nil, fmt.Errorf("sweep: coordinator needs an out dir")
	}
	if opts.Out == "" {
		opts.Out = MergedPath(opts.OutDir)
	}
	if err := os.MkdirAll(opts.OutDir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	if err := writeSpecFile(c, opts); err != nil {
		return nil, err
	}

	res := &Result{
		Campaign:  c,
		Out:       opts.Out,
		StatsPath: filepath.Join(opts.OutDir, "stats.jsonl"),
	}
	shards := c.Shards()
	res.Shards = make([]api.ShardStats, len(shards))

	// Plan: under resume, shards already ending in a valid footer are
	// skipped — the crash-recovery contract.
	var queue []Shard
	for _, sh := range shards {
		st := &res.Shards[sh.Index]
		*st = api.ShardStats{
			SchemaVersion: api.SchemaVersion,
			Record:        api.RecordShardStats,
			Shard:         sh.Index,
			From:          sh.From,
			To:            sh.To,
			Worker:        planWorker,
		}
		if opts.Resume {
			info, err := InspectShard(ShardPath(opts.OutDir, sh.Index), c.ShardHeader(sh))
			if err != nil {
				return nil, err
			}
			if info.State == StateValid {
				st.Skipped = true
				st.State = StateValid
				logf(opts.Log, "shard %d/%d [%d,%d) resumed: already valid", sh.Index, len(shards), sh.From, sh.To)
				continue
			}
			logf(opts.Log, "shard %d/%d [%d,%d) %s: re-executing", sh.Index, len(shards), sh.From, sh.To, info.State)
		}
		queue = append(queue, sh)
	}

	// Execute on the resilient dispatch layer: per-endpoint circuit
	// breakers, a work-stealing FIFO queue, hedged stragglers, jittered
	// retry backoff, the fail-fast budget cancelling in-flight shards
	// (whose torn files a resume pass then re-executes — a killed
	// worker never costs more than its in-flight shard), and local
	// fallback when the whole fleet is quarantined.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	skippedCases := 0
	for i := range res.Shards {
		if res.Shards[i].Skipped {
			skippedCases += res.Shards[i].To - res.Shards[i].From
		}
	}
	d := newDispatcher(runCtx, cancel, c, opts, queue, res, skippedCases)
	d.run()

	// Coordinator-side chaos: duplicate a completed shard over another
	// shard's path. The final validation below classifies it foreign.
	if src, dst, ok := opts.Injector.dupShards(); ok {
		if err := copyFile(ShardPath(opts.OutDir, src), ShardPath(opts.OutDir, dst)); err != nil {
			return res, fmt.Errorf("sweep: dup fault: %w", err)
		}
		logf(opts.Log, "injected duplicate: shard %d copied over shard %d", src, dst)
	}

	// Validate every shard file — including skipped and allegedly
	// successful ones — then merge or report what a resume pass must
	// redo.
	incomplete := 0
	for _, sh := range shards {
		st := &res.Shards[sh.Index]
		info, err := InspectShard(ShardPath(opts.OutDir, sh.Index), c.ShardHeader(sh))
		if err != nil {
			return res, err
		}
		if info.State != StateValid {
			incomplete++
			st.State = info.State
			if st.Error == "" {
				st.Error = info.Reason
			}
		}
	}
	res.Stats = sweepStats(c, res, opts, d, len(queue), start)
	if serr := writeStats(res); serr != nil {
		return res, serr
	}
	if incomplete > 0 {
		return res, fmt.Errorf("sweep: %s: %d of %d shards incomplete after %d worker(s); completed shards are preserved — re-run with resume to execute only the missing work",
			c.Spec.Name, incomplete, len(shards), opts.Workers)
	}

	if err := merge(c, shards, opts); err != nil {
		return res, err
	}
	logf(opts.Log, "merged %d shards (%d cases) into %s", len(shards), c.Cases(), opts.Out)
	return res, nil
}

// MergeDir validates every shard file in dir against the campaign and
// merges them into out — the coordinator's final step, exposed for
// merge-only passes over a directory whose shards were produced
// elsewhere (e.g. copied from workers on other hosts). No shard is
// executed; an invalid shard aborts with its classification.
func MergeDir(c *Campaign, dir, out string) error {
	if out == "" {
		out = MergedPath(dir)
	}
	shards := c.Shards()
	for _, sh := range shards {
		info, err := InspectShard(ShardPath(dir, sh.Index), c.ShardHeader(sh))
		if err != nil {
			return err
		}
		if info.State != StateValid {
			return fmt.Errorf("sweep: shard %d is %s (%s); execute it before merging", sh.Index, info.State, info.Reason)
		}
	}
	return merge(c, shards, Options{OutDir: dir, Out: out})
}

// merge streams the validated shard files, in shard order, into the
// campaign trace: the scenario header, every shard's case lines byte
// for byte (no re-encoding — what the worker wrote is what the merge
// emits), and the summary refolded from the decoded cases. Written to
// a temp file and renamed, so a torn merge is never mistaken for a
// campaign.
func merge(c *Campaign, shards []Shard, opts Options) error {
	tmp := opts.Out + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("sweep: merge: %w", err)
	}
	defer os.Remove(tmp)
	defer f.Close()

	hdr, err := json.Marshal(c.Header())
	if err != nil {
		return err
	}
	if _, err := f.Write(append(hdr, '\n')); err != nil {
		return fmt.Errorf("sweep: merge: %w", err)
	}
	cases := make([]api.TraceCase, 0, c.Cases())
	for _, sh := range shards {
		data, err := os.ReadFile(ShardPath(opts.OutDir, sh.Index))
		if err != nil {
			return fmt.Errorf("sweep: merge: %w", err)
		}
		lines := bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n"))
		for _, line := range lines[1 : len(lines)-1] {
			var rec api.TraceCase
			if err := json.Unmarshal(line, &rec); err != nil {
				return fmt.Errorf("sweep: merge: shard %d case line: %w", sh.Index, err)
			}
			cases = append(cases, rec)
			if _, err := f.Write(append(line, '\n')); err != nil {
				return fmt.Errorf("sweep: merge: %w", err)
			}
		}
	}
	sum, err := json.Marshal(scenario.Summarize(c.summaryName(), c.Cases(), cases, ""))
	if err != nil {
		return err
	}
	if _, err := f.Write(append(sum, '\n')); err != nil {
		return fmt.Errorf("sweep: merge: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("sweep: merge: %w", err)
	}
	if err := os.Rename(tmp, opts.Out); err != nil {
		return fmt.Errorf("sweep: merge: %w", err)
	}
	return nil
}

// writeSpecFile persists the normalized spec into the out dir so
// subprocess workers and resume passes run the exact campaign the
// coordinator planned. A resume pass against a dir holding a different
// campaign is refused instead of silently mixing shards.
func writeSpecFile(c *Campaign, opts Options) error {
	path := SpecPath(opts.OutDir)
	if opts.Resume {
		if prev, err := LoadFile(path, nil); err == nil {
			if prev.Digest != c.Digest {
				return fmt.Errorf("sweep: %s holds campaign %s (digest %s), not %s (digest %s) — use a fresh out dir",
					opts.OutDir, prev.Spec.Name, prev.Digest, c.Spec.Name, c.Digest)
			}
			return nil
		}
	}
	b, err := json.Marshal(c.Spec)
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	return nil
}

func writeStats(res *Result) error {
	f, err := os.Create(res.StatsPath)
	if err != nil {
		return fmt.Errorf("sweep: stats: %w", err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	for i := range res.Shards {
		if err := enc.Encode(&res.Shards[i]); err != nil {
			return fmt.Errorf("sweep: stats: %w", err)
		}
	}
	if err := enc.Encode(&res.Stats); err != nil {
		return fmt.Errorf("sweep: stats: %w", err)
	}
	return f.Close()
}

func sweepStats(c *Campaign, res *Result, opts Options, d *dispatcher, executed int, start time.Time) api.SweepStats {
	workers := opts.Workers
	if len(opts.Endpoints) > 0 {
		workers = 0
		for _, ep := range d.eps {
			workers += ep.Slots
		}
	}
	s := api.SweepStats{
		SchemaVersion:  api.SchemaVersion,
		Record:         api.RecordSweepStats,
		Campaign:       c.Spec.Name,
		CampaignDigest: c.Digest,
		Cases:          c.Cases(),
		Shards:         c.Spec.Shards,
		Workers:        workers,
		Executed:       executed,
		Retried:        d.retried,
		Hedges:         d.hedges,
		HedgesWon:      d.hedgesWon,
		Steals:         d.steals,
		Requeues:       d.requeues,
		Fallbacks:      d.fallbacks,
		WallNS:         time.Since(start).Nanoseconds(),
		UnixTime:       time.Now().Unix(),
		GoVersion:      runtime.Version(),
	}
	for _, ep := range d.eps {
		s.WorkerHealth = append(s.WorkerHealth, ep.snapshot())
	}
	for i := range res.Shards {
		if res.Shards[i].Skipped {
			s.Skipped++
		}
		if st := res.Shards[i].State; st != StateValid {
			s.Failed++
		}
	}
	if lw, ok := opts.Worker.(*LocalWorker); ok {
		s.CasesExecuted = lw.CasesExecuted()
	}
	return s
}

func copyFile(src, dst string) error {
	b, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	return os.WriteFile(dst, b, 0o644)
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

func logf(w io.Writer, format string, args ...interface{}) {
	if w != nil {
		fmt.Fprintf(w, format+"\n", args...)
	}
}
