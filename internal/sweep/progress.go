package sweep

import (
	"encoding/json"
	"expvar"
	"net/http"
	"sync"
	"sync/atomic"

	"repro/internal/api"
)

// Progress is one live snapshot of a coordinator pass: shard counts by
// state, dispatch-layer accounting (hedges, steals, requeues,
// fallbacks), per-endpoint health, and an ETA folded from the fleet
// latency EWMA. Snapshots are never written to shard or campaign files
// — they are the /progressz payload and the `sweep status -follow`
// feed, deliberately outside the deterministic merge surface.
type Progress = api.SweepProgress

// ProgressTracker retains the latest Progress snapshot for concurrent
// readers — the bridge between a running coordinator (which calls
// Update via Options.OnProgress) and anything serving or polling it.
// The zero value is ready to use.
type ProgressTracker struct {
	p atomic.Pointer[api.SweepProgress]
}

// Update stores a new snapshot.
func (t *ProgressTracker) Update(p Progress) {
	t.p.Store(&p)
}

// Latest returns the most recent snapshot, if any.
func (t *ProgressTracker) Latest() (Progress, bool) {
	if p := t.p.Load(); p != nil {
		return *p, true
	}
	return Progress{}, false
}

// Handler serves the latest snapshot as JSON — the coordinator's
// /progressz endpoint. Before the first snapshot it replies 503, so a
// prober can tell "not started" from "no progress".
func (t *ProgressTracker) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		p, ok := t.Latest()
		if !ok {
			http.Error(w, "sweep: no progress yet", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(p)
	})
}

// Expvar counters: process-wide monotonic dispatch totals published
// under the "sweep" map, so a coordinator embedded next to a simd
// server shares one /debug/vars page with its /statsz counters.
// Registered lazily and exactly once — expvar panics on duplicates.
var (
	expOnce sync.Once
	expMap  *expvar.Map
)

func sweepVars() *expvar.Map {
	expOnce.Do(func() {
		expMap = expvar.NewMap("sweep")
	})
	return expMap
}

// expAdd bumps one counter in the shared "sweep" expvar map.
func expAdd(name string, delta int64) {
	if delta != 0 {
		sweepVars().Add(name, delta)
	}
}
