package sweep_test

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/sweep"
)

const helperEnv = "SWEEP_TEST_HELPER"

// TestHelperProcess is not a test: re-invoked by the process-worker
// tests as a subprocess, it plays the `testsuite sweep worker` role —
// load the campaign spec, execute one shard into a file, honor the
// SWEEP_FAULT env (an injected kill really exits the process here).
func TestHelperProcess(t *testing.T) {
	if os.Getenv(helperEnv) != "1" {
		return
	}
	args := os.Args
	for i, a := range args {
		if a == "--" {
			args = args[i+1:]
			break
		}
	}
	if len(args) != 3 {
		fmt.Fprintf(os.Stderr, "helper: want specPath shard outPath, got %v\n", args)
		os.Exit(2)
	}
	c, err := sweep.LoadFile(args[0], nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	idx, err := strconv.Atoi(args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sh, err := c.ShardAt(idx)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	inj, err := sweep.FaultsFromEnv()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	inj.Exit = os.Exit
	if _, err := sweep.ExecuteShardFile(context.Background(), c, sh, args[2], inj); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// helperWorker spawns this test binary as the shard worker subprocess.
func helperWorker(dir string) *sweep.ProcessWorker {
	return &sweep.ProcessWorker{
		Argv: func(c *sweep.Campaign, sh sweep.Shard, path string) []string {
			exe, err := os.Executable()
			if err != nil {
				exe = os.Args[0]
			}
			return []string{exe, "-test.run=TestHelperProcess", "--", sweep.SpecPath(dir), strconv.Itoa(sh.Index), path}
		},
	}
}

// TestProcessWorkerCampaign runs a full campaign on subprocess workers
// and pins the merged bytes against the single-process reference.
func TestProcessWorkerCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	spec := scenarioSpec(31, 6)
	want := singleProcessBytes(t, spec)
	c := mustLoad(t, sweep.WrapScenario(spec, 3))
	dir := t.TempDir()
	t.Setenv(helperEnv, "1")
	res := runCoordinator(t, c, sweep.Options{Workers: 2, OutDir: dir, Worker: helperWorker(dir)})
	if got := readOut(t, res); !bytes.Equal(got, want) {
		t.Fatal("subprocess-worker campaign differs from single-process run")
	}
}

// TestProcessWorkerKilledMidShard is the real multi-process crash: the
// SWEEP_FAULT env makes the subprocess for shard 1 exit mid-shard with
// FaultExitCode, leaving a torn file. The pass fails, the resume pass
// (fault env cleared) completes it, and the merged bytes match the
// uninterrupted run.
func TestProcessWorkerKilledMidShard(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	spec := scenarioSpec(32, 6)
	want := singleProcessBytes(t, spec)
	c := mustLoad(t, sweep.WrapScenario(spec, 3))
	dir := t.TempDir()
	t.Setenv(helperEnv, "1")
	t.Setenv(sweep.EnvFault, "kill:1")

	res1, err := sweep.Run(context.Background(), c, sweep.Options{
		Workers: 1, // pin the schedule: shard 0 completes before shard 1 dies
		OutDir:  dir,
		Worker:  helperWorker(dir),
	})
	if err == nil {
		t.Fatal("pass with killed subprocess succeeded")
	}
	if !strings.Contains(err.Error(), "resume") {
		t.Fatalf("error does not point at resume: %v", err)
	}
	failed := res1.Shards[1]
	if failed.State == sweep.StateValid || !strings.Contains(failed.Error, fmt.Sprint(sweep.FaultExitCode)) {
		t.Fatalf("shard 1 stats %+v; want failure with exit status %d", failed, sweep.FaultExitCode)
	}

	os.Unsetenv(sweep.EnvFault)
	res2, err := sweep.Run(context.Background(), c, sweep.Options{
		Workers: 2,
		OutDir:  dir,
		Resume:  true,
		Worker:  helperWorker(dir),
	})
	if err != nil {
		t.Fatalf("resume pass: %v", err)
	}
	if got := readOut(t, res2); !bytes.Equal(got, want) {
		t.Fatal("resumed multi-process campaign differs from uninterrupted run")
	}
	// The killed worker cost only its in-flight shard: shard 0 was
	// completed by the first pass and resumed, not re-executed.
	if !res2.Shards[0].Skipped {
		t.Error("shard 0 was re-executed on resume despite a valid footer")
	}
}

// TestProcessWorkerCommandFailure pins the worker error path: a
// subprocess that cannot even start surfaces as a shard failure with
// stderr context, not a hang or a silent torn file.
func TestProcessWorkerCommandFailure(t *testing.T) {
	w := &sweep.ProcessWorker{Argv: func(c *sweep.Campaign, sh sweep.Shard, path string) []string {
		return []string{"/nonexistent-sweep-worker-binary"}
	}}
	c := mustLoad(t, sweep.WrapScenario(scenarioSpec(33, 2), 2))
	err := w.RunShard(context.Background(), c, c.Shards()[0], sweep.ShardPath(t.TempDir(), 0))
	if err == nil {
		t.Fatal("nonexistent worker binary reported success")
	}
	if !strings.Contains(err.Error(), "shard 0") {
		t.Errorf("error %v lacks shard context", err)
	}
}
