package sweep

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/api"
)

// The resilient dispatch layer. The coordinator plans shards; this
// file decides *who* runs each one — and only who. A shard's identity
// (its case range, its bytes, its digest) is fixed by the campaign
// layout, so stealing, hedging and fallback can move work between
// endpoints freely without perturbing the byte-identical merge.
//
// The moving parts:
//
//   - Every endpoint runs Slots dispatcher loops over one shared FIFO
//     queue. A loop prefers shards whose home endpoint it is (index
//     round-robin, which preserves the legacy placement and the chaos
//     suite's pinned schedules) and otherwise steals the oldest ready
//     shard.
//   - Each endpoint carries a circuit breaker (epHealth): consecutive
//     failures open it, an open endpoint parks instead of taking work,
//     and after a cooldown a single half-open probe shard decides
//     whether it closes again.
//   - A running shard whose age exceeds max(HedgeMin, HedgeFactor ×
//     fleet latency EWMA) may be hedged: re-dispatched to a different
//     healthy endpoint. Hedge attempts write to a side path and the
//     first valid result is renamed into place, so racing writers
//     never share a file.
//   - When every breaker is open, parked loops drain the queue on the
//     Fallback worker (an in-process LocalWorker by default) — the
//     campaign degrades to local execution rather than failing.

type taskState int

const (
	taskPending taskState = iota
	taskRunning
	taskDone
	taskFailed
)

// task is one shard's dispatch lifecycle. All fields are guarded by
// the dispatcher's mutex.
type task struct {
	sh   Shard
	st   *api.ShardStats
	home int // preferred endpoint (legacy round-robin placement)

	state       taskState
	notBefore   time.Time // backoff gate while pending
	prevBackoff time.Duration
	retriesLeft int
	hedging     int // concurrent extra attempts in flight
	running     []*attempt
	failedOn    map[int]bool // endpoints this shard already failed on
	dispatched  time.Time    // first dispatch, for WallNS
}

// attempt is one execution of a task on one endpoint (or the
// fallback, ep == -1). Hedge attempts write a side path.
type attempt struct {
	t      *task
	ep     int
	hedge  bool
	probe  bool
	path   string
	start  time.Time
	ctx    context.Context
	cancel context.CancelFunc
}

type dispatcher struct {
	mu   sync.Mutex
	cond *sync.Cond

	ctx    context.Context
	cancel context.CancelFunc
	c      *Campaign
	opts   Options

	eps      []*epHealth
	fallback Worker
	tasks    []*task // FIFO by shard index; states live on the tasks

	total        int
	done, failed int

	completions int
	fleetEWMA   float64
	casesDone   int
	casesBase   int // cases covered by resumed (skipped) shards

	failures  int // fail-fast budget consumed
	retried   int
	hedges    int
	hedgesWon int
	steals    int
	requeues  int
	fallbacks int

	rng      splitmix64
	hedgeSeq int
	start    time.Time
}

func newDispatcher(ctx context.Context, cancel context.CancelFunc, c *Campaign, opts Options, queue []Shard, res *Result, casesBase int) *dispatcher {
	d := &dispatcher{
		c:         c,
		opts:      opts,
		casesBase: casesBase,
		start:     time.Now(),
	}
	d.cond = sync.NewCond(&d.mu)
	d.ctx, d.cancel = ctx, cancel
	d.rng.s = uint64(time.Now().UnixNano())

	eps := opts.Endpoints
	if len(eps) == 0 {
		eps = []Endpoint{{Worker: opts.Worker, Name: opts.Worker.Name(), Slots: opts.Workers}}
	}
	for i, ep := range eps {
		if ep.Slots <= 0 {
			ep.Slots = 1
		}
		if ep.Name == "" {
			ep.Name = ep.Worker.Name()
			if len(eps) > 1 {
				ep.Name = fmt.Sprintf("%s[%d]", ep.Name, i)
			}
		}
		d.eps = append(d.eps, &epHealth{Endpoint: ep, index: i, state: healthClosed})
	}
	d.fallback = opts.Fallback
	if d.fallback == nil {
		d.fallback = &LocalWorker{Injector: opts.Injector}
	}
	for _, sh := range queue {
		d.tasks = append(d.tasks, &task{
			sh:          sh,
			st:          &res.Shards[sh.Index],
			home:        sh.Index % len(d.eps),
			retriesLeft: opts.Retries,
			failedOn:    map[int]bool{},
		})
	}
	d.total = len(d.tasks)
	return d
}

// run drives every endpoint slot until all tasks settle or the pass is
// cancelled, then emits a final progress snapshot.
func (d *dispatcher) run() {
	stop := make(chan struct{})
	go func() {
		// A context cancellation must wake parked slots.
		select {
		case <-d.ctx.Done():
			d.mu.Lock()
			d.cond.Broadcast()
			d.mu.Unlock()
		case <-stop:
		}
	}()
	var wg sync.WaitGroup
	for _, ep := range d.eps {
		for s := 0; s < ep.Slots; s++ {
			wg.Add(1)
			go func(ep *epHealth) {
				defer wg.Done()
				d.slotLoop(ep)
			}(ep)
		}
	}
	wg.Wait()
	close(stop)
	d.mu.Lock()
	d.emitProgress()
	d.mu.Unlock()
}

// slotLoop is one dispatch slot on one endpoint: gate on the breaker,
// take pending work (home first, then steal), hedge stragglers when
// idle, execute, settle, repeat.
func (d *dispatcher) slotLoop(ep *epHealth) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.ctx.Err() != nil || d.done+d.failed >= d.total {
			return
		}
		now := time.Now()
		ep.tick(now)
		var at *attempt
		switch ep.state {
		case healthOpen:
			if d.allOpen() {
				// Graceful degradation: every breaker is open, so parked
				// slots drain the queue on the fallback worker.
				if t := d.takePending(ep.index, now, true); t != nil {
					at = d.newAttempt(t, -1, false, false)
					d.fallbacks++
					expAdd("fallbacks", 1)
					break
				}
			}
			d.waitUntil(ep.openUntil)
			continue
		case healthHalfOpen:
			if ep.probing {
				d.cond.Wait()
				continue
			}
			t := d.takePending(ep.index, now, false)
			if t == nil {
				d.waitTimed(ep.index, now)
				continue
			}
			ep.probing = true
			ep.probes++
			at = d.newAttempt(t, ep.index, false, true)
		default: // closed
			if t := d.takePending(ep.index, now, false); t != nil {
				at = d.newAttempt(t, ep.index, false, false)
			} else if t := d.takeHedge(ep.index, now); t != nil {
				at = d.newAttempt(t, ep.index, true, false)
			} else {
				d.waitTimed(ep.index, now)
				continue
			}
		}
		d.emitProgress()
		d.mu.Unlock()
		runErr := d.execute(at)
		info, inspErr := InspectShard(at.path, d.c.ShardHeader(at.t.sh))
		d.mu.Lock()
		d.settle(at, info, runErr, inspErr)
	}
}

// execute runs one attempt outside the lock.
func (d *dispatcher) execute(at *attempt) error {
	w := d.fallback
	if at.ep >= 0 {
		w = d.eps[at.ep].Worker
	}
	return w.RunShard(at.ctx, d.c, at.t.sh, at.path)
}

// takePending returns the next ready pending task for this endpoint:
// home-affinity shards in FIFO order first (preserving the legacy
// schedule on a single endpoint), then the oldest stealable shard. A
// task poisoned against this endpoint (it already failed there) is
// skipped until every endpoint is poisoned — at which point the blame
// is the shard's and anyone may retry it. The fallback path ignores
// poisoning: it is the route of last resort.
func (d *dispatcher) takePending(epIdx int, now time.Time, viaFallback bool) *task {
	var steal *task
	for _, t := range d.tasks {
		if t.state != taskPending || t.notBefore.After(now) {
			continue
		}
		if viaFallback {
			return t
		}
		if t.failedOn[epIdx] && !d.allPoisoned(t) {
			continue
		}
		if t.home == epIdx {
			return t
		}
		if steal == nil {
			steal = t
		}
	}
	return steal
}

// allPoisoned reports whether t has failed on every endpoint.
func (d *dispatcher) allPoisoned(t *task) bool {
	return len(t.failedOn) >= len(d.eps)
}

// hedgeThreshold is the age past which a running shard counts as a
// straggler. Before the first completion there is no EWMA baseline to
// be slow against and the HedgeMin floor alone decides — which keeps
// hedging live even when a blackholed endpoint swallows every shard
// before anything finishes.
func (d *dispatcher) hedgeThreshold() time.Duration {
	factor := d.opts.HedgeFactor
	if factor <= 0 {
		factor = 3
	}
	min := d.opts.HedgeMin
	if min <= 0 {
		min = 200 * time.Millisecond
	}
	th := time.Duration(factor * d.fleetEWMA)
	if th < min {
		th = min
	}
	return th
}

func (d *dispatcher) maxHedges() int {
	if d.opts.MaxHedges > 0 {
		return d.opts.MaxHedges
	}
	return 1
}

// hedgeEligible reports whether epIdx could usefully hedge t: the task
// is running somewhere else, has hedge budget, and hasn't already
// failed here. Hedging onto the endpoint already running the shard
// would duplicate the straggler, not route around it.
func (d *dispatcher) hedgeEligible(t *task, epIdx int) bool {
	if t.state != taskRunning || len(t.running) == 0 {
		return false
	}
	if t.hedging >= d.maxHedges() || t.failedOn[epIdx] {
		return false
	}
	for _, a := range t.running {
		if a.ep == epIdx {
			return false
		}
	}
	return true
}

// hedgeStart is the age reference for t: its oldest in-flight attempt.
func hedgeStart(t *task) time.Time {
	start := t.running[0].start
	for _, a := range t.running[1:] {
		if a.start.Before(start) {
			start = a.start
		}
	}
	return start
}

// takeHedge picks the longest-running straggler this endpoint may
// speculatively re-execute, if any is past the hedge threshold.
func (d *dispatcher) takeHedge(epIdx int, now time.Time) *task {
	if len(d.eps) < 2 {
		return nil
	}
	th := d.hedgeThreshold()
	var best *task
	var bestStart time.Time
	for _, t := range d.tasks {
		if !d.hedgeEligible(t, epIdx) {
			continue
		}
		start := hedgeStart(t)
		if now.Sub(start) < th {
			continue
		}
		if best == nil || start.Before(bestStart) {
			best = t
			bestStart = start
		}
	}
	return best
}

// newAttempt registers a dispatch under the lock: the attempt context
// exists before execution starts so a racing winner can cancel it.
func (d *dispatcher) newAttempt(t *task, epIdx int, hedge, probe bool) *attempt {
	now := time.Now()
	path := ShardPath(d.opts.OutDir, t.sh.Index)
	at := &attempt{t: t, ep: epIdx, hedge: hedge, probe: probe, start: now}
	if d.opts.ShardTimeout > 0 {
		at.ctx, at.cancel = context.WithTimeout(d.ctx, d.opts.ShardTimeout)
	} else {
		at.ctx, at.cancel = context.WithCancel(d.ctx)
	}
	if hedge {
		// A hedge races the primary; it writes a side path and the winner
		// is renamed into place, so two workers never share a file.
		d.hedgeSeq++
		path = fmt.Sprintf("%s.hedge-%d", path, d.hedgeSeq)
		t.hedging++
		t.st.Hedges++
		d.hedges++
		expAdd("hedges", 1)
	}
	at.path = path
	if t.state == taskPending {
		t.state = taskRunning
	}
	if t.dispatched.IsZero() {
		t.dispatched = now
	}
	t.running = append(t.running, at)
	t.st.Attempts++
	if !hedge && epIdx >= 0 && epIdx != t.home && len(d.eps) > 1 {
		t.st.Stolen = true
		d.steals++
		expAdd("steals", 1)
	}
	return at
}

// settle resolves one finished attempt under the lock. The first valid
// shard file wins; everything else is attributed — to the endpoint
// (free requeue, breaker charge), to the spec (permanent failure), or
// to the shard (retry budget).
func (d *dispatcher) settle(at *attempt, info ShardInfo, runErr, inspErr error) {
	defer func() {
		d.emitProgress()
		d.cond.Broadcast()
	}()
	at.cancel()
	t := at.t
	for i, a := range t.running {
		if a == at {
			t.running = append(t.running[:i], t.running[i+1:]...)
			break
		}
	}
	var ep *epHealth
	if at.ep >= 0 {
		ep = d.eps[at.ep]
	}
	if at.probe && ep != nil {
		ep.probing = false
	}
	if at.hedge {
		t.hedging--
	}

	if t.state == taskDone || t.state == taskFailed {
		// Lost the race: the shard settled while this attempt ran. The
		// winner already charged the laggards; just clean up.
		if at.hedge {
			os.Remove(at.path)
		}
		return
	}

	now := time.Now()
	valid := inspErr == nil && info.State == StateValid
	if valid && at.hedge {
		if err := os.Rename(at.path, ShardPath(d.opts.OutDir, t.sh.Index)); err != nil {
			os.Remove(at.path)
			valid = false
			runErr = fmt.Errorf("sweep: promote hedged shard %d: %w", t.sh.Index, err)
		}
	}

	if valid {
		t.state = taskDone
		d.done++
		d.casesDone += info.Cases
		d.completions++
		dur := now.Sub(at.start)
		const alpha = 0.3
		if d.fleetEWMA == 0 {
			d.fleetEWMA = float64(dur.Nanoseconds())
		} else {
			d.fleetEWMA = (1-alpha)*d.fleetEWMA + alpha*float64(dur.Nanoseconds())
		}
		if ep != nil {
			ep.credit(dur)
		}
		t.st.State = StateValid
		t.st.Error = ""
		t.st.Endpoint = d.endpointName(at)
		t.st.Worker = d.workerFor(at).Name()
		t.st.WallNS = now.Sub(t.dispatched).Nanoseconds()
		expAdd("shards_done", 1)
		if at.hedge {
			d.hedgesWon++
			t.st.HedgeWon = true
			expAdd("hedges_won", 1)
			// The hedge beat the primary — that endpoint is slow for this
			// fleet right now. Losing the race is its health signal.
			for _, a := range t.running {
				if !a.hedge && a.ep >= 0 {
					d.chargeEndpoint(d.eps[a.ep], now, a.probe)
				}
			}
		}
		for _, a := range t.running {
			a.cancel()
		}
		logf(d.opts.Log, "shard %d/%d [%d,%d) valid on %s (attempt %d)",
			t.sh.Index, t.sh.Count, t.sh.From, t.sh.To, d.endpointName(at), t.st.Attempts)
		return
	}

	// Attribute the failure.
	err := runErr
	if inspErr != nil {
		err = inspErr
	} else if err == nil {
		err = fmt.Errorf("worker reported success but shard file is %s: %s", info.State, info.Reason)
	}
	if at.hedge {
		os.Remove(at.path)
	}
	logf(d.opts.Log, "shard %d/%d [%d,%d) attempt %d on %s failed: %v",
		t.sh.Index, t.sh.Count, t.sh.From, t.sh.To, t.st.Attempts, d.endpointName(at), err)

	permanent := inspErr != nil || IsPermanent(runErr)
	endpointFault := !permanent && at.ep >= 0 && IsEndpointFault(runErr)

	if endpointFault {
		// The endpoint's fault, not the shard's: poison this pairing,
		// charge the breaker, and requeue without touching the retry
		// budget. Only a shard that fails on *every* endpoint flips the
		// blame back onto itself.
		t.failedOn[at.ep] = true
		t.st.Requeues++
		d.requeues++
		expAdd("requeues", 1)
		d.chargeEndpoint(ep, now, at.probe)
	} else if ep != nil {
		// Shard-attributed failures still count against health: an
		// endpoint emitting torn files is as suspect as one timing out.
		d.chargeEndpoint(ep, now, at.probe)
	}

	if permanent {
		// No retry can fix a rejected spec; cancel the racers and fail.
		for _, a := range t.running {
			a.cancel()
		}
		d.fail(t, err, now)
		return
	}
	if len(t.running) > 0 {
		// Other attempts are still racing; they decide the shard's fate.
		return
	}
	if endpointFault && !d.allPoisoned(t) {
		t.state = taskPending
		t.notBefore = time.Time{}
		return
	}
	if t.retriesLeft > 0 && d.ctx.Err() == nil {
		t.retriesLeft--
		d.retried++
		expAdd("retries", 1)
		t.prevBackoff = jitterBackoff(&d.rng, d.opts.Backoff, t.prevBackoff, d.opts.BackoffCap)
		t.notBefore = now.Add(t.prevBackoff)
		t.state = taskPending
		return
	}
	d.fail(t, err, now)
}

// fail settles t as failed and spends one unit of the fail-fast
// budget, cancelling the pass when it runs out.
func (d *dispatcher) fail(t *task, err error, now time.Time) {
	t.state = taskFailed
	d.failed++
	t.st.State = "failed"
	if err != nil {
		t.st.Error = err.Error()
	}
	if !t.dispatched.IsZero() {
		t.st.WallNS = now.Sub(t.dispatched).Nanoseconds()
	}
	d.failures++
	if d.failures >= d.opts.MaxFailures {
		d.cancel()
	}
}

// chargeEndpoint records a failure against ep's breaker with a
// jittered cooldown, so a fleet's breakers don't re-probe in lockstep.
func (d *dispatcher) chargeEndpoint(ep *epHealth, now time.Time, probe bool) {
	if ep == nil {
		return
	}
	cooldown := d.opts.BreakerCooldown
	if cooldown <= 0 {
		cooldown = 500 * time.Millisecond
	}
	cooldown = cooldown/2 + time.Duration(d.rng.float01()*float64(cooldown))
	ep.charge(now, breakerFailures(d.opts.BreakerFailures), cooldown, probe)
}

// allOpen reports whether every endpoint's breaker is open — the
// fallback trigger.
func (d *dispatcher) allOpen() bool {
	for _, ep := range d.eps {
		if ep.state != healthOpen {
			return false
		}
	}
	return true
}

func (d *dispatcher) endpointName(at *attempt) string {
	if at.ep < 0 {
		return "fallback"
	}
	return d.eps[at.ep].Name
}

func (d *dispatcher) workerFor(at *attempt) Worker {
	if at.ep < 0 {
		return d.fallback
	}
	return d.eps[at.ep].Worker
}

// waitTimed parks the slot until the next actionable moment for this
// endpoint: a pending task leaving backoff, or a running task crossing
// the hedge threshold (if this endpoint could hedge it). With no timed
// event in sight it waits for a settle/dispatch broadcast.
func (d *dispatcher) waitTimed(epIdx int, now time.Time) {
	var next time.Time
	consider := func(at time.Time) {
		if at.After(now) && (next.IsZero() || at.Before(next)) {
			next = at
		}
	}
	canHedge := len(d.eps) >= 2
	th := d.hedgeThreshold()
	for _, t := range d.tasks {
		switch t.state {
		case taskPending:
			consider(t.notBefore)
		case taskRunning:
			if canHedge && d.hedgeEligible(t, epIdx) {
				consider(hedgeStart(t).Add(th))
			}
		}
	}
	d.waitUntil(next)
}

// waitUntil waits for a broadcast, waking itself at deadline t if no
// one else does. A zero t waits indefinitely (the next settle or
// cancellation will broadcast).
func (d *dispatcher) waitUntil(t time.Time) {
	if t.IsZero() {
		d.cond.Wait()
		return
	}
	now := time.Now()
	if !t.After(now) {
		return
	}
	tm := time.AfterFunc(t.Sub(now), func() {
		d.mu.Lock()
		d.cond.Broadcast()
		d.mu.Unlock()
	})
	defer tm.Stop()
	d.cond.Wait()
}

// emitProgress pushes a snapshot to Options.OnProgress (called under
// the lock; the callback must not block or re-enter the coordinator).
func (d *dispatcher) emitProgress() {
	if d.opts.OnProgress == nil {
		return
	}
	d.opts.OnProgress(d.snapshot())
}

// snapshot renders the dispatcher's state as a wire Progress record.
func (d *dispatcher) snapshot() Progress {
	p := Progress{
		SchemaVersion:  api.SchemaVersion,
		Record:         api.RecordSweepProgress,
		Campaign:       d.c.Spec.Name,
		CampaignDigest: d.c.Digest,
		Shards:         d.c.Spec.Shards,
		Done:           d.c.Spec.Shards - d.total + d.done,
		Failed:         d.failed,
		Retried:        d.retried,
		Hedges:         d.hedges,
		Steals:         d.steals,
		Requeues:       d.requeues,
		Fallbacks:      d.fallbacks,
		CasesTotal:     d.c.Cases(),
		CasesDone:      d.casesBase + d.casesDone,
		ElapsedNS:      time.Since(d.start).Nanoseconds(),
	}
	for _, t := range d.tasks {
		switch t.state {
		case taskPending:
			p.Pending++
		case taskRunning:
			p.Running++
		}
	}
	slots := 0
	for _, ep := range d.eps {
		p.Workers = append(p.Workers, ep.snapshot())
		if ep.state != healthOpen {
			slots += ep.Slots
		}
	}
	if slots == 0 {
		slots = 1
	}
	if remaining := p.Pending + p.Running; remaining > 0 && d.fleetEWMA > 0 {
		p.EtaNS = int64(d.fleetEWMA * float64(remaining) / float64(slots))
	}
	return p
}
