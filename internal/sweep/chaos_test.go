package sweep_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/sweep"
)

// validCasesIn counts the cases of every shard the pass left valid —
// what a resume pass must NOT re-execute.
func validCasesIn(res *sweep.Result) int64 {
	var n int64
	for _, st := range res.Shards {
		if st.State == sweep.StateValid {
			n += int64(st.To - st.From)
		}
	}
	return n
}

// resumeAfter runs the chaos pass (expected to fail), then a clean
// resume pass, asserting the resume produced the reference bytes and
// executed only the cases the chaos pass lost.
func resumeAfter(t *testing.T, c *sweep.Campaign, dir string, chaos sweep.Options, want []byte) {
	t.Helper()
	chaos.OutDir = dir
	res1, err := sweep.Run(context.Background(), c, chaos)
	if err == nil {
		t.Fatal("chaos pass succeeded; expected a partial failure")
	}
	if !strings.Contains(err.Error(), "resume") {
		t.Fatalf("chaos pass error does not point at resume: %v", err)
	}
	if _, err := os.Stat(res1.Out); !os.IsNotExist(err) {
		t.Fatalf("failed pass left a merged campaign file: %v", err)
	}

	res2, err := sweep.Run(context.Background(), c, sweep.Options{OutDir: dir, Resume: true})
	if err != nil {
		t.Fatalf("resume pass: %v", err)
	}
	got := readOut(t, res2)
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed campaign differs from uninterrupted run:\n%s\nvs\n%s", got, want)
	}
	// Resume economics: a killed worker never costs more than its
	// in-flight shard — every shard the chaos pass completed is skipped,
	// so the resume executes exactly the remainder.
	wantExec := int64(c.Cases()) - validCasesIn(res1)
	if res2.Stats.CasesExecuted != wantExec {
		t.Errorf("resume executed %d cases, want %d (chaos pass completed %d)",
			res2.Stats.CasesExecuted, wantExec, validCasesIn(res1))
	}
	if res2.Stats.Skipped == 0 {
		t.Error("resume pass skipped no shards; completed shards were re-executed")
	}
}

// TestChaosKilledWorkerResume kills an in-process worker mid-shard
// (torn file, no footer) with no retry budget; the resume pass redoes
// only the lost work and the merged bytes match the uninterrupted run.
func TestChaosKilledWorkerResume(t *testing.T) {
	spec := scenarioSpec(21, 6)
	want := singleProcessBytes(t, spec)
	c := mustLoad(t, sweep.WrapScenario(spec, 3))
	inj := sweep.NewInjector()
	inj.Kill = 1
	// Workers: 1 pins the schedule: shard 0 completes, shard 1 dies
	// mid-shard, shard 2 is cancelled by the fail-fast budget.
	resumeAfter(t, c, t.TempDir(), sweep.Options{Workers: 1, Injector: inj}, want)
}

// TestChaosTruncatedShardResume truncates a completed shard file
// mid-case; validation classifies it torn, and resume makes the
// campaign whole.
func TestChaosTruncatedShardResume(t *testing.T) {
	spec := scenarioSpec(22, 6)
	want := singleProcessBytes(t, spec)
	c := mustLoad(t, sweep.WrapScenario(spec, 3))
	inj := sweep.NewInjector()
	inj.Truncate = 2
	resumeAfter(t, c, t.TempDir(), sweep.Options{Workers: 2, Injector: inj}, want)
}

// TestChaosDuplicatedShardResume copies a completed shard over another
// shard's path after the workers finish; validation classifies the
// copy foreign (right campaign, wrong shard), and resume re-executes
// only that shard.
func TestChaosDuplicatedShardResume(t *testing.T) {
	spec := scenarioSpec(23, 6)
	want := singleProcessBytes(t, spec)
	c := mustLoad(t, sweep.WrapScenario(spec, 3))
	inj := sweep.NewInjector()
	inj.Dup, inj.DupAt = 0, 2
	resumeAfter(t, c, t.TempDir(), sweep.Options{Workers: 2, Injector: inj}, want)
}

// TestRetryAbsorbsTransientKill gives the retry budget one attempt;
// the in-process kill fires once, so the retry completes the shard and
// the single pass already matches the reference.
func TestRetryAbsorbsTransientKill(t *testing.T) {
	spec := scenarioSpec(24, 6)
	want := singleProcessBytes(t, spec)
	c := mustLoad(t, sweep.WrapScenario(spec, 3))
	inj := sweep.NewInjector()
	inj.Kill = 1
	res := runCoordinator(t, c, sweep.Options{
		Workers:  2,
		OutDir:   t.TempDir(),
		Injector: inj,
		Retries:  1,
		Backoff:  1, // nanoseconds — keep the test fast
	})
	if got := readOut(t, res); !bytes.Equal(got, want) {
		t.Fatal("retried campaign differs from uninterrupted run")
	}
	if res.Stats.Retried == 0 {
		t.Error("kill was injected but no retry was recorded")
	}
}

func TestParseFaults(t *testing.T) {
	inj, err := sweep.ParseFaults("kill:1,truncate:2,dup:0:3")
	if err != nil {
		t.Fatal(err)
	}
	if inj.Kill != 1 || inj.Truncate != 2 || inj.Dup != 0 || inj.DupAt != 3 {
		t.Errorf("parsed %+v", inj)
	}
	empty, err := sweep.ParseFaults("")
	if err != nil || empty.Kill != -1 || empty.Truncate != -1 || empty.Dup != -1 {
		t.Errorf("empty spec: %+v, %v", empty, err)
	}
	for _, bad := range []string{"kill", "kill:x", "kill:-1", "dup:1", "explode:3"} {
		if _, err := sweep.ParseFaults(bad); err == nil {
			t.Errorf("ParseFaults(%q) accepted bad spec", bad)
		}
	}
}

// TestInspectShardClassification pins every recovery classification:
// missing and torn files are resumable, a duplicated shard is foreign,
// a valid file is valid, and only a newer schema version is fatal.
func TestInspectShardClassification(t *testing.T) {
	c := mustLoad(t, sweep.WrapScenario(scenarioSpec(25, 4), 2))
	sh := c.Shards()[0]
	want := c.ShardHeader(sh)
	dir := t.TempDir()
	path := sweep.ShardPath(dir, 0)

	expect := func(label, state string) {
		t.Helper()
		info, err := sweep.InspectShard(path, want)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if info.State != state {
			t.Errorf("%s classified %s (%s), want %s", label, info.State, info.Reason, state)
		}
	}

	expect("no file", sweep.StateMissing)

	if _, err := sweep.ExecuteShardFile(context.Background(), c, sh, path, nil); err != nil {
		t.Fatal(err)
	}
	expect("clean execution", sweep.StateValid)
	valid, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	write := func(b []byte) {
		t.Helper()
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	write(nil)
	expect("empty file", sweep.StateTorn)

	lines := bytes.SplitAfter(valid, []byte("\n"))
	write(bytes.Join(lines[:len(lines)-2], nil))
	expect("missing footer", sweep.StateTorn)

	write(valid[:len(valid)-7])
	expect("footer cut mid-line", sweep.StateTorn)

	corrupt := bytes.Replace(valid, []byte(`"record":"case"`), []byte(`"record":"CASE"`), 1)
	write(corrupt)
	expect("corrupted case line", sweep.StateTorn)

	write([]byte("not json\n"))
	expect("garbage", sweep.StateTorn)

	// A different shard of the same campaign: foreign, not torn.
	sh1 := c.Shards()[1]
	if _, err := sweep.ExecuteShardFile(context.Background(), c, sh1, path, nil); err != nil {
		t.Fatal(err)
	}
	expect("duplicated other shard", sweep.StateForeign)

	// Same shard of a different campaign: foreign.
	c2 := mustLoad(t, sweep.WrapScenario(scenarioSpec(26, 4), 2))
	if _, err := sweep.ExecuteShardFile(context.Background(), c2, c2.Shards()[0], path, nil); err != nil {
		t.Fatal(err)
	}
	expect("other campaign", sweep.StateForeign)

	// A shard written by a newer schema version is the one fatal case:
	// re-executing would not fix it.
	newer := bytes.Replace(valid, []byte(`{"schema_version":`), []byte(`{"schema_version":9`), 1)
	write(newer)
	if _, err := sweep.InspectShard(path, want); err == nil {
		t.Error("newer-schema shard classified resumable; must be fatal")
	}

	write(valid)
	expect("restored valid file", sweep.StateValid)
}

// TestShardDigestsMatchMergedCases pins the footer digest property:
// each shard's digest equals the digest of the merged file's case
// lines for that shard's range.
func TestShardDigestsMatchMergedCases(t *testing.T) {
	spec := scenarioSpec(27, 6)
	c := mustLoad(t, sweep.WrapScenario(spec, 3))
	dir := t.TempDir()
	res := runCoordinator(t, c, sweep.Options{Workers: 2, OutDir: dir})
	merged := bytes.Split(bytes.TrimSuffix(readOut(t, res), []byte("\n")), []byte("\n"))
	caseLines := merged[1 : len(merged)-1]
	for _, sh := range c.Shards() {
		data, err := os.ReadFile(sweep.ShardPath(dir, sh.Index))
		if err != nil {
			t.Fatal(err)
		}
		lines := bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n"))
		var ftr api.ShardResult
		if err := json.Unmarshal(lines[len(lines)-1], &ftr); err != nil {
			t.Fatal(err)
		}
		h := uint64(14695981039346656037)
		for _, line := range caseLines[sh.From:sh.To] {
			for _, b := range append(append([]byte{}, line...), '\n') {
				h = (h ^ uint64(b)) * 1099511628211
			}
		}
		if got := fmt.Sprintf("%016x", h); got != ftr.Digest {
			t.Errorf("shard %d digest %s does not match merged case lines (%s)", sh.Index, ftr.Digest, got)
		}
	}
}
