package sweep_test

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/api"
	"repro/internal/sweep"
)

// randomSpec draws a small random campaign: random seed, case count,
// mix weights, parameter distributions, arrival process, sometimes a
// fault plan. Kept tiny so the whole matrix stays fast on one CPU.
func randomSpec(r *rand.Rand) *api.ScenarioSpec {
	spec := &api.ScenarioSpec{
		Name:  "prop",
		Seed:  r.Int63n(1 << 30),
		Cases: 3 + r.Intn(5),
		Mix: []api.MixEntry{
			{Family: "hamming", Weight: 1 + r.Float64(),
				Params: map[string]api.Dist{"words": {Uniform: &api.IntRange{Min: 2, Max: 8}}}},
			{Family: "newton", Weight: r.Float64(),
				Params: map[string]api.Dist{"n": {Choice: []int{4, 8}}}},
		},
	}
	switch r.Intn(3) {
	case 0:
		spec.Arrival = &api.ArrivalSpec{Kind: api.ArrivalDeterministic, IntervalNS: int64(1 + r.Intn(1000))}
	case 1:
		spec.Arrival = &api.ArrivalSpec{Kind: api.ArrivalPoisson, Rate: 10 + 100*r.Float64()}
	}
	if r.Intn(2) == 0 {
		spec.Faults = &api.FaultPlan{Rate: 0.02 * r.Float64(), Bits: 8}
	}
	return spec
}

// TestPropertyMergedEqualsSingleProcess is the randomized acceptance
// sweep: for random specs, every worker count in {1, 2, 4, 8} and a
// random shard layout produce a merged campaign byte-identical to the
// single-process scenario run. Runs under -race in the CI race job —
// the worker pool, the retry counters and the execution counter are
// all exercised concurrently.
func TestPropertyMergedEqualsSingleProcess(t *testing.T) {
	// Fixed seed: reproducible draws, fresh coverage per seed bump.
	r := rand.New(rand.NewSource(99))
	iterations := 3
	if testing.Short() {
		iterations = 1
	}
	for it := 0; it < iterations; it++ {
		spec := randomSpec(r)
		want := singleProcessBytes(t, spec)
		shards := 1 + r.Intn(spec.Cases)
		c := mustLoad(t, sweep.WrapScenario(spec, shards))
		for _, workers := range []int{1, 2, 4, 8} {
			res := runCoordinator(t, c, sweep.Options{Workers: workers, OutDir: t.TempDir()})
			got := readOut(t, res)
			if !bytes.Equal(got, want) {
				t.Fatalf("iteration %d (seed %d, cases %d, shards %d, workers %d): merged differs from single-process run",
					it, spec.Seed, spec.Cases, shards, workers)
			}
			if res.Stats.CasesExecuted != int64(spec.Cases) {
				t.Errorf("iteration %d workers %d: executed %d cases, want %d",
					it, workers, res.Stats.CasesExecuted, spec.Cases)
			}
		}
	}
}
