package sweep_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/sweep"
)

// downWorker always fails with an endpoint-attributed error — the
// shape of a dead remote whose connections are refused.
type downWorker struct{}

func (*downWorker) Name() string { return "down" }
func (*downWorker) RunShard(ctx context.Context, c *sweep.Campaign, sh sweep.Shard, path string) error {
	return sweep.EndpointFault(errors.New("synthetic: connection refused"))
}

// rejectWorker always fails permanently — the shape of an HTTP 400:
// the spec itself is refused and retrying cannot help.
type rejectWorker struct{}

func (*rejectWorker) Name() string { return "reject" }
func (*rejectWorker) RunShard(ctx context.Context, c *sweep.Campaign, sh sweep.Shard, path string) error {
	return sweep.Permanent(errors.New("synthetic: spec rejected"))
}

// crashWorker always fails with an unclassified error — the shape of
// an in-process execution fault, attributed to the shard.
type crashWorker struct{}

func (*crashWorker) Name() string { return "crash" }
func (*crashWorker) RunShard(ctx context.Context, c *sweep.Campaign, sh sweep.Shard, path string) error {
	return errors.New("synthetic: worker crashed")
}

// TestChaosMatrixFleet is the acceptance scenario: a 3-endpoint fleet
// with one healthy, one flaky (fails twice, then works) and one
// blackholed worker (accepts shards and hangs) must complete the
// campaign without exhausting the fail-fast budget, report hedged and
// stolen shards, and still merge byte-identically to a single-process
// run — at every slot count in {1, 2, 4, 8}.
func TestChaosMatrixFleet(t *testing.T) {
	spec := scenarioSpec(23, 12)
	want := singleProcessBytes(t, spec)
	var matrixRequeues int
	for _, slots := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("slots=%d", slots), func(t *testing.T) {
			flaky := sweep.NewInjector()
			flaky.Flaky = sweep.AnyShard
			flaky.FlakyTimes = 2
			hole := sweep.NewInjector()
			hole.Blackhole = sweep.AnyShard
			// Pace the healthy endpoint so it cannot drain the whole queue
			// before the faulty endpoints' slots are even scheduled.
			pace := sweep.NewInjector()
			pace.Slow = sweep.AnyShard
			pace.SlowDelay = 5 * time.Millisecond
			c := mustLoad(t, sweep.WrapScenario(spec, 6))
			res := runCoordinator(t, c, sweep.Options{
				OutDir:      t.TempDir(),
				MaxFailures: 1,
				Endpoints: []sweep.Endpoint{
					{Worker: &sweep.LocalWorker{Injector: pace}, Name: "good", Slots: slots},
					{Worker: &sweep.LocalWorker{Injector: flaky}, Name: "flaky", Slots: slots},
					{Worker: &sweep.LocalWorker{Injector: hole}, Name: "hole", Slots: slots},
				},
				HedgeMin:        20 * time.Millisecond,
				BreakerCooldown: 50 * time.Millisecond,
			})
			if got := readOut(t, res); !bytes.Equal(got, want) {
				t.Fatal("chaos fleet merge differs from single-process run")
			}
			s := res.Stats
			if s.Hedges == 0 || s.HedgesWon == 0 {
				t.Errorf("hedges=%d won=%d, want blackholed shards rescued by hedging", s.Hedges, s.HedgesWon)
			}
			// At high slot counts the healthy endpoint can legitimately
			// drain the queue before the flaky endpoint's slots wake, so
			// requeues are asserted across the matrix, not per run.
			matrixRequeues += s.Requeues
			if s.Steals == 0 {
				t.Errorf("steals=0, want requeued shards stolen by healthy endpoints")
			}
			if s.Retried != 0 {
				t.Errorf("retried=%d, want 0: endpoint faults must not burn the shard retry budget", s.Retried)
			}
			if len(s.WorkerHealth) != 3 {
				t.Fatalf("worker health entries = %d, want 3", len(s.WorkerHealth))
			}
			for _, wh := range s.WorkerHealth {
				if wh.Name == "" || wh.State == "" {
					t.Errorf("unnamed or stateless health entry: %+v", wh)
				}
			}
		})
	}
	if matrixRequeues == 0 {
		t.Error("requeues=0 across the whole matrix, want flaky failures requeued without charging the shard budget")
	}
}

// TestRouteAroundDeadEndpoint pins the quarantine economics: a dead
// remote in the fleet costs requeues (free) — never shard retries —
// and the campaign still merges byte-identically.
func TestRouteAroundDeadEndpoint(t *testing.T) {
	spec := scenarioSpec(31, 6)
	want := singleProcessBytes(t, spec)
	c := mustLoad(t, sweep.WrapScenario(spec, 3))
	res := runCoordinator(t, c, sweep.Options{
		OutDir:      t.TempDir(),
		MaxFailures: 1,
		Endpoints: []sweep.Endpoint{
			{Worker: &sweep.LocalWorker{}, Name: "good"},
			{Worker: &downWorker{}, Name: "dead"},
		},
		BreakerCooldown: 10 * time.Second,
	})
	if got := readOut(t, res); !bytes.Equal(got, want) {
		t.Fatal("merge with dead endpoint differs from single-process run")
	}
	if res.Stats.Retried != 0 {
		t.Errorf("retried=%d, want 0: the dead endpoint must not burn the retry budget", res.Stats.Retried)
	}
	if res.Stats.Requeues == 0 {
		t.Error("requeues=0, want the dead endpoint's shards requeued elsewhere")
	}
	for _, wh := range res.Stats.WorkerHealth {
		if wh.Name == "dead" && wh.Failures == 0 {
			t.Error("dead endpoint shows no recorded failures")
		}
	}
}

// TestFallbackWhenFleetQuarantined pins graceful degradation: with
// every endpoint open-circuit, parked slots drain the queue on the
// local fallback worker instead of failing the campaign.
func TestFallbackWhenFleetQuarantined(t *testing.T) {
	spec := scenarioSpec(41, 6)
	want := singleProcessBytes(t, spec)
	c := mustLoad(t, sweep.WrapScenario(spec, 3))
	res := runCoordinator(t, c, sweep.Options{
		OutDir:      t.TempDir(),
		MaxFailures: 1,
		Endpoints: []sweep.Endpoint{
			{Worker: &downWorker{}, Name: "down-a"},
			{Worker: &downWorker{}, Name: "down-b"},
		},
		BreakerFailures: 1,
		BreakerCooldown: time.Minute,
	})
	if got := readOut(t, res); !bytes.Equal(got, want) {
		t.Fatal("fallback merge differs from single-process run")
	}
	if res.Stats.Fallbacks != 3 {
		t.Errorf("fallbacks=%d, want every shard (3) to run on the local fallback", res.Stats.Fallbacks)
	}
	for _, wh := range res.Stats.WorkerHealth {
		if wh.State != "open" {
			t.Errorf("endpoint %s state %q, want open", wh.Name, wh.State)
		}
	}
	for _, st := range res.Shards {
		if st.Endpoint != "fallback" {
			t.Errorf("shard %d ran on %q, want fallback", st.Shard, st.Endpoint)
		}
	}
}

// TestPermanentFailureSkipsRetryBudget pins the 400-class contract: a
// permanent rejection fails the shard on the first attempt with the
// whole retry budget unspent.
func TestPermanentFailureSkipsRetryBudget(t *testing.T) {
	spec := scenarioSpec(53, 4)
	c := mustLoad(t, sweep.WrapScenario(spec, 2))
	res, err := sweep.Run(context.Background(), c, sweep.Options{
		OutDir:      t.TempDir(),
		Workers:     1,
		Retries:     3,
		MaxFailures: 1,
		Worker:      &rejectWorker{},
	})
	if err == nil || !strings.Contains(err.Error(), "resume") {
		t.Fatalf("permanent failure: err=%v, want incomplete-pass error naming resume", err)
	}
	if got := res.Shards[0].Attempts; got != 1 {
		t.Errorf("shard 0 attempts=%d, want 1: no retry may follow a permanent rejection", got)
	}
	if !strings.Contains(res.Shards[0].Error, "spec rejected") {
		t.Errorf("shard 0 error %q, want the rejection surfaced", res.Shards[0].Error)
	}
	if res.Stats.Retried != 0 {
		t.Errorf("retried=%d, want 0", res.Stats.Retried)
	}
}

// TestCancelDuringBackoffReturnsPromptly pins the satellite contract:
// a coordinator cancelled while every shard sits in retry backoff
// returns immediately instead of sleeping the backoff out.
func TestCancelDuringBackoffReturnsPromptly(t *testing.T) {
	spec := scenarioSpec(61, 4)
	c := mustLoad(t, sweep.WrapScenario(spec, 2))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		time.Sleep(150 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := sweep.Run(ctx, c, sweep.Options{
		OutDir:      t.TempDir(),
		Workers:     1,
		Retries:     3,
		Backoff:     30 * time.Second,
		BackoffCap:  60 * time.Second,
		MaxFailures: 10,
		Worker:      &crashWorker{},
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("cancelled pass reported success")
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation during a 30s backoff took %v, want a prompt return", elapsed)
	}
}

// TestInspectShardForeignCaseRange pins the satellite classification:
// a shard file with a perfectly valid digest footer whose header case
// range disagrees with the campaign layout is foreign — never valid.
func TestInspectShardForeignCaseRange(t *testing.T) {
	spec := scenarioSpec(71, 6)
	c := mustLoad(t, sweep.WrapScenario(spec, 3))
	sh, err := c.ShardAt(0)
	if err != nil {
		t.Fatal(err)
	}
	path := sweep.ShardPath(t.TempDir(), 0)
	if _, err := sweep.ExecuteShardFile(context.Background(), c, sh, path, nil); err != nil {
		t.Fatal(err)
	}
	info, err := sweep.InspectShard(path, c.ShardHeader(sh))
	if err != nil || info.State != sweep.StateValid {
		t.Fatalf("sanity: freshly executed shard is %s (%v)", info.State, err)
	}
	// Same bytes, same intact footer — but the coordinator's layout says
	// shard 0 spans one more case than the header admits.
	want := c.ShardHeader(sh)
	want.To++
	info, err = sweep.InspectShard(path, want)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != sweep.StateForeign {
		t.Fatalf("range-mismatched shard classified %s (%s), want foreign", info.State, info.Reason)
	}
}

// TestParseFaultsExtended covers the flaky/slow/blackhole grammar and
// the "*" wildcard.
func TestParseFaultsExtended(t *testing.T) {
	inj, err := sweep.ParseFaults("flaky:*:2,slow:1:50,blackhole:*")
	if err != nil {
		t.Fatal(err)
	}
	if inj.Flaky != sweep.AnyShard || inj.FlakyTimes != 2 {
		t.Errorf("flaky = (%d,%d), want (*,2)", inj.Flaky, inj.FlakyTimes)
	}
	if inj.Slow != 1 || inj.SlowDelay != 50*time.Millisecond {
		t.Errorf("slow = (%d,%v), want (1,50ms)", inj.Slow, inj.SlowDelay)
	}
	if inj.Blackhole != sweep.AnyShard {
		t.Errorf("blackhole = %d, want *", inj.Blackhole)
	}
	for _, bad := range []string{"flaky:1", "slow:x:5", "blackhole:", "kill:*", "flaky:0:x"} {
		if _, err := sweep.ParseFaults(bad); err == nil {
			t.Errorf("ParseFaults(%q) accepted", bad)
		}
	}
}

// TestSlowEndpointStillMerges runs a fleet with one injected-latency
// straggler: the campaign completes and merges identically, with the
// slow worker's shards eligible for hedging rather than stalling the
// pass.
func TestSlowEndpointStillMerges(t *testing.T) {
	spec := scenarioSpec(79, 8)
	want := singleProcessBytes(t, spec)
	slow := sweep.NewInjector()
	slow.Slow = sweep.AnyShard
	slow.SlowDelay = 80 * time.Millisecond
	c := mustLoad(t, sweep.WrapScenario(spec, 4))
	res := runCoordinator(t, c, sweep.Options{
		OutDir:      t.TempDir(),
		MaxFailures: 1,
		Endpoints: []sweep.Endpoint{
			{Worker: &sweep.LocalWorker{}, Name: "fast", Slots: 2},
			{Worker: &sweep.LocalWorker{Injector: slow}, Name: "slow", Slots: 2},
		},
		HedgeMin: 10 * time.Millisecond,
	})
	if got := readOut(t, res); !bytes.Equal(got, want) {
		t.Fatal("slow-endpoint merge differs from single-process run")
	}
}
