package sweep

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/api"
	"repro/internal/scenario"
)

// Shard file states, as classified by InspectShard. Only Valid shards
// are merged; everything else is resumable work (a newer schema
// version is the one fatal case, returned as an error instead).
const (
	// StateValid: header matches the campaign, every case line is
	// covered by a footer whose digest and count agree.
	StateValid = "valid"
	// StateMissing: the shard file does not exist yet.
	StateMissing = "missing"
	// StateTorn: the file exists but is incomplete or corrupt — no
	// footer, a half-written line, a digest mismatch. The signature a
	// killed or interrupted worker leaves behind.
	StateTorn = "torn"
	// StateForeign: a structurally complete shard file for the wrong
	// campaign, layout, shard index or backend — e.g. a duplicated
	// shard copied over another's path.
	StateForeign = "foreign"
)

// ShardInfo is InspectShard's classification of one shard file.
type ShardInfo struct {
	State  string
	Cases  int    // case lines counted (valid files only)
	Reason string // human detail for non-valid states
}

// lineDigest accumulates the footer digest: FNV-1a over every case
// line including its trailing newline, in file order.
type lineDigest struct{ h uint64 }

func newLineDigest() *lineDigest { return &lineDigest{h: 14695981039346656037} }

func (d *lineDigest) add(line []byte) {
	for _, b := range line {
		d.h = (d.h ^ uint64(b)) * 1099511628211
	}
	d.h = (d.h ^ uint64('\n')) * 1099511628211
}

func (d *lineDigest) hex() string { return fmt.Sprintf("%016x", d.h) }

// ExecuteShard runs shard sh of the campaign and streams its shard
// records to w: the shard header, one trace-case line per case in
// index order, and the footer with the case count and line digest.
// Returns the number of cases executed (even on error — the resume
// economics counter). The injector, if non-nil, may kill the execution
// mid-shard; a nil injector runs clean.
func ExecuteShard(ctx context.Context, c *Campaign, sh Shard, w io.Writer, inj *Injector) (int, error) {
	executed := 0
	if inj.flakyFires(sh.Index) {
		// A flaky worker fails before writing anything — the signature of
		// a refused connection, attributed to the endpoint, not the shard.
		return executed, EndpointFault(fmt.Errorf("sweep: shard %d: injected flaky failure", sh.Index))
	}
	runs, err := c.MaterializeRange(sh.From, sh.To)
	if err != nil {
		return executed, err
	}
	ex, err := scenario.NewExecutor(scenario.Options{Backend: c.Backend, Width: c.Width})
	if err != nil {
		return executed, err
	}
	hdr, err := json.Marshal(c.ShardHeader(sh))
	if err != nil {
		return executed, err
	}
	if _, err := w.Write(append(hdr, '\n')); err != nil {
		return executed, fmt.Errorf("sweep: write shard %d: %w", sh.Index, err)
	}
	if inj.blackholesShard(sh.Index) {
		// Accept-then-hang: the header is written (the work was accepted)
		// and then nothing happens until the attempt is cancelled — by a
		// winning hedge, a shard timeout, or the pass ending.
		<-ctx.Done()
		return executed, EndpointFault(fmt.Errorf("sweep: shard %d: blackholed: %w", sh.Index, ctx.Err()))
	}
	if d := inj.slowsShard(sh.Index); d > 0 {
		if !sleepCtx(ctx, d) {
			return executed, ctx.Err()
		}
	}
	digest := newLineDigest()
	killAt := -1
	if inj.killsShard(sh.Index) {
		killAt = len(runs) / 2
	}
	for i, cr := range runs {
		if i == killAt {
			// Mid-shard worker death: a subprocess injector exits the
			// process here; in-process execution returns an error, leaving
			// the file torn (no footer) exactly like a killed worker would.
			inj.exit(FaultExitCode)
			return executed, fmt.Errorf("sweep: shard %d: injected kill after %d/%d cases", sh.Index, i, len(runs))
		}
		rec, err := ex.Execute(ctx, cr)
		if err != nil {
			return executed, fmt.Errorf("sweep: shard %d: case %d (%s,%s): %w", sh.Index, cr.Index, cr.Family, cr.Params, err)
		}
		executed++
		line, err := json.Marshal(rec)
		if err != nil {
			return executed, err
		}
		digest.add(line)
		if _, err := w.Write(append(line, '\n')); err != nil {
			return executed, fmt.Errorf("sweep: write shard %d: %w", sh.Index, err)
		}
	}
	ftr, err := json.Marshal(api.ShardResult{
		SchemaVersion: api.SchemaVersion,
		Record:        api.RecordShardResult,
		Shard:         sh.Index,
		Cases:         len(runs),
		Digest:        digest.hex(),
	})
	if err != nil {
		return executed, err
	}
	if _, err := w.Write(append(ftr, '\n')); err != nil {
		return executed, fmt.Errorf("sweep: write shard %d: %w", sh.Index, err)
	}
	return executed, nil
}

// ExecuteShardFile executes shard sh into path: the shared body of the
// in-process worker and the `sweep worker` subprocess. The file is
// written in place (not atomically renamed) on purpose — an
// interrupted execution must leave a torn file for InspectShard to
// classify, exactly like a crashed worker. A truncate fault, if armed
// for this shard, chops the completed file mid-case to simulate a
// write torn by the filesystem.
func ExecuteShardFile(ctx context.Context, c *Campaign, sh Shard, path string, inj *Injector) (int, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, fmt.Errorf("sweep: %w", err)
	}
	bw := bufio.NewWriter(f)
	executed, err := ExecuteShard(ctx, c, sh, bw, inj)
	if ferr := bw.Flush(); err == nil && ferr != nil {
		err = fmt.Errorf("sweep: write shard %d: %w", sh.Index, ferr)
	}
	if cerr := f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("sweep: close shard %d: %w", sh.Index, cerr)
	}
	if err != nil {
		return executed, err
	}
	if inj.truncatesShard(sh.Index) {
		st, err := os.Stat(path)
		if err != nil {
			return executed, fmt.Errorf("sweep: truncate fault: %w", err)
		}
		if err := os.Truncate(path, st.Size()*2/3); err != nil {
			return executed, fmt.Errorf("sweep: truncate fault: %w", err)
		}
	}
	return executed, nil
}

// InspectShard classifies the shard file at path against the header an
// honest worker for this shard would have written. Every corruption
// mode maps to a resumable state; the only error return is a shard
// written by a newer schema version, which re-executing would not fix.
func InspectShard(path string, want api.ShardHeader) (ShardInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return ShardInfo{State: StateMissing, Reason: "no shard file"}, nil
		}
		return ShardInfo{}, fmt.Errorf("sweep: inspect shard %d: %w", want.Shard, err)
	}
	defer f.Close()

	torn := func(format string, args ...interface{}) (ShardInfo, error) {
		return ShardInfo{State: StateTorn, Reason: fmt.Sprintf(format, args...)}, nil
	}
	// A shard file is small (one trace line per case); read it whole and
	// require a trailing newline — a file cut mid-line has none.
	data, err := io.ReadAll(f)
	if err != nil {
		return ShardInfo{}, fmt.Errorf("sweep: inspect shard %d: %w", want.Shard, err)
	}
	if len(data) == 0 {
		return torn("empty shard file")
	}
	if data[len(data)-1] != '\n' {
		return torn("last line torn (no trailing newline)")
	}
	lines := bytes.Split(data[:len(data)-1], []byte("\n"))

	var hdr api.ShardHeader
	if err := json.Unmarshal(lines[0], &hdr); err != nil || hdr.Record != api.RecordShardHeader {
		return torn("first line is not a shard header")
	}
	if err := api.CheckVersion(hdr.SchemaVersion); err != nil {
		return ShardInfo{}, fmt.Errorf("sweep: shard file %s: %w", path, err)
	}
	if hdr.Campaign != want.Campaign || hdr.CampaignDigest != want.CampaignDigest ||
		hdr.Shard != want.Shard || hdr.Shards != want.Shards ||
		hdr.From != want.From || hdr.To != want.To || hdr.Backend != want.Backend {
		return ShardInfo{State: StateForeign,
			Reason: fmt.Sprintf("header %+v does not match campaign shard %+v", hdr, want)}, nil
	}
	if len(lines) < 2 {
		return torn("no footer")
	}

	var ftr api.ShardResult
	last := lines[len(lines)-1]
	if err := json.Unmarshal(last, &ftr); err != nil || ftr.Record != api.RecordShardResult {
		return torn("no footer (worker interrupted mid-shard)")
	}
	if err := api.CheckVersion(ftr.SchemaVersion); err != nil {
		return ShardInfo{}, fmt.Errorf("sweep: shard file %s: %w", path, err)
	}
	caseLines := lines[1 : len(lines)-1]
	digest := newLineDigest()
	for _, line := range caseLines {
		digest.add(line)
	}
	if ftr.Shard != want.Shard || ftr.Cases != len(caseLines) || ftr.Cases != want.To-want.From {
		return torn("footer covers %d cases of shard %d, want %d of shard %d",
			ftr.Cases, ftr.Shard, want.To-want.From, want.Shard)
	}
	if ftr.Digest != digest.hex() {
		return torn("footer digest %s does not match case lines (%s)", ftr.Digest, digest.hex())
	}
	return ShardInfo{State: StateValid, Cases: ftr.Cases}, nil
}
