package sweep_test

import (
	"bytes"
	"context"
	"os"
	"testing"

	"repro/internal/api"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

func intp(n int) *int { return &n }

// scenarioSpec is the shared small-but-mixed campaign: two families,
// drawn parameters, deterministic arrivals.
func scenarioSpec(seed int64, cases int) *api.ScenarioSpec {
	return &api.ScenarioSpec{
		Name:  "camp",
		Seed:  seed,
		Cases: cases,
		Mix: []api.MixEntry{
			{Family: "hamming", Params: map[string]api.Dist{"words": {Choice: []int{4, 8}}}},
			{Family: "fir", Weight: 0.5, Params: map[string]api.Dist{"n": {Const: intp(16)}, "taps": {Const: intp(4)}}},
		},
		Arrival: &api.ArrivalSpec{Kind: api.ArrivalDeterministic, IntervalNS: 1000},
	}
}

// singleProcessBytes is the uninterrupted reference: the exact bytes a
// plain scenario.Run of the campaign's scenario writes.
func singleProcessBytes(t *testing.T, spec *api.ScenarioSpec) []byte {
	t.Helper()
	sc, err := scenario.Load(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := sc.Run(context.Background(), scenario.Options{}, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func mustLoad(t *testing.T, spec *api.SweepSpec) *sweep.Campaign {
	t.Helper()
	c, err := sweep.Load(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func runCoordinator(t *testing.T, c *sweep.Campaign, opts sweep.Options) *sweep.Result {
	t.Helper()
	res, err := sweep.Run(context.Background(), c, opts)
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	return res
}

func readOut(t *testing.T, res *sweep.Result) []byte {
	t.Helper()
	b, err := os.ReadFile(res.Out)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestMergedByteIdenticalAcrossWorkers pins the acceptance criterion:
// the merged campaign file equals a single-process scenario run byte
// for byte, for every worker count in {1, 2, 4, 8} and for two shard
// layouts.
func TestMergedByteIdenticalAcrossWorkers(t *testing.T) {
	spec := scenarioSpec(11, 6)
	want := singleProcessBytes(t, spec)
	for _, shards := range []int{3, 6} {
		c := mustLoad(t, sweep.WrapScenario(spec, shards))
		for _, workers := range []int{1, 2, 4, 8} {
			res := runCoordinator(t, c, sweep.Options{
				Workers: workers,
				OutDir:  t.TempDir(),
			})
			got := readOut(t, res)
			if !bytes.Equal(got, want) {
				t.Fatalf("shards=%d workers=%d: merged campaign differs from single-process run:\n%s\nvs\n%s",
					shards, workers, got, want)
			}
			if res.Stats.CasesExecuted != int64(spec.Cases) {
				t.Errorf("shards=%d workers=%d: executed %d cases, want %d",
					shards, workers, res.Stats.CasesExecuted, spec.Cases)
			}
		}
	}
}

// TestMergedCampaignReplays closes the loop: the merged file is a
// plain scenario trace, so the replay machinery reproduces it
// bit-identically.
func TestMergedCampaignReplays(t *testing.T) {
	spec := scenarioSpec(3, 4)
	c := mustLoad(t, sweep.WrapScenario(spec, 2))
	res := runCoordinator(t, c, sweep.Options{Workers: 2, OutDir: t.TempDir()})
	tr, err := scenario.ReadTraceFile(res.Out)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := scenario.Replay(context.Background(), tr, scenario.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if diffs := scenario.CompareTraces(tr.Cases, rep.Cases, true); len(diffs) > 0 {
		t.Fatalf("merged campaign does not replay bit-identically: %v", diffs)
	}
}

// TestGridCampaign exercises the preset x seed-range mode: the layout
// covers the grid, output is identical across worker counts, and the
// merged file is a well-formed green trace.
func TestGridCampaign(t *testing.T) {
	spec := &api.SweepSpec{
		Name:   "grid",
		Shards: 3,
		Grid: &api.GridSpec{
			Workloads: []string{"hamming,words=4", "fir,n=16,taps=4"},
			SeedFrom:  10,
			SeedTo:    13,
		},
	}
	c := mustLoad(t, spec)
	if got := c.Cases(); got != 6 {
		t.Fatalf("grid cases = %d, want 6", got)
	}
	var want []byte
	for _, workers := range []int{1, 4} {
		res := runCoordinator(t, c, sweep.Options{Workers: workers, OutDir: t.TempDir()})
		got := readOut(t, res)
		if want == nil {
			want = got
		} else if !bytes.Equal(got, want) {
			t.Fatalf("grid campaign differs across worker counts")
		}
	}
	tr, err := scenario.ReadTrace(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Cases) != 6 || tr.Summary == nil || !tr.Summary.OK {
		t.Fatalf("grid campaign trace malformed: %d cases, summary %+v", len(tr.Cases), tr.Summary)
	}
	// Workload-major order with the seed swept fastest.
	if tr.Cases[0].Family != "hamming" || tr.Cases[3].Family != "fir" {
		t.Errorf("grid order wrong: case 0 %s, case 3 %s", tr.Cases[0].Family, tr.Cases[3].Family)
	}
}

func TestShardLayout(t *testing.T) {
	c := mustLoad(t, sweep.WrapScenario(scenarioSpec(1, 7), 3))
	shards := c.Shards()
	if len(shards) != 3 {
		t.Fatalf("layout has %d shards, want 3", len(shards))
	}
	next := 0
	for i, sh := range shards {
		if sh.Index != i || sh.Count != 3 || sh.From != next || sh.To <= sh.From {
			t.Fatalf("shard %d malformed: %+v", i, sh)
		}
		if size := sh.To - sh.From; size != 3 && size != 2 {
			t.Fatalf("shard %d unbalanced: %+v", i, sh)
		}
		next = sh.To
	}
	if next != 7 {
		t.Fatalf("layout covers %d cases, want 7", next)
	}
	// More shards than cases clamps to one case per shard.
	c2 := mustLoad(t, sweep.WrapScenario(scenarioSpec(1, 2), 64))
	if c2.Spec.Shards != 2 {
		t.Errorf("64 shards over 2 cases normalized to %d, want 2", c2.Spec.Shards)
	}
}

func TestCampaignDigestSeparatesLayouts(t *testing.T) {
	a := mustLoad(t, sweep.WrapScenario(scenarioSpec(1, 6), 2))
	b := mustLoad(t, sweep.WrapScenario(scenarioSpec(1, 6), 3))
	if a.Digest == b.Digest {
		t.Error("different shard layouts share a campaign digest")
	}
	c := mustLoad(t, sweep.WrapScenario(scenarioSpec(2, 6), 2))
	if a.Digest == c.Digest {
		t.Error("different seeds share a campaign digest")
	}
	d := mustLoad(t, sweep.WrapScenario(scenarioSpec(1, 6), 2))
	if a.Digest != d.Digest {
		t.Error("same spec produced different digests")
	}
	e := mustLoad(t, &api.SweepSpec{Name: "camp", Shards: 2, Backend: "heapref", Scenario: scenarioSpec(1, 6)})
	if a.Digest == e.Digest {
		t.Error("different backends share a campaign digest")
	}
}

func TestResumeRefusesForeignOutDir(t *testing.T) {
	dir := t.TempDir()
	a := mustLoad(t, sweep.WrapScenario(scenarioSpec(1, 4), 2))
	runCoordinator(t, a, sweep.Options{OutDir: dir})
	b := mustLoad(t, sweep.WrapScenario(scenarioSpec(2, 4), 2))
	if _, err := sweep.Run(context.Background(), b, sweep.Options{OutDir: dir, Resume: true}); err == nil {
		t.Fatal("resume against an out dir holding a different campaign succeeded")
	}
}

func TestGridLoadRejections(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec *api.SweepSpec
	}{
		{"unknown family", &api.SweepSpec{Name: "x", Grid: &api.GridSpec{Workloads: []string{"nope"}, SeedTo: 1}}},
		{"pinned seed param", &api.SweepSpec{Name: "x", Grid: &api.GridSpec{Workloads: []string{"hamming,seed=3"}, SeedTo: 1}}},
		{"seed outside schema", &api.SweepSpec{Name: "x", Grid: &api.GridSpec{Workloads: []string{"hamming"}, SeedFrom: 0, SeedTo: 1 << 31}}},
		{"unknown backend", &api.SweepSpec{Name: "x", Backend: "warp", Grid: &api.GridSpec{Workloads: []string{"hamming"}, SeedTo: 1}}},
	} {
		if _, err := sweep.Load(tc.spec, nil); err == nil {
			t.Errorf("%s: Load accepted bad spec", tc.name)
		}
	}
}
