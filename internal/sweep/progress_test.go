package sweep_test

import (
	"encoding/json"
	"expvar"
	"net/http/httptest"
	"testing"

	"repro/internal/api"
	"repro/internal/sweep"
)

// TestProgressSnapshotsAndHandler wires a coordinator pass through a
// ProgressTracker and pins the /progressz surface: 503 before the
// first snapshot, JSON after, and a final snapshot accounting for
// every shard and case.
func TestProgressSnapshotsAndHandler(t *testing.T) {
	var tr sweep.ProgressTracker

	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/progressz", nil))
	if rec.Code != 503 {
		t.Errorf("pre-start /progressz = %d, want 503", rec.Code)
	}

	spec := scenarioSpec(83, 6)
	c := mustLoad(t, sweep.WrapScenario(spec, 3))
	runCoordinator(t, c, sweep.Options{
		OutDir:     t.TempDir(),
		Workers:    2,
		OnProgress: tr.Update,
	})

	p, ok := tr.Latest()
	if !ok {
		t.Fatal("no progress snapshot after a completed pass")
	}
	if p.Record != api.RecordSweepProgress {
		t.Errorf("record = %q, want %q", p.Record, api.RecordSweepProgress)
	}
	if p.Done != 3 || p.Pending != 0 || p.Running != 0 || p.Failed != 0 {
		t.Errorf("final snapshot %+v, want 3 done and nothing in flight", p)
	}
	if p.CasesDone != 6 || p.CasesTotal != 6 {
		t.Errorf("cases %d/%d, want 6/6", p.CasesDone, p.CasesTotal)
	}
	if p.CampaignDigest != c.Digest {
		t.Errorf("digest %q, want %q", p.CampaignDigest, c.Digest)
	}
	if len(p.Workers) != 1 || p.Workers[0].State != "healthy" {
		t.Errorf("worker health %+v, want one healthy endpoint", p.Workers)
	}

	rec = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/progressz", nil))
	if rec.Code != 200 {
		t.Fatalf("/progressz = %d, want 200", rec.Code)
	}
	var served sweep.Progress
	if err := json.Unmarshal(rec.Body.Bytes(), &served); err != nil {
		t.Fatal(err)
	}
	if served.Campaign != c.Spec.Name || served.Done != 3 {
		t.Errorf("served snapshot %+v, want campaign %q complete", served, c.Spec.Name)
	}

	if expvar.Get("sweep") == nil {
		t.Error("expvar map \"sweep\" not registered after a coordinator pass")
	}
}

// TestResumedShardsCountInProgress pins the resume baseline: a pass
// that skips already-valid shards still reports their cases done.
func TestResumedShardsCountInProgress(t *testing.T) {
	spec := scenarioSpec(89, 6)
	c := mustLoad(t, sweep.WrapScenario(spec, 3))
	dir := t.TempDir()
	runCoordinator(t, c, sweep.Options{OutDir: dir, Workers: 1})

	var tr sweep.ProgressTracker
	runCoordinator(t, c, sweep.Options{
		OutDir:     dir,
		Workers:    1,
		Resume:     true,
		OnProgress: tr.Update,
	})
	p, ok := tr.Latest()
	if !ok {
		t.Fatal("no snapshot from the resume pass")
	}
	if p.Done != 3 || p.CasesDone != 6 {
		t.Errorf("resume snapshot done=%d cases=%d, want 3 shards / 6 cases", p.Done, p.CasesDone)
	}
}
