package sweep

import (
	"context"
	"testing"
	"time"
)

// TestJitterBackoffBounds pins the decorrelated-jitter envelope:
// every draw lands in [base, cap], and consecutive draws vary instead
// of following a fixed multiplicative ladder.
func TestJitterBackoffBounds(t *testing.T) {
	r := &splitmix64{s: 12345}
	base := 100 * time.Millisecond
	cap := time.Second
	prev := base
	distinct := map[time.Duration]bool{}
	for i := 0; i < 1000; i++ {
		d := jitterBackoff(r, base, prev, cap)
		if d < base || d > cap {
			t.Fatalf("draw %d: %v outside [%v, %v]", i, d, base, cap)
		}
		distinct[d] = true
		prev = d
	}
	if len(distinct) < 10 {
		t.Fatalf("only %d distinct backoffs in 1000 draws — that is a fixed schedule, not jitter", len(distinct))
	}
}

// TestSleepCtxCancelPrompt pins prompt cancellation: a 30s sleep ends
// within test-runner patience once the context dies.
func TestSleepCtxCancelPrompt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if sleepCtx(ctx, 30*time.Second) {
		t.Fatal("sleepCtx reported a full sleep under a cancelled context")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled sleep took %v", elapsed)
	}
}

// TestBreakerLifecycle drives one epHealth through the circuit:
// closed → open at the failure threshold, half-open after cooldown,
// closed again on a successful probe, and straight back open on a
// failed one.
func TestBreakerLifecycle(t *testing.T) {
	h := &epHealth{state: healthClosed}
	now := time.Now()
	cooldown := time.Minute

	h.charge(now, 3, cooldown, false)
	h.charge(now, 3, cooldown, false)
	if h.state != healthClosed {
		t.Fatalf("state %q after 2/3 failures, want closed", h.state)
	}
	h.charge(now, 3, cooldown, false)
	if h.state != healthOpen {
		t.Fatalf("state %q after 3 consecutive failures, want open", h.state)
	}

	h.tick(now.Add(30 * time.Second))
	if h.state != healthOpen {
		t.Fatalf("state %q mid-cooldown, want still open", h.state)
	}
	h.tick(now.Add(2 * time.Minute))
	if h.state != healthHalfOpen {
		t.Fatalf("state %q after cooldown, want half-open", h.state)
	}

	h.credit(50 * time.Millisecond)
	if h.state != healthClosed || h.consecFails != 0 {
		t.Fatalf("state %q consec=%d after successful probe, want closed/0", h.state, h.consecFails)
	}
	if h.ewmaNS == 0 {
		t.Fatal("success did not fold into the latency EWMA")
	}

	h.charge(now, 3, cooldown, false)
	h.charge(now, 3, cooldown, false)
	h.charge(now, 3, cooldown, false)
	h.tick(now.Add(2 * time.Minute))
	h.charge(now.Add(2*time.Minute), 3, cooldown, true)
	if h.state != healthOpen {
		t.Fatalf("state %q after failed half-open probe, want open again", h.state)
	}
}
