package sweep

import "errors"

// Failure attribution. The dispatcher treats a failed shard attempt
// differently depending on *whose fault it was*:
//
//   - A PermanentError is the campaign's fault — the spec was rejected
//     (e.g. an HTTP 400/422 from a simd server). No retry can fix it,
//     so the shard fails immediately without charging the retry budget
//     or the endpoint's circuit breaker.
//   - An EndpointError is the worker's fault — a transport failure, an
//     interrupted stream, a 5xx, an overload shed. The shard itself is
//     fine, so it re-queues for a *different* endpoint free of charge,
//     while the failing endpoint's breaker is charged. Only when a
//     shard has failed on every independent endpoint does the blame
//     flip back to the shard and its retry budget.
//   - Anything else (an in-process execution error, a torn file after
//     a claimed success) is attributed to the shard and consumes its
//     retry budget — the pre-dispatcher semantics the chaos suite pins.

// PermanentError marks a shard failure that retrying cannot fix.
type PermanentError struct{ Err error }

// Error implements error.
func (e *PermanentError) Error() string { return e.Err.Error() }

// Unwrap exposes the cause to errors.Is/As.
func (e *PermanentError) Unwrap() error { return e.Err }

// Permanent wraps err as a PermanentError (nil stays nil).
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &PermanentError{Err: err}
}

// IsPermanent reports whether err is marked permanent.
func IsPermanent(err error) bool {
	var pe *PermanentError
	return errors.As(err, &pe)
}

// EndpointError attributes a shard failure to the endpoint that ran
// it, not to the shard.
type EndpointError struct{ Err error }

// Error implements error.
func (e *EndpointError) Error() string { return e.Err.Error() }

// Unwrap exposes the cause to errors.Is/As.
func (e *EndpointError) Unwrap() error { return e.Err }

// EndpointFault wraps err as an EndpointError (nil stays nil).
func EndpointFault(err error) error {
	if err == nil {
		return nil
	}
	return &EndpointError{Err: err}
}

// IsEndpointFault reports whether err is attributed to the endpoint.
func IsEndpointFault(err error) bool {
	var ee *EndpointError
	return errors.As(err, &ee)
}
