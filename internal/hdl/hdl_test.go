package hdl

import (
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/lang"
	"repro/internal/operators"
	"repro/internal/xmlspec"
)

func compiledDesign(t *testing.T) *xmlspec.Design {
	t.Helper()
	src := `void f(int[] a, int[] b, int n) {
	  for (int i = 0; i < n; i = i + 1) {
	    if (a[i] < 0) { b[i] = -a[i]; } else { b[i] = a[i] * 2 + (a[i] >> 1); }
	  }
	}`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := compiler.Compile(prog, "f", compiler.Config{
		ArraySizes: map[string]int{"a": 8, "b": 8},
		ScalarArgs: map[string]int64{"n": 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Design
}

func TestVHDLDatapath(t *testing.T) {
	d := compiledDesign(t)
	out, err := VHDLDatapath(d.Datapaths["f_p1"], nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"entity f_p1 is", "architecture rtl of f_p1",
		"library ieee", "use ieee.numeric_std.all",
		"clk : in std_logic",
		"rising_edge(clk)",
		"m_a_mem", "to_integer(unsigned(",
		"end architecture;",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("vhdl missing %q", want)
		}
	}
	// Every operator id must appear in the output.
	for _, op := range d.Datapaths["f_p1"].Operators {
		if !strings.Contains(out, sigName(op.ID)) {
			t.Errorf("vhdl missing operator %q", op.ID)
		}
	}
}

func TestVHDLFSM(t *testing.T) {
	d := compiledDesign(t)
	out, err := VHDLFSM(d.FSMs["f_p1_ctl"])
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"entity f_p1_ctl is", "type state_t is (", "st_END",
		"case state is", "when st_S0", "done <= '1';", "rst = '1'",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("vhdl fsm missing %q:\n%s", want, out)
		}
	}
}

func TestVerilogDatapath(t *testing.T) {
	d := compiledDesign(t)
	out, err := VerilogDatapath(d.Datapaths["f_p1"], nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"module f_p1 (", "input wire clk", "endmodule",
		"always @(posedge clk)", "m_a_mem", "assign",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("verilog missing %q", want)
		}
	}
	for _, op := range d.Datapaths["f_p1"].Operators {
		if !strings.Contains(out, sigName(op.ID)) {
			t.Errorf("verilog missing operator %q", op.ID)
		}
	}
}

func TestVerilogFSM(t *testing.T) {
	d := compiledDesign(t)
	out, err := VerilogFSM(d.FSMs["f_p1_ctl"])
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"module f_p1_ctl (", "localparam ST_END", "case (state)",
		"always @(posedge clk)", "always @(*)", "endmodule",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("verilog fsm missing %q:\n%s", want, out)
		}
	}
}

func TestAllOperatorTypesEmit(t *testing.T) {
	// A datapath touching every operator type must emit in both HDLs.
	reg := operators.DefaultRegistry()
	dp := &xmlspec.Datapath{Name: "every", Width: 32}
	addOp := func(op xmlspec.Operator) { dp.Operators = append(dp.Operators, op) }
	addOp(xmlspec.Operator{ID: "k0", Type: "const", Value: -5})
	addOp(xmlspec.Operator{ID: "k1", Type: "const", Value: 3})
	two := []string{"add", "sub", "mul", "div", "mod", "and", "or", "xor",
		"shl", "shr", "sra", "eq", "ne", "lt", "le", "gt", "ge"}
	for _, typ := range two {
		id := "op_" + typ
		addOp(xmlspec.Operator{ID: id, Type: typ})
		dp.Connections = append(dp.Connections,
			xmlspec.Connection{From: "k0.y", To: id + ".a"},
			xmlspec.Connection{From: "k1.y", To: id + ".b"})
	}
	for _, typ := range []string{"neg", "not", "lnot"} {
		id := "op_" + typ
		addOp(xmlspec.Operator{ID: id, Type: typ})
		dp.Connections = append(dp.Connections, xmlspec.Connection{From: "k0.y", To: id + ".a"})
	}
	addOp(xmlspec.Operator{ID: "op_b2i", Type: "b2i"})
	dp.Connections = append(dp.Connections, xmlspec.Connection{From: "op_eq.y", To: "op_b2i.a"})
	addOp(xmlspec.Operator{ID: "op_mux", Type: "mux", Inputs: 3})
	dp.Connections = append(dp.Connections,
		xmlspec.Connection{From: "k0.y", To: "op_mux.in0"},
		xmlspec.Connection{From: "k1.y", To: "op_mux.in1"},
		xmlspec.Connection{From: "op_add.y", To: "op_mux.in2"})
	addOp(xmlspec.Operator{ID: "op_reg", Type: "reg"})
	dp.Connections = append(dp.Connections, xmlspec.Connection{From: "op_mux.y", To: "op_reg.d"})
	addOp(xmlspec.Operator{ID: "op_ram", Type: "ram", Depth: 16})
	dp.Connections = append(dp.Connections, xmlspec.Connection{From: "op_reg.q", To: "op_ram.addr"})
	addOp(xmlspec.Operator{ID: "op_rom", Type: "rom", Depth: 16})
	dp.Connections = append(dp.Connections, xmlspec.Connection{From: "op_reg.q", To: "op_rom.addr"})
	addOp(xmlspec.Operator{ID: "op_stim", Type: "stim"})
	addOp(xmlspec.Operator{ID: "op_sink", Type: "sink"})
	dp.Connections = append(dp.Connections, xmlspec.Connection{From: "op_stim.out", To: "op_sink.in"})
	dp.Controls = []xmlspec.Control{
		{Name: "sel", Width: 2, Targets: []xmlspec.ControlTo{{Port: "op_mux.sel"}}},
		{Name: "en", Targets: []xmlspec.ControlTo{{Port: "op_reg.en"}}},
	}
	dp.Statuses = []xmlspec.Status{{Name: "s0", From: "op_lt.y"}}

	if err := xmlspec.ValidateDatapath(dp, reg); err != nil {
		t.Fatal(err)
	}
	v, err := VHDLDatapath(dp, reg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := VerilogDatapath(dp, reg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(g, "-32'sd5") {
		t.Error("verilog negative const literal missing")
	}
	for _, out := range []string{v, g} {
		if len(out) < 500 {
			t.Fatalf("implausibly short HDL:\n%s", out)
		}
	}
}

func TestSigName(t *testing.T) {
	if sigName("a.b-c") != "a_b_c" {
		t.Fatalf("sigName=%q", sigName("a.b-c"))
	}
}

func TestStateBits(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 17: 5}
	for n, want := range cases {
		if got := stateBits(n); got != want {
			t.Errorf("stateBits(%d)=%d want %d", n, got, want)
		}
	}
}

func TestGuardRewrites(t *testing.T) {
	if got := vhdlGuard("s0 & !s1"); got != "s0 = '1' and not s1 = '1'" {
		t.Fatalf("vhdlGuard=%q", got)
	}
	if got := verilogGuard("s0 | s1"); got != "s0 || s1" {
		t.Fatalf("verilogGuard=%q", got)
	}
	if vhdlGuard("") != "" || verilogGuard("") != "" {
		t.Fatal("empty guard must stay empty")
	}
}
