package hdl

import (
	"fmt"
	"strings"

	"repro/internal/operators"
	"repro/internal/xmlspec"
)

// VerilogDatapath renders a datapath as one Verilog module.
func VerilogDatapath(dp *xmlspec.Datapath, reg *operators.Registry) (string, error) {
	r, err := resolve(dp, reg)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "// %s\n", fmtComment("Verilog", dp.Name))
	fmt.Fprintf(&b, "module %s (\n  input wire clk", sigName(dp.Name))
	for _, ctl := range dp.Controls {
		fmt.Fprintf(&b, ",\n  input wire %s ctl_%s", vrange(ctl.ControlWidth()), ctl.Name)
	}
	for _, st := range dp.Statuses {
		fmt.Fprintf(&b, ",\n  output wire %s st_%s", vrange(st.StatusWidth()), st.Name)
	}
	b.WriteString("\n);\n")

	for i := range dp.Operators {
		op := &dp.Operators[i]
		for _, ps := range r.ports[op.ID] {
			if ps.Dir != operators.Out {
				continue
			}
			kind := "wire"
			if op.Type == "reg" || (op.Type == "ram" && ps.Name == "dout") {
				kind = "reg"
			}
			if op.Type == "ram" && ps.Name == "dout" {
				kind = "wire" // async read: continuous assign below
			}
			fmt.Fprintf(&b, "  %s signed %s %s;\n", kind, vrange(ps.Width), sigName(op.ID+"."+ps.Name))
		}
		if op.Type == "ram" {
			fmt.Fprintf(&b, "  reg signed %s %s_mem [0:%d];\n", vrange(r.width(op.ID)), op.ID, op.Depth-1)
		}
	}
	for i := range dp.Operators {
		if err := verilogOperator(&b, r, &dp.Operators[i]); err != nil {
			return "", err
		}
	}
	for _, st := range dp.Statuses {
		fmt.Fprintf(&b, "  assign st_%s = %s;\n", st.Name, sigName(st.From))
	}
	b.WriteString("endmodule\n")
	return b.String(), nil
}

func vrange(width int) string {
	if width == 1 {
		return ""
	}
	return fmt.Sprintf("[%d:0]", width-1)
}

func verilogOperator(b *strings.Builder, r *resolved, op *xmlspec.Operator) error {
	id := op.ID
	y := sigName(id + ".y")
	a := func() string { return r.in(id, "a", "0") }
	bb := func() string { return r.in(id, "b", "0") }
	w := r.width(id)
	switch op.Type {
	case "const":
		if op.Value < 0 {
			fmt.Fprintf(b, "  assign %s = -%d'sd%d;\n", y, w, abs64(op.Value))
		} else {
			fmt.Fprintf(b, "  assign %s = %d'sd%d;\n", y, w, op.Value)
		}
	case "add", "sub", "mul", "and", "or", "xor":
		fmt.Fprintf(b, "  assign %s = %s %s %s;\n", y, a(), binExpr[op.Type], bb())
	case "div", "mod":
		sym := map[string]string{"div": "/", "mod": "%"}[op.Type]
		fmt.Fprintf(b, "  assign %s = (%s != 0) ? (%s %s %s) : 0;\n", y, bb(), a(), sym, bb())
	case "shl":
		fmt.Fprintf(b, "  assign %s = %s <<< %s;\n", y, a(), bb())
	case "sra":
		fmt.Fprintf(b, "  assign %s = %s >>> %s;\n", y, a(), bb())
	case "shr":
		fmt.Fprintf(b, "  assign %s = $signed($unsigned(%s) >> %s);\n", y, a(), bb())
	case "eq", "ne", "lt", "le", "gt", "ge":
		fmt.Fprintf(b, "  assign %s = (%s %s %s);\n", y, a(), cmpExprVerilog[op.Type], bb())
	case "neg":
		fmt.Fprintf(b, "  assign %s = -%s;\n", y, a())
	case "not":
		fmt.Fprintf(b, "  assign %s = ~%s;\n", y, a())
	case "lnot":
		fmt.Fprintf(b, "  assign %s = (%s == 0);\n", y, a())
	case "b2i":
		fmt.Fprintf(b, "  assign %s = {%d'b0, %s};\n", y, w-1, a())
	case "mux":
		n := muxInputs(r.params[id])
		sel := r.in(id, "sel", "0")
		fmt.Fprintf(b, "  assign %s =\n", y)
		for i := 0; i < n; i++ {
			fmt.Fprintf(b, "    (%s == %d) ? %s :\n", sel, i, r.in(id, fmt.Sprintf("in%d", i), "0"))
		}
		b.WriteString("    0;\n")
	case "reg":
		q := sigName(id + ".q")
		fmt.Fprintf(b, "  always @(posedge clk) begin\n")
		if r.hasDriver(id, "en") {
			fmt.Fprintf(b, "    if (%s) %s <= %s;\n", r.in(id, "en", "1'b1"), q, r.in(id, "d", "0"))
		} else {
			fmt.Fprintf(b, "    %s <= %s;\n", q, r.in(id, "d", "0"))
		}
		b.WriteString("  end\n")
	case "ram":
		addr := r.in(id, "addr", "0")
		fmt.Fprintf(b, "  always @(posedge clk) begin\n")
		fmt.Fprintf(b, "    if (%s) %s_mem[%s] <= %s;\n", r.in(id, "we", "1'b0"), id, addr, r.in(id, "din", "0"))
		b.WriteString("  end\n")
		fmt.Fprintf(b, "  assign %s = %s_mem[%s];\n", sigName(id+".dout"), id, addr)
	case "rom":
		fmt.Fprintf(b, "  // rom %s: contents loaded from file at initialisation\n", id)
		fmt.Fprintf(b, "  assign %s = 0;\n", sigName(id+".dout"))
	case "stim", "sink":
		fmt.Fprintf(b, "  // %s %s: testbench-side I/O component\n", op.Type, id)
	default:
		return fmt.Errorf("hdl: verilog: unhandled operator type %q", op.Type)
	}
	return nil
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// VerilogFSM renders a control unit as a Verilog module with localparam
// state encoding, a state register and Moore output logic.
func VerilogFSM(f *xmlspec.FSM) (string, error) {
	if err := xmlspec.ValidateFSM(f); err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "// %s\n", fmtComment("Verilog FSM", f.Name))
	fmt.Fprintf(&b, "module %s (\n  input wire clk,\n  input wire rst", sigName(f.Name))
	for _, in := range f.Inputs {
		fmt.Fprintf(&b, ",\n  input wire %s %s", vrange(in.SignalWidth()), in.Name)
	}
	for _, out := range f.Outputs {
		fmt.Fprintf(&b, ",\n  output reg %s %s", vrange(out.SignalWidth()), out.Name)
	}
	b.WriteString("\n);\n")
	sw := stateBits(len(f.States))
	for i, st := range f.States {
		fmt.Fprintf(&b, "  localparam ST_%s = %d'd%d;\n", sigName(st.Name), sw, i)
	}
	fmt.Fprintf(&b, "  reg %s state;\n\n", vrange(sw))

	ini, _ := f.InitialState()
	b.WriteString("  always @(posedge clk) begin\n    if (rst) begin\n")
	fmt.Fprintf(&b, "      state <= ST_%s;\n    end else begin\n      case (state)\n", sigName(ini.Name))
	for i := range f.States {
		st := &f.States[i]
		fmt.Fprintf(&b, "      ST_%s:\n", sigName(st.Name))
		if len(st.Transitions) == 0 {
			b.WriteString("        ;\n")
			continue
		}
		emitted := false
		for _, tr := range st.Transitions {
			guard := verilogGuard(tr.Cond)
			if guard == "" {
				if emitted {
					fmt.Fprintf(&b, "        else state <= ST_%s;\n", sigName(tr.Next))
				} else {
					fmt.Fprintf(&b, "        state <= ST_%s;\n", sigName(tr.Next))
				}
				break
			}
			kw := "if"
			if emitted {
				kw = "else if"
			}
			fmt.Fprintf(&b, "        %s (%s) state <= ST_%s;\n", kw, guard, sigName(tr.Next))
			emitted = true
		}
	}
	b.WriteString("      endcase\n    end\n  end\n\n")

	b.WriteString("  always @(*) begin\n")
	for _, out := range f.Outputs {
		fmt.Fprintf(&b, "    %s = 0;\n", out.Name)
	}
	b.WriteString("    case (state)\n")
	for i := range f.States {
		st := &f.States[i]
		if len(st.Assigns) == 0 {
			continue
		}
		fmt.Fprintf(&b, "    ST_%s: begin\n", sigName(st.Name))
		for _, a := range st.Assigns {
			fmt.Fprintf(&b, "      %s = %d;\n", a.Signal, a.Value)
		}
		b.WriteString("    end\n")
	}
	b.WriteString("    default: ;\n    endcase\n  end\nendmodule\n")
	return b.String(), nil
}

func stateBits(n int) int {
	bits := 1
	for 1<<uint(bits) < n {
		bits++
	}
	return bits
}

// verilogGuard rewrites an FSM guard into Verilog ("" for default edges).
func verilogGuard(cond string) string {
	cond = strings.TrimSpace(cond)
	if cond == "" {
		return ""
	}
	var b strings.Builder
	for i := 0; i < len(cond); i++ {
		c := cond[i]
		switch c {
		case '&':
			b.WriteString(" && ")
		case '|':
			b.WriteString(" || ")
		default:
			if isIdent(c) {
				j := i
				for j < len(cond) && isIdent(cond[j]) {
					j++
				}
				tok := cond[i:j]
				switch tok {
				case "1":
					b.WriteString("1'b1")
				case "0":
					b.WriteString("1'b0")
				default:
					b.WriteString(tok)
				}
				i = j - 1
				continue
			}
			b.WriteByte(c)
		}
	}
	return strings.Join(strings.Fields(b.String()), " ")
}
