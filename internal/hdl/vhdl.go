package hdl

import (
	"fmt"
	"strings"

	"repro/internal/operators"
	"repro/internal/xmlspec"
)

// VHDLDatapath renders a datapath as one VHDL entity: clock plus control
// inputs and status outputs in the port list, one internal signal per
// operator output, and one concurrent statement or process per operator.
func VHDLDatapath(dp *xmlspec.Datapath, reg *operators.Registry) (string, error) {
	r, err := resolve(dp, reg)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "-- %s\n", fmtComment("VHDL", dp.Name))
	b.WriteString("library ieee;\nuse ieee.std_logic_1164.all;\nuse ieee.numeric_std.all;\n\n")
	fmt.Fprintf(&b, "entity %s is\n  port (\n", sigName(dp.Name))
	b.WriteString("    clk : in std_logic")
	for _, ctl := range dp.Controls {
		fmt.Fprintf(&b, ";\n    ctl_%s : in %s", ctl.Name, vhdlType(ctl.ControlWidth()))
	}
	for _, st := range dp.Statuses {
		fmt.Fprintf(&b, ";\n    st_%s : out %s", st.Name, vhdlType(st.StatusWidth()))
	}
	b.WriteString("\n  );\nend entity;\n\n")
	fmt.Fprintf(&b, "architecture rtl of %s is\n", sigName(dp.Name))

	for i := range dp.Operators {
		op := &dp.Operators[i]
		for _, ps := range r.ports[op.ID] {
			if ps.Dir == operators.Out {
				fmt.Fprintf(&b, "  signal %s : %s;\n", sigName(op.ID+"."+ps.Name), vhdlType(ps.Width))
			}
		}
		if op.Type == "ram" {
			fmt.Fprintf(&b, "  type %s_mem_t is array (0 to %d) of %s;\n",
				op.ID, op.Depth-1, vhdlType(r.width(op.ID)))
			fmt.Fprintf(&b, "  signal %s_mem : %s_mem_t;\n", op.ID, op.ID)
		}
	}
	b.WriteString("begin\n")
	for i := range dp.Operators {
		if err := vhdlOperator(&b, r, &dp.Operators[i]); err != nil {
			return "", err
		}
	}
	for _, st := range dp.Statuses {
		fmt.Fprintf(&b, "  st_%s <= %s;\n", st.Name, sigName(st.From))
	}
	b.WriteString("end architecture;\n")
	return b.String(), nil
}

func vhdlType(width int) string {
	if width == 1 {
		return "std_logic"
	}
	return fmt.Sprintf("signed(%d downto 0)", width-1)
}

func vhdlOperator(b *strings.Builder, r *resolved, op *xmlspec.Operator) error {
	id := op.ID
	y := sigName(id + ".y")
	a := func() string { return r.in(id, "a", "(others => '0')") }
	bb := func() string { return r.in(id, "b", "(others => '0')") }
	w := r.width(id)
	switch op.Type {
	case "const":
		fmt.Fprintf(b, "  %s <= to_signed(%d, %d);\n", y, op.Value, w)
	case "add", "sub", "mul", "and", "or", "xor":
		expr := fmt.Sprintf("%s %s %s", a(), vhdlBinOp(op.Type), bb())
		if op.Type == "mul" {
			expr = fmt.Sprintf("resize(%s * %s, %d)", a(), bb(), w)
		}
		fmt.Fprintf(b, "  %s <= %s;\n", y, expr)
	case "div", "mod":
		fmt.Fprintf(b, "  %s <= %s %s %s when %s /= 0 else to_signed(0, %d);\n",
			y, a(), op.Type, bb(), bb(), w)
	case "shl", "shr", "sra":
		fn := map[string]string{"shl": "shift_left", "shr": "shift_right", "sra": "shift_right"}[op.Type]
		arg := a()
		if op.Type == "shr" {
			arg = fmt.Sprintf("signed(shift_right(unsigned(%s), to_integer(unsigned(%s))))", a(), bb())
			fmt.Fprintf(b, "  %s <= %s;\n", y, arg)
			return nil
		}
		fmt.Fprintf(b, "  %s <= %s(%s, to_integer(unsigned(%s)));\n", y, fn, arg, bb())
	case "eq", "ne", "lt", "le", "gt", "ge":
		fmt.Fprintf(b, "  %s <= '1' when %s %s %s else '0';\n", y, a(), cmpExpr[op.Type], bb())
	case "neg":
		fmt.Fprintf(b, "  %s <= -%s;\n", y, a())
	case "not":
		fmt.Fprintf(b, "  %s <= not %s;\n", y, a())
	case "lnot":
		fmt.Fprintf(b, "  %s <= '1' when %s = 0 else '0';\n", y, a())
	case "b2i":
		fmt.Fprintf(b, "  %s <= to_signed(1, %d) when %s = '1' else to_signed(0, %d);\n", y, w, a(), w)
	case "mux":
		n := muxInputs(r.params[id])
		fmt.Fprintf(b, "  with to_integer(unsigned(%s)) select %s <=\n", r.in(id, "sel", "\"0\""), y)
		for i := 0; i < n; i++ {
			fmt.Fprintf(b, "    %s when %d,\n", r.in(id, fmt.Sprintf("in%d", i), "(others => '0')"), i)
		}
		fmt.Fprintf(b, "    (others => '0') when others;\n")
	case "reg":
		fmt.Fprintf(b, "  process(clk) begin\n    if rising_edge(clk) then\n")
		q := sigName(id + ".q")
		if r.hasDriver(id, "en") {
			fmt.Fprintf(b, "      if %s = '1' then %s <= %s; end if;\n", r.in(id, "en", "'1'"), q, r.in(id, "d", "(others => '0')"))
		} else {
			fmt.Fprintf(b, "      %s <= %s;\n", q, r.in(id, "d", "(others => '0')"))
		}
		fmt.Fprintf(b, "    end if;\n  end process;\n")
	case "ram":
		addr := r.in(id, "addr", "(others => '0')")
		fmt.Fprintf(b, "  process(clk) begin\n    if rising_edge(clk) then\n")
		fmt.Fprintf(b, "      if %s = '1' then %s_mem(to_integer(unsigned(%s))) <= %s; end if;\n",
			r.in(id, "we", "'0'"), id, addr, r.in(id, "din", "(others => '0')"))
		fmt.Fprintf(b, "    end if;\n  end process;\n")
		fmt.Fprintf(b, "  %s <= %s_mem(to_integer(unsigned(%s)));\n", sigName(id+".dout"), id, addr)
	case "rom":
		fmt.Fprintf(b, "  -- rom %s: contents loaded from file at initialisation\n", id)
		fmt.Fprintf(b, "  %s <= (others => '0');\n", sigName(id+".dout"))
	case "stim", "sink":
		fmt.Fprintf(b, "  -- %s %s: testbench-side I/O component\n", op.Type, id)
	default:
		return fmt.Errorf("hdl: vhdl: unhandled operator type %q", op.Type)
	}
	return nil
}

func vhdlBinOp(typ string) string {
	if op, ok := binExpr[typ]; ok {
		switch op {
		case "&":
			return "and"
		case "|":
			return "or"
		case "^":
			return "xor"
		}
		return op
	}
	return typ
}

// VHDLFSM renders a control unit as a two-process VHDL entity.
func VHDLFSM(f *xmlspec.FSM) (string, error) {
	if err := xmlspec.ValidateFSM(f); err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "-- %s\n", fmtComment("VHDL FSM", f.Name))
	b.WriteString("library ieee;\nuse ieee.std_logic_1164.all;\nuse ieee.numeric_std.all;\n\n")
	fmt.Fprintf(&b, "entity %s is\n  port (\n    clk : in std_logic;\n    rst : in std_logic", sigName(f.Name))
	for _, in := range f.Inputs {
		fmt.Fprintf(&b, ";\n    %s : in %s", in.Name, vhdlType(in.SignalWidth()))
	}
	for _, out := range f.Outputs {
		fmt.Fprintf(&b, ";\n    %s : out %s", out.Name, vhdlType(out.SignalWidth()))
	}
	b.WriteString("\n  );\nend entity;\n\n")
	fmt.Fprintf(&b, "architecture rtl of %s is\n  type state_t is (", sigName(f.Name))
	for i, st := range f.States {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString("st_" + sigName(st.Name))
	}
	b.WriteString(");\n  signal state : state_t;\nbegin\n")

	// State register + next-state logic.
	b.WriteString("  process(clk) begin\n    if rising_edge(clk) then\n      if rst = '1' then\n")
	ini, _ := f.InitialState()
	fmt.Fprintf(&b, "        state <= st_%s;\n      else\n        case state is\n", sigName(ini.Name))
	for i := range f.States {
		st := &f.States[i]
		fmt.Fprintf(&b, "          when st_%s =>\n", sigName(st.Name))
		if len(st.Transitions) == 0 {
			b.WriteString("            null;\n")
			continue
		}
		emitted := false
		for _, tr := range st.Transitions {
			guard := vhdlGuard(tr.Cond)
			if guard == "" {
				if emitted {
					fmt.Fprintf(&b, "            else state <= st_%s;\n", sigName(tr.Next))
				} else {
					fmt.Fprintf(&b, "            state <= st_%s;\n", sigName(tr.Next))
				}
				break
			}
			kw := "if"
			if emitted {
				kw = "elsif"
			}
			fmt.Fprintf(&b, "            %s %s then state <= st_%s;\n", kw, guard, sigName(tr.Next))
			emitted = true
		}
		if emitted {
			b.WriteString("            end if;\n")
		}
	}
	b.WriteString("        end case;\n      end if;\n    end if;\n  end process;\n\n")

	// Moore outputs.
	b.WriteString("  process(state) begin\n")
	for _, out := range f.Outputs {
		fmt.Fprintf(&b, "    %s <= %s;\n", out.Name, vhdlZero(out.SignalWidth()))
	}
	b.WriteString("    case state is\n")
	for i := range f.States {
		st := &f.States[i]
		fmt.Fprintf(&b, "      when st_%s =>\n", sigName(st.Name))
		if len(st.Assigns) == 0 {
			b.WriteString("        null;\n")
			continue
		}
		for _, a := range st.Assigns {
			w := outputWidth(f, a.Signal)
			if w == 1 {
				fmt.Fprintf(&b, "        %s <= '%d';\n", a.Signal, a.Value&1)
			} else {
				fmt.Fprintf(&b, "        %s <= to_signed(%d, %d);\n", a.Signal, a.Value, w)
			}
		}
	}
	b.WriteString("    end case;\n  end process;\nend architecture;\n")
	return b.String(), nil
}

func vhdlZero(width int) string {
	if width == 1 {
		return "'0'"
	}
	return "(others => '0')"
}

func outputWidth(f *xmlspec.FSM, name string) int {
	for _, out := range f.Outputs {
		if out.Name == name {
			return out.SignalWidth()
		}
	}
	return 1
}

// vhdlGuard rewrites an FSM guard into VHDL ("" for the default edge).
func vhdlGuard(cond string) string {
	cond = strings.TrimSpace(cond)
	if cond == "" {
		return ""
	}
	var b strings.Builder
	for i := 0; i < len(cond); i++ {
		c := cond[i]
		switch c {
		case '&':
			b.WriteString(" and ")
		case '|':
			b.WriteString(" or ")
		case '!':
			b.WriteString(" not ")
		default:
			if isIdent(c) {
				j := i
				for j < len(cond) && isIdent(cond[j]) {
					j++
				}
				tok := cond[i:j]
				switch tok {
				case "1":
					b.WriteString("true")
				case "0":
					b.WriteString("false")
				default:
					fmt.Fprintf(&b, "%s = '1'", tok)
				}
				i = j - 1
				continue
			}
			b.WriteByte(c)
		}
	}
	return strings.Join(strings.Fields(b.String()), " ")
}

func isIdent(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
}
