package simd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/api"
)

// OverloadedError is a 429 from the server: the request was shed by an
// admission gate. RetryAfter carries the server's Retry-After hint.
type OverloadedError struct {
	RetryAfter time.Duration
	Message    string
}

// Error implements error.
func (e *OverloadedError) Error() string {
	return fmt.Sprintf("simd: server overloaded (retry after %s): %s", e.RetryAfter, e.Message)
}

// Result is one fully-decoded NDJSON response: the streamed
// per-configuration records plus the trailing summary.
type Result struct {
	Configs []api.RunRecord
	Summary api.RunRecord
}

// Client speaks the simd wire protocol. The zero value is not usable;
// construct with NewClient.
type Client struct {
	base string
	http *http.Client
}

// NewClient targets a server base URL, e.g. "http://localhost:8047".
// httpClient nil means http.DefaultClient.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), http: httpClient}
}

// Verify runs the request as a verify round.
func (c *Client) Verify(ctx context.Context, req api.Request) (*Result, error) {
	return c.do(ctx, PathVerify, req)
}

// Sweep runs the request as a verify sweep (req.Rounds rounds).
func (c *Client) Sweep(ctx context.Context, req api.Request) (*Result, error) {
	return c.do(ctx, PathSweep, req)
}

// Bench runs the request as an unverified timing sweep.
func (c *Client) Bench(ctx context.Context, req api.Request) (*Result, error) {
	return c.do(ctx, PathBench, req)
}

// Stats fetches /statsz.
func (c *Client) Stats(ctx context.Context) (*api.ServerStats, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+PathStats, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, httpError(resp)
	}
	var st api.ServerStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("simd: bad /statsz body: %w", err)
	}
	if err := api.CheckVersion(st.SchemaVersion); err != nil {
		return nil, err
	}
	return &st, nil
}

// Backends fetches /v1/backends: the server's default backend and the
// full registered-descriptor catalog.
func (c *Client) Backends(ctx context.Context) (*api.BackendsResponse, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+PathBackends, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, httpError(resp)
	}
	var br api.BackendsResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return nil, fmt.Errorf("simd: bad /v1/backends body: %w", err)
	}
	if err := api.CheckVersion(br.SchemaVersion); err != nil {
		return nil, err
	}
	return &br, nil
}

func (c *Client) do(ctx context.Context, path string, req api.Request) (*Result, error) {
	if req.SchemaVersion == 0 {
		req.SchemaVersion = api.SchemaVersion
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, httpError(resp)
	}
	return decodeStream(resp.Body)
}

// decodeStream reads an NDJSON response into a Result. A summary
// carrying a server-side error yields that error alongside the partial
// result.
func decodeStream(r io.Reader) (*Result, error) {
	res := &Result{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	sawSummary := false
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec api.RunRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return res, fmt.Errorf("simd: bad response line: %w", err)
		}
		if err := api.CheckVersion(rec.SchemaVersion); err != nil {
			return res, err
		}
		switch rec.Record {
		case api.RecordConfig:
			res.Configs = append(res.Configs, rec)
		case api.RecordSummary:
			res.Summary = rec
			sawSummary = true
		default:
			return res, fmt.Errorf("simd: unknown record kind %q", rec.Record)
		}
	}
	if err := sc.Err(); err != nil {
		return res, err
	}
	if !sawSummary {
		return res, errors.New("simd: response stream ended without a summary record")
	}
	if res.Summary.Error != "" {
		return res, fmt.Errorf("simd: request failed after %d rounds: %s", res.Summary.Rounds, res.Summary.Error)
	}
	return res, nil
}

// StatusError is any other non-200 reply, keeping the status code so
// callers can tell a client error (4xx: the request itself is wrong
// and will be wrong on every server) from a server error (5xx: this
// endpoint is unhealthy, another may serve the same request fine).
type StatusError struct {
	Status  int
	Message string
}

// Error implements error, preserving the legacy message shape.
func (e *StatusError) Error() string {
	return fmt.Sprintf("simd: HTTP %d: %s", e.Status, e.Message)
}

// httpError turns a non-200 reply into a typed error: 429 becomes an
// *OverloadedError so callers can back off programmatically, anything
// else a *StatusError so they can classify by status code.
func httpError(resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	text := strings.TrimSpace(string(msg))
	if resp.StatusCode == http.StatusTooManyRequests {
		retry := time.Second
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			retry = time.Duration(secs) * time.Second
		}
		return &OverloadedError{RetryAfter: retry, Message: text}
	}
	return &StatusError{Status: resp.StatusCode, Message: text}
}

// BaseURL reports the server base URL this client targets.
func (c *Client) BaseURL() string { return c.base }
