package simd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/api"
	"repro/internal/flow"
	"repro/internal/scenario"
)

// handleScenario serves POST /v1/scenario: the body is a declarative
// api.ScenarioSpec, the response is the campaign's NDJSON trace — the
// same header/case/summary records `testsuite -scenario -trace` writes,
// so the stream can be saved and replayed locally. The spec is loaded,
// capped and expanded before the first byte is written, keeping spec
// errors on the 4xx surface; once streaming starts, execution errors
// land in the trailing summary record's error field.
//
// Scenario campaigns prepare their own designs per resolved
// parameterization (one campaign reuses them across cases via the
// replay cache) and do not touch the shared session pool: a campaign's
// faulted reseeding must not interleave with pooled verify traffic.
func (s *Server) handleScenario(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST an api.ScenarioSpec", http.StatusMethodNotAllowed)
		return
	}
	if retry, ok := s.bucket.take(); !ok {
		s.reject(w, retry, "rate limit exceeded")
		return
	}
	sc, err := scenario.Parse(http.MaxBytesReader(w, r.Body, 1<<20), s.cfg.Registry)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if sc.Spec.Cases > s.cfg.MaxScenarioCases {
		http.Error(w, fmt.Sprintf("simd: %d cases exceeds the per-scenario cap %d",
			sc.Spec.Cases, s.cfg.MaxScenarioCases), http.StatusBadRequest)
		return
	}
	backend := sc.Spec.Backend
	if backend == "" {
		backend = s.cfg.Backend
	}
	if _, err := flow.LookupBackend(backend); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Materialize every case now: an invalid draw surfaces as a 400
	// instead of a truncated stream. Run re-expands from the same seed,
	// so the draws it executes are exactly the ones validated here.
	if _, err := sc.Expand(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	select {
	case s.tickets <- struct{}{}:
	default:
		s.reject(w, time.Second, "server at capacity")
		return
	}
	defer func() { <-s.tickets }()
	s.requests.Add(1)
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)

	ctx := r.Context()
	select {
	case s.workers <- struct{}{}:
	case <-ctx.Done():
		s.failed.Add(1)
		return // client gone while queued
	}
	defer func() { <-s.workers }()

	w.Header().Set("Content-Type", "application/x-ndjson")
	fw := flushWriter{w: w}
	fw.f, _ = w.(http.Flusher)
	res, err := sc.Run(ctx, scenario.Options{Backend: backend, Registry: s.cfg.Registry}, fw)
	if err != nil || (res != nil && !res.OK()) {
		s.failed.Add(1)
	}
}

// flushWriter flushes the HTTP response after every write so each trace
// record reaches the client as it is produced.
type flushWriter struct {
	w http.ResponseWriter
	f http.Flusher
}

func (fw flushWriter) Write(p []byte) (int, error) {
	n, err := fw.w.Write(p)
	if fw.f != nil {
		fw.f.Flush()
	}
	return n, err
}

// Scenario posts a scenario spec and decodes the streamed trace. The
// trace is returned even when the campaign went red — callers inspect
// it — alongside an error describing the failure.
func (c *Client) Scenario(ctx context.Context, spec api.ScenarioSpec) (*scenario.Trace, error) {
	if spec.SchemaVersion == 0 {
		spec.SchemaVersion = api.SchemaVersion
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+PathScenario, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, httpError(resp)
	}
	tr, err := scenario.ReadTrace(resp.Body)
	if err != nil {
		return nil, err
	}
	if tr.Summary == nil {
		return tr, errors.New("simd: scenario stream ended without a summary record")
	}
	if tr.Summary.Error != "" {
		return tr, fmt.Errorf("simd: scenario failed after %d cases: %s", len(tr.Cases), tr.Summary.Error)
	}
	if !tr.Summary.OK {
		return tr, fmt.Errorf("simd: scenario %q went red (%d/%d passed, %d policy violations)",
			tr.Header.Scenario, tr.Summary.Passed, tr.Summary.Cases, tr.Summary.PolicyViolations)
	}
	return tr, nil
}
