package simd_test

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/simd"
)

func testServer(t *testing.T, cfg simd.Config) (*httptest.Server, *simd.Client) {
	t.Helper()
	ts := httptest.NewServer(simd.New(cfg))
	t.Cleanup(ts.Close)
	return ts, simd.NewClient(ts.URL, ts.Client())
}

func hammingReq(words int) api.Request {
	return api.NewRequest("hamming", map[string]int{"words": words})
}

// waitInFlight polls /statsz until the server reports at least n
// requests in flight.
func waitInFlight(t *testing.T, c *simd.Client, n int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, err := c.Stats(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if st.InFlight >= n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("server never reached %d requests in flight", n)
}

// TestVerifyStreamsNDJSON pins the wire shape end to end: a verify
// request answers an NDJSON stream whose lines decode into versioned
// api.RunRecord values — per-configuration records first, one summary
// last — and a second identical request hits the pooled session.
func TestVerifyStreamsNDJSON(t *testing.T) {
	ts, client := testServer(t, simd.Config{})

	// Raw HTTP first: the bytes on the wire, not the client's view.
	resp, err := ts.Client().Post(ts.URL+simd.PathVerify, "application/json",
		strings.NewReader(`{"workload":"hamming","params":{"words":8}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q", ct)
	}
	var recs []api.RunRecord
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var rec api.RunRecord
		if err := dec.Decode(&rec); err != nil {
			t.Fatal(err)
		}
		if err := api.CheckVersion(rec.SchemaVersion); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	if len(recs) < 2 {
		t.Fatalf("stream too short: %+v", recs)
	}
	sum := recs[len(recs)-1]
	if sum.Record != api.RecordSummary {
		t.Fatalf("last record is %q, want summary", sum.Record)
	}
	for i, rec := range recs[:len(recs)-1] {
		if rec.Record != api.RecordConfig || rec.Config == "" || rec.Round != 1 || !rec.Completed {
			t.Fatalf("config record %d: %+v", i, rec)
		}
	}
	if sum.Kind != api.KindVerify || sum.Workload != "hamming" || !sum.Verified || !sum.Passed {
		t.Fatalf("summary: %+v", sum)
	}
	if !strings.Contains(sum.Params, "words=8") || !strings.Contains(sum.Params, "seed=") {
		t.Fatalf("params not canonical: %q", sum.Params)
	}
	if sum.PoolHit {
		t.Fatal("first request cannot be a pool hit")
	}
	if sum.Configs != uint64(len(recs)-1) || sum.Elaborations != sum.Configs || sum.Resets != 0 {
		t.Fatalf("first-request counters: %+v", sum)
	}

	// Same request through the client: pool hit, no new elaborations.
	res, err := client.Verify(context.Background(), hammingReq(8))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Summary.PoolHit {
		t.Fatal("second request must hit the pool")
	}
	if res.Summary.Elaborations != sum.Elaborations || res.Summary.Resets != 1 {
		t.Fatalf("pool hit must reset-and-replay, not re-elaborate: %+v", res.Summary)
	}
}

// TestSweep32Concurrent is the ISSUE's load acceptance test: 32
// concurrent sweep requests against one pooled session, all served, all
// verified, with exactly one elaboration per configuration — every
// other round a reset-and-replay. Run with -race in CI.
func TestSweep32Concurrent(t *testing.T) {
	const clients = 32
	ts, client := testServer(t, simd.Config{
		Workers:         clients,
		MaxQueue:        clients,
		SessionInFlight: 2 * clients,
	})
	_ = ts

	// Warm the pool so every concurrent request is a hit.
	warm, err := client.Verify(context.Background(), hammingReq(8))
	if err != nil {
		t.Fatal(err)
	}
	cfgCount := warm.Summary.Configs

	var wg sync.WaitGroup
	results := make([]*simd.Result, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = client.Sweep(context.Background(), hammingReq(8).WithRounds(2))
		}(i)
	}
	wg.Wait()

	totalRounds := 1 // the warm-up
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		sum := results[i].Summary
		if !sum.PoolHit || !sum.Verified || !sum.Passed || sum.Rounds != 2 {
			t.Fatalf("client %d summary: %+v", i, sum)
		}
		if sum.Elaborations != cfgCount {
			t.Fatalf("client %d: %d elaborations, want %d (pool hits must skip re-elaboration)",
				i, sum.Elaborations, cfgCount)
		}
		if got := uint64(len(results[i].Configs)); got != 2*cfgCount {
			t.Fatalf("client %d: %d config records, want %d", i, got, 2*cfgCount)
		}
		totalRounds += 2
	}

	st, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.PoolMisses != 1 || st.PoolHits != clients {
		t.Fatalf("pool counters: %+v", st)
	}
	if st.Elaborations != cfgCount {
		t.Fatalf("server elaborated %d times for %d rounds; the session pool is not amortizing", st.Elaborations, totalRounds)
	}
	if want := uint64(totalRounds - 1); st.Resets/cfgCount != want {
		t.Fatalf("resets %d (per config %d), want %d per config", st.Resets, st.Resets/cfgCount, want)
	}
	if st.Rounds != uint64(totalRounds) || st.Requests != clients+1 || st.Rejected != 0 {
		t.Fatalf("server stats: %+v", st)
	}
	if len(st.SessionsDetail) != 1 || st.SessionsDetail[0].Runs != uint64(totalRounds) {
		t.Fatalf("sessions detail: %+v", st.SessionsDetail)
	}
}

// TestRateLimitSheds429 pins the token-bucket gate: past the burst, the
// server answers 429 with a Retry-After header, and the client
// surfaces it as a typed OverloadedError.
func TestRateLimitSheds429(t *testing.T) {
	ts, client := testServer(t, simd.Config{Rate: 1e-9, Burst: 1})

	if _, err := client.Verify(context.Background(), hammingReq(8)); err != nil {
		t.Fatalf("the burst token must admit the first request: %v", err)
	}
	_, err := client.Verify(context.Background(), hammingReq(8))
	var over *simd.OverloadedError
	if !errors.As(err, &over) {
		t.Fatalf("want OverloadedError, got %v", err)
	}
	if over.RetryAfter < time.Second {
		t.Fatalf("RetryAfter %s", over.RetryAfter)
	}

	// The raw reply carries the header CI's smoke test greps for.
	resp, err := ts.Client().Post(ts.URL+simd.PathVerify, "application/json",
		strings.NewReader(`{"workload":"hamming"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("status %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	st, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Rejected < 2 || st.Requests != 1 {
		t.Fatalf("stats after shedding: %+v", st)
	}
}

// TestQueueFullSheds429 pins the bounded-queue gate: with one worker
// and no queue, a request arriving while another executes is shed with
// 429 instead of waiting.
func TestQueueFullSheds429(t *testing.T) {
	_, client := testServer(t, simd.Config{Workers: 1, MaxQueue: -1}) // -1: queue of zero

	done := make(chan error, 1)
	go func() {
		_, err := client.Sweep(context.Background(), hammingReq(64).WithRounds(300))
		done <- err
	}()
	waitInFlight(t, client, 1)

	_, err := client.Verify(context.Background(), hammingReq(8))
	var over *simd.OverloadedError
	if !errors.As(err, &over) {
		t.Fatalf("want OverloadedError while the only ticket is held, got %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("the long request must still finish: %v", err)
	}
	// Capacity is back.
	if _, err := client.Verify(context.Background(), hammingReq(8)); err != nil {
		t.Fatalf("after drain: %v", err)
	}
}

// TestSessionInFlightSheds429 pins the per-session gate: one slot,
// several contenders on the same key — at least one is shed with 429
// and at least one is served.
func TestSessionInFlightSheds429(t *testing.T) {
	const contenders = 8
	_, client := testServer(t, simd.Config{
		Workers:         contenders + 1,
		SessionInFlight: 1,
	})
	if _, err := client.Verify(context.Background(), hammingReq(8)); err != nil {
		t.Fatal(err) // warm the pool so contenders skip prepare
	}

	var wg sync.WaitGroup
	errs := make([]error, contenders)
	for i := 0; i < contenders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = client.Sweep(context.Background(), hammingReq(8).WithRounds(20))
		}(i)
	}
	wg.Wait()

	served, shed := 0, 0
	for i, err := range errs {
		var over *simd.OverloadedError
		switch {
		case err == nil:
			served++
		case errors.As(err, &over):
			shed++
		default:
			t.Fatalf("contender %d: unexpected error %v", i, err)
		}
	}
	if served == 0 || shed == 0 {
		t.Fatalf("served=%d shed=%d: want both admission and shedding on a single-slot session", served, shed)
	}
}

// TestPoolEvictionReprepares pins the LRU: with room for one session, a
// second key evicts the first, and revisiting the first key re-prepares
// from scratch (a miss with fresh elaboration counters, not a hit).
func TestPoolEvictionReprepares(t *testing.T) {
	_, client := testServer(t, simd.Config{MaxSessions: 1})

	first, err := client.Verify(context.Background(), hammingReq(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Verify(context.Background(), hammingReq(16)); err != nil {
		t.Fatal(err)
	}
	again, err := client.Verify(context.Background(), hammingReq(8))
	if err != nil {
		t.Fatal(err)
	}
	if again.Summary.PoolHit {
		t.Fatal("evicted key must be a miss")
	}
	if again.Summary.Elaborations != first.Summary.Elaborations || again.Summary.Resets != 0 {
		t.Fatalf("re-prepared session counters: %+v (first: %+v)", again.Summary, first.Summary)
	}

	st, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Sessions != 1 || st.PoolMisses != 3 || st.PoolHits != 0 || st.Evictions != 2 {
		t.Fatalf("pool stats: %+v", st)
	}
}

// TestGracefulDrainFinishesInFlight pins shutdown semantics: Shutdown
// on the HTTP server lets a streaming request run to its summary record
// instead of cutting the connection.
func TestGracefulDrainFinishesInFlight(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: simd.New(simd.Config{})}
	serveDone := make(chan error, 1)
	go func() { serveDone <- hs.Serve(ln) }()
	client := simd.NewClient("http://"+ln.Addr().String(), nil)

	reqDone := make(chan struct {
		res *simd.Result
		err error
	}, 1)
	go func() {
		res, err := client.Sweep(context.Background(), hammingReq(64).WithRounds(150))
		reqDone <- struct {
			res *simd.Result
			err error
		}{res, err}
	}()
	waitInFlight(t, client, 1)

	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		t.Fatalf("drain did not finish the in-flight request: %v", err)
	}
	got := <-reqDone
	if got.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", got.err)
	}
	if got.res.Summary.Rounds != 150 || !got.res.Summary.Passed {
		t.Fatalf("drained request summary: %+v", got.res.Summary)
	}
	if err := <-serveDone; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("Serve returned %v", err)
	}
}

// TestBenchKindSkipsVerify: /v1/bench rounds carry throughput but no
// verdict.
func TestBenchKindSkipsVerify(t *testing.T) {
	_, client := testServer(t, simd.Config{})
	res, err := client.Bench(context.Background(), hammingReq(8).WithRounds(3))
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Summary
	if sum.Kind != api.KindBench || sum.Verified || sum.Passed {
		t.Fatalf("bench summary: %+v", sum)
	}
	if sum.Rounds != 3 || sum.Events == 0 || sum.EventsPerSec <= 0 {
		t.Fatalf("bench throughput: %+v", sum)
	}
}

// TestInlineSpecAndParamOverride: the request Workload field speaks the
// CLI spec syntax, and explicit Params win over inline values — both
// spellings land on the same pooled session.
func TestInlineSpecAndParamOverride(t *testing.T) {
	_, client := testServer(t, simd.Config{})
	a, err := client.Verify(context.Background(), api.Request{Workload: "hamming,words=16"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := client.Verify(context.Background(), api.Request{
		Workload: "hamming,words=8",
		Params:   map[string]int{"words": 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary.Params != b.Summary.Params {
		t.Fatalf("canonical params differ: %q vs %q", a.Summary.Params, b.Summary.Params)
	}
	if !b.Summary.PoolHit {
		t.Fatal("override spelling must land on the pooled session")
	}
}

// TestRequestValidation walks the 4xx surface.
func TestRequestValidation(t *testing.T) {
	ts, _ := testServer(t, simd.Config{})
	post := func(path, body string) *http.Response {
		t.Helper()
		resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	cases := []struct {
		path, body string
		want       int
	}{
		{simd.PathVerify, `{`, http.StatusBadRequest},
		{simd.PathVerify, `{"workload":""}`, http.StatusBadRequest},
		{simd.PathVerify, `{"workload":"no-such-family"}`, http.StatusNotFound},
		{simd.PathVerify, `{"workload":"hamming","params":{"bogus":1}}`, http.StatusBadRequest},
		{simd.PathVerify, `{"workload":"hamming","params":{"words":-5}}`, http.StatusBadRequest},
		{simd.PathVerify, `{"workload":"hamming","backend":"no-such-backend"}`, http.StatusBadRequest},
		{simd.PathVerify, `{"workload":"hamming","kind":"sweep"}`, http.StatusBadRequest},
		{simd.PathVerify, `{"workload":"hamming","rounds":100000}`, http.StatusBadRequest},
		{simd.PathSweep, `{"workload":"hamming","schema_version":99}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		if resp := post(c.path, c.body); resp.StatusCode != c.want {
			t.Errorf("POST %s %s: status %d, want %d", c.path, c.body, resp.StatusCode, c.want)
		}
	}
	resp, err := ts.Client().Get(ts.URL + simd.PathVerify)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET run endpoint: status %d", resp.StatusCode)
	}
	if resp, err := ts.Client().Get(ts.URL + simd.PathHealth); err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %v %v", err, resp)
	} else {
		resp.Body.Close()
	}
}

// TestStatszShape: /statsz decodes into the versioned api.ServerStats
// with sane lifecycle counters even on an idle server.
func TestStatszShape(t *testing.T) {
	_, client := testServer(t, simd.Config{MaxSessions: 3})
	st, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.SchemaVersion != api.SchemaVersion || st.UptimeNS <= 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.MaxSessions != 3 || st.Sessions != 0 || st.Requests != 0 {
		t.Fatalf("idle stats: %+v", st)
	}
	if _, err := client.Verify(context.Background(), hammingReq(8)); err != nil {
		t.Fatal(err)
	}
	st, err = client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 1 || st.Sessions != 1 || st.Rounds != 1 || st.Events == 0 || st.Configs == 0 {
		t.Fatalf("post-request stats: %+v", st)
	}
}

// TestBackendsEndpoint: GET /v1/backends serves the full descriptor
// catalog with the server's effective default named, and the /statsz
// payload carries the same catalog.
func TestBackendsEndpoint(t *testing.T) {
	_, client := testServer(t, simd.Config{Backend: "heapref"})
	br, err := client.Backends(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if br.SchemaVersion != api.SchemaVersion {
		t.Fatalf("backends schema version = %d", br.SchemaVersion)
	}
	if br.Default != "heapref" {
		t.Fatalf("default backend = %q, want heapref", br.Default)
	}
	byName := map[string]api.BackendInfo{}
	for _, b := range br.Backends {
		if b.Name == "" || b.Kind == "" || b.Desc == "" {
			t.Fatalf("incomplete descriptor: %+v", b)
		}
		byName[b.Name] = b
	}
	if got := byName["twolevel"]; got.Kind != "event" || got.SupportsGang {
		t.Fatalf("twolevel descriptor: %+v", got)
	}
	if got := byName["compiled"]; got.Kind != "cycle" || !got.SupportsGang {
		t.Fatalf("compiled descriptor: %+v", got)
	}
	st, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Backend != "heapref" || len(st.Backends) != len(br.Backends) {
		t.Fatalf("statsz backend catalog: backend=%q backends=%d want %d",
			st.Backend, len(st.Backends), len(br.Backends))
	}
}
