package simd_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/scenario"
	"repro/internal/simd"
)

// exampleScenario decodes an embedded example spec into the wire shape
// a client would post.
func exampleScenario(t *testing.T, name string) api.ScenarioSpec {
	t.Helper()
	b, ok := scenario.ExampleSpec(name)
	if !ok {
		t.Fatalf("no embedded spec %s", name)
	}
	var spec api.ScenarioSpec
	if err := json.Unmarshal(b, &spec); err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestScenarioEndpointStreamsTrace pins the wire shape: POSTing a spec
// answers the NDJSON trace — header first, one record per case, summary
// last — and the client decodes it into a green scenario.Trace.
func TestScenarioEndpointStreamsTrace(t *testing.T) {
	ts, client := testServer(t, simd.Config{})

	// Raw HTTP first: the bytes on the wire.
	b, ok := scenario.ExampleSpec("mixed-poisson.json")
	if !ok {
		t.Fatal("no embedded mixed-poisson spec")
	}
	resp, err := ts.Client().Post(ts.URL+simd.PathScenario, "application/json", strings.NewReader(string(b)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q", ct)
	}
	tr, err := scenario.ReadTrace(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Header.Scenario == "" || tr.Header.Backend == "" {
		t.Fatalf("header: %+v", tr.Header)
	}
	if len(tr.Cases) != tr.Header.Cases {
		t.Fatalf("%d case records, header says %d", len(tr.Cases), tr.Header.Cases)
	}
	if tr.Summary == nil || !tr.Summary.OK {
		t.Fatalf("summary: %+v", tr.Summary)
	}

	// Same spec through the client.
	tr2, err := client.Scenario(context.Background(), exampleScenario(t, "mixed-poisson.json"))
	if err != nil {
		t.Fatal(err)
	}
	if diffs := scenario.CompareTraces(tr.Cases, tr2.Cases, true); len(diffs) != 0 {
		t.Fatalf("two runs of the same spec diverged: %v", diffs)
	}
}

// TestScenarioEndpointTraceReplaysLocally closes the loop the ISSUE
// asks for: a trace recorded by the service replays bit-identically in
// process, faults and all.
func TestScenarioEndpointTraceReplaysLocally(t *testing.T) {
	_, client := testServer(t, simd.Config{})
	tr, err := client.Scenario(context.Background(), exampleScenario(t, "erasure-recover.json"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Summary.FaultsInjected == 0 || tr.Summary.Recovered == 0 {
		t.Fatalf("erasure-recover campaign injected nothing: %+v", tr.Summary)
	}
	res, err := scenario.Replay(context.Background(), tr, scenario.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if diffs := scenario.CompareTraces(tr.Cases, res.Cases, true); len(diffs) != 0 {
		t.Fatalf("local replay diverged from the service trace: %v", diffs)
	}
}

// TestScenarioEndpointValidation walks the 4xx surface: spec errors are
// full-status replies, never truncated streams.
func TestScenarioEndpointValidation(t *testing.T) {
	ts, _ := testServer(t, simd.Config{MaxScenarioCases: 4})
	post := func(body string) *http.Response {
		t.Helper()
		resp, err := ts.Client().Post(ts.URL+simd.PathScenario, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	valid := func(cases int, extra string) string {
		return fmt.Sprintf(`{"name":"t","seed":1,"cases":%d,"mix":[{"family":"hamming","weight":1,"params":{"words":8}}]%s}`,
			cases, extra)
	}
	cases := []struct {
		body string
		want int
	}{
		{`{`, http.StatusBadRequest},
		{`{"name":"t","cases":2,"mix":[]}`, http.StatusBadRequest},
		{`{"name":"t","cases":2,"mix":[{"family":"no-such-family","weight":1}]}`, http.StatusBadRequest},
		{`{"name":"t","schema_version":99,"cases":2,"mix":[{"family":"hamming","weight":1}]}`, http.StatusBadRequest},
		{valid(10, ""), http.StatusBadRequest}, // over the MaxScenarioCases cap
		{valid(2, `,"backend":"no-such-backend"`), http.StatusBadRequest},
		{valid(2, ""), http.StatusOK},
	}
	for _, c := range cases {
		if resp := post(c.body); resp.StatusCode != c.want {
			t.Errorf("POST %s: status %d, want %d", c.body, resp.StatusCode, c.want)
		}
	}
	resp, err := ts.Client().Get(ts.URL + simd.PathScenario)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d", resp.StatusCode)
	}
}
