// Package simd serves the verification flow over HTTP: a
// simulation-as-a-service daemon that owns a pool of prepared designs
// (flow.Session) keyed by resolved (workload, params, backend) and
// admits concurrent verify, sweep and bench requests onto them under
// explicit backpressure.
//
// The request economics are the paper's amortization argument turned
// into a service: the first request for a workload instance pays
// compile + elaborate once, and every later request — from any client —
// reset-and-replays the pooled session's cached configuration graphs.
// The /statsz endpoint exposes the proof (pool hits, elaborations flat,
// resets climbing), and every response's trailing summary record
// carries the same counters per session.
//
// Admission control is three nested gates, each shedding with HTTP 429
// and a Retry-After header instead of queueing without bound:
//
//  1. a token bucket (Config.Rate/Burst) smoothing the request rate,
//  2. a bounded admission queue (Workers executing + MaxQueue waiting),
//  3. a per-session in-flight cap (Config.SessionInFlight), since
//     rounds on one prepared design serialize on its replay cache.
//
// Responses stream NDJSON: one api.RunRecord per executed configuration
// per round as it completes, then a single trailing summary record.
// All wire shapes live in internal/api — the same versioned schema the
// testsuite JSONL and bench JSON use.
package simd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/bench"
	"repro/internal/flow"
	"repro/internal/workloads"
)

// Config tunes a Server. The zero value is usable: every field has a
// serving default.
type Config struct {
	// Workers bounds concurrently executing requests (default: one per
	// CPU). Rounds on distinct sessions run in parallel up to this.
	Workers int
	// MaxQueue bounds requests admitted but waiting for a worker
	// (default: Workers). Beyond Workers+MaxQueue, requests shed with
	// 429 instead of queueing.
	MaxQueue int
	// MaxSessions caps the prepared-session pool; the least recently
	// used session is evicted past it (default 8).
	MaxSessions int
	// SessionInFlight caps concurrent requests per pooled session
	// (default: Workers). The session's rounds serialize on its replay
	// cache, so this bounds per-key queueing, not parallelism.
	SessionInFlight int
	// Rate is the token-bucket admission rate in requests/sec; 0 means
	// unlimited. Burst is the bucket depth (default: ceil(Rate), min 1).
	Rate  float64
	Burst int
	// Backend is the default simulator backend for requests that leave
	// it empty ("" = flow.DefaultBackend).
	Backend string
	// MaxRounds caps rounds per request (default 4096).
	MaxRounds int
	// MaxScenarioCases caps the case count of a posted scenario spec
	// (default 1024).
	MaxScenarioCases int
	// MaxShardCases caps the case range of one posted sweep shard
	// (default 4096). Campaigns bigger than that submit more shards, not
	// bigger ones.
	MaxShardCases int
	// Registry resolves workload names (default: workloads.Default).
	Registry *workloads.Registry
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	} else if c.MaxQueue == 0 {
		c.MaxQueue = c.Workers
	}
	if c.MaxSessions < 1 {
		c.MaxSessions = 8
	}
	if c.SessionInFlight < 1 {
		c.SessionInFlight = c.Workers
	}
	if c.Burst < 1 {
		c.Burst = int(math.Ceil(c.Rate))
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
	if c.MaxRounds < 1 {
		c.MaxRounds = 4096
	}
	if c.MaxScenarioCases < 1 {
		c.MaxScenarioCases = 1024
	}
	if c.MaxShardCases < 1 {
		c.MaxShardCases = 4096
	}
	if c.Backend == "" {
		c.Backend = flow.DefaultBackend
	}
	if c.Registry == nil {
		c.Registry = workloads.Default
	}
	return c
}

// Server is the simulation service. Create with New, mount via
// ServeHTTP (it implements http.Handler); graceful drain is the HTTP
// server's job (http.Server.Shutdown finishes in-flight streams —
// cmd/simd wires SIGTERM to it).
type Server struct {
	cfg     Config
	pool    *sessionPool
	tickets chan struct{} // admission: Workers+MaxQueue
	workers chan struct{} // execution: Workers
	bucket  *bucket
	ctr     *bench.Counters
	start   time.Time
	mux     *http.ServeMux

	requests atomic.Int64 // admitted
	rejected atomic.Int64 // shed with 429
	failed   atomic.Int64 // admitted but errored
	inFlight atomic.Int64

	sweepShards     atomic.Int64 // sharded-sweep jobs served to completion
	sweepShardCases atomic.Int64 // cases covered by those jobs
}

// New builds a server from the config.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		pool:    newSessionPool(cfg.MaxSessions),
		tickets: make(chan struct{}, cfg.Workers+cfg.MaxQueue),
		workers: make(chan struct{}, cfg.Workers),
		bucket:  newBucket(cfg.Rate, cfg.Burst),
		ctr:     bench.NewCounters(),
		start:   time.Now(),
		mux:     http.NewServeMux(),
	}
	s.mux.HandleFunc(PathVerify, s.handleRun(api.KindVerify))
	s.mux.HandleFunc(PathSweep, s.handleRun(api.KindSweep))
	s.mux.HandleFunc(PathBench, s.handleRun(api.KindBench))
	s.mux.HandleFunc(PathScenario, s.handleScenario)
	s.mux.HandleFunc(PathShardedSweep, s.handleShardedSweep)
	s.mux.HandleFunc(PathBackends, s.handleBackends)
	s.mux.HandleFunc(PathStats, s.handleStats)
	s.mux.HandleFunc(PathHealth, s.handleHealth)
	return s
}

// The server's routes. Each run endpoint accepts a POSTed api.Request
// and fixes its Kind; /v1/scenario accepts a POSTed api.ScenarioSpec
// and streams its trace records; /v1/backends returns an
// api.BackendsResponse; /statsz returns an api.ServerStats object.
const (
	PathVerify       = "/v1/verify"
	PathSweep        = "/v1/sweep"
	PathBench        = "/v1/bench"
	PathScenario     = "/v1/scenario"
	PathShardedSweep = "/v1/sweep/sharded"
	PathBackends     = "/v1/backends"
	PathStats        = "/statsz"
	PathHealth       = "/healthz"
)

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleRun(kind string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			http.Error(w, "POST an api.Request", http.StatusMethodNotAllowed)
			return
		}
		if retry, ok := s.bucket.take(); !ok {
			s.reject(w, retry, "rate limit exceeded")
			return
		}
		req, err := api.DecodeRequest(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if req.Kind != "" && req.Kind != kind {
			http.Error(w, fmt.Sprintf("simd: request kind %q does not match endpoint %q", req.Kind, kind), http.StatusBadRequest)
			return
		}
		req.Kind = kind
		if req.Rounds <= 0 {
			req.Rounds = 1
		}
		if req.Rounds > s.cfg.MaxRounds {
			http.Error(w, fmt.Sprintf("simd: %d rounds exceeds the per-request cap %d", req.Rounds, s.cfg.MaxRounds), http.StatusBadRequest)
			return
		}
		select {
		case s.tickets <- struct{}{}:
		default:
			s.reject(w, time.Second, "server at capacity")
			return
		}
		defer func() { <-s.tickets }()
		s.requests.Add(1)
		s.inFlight.Add(1)
		defer s.inFlight.Add(-1)
		s.serve(w, r, req)
	}
}

func (s *Server) reject(w http.ResponseWriter, retry time.Duration, msg string) {
	s.rejected.Add(1)
	secs := int(math.Ceil(retry.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	http.Error(w, "simd: "+msg, http.StatusTooManyRequests)
}

// serve executes one admitted request: resolve the session (pool hit or
// single-flight prepare), take a worker slot, run the rounds, stream
// NDJSON. The first round runs before any byte is written so admission
// failures (session busy) and execution errors still get proper status
// codes; from the second round on, errors land in the trailing summary
// record's error field.
func (s *Server) serve(w http.ResponseWriter, r *http.Request, req api.Request) {
	ctx := r.Context()
	sess, poolHit, status, err := s.session(ctx, req)
	if err != nil {
		s.failed.Add(1)
		http.Error(w, err.Error(), status)
		return
	}
	select {
	case s.workers <- struct{}{}:
	case <-ctx.Done():
		s.failed.Add(1)
		return // client gone while queued
	}
	defer func() { <-s.workers }()

	verify := req.Kind != api.KindBench
	round := func(first bool) (*flow.Outcome, error) {
		switch {
		case first && verify:
			return sess.TryRunContext(ctx)
		case first:
			return sess.TrySimulateContext(ctx)
		case verify:
			return sess.RunContext(ctx)
		default:
			return sess.SimulateContext(ctx)
		}
	}

	sum := api.RunRecord{
		SchemaVersion: api.SchemaVersion,
		Record:        api.RecordSummary,
		Kind:          req.Kind,
		Workload:      sess.Key().Workload,
		Params:        sess.Key().Params,
		Backend:       sess.Key().Backend,
		PoolHit:       poolHit,
		Passed:        true,
	}
	start := time.Now()
	var simWall time.Duration
	var enc *json.Encoder
	flusher, _ := w.(http.Flusher)

	for n := 1; n <= req.Rounds; n++ {
		out, err := round(n == 1)
		if err != nil {
			s.failed.Add(1)
			if enc == nil { // nothing written yet: full-status reply
				if errors.Is(err, flow.ErrSessionBusy) {
					s.rejected.Add(1)
					s.failed.Add(-1) // shed, not failed
					s.reject(w, time.Second, "session at its in-flight limit")
					return
				}
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			sum.Error = err.Error()
			break
		}
		if enc == nil {
			w.Header().Set("Content-Type", "application/x-ndjson")
			enc = json.NewEncoder(w)
		}
		for _, run := range out.Sim.Runs {
			enc.Encode(api.RunRecord{
				SchemaVersion: api.SchemaVersion,
				Record:        api.RecordConfig,
				Round:         n,
				Config:        run.ID,
				Cycles:        run.Cycles,
				Kernel:        run.Kernel,
				Completed:     run.Completed,
				Events:        run.Events,
				WallNS:        run.Wall.Nanoseconds(),
			})
		}
		if flusher != nil {
			flusher.Flush()
		}
		sum.Rounds++
		sum.Configs += uint64(len(out.Sim.Runs))
		sum.Events += out.Sim.Events
		simWall += out.Sim.SimWall
		s.ctr.ObserveRound(out.Sim.Events, uint64(len(out.Sim.Runs)))
		if out.Verdict != nil {
			sum.Verified = true
			if !out.Verdict.Passed {
				sum.Passed = false
				if sum.Mismatches == nil {
					sum.Mismatches = map[string]int{}
				}
				for name, ms := range out.Verdict.Mismatches {
					if len(ms) > 0 {
						sum.Mismatches[name] += len(ms)
					}
				}
			}
		}
	}
	sum.Passed = sum.Verified && sum.Passed
	sum.WallNS = time.Since(start).Nanoseconds()
	if secs := simWall.Seconds(); secs > 0 {
		sum.EventsPerSec = float64(sum.Events) / secs
		sum.ConfigsPerSec = float64(sum.Configs) / secs
	}
	st := sess.Stats()
	sum.Elaborations = st.Elaborations
	sum.Resets = st.Resets
	enc.Encode(sum)
}

// session resolves the request's workload selector into a pooled
// session, preparing one (single-flight) on a miss. The non-zero status
// classifies failures for the HTTP reply.
func (s *Server) session(ctx context.Context, req api.Request) (sess *flow.Session, poolHit bool, status int, err error) {
	name, vals, err := workloads.ParseSpec(req.Workload)
	if err != nil {
		return nil, false, http.StatusBadRequest, err
	}
	for k, v := range req.Params { // explicit params override inline ones
		vals[k] = v
	}
	wl, err := s.cfg.Registry.Lookup(name)
	if err != nil {
		return nil, false, http.StatusNotFound, err
	}
	resolved, err := workloads.Resolve(wl, vals)
	if err != nil {
		return nil, false, http.StatusBadRequest, err
	}
	backend := req.Backend
	if backend == "" {
		backend = s.cfg.Backend
	}
	if _, err := flow.LookupBackend(backend); err != nil {
		return nil, false, http.StatusBadRequest, err
	}
	key := flow.PoolKey{Workload: name, Params: resolved.String(), Backend: backend}
	e, owner := s.pool.get(key)
	if owner {
		sess, err := s.prepare(ctx, wl, resolved, key)
		s.pool.publish(e, sess, err)
	} else {
		select {
		case <-e.ready:
		case <-ctx.Done():
			return nil, false, http.StatusServiceUnavailable, ctx.Err()
		}
	}
	if e.err != nil {
		return nil, false, http.StatusInternalServerError, e.err
	}
	return e.sess, !owner, 0, nil
}

// prepare pays the one-time cost of a pool miss: materialize the
// workload, compile and elaborate under the requesting context, and
// wrap the detached design in an admission-capped session.
func (s *Server) prepare(ctx context.Context, wl workloads.Workload, v workloads.Values, key flow.PoolKey) (*flow.Session, error) {
	c, err := workloads.BuildWorkload(wl, v)
	if err != nil {
		return nil, err
	}
	p, err := flow.New(flow.WithBackend(key.Backend))
	if err != nil {
		return nil, err
	}
	d, err := p.PrepareContext(ctx, flow.Source{
		Name: key.String(), Text: c.Source, Func: c.Func,
		ArraySizes: c.ArraySizes, ScalarArgs: c.ScalarArgs,
		Inputs: c.Inputs, Expected: c.Expected,
	})
	if err != nil {
		return nil, err
	}
	return flow.NewSession(key, d, s.cfg.SessionInFlight), nil
}

// Stats snapshots the server's counters — the /statsz payload.
func (s *Server) Stats() api.ServerStats {
	snap := s.ctr.Snapshot()
	hits, misses, evictions := s.pool.counters()
	st := api.ServerStats{
		SchemaVersion:   api.SchemaVersion,
		UptimeNS:        time.Since(s.start).Nanoseconds(),
		Requests:        s.requests.Load(),
		Rejected:        s.rejected.Load(),
		Failed:          s.failed.Load(),
		InFlight:        s.inFlight.Load(),
		Sessions:        s.pool.size(),
		MaxSessions:     s.cfg.MaxSessions,
		PoolHits:        hits,
		PoolMisses:      misses,
		Evictions:       evictions,
		Events:          snap.Events,
		Configs:         snap.Configs,
		Rounds:          snap.Rounds,
		EventsPerSec:    snap.EventsPerSec,
		ConfigsPerSec:   snap.ConfigsPerSec,
		AllocsPerConfig: snap.AllocsPerConfig,
	}
	st.Backend = s.cfg.Backend
	st.Backends = backendInfos()
	st.SweepShards = s.sweepShards.Load()
	st.SweepShardCases = s.sweepShardCases.Load()
	for _, sess := range s.pool.sessions() {
		ss := sess.Stats()
		st.Elaborations += ss.Elaborations
		st.Resets += ss.Resets
		st.SessionsDetail = append(st.SessionsDetail, api.SessionStats{
			Key:          ss.Key,
			Runs:         uint64(ss.Runs),
			InFlight:     ss.InFlight,
			Elaborations: ss.Elaborations,
			Resets:       ss.Resets,
		})
	}
	return st
}

// backendInfos renders the flow registry as wire descriptors, in
// Backends() order (default first).
func backendInfos() []api.BackendInfo {
	infos := flow.Backends()
	out := make([]api.BackendInfo, len(infos))
	for i, bi := range infos {
		out[i] = api.BackendInfo{
			Name:         bi.Name,
			Kind:         string(bi.Kind),
			Desc:         bi.Desc,
			SupportsGang: bi.SupportsGang,
		}
	}
	return out
}

func (s *Server) handleBackends(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(api.BackendsResponse{
		SchemaVersion: api.SchemaVersion,
		Default:       s.cfg.Backend,
		Backends:      backendInfos(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Stats())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// bucket is a refill-on-demand token bucket: rate tokens/sec up to
// burst. A zero rate admits everything.
type bucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newBucket(rate float64, burst int) *bucket {
	return &bucket{rate: rate, burst: float64(burst), tokens: float64(burst), last: time.Now()}
}

// take consumes one token. When empty it reports how long until the
// next token accrues — the Retry-After hint.
func (b *bucket) take() (retry time.Duration, ok bool) {
	if b.rate <= 0 {
		return 0, true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	return time.Duration((1 - b.tokens) / b.rate * float64(time.Second)), false
}
