package simd_test

import (
	"bytes"
	"context"
	"net/http"
	"os"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/scenario"
	"repro/internal/simd"
	"repro/internal/sweep"
)

func shardScenarioSpec(seed int64, cases int) *api.ScenarioSpec {
	return &api.ScenarioSpec{
		Name:  "remote-camp",
		Seed:  seed,
		Cases: cases,
		Mix: []api.MixEntry{
			{Family: "hamming", Params: map[string]api.Dist{"words": {Choice: []int{4, 8}}}},
		},
	}
}

// TestShardedSweepEndpointStreamsShard pins the wire shape: the
// response bytes are exactly what a local worker writes to a shard
// file — header, case lines, footer — and pass shard validation.
func TestShardedSweepEndpointStreamsShard(t *testing.T) {
	_, client := testServer(t, simd.Config{Workers: 2})
	spec := sweep.WrapScenario(shardScenarioSpec(5, 4), 2)
	c, err := sweep.Load(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	sh := c.Shards()[1]

	var remote bytes.Buffer
	if err := client.ShardedSweep(context.Background(), api.SweepRequest{Spec: *c.Spec, Shard: 1}, &remote); err != nil {
		t.Fatal(err)
	}
	var local bytes.Buffer
	if _, err := sweep.ExecuteShard(context.Background(), c, sh, &local, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(remote.Bytes(), local.Bytes()) {
		t.Fatalf("remote shard differs from local execution:\n%s\nvs\n%s", remote.Bytes(), local.Bytes())
	}

	dir := t.TempDir()
	path := sweep.ShardPath(dir, 1)
	if err := os.WriteFile(path, remote.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	info, err := sweep.InspectShard(path, c.ShardHeader(sh))
	if err != nil {
		t.Fatal(err)
	}
	if info.State != sweep.StateValid {
		t.Fatalf("remote shard classified %s (%s), want valid", info.State, info.Reason)
	}
}

// TestRemoteWorkerCampaign runs the whole coordinator against remote
// simd workers and pins the merged bytes to the single-process run —
// the distributed path meets the same determinism bar as the local
// ones.
func TestRemoteWorkerCampaign(t *testing.T) {
	_, client := testServer(t, simd.Config{Workers: 2})
	spec := shardScenarioSpec(6, 6)
	sc, err := scenario.Load(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if _, err := sc.Run(context.Background(), scenario.Options{}, &want); err != nil {
		t.Fatal(err)
	}

	c, err := sweep.Load(sweep.WrapScenario(spec, 3), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sweep.Run(context.Background(), c, sweep.Options{
		Workers: 2,
		OutDir:  t.TempDir(),
		Worker:  &simd.ShardWorker{Clients: []*simd.Client{client}},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(res.Out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatal("remote-worker campaign differs from single-process run")
	}
	for _, st := range res.Shards {
		if st.Worker != "remote" {
			t.Errorf("shard %d worker tag %q, want remote", st.Shard, st.Worker)
		}
	}
}

// TestShardedSweepValidation keeps spec and shard errors on the 4xx
// surface.
func TestShardedSweepValidation(t *testing.T) {
	ts, client := testServer(t, simd.Config{Workers: 1, MaxShardCases: 2})
	good := sweep.WrapScenario(shardScenarioSpec(7, 4), 1) // one 4-case shard > cap 2

	post := func(body string) int {
		t.Helper()
		resp, err := ts.Client().Post(ts.URL+simd.PathShardedSweep, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := post(`{`); code != http.StatusBadRequest {
		t.Errorf("malformed body: %d, want 400", code)
	}
	if code := post(`{"spec":{"name":"x"},"shard":0}`); code != http.StatusBadRequest {
		t.Errorf("modeless spec: %d, want 400", code)
	}
	if code := post(`{"spec":{"name":"x","grid":{"workloads":["nope"],"seed_to":1}},"shard":0}`); code != http.StatusBadRequest {
		t.Errorf("unknown family: %d, want 400", code)
	}

	// Shard index outside the layout.
	c, err := sweep.Load(sweep.WrapScenario(shardScenarioSpec(7, 4), 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := client.ShardedSweep(context.Background(), api.SweepRequest{Spec: *c.Spec, Shard: 9}, &buf); err == nil {
		t.Error("out-of-layout shard index accepted")
	}

	// Shard bigger than the server's cap.
	cg, err := sweep.Load(good, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = client.ShardedSweep(context.Background(), api.SweepRequest{Spec: *cg.Spec, Shard: 0}, &buf)
	if err == nil || !strings.Contains(err.Error(), "cap") {
		t.Errorf("oversized shard: %v, want per-shard cap error", err)
	}

	// GET is not a shard submission.
	resp, err := ts.Client().Get(ts.URL + simd.PathShardedSweep)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: %d, want 405", resp.StatusCode)
	}
}
