package simd_test

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/scenario"
	"repro/internal/simd"
	"repro/internal/sweep"
)

func shardScenarioSpec(seed int64, cases int) *api.ScenarioSpec {
	return &api.ScenarioSpec{
		Name:  "remote-camp",
		Seed:  seed,
		Cases: cases,
		Mix: []api.MixEntry{
			{Family: "hamming", Params: map[string]api.Dist{"words": {Choice: []int{4, 8}}}},
		},
	}
}

// TestShardedSweepEndpointStreamsShard pins the wire shape: the
// response bytes are exactly what a local worker writes to a shard
// file — header, case lines, footer — and pass shard validation.
func TestShardedSweepEndpointStreamsShard(t *testing.T) {
	_, client := testServer(t, simd.Config{Workers: 2})
	spec := sweep.WrapScenario(shardScenarioSpec(5, 4), 2)
	c, err := sweep.Load(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	sh := c.Shards()[1]

	var remote bytes.Buffer
	if err := client.ShardedSweep(context.Background(), api.SweepRequest{Spec: *c.Spec, Shard: 1}, &remote); err != nil {
		t.Fatal(err)
	}
	var local bytes.Buffer
	if _, err := sweep.ExecuteShard(context.Background(), c, sh, &local, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(remote.Bytes(), local.Bytes()) {
		t.Fatalf("remote shard differs from local execution:\n%s\nvs\n%s", remote.Bytes(), local.Bytes())
	}

	dir := t.TempDir()
	path := sweep.ShardPath(dir, 1)
	if err := os.WriteFile(path, remote.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	info, err := sweep.InspectShard(path, c.ShardHeader(sh))
	if err != nil {
		t.Fatal(err)
	}
	if info.State != sweep.StateValid {
		t.Fatalf("remote shard classified %s (%s), want valid", info.State, info.Reason)
	}
}

// TestRemoteWorkerCampaign runs the whole coordinator against remote
// simd workers and pins the merged bytes to the single-process run —
// the distributed path meets the same determinism bar as the local
// ones.
func TestRemoteWorkerCampaign(t *testing.T) {
	_, client := testServer(t, simd.Config{Workers: 2})
	spec := shardScenarioSpec(6, 6)
	sc, err := scenario.Load(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if _, err := sc.Run(context.Background(), scenario.Options{}, &want); err != nil {
		t.Fatal(err)
	}

	c, err := sweep.Load(sweep.WrapScenario(spec, 3), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sweep.Run(context.Background(), c, sweep.Options{
		Workers: 2,
		OutDir:  t.TempDir(),
		Worker:  &simd.ShardWorker{Clients: []*simd.Client{client}},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(res.Out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatal("remote-worker campaign differs from single-process run")
	}
	for _, st := range res.Shards {
		if st.Worker != "remote" {
			t.Errorf("shard %d worker tag %q, want remote", st.Shard, st.Worker)
		}
	}
}

// TestShardedSweepValidation keeps spec and shard errors on the 4xx
// surface.
func TestShardedSweepValidation(t *testing.T) {
	ts, client := testServer(t, simd.Config{Workers: 1, MaxShardCases: 2})
	good := sweep.WrapScenario(shardScenarioSpec(7, 4), 1) // one 4-case shard > cap 2

	post := func(body string) int {
		t.Helper()
		resp, err := ts.Client().Post(ts.URL+simd.PathShardedSweep, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := post(`{`); code != http.StatusBadRequest {
		t.Errorf("malformed body: %d, want 400", code)
	}
	if code := post(`{"spec":{"name":"x"},"shard":0}`); code != http.StatusBadRequest {
		t.Errorf("modeless spec: %d, want 400", code)
	}
	if code := post(`{"spec":{"name":"x","grid":{"workloads":["nope"],"seed_to":1}},"shard":0}`); code != http.StatusBadRequest {
		t.Errorf("unknown family: %d, want 400", code)
	}

	// Shard index outside the layout.
	c, err := sweep.Load(sweep.WrapScenario(shardScenarioSpec(7, 4), 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := client.ShardedSweep(context.Background(), api.SweepRequest{Spec: *c.Spec, Shard: 9}, &buf); err == nil {
		t.Error("out-of-layout shard index accepted")
	}

	// Shard bigger than the server's cap.
	cg, err := sweep.Load(good, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = client.ShardedSweep(context.Background(), api.SweepRequest{Spec: *cg.Spec, Shard: 0}, &buf)
	if err == nil || !strings.Contains(err.Error(), "cap") {
		t.Errorf("oversized shard: %v, want per-shard cap error", err)
	}

	// GET is not a shard submission.
	resp, err := ts.Client().Get(ts.URL + simd.PathShardedSweep)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: %d, want 405", resp.StatusCode)
	}
}

// TestRemoteErrorClassification pins the transport-vs-4xx contract: a
// 400-class spec rejection is permanent — retrying on another server
// cannot help and must not burn the shard's retry budget — while a
// refused connection is the endpoint's fault and requeues for free.
func TestRemoteErrorClassification(t *testing.T) {
	// A shard over the server's per-shard cap draws an HTTP 400.
	_, capped := testServer(t, simd.Config{Workers: 1, MaxShardCases: 2})
	c, err := sweep.Load(sweep.WrapScenario(shardScenarioSpec(11, 4), 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	w := &simd.ShardWorker{Clients: []*simd.Client{capped}}
	err = w.RunShard(context.Background(), c, c.Shards()[0], sweep.ShardPath(dir, 0))
	if !sweep.IsPermanent(err) {
		t.Errorf("HTTP 400 classified %v, want permanent", err)
	}
	if sweep.IsEndpointFault(err) {
		t.Errorf("HTTP 400 also classified as endpoint fault: %v", err)
	}
	var se *simd.StatusError
	if !errors.As(err, &se) || se.Status != http.StatusBadRequest {
		t.Errorf("status not preserved through classification: %v", err)
	}

	// A connection nobody answers is the endpoint's problem.
	dead := &simd.ShardWorker{Clients: []*simd.Client{simd.NewClient("http://127.0.0.1:1", nil)}}
	err = dead.RunShard(context.Background(), c, c.Shards()[0], sweep.ShardPath(dir, 0))
	if !sweep.IsEndpointFault(err) {
		t.Errorf("refused connection classified %v, want endpoint fault", err)
	}
	if sweep.IsPermanent(err) {
		t.Errorf("refused connection also classified as permanent: %v", err)
	}

	// End to end: the coordinator fails the shard on the first attempt
	// with the whole retry budget unspent.
	res, err := sweep.Run(context.Background(), c, sweep.Options{
		OutDir:      t.TempDir(),
		Workers:     1,
		Retries:     3,
		MaxFailures: 1,
		Worker:      w,
	})
	if err == nil || !strings.Contains(err.Error(), "resume") {
		t.Fatalf("capped campaign: err=%v, want incomplete-pass error", err)
	}
	if got := res.Shards[0].Attempts; got != 1 {
		t.Errorf("attempts=%d, want 1: a 400 must not be retried", got)
	}
	if res.Stats.Retried != 0 {
		t.Errorf("retried=%d, want 0", res.Stats.Retried)
	}
}

// TestFleetRoutesAroundDeadRemote runs a two-server fleet where one
// endpoint is unreachable: the campaign completes on the live server,
// merges byte-identically, and the dead endpoint costs requeues —
// never shard retries.
func TestFleetRoutesAroundDeadRemote(t *testing.T) {
	_, live := testServer(t, simd.Config{Workers: 2})
	spec := shardScenarioSpec(12, 6)
	sc, err := scenario.Load(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if _, err := sc.Run(context.Background(), scenario.Options{}, &want); err != nil {
		t.Fatal(err)
	}

	c, err := sweep.Load(sweep.WrapScenario(spec, 3), nil)
	if err != nil {
		t.Fatal(err)
	}
	fleet := &simd.ShardWorker{Clients: []*simd.Client{live, simd.NewClient("http://127.0.0.1:1", nil)}}
	res, err := sweep.Run(context.Background(), c, sweep.Options{
		OutDir:          t.TempDir(),
		MaxFailures:     1,
		Endpoints:       fleet.Endpoints(1),
		BreakerCooldown: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(res.Out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatal("fleet merge with a dead endpoint differs from single-process run")
	}
	if res.Stats.Retried != 0 {
		t.Errorf("retried=%d, want 0: the dead server must not burn the retry budget", res.Stats.Retried)
	}
	if res.Stats.Requeues == 0 {
		t.Error("requeues=0, want the dead server's shards requeued on the live one")
	}
	var deadHealth *api.WorkerHealth
	for i := range res.Stats.WorkerHealth {
		if strings.Contains(res.Stats.WorkerHealth[i].Name, "127.0.0.1:1") {
			deadHealth = &res.Stats.WorkerHealth[i]
		}
	}
	if deadHealth == nil {
		t.Fatal("dead endpoint missing from worker health")
	}
	if deadHealth.Failures == 0 {
		t.Error("dead endpoint reports no failures")
	}
}

// TestServerCountsSweepShards pins the ShardWorker health signal on
// the server side: /statsz reports how many shards and cases the
// server has executed for coordinators.
func TestServerCountsSweepShards(t *testing.T) {
	_, client := testServer(t, simd.Config{Workers: 1})
	c, err := sweep.Load(sweep.WrapScenario(shardScenarioSpec(13, 4), 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for i := 0; i < 2; i++ {
		buf.Reset()
		if err := client.ShardedSweep(context.Background(), api.SweepRequest{Spec: *c.Spec, Shard: i}, &buf); err != nil {
			t.Fatal(err)
		}
	}
	st, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.SweepShards != 2 || st.SweepShardCases != 4 {
		t.Errorf("sweep counters = %d shards / %d cases, want 2/4", st.SweepShards, st.SweepShardCases)
	}
}
