package simd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"repro/internal/api"
	"repro/internal/sweep"
)

// handleShardedSweep serves POST /v1/sweep/sharded: the body is an
// api.SweepRequest naming a campaign spec and one shard index; the
// response streams that shard's records — shard header, one trace-case
// line per case, footer — exactly as a local worker would write them
// to a shard file. The server loads the spec against its own registry
// and the campaign's own backend resolution (not the server default):
// the digest in the shard header must match what the coordinator
// computed, or resume validation would classify every remote shard
// foreign.
//
// Spec, shard-index and size errors surface as 4xx before the first
// byte. Once streaming starts, an execution error simply ends the
// stream early: the client's shard file is left without a footer —
// torn — and the coordinator's retry/resume machinery takes over, the
// same contract a killed local worker has.
func (s *Server) handleShardedSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST an api.SweepRequest", http.StatusMethodNotAllowed)
		return
	}
	if retry, ok := s.bucket.take(); !ok {
		s.reject(w, retry, "rate limit exceeded")
		return
	}
	req, err := api.DecodeSweepRequest(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c, err := sweep.Load(&req.Spec, s.cfg.Registry)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sh, err := c.ShardAt(req.Shard)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if size := sh.To - sh.From; size > s.cfg.MaxShardCases {
		http.Error(w, fmt.Sprintf("simd: shard %d spans %d cases, exceeding the per-shard cap %d",
			sh.Index, size, s.cfg.MaxShardCases), http.StatusBadRequest)
		return
	}
	// Materialize the shard now: an invalid draw surfaces as a 400
	// instead of a torn stream. ExecuteShard re-materializes from the
	// same spec, so what it runs is exactly what was validated here.
	if _, err := c.MaterializeRange(sh.From, sh.To); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	select {
	case s.tickets <- struct{}{}:
	default:
		s.reject(w, time.Second, "server at capacity")
		return
	}
	defer func() { <-s.tickets }()
	s.requests.Add(1)
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)

	ctx := r.Context()
	select {
	case s.workers <- struct{}{}:
	case <-ctx.Done():
		s.failed.Add(1)
		return // client gone while queued
	}
	defer func() { <-s.workers }()

	w.Header().Set("Content-Type", "application/x-ndjson")
	fw := flushWriter{w: w}
	fw.f, _ = w.(http.Flusher)
	n, err := sweep.ExecuteShard(ctx, c, sh, fw, nil)
	if err != nil {
		s.failed.Add(1)
		return
	}
	s.sweepShards.Add(1)
	s.sweepShardCases.Add(int64(n))
}

// ShardedSweep posts one shard job and copies the streamed shard
// records to w verbatim — byte-preserving, because those bytes are
// what the shard footer's digest covers and what the merge emits.
func (c *Client) ShardedSweep(ctx context.Context, req api.SweepRequest, w io.Writer) error {
	if req.SchemaVersion == 0 {
		req.SchemaVersion = api.SchemaVersion
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+PathShardedSweep, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError(resp)
	}
	if _, err := io.Copy(w, resp.Body); err != nil {
		return fmt.Errorf("simd: sharded sweep stream: %w", err)
	}
	return nil
}

// ShardWorker executes sweep shards on remote simd servers — the
// coordinator's fan-out-to-the-fleet worker. Shards round-robin across
// the clients by shard index, so a multi-server campaign splits evenly
// without coordination. An interrupted stream leaves a torn shard file
// for the coordinator's retry/resume machinery, identical to a crashed
// local worker.
type ShardWorker struct {
	Clients []*Client
}

// Name implements sweep.Worker.
func (sw *ShardWorker) Name() string { return "remote" }

// RunShard implements sweep.Worker: stream the shard from the remote
// server straight into the shard file. Failures are classified for
// the dispatch layer: a 400/422 means the spec itself was rejected —
// permanent, no server will ever accept it — while transport errors,
// interrupted streams, overload sheds and 5xx are the endpoint's
// fault and requeue for a different server without charging the
// shard's retry budget.
func (sw *ShardWorker) RunShard(ctx context.Context, c *sweep.Campaign, sh sweep.Shard, path string) error {
	if len(sw.Clients) == 0 {
		return fmt.Errorf("simd: shard worker has no servers")
	}
	cl := sw.Clients[sh.Index%len(sw.Clients)]
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	req := api.SweepRequest{Spec: *c.Spec, Shard: sh.Index}
	err = cl.ShardedSweep(ctx, req, f)
	cerr := f.Close()
	if err != nil {
		return classifyRemoteError(err)
	}
	return cerr
}

// classifyRemoteError attributes a remote shard failure: permanent
// for spec rejections (4xx other than timeout/overload), endpoint
// fault for everything the server side or the network did wrong.
func classifyRemoteError(err error) error {
	var se *StatusError
	if errors.As(err, &se) {
		switch {
		case se.Status == http.StatusRequestTimeout:
			return sweep.EndpointFault(err)
		case se.Status >= 400 && se.Status < 500:
			return sweep.Permanent(err)
		default:
			return sweep.EndpointFault(err)
		}
	}
	// OverloadedError (429), transport failures, torn streams: the
	// endpoint's problem, not the shard's.
	return sweep.EndpointFault(err)
}

// Endpoints splits the worker into one independently health-tracked
// endpoint per server, each admitting slots concurrent shards — the
// fleet form the dispatch layer's circuit breakers and hedging want.
// A single multi-client ShardWorker used directly still works, but is
// tracked (and quarantined) as one unit.
func (sw *ShardWorker) Endpoints(slots int) []sweep.Endpoint {
	eps := make([]sweep.Endpoint, len(sw.Clients))
	for i, cl := range sw.Clients {
		eps[i] = sweep.Endpoint{
			Worker: &ShardWorker{Clients: []*Client{cl}},
			Name:   fmt.Sprintf("remote[%d] %s", i, cl.BaseURL()),
			Slots:  slots,
		}
	}
	return eps
}
