package simd

import (
	"container/list"
	"sync"

	"repro/internal/flow"
)

// poolEntry is one pool slot. Entries are created under the pool lock
// but prepared outside it (compile + elaborate can take a while):
// concurrent requests for the same key find the entry and wait on ready
// instead of preparing duplicates — single-flight preparation.
type poolEntry struct {
	key   flow.PoolKey
	ready chan struct{} // closed once sess/err are set
	sess  *flow.Session
	err   error
}

// sessionPool is an LRU map of prepared sessions keyed by the resolved
// (workload, params, backend) triple. Eviction only unlinks the entry —
// requests already running on an evicted session hold the *flow.Session
// pointer and finish normally; the next request for that key prepares a
// fresh session (and starts fresh replay counters).
type sessionPool struct {
	mu    sync.Mutex
	max   int
	lru   *list.List // front = most recently used; values are *poolEntry
	items map[flow.PoolKey]*list.Element

	hits, misses, evictions int64
}

func newSessionPool(max int) *sessionPool {
	if max < 1 {
		max = 1
	}
	return &sessionPool{max: max, lru: list.New(), items: map[flow.PoolKey]*list.Element{}}
}

// get returns the entry for key, creating one when absent. owner
// reports preparation duty: true means the caller must prepare the
// session and publish it (exactly one caller per entry); false means
// the caller waits on entry.ready.
func (p *sessionPool) get(key flow.PoolKey) (e *poolEntry, owner bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.items[key]; ok {
		p.lru.MoveToFront(el)
		p.hits++
		return el.Value.(*poolEntry), false
	}
	p.misses++
	e = &poolEntry{key: key, ready: make(chan struct{})}
	p.items[key] = p.lru.PushFront(e)
	for p.lru.Len() > p.max {
		back := p.lru.Back()
		evicted := back.Value.(*poolEntry)
		p.lru.Remove(back)
		delete(p.items, evicted.key)
		p.evictions++
	}
	return e, true
}

// publish installs the prepared session (or the preparation error) and
// wakes every waiter. Failed preparations leave the pool immediately so
// the next request for the key retries instead of replaying the error.
func (p *sessionPool) publish(e *poolEntry, sess *flow.Session, err error) {
	e.sess, e.err = sess, err
	close(e.ready)
	if err == nil {
		return
	}
	p.mu.Lock()
	if el, ok := p.items[e.key]; ok && el.Value.(*poolEntry) == e {
		p.lru.Remove(el)
		delete(p.items, e.key)
	}
	p.mu.Unlock()
}

// sessions snapshots every prepared session, most recently used first.
func (p *sessionPool) sessions() []*flow.Session {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*flow.Session, 0, p.lru.Len())
	for el := p.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*poolEntry)
		select {
		case <-e.ready:
			if e.err == nil {
				out = append(out, e.sess)
			}
		default: // still preparing
		}
	}
	return out
}

func (p *sessionPool) size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lru.Len()
}

func (p *sessionPool) counters() (hits, misses, evictions int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses, p.evictions
}
