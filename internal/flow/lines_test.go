package flow

import "testing"

func TestCountLines(t *testing.T) {
	if got := countLines("a\n\n  \nb\nc"); got != 3 {
		t.Fatalf("countLines=%d", got)
	}
	if got := countLines(""); got != 0 {
		t.Fatalf("countLines empty=%d", got)
	}
}
