package flow

import (
	"context"
	"errors"
	"sync"

	"repro/internal/hades"
)

// PoolKey identifies one poolable prepared session: a resolved workload
// instance on one simulator backend. Params must be the canonical
// resolved parameter string (workloads.Values.String() — sorted
// "k=v,k=v" with every default filled in), so two requests that spell
// the same instance differently share one session.
type PoolKey struct {
	Workload string
	Params   string
	Backend  string
}

// String renders the key as "workload(params)@backend", the form the
// server's /statsz endpoint and logs use.
func (k PoolKey) String() string {
	s := k.Workload
	if k.Params != "" {
		s += "(" + k.Params + ")"
	}
	if k.Backend != "" {
		s += "@" + k.Backend
	}
	return s
}

// ErrSessionBusy is returned by TryRun and TrySimulate when the session
// already has its maximum number of rounds in flight. Callers that
// would rather wait use RunContext, which queues on the slot.
var ErrSessionBusy = errors.New("flow: session at its in-flight limit")

// SessionStats is a point-in-time snapshot of one session's lifetime
// counters. Elaborations and Resets come from the underlying kernel
// simulators: a healthy pooled session elaborates once per
// configuration and then grows only Resets, which is exactly how a
// caller (or a test) proves the replay cache carried the rounds.
type SessionStats struct {
	Key          string
	Runs         int
	InFlight     int
	Elaborations uint64
	Resets       uint64
}

// Session wraps a PreparedDesign for shared, admission-controlled use:
// a bounded number of callers may have rounds in flight at once (the
// rounds themselves serialize on the design — the replay cache holds
// live simulators — so the bound caps queueing, not parallelism), and
// the session aggregates per-configuration kernel counters across
// rounds so a server can report cache effectiveness without replaying
// observer streams.
type Session struct {
	key   PoolKey
	d     *PreparedDesign
	slots chan struct{}

	mu     sync.Mutex
	runs   int
	kstats map[string]hades.Stats // last round's lifetime counters per configuration
}

// NewSession wraps a prepared design. maxInFlight bounds concurrent
// rounds (waiting included); values below 1 are treated as 1.
func NewSession(key PoolKey, d *PreparedDesign, maxInFlight int) *Session {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	return &Session{
		key:    key,
		d:      d,
		slots:  make(chan struct{}, maxInFlight),
		kstats: map[string]hades.Stats{},
	}
}

// Key returns the pool key the session was created under.
func (s *Session) Key() PoolKey { return s.key }

// Design exposes the underlying prepared design (for reseeding via
// SetSeed before admission-controlled rounds).
func (s *Session) Design() *PreparedDesign { return s.d }

// InFlight reports how many rounds currently hold a slot.
func (s *Session) InFlight() int { return len(s.slots) }

// Runs reports how many rounds the session has completed.
func (s *Session) Runs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runs
}

// Stats snapshots the session's lifetime counters. Elaborations and
// Resets sum the latest per-configuration kernel counters, so they
// reflect the whole session, not the last round.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SessionStats{Key: s.key.String(), Runs: s.runs, InFlight: len(s.slots)}
	for _, ks := range s.kstats {
		st.Elaborations += ks.Elaborations
		st.Resets += ks.Resets
	}
	return st
}

// RunContext performs one full verification round (reseed, simulate,
// verify), waiting for a slot if the session is at its in-flight limit.
// A nil ctx waits indefinitely; otherwise ctx bounds both the wait and
// the round itself.
func (s *Session) RunContext(ctx context.Context) (*Outcome, error) {
	if err := s.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.release()
	return s.round(ctx, true)
}

// TryRunContext is RunContext without queueing: when every slot is
// taken it fails fast with ErrSessionBusy, the signal a server turns
// into backpressure (HTTP 429) instead of unbounded buffering.
func (s *Session) TryRunContext(ctx context.Context) (*Outcome, error) {
	if !s.tryAcquire() {
		return nil, ErrSessionBusy
	}
	defer s.release()
	return s.round(ctx, true)
}

// SimulateContext is RunContext without the verify stage — the bench
// shape, where golden-model time would pollute the measurement. The
// Outcome's Verdict is always nil.
func (s *Session) SimulateContext(ctx context.Context) (*Outcome, error) {
	if err := s.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.release()
	return s.round(ctx, false)
}

// TrySimulateContext is SimulateContext with ErrSessionBusy instead of
// queueing.
func (s *Session) TrySimulateContext(ctx context.Context) (*Outcome, error) {
	if !s.tryAcquire() {
		return nil, ErrSessionBusy
	}
	defer s.release()
	return s.round(ctx, false)
}

func (s *Session) round(ctx context.Context, verify bool) (*Outcome, error) {
	var out *Outcome
	var err error
	if verify {
		out, err = s.d.RunContext(ctx)
	} else {
		var sim *SimResult
		sim, err = s.d.SimulateContext(ctx)
		if err == nil {
			out = &Outcome{Compiled: s.d.compiled, Sim: sim}
		}
	}
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.runs++
	if out.Sim != nil {
		// hades counters are lifetime values, so keeping the newest per
		// configuration (not adding) makes the sums session totals. Rounds
		// serialize on the design but record here in whatever order their
		// goroutines resume, so "newest" is the monotone counter sum, not
		// arrival order.
		for _, run := range out.Sim.Runs {
			old, seen := s.kstats[run.ID]
			if !seen || run.Stats.Elaborations+run.Stats.Resets > old.Elaborations+old.Resets {
				s.kstats[run.ID] = run.Stats
			}
		}
	}
	s.mu.Unlock()
	return out, nil
}

func (s *Session) tryAcquire() bool {
	select {
	case s.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

func (s *Session) acquire(ctx context.Context) error {
	if ctx == nil {
		s.slots <- struct{}{}
		return nil
	}
	select {
	case s.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Session) release() { <-s.slots }
