package flow_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/flow"
	"repro/internal/hades"
	"repro/internal/netlist"
	"repro/internal/rtg"
	"repro/internal/xmlspec"
)

const scaleSrc = `
void scale(int[] a, int[] b, int n) {
  for (int i = 0; i < n; i = i + 1) {
    b[i] = 3 * a[i] + i;
  }
}
`

func scaleSource() flow.Source {
	return flow.Source{
		Name: "scale", Text: scaleSrc, Func: "scale",
		ArraySizes: map[string]int{"a": 8, "b": 8},
		ScalarArgs: map[string]int64{"n": 8},
		Inputs:     map[string][]int64{"a": {5, -3, 12, 7, 0, 1, 2, 3}},
	}
}

func TestDefaultsResolved(t *testing.T) {
	p, err := flow.New()
	if err != nil {
		t.Fatal(err)
	}
	cfg := p.Config()
	if cfg.ClockPeriod != flow.DefaultClockPeriod {
		t.Errorf("ClockPeriod=%v want %v", cfg.ClockPeriod, flow.DefaultClockPeriod)
	}
	if cfg.MaxCycles != flow.DefaultMaxCycles {
		t.Errorf("MaxCycles=%v want %v", cfg.MaxCycles, flow.DefaultMaxCycles)
	}
	if cfg.MaxConfigs != flow.DefaultMaxConfigs {
		t.Errorf("MaxConfigs=%v want %v", cfg.MaxConfigs, flow.DefaultMaxConfigs)
	}
	if cfg.Backend != flow.DefaultBackend {
		t.Errorf("Backend=%q want %q", cfg.Backend, flow.DefaultBackend)
	}
}

// TestRTGObservesFlowDefaults: the controller a default pipeline builds
// carries exactly the flow defaults — rtg has no numeric defaults of
// its own (it rejects unset bounds; see rtg.TestOptionsRequireExplicitBounds).
func TestRTGObservesFlowDefaults(t *testing.T) {
	p, err := flow.New()
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.Compile(scaleSource())
	if err != nil {
		t.Fatal(err)
	}
	e, err := p.Elaborate(c)
	if err != nil {
		t.Fatal(err)
	}
	o := e.Controller.Options()
	if o.ClockPeriod != flow.DefaultClockPeriod || o.MaxCycles != flow.DefaultMaxCycles || o.MaxConfigs != flow.DefaultMaxConfigs {
		t.Fatalf("controller options %+v diverge from flow defaults", o)
	}
	// And rtg itself refuses to default.
	if _, err := rtg.NewController(c.Design, rtg.Options{}); err == nil {
		t.Fatal("rtg must reject unset bounds; flow is the single defaulter")
	}
}

func TestBackendRegistry(t *testing.T) {
	infos := flow.Backends()
	if len(infos) < 3 || infos[0].Name != "twolevel" {
		t.Fatalf("Backends()=%v, want twolevel first", infos)
	}
	byName := map[string]flow.BackendInfo{}
	for _, bi := range infos {
		if bi.Desc == "" || bi.Kind == "" {
			t.Fatalf("backend %q missing descriptor fields: %+v", bi.Name, bi)
		}
		byName[bi.Name] = bi
	}
	if bi, ok := byName["heapref"]; !ok || bi.Kind != flow.KindEvent || bi.SupportsGang {
		t.Fatalf("heapref descriptor wrong or missing: %+v", byName["heapref"])
	}
	if bi, ok := byName["compiled"]; !ok || bi.Kind != flow.KindCycle || !bi.SupportsGang {
		t.Fatalf("compiled descriptor wrong or missing: %+v", byName["compiled"])
	}
	if got, want := flow.BackendNames(), len(infos); len(got) != want || got[0] != "twolevel" {
		t.Fatalf("BackendNames()=%v diverges from Backends()=%v", got, infos)
	}
	// One unified unknown-name error on every lookup path: it names the
	// missing backend and carries the full sorted descriptor catalog.
	_, err := flow.LookupBackend("no-such-kernel")
	if err == nil || !strings.Contains(err.Error(), "unknown backend") {
		t.Fatalf("lookup of unknown backend: %v", err)
	}
	for _, bi := range infos {
		want := fmt.Sprintf("%s (%s): %s", bi.Name, bi.Kind, bi.Desc)
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("unknown-backend error %q missing catalog entry %q", err, want)
		}
	}
	if _, err2 := flow.New(flow.WithBackend("no-such-kernel")); err2 == nil || err2.Error() != err.Error() {
		t.Fatalf("pipeline lookup error %v diverges from LookupBackend error %v", err2, err)
	}
	if b, err := flow.LookupBackend(""); err != nil || b.Name != flow.DefaultBackend {
		t.Fatalf("empty name must resolve the default backend, got %v/%v", b.Name, err)
	}
	if err := flow.RegisterBackend(flow.Backend{Name: "twolevel", New: hades.NewSimulator}); err == nil {
		t.Fatal("duplicate registration must fail")
	}
	if err := flow.RegisterBackend(flow.Backend{Name: "incomplete"}); err == nil {
		t.Fatal("factory-less registration must fail")
	}
}

func TestCustomBackendSelectable(t *testing.T) {
	built := 0
	if err := flow.RegisterBackend(flow.Backend{
		Name: "test-counting",
		Desc: "two-level kernel that counts constructions",
		New: func() *hades.Simulator {
			built++
			return hades.NewSimulator()
		},
	}); err != nil {
		t.Fatal(err)
	}
	p, err := flow.New(flow.WithBackend("test-counting"))
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Run(scaleSource())
	if err != nil {
		t.Fatal(err)
	}
	if !out.OK() {
		t.Fatalf("run failed: %+v", out.Verdict)
	}
	if built == 0 {
		t.Fatal("custom backend factory never used")
	}
}

// TestRunVerifiesUnderEveryBackend is the acceptance check in miniature:
// the same case passes on every registered kernel, with identical event
// counts and identical memory contents (the kernels are required to be
// observationally equivalent).
func TestRunVerifiesUnderEveryBackend(t *testing.T) {
	var events []uint64
	for _, name := range []string{"twolevel", "heapref"} {
		p, err := flow.New(flow.WithBackend(name))
		if err != nil {
			t.Fatal(err)
		}
		out, err := p.Run(scaleSource())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !out.OK() {
			t.Fatalf("%s: failed: %v", name, out.Verdict.Failed())
		}
		for _, run := range out.Sim.Runs {
			if run.Kernel != name {
				t.Errorf("%s: configuration %s ran on kernel %q", name, run.ID, run.Kernel)
			}
		}
		events = append(events, out.Sim.Events)
	}
	if events[0] != events[1] {
		t.Fatalf("kernels diverge: %d vs %d events", events[0], events[1])
	}
}

func TestObserverStreamsStagesAndConfigs(t *testing.T) {
	type ev struct {
		kind  string
		stage flow.StageName
	}
	var seen []ev
	obs := &recordingObserver{
		begin: func(s flow.StageName, name string) { seen = append(seen, ev{"begin", s}) },
		end: func(s flow.StageName, name string, err error, wall time.Duration) {
			if err != nil {
				t.Errorf("stage %s errored: %v", s, err)
			}
			seen = append(seen, ev{"end", s})
		},
		elaborated: func(cfgID string, el *netlist.Elaboration) {
			if el.Sim == nil {
				t.Error("elaboration hook without live simulator")
			}
			seen = append(seen, ev{"cfg-up", ""})
		},
		done: func(run rtg.ConfigRun) {
			if run.Stats.Events == 0 || run.Kernel == "" {
				t.Errorf("config record missing kernel stats: %+v", run)
			}
			seen = append(seen, ev{"cfg-done", ""})
		},
	}
	p, err := flow.New(flow.WithObserver(obs))
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Run(scaleSource())
	if err != nil || !out.OK() {
		t.Fatalf("run: %v %+v", err, out)
	}
	var kinds []string
	for _, e := range seen {
		if e.kind == "begin" || e.kind == "end" {
			kinds = append(kinds, e.kind+":"+string(e.stage))
		} else {
			kinds = append(kinds, e.kind)
		}
	}
	want := []string{
		"begin:compile", "end:compile",
		"begin:elaborate", "end:elaborate",
		"begin:simulate", "cfg-up", "cfg-done", "end:simulate",
		"begin:verify", "end:verify",
	}
	if strings.Join(kinds, " ") != strings.Join(want, " ") {
		t.Fatalf("observer sequence\n got %v\nwant %v", kinds, want)
	}
}

type recordingObserver struct {
	flow.BaseObserver
	begin      func(flow.StageName, string)
	end        func(flow.StageName, string, error, time.Duration)
	elaborated func(string, *netlist.Elaboration)
	done       func(rtg.ConfigRun)
}

func (r *recordingObserver) StageBegin(s flow.StageName, name string) { r.begin(s, name) }
func (r *recordingObserver) StageEnd(s flow.StageName, name string, err error, w time.Duration) {
	r.end(s, name, err, w)
}
func (r *recordingObserver) ConfigElaborated(id string, el *netlist.Elaboration) {
	r.elaborated(id, el)
}
func (r *recordingObserver) ConfigDone(run rtg.ConfigRun) { r.done(run) }

func TestWorkDirArtifacts(t *testing.T) {
	dir := t.TempDir()
	p, err := flow.New(flow.WithWorkDir(dir), flow.WithArtifacts(true))
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Run(scaleSource())
	if err != nil || !out.OK() {
		t.Fatalf("run: %v", err)
	}
	for _, label := range []string{"rtg", "dot:rtg", "java:rtg", "mem-in:a"} {
		path, ok := out.Compiled.Artifacts[label]
		if !ok {
			t.Errorf("missing compile artifact %q", label)
			continue
		}
		if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
			t.Errorf("artifact %q unreadable: %v", label, err)
		}
	}
	if path, ok := out.Sim.Artifacts["mem:b"]; !ok {
		t.Error("missing simulated memory artifact mem:b")
	} else if !strings.HasPrefix(path, filepath.Join(dir, "scale")) {
		t.Errorf("artifact path %q outside case dir", path)
	}
}

func TestIncompleteSimulationYieldsNoVerdict(t *testing.T) {
	p, err := flow.New(flow.WithMaxCycles(2))
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Run(scaleSource())
	if err != nil {
		t.Fatal(err)
	}
	if out.Sim.Completed || out.Verdict != nil || out.OK() {
		t.Fatalf("tiny cycle cap must yield incomplete, verdict-less outcome: %+v", out)
	}
}

func TestContextCancelsPipeline(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p, err := flow.New(flow.WithContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(scaleSource()); err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("err=%v, want context cancellation", err)
	}
}

func TestVCDObserverDumpsWaveforms(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "waves")
	p, err := flow.New(flow.WithObserver(flow.NewVCDObserver(prefix, nil)))
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Run(scaleSource())
	if err != nil || !out.OK() {
		t.Fatalf("run: %v", err)
	}
	matches, err := filepath.Glob(prefix + ".*.vcd")
	if err != nil || len(matches) == 0 {
		t.Fatalf("no VCD dumps under %s (err=%v)", prefix, err)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil || !strings.Contains(string(data), "$var") {
		t.Fatalf("dump %s not a VCD file: %v", matches[0], err)
	}
}

func TestElaborateDesignFromLoadedBundle(t *testing.T) {
	// Compile to disk, load the bundle back, and simulate it through the
	// design entry point — the hsim path.
	dir := t.TempDir()
	p, err := flow.New(flow.WithWorkDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	src := scaleSource()
	if _, err := p.Compile(src); err != nil {
		t.Fatal(err)
	}
	design, err := xmlspec.LoadDesign(filepath.Join(dir, "scale"))
	if err != nil {
		t.Fatal(err)
	}
	e, err := p.ElaborateDesign(design)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.LoadMemory("a", src.Inputs["a"]); err != nil {
		t.Fatal(err)
	}
	s, err := p.Simulate(e)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Completed || len(s.Memories["b"]) != 8 {
		t.Fatalf("sim=%+v", s)
	}
	if s.Memories["b"][1] != 3*(-3)+1 {
		t.Fatalf("b=%v", s.Memories["b"])
	}
}

func TestTranslateDocument(t *testing.T) {
	dp := &xmlspec.Datapath{
		Name: "t", Width: 8,
		Operators: []xmlspec.Operator{
			{ID: "c0", Type: "const", Value: 1},
			{ID: "r0", Type: "reg"},
		},
		Connections: []xmlspec.Connection{{From: "c0.y", To: "r0.d"}},
	}
	doc, err := xmlspec.Marshal(dp)
	if err != nil {
		t.Fatal(err)
	}
	for target, marker := range map[string]string{
		"dot":     "digraph",
		"vhdl":    "entity",
		"verilog": "module",
		"hds":     "[design]",
	} {
		out, err := flow.TranslateDocument(doc, target)
		if err != nil {
			t.Errorf("%s: %v", target, err)
			continue
		}
		if !strings.Contains(out, marker) {
			t.Errorf("%s output lacks %q", target, marker)
		}
	}
	if _, err := flow.TranslateDocument(doc, "java"); err == nil {
		t.Error("datapath-to-java must be rejected")
	}
	if _, err := flow.TranslateDocument([]byte("<mystery/>"), "dot"); err == nil {
		t.Error("unknown root must be rejected")
	}
}

func TestProgressObserverOutput(t *testing.T) {
	var sb strings.Builder
	p, err := flow.New(flow.WithObserver(flow.NewProgressObserver(&sb)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(scaleSource()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "configuration") || !strings.Contains(sb.String(), "kernel=twolevel") {
		t.Fatalf("progress output %q", sb.String())
	}
}

func ExampleBackends() {
	def := flow.Backends()[0]
	fmt.Println(def.Name, def.Kind)
	// Output: twolevel event
}
