package flow

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/cycle"
	"repro/internal/hades"
	"repro/internal/rtg"
)

// BackendKind classifies a backend's execution model: event backends
// schedule per-event on a hades kernel, cycle backends evaluate a
// levelized program clock-by-clock with no event queue.
type BackendKind string

// Backend kinds.
const (
	KindEvent BackendKind = "event"
	KindCycle BackendKind = "cycle"
)

// Backend is one registered simulator implementation: the descriptor
// (name, description, kind, capabilities) plus the factory for its
// execution engine. Event backends supply New, the kernel factory the
// registry wraps in an rtg.SimulatorEngine; cycle backends supply
// Engine directly. A zero Kind registers as KindEvent, so pre-descriptor
// registrations (name + New) keep working unchanged.
type Backend struct {
	Name string
	Desc string
	Kind BackendKind
	// SupportsGang marks engines that evaluate configuration gangs in
	// lockstep; event backends run gang lanes sequentially instead.
	SupportsGang bool
	// New builds one event kernel (required for event backends).
	New func() *hades.Simulator
	// Engine builds the execution engine (required for cycle backends;
	// event backends default to a SimulatorEngine adapter around New).
	Engine func() rtg.Engine
}

// Info returns the backend's public descriptor.
func (b Backend) Info() BackendInfo {
	return BackendInfo{Name: b.Name, Kind: b.Kind, Desc: b.Desc, SupportsGang: b.SupportsGang}
}

// engine resolves the backend's rtg.Engine: the declared factory, or
// the event-kernel adapter — which reports the backend name and builds
// simulators exactly as the pre-engine registry did, keeping the event
// backends' behavior byte-identical.
func (b Backend) engine() rtg.Engine {
	if b.Engine != nil {
		return b.Engine()
	}
	return &rtg.SimulatorEngine{Kernel: b.Name, New: b.New}
}

// BackendInfo is the public descriptor of a registered backend — what
// Backends() returns and what the simd wire API serves.
type BackendInfo struct {
	Name         string
	Kind         BackendKind
	Desc         string
	SupportsGang bool
}

// DefaultBackend is the backend a pipeline uses when none is selected.
const DefaultBackend = hades.KernelTwoLevel

// BackendCompiled names the levelized cycle-based engine.
const BackendCompiled = "compiled"

var (
	backendMu sync.RWMutex
	backends  = map[string]Backend{}
)

func init() {
	MustRegisterBackend(Backend{
		Name: hades.KernelTwoLevel,
		Desc: "two-level time-bucketed event queue (default, fastest event kernel)",
		Kind: KindEvent,
		New:  hades.NewSimulator,
	})
	MustRegisterBackend(Backend{
		Name: hades.KernelHeapRef,
		Desc: "seed binary-heap kernel, the reference scheduling discipline",
		Kind: KindEvent,
		New:  hades.NewHeapRefSimulator,
	})
	MustRegisterBackend(Backend{
		Name:         BackendCompiled,
		Desc:         "levelized cycle-by-cycle engine, no event queue; evaluates configuration gangs in lockstep",
		Kind:         KindCycle,
		SupportsGang: true,
		Engine:       func() rtg.Engine { return cycle.New() },
	})
}

// RegisterBackend adds a simulator backend to the registry. Names must
// be unique; an event backend (the default kind) needs a kernel
// factory, a cycle backend an engine factory.
func RegisterBackend(b Backend) error {
	if b.Name == "" {
		return fmt.Errorf("flow: backend needs a name and a factory")
	}
	switch b.Kind {
	case "":
		b.Kind = KindEvent
	case KindEvent, KindCycle:
	default:
		return fmt.Errorf("flow: backend %q: unknown kind %q", b.Name, b.Kind)
	}
	if b.Kind == KindEvent && b.New == nil {
		return fmt.Errorf("flow: backend needs a name and a factory")
	}
	if b.Kind == KindCycle && b.Engine == nil {
		return fmt.Errorf("flow: cycle backend %q needs an engine factory", b.Name)
	}
	backendMu.Lock()
	defer backendMu.Unlock()
	if _, dup := backends[b.Name]; dup {
		return fmt.Errorf("flow: backend %q already registered", b.Name)
	}
	backends[b.Name] = b
	return nil
}

// MustRegisterBackend is RegisterBackend panicking on error, for
// package-init registration.
func MustRegisterBackend(b Backend) {
	if err := RegisterBackend(b); err != nil {
		panic(err)
	}
}

// LookupBackend resolves a backend by name ("" means DefaultBackend).
// The unknown-name error carries the full sorted descriptor catalog —
// one stable message shared by every lookup path.
func LookupBackend(name string) (Backend, error) {
	if name == "" {
		name = DefaultBackend
	}
	backendMu.RLock()
	defer backendMu.RUnlock()
	b, ok := backends[name]
	if !ok {
		return Backend{}, fmt.Errorf("flow: unknown backend %q (registered: %s)", name, backendCatalogLocked())
	}
	return b, nil
}

// Backends lists the registered backend descriptors, default first, the
// rest sorted by name.
func Backends() []BackendInfo {
	backendMu.RLock()
	defer backendMu.RUnlock()
	return backendInfosLocked()
}

// BackendNames lists the registered backend names in Backends() order —
// the plain-string form for flag parsing and pool keys.
func BackendNames() []string {
	backendMu.RLock()
	defer backendMu.RUnlock()
	infos := backendInfosLocked()
	names := make([]string, len(infos))
	for i, bi := range infos {
		names[i] = bi.Name
	}
	return names
}

func backendInfosLocked() []BackendInfo {
	rest := make([]BackendInfo, 0, len(backends))
	for name, b := range backends {
		if name != DefaultBackend {
			rest = append(rest, b.Info())
		}
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i].Name < rest[j].Name })
	out := make([]BackendInfo, 0, len(rest)+1)
	if def, ok := backends[DefaultBackend]; ok {
		out = append(out, def.Info())
	}
	return append(out, rest...)
}

// backendCatalogLocked renders the descriptor list for error messages:
// "name (kind): desc" entries in Backends() order.
func backendCatalogLocked() string {
	infos := backendInfosLocked()
	parts := make([]string, len(infos))
	for i, bi := range infos {
		parts[i] = fmt.Sprintf("%s (%s): %s", bi.Name, bi.Kind, bi.Desc)
	}
	return strings.Join(parts, "; ")
}

// BackendDesc returns the description of a registered backend ("" when
// unknown).
func BackendDesc(name string) string {
	backendMu.RLock()
	defer backendMu.RUnlock()
	return backends[name].Desc
}
