package flow

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/hades"
)

// Backend is one registered simulator implementation: a name, a short
// description, and a factory for the event kernel every configuration
// of a run is executed on.
type Backend struct {
	Name string
	Desc string
	New  func() *hades.Simulator
}

// DefaultBackend is the backend a pipeline uses when none is selected.
const DefaultBackend = hades.KernelTwoLevel

var (
	backendMu sync.RWMutex
	backends  = map[string]Backend{}
)

func init() {
	MustRegisterBackend(Backend{
		Name: hades.KernelTwoLevel,
		Desc: "two-level time-bucketed event queue (default, fastest)",
		New:  hades.NewSimulator,
	})
	MustRegisterBackend(Backend{
		Name: hades.KernelHeapRef,
		Desc: "seed binary-heap kernel, the reference scheduling discipline",
		New:  hades.NewHeapRefSimulator,
	})
}

// RegisterBackend adds a simulator backend to the registry. Names must
// be unique; the factory must be non-nil.
func RegisterBackend(b Backend) error {
	if b.Name == "" || b.New == nil {
		return fmt.Errorf("flow: backend needs a name and a factory")
	}
	backendMu.Lock()
	defer backendMu.Unlock()
	if _, dup := backends[b.Name]; dup {
		return fmt.Errorf("flow: backend %q already registered", b.Name)
	}
	backends[b.Name] = b
	return nil
}

// MustRegisterBackend is RegisterBackend panicking on error, for
// package-init registration.
func MustRegisterBackend(b Backend) {
	if err := RegisterBackend(b); err != nil {
		panic(err)
	}
}

// LookupBackend resolves a backend by name ("" means DefaultBackend).
func LookupBackend(name string) (Backend, error) {
	if name == "" {
		name = DefaultBackend
	}
	backendMu.RLock()
	defer backendMu.RUnlock()
	b, ok := backends[name]
	if !ok {
		return Backend{}, fmt.Errorf("flow: unknown backend %q (registered: %v)", name, backendNamesLocked())
	}
	return b, nil
}

// Backends lists the registered backend names, default first, the rest
// sorted.
func Backends() []string {
	backendMu.RLock()
	defer backendMu.RUnlock()
	return backendNamesLocked()
}

func backendNamesLocked() []string {
	names := make([]string, 0, len(backends))
	for name := range backends {
		if name != DefaultBackend {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return append([]string{DefaultBackend}, names...)
}

// BackendDesc returns the description of a registered backend ("" when
// unknown).
func BackendDesc(name string) string {
	backendMu.RLock()
	defer backendMu.RUnlock()
	return backends[name].Desc
}
