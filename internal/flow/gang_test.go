package flow_test

import (
	"fmt"
	"testing"

	"repro/internal/flow"
)

// TestSimulateGangMatchesSequential is the gang acceptance property:
// the same lane population must produce identical per-lane results on
// the compiled backend's lockstep path, the event backend's sequential
// fallback, and plain one-at-a-time SetSeed+Simulate rounds — same
// configuration sequences, same cycle counts, same sink recordings,
// same final memories.
func TestSimulateGangMatchesSequential(t *testing.T) {
	laneSeeds := []map[string][]int64{
		nil, // prepared seeds untouched
		{"a": {1, 2, 3, 4, 5, 6, 7, 8}},
		{"a": {-8, -7, -6, -5, -4, -3, -2, -1}},
		{"a": {100, 0, -100, 50, 25, 12, 6, 3}},
	}

	type laneOut struct {
		completed bool
		runs      string
		memories  string
	}
	gangOn := func(backend string) []laneOut {
		p, err := flow.New(flow.WithBackend(backend))
		if err != nil {
			t.Fatal(err)
		}
		d, err := p.Prepare(scaleSource())
		if err != nil {
			t.Fatal(err)
		}
		sims, err := d.SimulateGang(laneSeeds)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]laneOut, len(sims))
		for l, s := range sims {
			var runs string
			for _, run := range s.Runs {
				runs += fmt.Sprintf("%s cycles=%d completed=%v state=%s sinks=%v;",
					run.ID, run.Cycles, run.Completed, run.FinalState, run.Sinks)
			}
			out[l] = laneOut{completed: s.Completed, runs: runs, memories: fmt.Sprint(s.Memories)}
		}
		return out
	}

	compiled := gangOn("compiled")
	event := gangOn("twolevel")
	if len(compiled) != len(laneSeeds) || len(event) != len(laneSeeds) {
		t.Fatalf("lane counts: compiled %d, event %d, want %d", len(compiled), len(event), len(laneSeeds))
	}
	for l := range laneSeeds {
		if compiled[l] != event[l] {
			t.Fatalf("lane %d diverges between lockstep and sequential gang:\ncompiled %+v\nevent    %+v",
				l, compiled[l], event[l])
		}
	}

	// Ground truth: each lane as its own sequential SetSeed+Simulate round.
	p, err := flow.New(flow.WithBackend("twolevel"))
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.Prepare(scaleSource())
	if err != nil {
		t.Fatal(err)
	}
	for l, seeds := range laneSeeds {
		for id, words := range seeds {
			if err := d.SetSeed(id, words); err != nil {
				t.Fatal(err)
			}
		}
		s, err := d.Simulate()
		if err != nil {
			t.Fatal(err)
		}
		if got := fmt.Sprint(s.Memories); got != compiled[l].memories {
			t.Fatalf("lane %d: gang memories diverge from a sequential round:\ngang %s\nseq  %s",
				l, compiled[l].memories, got)
		}
		if s.Completed != compiled[l].completed {
			t.Fatalf("lane %d: completion diverges", l)
		}
	}
}

// TestSimulateGangLaneSeedValidation: unknown shared-memory ids in a
// lane seed must fail the whole gang up front.
func TestSimulateGangLaneSeedValidation(t *testing.T) {
	p, err := flow.New(flow.WithBackend("compiled"))
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.Prepare(scaleSource())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.SimulateGang([]map[string][]int64{{"ghost": {1}}}); err == nil {
		t.Fatal("unknown lane-seed memory must error")
	}
}
