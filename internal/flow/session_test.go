package flow_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/flow"
)

// TestSessionConcurrentRounds is the pooled-session concurrency
// contract as a test: ONE prepared session — one replay cache — driven
// from 8 goroutines, 4 rounds each. Every round must verify green
// (rounds are atomic: no goroutine ever simulates on another's
// half-written seeds), and the session's lifetime counters must show
// the cache carried every round (Elaborations stays at the
// configuration count while Resets climbs to rounds-1). Run with -race
// in CI.
func TestSessionConcurrentRounds(t *testing.T) {
	const (
		goroutines = 8
		rounds     = 4
	)
	p, err := flow.New()
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.Prepare(scaleSource())
	if err != nil {
		t.Fatal(err)
	}
	key := flow.PoolKey{Workload: "scale", Params: "n=8", Backend: "twolevel"}
	sess := flow.NewSession(key, d, goroutines)

	var wg sync.WaitGroup
	errs := make(chan error, goroutines*rounds)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				out, err := sess.RunContext(context.Background())
				if err != nil {
					errs <- err
					return
				}
				if !out.OK() {
					errs <- errors.New("round did not verify")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if got := sess.Runs(); got != goroutines*rounds {
		t.Errorf("Runs()=%d want %d", got, goroutines*rounds)
	}
	st := sess.Stats()
	if st.Key != "scale(n=8)@twolevel" {
		t.Errorf("Stats().Key=%q", st.Key)
	}
	// scaleSource compiles to one configuration: one elaboration total,
	// and every later round a reset-and-replay.
	if st.Elaborations != 1 {
		t.Errorf("Elaborations=%d under concurrency; the replay cache should have carried the rounds", st.Elaborations)
	}
	if want := uint64(goroutines*rounds - 1); st.Resets != want {
		t.Errorf("Resets=%d want %d", st.Resets, want)
	}
	if st.InFlight != 0 {
		t.Errorf("InFlight=%d after drain", st.InFlight)
	}
}

// TestSessionTryRunShedsWhenFull pins the fail-fast admission path: a
// session with one slot, held by a blocked round, must answer TryRun
// with ErrSessionBusy immediately — the signal the server turns into
// HTTP 429 — and serve again once the slot frees.
func TestSessionTryRunShedsWhenFull(t *testing.T) {
	p, err := flow.New()
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.Prepare(scaleSource())
	if err != nil {
		t.Fatal(err)
	}
	sess := flow.NewSession(flow.PoolKey{Workload: "scale"}, d, 1)

	// Hold the only slot open with a round blocked on a canceled-later
	// context; the round itself runs quickly, so instead gate on an
	// acquired-slot signal: run a goroutine that holds the slot by
	// looping rounds until released.
	stop := make(chan struct{})
	holding := make(chan struct{})
	var once sync.Once
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := sess.RunContext(context.Background()); err != nil {
				t.Error(err)
				return
			}
			once.Do(func() { close(holding) })
		}
	}()
	<-holding

	// With one goroutine hammering the single slot, TryRun must shed at
	// least once (the slot is held for the whole reseed+walk+verify).
	shed := false
	for i := 0; i < 200 && !shed; i++ {
		_, err := sess.TryRunContext(context.Background())
		if errors.Is(err, flow.ErrSessionBusy) {
			shed = true
		} else if err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if !shed {
		t.Fatal("TryRun never shed against a saturated single-slot session")
	}

	// Slot free again: TryRun serves.
	out, err := sess.TryRunContext(context.Background())
	if err != nil || !out.OK() {
		t.Fatalf("after drain: %v %+v", err, out)
	}
}

// TestSessionRunContextHonorsCancel: a canceled context refuses the
// round whether it is waiting for a slot or already holding one.
func TestSessionRunContextHonorsCancel(t *testing.T) {
	p, err := flow.New()
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.Prepare(scaleSource())
	if err != nil {
		t.Fatal(err)
	}
	sess := flow.NewSession(flow.PoolKey{Workload: "scale"}, d, 1)
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.RunContext(canceled); err == nil {
		t.Fatal("canceled context must refuse the round")
	}
	// The failed round must not leak its slot or count as a run.
	if sess.InFlight() != 0 {
		t.Fatalf("InFlight()=%d after canceled round", sess.InFlight())
	}
	var served atomic.Int64
	out, err := sess.RunContext(context.Background())
	if err != nil || !out.OK() {
		t.Fatalf("session unusable after canceled round: %v %+v", err, out)
	}
	served.Add(1)
	if sess.Runs() != int(served.Load()) {
		t.Fatalf("Runs()=%d want %d (canceled rounds must not count)", sess.Runs(), served.Load())
	}
}

// TestSessionSimulateSkipsVerify: the bench shape — Outcome carries the
// sim result but never a verdict.
func TestSessionSimulateSkipsVerify(t *testing.T) {
	p, err := flow.New()
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.Prepare(scaleSource())
	if err != nil {
		t.Fatal(err)
	}
	sess := flow.NewSession(flow.PoolKey{Workload: "scale"}, d, 2)
	out, err := sess.SimulateContext(nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Verdict != nil {
		t.Fatal("SimulateContext must not verify")
	}
	if !out.Sim.Completed || out.Sim.Events == 0 {
		t.Fatalf("sim result: %+v", out.Sim)
	}
	if _, err := sess.TrySimulateContext(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestPrepareContextDetachesFromRequestContext pins the session
// lifecycle seam: a design prepared under a request-scoped context must
// keep serving rounds after that request's context dies — and a dead
// context at prepare time must fail the prepare.
func TestPrepareContextDetachesFromRequestContext(t *testing.T) {
	p, err := flow.New()
	if err != nil {
		t.Fatal(err)
	}
	reqCtx, cancel := context.WithCancel(context.Background())
	d, err := p.PrepareContext(reqCtx, scaleSource())
	if err != nil {
		t.Fatal(err)
	}
	cancel() // the preparing request is gone; the session lives on
	out, err := d.Run()
	if err != nil {
		t.Fatalf("run after prepare-context cancel: %v", err)
	}
	if !out.OK() {
		t.Fatalf("not verified: %+v", out.Verdict)
	}

	dead, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := p.PrepareContext(dead, scaleSource()); err == nil {
		t.Fatal("prepare under a dead context must fail")
	}

	// Per-round contexts still bite on a detached design.
	if _, err := d.RunContext(dead); err == nil {
		t.Fatal("dead per-round context must refuse the round")
	}
}
