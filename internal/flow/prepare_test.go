package flow_test

import (
	"testing"

	"repro/internal/flow"
	"repro/internal/rtg"
)

// TestPreparedDesignRunRepeats pins the amortized lifecycle: one
// Prepare, many Runs, every round verifying green on the same seeds,
// with the replay cache actually carrying the rounds (Resets climbs,
// Elaborations stays at one per configuration).
func TestPreparedDesignRunRepeats(t *testing.T) {
	for _, backend := range flow.BackendNames() {
		t.Run(backend, func(t *testing.T) {
			var runs []rtg.ConfigRun
			obs := &configCollector{runs: &runs}
			p, err := flow.New(flow.WithBackend(backend), flow.WithObserver(obs))
			if err != nil {
				t.Fatal(err)
			}
			d, err := p.Prepare(scaleSource())
			if err != nil {
				t.Fatal(err)
			}
			var firstEvents uint64
			for round := 0; round < 3; round++ {
				runs = runs[:0]
				out, err := d.Run()
				if err != nil {
					t.Fatal(err)
				}
				if !out.OK() {
					t.Fatalf("round %d: not verified: %+v", round, out.Verdict)
				}
				if len(runs) == 0 {
					t.Fatal("observer saw no configurations")
				}
				for _, run := range runs {
					if run.Stats.Elaborations != 1 || run.Stats.Resets != uint64(round) {
						t.Fatalf("round %d: lifetime counters %+v", round, run.Stats)
					}
					if round == 0 {
						firstEvents = run.Stats.Events
					} else if run.Stats.Events != firstEvents {
						t.Fatalf("round %d: replay events %d != fresh %d", round, run.Stats.Events, firstEvents)
					}
				}
			}
			if d.Runs() != 3 {
				t.Fatalf("Runs()=%d", d.Runs())
			}
		})
	}
}

type configCollector struct {
	flow.BaseObserver
	runs *[]rtg.ConfigRun
}

func (c *configCollector) ConfigDone(run rtg.ConfigRun) { *c.runs = append(*c.runs, run) }

// TestPreparedDesignSetSeed pins per-round reseeding: changed seeds
// change the result, unknown memories error, and seeds are copied.
func TestPreparedDesignSetSeed(t *testing.T) {
	p, err := flow.New()
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.Prepare(scaleSource())
	if err != nil {
		t.Fatal(err)
	}
	out, err := d.Run()
	if err != nil || !out.OK() {
		t.Fatalf("first run: %v %+v", err, out)
	}
	first := out.Sim.Memories["b"][0] // 3*5+0

	seed := []int64{10, 0, 0, 0, 0, 0, 0, 0}
	if err := d.SetSeed("a", seed); err != nil {
		t.Fatal(err)
	}
	seed[0] = -1 // caller-side mutation must not reach the stored seed
	sim, err := d.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if got := sim.Memories["b"][0]; got != 30 {
		t.Fatalf("b[0]=%d want 30 (first run had %d)", got, first)
	}
	if err := d.SetSeed("ghost", nil); err == nil {
		t.Fatal("unknown memory must error")
	}
}

// TestPreparedDesignFromLoadedDesign covers PrepareDesign: no compiled
// stage, zero-filled seeds, nil Verdict from Run.
func TestPreparedDesignFromLoadedDesign(t *testing.T) {
	p, err := flow.New()
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.Compile(scaleSource())
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.PrepareDesign(c.Design)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SetSeed("a", []int64{5, -3, 12, 7, 0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		out, err := d.Run()
		if err != nil {
			t.Fatal(err)
		}
		if out.Verdict != nil {
			t.Fatal("loaded design cannot verify; Verdict must be nil")
		}
		if !out.Sim.Completed {
			t.Fatal("simulation incomplete")
		}
		if got := out.Sim.Memories["b"][0]; got != 15 {
			t.Fatalf("round %d: b[0]=%d want 15", round, got)
		}
	}
}

// TestWithFreshElaborationDisablesReplay pins the A/B hook end to end:
// under WithFreshElaboration every round rebuilds (Resets stays 0).
func TestWithFreshElaborationDisablesReplay(t *testing.T) {
	var runs []rtg.ConfigRun
	p, err := flow.New(flow.WithFreshElaboration(true), flow.WithObserver(&configCollector{runs: &runs}))
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.Prepare(scaleSource())
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		if _, err := d.Run(); err != nil {
			t.Fatal(err)
		}
	}
	for _, run := range runs {
		if run.Stats.Resets != 0 || run.Stats.Elaborations != 1 {
			t.Fatalf("fresh-elaboration pipeline replayed: %+v", run.Stats)
		}
	}
}
