package flow

import (
	"context"
	"fmt"
	"path/filepath"
	"time"

	"repro/internal/compiler"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/memfile"
	"repro/internal/rtg"
	"repro/internal/xmlspec"
	"repro/internal/xsl"
)

// Source is the pipeline's entry value: one MiniJ function with its
// design parameters and initial memory contents.
type Source struct {
	Name       string // case name; defaults to Func
	Text       string // MiniJ source text
	Func       string // function to compile
	ArraySizes map[string]int
	ScalarArgs map[string]int64
	Inputs     map[string][]int64
	// Expected optionally pins exact expected contents per array,
	// checked on top of the golden interpreter's result (the paper's
	// flow); an array matching the interpreter but not its pin fails.
	Expected map[string][]int64
}

func (s Source) name() string {
	if s.Name != "" {
		return s.Name
	}
	return s.Func
}

// PartitionInfo reports one compiled configuration's size — the
// Table I columns.
type PartitionInfo struct {
	ID             string
	Datapath       string
	FSM            string
	Operators      int
	States         int
	XMLDatapathLoC int
	XMLFSMLoC      int
	JavaFSMLoC     int
}

// Compiled is the result of the compile stage: the design in the three
// XML dialects plus its size metadata and any written artifacts.
type Compiled struct {
	Source     Source
	Design     *xmlspec.Design
	Func       *lang.Func
	Partitions []PartitionInfo
	SourceLoC  int
	TotalOps   int
	Artifacts  map[string]string // label -> path (when WorkDir set)
}

// Compile parses and compiles the source into its design, computes the
// per-partition size metrics, and — when a WorkDir is configured —
// writes the XML bundle, the initial memory files and (with
// WithArtifacts) the dot/java/hds translations.
func (p *Pipeline) Compile(src Source) (*Compiled, error) {
	out := &Compiled{Source: src, Artifacts: map[string]string{}}
	err := p.observeStage(StageCompile, src.name(), func() error {
		if err := p.ctxErr(StageCompile, src.name()); err != nil {
			return err
		}
		prog, err := lang.Parse(src.Text)
		if err != nil {
			return err
		}
		out.SourceLoC = countLines(src.Text)
		comp, err := compiler.Compile(prog, src.Func, compiler.Config{
			Width:          p.cfg.Width,
			ArraySizes:     src.ArraySizes,
			ScalarArgs:     src.ScalarArgs,
			AutoPartitions: p.cfg.AutoPartitions,
		})
		if err != nil {
			return err
		}
		out.Design = comp.Design
		out.Func = comp.Func
		for _, meta := range comp.Meta {
			dpDoc, err := xmlspec.Marshal(comp.Design.Datapaths[meta.Datapath])
			if err != nil {
				return err
			}
			fsmDoc, err := xmlspec.Marshal(comp.Design.FSMs[meta.FSM])
			if err != nil {
				return err
			}
			javaOut, err := xsl.TransformBytes(xsl.FSMToJava(), fsmDoc)
			if err != nil {
				return err
			}
			out.Partitions = append(out.Partitions, PartitionInfo{
				ID:             meta.ID,
				Datapath:       meta.Datapath,
				FSM:            meta.FSM,
				Operators:      meta.Operators,
				States:         meta.States,
				XMLDatapathLoC: xmlspec.LineCount(dpDoc),
				XMLFSMLoC:      xmlspec.LineCount(fsmDoc),
				JavaFSMLoC:     countLines(javaOut),
			})
			out.TotalOps += meta.Operators
		}
		if p.cfg.WorkDir == "" {
			return nil
		}
		dir := filepath.Join(p.cfg.WorkDir, src.name())
		files, err := WriteDesignArtifacts(comp.Design, dir, p.cfg.EmitArtifacts)
		if err != nil {
			return err
		}
		for label, path := range files {
			out.Artifacts[label] = path
		}
		for name, depth := range src.ArraySizes {
			words := make([]int64, depth)
			copy(words, src.Inputs[name])
			path := filepath.Join(dir, name+".mem")
			if err := memfile.Save(path, words, "initial contents of "+name); err != nil {
				return err
			}
			out.Artifacts["mem-in:"+name] = path
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Elaborated is a design bound to a reconfiguration controller with its
// shared memories seeded, ready to simulate.
type Elaborated struct {
	Name       string
	Design     *xmlspec.Design
	Controller *rtg.Controller
	Compiled   *Compiled // nil when elaborated from a loaded design
}

// Elaborate validates the compiled design, builds its reconfiguration
// controller on the selected backend, and seeds every shared memory
// from the source's inputs.
func (p *Pipeline) Elaborate(c *Compiled) (*Elaborated, error) {
	e := &Elaborated{Name: c.Source.name(), Design: c.Design, Compiled: c}
	err := p.observeStage(StageElaborate, e.Name, func() error {
		if err := p.ctxErr(StageElaborate, e.Name); err != nil {
			return err
		}
		ctl, err := rtg.NewController(c.Design, p.rtgOptions())
		if err != nil {
			return err
		}
		for name, depth := range c.Source.ArraySizes {
			words := make([]int64, depth)
			copy(words, c.Source.Inputs[name])
			if err := ctl.LoadMemory(name, words); err != nil {
				return err
			}
		}
		e.Controller = ctl
		return nil
	})
	if err != nil {
		return nil, err
	}
	return e, nil
}

// ElaborateDesign builds a controller for an already-compiled design
// (e.g. an rtg.xml bundle loaded from disk). Memories start
// zero-filled; seed them with LoadMemory.
func (p *Pipeline) ElaborateDesign(design *xmlspec.Design) (*Elaborated, error) {
	e := &Elaborated{Name: design.RTG.Name, Design: design}
	err := p.observeStage(StageElaborate, e.Name, func() error {
		if err := p.ctxErr(StageElaborate, e.Name); err != nil {
			return err
		}
		ctl, err := rtg.NewController(design, p.rtgOptions())
		if err != nil {
			return err
		}
		e.Controller = ctl
		return nil
	})
	if err != nil {
		return nil, err
	}
	return e, nil
}

// LoadMemory seeds a shared memory before simulation.
func (e *Elaborated) LoadMemory(name string, words []int64) error {
	return e.Controller.LoadMemory(name, words)
}

// MemoryIDs lists the design's shared memories.
func (e *Elaborated) MemoryIDs() []string { return e.Controller.MemoryIDs() }

// SimResult is the outcome of the simulate stage: the per-configuration
// run records and a snapshot of every shared memory.
type SimResult struct {
	Runs        []rtg.ConfigRun
	Completed   bool
	TotalCycles uint64
	Events      uint64
	SimWall     time.Duration      // sum of per-configuration simulation walls
	Memories    map[string][]int64 // final shared-memory contents
	Artifacts   map[string]string  // mem:<name> output files (when WorkDir set)
}

// Simulate walks the RTG on the selected backend, streaming each
// configuration to the observers, and snapshots the shared memories.
// An exhausted cycle cap is not an error: Completed reports it.
func (p *Pipeline) Simulate(e *Elaborated) (*SimResult, error) {
	return p.simulateCtx(e, nil)
}

// SimulateContext is Simulate under a per-run cancellation context,
// overriding the pipeline's configured context for this walk only (the
// session shape: one long-lived design, per-request deadlines).
func (p *Pipeline) SimulateContext(ctx context.Context, e *Elaborated) (*SimResult, error) {
	return p.simulateCtx(e, ctx)
}

func (p *Pipeline) simulateCtx(e *Elaborated, ctx context.Context) (*SimResult, error) {
	out := &SimResult{Memories: map[string][]int64{}, Artifacts: map[string]string{}}
	err := p.observeStage(StageSimulate, e.Name, func() error {
		exec, err := e.Controller.ExecuteContext(ctx)
		if err != nil {
			return err
		}
		out.Runs = exec.Runs
		out.Completed = exec.Completed
		out.TotalCycles = exec.TotalCycles
		for _, run := range exec.Runs {
			out.Events += run.Events
			out.SimWall += run.Wall
		}
		for _, id := range e.MemoryIDs() {
			words, err := e.Controller.Memory(id)
			if err != nil {
				return err
			}
			out.Memories[id] = words
		}
		if p.cfg.WorkDir != "" && e.Compiled != nil {
			for name := range e.Compiled.Source.ArraySizes {
				path := filepath.Join(p.cfg.WorkDir, e.Name, name+".out.mem")
				if err := memfile.Save(path, out.Memories[name], "simulated contents of "+name); err != nil {
					return err
				}
				out.Artifacts["mem:"+name] = path
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Verdict is the outcome of the verify stage: the paper's pass
// criterion, memory contents against the golden interpreter.
type Verdict struct {
	Passed     bool
	Mismatches map[string][]memfile.Mismatch
	RefWall    time.Duration
	RefSteps   uint64
}

// Failed lists the arrays with mismatches.
func (v *Verdict) Failed() []string {
	var out []string
	for name, ms := range v.Mismatches {
		if len(ms) > 0 {
			out = append(out, name)
		}
	}
	return out
}

// Verify runs the golden interpreter on copies of the same inputs and
// compares every array's simulated contents against it; arrays with
// pinned Expected contents are additionally checked against the pin, so
// a reference model that diverges from the interpreter fails the case
// instead of silently overriding it.
func (p *Pipeline) Verify(c *Compiled, s *SimResult) (*Verdict, error) {
	v := &Verdict{Mismatches: map[string][]memfile.Mismatch{}}
	err := p.observeStage(StageVerify, c.Source.name(), func() error {
		if err := p.ctxErr(StageVerify, c.Source.name()); err != nil {
			return err
		}
		ref := map[string][]int64{}
		for name, depth := range c.Source.ArraySizes {
			words := make([]int64, depth)
			copy(words, c.Source.Inputs[name])
			ref[name] = words
		}
		start := time.Now()
		ri, err := interp.Run(c.Func, ref, c.Source.ScalarArgs, interp.Options{})
		if err != nil {
			return err
		}
		v.RefWall = time.Since(start)
		v.RefSteps = ri.Steps
		v.Passed = true
		for name := range c.Source.ArraySizes {
			actual, ok := s.Memories[name]
			if !ok {
				return fmt.Errorf("flow: verify %s: no simulated memory %q", c.Source.name(), name)
			}
			ms := memfile.Compare(ref[name], actual, 0)
			if pinned := c.Source.Expected[name]; pinned != nil && len(ms) == 0 {
				ms = memfile.Compare(pinned, actual, 0)
			}
			v.Mismatches[name] = ms
			if len(ms) > 0 {
				v.Passed = false
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return v, nil
}

// Outcome bundles every stage value of one full pipeline run.
type Outcome struct {
	Compiled *Compiled
	Sim      *SimResult
	Verdict  *Verdict // nil when the simulation did not complete
}

// OK reports a completed, verified run.
func (o *Outcome) OK() bool { return o.Verdict != nil && o.Verdict.Passed }

// Run executes the full flow — compile, elaborate, simulate, verify —
// for one source. An incomplete simulation (cycle cap) yields a nil
// Verdict, not an error. To run the same source repeatedly, use Prepare
// and call Run on the PreparedDesign: it amortizes the compile and
// elaborate stages across rounds.
func (p *Pipeline) Run(src Source) (*Outcome, error) {
	d, err := p.Prepare(src)
	if err != nil {
		return nil, err
	}
	return d.Run()
}

// countLines counts non-blank lines.
func countLines(s string) int {
	n := 0
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			line := s[start:i]
			start = i + 1
			if nonBlank(line) {
				n++
			}
		}
	}
	return n
}

func nonBlank(line string) bool {
	for i := 0; i < len(line); i++ {
		if line[i] != ' ' && line[i] != '\t' && line[i] != '\r' {
			return true
		}
	}
	return false
}
