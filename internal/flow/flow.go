// Package flow is the unified pipeline API for the paper's Figure-1
// verification flow: compile → transform → elaborate → simulate →
// verify against the golden interpreter.
//
// Every consumer of the infrastructure — the regression-suite runner
// (internal/core), the benchmark harness (internal/bench), the
// co-simulation system (internal/cosim) and all the command-line tools
// — sits on this package instead of hand-wiring the stages. A Pipeline
// carries one resolved Config built from functional options
// (WithWidth, WithClock, WithMaxCycles, WithContext, WithWorkDir,
// WithArtifacts, WithBackend, WithObserver, …); the typed stage values
// Source → Compiled → Elaborated → SimResult → Verdict make the
// dataflow explicit; Observers stream stage and per-configuration
// progress; and the simulator backend registry (RegisterBackend)
// selects the event kernel every configuration runs on.
//
// This package is also the single source of truth for the flow
// defaults (DefaultClockPeriod, DefaultMaxCycles, DefaultMaxConfigs):
// internal/rtg deliberately rejects unset bounds, and the CLI flag
// defaults are taken from here, so no second copy of a default exists
// anywhere in the tree.
//
// See docs/FLOW.md for a guided tour.
package flow

import (
	"context"
	"fmt"

	"repro/internal/hades"
	"repro/internal/netlist"
	"repro/internal/operators"
	"repro/internal/rtg"
)

// Canonical flow defaults. Everything that needs a clock period, cycle
// cap or reconfiguration bound — core.Options zero values, rtg
// controllers, the hsim/gnc/testsuite flag defaults — resolves to these
// constants and nothing else.
const (
	// DefaultClockPeriod is the clock period in simulator ticks.
	DefaultClockPeriod hades.Time = 10
	// DefaultMaxCycles caps the cycles simulated per configuration.
	DefaultMaxCycles uint64 = 50_000_000
	// DefaultMaxConfigs bounds the reconfiguration walk (RTG cycles).
	DefaultMaxConfigs = 1024
)

// Config is the resolved configuration of a Pipeline. Construct it
// through New and the With* options; the zero value is not useful.
type Config struct {
	Width          int        // datapath word width (0: compiler default, 32)
	AutoPartitions int        // auto-split into N temporal partitions (0: markers only)
	ClockPeriod    hades.Time // simulator ticks per clock cycle
	MaxCycles      uint64     // per-configuration cycle cap
	MaxConfigs     int        // reconfiguration bound
	WorkDir        string     // when set, stages write artifacts under WorkDir/<name>
	EmitArtifacts  bool       // also write dot/java/hds translations (requires WorkDir)
	Backend        string     // simulator backend name; "" means DefaultBackend
	// FreshElaboration disables the reconfiguration replay cache:
	// every configuration visit rebuilds simulator and netlist (the
	// paper's original flow). See WithFreshElaboration.
	FreshElaboration bool
	Context          context.Context
	Registry         *operators.Registry
	Observers        []Observer
}

// Option is a functional configuration option for New.
type Option func(*Config)

// WithWidth sets the datapath word width.
func WithWidth(w int) Option { return func(c *Config) { c.Width = w } }

// WithAutoPartitions asks the compiler to split a marker-free function
// body into n temporal partitions.
func WithAutoPartitions(n int) Option { return func(c *Config) { c.AutoPartitions = n } }

// WithClock sets the clock period in simulator ticks.
func WithClock(period hades.Time) Option { return func(c *Config) { c.ClockPeriod = period } }

// WithMaxCycles caps the simulated cycles per configuration.
func WithMaxCycles(n uint64) Option { return func(c *Config) { c.MaxCycles = n } }

// WithMaxConfigs bounds the reconfiguration walk.
func WithMaxConfigs(n int) Option { return func(c *Config) { c.MaxConfigs = n } }

// WithWorkDir directs the stages to write their artifacts (XML bundle,
// memory files, simulated memory contents) under dir/<case name>.
func WithWorkDir(dir string) Option { return func(c *Config) { c.WorkDir = dir } }

// WithArtifacts additionally emits the dot/java/hds translations of
// every compiled document (requires WithWorkDir).
func WithArtifacts(emit bool) Option { return func(c *Config) { c.EmitArtifacts = emit } }

// WithBackend selects the simulator backend by registry name.
func WithBackend(name string) Option { return func(c *Config) { c.Backend = name } }

// WithFreshElaboration(true) disables the reconfiguration replay cache,
// rebuilding every configuration on a fresh simulator per visit — the
// paper's original reconfiguration cost. The default (false) resets and
// replays cached elaborations on repeat visits, which is
// trace-identical and is what makes Prepare-once/Run-many cheap; this
// option exists for A/B measurement (the bench fresh-* scenarios) and
// cross-checking.
func WithFreshElaboration(fresh bool) Option {
	return func(c *Config) { c.FreshElaboration = fresh }
}

// WithContext threads a cancellation context through every stage; the
// event kernel polls it once per simulated instant.
func WithContext(ctx context.Context) Option { return func(c *Config) { c.Context = ctx } }

// WithRegistry overrides the operator registry used for validation and
// elaboration.
func WithRegistry(r *operators.Registry) Option { return func(c *Config) { c.Registry = r } }

// WithObserver attaches a streaming observer; repeatable, observers are
// notified in attachment order.
func WithObserver(o Observer) Option {
	return func(c *Config) { c.Observers = append(c.Observers, o) }
}

// Pipeline executes the verification flow under one resolved Config.
// A Pipeline is cheap; build one per case or share one across cases —
// stages keep no mutable pipeline state.
type Pipeline struct {
	cfg     Config
	backend Backend
}

// New resolves the options into a Pipeline. It fails when the selected
// backend is not registered.
func New(opts ...Option) (*Pipeline, error) {
	cfg := Config{
		ClockPeriod: DefaultClockPeriod,
		MaxCycles:   DefaultMaxCycles,
		MaxConfigs:  DefaultMaxConfigs,
		Backend:     DefaultBackend,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.Backend == "" {
		cfg.Backend = DefaultBackend
	}
	if cfg.ClockPeriod <= 0 {
		cfg.ClockPeriod = DefaultClockPeriod
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = DefaultMaxCycles
	}
	if cfg.MaxConfigs <= 0 {
		cfg.MaxConfigs = DefaultMaxConfigs
	}
	backend, err := LookupBackend(cfg.Backend)
	if err != nil {
		return nil, err
	}
	return &Pipeline{cfg: cfg, backend: backend}, nil
}

// Config returns the pipeline's resolved configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// Backend returns the resolved simulator backend.
func (p *Pipeline) Backend() Backend { return p.backend }

// ctxErr reports a pending cancellation, wrapped with the stage name.
func (p *Pipeline) ctxErr(stage StageName, name string) error {
	if ctx := p.cfg.Context; ctx != nil && ctx.Err() != nil {
		return fmt.Errorf("flow: %s %s: %w", stage, name, ctx.Err())
	}
	return nil
}

// rtgOptions is the only place in the tree that constructs rtg.Options:
// the controller requires every bound to be set explicitly, and this is
// where the flow defaults meet it.
func (p *Pipeline) rtgOptions() rtg.Options {
	return rtg.Options{
		Registry:      p.cfg.Registry,
		ClockPeriod:   p.cfg.ClockPeriod,
		MaxCycles:     p.cfg.MaxCycles,
		MaxConfigs:    p.cfg.MaxConfigs,
		Engine:        p.backend.engine(),
		Context:       p.cfg.Context,
		DisableReplay: p.cfg.FreshElaboration,
		Observer: func(cfgID string, el *netlist.Elaboration) {
			for _, o := range p.cfg.Observers {
				o.ConfigElaborated(cfgID, el)
			}
		},
		AfterConfig: func(run rtg.ConfigRun) {
			for _, o := range p.cfg.Observers {
				o.ConfigDone(run)
			}
		},
	}
}
