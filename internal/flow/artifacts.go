package flow

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/hdl"
	"repro/internal/xmlspec"
	"repro/internal/xsl"
)

// WriteDesignArtifacts writes a design's XML bundle under dir and, when
// translations is set, every dot/java/hds translation next to it. It
// returns label -> path for everything written, with the same labels
// the XML saver uses ("rtg", "datapath:<name>", …) plus "dot:<name>",
// "java:<name>" and "hds:<name>".
//
// This is the single writer behind the compile stage's WorkDir
// artifacts and the gnc -out/-emit output.
func WriteDesignArtifacts(design *xmlspec.Design, dir string, translations bool) (map[string]string, error) {
	files, err := xmlspec.SaveDesign(design, dir)
	if err != nil {
		return nil, err
	}
	if !translations {
		return files, nil
	}
	emit := func(label, name, content string) error {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			return err
		}
		files[label] = path
		return nil
	}
	rtgDoc, err := xmlspec.Marshal(design.RTG)
	if err != nil {
		return nil, err
	}
	if out, err := xsl.TransformBytes(xsl.RTGToDot(), rtgDoc); err != nil {
		return nil, err
	} else if err := emit("dot:rtg", "rtg.dot", out); err != nil {
		return nil, err
	}
	if out, err := xsl.TransformBytes(xsl.RTGToJava(), rtgDoc); err != nil {
		return nil, err
	} else if err := emit("java:rtg", "rtg.java", out); err != nil {
		return nil, err
	}
	for name, dp := range design.Datapaths {
		doc, err := xmlspec.Marshal(dp)
		if err != nil {
			return nil, err
		}
		if out, err := xsl.TransformBytes(xsl.DatapathToDot(), doc); err != nil {
			return nil, err
		} else if err := emit("dot:"+name, name+".dot", out); err != nil {
			return nil, err
		}
		if out, err := xsl.TransformBytes(xsl.DatapathToHDS(), doc); err != nil {
			return nil, err
		} else if err := emit("hds:"+name, name+".hds", out); err != nil {
			return nil, err
		}
	}
	for name, fsm := range design.FSMs {
		doc, err := xmlspec.Marshal(fsm)
		if err != nil {
			return nil, err
		}
		if out, err := xsl.TransformBytes(xsl.FSMToDot(), doc); err != nil {
			return nil, err
		} else if err := emit("dot:"+name, name+".dot", out); err != nil {
			return nil, err
		}
		if out, err := xsl.TransformBytes(xsl.FSMToJava(), doc); err != nil {
			return nil, err
		} else if err := emit("java:"+name, name+".java", out); err != nil {
			return nil, err
		}
	}
	return files, nil
}

// TranslateDocument renders one XML document (datapath, fsm or rtg) in
// a target language: "dot" for any dialect, "vhdl"/"verilog" for
// hardware documents, "java" for behavioural code, "hds" for the
// simulator text. This is the dispatch behind xml2dot and xml2hdl —
// the paper's user-extensible translation arrows in one place.
func TranslateDocument(data []byte, target string) (string, error) {
	root, err := xsl.Parse(data)
	if err != nil {
		return "", err
	}
	if target == "dot" {
		sheet, err := xsl.ForDocument(root)
		if err != nil {
			return "", err
		}
		return xsl.Transform(sheet, root)
	}
	switch root.Name {
	case "datapath":
		dp, err := xmlspec.ParseDatapath(data)
		if err != nil {
			return "", err
		}
		switch target {
		case "vhdl":
			return hdl.VHDLDatapath(dp, nil)
		case "verilog":
			return hdl.VerilogDatapath(dp, nil)
		case "hds":
			return xsl.TransformBytes(xsl.DatapathToHDS(), data)
		}
		return "", fmt.Errorf("flow: datapath documents translate to dot, vhdl, verilog or hds (not %q)", target)
	case "fsm":
		f, err := xmlspec.ParseFSM(data)
		if err != nil {
			return "", err
		}
		switch target {
		case "vhdl":
			return hdl.VHDLFSM(f)
		case "verilog":
			return hdl.VerilogFSM(f)
		case "java":
			return xsl.TransformBytes(xsl.FSMToJava(), data)
		}
		return "", fmt.Errorf("flow: fsm documents translate to dot, vhdl, verilog or java (not %q)", target)
	case "rtg":
		switch target {
		case "java":
			return xsl.TransformBytes(xsl.RTGToJava(), data)
		}
		return "", fmt.Errorf("flow: rtg documents translate to dot or java (not %q)", target)
	}
	return "", fmt.Errorf("flow: unknown document root %q", root.Name)
}
