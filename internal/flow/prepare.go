package flow

import (
	"fmt"

	"repro/internal/xmlspec"
)

// PreparedDesign is the amortized entry point of the flow: compile and
// elaborate once, then Run (or Simulate) the same wired design many
// times. Each round reseeds every shared memory from the prepared seed
// images and walks the RTG; because the controller keeps its
// reconfiguration replay cache across rounds, every round after the
// first resets and replays the cached component graphs instead of
// rebuilding them. Repeat-heavy workloads — benchmark best-of-N reps,
// verify sweeps, iterative RodFIter/erasure-style loops — pay for
// elaboration once instead of once per run.
//
// A PreparedDesign is not safe for concurrent use: it owns live
// simulators. Prepare one per goroutine (the suite runner prepares per
// case, which keeps cases independent).
type PreparedDesign struct {
	p        *Pipeline
	name     string
	compiled *Compiled // nil when prepared from a loaded design
	elab     *Elaborated
	seeds    map[string][]int64
	runs     int
}

// Prepare compiles and elaborates one source, capturing its input
// images as the seeds every subsequent Run starts from. The returned
// design's Run amortizes the compile and elaborate stages across calls.
func (p *Pipeline) Prepare(src Source) (*PreparedDesign, error) {
	c, err := p.Compile(src)
	if err != nil {
		return nil, err
	}
	e, err := p.Elaborate(c)
	if err != nil {
		return nil, err
	}
	d := &PreparedDesign{p: p, name: src.name(), compiled: c, elab: e, seeds: map[string][]int64{}}
	for name, depth := range src.ArraySizes {
		words := make([]int64, depth)
		copy(words, src.Inputs[name])
		d.seeds[name] = words
	}
	return d, nil
}

// PrepareDesign builds a reusable prepared design from an
// already-compiled design (e.g. an rtg.xml bundle loaded from disk).
// Seeds start empty — every shared memory zero-fills on each Run —
// until SetSeed provides contents.
func (p *Pipeline) PrepareDesign(design *xmlspec.Design) (*PreparedDesign, error) {
	e, err := p.ElaborateDesign(design)
	if err != nil {
		return nil, err
	}
	return &PreparedDesign{p: p, name: e.Name, elab: e, seeds: map[string][]int64{}}, nil
}

// Name returns the prepared case or design name.
func (d *PreparedDesign) Name() string { return d.name }

// Compiled returns the compile-stage result (nil when prepared from a
// loaded design).
func (d *PreparedDesign) Compiled() *Compiled { return d.compiled }

// Elaborated returns the underlying elaborated design.
func (d *PreparedDesign) Elaborated() *Elaborated { return d.elab }

// Runs reports how many simulation rounds this design has served.
func (d *PreparedDesign) Runs() int { return d.runs }

// SetSeed replaces the contents a shared memory is reseeded with at the
// start of every Run. The words are copied. Unknown memories error.
func (d *PreparedDesign) SetSeed(name string, words []int64) error {
	for _, id := range d.elab.MemoryIDs() {
		if id == name {
			d.seeds[name] = append([]int64(nil), words...)
			return nil
		}
	}
	return fmt.Errorf("flow: %s: unknown shared memory %q", d.name, name)
}

// Simulate reseeds every shared memory (seed image, or zeros when none
// was provided) and walks the RTG once, streaming to the pipeline's
// observers exactly like Pipeline.Simulate.
func (d *PreparedDesign) Simulate() (*SimResult, error) {
	for _, id := range d.elab.MemoryIDs() {
		if err := d.elab.LoadMemory(id, d.seeds[id]); err != nil {
			return nil, err
		}
	}
	d.runs++
	return d.p.Simulate(d.elab)
}

// Run is one full verification round on the prepared design: reseed,
// simulate, and — when the design was prepared from source and the
// simulation completed — verify against the golden interpreter. The
// Verdict is nil when no verification ran (loaded design or exhausted
// cycle cap), mirroring Pipeline.Run.
func (d *PreparedDesign) Run() (*Outcome, error) {
	s, err := d.Simulate()
	if err != nil {
		return nil, err
	}
	out := &Outcome{Compiled: d.compiled, Sim: s}
	if d.compiled == nil || !s.Completed {
		return out, nil
	}
	v, err := d.p.Verify(d.compiled, s)
	if err != nil {
		return nil, err
	}
	out.Verdict = v
	return out, nil
}
