package flow

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/xmlspec"
)

// PreparedDesign is the amortized entry point of the flow: compile and
// elaborate once, then Run (or Simulate) the same wired design many
// times. Each round reseeds every shared memory from the prepared seed
// images and walks the RTG; because the controller keeps its
// reconfiguration replay cache across rounds, every round after the
// first resets and replays the cached component graphs instead of
// rebuilding them. Repeat-heavy workloads — benchmark best-of-N reps,
// verify sweeps, iterative RodFIter/erasure-style loops — pay for
// elaboration once instead of once per run.
//
// A PreparedDesign owns live simulators, so rounds are inherently
// serial — but the design is safe for concurrent use: Run, Simulate,
// SetSeed and their context variants serialize on an internal mutex, so
// each reseed-simulate round is atomic with respect to other
// goroutines. Concurrent callers share one cache and take turns; for
// parallel rounds, prepare one design per goroutine (the suite runner
// prepares per case), or pool sessions (see Session).
type PreparedDesign struct {
	p        *Pipeline
	name     string
	compiled *Compiled // nil when prepared from a loaded design
	elab     *Elaborated

	// mu makes each reseed-and-simulate round atomic; it also guards
	// seeds and runs.
	mu    sync.Mutex
	seeds map[string][]int64
	runs  int
}

// Prepare compiles and elaborates one source, capturing its input
// images as the seeds every subsequent Run starts from. The returned
// design's Run amortizes the compile and elaborate stages across calls.
func (p *Pipeline) Prepare(src Source) (*PreparedDesign, error) {
	c, err := p.Compile(src)
	if err != nil {
		return nil, err
	}
	e, err := p.Elaborate(c)
	if err != nil {
		return nil, err
	}
	d := &PreparedDesign{p: p, name: src.name(), compiled: c, elab: e, seeds: map[string][]int64{}}
	for name, depth := range src.ArraySizes {
		words := make([]int64, depth)
		copy(words, src.Inputs[name])
		d.seeds[name] = words
	}
	return d, nil
}

// PrepareContext is Prepare under a per-call cancellation context: the
// compile and elaborate stages honor ctx, but the returned design does
// NOT keep it — later rounds poll the pipeline's configured context (or
// a RunContext/SimulateContext per-round one), so a session prepared
// under a request deadline outlives that request. A nil ctx is plain
// Prepare.
func (p *Pipeline) PrepareContext(ctx context.Context, src Source) (*PreparedDesign, error) {
	if ctx == nil {
		return p.Prepare(src)
	}
	pc := *p
	pc.cfg.Context = ctx
	d, err := pc.Prepare(src)
	if err != nil {
		return nil, err
	}
	// Detach the prepare-time context: the controller captured ctx at
	// elaboration, and it must not cancel future rounds.
	d.p = p
	d.elab.Controller.SetContext(p.cfg.Context)
	return d, nil
}

// PrepareDesign builds a reusable prepared design from an
// already-compiled design (e.g. an rtg.xml bundle loaded from disk).
// Seeds start empty — every shared memory zero-fills on each Run —
// until SetSeed provides contents.
func (p *Pipeline) PrepareDesign(design *xmlspec.Design) (*PreparedDesign, error) {
	e, err := p.ElaborateDesign(design)
	if err != nil {
		return nil, err
	}
	return &PreparedDesign{p: p, name: e.Name, elab: e, seeds: map[string][]int64{}}, nil
}

// PrepareDesignContext is PrepareDesign under a per-call cancellation
// context, with the same detachment semantics as PrepareContext.
func (p *Pipeline) PrepareDesignContext(ctx context.Context, design *xmlspec.Design) (*PreparedDesign, error) {
	if ctx == nil {
		return p.PrepareDesign(design)
	}
	pc := *p
	pc.cfg.Context = ctx
	d, err := pc.PrepareDesign(design)
	if err != nil {
		return nil, err
	}
	d.p = p
	d.elab.Controller.SetContext(p.cfg.Context)
	return d, nil
}

// Name returns the prepared case or design name.
func (d *PreparedDesign) Name() string { return d.name }

// Compiled returns the compile-stage result (nil when prepared from a
// loaded design).
func (d *PreparedDesign) Compiled() *Compiled { return d.compiled }

// Elaborated returns the underlying elaborated design.
func (d *PreparedDesign) Elaborated() *Elaborated { return d.elab }

// Runs reports how many simulation rounds this design has served.
func (d *PreparedDesign) Runs() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.runs
}

// SetSeed replaces the contents a shared memory is reseeded with at the
// start of every Run. The words are copied. Unknown memories error.
func (d *PreparedDesign) SetSeed(name string, words []int64) error {
	for _, id := range d.elab.MemoryIDs() {
		if id == name {
			d.mu.Lock()
			d.seeds[name] = append([]int64(nil), words...)
			d.mu.Unlock()
			return nil
		}
	}
	return fmt.Errorf("flow: %s: unknown shared memory %q", d.name, name)
}

// Simulate reseeds every shared memory (seed image, or zeros when none
// was provided) and walks the RTG once, streaming to the pipeline's
// observers exactly like Pipeline.Simulate. The round — reseed plus
// walk — is atomic with respect to concurrent rounds.
func (d *PreparedDesign) Simulate() (*SimResult, error) {
	return d.SimulateContext(nil)
}

// SimulateContext is Simulate under a per-round cancellation context
// (nil falls back to the pipeline's configured context).
func (d *PreparedDesign) SimulateContext(ctx context.Context) (*SimResult, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, id := range d.elab.MemoryIDs() {
		if err := d.elab.LoadMemory(id, d.seeds[id]); err != nil {
			return nil, err
		}
	}
	d.runs++
	return d.p.simulateCtx(d.elab, ctx)
}

// SimulateGang runs one RTG walk for a whole population of lanes: lane
// i starts from the prepared seeds overlaid with laneSeeds[i] (keyed by
// shared-memory id; a nil map or missing id keeps the prepared seed),
// and every lane walks the same configuration sequence. On a
// gang-capable backend (see BackendInfo.SupportsGang) the lanes are
// evaluated in lockstep inside one compiled instance per configuration;
// other backends run the lanes sequentially on the replay cache. The
// whole gang is one atomic round with respect to concurrent rounds, and
// observers are not streamed per lane.
func (d *PreparedDesign) SimulateGang(laneSeeds []map[string][]int64) ([]*SimResult, error) {
	return d.SimulateGangContext(nil, laneSeeds)
}

// SimulateGangContext is SimulateGang under a per-round cancellation
// context (nil falls back to the pipeline's configured context).
func (d *PreparedDesign) SimulateGangContext(ctx context.Context, laneSeeds []map[string][]int64) ([]*SimResult, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	// Reseed the controller store: lanes without an override start from
	// the prepared seed images, exactly like a plain Simulate round.
	for _, id := range d.elab.MemoryIDs() {
		if err := d.elab.LoadMemory(id, d.seeds[id]); err != nil {
			return nil, err
		}
	}
	lanes, err := d.elab.Controller.ExecuteGangContext(ctx, laneSeeds)
	if err != nil {
		return nil, err
	}
	d.runs++
	out := make([]*SimResult, len(lanes))
	for l, lane := range lanes {
		s := &SimResult{
			Runs:      lane.Exec.Runs,
			Completed: lane.Exec.Completed,
			Memories:  lane.Memories,
		}
		s.TotalCycles = lane.Exec.TotalCycles
		for _, run := range lane.Exec.Runs {
			s.Events += run.Events
			s.SimWall += run.Wall
		}
		out[l] = s
	}
	return out, nil
}

// Run is one full verification round on the prepared design: reseed,
// simulate, and — when the design was prepared from source and the
// simulation completed — verify against the golden interpreter. The
// Verdict is nil when no verification ran (loaded design or exhausted
// cycle cap), mirroring Pipeline.Run.
func (d *PreparedDesign) Run() (*Outcome, error) {
	return d.RunContext(nil)
}

// RunContext is Run under a per-round cancellation context. The
// simulate round is serialized with concurrent rounds; the verify stage
// runs outside the round lock (it touches only this round's results),
// so one goroutine's verification overlaps the next goroutine's
// simulation.
func (d *PreparedDesign) RunContext(ctx context.Context) (*Outcome, error) {
	s, err := d.SimulateContext(ctx)
	if err != nil {
		return nil, err
	}
	out := &Outcome{Compiled: d.compiled, Sim: s}
	if d.compiled == nil || !s.Completed {
		return out, nil
	}
	v, err := d.p.Verify(d.compiled, s)
	if err != nil {
		return nil, err
	}
	out.Verdict = v
	return out, nil
}
