package flow

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/hades"
	"repro/internal/netlist"
	"repro/internal/rtg"
)

// StageName identifies a pipeline stage in observer callbacks.
type StageName string

// The pipeline stages, in execution order.
const (
	StageCompile   StageName = "compile"
	StageElaborate StageName = "elaborate"
	StageSimulate  StageName = "simulate"
	StageVerify    StageName = "verify"
)

// Observer streams pipeline progress: stage boundaries, each
// configuration's live elaboration (the probe/VCD attachment point) and
// each configuration's completion with its kernel statistics. Reporting
// sinks — human logs, JSONL, bench metadata, waveform taps — implement
// this instead of growing fields on result structs.
//
// Embed BaseObserver to implement only the callbacks you care about.
type Observer interface {
	// StageBegin fires before a stage runs; name is the case or design
	// name the pipeline is working on.
	StageBegin(stage StageName, name string)
	// StageEnd fires after a stage, with its error (nil on success) and
	// wall time.
	StageEnd(stage StageName, name string, err error, wall time.Duration)
	// ConfigElaborated fires when a configuration's component graph is
	// live on its simulator, before the run starts.
	ConfigElaborated(cfgID string, el *netlist.Elaboration)
	// ConfigDone streams each configuration's run record — cycles,
	// kernel stats, wall time — as soon as that configuration finishes.
	ConfigDone(run rtg.ConfigRun)
}

// BaseObserver is a no-op Observer to embed.
type BaseObserver struct{}

// StageBegin implements Observer.
func (BaseObserver) StageBegin(StageName, string) {}

// StageEnd implements Observer.
func (BaseObserver) StageEnd(StageName, string, error, time.Duration) {}

// ConfigElaborated implements Observer.
func (BaseObserver) ConfigElaborated(string, *netlist.Elaboration) {}

// ConfigDone implements Observer.
func (BaseObserver) ConfigDone(rtg.ConfigRun) {}

// observeStage brackets fn with StageBegin/StageEnd notifications.
func (p *Pipeline) observeStage(stage StageName, name string, fn func() error) error {
	for _, o := range p.cfg.Observers {
		o.StageBegin(stage, name)
	}
	start := time.Now()
	err := fn()
	wall := time.Since(start)
	for _, o := range p.cfg.Observers {
		o.StageEnd(stage, name, err, wall)
	}
	return err
}

// ProgressObserver prints one line per completed configuration and per
// failed stage — the streaming report hsim shows during a simulation.
type ProgressObserver struct {
	BaseObserver
	W io.Writer
}

// NewProgressObserver reports to w.
func NewProgressObserver(w io.Writer) *ProgressObserver { return &ProgressObserver{W: w} }

// ConfigDone implements Observer.
func (p *ProgressObserver) ConfigDone(run rtg.ConfigRun) {
	fmt.Fprintf(p.W, "configuration %-8s cycles=%-8d events=%-10d final=%-6s kernel=%s wall=%v\n",
		run.ID, run.Cycles, run.Events, run.FinalState, run.Kernel, run.Wall)
}

// StageEnd implements Observer.
func (p *ProgressObserver) StageEnd(stage StageName, name string, err error, _ time.Duration) {
	if err != nil {
		fmt.Fprintf(p.W, "stage %s %s: %v\n", stage, name, err)
	}
}

// VCDObserver taps every configuration's simulator with a VCD waveform
// writer, dumping to <prefix>.<cfg>.vcd. The files are closed when the
// simulate stage ends.
//
// Attach one VCDObserver per pipeline run: it closes every open dump
// when any simulate stage ends, so sharing one instance across
// concurrently-running cases (e.g. via core.Options.Observers with a
// parallel Runner) would close files mid-write. The internal state is
// mutex-guarded, but the close-on-stage-end semantics are inherently
// per-run.
type VCDObserver struct {
	BaseObserver
	Prefix string
	// Log, when set, receives one line per dump file created.
	Log io.Writer

	mu    sync.Mutex
	files []*os.File
}

// NewVCDObserver dumps waveforms to <prefix>.<cfg>.vcd, logging each
// file to log when non-nil.
func NewVCDObserver(prefix string, log io.Writer) *VCDObserver {
	return &VCDObserver{Prefix: prefix, Log: log}
}

// ConfigElaborated implements Observer.
func (v *VCDObserver) ConfigElaborated(cfgID string, el *netlist.Elaboration) {
	path := fmt.Sprintf("%s.%s.vcd", v.Prefix, cfgID)
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flow: vcd:", err)
		return
	}
	v.mu.Lock()
	v.files = append(v.files, f)
	v.mu.Unlock()
	w := hades.NewVCDWriter(f)
	w.AddAll(el.Sim)
	w.Header(cfgID)
	if v.Log != nil {
		fmt.Fprintln(v.Log, "vcd:", path)
	}
}

// StageEnd implements Observer; it closes the dump files once the
// simulate stage is over.
func (v *VCDObserver) StageEnd(stage StageName, _ string, _ error, _ time.Duration) {
	if stage != StageSimulate {
		return
	}
	v.mu.Lock()
	files := v.files
	v.files = nil
	v.mu.Unlock()
	for _, f := range files {
		f.Close()
	}
}
