package workloads

// NewtonSource is the MiniJ fixed-point iterative kernel: per input, a
// fixed number of Newton refinement steps y <- (y + x/y) / 2 toward the
// integer square root, clamped so the divisor never reaches zero — a
// functional-iteration loop in the spirit of the Rodrigues-vector
// refinement of fast attitude reconstruction (RodFIter).
const NewtonSource = `
// Fixed-point Newton iteration toward isqrt(x), iters refinement steps.
void newton(int[] in, int[] out, int n, int iters) {
  int i;
  for (i = 0; i < n; i = i + 1) {
    int x = in[i];
    int y = x;
    if (y < 1) {
      y = 1;
    }
    int t;
    for (t = 0; t < iters; t = t + 1) {
      y = (y + x / y) >> 1;
      if (y < 1) {
        y = 1;
      }
    }
    out[i] = y;
  }
}
`

// GenRadicands produces a deterministic stream of non-negative 24-bit
// inputs for the Newton kernel.
func GenRadicands(n int, seed uint64) []int64 {
	x := make([]int64, n)
	s := newLCG(seed)
	for i := range x {
		x[i] = int64(s.next() & 0xFFFFFF)
	}
	return x
}

// RefNewton is the pure-Go golden model: it replays the exact clamped
// iteration of the MiniJ kernel (Java-truncating division, arithmetic
// halving), not the mathematical square root — the reference pins the
// fixed-point trajectory, including its rounding behaviour.
func RefNewton(in []int64, iters int) []int64 {
	out := make([]int64, len(in))
	for i, x := range in {
		y := x
		if y < 1 {
			y = 1
		}
		for t := 0; t < iters; t++ {
			y = (y + x/y) >> 1
			if y < 1 {
				y = 1
			}
		}
		out[i] = y
	}
	return out
}

func init() {
	MustRegister(&Family{
		FamilyName: "newton",
		FamilyDoc:  "fixed-point Newton/RodFIter-style functional iteration toward integer square roots",
		Schema: []Param{
			{Name: "n", Doc: "input count", Default: 256, Min: 1, Max: 1 << 20},
			{Name: "iters", Doc: "refinement steps per input", Default: 16, Min: 1, Max: 64},
			{Name: "seed", Doc: "input PRNG seed", Default: 11, Min: 0, Max: 1 << 30},
		},
		PresetList: []Preset{
			{Name: "newton-256", Desc: "Newton isqrt iteration, 256 inputs x 16 steps",
				Values: Values{"n": 256, "iters": 16}, Pinned: true},
			{Name: "newton-1024", Desc: "Newton isqrt iteration, 1024 inputs x 24 steps",
				Values: Values{"n": 1024, "iters": 24}},
			{Name: "newton", Desc: "regression-suite Newton iteration, 64 inputs x 12 steps",
				Values: Values{"n": 64, "iters": 12}, Suite: true},
		},
		EmitSource: func(Values) (string, string) { return NewtonSource, "newton" },
		GenInputs: func(v Values) (map[string]int, map[string]int64, map[string][]int64) {
			n := v["n"]
			sizes := map[string]int{"in": n, "out": n}
			args := map[string]int64{"n": int64(n), "iters": int64(v["iters"])}
			inputs := map[string][]int64{"in": GenRadicands(n, uint64(v["seed"]))}
			return sizes, args, inputs
		},
		Golden: func(v Values, inputs map[string][]int64) map[string][]int64 {
			return map[string][]int64{
				"in":  cloneWords(inputs["in"]),
				"out": RefNewton(inputs["in"], v["iters"]),
			}
		},
	})
}
