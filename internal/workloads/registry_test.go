package workloads

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/lang"
)

// TestEveryFamilyReferenceMatchesInterpreter is the registry's core
// contract: for every family, the pure-Go reference model must agree
// bit-for-bit with the golden interpreter executing the emitted MiniJ
// source over the generated inputs.
func TestEveryFamilyReferenceMatchesInterpreter(t *testing.T) {
	small := map[string]Values{
		"fdct1":   {"pixels": 128},
		"fdct2":   {"pixels": 128},
		"hamming": {"words": 32},
		"matmul":  {"n": 6},
		"fir":     {"n": 32, "taps": 5},
		"erasure": {"k": 3, "stripes": 8},
		"newton":  {"n": 32, "iters": 10},
	}
	for _, w := range All() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			c, err := Build(w.Name(), small[w.Name()])
			if err != nil {
				t.Fatal(err)
			}
			if len(c.Expected) == 0 {
				t.Fatal("no reference expectations")
			}
			prog, err := lang.Parse(c.Source)
			if err != nil {
				t.Fatalf("emitted source does not parse: %v", err)
			}
			f, ok := prog.FindFunc(c.Func)
			if !ok {
				t.Fatalf("no function %q in emitted source", c.Func)
			}
			mems := map[string][]int64{}
			for name, depth := range c.ArraySizes {
				words := make([]int64, depth)
				copy(words, c.Inputs[name])
				mems[name] = words
			}
			if _, err := interp.Run(f, mems, c.ScalarArgs, interp.Options{}); err != nil {
				t.Fatal(err)
			}
			for name, want := range c.Expected {
				got, ok := mems[name]
				if !ok {
					t.Fatalf("reference models array %q the case does not declare", name)
				}
				if len(want) != len(got) {
					t.Fatalf("%s: reference length %d, array depth %d", name, len(want), len(got))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s[%d]: interpreter %d, reference %d", name, i, got[i], want[i])
					}
				}
			}
		})
	}
}

func TestRegistryHasAllFamilies(t *testing.T) {
	want := []string{"erasure", "fdct1", "fdct2", "fir", "hamming", "matmul", "newton"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for _, w := range All() {
		var suite, bench bool
		for _, p := range w.Presets() {
			if p.Suite {
				suite = true
			} else {
				bench = true
			}
		}
		if !suite || !bench {
			t.Errorf("%s: needs both a suite preset and a bench preset (suite=%v bench=%v)",
				w.Name(), suite, bench)
		}
	}
}

func TestLookupUnknownWorkload(t *testing.T) {
	_, err := Lookup("nope")
	if err == nil || !strings.Contains(err.Error(), `unknown workload "nope"`) {
		t.Fatalf("err = %v", err)
	}
	// The error names the known families, so a CLI typo is self-healing.
	if !strings.Contains(err.Error(), "hamming") {
		t.Fatalf("error does not list known families: %v", err)
	}
	if _, err := Build("nope", nil); err == nil {
		t.Fatal("Build on unknown workload must fail")
	}
}

func TestResolveRejectsUnknownParameter(t *testing.T) {
	_, err := Build("hamming", Values{"pixel": 64})
	if err == nil || !strings.Contains(err.Error(), `no parameter "pixel"`) {
		t.Fatalf("err = %v", err)
	}
}

func TestResolveRejectsOutOfRange(t *testing.T) {
	for _, tc := range []struct {
		workload string
		values   Values
	}{
		{"fdct1", Values{"pixels": 0}},       // below Min
		{"fdct1", Values{"pixels": 1 << 21}}, // above Max
		{"matmul", Values{"n": 65}},          // above Max
		{"erasure", Values{"k": 1}},          // below Min
		{"newton", Values{"iters": -1}},      // below Min
		{"fir", Values{"taps": 0, "n": 16}},  // below Min with a valid sibling
		{"hamming", Values{"seed": -5}},      // negative seed
	} {
		if _, err := Build(tc.workload, tc.values); err == nil ||
			!strings.Contains(err.Error(), "outside") {
			t.Errorf("%s %v: err = %v, want out-of-range", tc.workload, tc.values, err)
		}
	}
}

func TestResolveAppliesDefaultsWithoutMutating(t *testing.T) {
	w, err := Lookup("fir")
	if err != nil {
		t.Fatal(err)
	}
	in := Values{"n": 10}
	rv, err := Resolve(w, in)
	if err != nil {
		t.Fatal(err)
	}
	if rv["n"] != 10 || rv["taps"] != 8 || rv["seed"] != 3 {
		t.Fatalf("resolved = %v", rv)
	}
	if len(in) != 1 {
		t.Fatalf("input values mutated: %v", in)
	}
}

func TestDuplicateRegistrationRejected(t *testing.T) {
	r := NewRegistry()
	fam := func() *Family {
		return &Family{
			FamilyName: "dup",
			FamilyDoc:  "test family",
			EmitSource: func(Values) (string, string) { return "", "f" },
			GenInputs: func(Values) (map[string]int, map[string]int64, map[string][]int64) {
				return nil, nil, nil
			},
			Golden: func(Values, map[string][]int64) map[string][]int64 { return nil },
		}
	}
	if err := r.Register(fam()); err != nil {
		t.Fatal(err)
	}
	err := r.Register(fam())
	if err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("err = %v", err)
	}
}

func TestPresetNamesGloballyUnique(t *testing.T) {
	fam := func(name, preset string) *Family {
		return &Family{
			FamilyName: name,
			PresetList: []Preset{{Name: preset}},
			EmitSource: func(Values) (string, string) { return "", "f" },
			GenInputs: func(Values) (map[string]int, map[string]int64, map[string][]int64) {
				return nil, nil, nil
			},
			Golden: func(Values, map[string][]int64) map[string][]int64 { return nil },
		}
	}
	r := NewRegistry()
	if err := r.Register(fam("a", "shared-name")); err != nil {
		t.Fatal(err)
	}
	err := r.Register(fam("b", "shared-name"))
	if err == nil || !strings.Contains(err.Error(), `already belongs to family "a"`) {
		t.Fatalf("err = %v", err)
	}
	// The failed registration must leave no trace: its (unique) preset
	// names are free for a later family.
	if _, err := r.Lookup("b"); err == nil {
		t.Fatal("failed registration must not register the family")
	}
	if err := r.Register(fam("c", "other-name")); err != nil {
		t.Fatal(err)
	}
}

func TestBuildWorkloadInputsSkipsReference(t *testing.T) {
	w, err := Lookup("matmul")
	if err != nil {
		t.Fatal(err)
	}
	c, err := BuildWorkloadInputs(w, Values{"n": 4})
	if err != nil {
		t.Fatal(err)
	}
	if c.Expected != nil {
		t.Fatal("inputs-only build must not compute Expected")
	}
	full, err := BuildWorkload(w, Values{"n": 4})
	if err != nil {
		t.Fatal(err)
	}
	c.Expected = full.Expected
	if !reflect.DeepEqual(c, full) {
		t.Fatal("inputs-only build must match the full build modulo Expected")
	}
}

func TestRegisterValidatesSchemaAndPresets(t *testing.T) {
	base := func() *Family {
		return &Family{
			FamilyName: "bad",
			EmitSource: func(Values) (string, string) { return "", "f" },
			GenInputs: func(Values) (map[string]int, map[string]int64, map[string][]int64) {
				return nil, nil, nil
			},
			Golden: func(Values, map[string][]int64) map[string][]int64 { return nil },
		}
	}
	for _, tc := range []struct {
		name   string
		mutate func(*Family)
		want   string
	}{
		{"empty name", func(f *Family) { f.FamilyName = "" }, "empty workload name"},
		{"empty param", func(f *Family) { f.Schema = []Param{{Name: ""}} }, "empty parameter name"},
		{"dup param", func(f *Family) {
			f.Schema = []Param{{Name: "n", Max: 9}, {Name: "n", Max: 9}}
		}, "duplicate parameter"},
		{"inverted range", func(f *Family) {
			f.Schema = []Param{{Name: "n", Min: 5, Max: 1, Default: 5}}
		}, "min 5 > max 1"},
		{"default out of range", func(f *Family) {
			f.Schema = []Param{{Name: "n", Min: 1, Max: 4, Default: 9}}
		}, "outside"},
		{"empty preset name", func(f *Family) { f.PresetList = []Preset{{}} }, "empty preset name"},
		{"dup preset", func(f *Family) {
			f.PresetList = []Preset{{Name: "p"}, {Name: "p"}}
		}, "duplicate preset"},
		{"preset fails schema", func(f *Family) {
			f.Schema = []Param{{Name: "n", Min: 1, Max: 4, Default: 2}}
			f.PresetList = []Preset{{Name: "p", Values: Values{"n": 99}}}
		}, "outside"},
	} {
		r := NewRegistry()
		f := base()
		tc.mutate(f)
		if err := r.Register(f); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}

func TestBuildIsDeterministic(t *testing.T) {
	a, err := Build("erasure", Values{"stripes": 12})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build("erasure", Values{"stripes": 12})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical parameterizations must build identical cases")
	}
}

func TestValuesStringStable(t *testing.T) {
	v := Values{"taps": 8, "n": 64}
	if got := v.String(); got != "n=64,taps=8" {
		t.Fatalf("String() = %q", got)
	}
}
