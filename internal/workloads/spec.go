package workloads

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec parses the inline workload spec syntax shared by the CLI
// -workload flag and the simd server's request Workload field:
// "name[,param=value...]", e.g. "fir,n=1024,taps=16". Parameters are
// syntax-checked only — range validation against the family's schema
// happens in Resolve, where the registry's self-describing errors live.
func ParseSpec(arg string) (name string, v Values, err error) {
	parts := strings.Split(arg, ",")
	if parts[0] == "" {
		return "", nil, fmt.Errorf("workloads: empty workload name in %q", arg)
	}
	if strings.Contains(parts[0], "=") {
		return "", nil, fmt.Errorf("workloads: workload name must come before parameters in %q", arg)
	}
	v = Values{}
	for _, part := range parts[1:] {
		if part == "" {
			continue
		}
		pname, pval, ok := strings.Cut(part, "=")
		if !ok || pname == "" {
			return "", nil, fmt.Errorf("workloads: expected param=value, got %q", part)
		}
		n, err := strconv.Atoi(pval)
		if err != nil {
			return "", nil, fmt.Errorf("workloads: bad value in %q: %v", part, err)
		}
		v[pname] = n
	}
	return parts[0], v, nil
}
