package workloads

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/interp"
	"repro/internal/lang"
)

func TestDCTCoefficientsSane(t *testing.T) {
	// DC row: all coefficients equal and positive.
	c0 := dctCoef(0, 0)
	for x := 1; x < 8; x++ {
		if dctCoef(0, x) != c0 {
			t.Fatalf("DC coefficients differ: %d vs %d", dctCoef(0, x), c0)
		}
	}
	if c0 <= 0 {
		t.Fatalf("c0=%d", c0)
	}
	// Odd rows are antisymmetric: C[u][x] = -C[u][7-x] for odd u.
	for u := 1; u < 8; u += 2 {
		for x := 0; x < 8; x++ {
			if dctCoef(u, x) != -dctCoef(u, 7-x) {
				t.Fatalf("antisymmetry broken at u=%d x=%d", u, x)
			}
		}
	}
}

func TestFDCTSourceParsesAndAnalyzes(t *testing.T) {
	for _, two := range []bool{false, true} {
		src := FDCTSource(two)
		prog, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("two=%v: %v", two, err)
		}
		info, err := lang.Analyze(prog)
		if err != nil {
			t.Fatalf("two=%v: %v", two, err)
		}
		want := 1
		if two {
			want = 2
		}
		if info.Funcs["fdct"].Partitions != want {
			t.Fatalf("two=%v partitions=%d", two, info.Funcs["fdct"].Partitions)
		}
	}
}

func TestFDCT1AndFDCT2AgreeOnReference(t *testing.T) {
	// The partition marker must not change functional behaviour.
	pixels := 128
	run := func(two bool) []int64 {
		src, sizes, args, inputs := FDCTCase("x", pixels, two, 7)
		prog, err := lang.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		f, _ := prog.FindFunc("fdct")
		mems := map[string][]int64{}
		for name, depth := range sizes {
			w := make([]int64, depth)
			copy(w, inputs[name])
			mems[name] = w
		}
		if _, err := interp.Run(f, mems, args, interp.Options{}); err != nil {
			t.Fatal(err)
		}
		return mems["out"]
	}
	a, b := run(false), run(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("out[%d]: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestFDCTDCEnergy(t *testing.T) {
	// A constant block transforms to a single DC value and zero ACs.
	src := FDCTSource(false)
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := prog.FindFunc("fdct")
	img := make([]int64, 64)
	for i := range img {
		img[i] = 100
	}
	mems := map[string][]int64{"img": img, "tmp": make([]int64, 64), "out": make([]int64, 64)}
	if _, err := interp.Run(f, mems, map[string]int64{"nblocks": 1}, interp.Options{}); err != nil {
		t.Fatal(err)
	}
	out := mems["out"]
	if out[0] <= 0 {
		t.Fatalf("DC=%d must be positive", out[0])
	}
	for i := 1; i < 64; i++ {
		if out[i] < -8 || out[i] > 8 { // rounding noise only
			t.Fatalf("AC[%d]=%d not near zero: %v", i, out[i], out[:16])
		}
	}
}

func TestGenImageDeterministicAnd8Bit(t *testing.T) {
	a := GenImage(256, 3)
	b := GenImage(256, 3)
	c := GenImage(256, 4)
	diff := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not deterministic")
		}
		if a[i] < 0 || a[i] > 255 {
			t.Fatalf("pixel %d out of range", a[i])
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds must differ")
	}
}

func TestHammingEncodeDecodeProperty(t *testing.T) {
	prog, err := lang.Parse(HammingSource)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := prog.FindFunc("hamming")
	// Property: for any nibble and any single-bit error position, the
	// decoder recovers the nibble.
	prop := func(nib uint8, bitPos uint8) bool {
		n := int64(nib & 0xF)
		cw := HammingEncode(n)
		cw ^= 1 << uint(bitPos%7)
		in := []int64{cw}
		out := []int64{0}
		if _, err := interp.Run(f, map[string][]int64{"in": in, "out": out},
			map[string]int64{"n": 1}, interp.Options{}); err != nil {
			return false
		}
		return out[0] == n
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHammingNoErrorPassThrough(t *testing.T) {
	prog, _ := lang.Parse(HammingSource)
	f, _ := prog.FindFunc("hamming")
	for nib := int64(0); nib < 16; nib++ {
		in := []int64{HammingEncode(nib)}
		out := []int64{-1}
		if _, err := interp.Run(f, map[string][]int64{"in": in, "out": out},
			map[string]int64{"n": 1}, interp.Options{}); err != nil {
			t.Fatal(err)
		}
		if out[0] != nib {
			t.Fatalf("nib=%d decoded=%d", nib, out[0])
		}
	}
}

func TestGenCodewordsExpectations(t *testing.T) {
	codewords, expected := GenCodewords(30, 11)
	prog, _ := lang.Parse(HammingSource)
	f, _ := prog.FindFunc("hamming")
	out := make([]int64, 30)
	if _, err := interp.Run(f, map[string][]int64{"in": codewords, "out": out},
		map[string]int64{"n": 30}, interp.Options{}); err != nil {
		t.Fatal(err)
	}
	for i := range expected {
		if out[i] != expected[i] {
			t.Fatalf("word %d: decoded %d want %d", i, out[i], expected[i])
		}
	}
}

func TestFDCTCaseShapes(t *testing.T) {
	src, sizes, args, inputs := FDCTCase("t", 130, false, 1)
	if args["nblocks"] != 2 {
		t.Fatalf("nblocks=%d", args["nblocks"])
	}
	if sizes["img"] != 128 || len(inputs["img"]) != 128 {
		t.Fatalf("sizes=%v", sizes)
	}
	if !strings.Contains(src, "void fdct") {
		t.Fatal("source mangled")
	}
}
