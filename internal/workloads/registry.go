package workloads

import (
	"fmt"
	"sort"
	"strings"
)

// Param describes one integer parameter of a workload family: its
// documentation, its default, and the inclusive range Resolve accepts.
type Param struct {
	Name     string
	Doc      string
	Default  int
	Min, Max int
}

// Values is a concrete parameterization of a workload, keyed by
// Param.Name. Missing parameters resolve to their defaults; unknown
// names and out-of-range values are rejected by Resolve.
type Values map[string]int

// Clone returns an independent copy of the values.
func (v Values) Clone() Values {
	out := make(Values, len(v))
	for k, val := range v {
		out[k] = val
	}
	return out
}

// String renders the values as a stable "k=v,k=v" list.
func (v Values) String() string {
	keys := make([]string, 0, len(v))
	for k := range v {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, v[k]))
	}
	return strings.Join(parts, ",")
}

// Preset is a named parameterization of a workload family, the unit the
// benchmark subsystem and the regression suite consume. Bench presets
// (Suite false) become named scenarios — the Pinned subset is the
// CI-gated regression set; Suite presets are the fast, verified
// parameterizations the regression suite runs end to end against the
// family's Go reference model.
type Preset struct {
	Name   string // scenario / suite case name, e.g. "fdct1-1024"
	Desc   string
	Values Values
	Width  int  // datapath width override (0: compiler default)
	Pinned bool // member of the CI-gated pinned bench set
	Suite  bool // member of the regression suite instead of the bench set
}

// Case is a fully materialized workload: the MiniJ source, the design
// parameters, the deterministic initial memory contents, and the
// expected final contents computed by the family's pure-Go reference
// model (Expected drives the flow's verify stage; arrays the reference
// does not model fall back to the golden interpreter).
type Case struct {
	Workload   string // family name
	Name       string // case name (defaults to the family name)
	Source     string
	Func       string
	ArraySizes map[string]int
	ScalarArgs map[string]int64
	Inputs     map[string][]int64
	Expected   map[string][]int64
}

// Workload is one parameterized algorithm family: a MiniJ source
// emitter, a deterministic input generator, and a golden reference
// model in pure Go. All three are called with resolved Values — every
// parameter present and in range — so they cannot fail.
type Workload interface {
	// Name is the registry key, e.g. "hamming".
	Name() string
	// Doc is a one-line description of the family.
	Doc() string
	// Params is the parameter schema Resolve validates against.
	Params() []Param
	// Presets lists the named parameterizations for bench and the suite.
	Presets() []Preset
	// Source emits the MiniJ source text and its entry function.
	Source(v Values) (src, fn string)
	// Generate deterministically produces the array sizes, the scalar
	// arguments and the initial memory contents.
	Generate(v Values) (sizes map[string]int, args map[string]int64, inputs map[string][]int64)
	// Reference computes, in pure Go, the expected final contents of
	// every array it models (it may omit arrays; those fall back to the
	// golden interpreter in the verify stage).
	Reference(v Values, inputs map[string][]int64) map[string][]int64
}

// Family is a declarative Workload implementation: the registry's
// built-in families are Family values, and new families can usually be
// one literal plus three closures (see docs/WORKLOADS.md for the
// walkthrough).
type Family struct {
	FamilyName string
	FamilyDoc  string
	Schema     []Param
	PresetList []Preset
	EmitSource func(v Values) (src, fn string)
	GenInputs  func(v Values) (sizes map[string]int, args map[string]int64, inputs map[string][]int64)
	Golden     func(v Values, inputs map[string][]int64) map[string][]int64
}

// Name implements Workload.
func (f *Family) Name() string { return f.FamilyName }

// Doc implements Workload.
func (f *Family) Doc() string { return f.FamilyDoc }

// Params implements Workload.
func (f *Family) Params() []Param { return f.Schema }

// Presets implements Workload.
func (f *Family) Presets() []Preset { return f.PresetList }

// Source implements Workload.
func (f *Family) Source(v Values) (string, string) { return f.EmitSource(v) }

// Generate implements Workload.
func (f *Family) Generate(v Values) (map[string]int, map[string]int64, map[string][]int64) {
	return f.GenInputs(v)
}

// Reference implements Workload.
func (f *Family) Reference(v Values, inputs map[string][]int64) map[string][]int64 {
	return f.Golden(v, inputs)
}

// Registry is a named set of workload families. The package-level
// Default registry holds the built-in families; independent registries
// exist so tests (and embedders) can register without global effects.
type Registry struct {
	families map[string]Workload
	// presets maps every preset name to its owning family: preset names
	// become bench scenario names, suite case names and BENCH_<name>.json
	// files, so they must be unique across the whole registry.
	presets map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]Workload{}, presets: map[string]string{}}
}

// Register adds a family. It rejects empty or duplicate names, schema
// problems (duplicate or empty parameter names, defaults outside
// [Min, Max]), and presets that do not resolve against the schema —
// a family that registers cleanly cannot fail to Build from a preset.
func (r *Registry) Register(w Workload) error {
	name := w.Name()
	if name == "" {
		return fmt.Errorf("workloads: register: empty workload name")
	}
	if _, ok := r.families[name]; ok {
		return fmt.Errorf("workloads: register %q: already registered", name)
	}
	seen := map[string]bool{}
	for _, p := range w.Params() {
		if p.Name == "" {
			return fmt.Errorf("workloads: register %q: empty parameter name", name)
		}
		if seen[p.Name] {
			return fmt.Errorf("workloads: register %q: duplicate parameter %q", name, p.Name)
		}
		seen[p.Name] = true
		if p.Min > p.Max {
			return fmt.Errorf("workloads: register %q: parameter %q: min %d > max %d", name, p.Name, p.Min, p.Max)
		}
		if p.Default < p.Min || p.Default > p.Max {
			return fmt.Errorf("workloads: register %q: parameter %q: default %d outside [%d, %d]",
				name, p.Name, p.Default, p.Min, p.Max)
		}
	}
	local := map[string]bool{}
	for _, p := range w.Presets() {
		if p.Name == "" {
			return fmt.Errorf("workloads: register %q: empty preset name", name)
		}
		if local[p.Name] {
			return fmt.Errorf("workloads: register %q: duplicate preset %q", name, p.Name)
		}
		if owner, ok := r.presets[p.Name]; ok {
			return fmt.Errorf("workloads: register %q: preset %q already belongs to family %q (preset names are global: scenario names, suite cases, BENCH files)",
				name, p.Name, owner)
		}
		local[p.Name] = true
		if _, err := Resolve(w, p.Values); err != nil {
			return fmt.Errorf("workloads: register %q: preset %q: %w", name, p.Name, err)
		}
	}
	for p := range local {
		r.presets[p] = name
	}
	r.families[name] = w
	return nil
}

// MustRegister is Register, panicking on error; for init-time use.
func (r *Registry) MustRegister(w Workload) {
	if err := r.Register(w); err != nil {
		panic(err)
	}
}

// Names lists the registered families, sorted.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.families))
	for name := range r.families {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// All lists the registered families in Names order.
func (r *Registry) All() []Workload {
	names := r.Names()
	out := make([]Workload, 0, len(names))
	for _, name := range names {
		out = append(out, r.families[name])
	}
	return out
}

// Lookup finds a family by name.
func (r *Registry) Lookup(name string) (Workload, error) {
	w, ok := r.families[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown workload %q (have: %s)",
			name, strings.Join(r.Names(), ", "))
	}
	return w, nil
}

// Build materializes a family under the given values: it resolves the
// values against the schema, emits the source, generates the inputs and
// computes the reference model's expected contents.
func (r *Registry) Build(name string, v Values) (*Case, error) {
	w, err := r.Lookup(name)
	if err != nil {
		return nil, err
	}
	return BuildWorkload(w, v)
}

// BuildWorkload is Build for an already-looked-up family.
func BuildWorkload(w Workload, v Values) (*Case, error) {
	c, rv, err := buildInputs(w, v)
	if err != nil {
		return nil, err
	}
	c.Expected = w.Reference(rv, c.Inputs)
	return c, nil
}

// BuildWorkloadInputs materializes a case without running the reference
// model (Expected stays nil) — for consumers that only compile or time
// the simulation, like the benchmark harness. Every verifying path
// wants BuildWorkload instead.
func BuildWorkloadInputs(w Workload, v Values) (*Case, error) {
	c, _, err := buildInputs(w, v)
	return c, err
}

func buildInputs(w Workload, v Values) (*Case, Values, error) {
	rv, err := Resolve(w, v)
	if err != nil {
		return nil, nil, err
	}
	src, fn := w.Source(rv)
	sizes, args, inputs := w.Generate(rv)
	c := &Case{
		Workload:   w.Name(),
		Name:       w.Name(),
		Source:     src,
		Func:       fn,
		ArraySizes: sizes,
		ScalarArgs: args,
		Inputs:     inputs,
	}
	return c, rv, nil
}

// Resolve applies the schema's defaults to v and validates every value
// against its [Min, Max] range; unknown parameter names are errors. The
// input map is not modified.
func Resolve(w Workload, v Values) (Values, error) {
	schema := w.Params()
	byName := make(map[string]Param, len(schema))
	out := make(Values, len(schema))
	for _, p := range schema {
		byName[p.Name] = p
		out[p.Name] = p.Default
	}
	for name, val := range v {
		p, ok := byName[name]
		if !ok {
			known := make([]string, 0, len(schema))
			for _, sp := range schema {
				known = append(known, sp.Name)
			}
			return nil, fmt.Errorf("workloads: %s has no parameter %q (have: %s)",
				w.Name(), name, strings.Join(known, ", "))
		}
		if val < p.Min || val > p.Max {
			return nil, fmt.Errorf("workloads: %s: parameter %s=%d outside [%d, %d]",
				w.Name(), name, val, p.Min, p.Max)
		}
		out[name] = val
	}
	return out, nil
}

// Default is the registry holding the built-in families; the package
// functions below operate on it.
var Default = NewRegistry()

// Register adds a family to the default registry.
func Register(w Workload) error { return Default.Register(w) }

// MustRegister adds a family to the default registry, panicking on error.
func MustRegister(w Workload) { Default.MustRegister(w) }

// Names lists the default registry's families, sorted.
func Names() []string { return Default.Names() }

// All lists the default registry's families in Names order.
func All() []Workload { return Default.All() }

// Lookup finds a family in the default registry.
func Lookup(name string) (Workload, error) { return Default.Lookup(name) }

// Build materializes a family from the default registry.
func Build(name string, v Values) (*Case, error) { return Default.Build(name, v) }
