package workloads

// MatMulSource is the MiniJ streaming n x n integer matrix multiply:
// c = a * b over row-major matrices, one multiply-accumulate chain per
// output element.
const MatMulSource = `
// Row-major n x n integer matrix multiply: c = a * b.
void matmul(int[] a, int[] b, int[] c, int n) {
  int i;
  for (i = 0; i < n; i = i + 1) {
    int j;
    for (j = 0; j < n; j = j + 1) {
      int acc = 0;
      int k;
      for (k = 0; k < n; k = k + 1) {
        acc = acc + a[i * n + k] * b[k * n + j];
      }
      c[i * n + j] = acc;
    }
  }
}
`

// GenMatrix produces a deterministic pseudo-random n x n matrix of
// 8-bit entries (row-major).
func GenMatrix(n int, seed uint64) []int64 {
	m := make([]int64, n*n)
	s := newLCG(seed)
	for i := range m {
		m[i] = int64(s.next() & 0xFF)
	}
	return m
}

// RefMatMul is the pure-Go golden model: c = a * b with 32-bit
// wrap-around accumulation, row-major.
func RefMatMul(a, b []int64, n int) []int64 {
	c := make([]int64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc int64
			for k := 0; k < n; k++ {
				acc = wrap32(acc + wrap32(a[i*n+k]*b[k*n+j]))
			}
			c[i*n+j] = acc
		}
	}
	return c
}

func init() {
	MustRegister(&Family{
		FamilyName: "matmul",
		FamilyDoc:  "streaming n x n integer matrix multiply (one MAC chain per output element)",
		Schema: []Param{
			{Name: "n", Doc: "matrix dimension", Default: 16, Min: 1, Max: 64},
			{Name: "seed", Doc: "matrix-entry PRNG seed", Default: 7, Min: 0, Max: 1 << 30},
		},
		PresetList: []Preset{
			{Name: "matmul-16", Desc: "16x16 integer matrix multiply",
				Values: Values{"n": 16}, Pinned: true},
			{Name: "matmul-32", Desc: "32x32 integer matrix multiply",
				Values: Values{"n": 32}},
			{Name: "matmul", Desc: "regression-suite 8x8 matrix multiply",
				Values: Values{"n": 8}, Suite: true},
		},
		EmitSource: func(Values) (string, string) { return MatMulSource, "matmul" },
		GenInputs: func(v Values) (map[string]int, map[string]int64, map[string][]int64) {
			n := v["n"]
			seed := uint64(v["seed"])
			sizes := map[string]int{"a": n * n, "b": n * n, "c": n * n}
			args := map[string]int64{"n": int64(n)}
			inputs := map[string][]int64{
				"a": GenMatrix(n, seed),
				"b": GenMatrix(n, seed+0x9e3779b9),
			}
			return sizes, args, inputs
		},
		Golden: func(v Values, inputs map[string][]int64) map[string][]int64 {
			n := v["n"]
			return map[string][]int64{
				"a": cloneWords(inputs["a"]),
				"b": cloneWords(inputs["b"]),
				"c": RefMatMul(inputs["a"], inputs["b"], n),
			}
		},
	})
}
