package workloads

import "testing"

func TestParseSpec(t *testing.T) {
	name, v, err := ParseSpec("fir,n=1024,taps=16")
	if err != nil || name != "fir" || v["n"] != 1024 || v["taps"] != 16 || len(v) != 2 {
		t.Fatalf("got %q %v %v", name, v, err)
	}
	name, v, err = ParseSpec("hamming")
	if err != nil || name != "hamming" || len(v) != 0 {
		t.Fatalf("bare name: %q %v %v", name, v, err)
	}
	if _, _, err := ParseSpec(""); err == nil {
		t.Fatal("empty spec must error")
	}
	if _, _, err := ParseSpec("n=4,fir"); err == nil {
		t.Fatal("params before name must error")
	}
	if _, _, err := ParseSpec("fir,n=many"); err == nil {
		t.Fatal("non-integer value must error")
	}
	if _, _, err := ParseSpec("fir,=4"); err == nil {
		t.Fatal("empty param name must error")
	}
	// Trailing commas are tolerated, matching the historical flag parser.
	if name, v, err := ParseSpec("fir,"); err != nil || name != "fir" || len(v) != 0 {
		t.Fatalf("trailing comma: %q %v %v", name, v, err)
	}
}
