package workloads

// FIRShift is the fixed-point scale of the FIR accumulator (output is
// the accumulator arithmetically shifted right by FIRShift).
const FIRShift = 5

// FIRSource is the MiniJ streaming FIR filter: y[i] is the dot product
// of the taps with a sliding window over x, scaled down by FIRShift.
// x carries taps-1 warm-up samples so every output has a full window.
const FIRSource = `
// Streaming FIR filter: y[i] = (sum_t h[t] * x[i + t]) >> 5.
void fir(int[] x, int[] h, int[] y, int n, int taps) {
  int i;
  for (i = 0; i < n; i = i + 1) {
    int acc = 0;
    int t;
    for (t = 0; t < taps; t = t + 1) {
      acc = acc + h[t] * x[i + t];
    }
    y[i] = acc >> 5;
  }
}
`

// GenSamples produces a deterministic pseudo-random 8-bit sample stream.
func GenSamples(n int, seed uint64) []int64 {
	x := make([]int64, n)
	s := newLCG(seed)
	for i := range x {
		x[i] = int64(s.next() & 0xFF)
	}
	return x
}

// GenTaps produces deterministic signed filter coefficients in
// [-16, 15].
func GenTaps(taps int, seed uint64) []int64 {
	h := make([]int64, taps)
	s := newLCG(seed)
	for i := range h {
		h[i] = int64(s.next()&0x1F) - 16
	}
	return h
}

// RefFIR is the pure-Go golden model of the FIR filter: n outputs, each
// the tap/window dot product arithmetically shifted right by FIRShift,
// with 32-bit wrap-around accumulation.
func RefFIR(x, h []int64, n, taps int) []int64 {
	y := make([]int64, n)
	for i := 0; i < n; i++ {
		var acc int64
		for t := 0; t < taps; t++ {
			acc = wrap32(acc + wrap32(h[t]*x[i+t]))
		}
		y[i] = wrap32(acc >> FIRShift)
	}
	return y
}

func init() {
	MustRegister(&Family{
		FamilyName: "fir",
		FamilyDoc:  "streaming FIR filter: sliding tap/window dot products over a sample stream",
		Schema: []Param{
			{Name: "n", Doc: "output sample count", Default: 256, Min: 1, Max: 1 << 20},
			{Name: "taps", Doc: "filter tap count", Default: 8, Min: 1, Max: 64},
			{Name: "seed", Doc: "sample and coefficient PRNG seed", Default: 3, Min: 0, Max: 1 << 30},
		},
		PresetList: []Preset{
			{Name: "fir-256x8", Desc: "FIR filter, 256 samples through 8 taps",
				Values: Values{"n": 256, "taps": 8}, Pinned: true},
			{Name: "fir-1024x16", Desc: "FIR filter, 1024 samples through 16 taps",
				Values: Values{"n": 1024, "taps": 16}},
			{Name: "fir", Desc: "regression-suite FIR, 64 samples through 8 taps",
				Values: Values{"n": 64, "taps": 8}, Suite: true},
		},
		EmitSource: func(Values) (string, string) { return FIRSource, "fir" },
		GenInputs: func(v Values) (map[string]int, map[string]int64, map[string][]int64) {
			n, taps := v["n"], v["taps"]
			seed := uint64(v["seed"])
			sizes := map[string]int{"x": n + taps - 1, "h": taps, "y": n}
			args := map[string]int64{"n": int64(n), "taps": int64(taps)}
			inputs := map[string][]int64{
				"x": GenSamples(n+taps-1, seed),
				"h": GenTaps(taps, seed+0x51ed2701),
			}
			return sizes, args, inputs
		},
		Golden: func(v Values, inputs map[string][]int64) map[string][]int64 {
			return map[string][]int64{
				"x": cloneWords(inputs["x"]),
				"h": cloneWords(inputs["h"]),
				"y": RefFIR(inputs["x"], inputs["h"], v["n"], v["taps"]),
			}
		},
	})
}
