package workloads

// HammingSource is the MiniJ Hamming(7,4) decoder: for each received
// 7-bit codeword it computes the syndrome, corrects a single-bit error
// and extracts the 4 data bits. Bit layout (1-indexed positions as in
// the classic code): p1 p2 d1 p3 d2 d3 d4 from MSB (bit 6) to LSB.
const HammingSource = `
// Hamming(7,4) decoder with single-error correction.
void hamming(int[] in, int[] out, int n) {
  int i;
  for (i = 0; i < n; i = i + 1) {
    int c = in[i];
    int b1 = (c >> 6) & 1;
    int b2 = (c >> 5) & 1;
    int b3 = (c >> 4) & 1;
    int b4 = (c >> 3) & 1;
    int b5 = (c >> 2) & 1;
    int b6 = (c >> 1) & 1;
    int b7 = c & 1;
    int s1 = b1 ^ b3 ^ b5 ^ b7;
    int s2 = b2 ^ b3 ^ b6 ^ b7;
    int s4 = b4 ^ b5 ^ b6 ^ b7;
    int syn = s4 * 4 + s2 * 2 + s1;
    if (syn != 0) {
      c = c ^ (1 << (7 - syn));
    }
    int d1 = (c >> 4) & 1;
    int d2 = (c >> 2) & 1;
    int d3 = (c >> 1) & 1;
    int d4 = c & 1;
    out[i] = d1 * 8 + d2 * 4 + d3 * 2 + d4;
  }
}
`

// HammingEncode encodes a 4-bit nibble into a 7-bit codeword matching
// the decoder's layout.
func HammingEncode(nibble int64) int64 {
	d1 := (nibble >> 3) & 1
	d2 := (nibble >> 2) & 1
	d3 := (nibble >> 1) & 1
	d4 := nibble & 1
	p1 := d1 ^ d2 ^ d4
	p2 := d1 ^ d3 ^ d4
	p3 := d2 ^ d3 ^ d4
	return p1<<6 | p2<<5 | d1<<4 | p3<<3 | d2<<2 | d3<<1 | d4
}

// GenCodewords encodes a deterministic nibble stream and injects a
// single-bit error into every third codeword. It returns the noisy
// codewords and the expected decoded nibbles.
func GenCodewords(n int, seed uint64) (codewords, expected []int64) {
	s := seed | 1
	codewords = make([]int64, n)
	expected = make([]int64, n)
	for i := 0; i < n; i++ {
		s = s*6364136223846793005 + 1442695040888963407
		nib := int64((s >> 40) & 0xF)
		cw := HammingEncode(nib)
		if i%3 == 0 {
			bit := int64((s >> 13) % 7)
			cw ^= 1 << uint(bit)
		}
		codewords[i] = cw
		expected[i] = nib
	}
	return codewords, expected
}

// HammingCase builds the core test case for a Hamming decode over n
// codewords; expected decoded data is returned for pinning.
func HammingCase(n int, seed uint64) (sizes map[string]int, args map[string]int64, inputs map[string][]int64, expected []int64) {
	codewords, exp := GenCodewords(n, seed)
	sizes = map[string]int{"in": n, "out": n}
	args = map[string]int64{"n": int64(n)}
	inputs = map[string][]int64{"in": codewords}
	return sizes, args, inputs, exp
}

func init() {
	MustRegister(&Family{
		FamilyName: "hamming",
		FamilyDoc:  "Hamming(7,4) decoder with single-error correction over a noisy codeword stream",
		Schema: []Param{
			{Name: "words", Doc: "codeword count", Default: 64, Min: 1, Max: 1 << 20},
			{Name: "seed", Doc: "nibble-stream PRNG seed", Default: 9, Min: 0, Max: 1 << 30},
		},
		PresetList: []Preset{
			{Name: "hamming-256", Desc: "Hamming(7,4) decode of 256 codewords",
				Values: Values{"words": 256}, Pinned: true},
			{Name: "rtg-hamming-w8", Desc: "Hamming decoder compiled at datapath width 8",
				Values: Values{}, Width: 8, Pinned: true},
			{Name: "rtg-hamming-w16", Desc: "Hamming decoder compiled at datapath width 16",
				Values: Values{}, Width: 16, Pinned: true},
			{Name: "rtg-hamming-w32", Desc: "Hamming decoder compiled at datapath width 32",
				Values: Values{}, Width: 32, Pinned: true},
			{Name: "hamming", Desc: "regression-suite Hamming(7,4) decode",
				Values: Values{}, Suite: true},
		},
		EmitSource: func(Values) (string, string) { return HammingSource, "hamming" },
		GenInputs: func(v Values) (map[string]int, map[string]int64, map[string][]int64) {
			sizes, args, inputs, _ := HammingCase(v["words"], uint64(v["seed"]))
			return sizes, args, inputs
		},
		Golden: func(v Values, inputs map[string][]int64) map[string][]int64 {
			// The generator is the ground truth: the decoded stream must be
			// the nibble stream the codewords were encoded from.
			_, expected := GenCodewords(v["words"], uint64(v["seed"]))
			return map[string][]int64{"in": cloneWords(inputs["in"]), "out": expected}
		},
	})
}
