package workloads

// ErasureSource is the MiniJ single-erasure parity decoder — the
// (k+1, k) MDS code that generalizes the Hamming family from bit errors
// to symbol erasures (after Li & Gastpar's cooperative data exchange on
// MDS codes). Each stripe carries k data symbols plus their XOR parity;
// one symbol per stripe is erased (zeroed) at a known position, and the
// decoder reconstructs it as the XOR of the survivors before emitting
// the k recovered data symbols.
const ErasureSource = `
// (k+1, k) single-erasure decoder: stripes of k data symbols + XOR
// parity; epos[s] is the erased position, out gets the recovered data.
void erasure(int[] in, int[] epos, int[] out, int n, int k) {
  int s;
  for (s = 0; s < n; s = s + 1) {
    int base = s * (k + 1);
    int e = epos[s];
    int x = 0;
    int j;
    for (j = 0; j < k + 1; j = j + 1) {
      if (j != e) {
        x = x ^ in[base + j];
      }
    }
    int d;
    for (d = 0; d < k; d = d + 1) {
      int v = in[base + d];
      if (d == e) {
        v = x;
      }
      out[s * k + d] = v;
    }
  }
}
`

// GenStripes produces n deterministic stripes of k 8-bit data symbols
// plus their XOR parity, then erases (zeroes) one symbol per stripe at
// a pseudo-random position. It returns the received symbols
// (stripe-major, k+1 per stripe), the erased positions, and the
// original data (stripe-major, k per stripe) the decoder must recover.
func GenStripes(n, k int, seed uint64) (received, epos, data []int64) {
	received = make([]int64, n*(k+1))
	epos = make([]int64, n)
	data = make([]int64, n*k)
	s := newLCG(seed)
	for st := 0; st < n; st++ {
		var parity int64
		for d := 0; d < k; d++ {
			sym := int64(s.next() & 0xFF)
			data[st*k+d] = sym
			received[st*(k+1)+d] = sym
			parity ^= sym
		}
		received[st*(k+1)+k] = parity
		e := int(s.next() % uint64(k+1))
		epos[st] = int64(e)
		received[st*(k+1)+e] = 0
	}
	return received, epos, data
}

// RefErasure is the pure-Go golden model: per stripe, the erased symbol
// is the XOR of the survivors; the output is the recovered data block.
func RefErasure(received, epos []int64, n, k int) []int64 {
	out := make([]int64, n*k)
	for st := 0; st < n; st++ {
		base := st * (k + 1)
		e := int(epos[st])
		var x int64
		for j := 0; j <= k; j++ {
			if j != e {
				x ^= received[base+j]
			}
		}
		for d := 0; d < k; d++ {
			v := received[base+d]
			if d == e {
				v = x
			}
			out[st*k+d] = v
		}
	}
	return out
}

func init() {
	MustRegister(&Family{
		FamilyName: "erasure",
		FamilyDoc:  "(k+1, k) MDS single-erasure parity decoder over striped symbol streams",
		Schema: []Param{
			{Name: "k", Doc: "data symbols per stripe", Default: 8, Min: 2, Max: 16},
			{Name: "stripes", Doc: "stripe count", Default: 64, Min: 1, Max: 1 << 16},
			{Name: "seed", Doc: "symbol and erasure-position PRNG seed", Default: 5, Min: 0, Max: 1 << 30},
		},
		PresetList: []Preset{
			{Name: "erasure-k8", Desc: "single-erasure decode, 64 stripes of 8+1 symbols",
				Values: Values{"k": 8, "stripes": 64}, Pinned: true},
			{Name: "erasure-k16", Desc: "single-erasure decode, 64 stripes of 16+1 symbols",
				Values: Values{"k": 16, "stripes": 64}},
			{Name: "erasure", Desc: "regression-suite single-erasure decode, 16 stripes of 4+1 symbols",
				Values: Values{"k": 4, "stripes": 16}, Suite: true},
		},
		EmitSource: func(Values) (string, string) { return ErasureSource, "erasure" },
		GenInputs: func(v Values) (map[string]int, map[string]int64, map[string][]int64) {
			k, n := v["k"], v["stripes"]
			received, epos, _ := GenStripes(n, k, uint64(v["seed"]))
			sizes := map[string]int{"in": n * (k + 1), "epos": n, "out": n * k}
			args := map[string]int64{"n": int64(n), "k": int64(k)}
			inputs := map[string][]int64{"in": received, "epos": epos}
			return sizes, args, inputs
		},
		Golden: func(v Values, inputs map[string][]int64) map[string][]int64 {
			k, n := v["k"], v["stripes"]
			return map[string][]int64{
				"in":   cloneWords(inputs["in"]),
				"epos": cloneWords(inputs["epos"]),
				"out":  RefErasure(inputs["in"], inputs["epos"], n, k),
			}
		},
	})
}
