package workloads

import (
	"fmt"
	"math"
	"strings"
)

// DCTShift is the fixed-point scale of the DCT coefficients (2^DCTShift).
const DCTShift = 10

// dctCoef returns the scaled integer DCT-II coefficient C[u][x].
func dctCoef(u, x int) int64 {
	alpha := 0.5
	if u == 0 {
		alpha = math.Sqrt(0.125) // 1/(2*sqrt(2)) * 2 = sqrt(1/8)
	}
	c := alpha * math.Cos(float64(2*x+1)*float64(u)*math.Pi/16.0)
	return int64(math.Round(c * float64(int64(1)<<DCTShift)))
}

// dctPassSource emits the straight-line 8-point DCT for one row or
// column: src[off + k*stride] -> dst[off + k*stride].
func dctPassSource(b *strings.Builder, src, dst, off string, stride int) {
	idx := func(k int) string {
		if k == 0 {
			return off
		}
		if stride == 1 {
			return fmt.Sprintf("%s + %d", off, k)
		}
		return fmt.Sprintf("%s + %d", off, k*stride)
	}
	for k := 0; k < 8; k++ {
		fmt.Fprintf(b, "      int x%d = %s[%s];\n", k, src, idx(k))
	}
	for u := 0; u < 8; u++ {
		terms := make([]string, 0, 8)
		for x := 0; x < 8; x++ {
			c := dctCoef(u, x)
			switch {
			case c == 0:
				continue
			case c < 0:
				terms = append(terms, fmt.Sprintf("- x%d * %d", x, -c))
			case len(terms) == 0:
				terms = append(terms, fmt.Sprintf("x%d * %d", x, c))
			default:
				terms = append(terms, fmt.Sprintf("+ x%d * %d", x, c))
			}
		}
		fmt.Fprintf(b, "      %s[%s] = (%s) >> %d;\n", dst, idx(u), strings.Join(terms, " "), DCTShift)
	}
}

// FDCTSource generates the MiniJ source of the 8x8 block FDCT. When
// twoConfigurations is true a partition marker splits the row pass
// (img -> tmp) from the column pass (tmp -> out), yielding the paper's
// FDCT2 implementation; otherwise both passes form one configuration
// (FDCT1). Images are stored as consecutive 8x8 blocks of 64 pixels.
func FDCTSource(twoConfigurations bool) string {
	var b strings.Builder
	b.WriteString("// 8x8 block fast DCT: row pass into tmp, column pass into out.\n")
	b.WriteString("void fdct(int[] img, int[] tmp, int[] out, int nblocks) {\n")
	b.WriteString("  int b;\n")
	b.WriteString("  for (b = 0; b < nblocks; b = b + 1) {\n")
	b.WriteString("    int r;\n")
	b.WriteString("    for (r = 0; r < 8; r = r + 1) {\n")
	b.WriteString("      int o = b * 64 + r * 8;\n")
	dctPassSource(&b, "img", "tmp", "o", 1)
	b.WriteString("    }\n")
	b.WriteString("  }\n")
	if twoConfigurations {
		b.WriteString("  partition;\n")
	}
	b.WriteString("  int b2;\n")
	b.WriteString("  for (b2 = 0; b2 < nblocks; b2 = b2 + 1) {\n")
	b.WriteString("    int c;\n")
	b.WriteString("    for (c = 0; c < 8; c = c + 1) {\n")
	b.WriteString("      int o = b2 * 64 + c;\n")
	dctPassSource(&b, "tmp", "out", "o", 8)
	b.WriteString("    }\n")
	b.WriteString("  }\n")
	b.WriteString("}\n")
	return b.String()
}

// GenImage produces a deterministic pseudo-random 8-bit image of the
// given pixel count (a multiple of 64 for whole blocks).
func GenImage(pixels int, seed uint64) []int64 {
	img := make([]int64, pixels)
	s := newLCG(seed)
	for i := range img {
		img[i] = int64(s.next() & 0xFF)
	}
	return img
}

// FDCTCase builds the core test case for an FDCT run over the given
// number of pixels (rounded down to whole blocks).
func FDCTCase(name string, pixels int, twoConfigurations bool, seed uint64) (src string, sizes map[string]int, args map[string]int64, inputs map[string][]int64) {
	blocks := pixels / 64
	pixels = blocks * 64
	src = FDCTSource(twoConfigurations)
	sizes = map[string]int{"img": pixels, "tmp": pixels, "out": pixels}
	args = map[string]int64{"nblocks": int64(blocks)}
	inputs = map[string][]int64{"img": GenImage(pixels, seed)}
	return src, sizes, args, inputs
}

// refDCTPass is the reference 8-point pass: src[off+k*stride] ->
// dst[off+u*stride], the same scaled-integer arithmetic the emitted
// source performs.
func refDCTPass(src, dst []int64, off, stride int) {
	var x [8]int64
	for k := 0; k < 8; k++ {
		x[k] = src[off+k*stride]
	}
	for u := 0; u < 8; u++ {
		var acc int64
		for k := 0; k < 8; k++ {
			acc = wrap32(acc + wrap32(x[k]*dctCoef(u, k)))
		}
		dst[off+u*stride] = wrap32(acc >> DCTShift)
	}
}

// RefFDCT is the pure-Go golden model of the block FDCT: the row pass
// writes tmp, the column pass writes out. It is the verification
// expectation of the fdct1/fdct2 families.
func RefFDCT(img []int64, blocks int) (tmp, out []int64) {
	tmp = make([]int64, len(img))
	out = make([]int64, len(img))
	for b := 0; b < blocks; b++ {
		for r := 0; r < 8; r++ {
			refDCTPass(img, tmp, b*64+r*8, 1)
		}
	}
	for b := 0; b < blocks; b++ {
		for c := 0; c < 8; c++ {
			refDCTPass(tmp, out, b*64+c, 8)
		}
	}
	return tmp, out
}

// fdctFamily builds the fdct1 (single-configuration) or fdct2
// (two-configuration) registry family.
func fdctFamily(name string, two bool, doc string, presets []Preset) *Family {
	return &Family{
		FamilyName: name,
		FamilyDoc:  doc,
		Schema: []Param{
			{Name: "pixels", Doc: "image size in pixels (rounded down to whole 64-pixel blocks)",
				Default: 4096, Min: 64, Max: 1 << 20},
			{Name: "seed", Doc: "input image PRNG seed", Default: 42, Min: 0, Max: 1 << 30},
		},
		PresetList: presets,
		EmitSource: func(Values) (string, string) { return FDCTSource(two), "fdct" },
		GenInputs: func(v Values) (map[string]int, map[string]int64, map[string][]int64) {
			_, sizes, args, inputs := FDCTCase(name, v["pixels"], two, uint64(v["seed"]))
			return sizes, args, inputs
		},
		Golden: func(v Values, inputs map[string][]int64) map[string][]int64 {
			img := inputs["img"]
			tmp, out := RefFDCT(img, len(img)/64)
			return map[string][]int64{"img": cloneWords(img), "tmp": tmp, "out": out}
		},
	}
}

func init() {
	MustRegister(fdctFamily("fdct1", false,
		"8x8 block fast DCT, both passes in one configuration (the paper's FDCT1)",
		[]Preset{
			{Name: "fdct1-1024", Desc: "FDCT single configuration, 1024-pixel image",
				Values: Values{"pixels": 1024}, Pinned: true},
			{Name: "fdct1-4096", Desc: "FDCT single configuration, paper-sized 4096-pixel image",
				Values: Values{"pixels": 4096}},
			{Name: "fdct1", Desc: "regression-suite FDCT, single configuration",
				Values: Values{"pixels": 4096}, Suite: true},
		}))
	MustRegister(fdctFamily("fdct2", true,
		"8x8 block fast DCT, row and column passes in two temporal partitions (the paper's FDCT2)",
		[]Preset{
			{Name: "fdct2-1024", Desc: "FDCT two configurations, 1024-pixel image",
				Values: Values{"pixels": 1024}, Pinned: true},
			{Name: "fdct2-4096", Desc: "FDCT two configurations, paper-sized 4096-pixel image",
				Values: Values{"pixels": 4096}},
			{Name: "fdct2", Desc: "regression-suite FDCT, two configurations",
				Values: Values{"pixels": 4096}, Suite: true},
		}))
}
