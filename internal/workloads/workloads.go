// Package workloads is the parameterized workload registry of the
// verification infrastructure. A Workload is one algorithm family — a
// MiniJ source emitter, a deterministic input generator, and a golden
// reference model in pure Go — described by a parameter schema and a
// set of named presets. The built-in families are the paper's two
// evaluation algorithms (the 8x8 fast DCT in its single- and
// two-configuration variants, and the Hamming(7,4) decoder) plus the
// streaming matrix multiply, the FIR filter, the single-erasure parity
// decoder and the Newton fixed-point iteration added on top of them.
//
// The registry feeds every consuming layer: internal/bench derives its
// end-to-end scenarios from the bench presets, internal/core builds the
// regression suite from the suite presets (verified against the
// families' reference models), and the gnc/hsim CLIs materialize cases
// from a -workload flag. See docs/WORKLOADS.md for the catalogue and a
// how-to-add-a-workload walkthrough.
package workloads

import "repro/internal/hades"

// lcg is the deterministic input generator shared by the families: a
// 64-bit linear congruential generator (Knuth's MMIX multiplier). Every
// generator derives its stream from a seed parameter, so a case's
// contents are a pure function of its resolved values.
type lcg uint64

// newLCG seeds the generator; the low bit is forced so seed 0 is usable.
func newLCG(seed uint64) lcg { return lcg(seed | 1) }

// next advances the state and returns the mixed high bits.
func (s *lcg) next() uint64 {
	*s = *s*6364136223846793005 + 1442695040888963407
	return uint64(*s >> 33)
}

// wrap32 normalises a value to Java int range, exactly as a 32-bit
// signal stores it; reference models apply it wherever an intermediate
// could exceed 32 bits so they stay bit-exact with the datapath.
func wrap32(v int64) int64 { return hades.SignExtend(hades.Mask(uint64(v), 32), 32) }

// cloneWords copies a memory image.
func cloneWords(w []int64) []int64 {
	out := make([]int64, len(w))
	copy(out, w)
	return out
}
