// Package workloads provides the paper's two evaluation algorithms as
// MiniJ sources plus deterministic data generators: the fast 8x8 DCT over
// an input image (FDCT1 single-configuration and FDCT2 two-configuration
// variants, three SRAMs: input, intermediate and output image) and a
// Hamming(7,4) decoder over a codeword stream.
package workloads

import (
	"fmt"
	"math"
	"strings"
)

// DCTShift is the fixed-point scale of the DCT coefficients (2^DCTShift).
const DCTShift = 10

// dctCoef returns the scaled integer DCT-II coefficient C[u][x].
func dctCoef(u, x int) int64 {
	alpha := 0.5
	if u == 0 {
		alpha = math.Sqrt(0.125) // 1/(2*sqrt(2)) * 2 = sqrt(1/8)
	}
	c := alpha * math.Cos(float64(2*x+1)*float64(u)*math.Pi/16.0)
	return int64(math.Round(c * float64(int64(1)<<DCTShift)))
}

// dctPassSource emits the straight-line 8-point DCT for one row or
// column: src[off + k*stride] -> dst[off + k*stride].
func dctPassSource(b *strings.Builder, src, dst, off string, stride int) {
	idx := func(k int) string {
		if k == 0 {
			return off
		}
		if stride == 1 {
			return fmt.Sprintf("%s + %d", off, k)
		}
		return fmt.Sprintf("%s + %d", off, k*stride)
	}
	for k := 0; k < 8; k++ {
		fmt.Fprintf(b, "      int x%d = %s[%s];\n", k, src, idx(k))
	}
	for u := 0; u < 8; u++ {
		terms := make([]string, 0, 8)
		for x := 0; x < 8; x++ {
			c := dctCoef(u, x)
			switch {
			case c == 0:
				continue
			case c < 0:
				terms = append(terms, fmt.Sprintf("- x%d * %d", x, -c))
			case len(terms) == 0:
				terms = append(terms, fmt.Sprintf("x%d * %d", x, c))
			default:
				terms = append(terms, fmt.Sprintf("+ x%d * %d", x, c))
			}
		}
		fmt.Fprintf(b, "      %s[%s] = (%s) >> %d;\n", dst, idx(u), strings.Join(terms, " "), DCTShift)
	}
}

// FDCTSource generates the MiniJ source of the 8x8 block FDCT. When
// twoConfigurations is true a partition marker splits the row pass
// (img -> tmp) from the column pass (tmp -> out), yielding the paper's
// FDCT2 implementation; otherwise both passes form one configuration
// (FDCT1). Images are stored as consecutive 8x8 blocks of 64 pixels.
func FDCTSource(twoConfigurations bool) string {
	var b strings.Builder
	b.WriteString("// 8x8 block fast DCT: row pass into tmp, column pass into out.\n")
	b.WriteString("void fdct(int[] img, int[] tmp, int[] out, int nblocks) {\n")
	b.WriteString("  int b;\n")
	b.WriteString("  for (b = 0; b < nblocks; b = b + 1) {\n")
	b.WriteString("    int r;\n")
	b.WriteString("    for (r = 0; r < 8; r = r + 1) {\n")
	b.WriteString("      int o = b * 64 + r * 8;\n")
	dctPassSource(&b, "img", "tmp", "o", 1)
	b.WriteString("    }\n")
	b.WriteString("  }\n")
	if twoConfigurations {
		b.WriteString("  partition;\n")
	}
	b.WriteString("  int b2;\n")
	b.WriteString("  for (b2 = 0; b2 < nblocks; b2 = b2 + 1) {\n")
	b.WriteString("    int c;\n")
	b.WriteString("    for (c = 0; c < 8; c = c + 1) {\n")
	b.WriteString("      int o = b2 * 64 + c;\n")
	dctPassSource(&b, "tmp", "out", "o", 8)
	b.WriteString("    }\n")
	b.WriteString("  }\n")
	b.WriteString("}\n")
	return b.String()
}

// GenImage produces a deterministic pseudo-random 8-bit image of the
// given pixel count (a multiple of 64 for whole blocks).
func GenImage(pixels int, seed uint64) []int64 {
	img := make([]int64, pixels)
	s := seed | 1
	for i := range img {
		s = s*6364136223846793005 + 1442695040888963407
		img[i] = int64((s >> 33) & 0xFF)
	}
	return img
}

// HammingSource is the MiniJ Hamming(7,4) decoder: for each received
// 7-bit codeword it computes the syndrome, corrects a single-bit error
// and extracts the 4 data bits. Bit layout (1-indexed positions as in
// the classic code): p1 p2 d1 p3 d2 d3 d4 from MSB (bit 6) to LSB.
const HammingSource = `
// Hamming(7,4) decoder with single-error correction.
void hamming(int[] in, int[] out, int n) {
  int i;
  for (i = 0; i < n; i = i + 1) {
    int c = in[i];
    int b1 = (c >> 6) & 1;
    int b2 = (c >> 5) & 1;
    int b3 = (c >> 4) & 1;
    int b4 = (c >> 3) & 1;
    int b5 = (c >> 2) & 1;
    int b6 = (c >> 1) & 1;
    int b7 = c & 1;
    int s1 = b1 ^ b3 ^ b5 ^ b7;
    int s2 = b2 ^ b3 ^ b6 ^ b7;
    int s4 = b4 ^ b5 ^ b6 ^ b7;
    int syn = s4 * 4 + s2 * 2 + s1;
    if (syn != 0) {
      c = c ^ (1 << (7 - syn));
    }
    int d1 = (c >> 4) & 1;
    int d2 = (c >> 2) & 1;
    int d3 = (c >> 1) & 1;
    int d4 = c & 1;
    out[i] = d1 * 8 + d2 * 4 + d3 * 2 + d4;
  }
}
`

// HammingEncode encodes a 4-bit nibble into a 7-bit codeword matching
// the decoder's layout.
func HammingEncode(nibble int64) int64 {
	d1 := (nibble >> 3) & 1
	d2 := (nibble >> 2) & 1
	d3 := (nibble >> 1) & 1
	d4 := nibble & 1
	p1 := d1 ^ d2 ^ d4
	p2 := d1 ^ d3 ^ d4
	p3 := d2 ^ d3 ^ d4
	return p1<<6 | p2<<5 | d1<<4 | p3<<3 | d2<<2 | d3<<1 | d4
}

// GenCodewords encodes a deterministic nibble stream and injects a
// single-bit error into every third codeword. It returns the noisy
// codewords and the expected decoded nibbles.
func GenCodewords(n int, seed uint64) (codewords, expected []int64) {
	s := seed | 1
	codewords = make([]int64, n)
	expected = make([]int64, n)
	for i := 0; i < n; i++ {
		s = s*6364136223846793005 + 1442695040888963407
		nib := int64((s >> 40) & 0xF)
		cw := HammingEncode(nib)
		if i%3 == 0 {
			bit := int64((s >> 13) % 7)
			cw ^= 1 << uint(bit)
		}
		codewords[i] = cw
		expected[i] = nib
	}
	return codewords, expected
}

// FDCTCase builds the core test case for an FDCT run over the given
// number of pixels (rounded down to whole blocks).
func FDCTCase(name string, pixels int, twoConfigurations bool, seed uint64) (src string, sizes map[string]int, args map[string]int64, inputs map[string][]int64) {
	blocks := pixels / 64
	pixels = blocks * 64
	src = FDCTSource(twoConfigurations)
	sizes = map[string]int{"img": pixels, "tmp": pixels, "out": pixels}
	args = map[string]int64{"nblocks": int64(blocks)}
	inputs = map[string][]int64{"img": GenImage(pixels, seed)}
	return src, sizes, args, inputs
}

// HammingCase builds the core test case for a Hamming decode over n
// codewords; expected decoded data is returned for pinning.
func HammingCase(n int, seed uint64) (sizes map[string]int, args map[string]int64, inputs map[string][]int64, expected []int64) {
	codewords, exp := GenCodewords(n, seed)
	sizes = map[string]int{"in": n, "out": n}
	args = map[string]int64{"n": int64(n)}
	inputs = map[string][]int64{"in": codewords}
	return sizes, args, inputs, exp
}
