// Package operators provides the library of functional-unit models the
// simulator instantiates for each datapath operator — the Go counterpart
// of the paper's "Library of Operators (JAVA)" box in Figure 1.
//
// Every operator is a hades.Reactor wired to signals. The word-level
// semantics are those of Java int arithmetic generalised to a configurable
// bit width: two's-complement, wrap-around, arithmetic on sign-extended
// values, shift amounts taken modulo 64. Division and remainder by zero
// yield zero (a defined value keeps simulation running; the verification
// step flags any divergence from the golden algorithm, which uses the same
// convention).
package operators

import (
	"fmt"

	"repro/internal/hades"
)

// Dir is a port direction.
type Dir int

// Port directions.
const (
	In Dir = iota
	Out
)

// PortSpec describes one port of an operator type.
type PortSpec struct {
	Name  string
	Dir   Dir
	Width int
}

// Params carries the elaboration-time parameters parsed from the operator
// element's XML attributes.
type Params struct {
	Width  int     // word width of the operator (default 32)
	Value  int64   // const: the constant value
	Depth  int     // ram/rom/stim: number of words
	Inputs int     // mux: number of data inputs
	Init   []int64 // ram/rom: initial contents; stim: the stimulus vector
}

// Spec describes an operator type: how to compute its port list from
// parameters and how to build the live component.
type Spec struct {
	Type  string
	Ports func(p Params) []PortSpec
	Build func(sim *hades.Simulator, name string, p Params, conn map[string]*hades.Signal) (hades.Reactor, error)
}

// Registry maps operator type names to specs.
type Registry struct {
	specs map[string]*Spec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{specs: make(map[string]*Spec)} }

// Register adds a spec; duplicate type names panic (a programming error).
func (r *Registry) Register(s *Spec) {
	if _, dup := r.specs[s.Type]; dup {
		panic("operators: duplicate spec " + s.Type)
	}
	r.specs[s.Type] = s
}

// Lookup finds a spec by type name.
func (r *Registry) Lookup(typ string) (*Spec, bool) {
	s, ok := r.specs[typ]
	return s, ok
}

// Types returns the registered type names (unsorted).
func (r *Registry) Types() []string {
	out := make([]string, 0, len(r.specs))
	for t := range r.specs {
		out = append(out, t)
	}
	return out
}

// AddrWidth returns the address width needed for depth words (minimum 1).
func AddrWidth(depth int) int {
	w := 1
	for 1<<uint(w) < depth {
		w++
	}
	return w
}

// need fetches a connected signal or errors; all operator Build funcs use
// it so a malformed netlist fails elaboration, not simulation.
func need(conn map[string]*hades.Signal, inst, port string) (*hades.Signal, error) {
	s, ok := conn[port]
	if !ok || s == nil {
		return nil, fmt.Errorf("operators: instance %q: port %q not connected", inst, port)
	}
	return s, nil
}

// optional fetches a signal that may be absent (e.g. a register without
// an enable).
func optional(conn map[string]*hades.Signal, port string) *hades.Signal {
	return conn[port]
}

func defWidth(p Params) int {
	if p.Width <= 0 {
		return 32
	}
	return p.Width
}
