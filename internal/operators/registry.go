package operators

import (
	"fmt"

	"repro/internal/hades"
)

// DefaultRegistry builds the full operator library used by the
// infrastructure; netlist elaboration resolves datapath XML operator types
// against it.
func DefaultRegistry() *Registry {
	r := NewRegistry()
	r.Register(constSpec())
	for _, u := range []struct {
		typ string
		fn  UnaryFn
	}{
		{"neg", WordNeg}, {"not", WordNot}, {"lnot", WordLNot},
	} {
		r.Register(unarySpec(u.typ, u.fn))
	}
	for _, b := range []struct {
		typ string
		fn  BinaryFn
	}{
		{"add", WordAdd}, {"sub", WordSub}, {"mul", WordMul},
		{"div", WordDiv}, {"mod", WordMod},
		{"and", WordAnd}, {"or", WordOr}, {"xor", WordXor},
		{"shl", WordShl}, {"shr", WordShr}, {"sra", WordSra},
	} {
		r.Register(binarySpec(b.typ, b.fn))
	}
	for _, c := range []struct {
		typ string
		fn  BinaryFn
	}{
		{"eq", WordEq}, {"ne", WordNe}, {"lt", WordLt},
		{"le", WordLe}, {"gt", WordGt}, {"ge", WordGe},
	} {
		r.Register(cmpSpec(c.typ, c.fn))
	}
	r.Register(b2iSpec())
	r.Register(muxSpec())
	r.Register(regSpec())
	r.Register(ramSpec())
	r.Register(romSpec())
	r.Register(stimSpec())
	r.Register(sinkSpec())
	return r
}

func constSpec() *Spec {
	return &Spec{
		Type: "const",
		Ports: func(p Params) []PortSpec {
			return []PortSpec{{"y", Out, defWidth(p)}}
		},
		Build: func(sim *hades.Simulator, name string, p Params, conn map[string]*hades.Signal) (hades.Reactor, error) {
			y, err := need(conn, name, "y")
			if err != nil {
				return nil, err
			}
			c := &Const{name: name, y: y, val: p.Value}
			c.AssignID(hades.NextID())
			sim.Drive(y, p.Value)
			return c, nil
		},
	}
}

func unarySpec(typ string, fn UnaryFn) *Spec {
	return &Spec{
		Type: typ,
		Ports: func(p Params) []PortSpec {
			w := defWidth(p)
			ow := w
			if typ == "lnot" {
				ow = 1
			}
			return []PortSpec{{"a", In, w}, {"y", Out, ow}}
		},
		Build: func(sim *hades.Simulator, name string, p Params, conn map[string]*hades.Signal) (hades.Reactor, error) {
			a, err := need(conn, name, "a")
			if err != nil {
				return nil, err
			}
			y, err := need(conn, name, "y")
			if err != nil {
				return nil, err
			}
			u := &Unary{name: name, a: a, y: y, width: defWidth(p), fn: fn}
			u.AssignID(hades.NextID())
			a.Listen(u)
			return u, nil
		},
	}
}

func buildBinary(fn BinaryFn) func(*hades.Simulator, string, Params, map[string]*hades.Signal) (hades.Reactor, error) {
	return func(sim *hades.Simulator, name string, p Params, conn map[string]*hades.Signal) (hades.Reactor, error) {
		a, err := need(conn, name, "a")
		if err != nil {
			return nil, err
		}
		b, err := need(conn, name, "b")
		if err != nil {
			return nil, err
		}
		y, err := need(conn, name, "y")
		if err != nil {
			return nil, err
		}
		o := &Binary{name: name, a: a, b: b, y: y, width: defWidth(p), fn: fn}
		o.AssignID(hades.NextID())
		a.Listen(o)
		b.Listen(o)
		return o, nil
	}
}

func binarySpec(typ string, fn BinaryFn) *Spec {
	return &Spec{
		Type: typ,
		Ports: func(p Params) []PortSpec {
			w := defWidth(p)
			return []PortSpec{{"a", In, w}, {"b", In, w}, {"y", Out, w}}
		},
		Build: buildBinary(fn),
	}
}

func cmpSpec(typ string, fn BinaryFn) *Spec {
	return &Spec{
		Type: typ,
		Ports: func(p Params) []PortSpec {
			w := defWidth(p)
			return []PortSpec{{"a", In, w}, {"b", In, w}, {"y", Out, 1}}
		},
		Build: buildBinary(fn),
	}
}

func b2iSpec() *Spec {
	return &Spec{
		Type: "b2i",
		Ports: func(p Params) []PortSpec {
			return []PortSpec{{"a", In, 1}, {"y", Out, defWidth(p)}}
		},
		Build: func(sim *hades.Simulator, name string, p Params, conn map[string]*hades.Signal) (hades.Reactor, error) {
			a, err := need(conn, name, "a")
			if err != nil {
				return nil, err
			}
			y, err := need(conn, name, "y")
			if err != nil {
				return nil, err
			}
			u := &Unary{name: name, a: a, y: y, width: defWidth(p), fn: WordB2I}
			u.AssignID(hades.NextID())
			a.Listen(u)
			return u, nil
		},
	}
}

func muxSpec() *Spec {
	return &Spec{
		Type: "mux",
		Ports: func(p Params) []PortSpec {
			w := defWidth(p)
			n := p.Inputs
			if n < 2 {
				n = 2
			}
			ports := make([]PortSpec, 0, n+2)
			for i := 0; i < n; i++ {
				ports = append(ports, PortSpec{fmt.Sprintf("in%d", i), In, w})
			}
			ports = append(ports, PortSpec{"sel", In, AddrWidth(n)}, PortSpec{"y", Out, w})
			return ports
		},
		Build: func(sim *hades.Simulator, name string, p Params, conn map[string]*hades.Signal) (hades.Reactor, error) {
			n := p.Inputs
			if n < 2 {
				n = 2
			}
			m := &Mux{name: name}
			m.AssignID(hades.NextID())
			for i := 0; i < n; i++ {
				in, err := need(conn, name, fmt.Sprintf("in%d", i))
				if err != nil {
					return nil, err
				}
				m.ins = append(m.ins, in)
				in.Listen(m)
			}
			sel, err := need(conn, name, "sel")
			if err != nil {
				return nil, err
			}
			y, err := need(conn, name, "y")
			if err != nil {
				return nil, err
			}
			m.sel, m.y = sel, y
			sel.Listen(m)
			return m, nil
		},
	}
}

func regSpec() *Spec {
	return &Spec{
		Type: "reg",
		Ports: func(p Params) []PortSpec {
			w := defWidth(p)
			return []PortSpec{
				{"clk", In, 1}, {"d", In, w}, {"q", Out, w},
				{"en", In, 1}, {"rst", In, 1},
			}
		},
		Build: func(sim *hades.Simulator, name string, p Params, conn map[string]*hades.Signal) (hades.Reactor, error) {
			clk, err := need(conn, name, "clk")
			if err != nil {
				return nil, err
			}
			d, err := need(conn, name, "d")
			if err != nil {
				return nil, err
			}
			q, err := need(conn, name, "q")
			if err != nil {
				return nil, err
			}
			r := &Register{
				name: name, clk: clk, d: d, q: q,
				en: optional(conn, "en"), rst: optional(conn, "rst"),
				initVal: p.Value,
			}
			r.AssignID(hades.NextID())
			clk.Listen(r)
			// Power-on value: registers come up holding their reset value,
			// which breaks X-propagation cycles through register feedback
			// loops (i = i + 1 would otherwise never become defined).
			sim.Drive(q, p.Value)
			return r, nil
		},
	}
}

func ramSpec() *Spec {
	return &Spec{
		Type: "ram",
		Ports: func(p Params) []PortSpec {
			w := defWidth(p)
			return []PortSpec{
				{"clk", In, 1}, {"addr", In, AddrWidth(p.Depth)},
				{"din", In, w}, {"we", In, 1}, {"dout", Out, w},
			}
		},
		Build: func(sim *hades.Simulator, name string, p Params, conn map[string]*hades.Signal) (hades.Reactor, error) {
			if p.Depth <= 0 {
				return nil, fmt.Errorf("operators: ram %q needs a positive depth", name)
			}
			clk, err := need(conn, name, "clk")
			if err != nil {
				return nil, err
			}
			addr, err := need(conn, name, "addr")
			if err != nil {
				return nil, err
			}
			din, err := need(conn, name, "din")
			if err != nil {
				return nil, err
			}
			we, err := need(conn, name, "we")
			if err != nil {
				return nil, err
			}
			dout, err := need(conn, name, "dout")
			if err != nil {
				return nil, err
			}
			m := &RAM{
				name: name, mem: make([]uint64, p.Depth), width: defWidth(p),
				clk: clk, addr: addr, din: din, we: we, dout: dout,
			}
			m.AssignID(hades.NextID())
			m.LoadContents(p.Init)
			clk.Listen(m)
			addr.Listen(m)
			return m, nil
		},
	}
}

func romSpec() *Spec {
	return &Spec{
		Type: "rom",
		Ports: func(p Params) []PortSpec {
			w := defWidth(p)
			return []PortSpec{{"addr", In, AddrWidth(p.Depth)}, {"dout", Out, w}}
		},
		Build: func(sim *hades.Simulator, name string, p Params, conn map[string]*hades.Signal) (hades.Reactor, error) {
			if p.Depth <= 0 {
				return nil, fmt.Errorf("operators: rom %q needs a positive depth", name)
			}
			addr, err := need(conn, name, "addr")
			if err != nil {
				return nil, err
			}
			dout, err := need(conn, name, "dout")
			if err != nil {
				return nil, err
			}
			m := &ROM{name: name, mem: make([]uint64, p.Depth), width: defWidth(p), addr: addr, dout: dout}
			m.AssignID(hades.NextID())
			for i, v := range p.Init {
				if i < len(m.mem) {
					m.mem[i] = hades.Mask(uint64(v), m.width)
				}
			}
			addr.Listen(m)
			return m, nil
		},
	}
}

func stimSpec() *Spec {
	return &Spec{
		Type: "stim",
		Ports: func(p Params) []PortSpec {
			return []PortSpec{{"clk", In, 1}, {"out", Out, defWidth(p)}, {"last", Out, 1}}
		},
		Build: func(sim *hades.Simulator, name string, p Params, conn map[string]*hades.Signal) (hades.Reactor, error) {
			clk, err := need(conn, name, "clk")
			if err != nil {
				return nil, err
			}
			out, err := need(conn, name, "out")
			if err != nil {
				return nil, err
			}
			last, err := need(conn, name, "last")
			if err != nil {
				return nil, err
			}
			s := &Stimulus{name: name, clk: clk, out: out, last: last, vec: p.Init}
			s.AssignID(hades.NextID())
			clk.Listen(s)
			return s, nil
		},
	}
}

func sinkSpec() *Spec {
	return &Spec{
		Type: "sink",
		Ports: func(p Params) []PortSpec {
			return []PortSpec{{"clk", In, 1}, {"in", In, defWidth(p)}, {"en", In, 1}}
		},
		Build: func(sim *hades.Simulator, name string, p Params, conn map[string]*hades.Signal) (hades.Reactor, error) {
			clk, err := need(conn, name, "clk")
			if err != nil {
				return nil, err
			}
			in, err := need(conn, name, "in")
			if err != nil {
				return nil, err
			}
			s := &Sink{name: name, clk: clk, in: in, en: optional(conn, "en")}
			s.AssignID(hades.NextID())
			clk.Listen(s)
			return s, nil
		},
	}
}
