package operators

import (
	"repro/internal/hades"
)

// Const drives a constant value onto its output once at elaboration time.
type Const struct {
	hades.IDBase
	name string
	y    *hades.Signal
	val  int64
}

// Name returns the instance name.
func (c *Const) Name() string { return c.name }

// React is a no-op; the value never changes.
func (c *Const) React(*hades.Simulator) {}

// UnaryFn computes a one-input combinational function on width-bit words.
type UnaryFn func(a int64, width int) int64

// Unary is a generic one-input combinational operator.
type Unary struct {
	hades.IDBase
	name  string
	a, y  *hades.Signal
	width int
	fn    UnaryFn
}

// Name returns the instance name.
func (u *Unary) Name() string { return u.name }

// React recomputes the output when the input is defined.
func (u *Unary) React(sim *hades.Simulator) {
	if u.a.Valid() {
		sim.Set(u.y, u.fn(u.a.Int(), u.width), 0)
	}
}

// BinaryFn computes a two-input combinational function on width-bit words.
type BinaryFn func(a, b int64, width int) int64

// Binary is a generic two-input combinational operator.
type Binary struct {
	hades.IDBase
	name    string
	a, b, y *hades.Signal
	width   int
	fn      BinaryFn
}

// Name returns the instance name.
func (o *Binary) Name() string { return o.name }

// React recomputes the output when both inputs are defined.
func (o *Binary) React(sim *hades.Simulator) {
	if o.a.Valid() && o.b.Valid() {
		sim.Set(o.y, o.fn(o.a.Int(), o.b.Int(), o.width), 0)
	}
}

// Word-level semantics shared with the golden interpreter (internal/interp
// mirrors these exactly; verification depends on the two agreeing).

// WordAdd adds with wrap-around.
func WordAdd(a, b int64, _ int) int64 { return a + b }

// WordSub subtracts with wrap-around.
func WordSub(a, b int64, _ int) int64 { return a - b }

// WordMul multiplies with wrap-around.
func WordMul(a, b int64, _ int) int64 { return a * b }

// WordDiv divides (signed); division by zero yields 0.
func WordDiv(a, b int64, _ int) int64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// WordMod is the signed remainder; remainder by zero yields 0.
func WordMod(a, b int64, _ int) int64 {
	if b == 0 {
		return 0
	}
	return a % b
}

// WordAnd is bitwise and.
func WordAnd(a, b int64, _ int) int64 { return a & b }

// WordOr is bitwise or.
func WordOr(a, b int64, _ int) int64 { return a | b }

// WordXor is bitwise exclusive-or.
func WordXor(a, b int64, _ int) int64 { return a ^ b }

// WordShl shifts left; the amount is taken modulo 64.
func WordShl(a, b int64, _ int) int64 { return a << (uint64(b) & 63) }

// WordShr shifts right logically within the operator width.
func WordShr(a, b int64, width int) int64 {
	return int64(hades.Mask(uint64(a), width) >> (uint64(b) & 63))
}

// WordSra shifts right arithmetically (sign bit replicates).
func WordSra(a, b int64, _ int) int64 { return a >> (uint64(b) & 63) }

// WordNeg is two's-complement negation.
func WordNeg(a int64, _ int) int64 { return -a }

// WordNot is bitwise complement.
func WordNot(a int64, _ int) int64 { return ^a }

// WordLNot is logical not: 1 when the word is zero, else 0.
func WordLNot(a int64, _ int) int64 {
	if a == 0 {
		return 1
	}
	return 0
}

// WordB2I zero-extends a 1-bit value to a word: comparison outputs used
// in value context go through this so that the bit 1 reads as integer 1
// rather than the sign-extended -1.
func WordB2I(a int64, _ int) int64 { return a & 1 }

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Comparison functions produce a 1-bit result on signed operands.

// WordEq is a == b.
func WordEq(a, b int64, _ int) int64 { return b2i(a == b) }

// WordNe is a != b.
func WordNe(a, b int64, _ int) int64 { return b2i(a != b) }

// WordLt is a < b (signed).
func WordLt(a, b int64, _ int) int64 { return b2i(a < b) }

// WordLe is a <= b (signed).
func WordLe(a, b int64, _ int) int64 { return b2i(a <= b) }

// WordGt is a > b (signed).
func WordGt(a, b int64, _ int) int64 { return b2i(a > b) }

// WordGe is a >= b (signed).
func WordGe(a, b int64, _ int) int64 { return b2i(a >= b) }

// Mux is an n-way word multiplexer with a select input.
type Mux struct {
	hades.IDBase
	name string
	ins  []*hades.Signal
	sel  *hades.Signal
	y    *hades.Signal
}

// Name returns the instance name.
func (m *Mux) Name() string { return m.name }

// React forwards the selected input when select and that input are defined.
func (m *Mux) React(sim *hades.Simulator) {
	if !m.sel.Valid() {
		return
	}
	idx := int(m.sel.Uint())
	if idx < 0 || idx >= len(m.ins) {
		return
	}
	in := m.ins[idx]
	if in.Valid() {
		sim.Set(m.y, in.Int(), 0)
	}
}
