package operators

import (
	"repro/internal/hades"
)

// Replayable is implemented by operator models that carry run-time
// state or elaboration-time power-on drives. After hades.Simulator.Reset
// has rewound the kernel, ResetState rewinds the component to the state
// a fresh Build would have produced: counters and edge trackers clear,
// memory/stimulus contents reload from init (nil means the contents a
// fresh build with no InitData would get), and power-on signal drives
// are re-asserted through sim. netlist.Elaboration.Reset walks the
// components in elaboration order, so a replayed configuration starts
// bit-for-bit identical to a freshly elaborated one.
//
// Purely combinational operators (adders, comparators, muxes) hold no
// state and do not implement the interface; their outputs are
// re-derived by the elaboration-time settle pass.
type Replayable interface {
	ResetState(sim *hades.Simulator, init []int64)
}

// ResetState re-asserts the constant's power-on drive.
func (c *Const) ResetState(sim *hades.Simulator, _ []int64) {
	sim.Drive(c.y, c.val)
}

// ResetState clears the edge tracker and re-asserts the power-on value.
func (r *Register) ResetState(sim *hades.Simulator, _ []int64) {
	r.prevClk = false
	sim.Drive(r.q, r.initVal)
}

// ResetState reloads the memory from init (zero-filling the tail, as a
// fresh build does) and clears the access counters and edge tracker.
func (m *RAM) ResetState(_ *hades.Simulator, init []int64) {
	m.prevClk = false
	m.reads, m.writes = 0, 0
	m.LoadContents(init)
}

// ResetState reloads the table from init, mirroring a fresh build.
func (m *ROM) ResetState(_ *hades.Simulator, init []int64) {
	for i := range m.mem {
		if i < len(init) {
			m.mem[i] = hades.Mask(uint64(init[i]), m.width)
		} else {
			m.mem[i] = 0
		}
	}
}

// ResetState rewinds the stream to its start and replaces the vector
// with init (the seed a fresh build would have received).
func (s *Stimulus) ResetState(_ *hades.Simulator, init []int64) {
	s.prevClk = false
	s.pos = 0
	s.vec = init
}

// ResetState clears the recording, keeping its capacity for the replay.
func (s *Sink) ResetState(_ *hades.Simulator, _ []int64) {
	s.prevClk = false
	s.rec = s.rec[:0]
}
