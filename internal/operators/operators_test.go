package operators

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/hades"
)

// buildBin elaborates a single binary operator and returns the signals.
func buildBin(t *testing.T, typ string, width int) (*hades.Simulator, *hades.Signal, *hades.Signal, *hades.Signal) {
	t.Helper()
	reg := DefaultRegistry()
	spec, ok := reg.Lookup(typ)
	if !ok {
		t.Fatalf("type %q not registered", typ)
	}
	sim := hades.NewSimulator()
	p := Params{Width: width}
	conn := map[string]*hades.Signal{}
	for _, ps := range spec.Ports(p) {
		conn[ps.Name] = sim.NewSignal(typ+"."+ps.Name, ps.Width)
	}
	if _, err := spec.Build(sim, typ+"0", p, conn); err != nil {
		t.Fatal(err)
	}
	return sim, conn["a"], conn["b"], conn["y"]
}

func evalBin(t *testing.T, typ string, width int, a, b int64) int64 {
	t.Helper()
	sim, sa, sb, sy := buildBin(t, typ, width)
	sim.Set(sa, a, 1)
	sim.Set(sb, b, 1)
	if _, err := sim.Run(hades.TimeMax); err != nil {
		t.Fatal(err)
	}
	return sy.Int()
}

func TestBinaryOperatorSemantics(t *testing.T) {
	cases := []struct {
		typ   string
		a, b  int64
		want  int64
		width int
	}{
		{"add", 3, 4, 7, 32},
		{"add", 1<<31 - 1, 1, -(1 << 31), 32}, // wrap-around
		{"sub", 3, 5, -2, 32},
		{"mul", -3, 7, -21, 32},
		{"mul", 1 << 20, 1 << 20, 0, 32}, // overflow wraps to 0 mod 2^32
		{"div", 7, 2, 3, 32},
		{"div", -7, 2, -3, 32}, // truncation toward zero (Java)
		{"div", 5, 0, 0, 32},   // defined: divide by zero gives 0
		{"mod", 7, 3, 1, 32},
		{"mod", -7, 3, -1, 32}, // Java remainder sign
		{"mod", 5, 0, 0, 32},
		{"and", 0b1100, 0b1010, 0b1000, 32},
		{"or", 0b1100, 0b1010, 0b1110, 32},
		{"xor", 0b1100, 0b1010, 0b0110, 32},
		{"shl", 1, 4, 16, 32},
		{"shl", 1, 31, -(1 << 31), 32},
		{"shr", -1, 28, 15, 32}, // logical shift pulls in zeros at width 32
		{"sra", -16, 2, -4, 32}, // arithmetic shift keeps sign
		{"shr", 16, 2, 4, 32},
		{"add", 200, 100, 44, 8}, // 8-bit wrap: 300 mod 256 = 44
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("%s_%d_%d_w%d", c.typ, c.a, c.b, c.width), func(t *testing.T) {
			if got := evalBin(t, c.typ, c.width, c.a, c.b); got != c.want {
				t.Errorf("%s(%d,%d)w%d = %d, want %d", c.typ, c.a, c.b, c.width, got, c.want)
			}
		})
	}
}

func TestComparisonOperators(t *testing.T) {
	cases := []struct {
		typ  string
		a, b int64
		want int64
	}{
		{"eq", 5, 5, 1}, {"eq", 5, 6, 0},
		{"ne", 5, 6, 1}, {"ne", 5, 5, 0},
		{"lt", -1, 0, 1}, {"lt", 0, -1, 0},
		{"le", 3, 3, 1}, {"le", 4, 3, 0},
		{"gt", 2, 1, 1}, {"gt", 1, 2, 0},
		{"ge", 2, 2, 1}, {"ge", 1, 2, 0},
	}
	for _, c := range cases {
		got := evalBin(t, c.typ, 32, c.a, c.b)
		// comparison outputs are 1-bit; Int() of 1 sign-extends to -1
		got &= 1
		if got != c.want {
			t.Errorf("%s(%d,%d) = %d, want %d", c.typ, c.a, c.b, got, c.want)
		}
	}
}

func TestAddSubInverseProperty(t *testing.T) {
	f := func(a, b int32) bool {
		sum := WordAdd(int64(a), int64(b), 32)
		back := WordSub(sum, int64(b), 32)
		return hades.SignExtend(hades.Mask(uint64(back), 32), 32) ==
			hades.SignExtend(hades.Mask(uint64(int64(a)), 32), 32)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShiftEquivalenceProperty(t *testing.T) {
	// shl by k equals mul by 2^k for k in [0,8).
	f := func(a int32, k uint8) bool {
		kk := int64(k % 8)
		l := hades.Mask(uint64(WordShl(int64(a), kk, 32)), 32)
		m := hades.Mask(uint64(WordMul(int64(a), 1<<uint(kk), 32)), 32)
		return l == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnaryOperators(t *testing.T) {
	reg := DefaultRegistry()
	for _, c := range []struct {
		typ  string
		in   int64
		want int64
	}{
		{"neg", 5, -5}, {"neg", -5, 5},
		{"not", 0, -1}, {"not", -1, 0},
		{"lnot", 0, 1}, {"lnot", 7, 0},
	} {
		spec, _ := reg.Lookup(c.typ)
		sim := hades.NewSimulator()
		p := Params{Width: 32}
		conn := map[string]*hades.Signal{}
		for _, ps := range spec.Ports(p) {
			conn[ps.Name] = sim.NewSignal(ps.Name, ps.Width)
		}
		if _, err := spec.Build(sim, c.typ, p, conn); err != nil {
			t.Fatal(err)
		}
		sim.Set(conn["a"], c.in, 1)
		if _, err := sim.Run(hades.TimeMax); err != nil {
			t.Fatal(err)
		}
		got := conn["y"].Int()
		if c.typ == "lnot" {
			got &= 1
		}
		if got != c.want {
			t.Errorf("%s(%d) = %d, want %d", c.typ, c.in, got, c.want)
		}
	}
}

func TestConstDrivesImmediately(t *testing.T) {
	reg := DefaultRegistry()
	spec, _ := reg.Lookup("const")
	sim := hades.NewSimulator()
	y := sim.NewSignal("y", 16)
	if _, err := spec.Build(sim, "c", Params{Width: 16, Value: -42}, map[string]*hades.Signal{"y": y}); err != nil {
		t.Fatal(err)
	}
	if !y.Valid() || y.Int() != -42 {
		t.Fatalf("const output %v/%d", y.Valid(), y.Int())
	}
}

func TestMuxSelects(t *testing.T) {
	reg := DefaultRegistry()
	spec, _ := reg.Lookup("mux")
	sim := hades.NewSimulator()
	p := Params{Width: 8, Inputs: 3}
	conn := map[string]*hades.Signal{}
	for _, ps := range spec.Ports(p) {
		conn[ps.Name] = sim.NewSignal(ps.Name, ps.Width)
	}
	if conn["sel"].Width() != 2 {
		t.Fatalf("3-input mux needs 2-bit select, got %d", conn["sel"].Width())
	}
	if _, err := spec.Build(sim, "m", p, conn); err != nil {
		t.Fatal(err)
	}
	sim.Set(conn["in0"], 10, 1)
	sim.Set(conn["in1"], 20, 1)
	sim.Set(conn["in2"], 30, 1)
	sim.Set(conn["sel"], 1, 2)
	if _, err := sim.Run(hades.TimeMax); err != nil {
		t.Fatal(err)
	}
	if conn["y"].Int() != 20 {
		t.Fatalf("mux y=%d want 20", conn["y"].Int())
	}
	sim.Set(conn["sel"], 2, 1)
	if _, err := sim.Run(hades.TimeMax); err != nil {
		t.Fatal(err)
	}
	if conn["y"].Int() != 30 {
		t.Fatalf("mux y=%d want 30", conn["y"].Int())
	}
	// Out-of-range select (3) keeps the previous output rather than failing.
	sim.Set(conn["sel"], 3, 1)
	if _, err := sim.Run(hades.TimeMax); err != nil {
		t.Fatal(err)
	}
	if conn["y"].Int() != 30 {
		t.Fatalf("mux y=%d want held 30", conn["y"].Int())
	}
}

// regFixture wires a register with clock, enable and reset for testing.
type regFixture struct {
	sim                *hades.Simulator
	clk, d, q, en, rst *hades.Signal
}

func newRegFixture(t *testing.T, withEn, withRst bool, initVal int64) *regFixture {
	t.Helper()
	reg := DefaultRegistry()
	spec, _ := reg.Lookup("reg")
	sim := hades.NewSimulator()
	f := &regFixture{
		sim: sim,
		clk: sim.NewSignal("clk", 1),
		d:   sim.NewSignal("d", 32),
		q:   sim.NewSignal("q", 32),
	}
	conn := map[string]*hades.Signal{"clk": f.clk, "d": f.d, "q": f.q}
	if withEn {
		f.en = sim.NewSignal("en", 1)
		conn["en"] = f.en
	}
	if withRst {
		f.rst = sim.NewSignal("rst", 1)
		conn["rst"] = f.rst
	}
	if _, err := spec.Build(sim, "r", Params{Width: 32, Value: initVal}, conn); err != nil {
		t.Fatal(err)
	}
	return f
}

func (f *regFixture) tick(t *testing.T, at hades.Time) {
	t.Helper()
	f.sim.Set(f.clk, 1, at-f.sim.Now())
	f.sim.Set(f.clk, 0, at-f.sim.Now()+5)
	if _, err := f.sim.Run(at + 6); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterSamplesOnRisingEdge(t *testing.T) {
	f := newRegFixture(t, false, false, 0)
	f.sim.Set(f.d, 99, 1)
	f.tick(t, 10)
	if f.q.Int() != 99 {
		t.Fatalf("q=%d want 99", f.q.Int())
	}
	// d changes but no edge: q holds.
	f.sim.Set(f.d, 7, 1)
	if _, err := f.sim.Run(f.sim.Now() + 2); err != nil {
		t.Fatal(err)
	}
	if f.q.Int() != 99 {
		t.Fatalf("q=%d want held 99", f.q.Int())
	}
	f.tick(t, 30)
	if f.q.Int() != 7 {
		t.Fatalf("q=%d want 7", f.q.Int())
	}
}

func TestRegisterPowerOnValue(t *testing.T) {
	f := newRegFixture(t, false, false, 42)
	if !f.q.Valid() || f.q.Int() != 42 {
		t.Fatalf("power-on q=%v/%d want 42", f.q.Valid(), f.q.Int())
	}
}

func TestRegisterEnableGates(t *testing.T) {
	f := newRegFixture(t, true, false, 0)
	f.sim.Drive(f.en, 0)
	f.sim.Set(f.d, 5, 1)
	f.tick(t, 10)
	if f.q.Int() != 0 {
		t.Fatal("disabled register must hold its power-on value")
	}
	f.sim.Drive(f.en, 1)
	f.tick(t, 30)
	if f.q.Int() != 5 {
		t.Fatalf("q=%d want 5", f.q.Int())
	}
}

func TestRegisterSyncReset(t *testing.T) {
	f := newRegFixture(t, false, true, 42)
	f.sim.Drive(f.rst, 1)
	f.sim.Set(f.d, 5, 1)
	f.tick(t, 10)
	if f.q.Int() != 42 {
		t.Fatalf("q=%d want reset value 42", f.q.Int())
	}
	f.sim.Drive(f.rst, 0)
	f.tick(t, 30)
	if f.q.Int() != 5 {
		t.Fatalf("q=%d want 5 after reset release", f.q.Int())
	}
}

// ramFixture wires a RAM for testing.
type ramFixture struct {
	sim                     *hades.Simulator
	clk, addr, din, we, out *hades.Signal
	ram                     *RAM
}

func newRAMFixture(t *testing.T, depth int, init []int64) *ramFixture {
	t.Helper()
	reg := DefaultRegistry()
	spec, _ := reg.Lookup("ram")
	sim := hades.NewSimulator()
	f := &ramFixture{
		sim:  sim,
		clk:  sim.NewSignal("clk", 1),
		addr: sim.NewSignal("addr", AddrWidth(depth)),
		din:  sim.NewSignal("din", 32),
		we:   sim.NewSignal("we", 1),
		out:  sim.NewSignal("dout", 32),
	}
	c, err := spec.Build(sim, "m", Params{Width: 32, Depth: depth, Init: init},
		map[string]*hades.Signal{"clk": f.clk, "addr": f.addr, "din": f.din, "we": f.we, "dout": f.out})
	if err != nil {
		t.Fatal(err)
	}
	f.ram = c.(*RAM)
	return f
}

func (f *ramFixture) tick(t *testing.T) {
	t.Helper()
	f.sim.Set(f.clk, 1, 1)
	f.sim.Set(f.clk, 0, 6)
	if _, err := f.sim.Run(f.sim.Now() + 7); err != nil {
		t.Fatal(err)
	}
}

func TestRAMWriteThenRead(t *testing.T) {
	f := newRAMFixture(t, 16, nil)
	f.sim.Drive(f.we, 1)
	f.sim.Set(f.addr, 3, 1)
	f.sim.Set(f.din, 1234, 1)
	f.tick(t)
	if f.ram.Peek(3) != 1234 {
		t.Fatalf("mem[3]=%d want 1234", f.ram.Peek(3))
	}
	// Async read reflects the write at the same address.
	if f.out.Int() != 1234 {
		t.Fatalf("dout=%d want 1234", f.out.Int())
	}
	// Read another address without writing.
	f.sim.Drive(f.we, 0)
	f.sim.Set(f.addr, 0, 1)
	if _, err := f.sim.Run(f.sim.Now() + 2); err != nil {
		t.Fatal(err)
	}
	if f.out.Int() != 0 {
		t.Fatalf("dout=%d want 0", f.out.Int())
	}
}

func TestRAMInitAndDirectAccess(t *testing.T) {
	f := newRAMFixture(t, 8, []int64{10, 20, 30})
	if f.ram.Peek(0) != 10 || f.ram.Peek(1) != 20 || f.ram.Peek(2) != 30 || f.ram.Peek(3) != 0 {
		t.Fatalf("init wrong: %v", f.ram.Contents())
	}
	f.ram.Poke(7, -9)
	if f.ram.Peek(7) != -9 {
		t.Fatal("poke failed")
	}
	if f.ram.Peek(-1) != 0 || f.ram.Peek(100) != 0 {
		t.Fatal("out-of-range peek must read 0")
	}
	f.ram.Poke(100, 5) // silently ignored
	if got := len(f.ram.Contents()); got != 8 {
		t.Fatalf("depth %d", got)
	}
}

func TestRAMNoWriteWhenDisabled(t *testing.T) {
	f := newRAMFixture(t, 8, nil)
	f.sim.Drive(f.we, 0)
	f.sim.Set(f.addr, 2, 1)
	f.sim.Set(f.din, 777, 1)
	f.tick(t)
	if f.ram.Peek(2) != 0 {
		t.Fatalf("mem[2]=%d want 0 (we low)", f.ram.Peek(2))
	}
}

func TestROMRead(t *testing.T) {
	reg := DefaultRegistry()
	spec, _ := reg.Lookup("rom")
	sim := hades.NewSimulator()
	addr := sim.NewSignal("addr", 3)
	dout := sim.NewSignal("dout", 32)
	if _, err := spec.Build(sim, "t", Params{Width: 32, Depth: 8, Init: []int64{5, 6, 7}},
		map[string]*hades.Signal{"addr": addr, "dout": dout}); err != nil {
		t.Fatal(err)
	}
	sim.Set(addr, 2, 1)
	if _, err := sim.Run(hades.TimeMax); err != nil {
		t.Fatal(err)
	}
	if dout.Int() != 7 {
		t.Fatalf("rom[2]=%d want 7", dout.Int())
	}
}

func TestStimulusAndSinkRoundTrip(t *testing.T) {
	reg := DefaultRegistry()
	sim := hades.NewSimulator()
	clk := sim.NewSignal("clk", 1)
	out := sim.NewSignal("out", 32)
	last := sim.NewSignal("last", 1)
	stSpec, _ := reg.Lookup("stim")
	vec := []int64{4, 5, 6}
	if _, err := stSpec.Build(sim, "s", Params{Width: 32, Init: vec},
		map[string]*hades.Signal{"clk": clk, "out": out, "last": last}); err != nil {
		t.Fatal(err)
	}
	skSpec, _ := reg.Lookup("sink")
	sk, err := skSpec.Build(sim, "k", Params{Width: 32},
		map[string]*hades.Signal{"clk": clk, "in": out})
	if err != nil {
		t.Fatal(err)
	}
	c := hades.NewClock("clk", clk, 10, 60)
	c.Start(sim)
	if _, err := sim.Run(hades.TimeMax); err != nil {
		t.Fatal(err)
	}
	rec := sk.(*Sink).Recorded()
	// The sink samples the stimulus value of the *previous* edge (the
	// stimulus drives its output in a delta after the edge), so the
	// recorded stream is the vector delayed by one cycle and held.
	want := []int64{4, 5, 6, 6, 6}
	if len(rec) < len(want) {
		t.Fatalf("recorded %v", rec)
	}
	for i, w := range want {
		if rec[i] != w {
			t.Fatalf("rec=%v want prefix %v", rec, want)
		}
	}
	if !last.Bool() {
		t.Fatal("last must assert at end of stream")
	}
}

func TestRegistryCompleteness(t *testing.T) {
	reg := DefaultRegistry()
	want := []string{
		"const", "neg", "not", "lnot", "b2i",
		"add", "sub", "mul", "div", "mod",
		"and", "or", "xor", "shl", "shr", "sra",
		"eq", "ne", "lt", "le", "gt", "ge",
		"mux", "reg", "ram", "rom", "stim", "sink",
	}
	for _, typ := range want {
		if _, ok := reg.Lookup(typ); !ok {
			t.Errorf("missing operator type %q", typ)
		}
	}
	if got := len(reg.Types()); got != len(want) {
		t.Errorf("registry has %d types, want %d", got, len(want))
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	reg := NewRegistry()
	reg.Register(&Spec{Type: "x"})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	reg.Register(&Spec{Type: "x"})
}

func TestAddrWidth(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 4096: 12}
	for depth, want := range cases {
		if got := AddrWidth(depth); got != want {
			t.Errorf("AddrWidth(%d)=%d want %d", depth, got, want)
		}
	}
}

func TestUnconnectedPortFailsElaboration(t *testing.T) {
	reg := DefaultRegistry()
	spec, _ := reg.Lookup("add")
	sim := hades.NewSimulator()
	a := sim.NewSignal("a", 32)
	_, err := spec.Build(sim, "a0", Params{Width: 32}, map[string]*hades.Signal{"a": a})
	if err == nil {
		t.Fatal("expected connection error")
	}
}

func TestRAMRequiresDepth(t *testing.T) {
	reg := DefaultRegistry()
	spec, _ := reg.Lookup("ram")
	sim := hades.NewSimulator()
	_, err := spec.Build(sim, "m", Params{Width: 32}, map[string]*hades.Signal{})
	if err == nil {
		t.Fatal("expected depth error")
	}
}
