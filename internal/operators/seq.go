package operators

import (
	"repro/internal/hades"
)

// Register is an edge-triggered word register with optional synchronous
// reset and write enable. It listens on its clock only; data and control
// inputs are sampled at the rising edge, which gives standard synchronous
// semantics under the kernel's delta-cycle model.
type Register struct {
	hades.IDBase
	name    string
	clk     *hades.Signal
	d       *hades.Signal
	q       *hades.Signal
	en      *hades.Signal // nil: always enabled
	rst     *hades.Signal // nil: no reset
	initVal int64
	prevClk bool
}

// Name returns the instance name.
func (r *Register) Name() string { return r.name }

// React samples on rising clock edges.
func (r *Register) React(sim *hades.Simulator) {
	if !hades.RisingEdge(r.clk, &r.prevClk) {
		return
	}
	if r.rst != nil && r.rst.Bool() {
		sim.Set(r.q, r.initVal, 0)
		return
	}
	if r.en != nil && !r.en.Bool() {
		return
	}
	if r.d.Valid() {
		sim.Set(r.q, r.d.Int(), 0)
	}
}

// RAM is a single-port word memory with asynchronous read and synchronous
// write, matching the SRAMs the paper's FDCT implementations use for
// input, output and intermediate images. Contents survive between Run
// calls so the reconfiguration controller can carry data across temporal
// partitions, and are accessible for file load/compare.
type RAM struct {
	hades.IDBase
	name    string
	mem     []uint64
	width   int
	clk     *hades.Signal
	addr    *hades.Signal
	din     *hades.Signal
	we      *hades.Signal
	dout    *hades.Signal
	prevClk bool
	writes  uint64
	reads   uint64
}

// Name returns the instance name.
func (m *RAM) Name() string { return m.name }

// Depth returns the number of words.
func (m *RAM) Depth() int { return len(m.mem) }

// Width returns the word width.
func (m *RAM) Width() int { return m.width }

// Peek reads a word directly (for verification and file dumps).
func (m *RAM) Peek(addr int) int64 {
	if addr < 0 || addr >= len(m.mem) {
		return 0
	}
	return hades.SignExtend(m.mem[addr], m.width)
}

// Poke writes a word directly (for file loads before simulation).
func (m *RAM) Poke(addr int, v int64) {
	if addr >= 0 && addr < len(m.mem) {
		m.mem[addr] = hades.Mask(uint64(v), m.width)
	}
}

// Contents returns a snapshot of the memory as sign-extended words.
func (m *RAM) Contents() []int64 {
	out := make([]int64, len(m.mem))
	m.CopyContents(out)
	return out
}

// CopyContents writes the memory into dst as sign-extended words,
// stopping at the shorter of the two — the allocation-free form of
// Contents, for the reconfiguration write-back on the replay hot path.
func (m *RAM) CopyContents(dst []int64) {
	n := len(m.mem)
	if len(dst) < n {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		dst[i] = hades.SignExtend(m.mem[i], m.width)
	}
}

// LoadContents replaces the memory contents from the given words.
func (m *RAM) LoadContents(words []int64) {
	for i := range m.mem {
		if i < len(words) {
			m.mem[i] = hades.Mask(uint64(words[i]), m.width)
		} else {
			m.mem[i] = 0
		}
	}
}

// Accesses returns the read and write counts (address-change reads are
// counted per combinational read update).
func (m *RAM) Accesses() (reads, writes uint64) { return m.reads, m.writes }

// React performs the synchronous write on rising clock edges and keeps the
// asynchronous read output coherent with the address input.
func (m *RAM) React(sim *hades.Simulator) {
	if hades.RisingEdge(m.clk, &m.prevClk) && m.we.Bool() && m.addr.Valid() && m.din.Valid() {
		a := int(m.addr.Uint())
		if a < len(m.mem) {
			m.mem[a] = hades.Mask(m.din.Uint(), m.width)
			m.writes++
		}
	}
	m.updateRead(sim)
}

func (m *RAM) updateRead(sim *hades.Simulator) {
	if !m.addr.Valid() {
		return
	}
	a := int(m.addr.Uint())
	if a >= len(m.mem) {
		return
	}
	m.reads++
	sim.Set(m.dout, hades.SignExtend(m.mem[a], m.width), 0)
}

// ROM is a read-only word memory with asynchronous read, used for
// coefficient tables.
type ROM struct {
	hades.IDBase
	name  string
	mem   []uint64
	width int
	addr  *hades.Signal
	dout  *hades.Signal
}

// Name returns the instance name.
func (m *ROM) Name() string { return m.name }

// Depth returns the number of words.
func (m *ROM) Depth() int { return len(m.mem) }

// Peek reads a word directly.
func (m *ROM) Peek(addr int) int64 {
	if addr < 0 || addr >= len(m.mem) {
		return 0
	}
	return hades.SignExtend(m.mem[addr], m.width)
}

// React keeps the read port coherent with the address.
func (m *ROM) React(sim *hades.Simulator) {
	if !m.addr.Valid() {
		return
	}
	a := int(m.addr.Uint())
	if a >= len(m.mem) {
		return
	}
	sim.Set(m.dout, hades.SignExtend(m.mem[a], m.width), 0)
}

// Stimulus replays a vector of input values: on each rising clock edge it
// drives the next word (holding the last word at end of stream) and a
// 1-bit last flag. It is the file-driven I/O source of the infrastructure.
type Stimulus struct {
	hades.IDBase
	name    string
	clk     *hades.Signal
	out     *hades.Signal
	last    *hades.Signal
	vec     []int64
	pos     int
	prevClk bool
}

// Name returns the instance name.
func (s *Stimulus) Name() string { return s.name }

// Position returns how many words have been issued.
func (s *Stimulus) Position() int { return s.pos }

// React advances the stream on rising edges.
func (s *Stimulus) React(sim *hades.Simulator) {
	if !hades.RisingEdge(s.clk, &s.prevClk) {
		return
	}
	if len(s.vec) == 0 {
		sim.Set(s.last, 1, 0)
		return
	}
	idx := s.pos
	if idx >= len(s.vec) {
		idx = len(s.vec) - 1
	}
	sim.Set(s.out, s.vec[idx], 0)
	if s.pos >= len(s.vec)-1 {
		sim.Set(s.last, 1, 0)
	} else {
		sim.Set(s.last, 0, 0)
	}
	if s.pos < len(s.vec) {
		s.pos++
	}
}

// Sink records the value of its input at every rising clock edge on which
// the enable input is high — the collector side of file-based I/O.
type Sink struct {
	hades.IDBase
	name    string
	clk     *hades.Signal
	in      *hades.Signal
	en      *hades.Signal // nil: sample every edge
	rec     []int64
	prevClk bool
}

// Name returns the instance name.
func (s *Sink) Name() string { return s.name }

// Recorded returns the captured samples.
func (s *Sink) Recorded() []int64 { return s.rec }

// React samples on enabled rising edges.
func (s *Sink) React(sim *hades.Simulator) {
	if !hades.RisingEdge(s.clk, &s.prevClk) {
		return
	}
	if s.en != nil && !s.en.Bool() {
		return
	}
	if s.in.Valid() {
		s.rec = append(s.rec, s.in.Int())
	}
}
