package xsl

import (
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/lang"
	"repro/internal/xmlspec"
)

const sampleXML = `<top name="t">
  <items>
    <item id="a" kind="x"/>
    <item id="b"/>
  </items>
  <note>  hello </note>
</top>`

func TestParseDOM(t *testing.T) {
	root, err := Parse([]byte(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	if root.Name != "top" || root.Attr("name") != "t" {
		t.Fatalf("root=%+v", root)
	}
	items := root.Find("items/item")
	if len(items) != 2 || items[0].Attr("id") != "a" {
		t.Fatalf("items=%v", items)
	}
	if items[1].Parent.Name != "items" {
		t.Fatal("parent link missing")
	}
	if root.First("note").TrimText() != "hello" {
		t.Fatalf("text=%q", root.First("note").Text)
	}
	if root.First("missing") != nil {
		t.Fatal("First on missing path must be nil")
	}
	if got := len(root.Find("items/*")); got != 2 {
		t.Fatalf("wildcard find=%d", got)
	}
}

func TestParseErrors(t *testing.T) {
	for _, doc := range []string{"", "<a><b></a>", "<a/><b/>", "<a>"} {
		if _, err := Parse([]byte(doc)); err == nil {
			t.Errorf("Parse(%q) must fail", doc)
		}
	}
}

func TestTemplateDirectives(t *testing.T) {
	sheet := &Stylesheet{
		Name: "test",
		Rules: []Rule{
			{Match: "top", Template: "T:{@name} items={count:items/item}\n{apply:items/item}"},
			{Match: "item", Template: "- {pos()} {name()} {@id} kind={@kind|none}{if:@kind} HAS{else} MISSING{end}\n"},
		},
	}
	out, err := TransformBytes(sheet, []byte(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	want := "T:t items=2\n- 0 item a kind=x HAS\n- 1 item b kind=none MISSING\n"
	if out != want {
		t.Fatalf("out=%q want %q", out, want)
	}
}

func TestTemplateLiteralBraces(t *testing.T) {
	sheet := &Stylesheet{Rules: []Rule{{Match: "top", Template: "{{@x}}"}}}
	out, err := TransformBytes(sheet, []byte(`<top/>`))
	if err != nil {
		t.Fatal(err)
	}
	if out != "{@x}" {
		t.Fatalf("out=%q", out)
	}
}

func TestTemplateErrors(t *testing.T) {
	for _, tpl := range []string{"{bogus}", "{@x", "{if:@a} no end", "{}"} {
		sheet := &Stylesheet{Rules: []Rule{{Match: "top", Template: tpl}}}
		if _, err := TransformBytes(sheet, []byte(`<top/>`)); err == nil {
			t.Errorf("template %q must fail", tpl)
		}
	}
}

func TestDefaultRuleRecurses(t *testing.T) {
	sheet := &Stylesheet{Rules: []Rule{{Match: "item", Template: "[{@id}]"}}}
	out, err := TransformBytes(sheet, []byte(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	if out != "[a][b]" {
		t.Fatalf("out=%q", out)
	}
}

func TestRuleCycleDetected(t *testing.T) {
	sheet := &Stylesheet{Rules: []Rule{{Match: "top", Template: "{apply:.}"}}}
	// apply:. is not a cycle; build a real one: rule applies itself via
	// a render func.
	sheet = &Stylesheet{Rules: []Rule{{Match: "top", Render: func(e *Engine, n *Node) (string, error) {
		return e.Apply(n)
	}}}}
	if _, err := TransformBytes(sheet, []byte(`<top/>`)); err == nil ||
		!strings.Contains(err.Error(), "recursion") {
		t.Fatalf("err=%v", err)
	}
}

// compiled design fixtures ---------------------------------------------

func compiledDocs(t *testing.T) (dp, fsm, rtgDoc []byte) {
	t.Helper()
	src := `void f(int[] a, int[] b, int n) {
	  for (int i = 0; i < n; i = i + 1) { b[i] = a[i] * 2; }
	  partition;
	  for (int j = 0; j < n; j = j + 1) { a[j] = b[j] + 1; }
	}`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := compiler.Compile(prog, "f", compiler.Config{
		ArraySizes: map[string]int{"a": 8, "b": 8},
		ScalarArgs: map[string]int64{"n": 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	dpDoc, err := xmlspec.Marshal(res.Design.Datapaths["f_p1"])
	if err != nil {
		t.Fatal(err)
	}
	fsmDoc, err := xmlspec.Marshal(res.Design.FSMs["f_p1_ctl"])
	if err != nil {
		t.Fatal(err)
	}
	rDoc, err := xmlspec.Marshal(res.Design.RTG)
	if err != nil {
		t.Fatal(err)
	}
	return dpDoc, fsmDoc, rDoc
}

func TestDatapathToDot(t *testing.T) {
	dp, _, _ := compiledDocs(t)
	out, err := TransformBytes(DatapathToDot(), dp)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"digraph \"f_p1\"", "\"m_a\"", "\"m_b\"", "ram",
		"\"__fsm__\"", "style=dashed", "->",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dot missing %q:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Error("dot not closed")
	}
}

func TestFSMToDot(t *testing.T) {
	_, fsm, _ := compiledDocs(t)
	out, err := TransformBytes(FSMToDot(), fsm)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"digraph", "\"END\"", "doublecircle", "label=\"s0\""} {
		if !strings.Contains(out, want) {
			t.Errorf("fsm dot missing %q:\n%s", want, out)
		}
	}
}

func TestRTGToDot(t *testing.T) {
	_, _, r := compiledDocs(t)
	out, err := TransformBytes(RTGToDot(), r)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"\"cfg1\"", "\"cfg2\"", "cylinder", "\"cfg1\" -> \"cfg2\""} {
		if !strings.Contains(out, want) {
			t.Errorf("rtg dot missing %q:\n%s", want, out)
		}
	}
}

func TestFSMToJava(t *testing.T) {
	_, fsm, _ := compiledDocs(t)
	out, err := TransformBytes(FSMToJava(), fsm)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"public class f_p1_ctl", "public void step()", "switch (state)",
		"ST_END", "public boolean s0;", "inFinal", "outputs();",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("java missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "strue") || strings.Contains(out, "sfalse") {
		t.Error("guard rewriting corrupted identifiers")
	}
}

func TestRTGToJava(t *testing.T) {
	_, _, r := compiledDocs(t)
	out, err := TransformBytes(RTGToJava(), r)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"public class f_rtg", "new int[8]", "case \"cfg1\"", "runConfiguration",
		"cfg = \"cfg2\";", "cfg = null;",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rtg java missing %q:\n%s", want, out)
		}
	}
}

func TestDatapathToHDS(t *testing.T) {
	dp, _, _ := compiledDocs(t)
	out, err := TransformBytes(DatapathToHDS(), dp)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"[design] f_p1", "[components]", "component m_a ram",
		"[nets]", "net ", "[controls]", "[statuses]", "status s0", "[end]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("hds missing %q:\n%s", want, out)
		}
	}
}

func TestForDocument(t *testing.T) {
	dp, fsm, r := compiledDocs(t)
	for _, doc := range [][]byte{dp, fsm, r} {
		root, err := Parse(doc)
		if err != nil {
			t.Fatal(err)
		}
		sheet, err := ForDocument(root)
		if err != nil {
			t.Fatal(err)
		}
		out, err := Transform(sheet, root)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(out, "digraph") {
			t.Errorf("not dot output: %q", out[:20])
		}
	}
	if _, err := ForDocument(&Node{Name: "mystery"}); err == nil {
		t.Error("unknown root must fail")
	}
}

func TestJavaGuard(t *testing.T) {
	cases := map[string]string{
		"":         "true",
		"s0":       "s0",
		"s1 & !s2": "s1 && !s2",
		"s1 | s10": "s1 || s10",
		"1":        "true",
		"0":        "false",
		"(s0 & 1)": "(s0 && true)",
		"!(a | b)": "!(a || b)",
	}
	for in, want := range cases {
		if got := javaGuard(in); got != want {
			t.Errorf("javaGuard(%q)=%q want %q", in, got, want)
		}
	}
}
