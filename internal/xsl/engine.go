package xsl

import (
	"fmt"
	"strconv"
	"strings"
)

// Rule maps an element name to a template or a render function. Exactly
// one of Template/Render must be set.
type Rule struct {
	Match    string // element name, or "*" as catch-all
	Template string
	Render   func(e *Engine, n *Node) (string, error)
}

// Stylesheet is an ordered rule set; the first matching rule wins.
// Elements with no matching rule apply the default rule: emit nothing
// for the element, recurse into its children.
type Stylesheet struct {
	Name  string
	Rules []Rule
}

// Engine executes a stylesheet over a document.
type Engine struct {
	sheet *Stylesheet
	depth int
}

// MaxDepth bounds template recursion to catch rule cycles.
const MaxDepth = 200

// Transform runs the stylesheet on a parsed document.
func Transform(sheet *Stylesheet, root *Node) (string, error) {
	e := &Engine{sheet: sheet}
	return e.Apply(root)
}

// TransformBytes parses and transforms an XML document.
func TransformBytes(sheet *Stylesheet, doc []byte) (string, error) {
	root, err := Parse(doc)
	if err != nil {
		return "", err
	}
	return Transform(sheet, root)
}

// Apply renders one node through the first matching rule (or the default
// recurse-rule).
func (e *Engine) Apply(n *Node) (string, error) {
	e.depth++
	defer func() { e.depth-- }()
	if e.depth > MaxDepth {
		return "", fmt.Errorf("xsl: %s: template recursion exceeds %d (rule cycle?)", e.sheet.Name, MaxDepth)
	}
	for i := range e.sheet.Rules {
		r := &e.sheet.Rules[i]
		if r.Match != n.Name && r.Match != "*" {
			continue
		}
		if r.Render != nil {
			return r.Render(e, n)
		}
		tpl, err := compileTemplate(r.Template)
		if err != nil {
			return "", fmt.Errorf("xsl: %s: rule %q: %w", e.sheet.Name, r.Match, err)
		}
		return e.exec(tpl, n)
	}
	// Default rule: descend.
	var b strings.Builder
	for _, c := range n.Children {
		s, err := e.Apply(c)
		if err != nil {
			return "", err
		}
		b.WriteString(s)
	}
	return b.String(), nil
}

// ApplyAll renders a node list and concatenates the results.
func (e *Engine) ApplyAll(ns []*Node) (string, error) {
	var b strings.Builder
	for _, n := range ns {
		s, err := e.Apply(n)
		if err != nil {
			return "", err
		}
		b.WriteString(s)
	}
	return b.String(), nil
}

func (e *Engine) exec(nodes []tnode, n *Node) (string, error) {
	var b strings.Builder
	for _, t := range nodes {
		switch tn := t.(type) {
		case tnText:
			b.WriteString(string(tn))
		case tnAttr:
			v := n.Attr(tn.name)
			if v == "" {
				v = tn.def
			}
			b.WriteString(v)
		case tnName:
			b.WriteString(n.Name)
		case tnBody:
			b.WriteString(n.TrimText())
		case tnPos:
			b.WriteString(strconv.Itoa(position(n)))
		case tnApply:
			var targets []*Node
			if tn.path == "" {
				targets = n.Children
			} else {
				targets = n.Find(tn.path)
			}
			s, err := e.ApplyAll(targets)
			if err != nil {
				return "", err
			}
			b.WriteString(s)
		case tnCount:
			b.WriteString(strconv.Itoa(len(n.Find(tn.path))))
		case tnIf:
			branch := tn.els
			if truthy(n.Attr(tn.attr)) {
				branch = tn.then
			}
			s, err := e.exec(branch, n)
			if err != nil {
				return "", err
			}
			b.WriteString(s)
		default:
			return "", fmt.Errorf("xsl: unknown template node %T", t)
		}
	}
	return b.String(), nil
}

// position returns the node's 0-based index among same-named siblings.
func position(n *Node) int {
	if n.Parent == nil {
		return 0
	}
	idx := 0
	for _, sib := range n.Parent.Children {
		if sib == n {
			return idx
		}
		if sib.Name == n.Name {
			idx++
		}
	}
	return 0
}

func truthy(v string) bool {
	return v != "" && v != "0" && v != "false"
}
