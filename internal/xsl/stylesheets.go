package xsl

import (
	"fmt"
	"strings"
)

// Built-in stylesheets for every arrow of the paper's Figure 1:
// datapath/fsm/rtg → dot (Graphviz), datapath → hds (simulator input
// text), fsm/rtg → java (behavioural source). Users compose their own
// Stylesheet values for other targets, as the paper's users write XSL
// rules for Verilog/VHDL/SystemC.

// splitEndpoint separates "inst.port".
func splitEndpoint(ep string) (inst, port string) {
	if i := strings.LastIndex(ep, "."); i > 0 {
		return ep[:i], ep[i+1:]
	}
	return ep, ""
}

// DatapathToDot renders a datapath netlist as a directed graph: operators
// as boxes, connections as port-labelled edges, control/status lines as
// dashed edges from/to the control unit.
func DatapathToDot() *Stylesheet {
	return &Stylesheet{
		Name: "datapath-to-dot",
		Rules: []Rule{
			{Match: "datapath", Template: "digraph \"{@name}\" {{\n" +
				"  rankdir=LR;\n  node [shape=box, fontsize=10];\n" +
				"  \"__fsm__\" [label=\"control unit\", shape=ellipse];\n" +
				"{apply:operators/operator}{apply:connections/connect}{apply:controls/control}{apply:statuses/status}}\n"},
			{Match: "operator", Template: "  \"{@id}\" [label=\"{@id}\\n{@type}{if:@value} {@value}{end}\"];\n"},
			{Match: "connect", Render: func(e *Engine, n *Node) (string, error) {
				fi, fp := splitEndpoint(n.Attr("from"))
				ti, tp := splitEndpoint(n.Attr("to"))
				return fmt.Sprintf("  %q -> %q [taillabel=%q, headlabel=%q, fontsize=8];\n", fi, ti, fp, tp), nil
			}},
			{Match: "control", Render: func(e *Engine, n *Node) (string, error) {
				var b strings.Builder
				for _, to := range n.Find("to") {
					ti, tp := splitEndpoint(to.Attr("port"))
					fmt.Fprintf(&b, "  \"__fsm__\" -> %q [style=dashed, label=%q, fontsize=8, headlabel=%q];\n",
						ti, n.Attr("name"), tp)
				}
				return b.String(), nil
			}},
			{Match: "status", Render: func(e *Engine, n *Node) (string, error) {
				fi, fp := splitEndpoint(n.Attr("from"))
				return fmt.Sprintf("  %q -> \"__fsm__\" [style=dashed, label=%q, fontsize=8, taillabel=%q];\n",
					fi, n.Attr("name"), fp), nil
			}},
		},
	}
}

// FSMToDot renders a control unit as a state diagram.
func FSMToDot() *Stylesheet {
	return &Stylesheet{
		Name: "fsm-to-dot",
		Rules: []Rule{
			{Match: "fsm", Template: "digraph \"{@name}\" {{\n  node [shape=circle, fontsize=10];\n{apply:states/state}}\n"},
			{Match: "state", Template: "  \"{@name}\"{if:@final} [shape=doublecircle]{end}{if:@initial} [style=bold]{end};\n{apply}"},
			{Match: "transition", Render: func(e *Engine, n *Node) (string, error) {
				label := n.Attr("cond")
				if label == "" {
					label = "1"
				}
				return fmt.Sprintf("  %q -> %q [label=%q, fontsize=8];\n",
					n.Parent.Attr("name"), n.Attr("next"), label), nil
			}},
			{Match: "assign", Template: ""},
		},
	}
}

// RTGToDot renders the reconfiguration transition graph.
func RTGToDot() *Stylesheet {
	return &Stylesheet{
		Name: "rtg-to-dot",
		Rules: []Rule{
			{Match: "rtg", Template: "digraph \"{@name}\" {{\n  node [shape=box, style=rounded, fontsize=10];\n" +
				"{apply:configurations/configuration}{apply:memories/memory}{apply:transitions/transition}}\n"},
			{Match: "configuration", Template: "  \"{@id}\" [label=\"{@id}\\n{@datapath} / {@fsm}\"];\n"},
			{Match: "memory", Template: "  \"{@id}\" [shape=cylinder, label=\"{@id}[{@depth}]\"];\n"},
			{Match: "transition", Template: "  \"{@from}\" -> \"{@to}\" [label=\"{@on|seq}\"];\n"},
		},
	}
}

// javaGuard rewrites an FSM guard expression into Java syntax: & becomes
// &&, | becomes ||, standalone 0/1 become false/true; identifiers pass
// through untouched.
func javaGuard(cond string) string {
	if strings.TrimSpace(cond) == "" {
		return "true"
	}
	var b strings.Builder
	for i := 0; i < len(cond); i++ {
		c := cond[i]
		switch {
		case c == '&':
			b.WriteString("&&")
		case c == '|':
			b.WriteString("||")
		case c == '1' && !partOfIdent(cond, i):
			b.WriteString("true")
		case c == '0' && !partOfIdent(cond, i):
			b.WriteString("false")
		default:
			if isIdentByte(c) {
				j := i
				for j < len(cond) && isIdentByte(cond[j]) {
					j++
				}
				b.WriteString(cond[i:j])
				i = j - 1
				continue
			}
			b.WriteByte(c)
		}
	}
	return b.String()
}

func isIdentByte(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') ||
		('0' <= c && c <= '9')
}

// partOfIdent reports whether the byte at i continues an identifier (the
// previous byte is an identifier byte).
func partOfIdent(s string, i int) bool {
	return i > 0 && isIdentByte(s[i-1])
}

// FSMToJava emits a behavioural Java class for the control unit — the
// fsm.java of the paper's flow. The class is self-contained: status
// inputs and control outputs are public fields, step() advances one
// clock cycle.
func FSMToJava() *Stylesheet {
	return &Stylesheet{
		Name: "fsm-to-java",
		Rules: []Rule{
			{Match: "fsm", Render: func(e *Engine, n *Node) (string, error) {
				var b strings.Builder
				name := n.Attr("name")
				fmt.Fprintf(&b, "// Generated by the test infrastructure (fsm-to-java).\n")
				fmt.Fprintf(&b, "public class %s {\n", sanitizeJava(name))
				states := n.Find("states/state")
				for i, st := range states {
					fmt.Fprintf(&b, "    public static final int %s = %d;\n", stateConst(st.Attr("name")), i)
				}
				b.WriteString("\n    // Status inputs (driven by the datapath).\n")
				for _, in := range n.Find("inputs/signal") {
					fmt.Fprintf(&b, "    public boolean %s;\n", sanitizeJava(in.Attr("name")))
				}
				b.WriteString("\n    // Control outputs (drive the datapath).\n")
				for _, out := range n.Find("outputs/signal") {
					fmt.Fprintf(&b, "    public int %s;\n", sanitizeJava(out.Attr("name")))
				}
				initial := "0"
				for _, st := range states {
					if truthy(st.Attr("initial")) {
						initial = stateConst(st.Attr("name"))
					}
				}
				fmt.Fprintf(&b, "\n    public int state = %s;\n", initial)
				b.WriteString("\n    public boolean inFinal() {\n        switch (state) {\n")
				for _, st := range states {
					if truthy(st.Attr("final")) {
						fmt.Fprintf(&b, "        case %s:\n", stateConst(st.Attr("name")))
					}
				}
				b.WriteString("            return true;\n        default:\n            return false;\n        }\n    }\n")
				b.WriteString("\n    // Advance one clock cycle: transition, then drive Moore outputs.\n")
				b.WriteString("    public void step() {\n        switch (state) {\n")
				for _, st := range states {
					fmt.Fprintf(&b, "        case %s:\n", stateConst(st.Attr("name")))
					for _, tr := range st.Find("transition") {
						guard := javaGuard(tr.Attr("cond"))
						if guard == "true" {
							fmt.Fprintf(&b, "            state = %s;\n", stateConst(tr.Attr("next")))
							break
						}
						fmt.Fprintf(&b, "            if (%s) { state = %s; break; }\n",
							guard, stateConst(tr.Attr("next")))
					}
					b.WriteString("            break;\n")
				}
				b.WriteString("        }\n        outputs();\n    }\n")
				b.WriteString("\n    private void outputs() {\n")
				for _, out := range n.Find("outputs/signal") {
					fmt.Fprintf(&b, "        %s = 0;\n", sanitizeJava(out.Attr("name")))
				}
				b.WriteString("        switch (state) {\n")
				for _, st := range states {
					if len(st.Find("assign")) == 0 {
						continue
					}
					fmt.Fprintf(&b, "        case %s:\n", stateConst(st.Attr("name")))
					for _, a := range st.Find("assign") {
						fmt.Fprintf(&b, "            %s = %s;\n", sanitizeJava(a.Attr("signal")), a.Attr("value"))
					}
					b.WriteString("            break;\n")
				}
				b.WriteString("        }\n    }\n}\n")
				return b.String(), nil
			}},
		},
	}
}

// RTGToJava emits the rtg.java runner controlling the execution of the
// simulation through the set of temporal partitions.
func RTGToJava() *Stylesheet {
	return &Stylesheet{
		Name: "rtg-to-java",
		Rules: []Rule{
			{Match: "rtg", Render: func(e *Engine, n *Node) (string, error) {
				var b strings.Builder
				fmt.Fprintf(&b, "// Generated by the test infrastructure (rtg-to-java).\n")
				fmt.Fprintf(&b, "public class %s_rtg {\n", sanitizeJava(n.Attr("name")))
				b.WriteString("    // Shared memories surviving reconfiguration.\n")
				for _, m := range n.Find("memories/memory") {
					fmt.Fprintf(&b, "    public final int[] %s = new int[%s];\n",
						sanitizeJava(m.Attr("id")), m.Attr("depth"))
				}
				b.WriteString("\n    public void run() {\n")
				fmt.Fprintf(&b, "        String cfg = \"%s\";\n", n.Attr("start"))
				b.WriteString("        while (cfg != null) {\n            switch (cfg) {\n")
				for _, c := range n.Find("configurations/configuration") {
					fmt.Fprintf(&b, "            case \"%s\":\n", c.Attr("id"))
					fmt.Fprintf(&b, "                runConfiguration(\"%s\", \"%s\"); // datapath, fsm\n",
						c.Attr("datapath"), c.Attr("fsm"))
					next := "null"
					for _, t := range n.Find("transitions/transition") {
						if t.Attr("from") == c.Attr("id") {
							next = fmt.Sprintf("%q", t.Attr("to"))
						}
					}
					fmt.Fprintf(&b, "                cfg = %s;\n                break;\n", next)
				}
				b.WriteString("            }\n        }\n    }\n")
				b.WriteString("\n    private void runConfiguration(String datapath, String fsm) {\n")
				b.WriteString("        // Reconfigure the fabric and simulate until the FSM finishes.\n    }\n}\n")
				return b.String(), nil
			}},
		},
	}
}

// DatapathToHDS emits the simulator input text (the paper's "to hds"
// arrow): a component per operator and a net per connection, plus the
// control/status interface, in the line-oriented format the Hades design
// loader uses.
func DatapathToHDS() *Stylesheet {
	return &Stylesheet{
		Name: "datapath-to-hds",
		Rules: []Rule{
			{Match: "datapath", Template: "[design] {@name}\n[width] {@width|32}\n[components]\n{apply:operators/operator}" +
				"[nets]\n{apply:connections/connect}[controls]\n{apply:controls/control}[statuses]\n{apply:statuses/status}[end]\n"},
			{Match: "operator", Template: "component {@id} {@type} width={@width|0} value={@value|0} depth={@depth|0} inputs={@inputs|0} ref={@ref|-}\n"},
			{Match: "connect", Template: "net {@from} -> {@to}\n"},
			{Match: "control", Render: func(e *Engine, n *Node) (string, error) {
				var b strings.Builder
				for _, to := range n.Find("to") {
					fmt.Fprintf(&b, "control %s width=%s -> %s\n",
						n.Attr("name"), orDefault(n.Attr("width"), "1"), to.Attr("port"))
				}
				return b.String(), nil
			}},
			{Match: "status", Template: "status {@name} width={@width|1} <- {@from}\n"},
		},
	}
}

// ForDocument picks the to-dot stylesheet matching a document root.
func ForDocument(root *Node) (*Stylesheet, error) {
	switch root.Name {
	case "datapath":
		return DatapathToDot(), nil
	case "fsm":
		return FSMToDot(), nil
	case "rtg":
		return RTGToDot(), nil
	default:
		return nil, fmt.Errorf("xsl: no stylesheet for root element %q", root.Name)
	}
}

func sanitizeJava(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '-' || c == '.' || c == ' ' {
			c = '_'
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return "_"
	}
	return string(out)
}

func stateConst(name string) string { return "ST_" + sanitizeJava(name) }

func orDefault(v, def string) string {
	if v == "" {
		return def
	}
	return v
}
