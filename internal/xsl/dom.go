// Package xsl implements the transformation layer of the infrastructure:
// a generic XML document model and a rule/template engine in the spirit
// of the XSLT stylesheets the paper uses to translate the compiler's XML
// dialects into simulator input, behavioural Java and Graphviz dot ("This
// permits users to define their own XSL translation rules to output
// representations using the chosen language").
//
// Rules match element names; templates interpolate attributes, apply
// child templates and test attributes, and may drop to a Go render
// function — the counterpart of an XSLT extension function — for
// transformations that need real logic.
package xsl

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// Node is one element of a parsed XML document.
type Node struct {
	Name      string
	Attrs     map[string]string
	AttrOrder []string
	Children  []*Node
	Text      string
	Parent    *Node
}

// Parse builds a DOM from an XML document.
func Parse(data []byte) (*Node, error) {
	dec := xml.NewDecoder(bytes.NewReader(data))
	var root *Node
	var cur *Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xsl: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &Node{Name: t.Name.Local, Attrs: map[string]string{}, Parent: cur}
			for _, a := range t.Attr {
				n.Attrs[a.Name.Local] = a.Value
				n.AttrOrder = append(n.AttrOrder, a.Name.Local)
			}
			if cur != nil {
				cur.Children = append(cur.Children, n)
			} else if root == nil {
				root = n
			} else {
				return nil, fmt.Errorf("xsl: parse: multiple roots")
			}
			cur = n
		case xml.EndElement:
			if cur == nil {
				return nil, fmt.Errorf("xsl: parse: unbalanced end element %s", t.Name.Local)
			}
			cur = cur.Parent
		case xml.CharData:
			if cur != nil {
				cur.Text += string(t)
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xsl: parse: empty document")
	}
	if cur != nil {
		return nil, fmt.Errorf("xsl: parse: unterminated element %s", cur.Name)
	}
	return root, nil
}

// Attr returns an attribute value ("" when absent).
func (n *Node) Attr(name string) string { return n.Attrs[name] }

// Find returns descendants matching a slash path of element names
// relative to n ("operators/operator"). A single name matches direct
// children; "*" matches any name at that level.
func (n *Node) Find(path string) []*Node {
	parts := strings.Split(path, "/")
	cur := []*Node{n}
	for _, p := range parts {
		var next []*Node
		for _, c := range cur {
			for _, ch := range c.Children {
				if p == "*" || ch.Name == p {
					next = append(next, ch)
				}
			}
		}
		cur = next
	}
	return cur
}

// First returns the first match of Find, or nil.
func (n *Node) First(path string) *Node {
	all := n.Find(path)
	if len(all) == 0 {
		return nil
	}
	return all[0]
}

// TrimText returns the element text with surrounding whitespace removed.
func (n *Node) TrimText() string { return strings.TrimSpace(n.Text) }
