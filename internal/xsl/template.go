package xsl

import (
	"fmt"
	"strings"
)

// Template node kinds. Template syntax inside {...}:
//
//	{@attr}        attribute value
//	{@attr|def}    attribute value with default
//	{name()}       element name
//	{text()}       trimmed text content
//	{pos()}        0-based index among same-named siblings
//	{apply}        apply templates to all children
//	{apply:path}   apply templates to nodes matching a Find path
//	{count:path}   number of nodes matching a Find path
//	{if:@attr}...{else}...{end}   attribute truth test (else optional)
//	{{ and }}      literal braces
type tnode interface{ tmpl() }

type tnText string

type tnAttr struct{ name, def string }

type tnName struct{}

type tnBody struct{}

type tnPos struct{}

type tnApply struct{ path string }

type tnCount struct{ path string }

type tnIf struct {
	attr string
	then []tnode
	els  []tnode
}

func (tnText) tmpl()  {}
func (tnAttr) tmpl()  {}
func (tnName) tmpl()  {}
func (tnBody) tmpl()  {}
func (tnPos) tmpl()   {}
func (tnApply) tmpl() {}
func (tnCount) tmpl() {}
func (tnIf) tmpl()    {}

// compileTemplate parses a template string.
func compileTemplate(src string) ([]tnode, error) {
	nodes, rest, err := parseUntil(src, nil)
	if err != nil {
		return nil, err
	}
	if rest != "" {
		return nil, fmt.Errorf("template: unexpected %q", rest)
	}
	return nodes, nil
}

// parseUntil consumes template source until one of the stop directives
// ({else} or {end}) is found at this nesting level; it returns the
// remaining source starting at the stop directive.
func parseUntil(src string, stops []string) ([]tnode, string, error) {
	var out []tnode
	for len(src) > 0 {
		i := strings.IndexAny(src, "{}")
		if i < 0 {
			out = append(out, tnText(src))
			return out, "", nil
		}
		if i > 0 {
			out = append(out, tnText(src[:i]))
			src = src[i:]
		}
		if strings.HasPrefix(src, "{{") {
			out = append(out, tnText("{"))
			src = src[2:]
			continue
		}
		if strings.HasPrefix(src, "}}") {
			out = append(out, tnText("}"))
			src = src[2:]
			continue
		}
		if src[0] == '}' { // lone closing brace: ordinary text
			out = append(out, tnText("}"))
			src = src[1:]
			continue
		}
		j := strings.IndexByte(src, '}')
		if j < 0 {
			return nil, "", fmt.Errorf("template: unterminated directive %q", src)
		}
		dir := src[1:j]
		if dir == "}" { // "{}}" never valid; guard
			return nil, "", fmt.Errorf("template: empty directive")
		}
		for _, stop := range stops {
			if dir == stop {
				return out, src, nil
			}
		}
		src = src[j+1:]
		node, err := parseDirective(dir, &src)
		if err != nil {
			return nil, "", err
		}
		out = append(out, node)
	}
	if len(stops) > 0 {
		return nil, "", fmt.Errorf("template: missing {%s}", stops[len(stops)-1])
	}
	return out, "", nil
}

func parseDirective(dir string, rest *string) (tnode, error) {
	switch {
	case dir == "":
		return nil, fmt.Errorf("template: empty directive")
	case strings.HasPrefix(dir, "@"):
		spec := dir[1:]
		if k := strings.IndexByte(spec, '|'); k >= 0 {
			return tnAttr{name: spec[:k], def: spec[k+1:]}, nil
		}
		return tnAttr{name: spec}, nil
	case dir == "name()":
		return tnName{}, nil
	case dir == "text()":
		return tnBody{}, nil
	case dir == "pos()":
		return tnPos{}, nil
	case dir == "apply":
		return tnApply{}, nil
	case strings.HasPrefix(dir, "apply:"):
		return tnApply{path: dir[len("apply:"):]}, nil
	case strings.HasPrefix(dir, "count:"):
		return tnCount{path: dir[len("count:"):]}, nil
	case strings.HasPrefix(dir, "if:@"):
		attr := dir[len("if:@"):]
		then, stopped, err := parseUntil(*rest, []string{"else", "end"})
		if err != nil {
			return nil, err
		}
		node := tnIf{attr: attr, then: then}
		if strings.HasPrefix(stopped, "{else}") {
			els, stopped2, err := parseUntil(stopped[len("{else}"):], []string{"end"})
			if err != nil {
				return nil, err
			}
			node.els = els
			stopped = stopped2
		}
		if !strings.HasPrefix(stopped, "{end}") {
			return nil, fmt.Errorf("template: {if:@%s} missing {end}", attr)
		}
		*rest = stopped[len("{end}"):]
		return node, nil
	default:
		return nil, fmt.Errorf("template: unknown directive {%s}", dir)
	}
}
