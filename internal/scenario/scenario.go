// Package scenario is the stochastic campaign engine: it expands a
// declarative, seeded scenario spec (api.ScenarioSpec — a weighted mix
// of workload families, parameter distributions, an arrival process and
// an optional fault plan) into a deterministic sequence of resolved
// cases, drives them through flow.Prepare/PreparedDesign with a replay
// cache per resolved parameterization, and records every materialized
// decision as a versioned JSONL trace. Traces replay bit-identically
// (Replay) and support counterfactual re-runs with one dimension
// substituted (Counterfactual): same trace, other backend, other width,
// or faults off.
//
// Every random decision — family selection, parameter draws, arrival
// times, fault sites and bits — derives from the spec's single
// top-level seed through per-purpose sub-streams, so one int64
// reproduces the whole campaign and adding draws to one dimension does
// not shift any other.
package scenario

import (
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/api"
	"repro/internal/workloads"
)

// MaxCases caps a spec's case count, a guard against accidental
// million-case campaigns in a request body.
const MaxCases = 100000

// Scenario is a loaded, validated spec bound to the workload registry
// it draws families from.
type Scenario struct {
	Spec api.ScenarioSpec
	reg  *workloads.Registry
	mix  []mixEntry
}

// mixEntry is one compiled mix line: the family, its normalized weight,
// and its parameter distributions in deterministic (sorted) order.
type mixEntry struct {
	w      workloads.Workload
	weight float64
	dists  []paramDist
}

type paramDist struct {
	name string
	d    api.Dist
}

// Load validates a spec against a workload registry (nil means the
// default registry) and returns the runnable scenario. Validation
// covers the mix (families exist, every distribution is well-formed and
// inside the parameter's [Min, Max] range), the arrival process, and
// the fault plan (rates, bit counts, and the must-fail/must-recover
// policies, which require an erasure-only mix — the MDS decoder is the
// recovery oracle).
func Load(spec *api.ScenarioSpec, reg *workloads.Registry) (*Scenario, error) {
	if reg == nil {
		reg = workloads.Default
	}
	if err := api.CheckVersion(spec.SchemaVersion); err != nil {
		return nil, err
	}
	if spec.Name == "" {
		return nil, fmt.Errorf("scenario: spec needs a name")
	}
	if spec.Cases < 1 || spec.Cases > MaxCases {
		return nil, fmt.Errorf("scenario: %s: cases %d outside [1, %d]", spec.Name, spec.Cases, MaxCases)
	}
	if len(spec.Mix) == 0 {
		return nil, fmt.Errorf("scenario: %s: empty mix", spec.Name)
	}
	sc := &Scenario{Spec: *spec, reg: reg}
	for i, m := range spec.Mix {
		w, err := reg.Lookup(m.Family)
		if err != nil {
			return nil, fmt.Errorf("scenario: %s: mix[%d]: %w", spec.Name, i, err)
		}
		if m.Weight < 0 {
			return nil, fmt.Errorf("scenario: %s: mix[%d] %s: negative weight %g", spec.Name, i, m.Family, m.Weight)
		}
		weight := m.Weight
		if weight == 0 {
			weight = 1
		}
		entry := mixEntry{w: w, weight: weight}
		schema := map[string]workloads.Param{}
		for _, p := range w.Params() {
			schema[p.Name] = p
		}
		names := make([]string, 0, len(m.Params))
		for name := range m.Params {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			p, ok := schema[name]
			if !ok {
				return nil, fmt.Errorf("scenario: %s: mix[%d]: %s has no parameter %q", spec.Name, i, m.Family, name)
			}
			d := m.Params[name]
			if err := checkDist(d, p); err != nil {
				return nil, fmt.Errorf("scenario: %s: mix[%d] %s.%s: %w", spec.Name, i, m.Family, name, err)
			}
			entry.dists = append(entry.dists, paramDist{name: name, d: d})
		}
		sc.mix = append(sc.mix, entry)
	}
	if err := checkArrival(spec.Arrival); err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", spec.Name, err)
	}
	if err := sc.checkFaults(spec.Faults); err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", spec.Name, err)
	}
	return sc, nil
}

// Parse decodes and Loads a spec from r.
func Parse(r io.Reader, reg *workloads.Registry) (*Scenario, error) {
	spec, err := api.DecodeScenarioSpec(r)
	if err != nil {
		return nil, err
	}
	return Load(spec, reg)
}

// LoadFile reads, decodes and Loads a spec file.
func LoadFile(path string, reg *workloads.Registry) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	defer f.Close()
	sc, err := Parse(f, reg)
	if err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", path, err)
	}
	return sc, nil
}

// checkDist validates one distribution against its parameter's range.
func checkDist(d api.Dist, p workloads.Param) error {
	if err := d.Validate(); err != nil {
		return err
	}
	check := func(v int) error {
		if v < p.Min || v > p.Max {
			return fmt.Errorf("value %d outside [%d, %d]", v, p.Min, p.Max)
		}
		return nil
	}
	switch {
	case d.Const != nil:
		return check(*d.Const)
	case d.Uniform != nil:
		if err := check(d.Uniform.Min); err != nil {
			return err
		}
		return check(d.Uniform.Max)
	default:
		for _, v := range d.Choice {
			if err := check(v); err != nil {
				return err
			}
		}
		return nil
	}
}

func checkArrival(a *api.ArrivalSpec) error {
	if a == nil {
		return nil
	}
	switch a.Kind {
	case api.ArrivalDeterministic:
		if a.IntervalNS <= 0 {
			return fmt.Errorf("deterministic arrival needs interval_ns > 0")
		}
	case api.ArrivalPoisson:
		if a.Rate <= 0 {
			return fmt.Errorf("poisson arrival needs rate > 0")
		}
	case api.ArrivalGamma:
		if a.Rate <= 0 || a.Shape <= 0 {
			return fmt.Errorf("gamma arrival needs rate > 0 and shape > 0")
		}
	default:
		return fmt.Errorf("unknown arrival kind %q (have: %s, %s, %s)",
			a.Kind, api.ArrivalDeterministic, api.ArrivalPoisson, api.ArrivalGamma)
	}
	return nil
}

func (sc *Scenario) checkFaults(f *api.FaultPlan) error {
	if f == nil {
		return nil
	}
	if f.Rate < 0 || f.Rate > 1 {
		return fmt.Errorf("fault rate %g outside [0, 1]", f.Rate)
	}
	if f.Bits < 0 || f.Bits > 32 {
		return fmt.Errorf("fault bits %d outside [1, 32]", f.Bits)
	}
	if f.MaxFlips < 0 {
		return fmt.Errorf("negative max_flips %d", f.MaxFlips)
	}
	switch f.Policy {
	case "", api.PolicyObserve:
	case api.PolicyMustRecover, api.PolicyMustFail:
		for _, m := range sc.Spec.Mix {
			if m.Family != "erasure" {
				return fmt.Errorf("policy %q requires an erasure-only mix (the MDS decoder is the recovery oracle), got family %q",
					f.Policy, m.Family)
			}
		}
		for _, a := range f.Arrays {
			if a != "in" {
				return fmt.Errorf("policy %q targets the erasure stimulus array \"in\", got %q", f.Policy, a)
			}
		}
	default:
		return fmt.Errorf("unknown fault policy %q (have: %s, %s, %s)",
			f.Policy, api.PolicyObserve, api.PolicyMustRecover, api.PolicyMustFail)
	}
	return nil
}
