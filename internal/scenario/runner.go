package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/api"
	"repro/internal/flow"
	"repro/internal/rtg"
	"repro/internal/workloads"
)

// Options configure a scenario run (and a replay or counterfactual,
// which reuse the same execution path).
type Options struct {
	// Backend selects the simulator backend; "" uses the spec's Backend,
	// then the flow default.
	Backend string
	// Width overrides the datapath width; 0 uses the spec's Width, then
	// the compiler default.
	Width int
	// DisableFaults runs the campaign with injection off — the
	// "faults off" counterfactual dimension.
	DisableFaults bool
	// Flow appends extra pipeline options (clock period, cycle caps,
	// observers). Backend and width come from the fields above.
	Flow []flow.Option
	// Registry resolves workload families; nil uses the default.
	Registry *workloads.Registry
}

// Result is one executed campaign: the trace records it emitted.
type Result struct {
	Header  api.TraceHeader
	Cases   []api.TraceCase
	Summary api.TraceSummary
}

// OK reports a fully green campaign: every case completed, verified,
// and satisfied its fault policy.
func (r *Result) OK() bool { return r.Summary.OK }

// Trace views the result as a trace (for CompareTraces and
// Counterfactual without a round trip through a file).
func (r *Result) Trace() *Trace {
	s := r.Summary
	return &Trace{Header: r.Header, Cases: r.Cases, Summary: &s}
}

// Run expands the scenario and executes every case in sequence on one
// backend, streaming the versioned trace records (header, one line per
// case, trailing summary) to trace as they happen; a nil trace skips
// recording. The returned Result holds the same records. Designs are
// prepared once per resolved parameterization and reseeded per case, so
// repeated draws ride the reconfiguration replay cache. An execution
// error still writes the trailing summary (with Error set) before
// returning.
func (sc *Scenario) Run(ctx context.Context, opts Options, trace io.Writer) (*Result, error) {
	runs, err := sc.Expand()
	if err != nil {
		return nil, err
	}
	if opts.Backend == "" {
		opts.Backend = sc.Spec.Backend
	}
	if opts.Width == 0 {
		opts.Width = sc.Spec.Width
	}
	return execute(ctx, sc.Spec.Name, sc.Spec.Seed, runs, opts, trace)
}

// Executor executes materialized cases one at a time against a shared
// pipeline and prepared-design cache. It is the unit a sweep shard
// worker drives directly: executing cases [lo, hi) of an ExpandRange
// through an Executor yields trace records identical to the same slice
// of a full Run.
type Executor struct {
	opts    Options
	backend string
	pipe    *flow.Pipeline
	cache   map[string]*flow.PreparedDesign
}

// NewExecutor resolves the backend ("" means the flow default — spec
// resolution happens in Run) and builds the pipeline.
func NewExecutor(opts Options) (*Executor, error) {
	backend := opts.Backend
	if backend == "" {
		backend = flow.DefaultBackend
	}
	pipeOpts := []flow.Option{flow.WithBackend(backend)}
	if opts.Width > 0 {
		pipeOpts = append(pipeOpts, flow.WithWidth(opts.Width))
	}
	pipe, err := flow.New(append(pipeOpts, opts.Flow...)...)
	if err != nil {
		return nil, err
	}
	return &Executor{
		opts:    opts,
		backend: backend,
		pipe:    pipe,
		cache:   map[string]*flow.PreparedDesign{},
	}, nil
}

// Backend is the resolved backend name the executor simulates on.
func (e *Executor) Backend() string { return e.backend }

// Execute runs one case and returns its trace record. Designs are
// prepared once per resolved parameterization and reused from the
// replay cache on repeated keys.
func (e *Executor) Execute(ctx context.Context, cr *CaseRun) (*api.TraceCase, error) {
	return runCase(ctx, e.pipe, e.cache, cr, e.opts)
}

// Summarize folds executed case records into the trailing summary
// record. planned is the expanded case count (which equals len(cases)
// only when every case executed); errMsg is the execution error, if
// any. Deterministic: the sweep coordinator recomputes the merged
// campaign's summary from decoded shard cases with this same fold and
// gets bytes identical to a single-process run.
func Summarize(name string, planned int, cases []api.TraceCase, errMsg string) api.TraceSummary {
	s := api.TraceSummary{
		SchemaVersion: api.SchemaVersion,
		Record:        api.RecordTraceSummary,
		Scenario:      name,
		Cases:         planned,
	}
	for i := range cases {
		rec := &cases[i]
		if rec.Passed {
			s.Passed++
		} else {
			s.Failed++
		}
		if !rec.PolicyOK {
			s.PolicyViolations++
		}
		s.FaultsInjected += len(rec.Faults)
		switch rec.FaultOutcome {
		case api.OutcomeRecovered:
			s.Recovered++
		case api.OutcomeDiverged:
			s.Diverged++
		}
		for _, cfg := range rec.Configs {
			s.Configs++
			s.Cycles += cfg.Cycles
			s.Events += cfg.Events
		}
	}
	s.Error = errMsg
	s.OK = errMsg == "" && s.Failed == 0 && s.PolicyViolations == 0
	return s
}

// execute drives materialized cases through the flow: the shared tail
// of Run, Replay and Counterfactual.
func execute(ctx context.Context, name string, seed int64, runs []*CaseRun, opts Options, trace io.Writer) (*Result, error) {
	backend := opts.Backend
	if backend == "" {
		backend = flow.DefaultBackend
	}
	res := &Result{Header: api.TraceHeader{
		SchemaVersion: api.SchemaVersion,
		Record:        api.RecordTraceHeader,
		Scenario:      name,
		Seed:          seed,
		Cases:         len(runs),
		Backend:       backend,
		Width:         opts.Width,
		FaultsOff:     opts.DisableFaults,
	}}
	var enc *json.Encoder
	if trace != nil {
		enc = json.NewEncoder(trace)
		if err := enc.Encode(res.Header); err != nil {
			return res, fmt.Errorf("scenario: write trace: %w", err)
		}
	}
	finish := func(err error) (*Result, error) {
		errMsg := ""
		if err != nil {
			errMsg = err.Error()
		}
		res.Summary = Summarize(name, len(runs), res.Cases, errMsg)
		if enc != nil {
			if werr := enc.Encode(res.Summary); werr != nil && err == nil {
				err = fmt.Errorf("scenario: write trace: %w", werr)
			}
		}
		return res, err
	}

	exec, err := NewExecutor(opts)
	if err != nil {
		return finish(err)
	}

	for _, cr := range runs {
		rec, err := exec.Execute(ctx, cr)
		if err != nil {
			return finish(fmt.Errorf("scenario: %s: case %d (%s,%s): %w", name, cr.Index, cr.Family, cr.Params, err))
		}
		res.Cases = append(res.Cases, *rec)
		if enc != nil {
			if err := enc.Encode(*rec); err != nil {
				return finish(fmt.Errorf("scenario: write trace: %w", err))
			}
		}
	}
	return finish(nil)
}

// runCase executes one materialized case: prepare (or fetch) the
// design, reseed with the (possibly faulted) inputs, simulate, verify
// against the golden interpreter plus the reference model on the same
// inputs, and judge the fault outcome against the clean reference.
func runCase(ctx context.Context, pipe *flow.Pipeline, cache map[string]*flow.PreparedDesign, cr *CaseRun, opts Options) (*api.TraceCase, error) {
	pd, ok := cache[cr.Key()]
	if !ok {
		var err error
		pd, err = pipe.PrepareContext(ctx, flow.Source{
			Name:       cr.Family + "(" + cr.Params + ")",
			Text:       cr.Clean.Source,
			Func:       cr.Clean.Func,
			ArraySizes: cr.Clean.ArraySizes,
			ScalarArgs: cr.Clean.ScalarArgs,
			Inputs:     cr.Clean.Inputs,
			Expected:   cr.Clean.Expected,
		})
		if err != nil {
			return nil, err
		}
		cache[cr.Key()] = pd
	}

	inputs := cr.Clean.Inputs
	expected := cr.Clean.Expected
	faults := cr.Faults
	if opts.DisableFaults {
		faults = nil
	}
	if len(faults) > 0 {
		inputs = applyFaults(inputs, cr.Clean.ArraySizes, faults)
		// Under faults the verdict is pure model consistency — the
		// simulator against the golden interpreter on identical faulted
		// stimulus. The pure-Go reference pins stay out of it (they are
		// only guaranteed to match on clean, in-domain inputs) and judge
		// recovery separately against the clean expectations below.
		expected = nil
	}
	names := make([]string, 0, len(cr.Clean.ArraySizes))
	for n := range cr.Clean.ArraySizes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		words := make([]int64, cr.Clean.ArraySizes[n])
		copy(words, inputs[n])
		if err := pd.SetSeed(n, words); err != nil {
			return nil, err
		}
	}

	sim, err := pd.SimulateContext(ctx)
	if err != nil {
		return nil, err
	}
	rec := &api.TraceCase{
		SchemaVersion: api.SchemaVersion,
		Record:        api.RecordTraceCase,
		Index:         cr.Index,
		Family:        cr.Family,
		Params:        cr.Params,
		ArrivalNS:     cr.ArrivalNS,
		Policy:        cr.Policy,
		Faults:        faults,
		Completed:     sim.Completed,
		MemoryDigest:  digestMemories(sim.Memories),
		SinkDigest:    digestSinks(sim.Runs),
	}
	for _, run := range sim.Runs {
		rec.Configs = append(rec.Configs, api.TraceConfig{
			ID: run.ID, Cycles: run.Cycles, Events: run.Events, FinalState: run.FinalState,
		})
	}
	if sim.Completed {
		c2 := *pd.Compiled()
		c2.Source.Inputs = inputs
		c2.Source.Expected = expected
		v, err := pipe.Verify(&c2, sim)
		if err != nil {
			return nil, err
		}
		rec.Passed = v.Passed
	}
	if len(faults) > 0 {
		rec.FaultOutcome = faultOutcome(cr.Clean, sim.Memories)
	}
	rec.PolicyOK = policyOK(cr.Policy, len(faults), rec)
	return rec, nil
}

// faultOutcome compares the faulted run's pure outputs (arrays the
// reference models but the stimulus does not seed) against the clean
// expectations: recovered means the fault was absorbed before it
// reached any output.
func faultOutcome(clean *workloads.Case, memories map[string][]int64) string {
	names := make([]string, 0, len(clean.Expected))
	for name := range clean.Expected {
		if _, isInput := clean.Inputs[name]; !isInput {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		want := clean.Expected[name]
		got := memories[name]
		for i, w := range want {
			if i >= len(got) || got[i] != w {
				return api.OutcomeDiverged
			}
		}
	}
	return api.OutcomeRecovered
}

// policyOK judges a case record against its fault policy. With nothing
// injected (observe at a low rate, or a faults-off counterfactual)
// there is nothing to judge; failed verdicts are already counted by the
// summary's Failed.
func policyOK(policy string, injected int, rec *api.TraceCase) bool {
	if injected == 0 {
		return true
	}
	switch policy {
	case api.PolicyMustRecover:
		return rec.Completed && rec.Passed && rec.FaultOutcome == api.OutcomeRecovered
	case api.PolicyMustFail:
		return rec.Completed && rec.Passed && rec.FaultOutcome == api.OutcomeDiverged
	default:
		return true
	}
}

// digestMemories hashes every final shared memory (sorted by name) into
// a stable 16-hex-digit FNV-1a digest.
func digestMemories(memories map[string][]int64) string {
	names := make([]string, 0, len(memories))
	for name := range memories {
		names = append(names, name)
	}
	sort.Strings(names)
	h := newDigest()
	for _, name := range names {
		h.str(name)
		h.words(memories[name])
	}
	return h.hex()
}

// digestSinks hashes every configuration's recorded sink streams in
// walk order.
func digestSinks(runs []rtg.ConfigRun) string {
	h := newDigest()
	for _, run := range runs {
		h.str(run.ID)
		ids := make([]string, 0, len(run.Sinks))
		for id := range run.Sinks {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			h.str(id)
			h.words(run.Sinks[id])
		}
	}
	return h.hex()
}

type digest uint64

func newDigest() *digest {
	d := digest(14695981039346656037)
	return &d
}

func (d *digest) byte(b byte) {
	*d = (*d ^ digest(b)) * 1099511628211
}

func (d *digest) str(s string) {
	for i := 0; i < len(s); i++ {
		d.byte(s[i])
	}
	d.byte(0)
}

func (d *digest) words(ws []int64) {
	for _, w := range ws {
		u := uint64(w)
		for i := 0; i < 8; i++ {
			d.byte(byte(u >> (8 * i)))
		}
	}
	d.byte(1)
}

func (d *digest) hex() string { return fmt.Sprintf("%016x", uint64(*d)) }
