package scenario

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/flow"
)

// Record a faulted erasure campaign once, then replay the trace on
// every registered backend: the deterministic identity set — resolved
// params, arrival times, fault injections, verdicts, fault outcomes,
// per-config cycles and final states, memory and sink digests — must be
// bit-identical everywhere (strictly so, events included, on the
// recording backend itself).
func TestReplayBitIdenticalOnEveryBackend(t *testing.T) {
	res, buf := runExample(t, "erasure-recover.json", Options{})
	if !res.OK() {
		t.Fatalf("recording run not ok: %+v", res.Summary)
	}
	tr, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, backend := range flow.BackendNames() {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			var rbuf bytes.Buffer
			rep, err := Replay(context.Background(), tr, Options{Backend: backend}, &rbuf)
			if err != nil {
				t.Fatal(err)
			}
			strict := backend == tr.Header.Backend
			if diffs := CompareTraces(tr.Cases, rep.Cases, strict); len(diffs) != 0 {
				t.Fatalf("replay on %s differs from recording:\n%s", backend, strings.Join(diffs, "\n"))
			}
			if strict && !bytes.Equal(buf.Bytes(), rbuf.Bytes()) {
				t.Fatalf("same-backend replay trace is not byte-identical")
			}
			if !rep.OK() {
				t.Fatalf("replay summary not ok: %+v", rep.Summary)
			}
		})
	}
}

// The mixed campaign (no faults) must also replay identically across
// backends — the scenario-level restatement of the cross-backend
// equivalence guarantee.
func TestMixedReplayAcrossBackends(t *testing.T) {
	res, buf := runExample(t, "mixed-poisson.json", Options{})
	if !res.OK() {
		t.Fatalf("recording run not ok: %+v", res.Summary)
	}
	tr, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, backend := range flow.BackendNames() {
		rep, err := Replay(context.Background(), tr, Options{Backend: backend}, nil)
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if diffs := CompareTraces(tr.Cases, rep.Cases, backend == tr.Header.Backend); len(diffs) != 0 {
			t.Fatalf("%s: %s", backend, strings.Join(diffs, "\n"))
		}
	}
}

// A counterfactual backend swap re-runs the same materialized cases on
// another backend and must keep every verdict, fault outcome and final
// memory identical.
func TestCounterfactualBackendSwap(t *testing.T) {
	_, buf := runExample(t, "erasure-fail.json", Options{})
	tr, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, backend := range flow.BackendNames() {
		if backend == tr.Header.Backend {
			continue
		}
		cf, err := Counterfactual(context.Background(), tr, Options{}, Substitution{Backend: backend}, nil)
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if !cf.VerdictsSame || !cf.OutcomesSame || !cf.MemoriesSame {
			var rep strings.Builder
			cf.Report(&rep)
			t.Fatalf("backend swap to %s changed outcomes:\n%s", backend, rep.String())
		}
	}
}

// The faults-off counterfactual answers "what would this campaign have
// done without the injected flips": every case goes green and the
// final memories move off the faulted baseline wherever a fault had
// propagated.
func TestCounterfactualFaultsOff(t *testing.T) {
	_, buf := runExample(t, "erasure-fail.json", Options{})
	tr, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	cf, err := Counterfactual(context.Background(), tr, Options{}, Substitution{FaultsOff: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cf.Variant.Header.FaultsOff != true {
		t.Fatal("variant header must mark faults off")
	}
	if cf.Variant.Summary.FaultsInjected != 0 {
		t.Fatalf("faults-off run still injected: %+v", cf.Variant.Summary)
	}
	if !cf.Variant.OK() {
		t.Fatalf("faults-off run must be green: %+v", cf.Variant.Summary)
	}
	if cf.MemoriesSame {
		t.Fatal("must-fail faults propagated, so disabling them must change the final memories")
	}
	for _, p := range cf.Pairs {
		if p.VarOutcome != "" {
			t.Fatalf("case %d: outcome recorded without faults: %q", p.Index, p.VarOutcome)
		}
	}
	var rep strings.Builder
	cf.Report(&rep)
	if !strings.Contains(rep.String(), "faults=off") {
		t.Fatalf("report does not name the substitution:\n%s", rep.String())
	}
}

// A recorded trace must survive a file round trip and reject malformed
// streams.
func TestTraceRoundTripAndErrors(t *testing.T) {
	res, buf := runExample(t, "erasure-fail.json", Options{})
	tr, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := tr.Write(&out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), out.Bytes()) {
		t.Fatal("trace write-read-write is not byte-identical")
	}
	if tr.Header.Seed != res.Header.Seed || len(tr.Cases) != len(res.Cases) {
		t.Fatalf("round trip lost records: %+v", tr.Header)
	}

	if _, err := ReadTrace(strings.NewReader("")); err == nil {
		t.Error("empty trace must error")
	}
	if _, err := ReadTrace(strings.NewReader(`{"record":"case"}`)); err == nil {
		t.Error("case before header must error")
	}
	if _, err := ReadTrace(strings.NewReader(`{"record":"scenario","schema_version":99}`)); err == nil {
		t.Error("future schema version must error")
	}
	if _, err := ReadTrace(strings.NewReader(`{"record":"weird"}`)); err == nil {
		t.Error("unknown record must error")
	}
}

// Tampered traces must be rejected by the replay-path fault validation.
func TestReplayRejectsTamperedTrace(t *testing.T) {
	_, buf := runExample(t, "erasure-fail.json", Options{})
	tr, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	tr.Cases[0].Faults[0].Before++
	if _, err := Rebuild(tr, nil); err == nil {
		t.Fatal("tampered fault record must fail rebuild")
	}

	tr2, _ := ReadTrace(bytes.NewReader(buf.Bytes()))
	tr2.Cases[0].Params = "k=4,stripes=12,zzz=1"
	if _, err := Rebuild(tr2, nil); err == nil {
		t.Fatal("unknown param in trace must fail rebuild")
	}
}
