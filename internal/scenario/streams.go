package scenario

import (
	"math"
	"math/rand"
)

// Sub-stream split: every random dimension of a scenario (mix
// selection, parameter draws, arrival times, fault planning) gets its
// own math/rand stream derived from the one top-level seed and a label.
// Draw counts in one dimension therefore never shift another — adding a
// parameter to the mix does not change which faults are injected.
//
// This file is the only place in the tree (outside tests) that
// constructs math/rand sources; the seed-discipline test at the repo
// root enforces that.

// subStream derives the labelled stream from the top-level seed.
func subStream(seed int64, label string) *rand.Rand {
	return rand.New(rand.NewSource(int64(splitmix64(uint64(seed) ^ fnv64(label)))))
}

// fnv64 is FNV-1a over the label bytes.
func fnv64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// splitmix64 finalizes the seed/label mix so nearby seeds yield
// unrelated streams.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// expDraw draws a unit-rate exponential variate.
func expDraw(r *rand.Rand) float64 {
	return -math.Log(1 - r.Float64())
}

// gammaDraw draws a Gamma(shape, 1) variate via Marsaglia-Tsang, with
// the standard boost for shape < 1.
func gammaDraw(r *rand.Rand, shape float64) float64 {
	if shape < 1 {
		return gammaDraw(r, shape+1) * math.Pow(r.Float64(), 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
