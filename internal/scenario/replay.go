package scenario

import (
	"context"
	"fmt"
	"io"

	"repro/internal/workloads"
)

// Rebuild turns a decoded trace back into materialized cases: every
// family is rebuilt from the registry under its recorded resolved
// parameters, and every recorded fault is re-validated against the
// rebuilt clean inputs (word in range, before-value matching, after =
// before with the recorded bit flipped). Nothing is re-drawn from the
// seed — the trace is the complete record of every decision.
func Rebuild(tr *Trace, reg *workloads.Registry) ([]*CaseRun, error) {
	if reg == nil {
		reg = workloads.Default
	}
	out := make([]*CaseRun, 0, len(tr.Cases))
	for i := range tr.Cases {
		tc := &tr.Cases[i]
		spec := tc.Family
		if tc.Params != "" {
			spec += "," + tc.Params
		}
		name, v, err := workloads.ParseSpec(spec)
		if err != nil {
			return nil, fmt.Errorf("scenario: trace case %d: %w", tc.Index, err)
		}
		w, err := reg.Lookup(name)
		if err != nil {
			return nil, fmt.Errorf("scenario: trace case %d: %w", tc.Index, err)
		}
		rv, err := workloads.Resolve(w, v)
		if err != nil {
			return nil, fmt.Errorf("scenario: trace case %d: %w", tc.Index, err)
		}
		clean, err := workloads.BuildWorkload(w, rv)
		if err != nil {
			return nil, fmt.Errorf("scenario: trace case %d: %w", tc.Index, err)
		}
		cr := &CaseRun{
			Index:     tc.Index,
			Family:    name,
			Values:    rv,
			Params:    rv.String(),
			ArrivalNS: tc.ArrivalNS,
			Policy:    tc.Policy,
			Faults:    tc.Faults,
			Workload:  w,
			Clean:     clean,
		}
		if cr.Params != tc.Params {
			return nil, fmt.Errorf("scenario: trace case %d: params %q do not resolve canonically (got %q) against this registry",
				tc.Index, tc.Params, cr.Params)
		}
		if err := checkFaultRecords(cr, cr.Faults); err != nil {
			return nil, fmt.Errorf("scenario: trace case %d: %w", tc.Index, err)
		}
		out = append(out, cr)
	}
	return out, nil
}

// Replay re-executes a recorded trace. With zero-value options it runs
// on the trace's own backend and width and must be bit-identical over
// the compared identity set (see CompareTraces); options substitute
// dimensions, which is what Counterfactual wraps. The trace records
// stream to trace when non-nil, exactly like Run.
func Replay(ctx context.Context, tr *Trace, opts Options, trace io.Writer) (*Result, error) {
	runs, err := Rebuild(tr, opts.Registry)
	if err != nil {
		return nil, err
	}
	if opts.Backend == "" {
		opts.Backend = tr.Header.Backend
	}
	if opts.Width == 0 {
		opts.Width = tr.Header.Width
	}
	if tr.Header.FaultsOff {
		opts.DisableFaults = true
	}
	return execute(ctx, tr.Header.Scenario, tr.Header.Seed, runs, opts, trace)
}

// Substitution names the one dimension a counterfactual changes.
type Substitution struct {
	Backend   string // run on another backend
	Width     int    // run at another datapath width
	FaultsOff bool   // run with fault injection disabled
}

func (s Substitution) String() string {
	switch {
	case s.Backend != "":
		return "backend=" + s.Backend
	case s.Width != 0:
		return fmt.Sprintf("width=%d", s.Width)
	case s.FaultsOff:
		return "faults=off"
	}
	return "identity"
}

// CasePair is one case of a counterfactual diff: the recorded base run
// against the substituted variant.
type CasePair struct {
	Index       int
	Family      string
	Params      string
	BasePassed  bool
	VarPassed   bool
	BaseOutcome string
	VarOutcome  string
	MemoryEqual bool
	BaseCycles  uint64
	VarCycles   uint64
}

// CFResult is a counterfactual outcome: the variant's full result plus
// the per-case pairing against the base trace.
type CFResult struct {
	Sub     Substitution
	Base    *Trace
	Variant *Result
	Pairs   []CasePair

	// VerdictsSame reports that every case's pass/fail verdict matched
	// the base trace; OutcomesSame the same for fault outcomes;
	// MemoriesSame for final-memory digests.
	VerdictsSame bool
	OutcomesSame bool
	MemoriesSame bool
}

// Counterfactual re-runs a recorded trace with exactly one dimension
// substituted — same materialized cases, same faults (unless FaultsOff),
// other backend or width — and pairs each case's outcome against the
// base. A backend swap must keep every verdict identical (the
// cross-backend equivalence guarantee); a width change or faults-off
// run is expected to differ, and the paired summary shows where.
func Counterfactual(ctx context.Context, tr *Trace, opts Options, sub Substitution, trace io.Writer) (*CFResult, error) {
	if sub.Backend != "" {
		opts.Backend = sub.Backend
	}
	if sub.Width != 0 {
		opts.Width = sub.Width
	}
	if sub.FaultsOff {
		opts.DisableFaults = true
	}
	res, err := Replay(ctx, tr, opts, trace)
	if err != nil {
		return nil, err
	}
	cf := &CFResult{Sub: sub, Base: tr, Variant: res,
		VerdictsSame: true, OutcomesSame: true, MemoriesSame: true}
	for i := range tr.Cases {
		if i >= len(res.Cases) {
			break
		}
		b, v := &tr.Cases[i], &res.Cases[i]
		pair := CasePair{
			Index:       b.Index,
			Family:      b.Family,
			Params:      b.Params,
			BasePassed:  b.Passed,
			VarPassed:   v.Passed,
			BaseOutcome: b.FaultOutcome,
			VarOutcome:  v.FaultOutcome,
			MemoryEqual: b.MemoryDigest == v.MemoryDigest,
		}
		for _, c := range b.Configs {
			pair.BaseCycles += c.Cycles
		}
		for _, c := range v.Configs {
			pair.VarCycles += c.Cycles
		}
		if pair.BasePassed != pair.VarPassed {
			cf.VerdictsSame = false
		}
		if pair.BaseOutcome != pair.VarOutcome {
			cf.OutcomesSame = false
		}
		if !pair.MemoryEqual {
			cf.MemoriesSame = false
		}
		cf.Pairs = append(cf.Pairs, pair)
	}
	return cf, nil
}

// Report renders the paired diff summary.
func (cf *CFResult) Report(w io.Writer) {
	fmt.Fprintf(w, "counterfactual %s on trace %q (%d cases, base backend %s)\n",
		cf.Sub, cf.Base.Header.Scenario, len(cf.Pairs), cf.Base.Header.Backend)
	for _, p := range cf.Pairs {
		mark := "="
		if p.BasePassed != p.VarPassed || p.BaseOutcome != p.VarOutcome || !p.MemoryEqual {
			mark = "!"
		}
		fmt.Fprintf(w, "  %s case %2d %s(%s): passed %v->%v", mark, p.Index, p.Family, p.Params, p.BasePassed, p.VarPassed)
		if p.BaseOutcome != "" || p.VarOutcome != "" {
			fmt.Fprintf(w, " outcome %s->%s", orDash(p.BaseOutcome), orDash(p.VarOutcome))
		}
		fmt.Fprintf(w, " mem-equal %v cycles %d->%d\n", p.MemoryEqual, p.BaseCycles, p.VarCycles)
	}
	fmt.Fprintf(w, "  verdicts-same %v outcomes-same %v memories-same %v\n",
		cf.VerdictsSame, cf.OutcomesSame, cf.MemoriesSame)
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
