package scenario

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/api"
)

// Trace is a decoded scenario trace: the header, every case record,
// and the trailing summary (nil when the trace was truncated mid-run —
// still replayable).
type Trace struct {
	Header  api.TraceHeader
	Cases   []api.TraceCase
	Summary *api.TraceSummary
}

// ReadTrace decodes a JSONL trace stream: one header line, case lines,
// and at most one trailing summary line.
func ReadTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	tr := &Trace{}
	line := 0
	for sc.Scan() {
		text := strings.TrimSpace(sc.Text())
		line++
		if text == "" {
			continue
		}
		var probe struct {
			SchemaVersion int    `json:"schema_version"`
			Record        string `json:"record"`
		}
		if err := json.Unmarshal([]byte(text), &probe); err != nil {
			return nil, fmt.Errorf("scenario: trace line %d: %w", line, err)
		}
		if err := api.CheckVersion(probe.SchemaVersion); err != nil {
			return nil, fmt.Errorf("scenario: trace line %d: %w", line, err)
		}
		switch probe.Record {
		case api.RecordTraceHeader:
			if tr.Header.Record != "" {
				return nil, fmt.Errorf("scenario: trace line %d: second header", line)
			}
			if err := json.Unmarshal([]byte(text), &tr.Header); err != nil {
				return nil, fmt.Errorf("scenario: trace line %d: %w", line, err)
			}
		case api.RecordTraceCase:
			if tr.Header.Record == "" {
				return nil, fmt.Errorf("scenario: trace line %d: case before header", line)
			}
			var tc api.TraceCase
			if err := json.Unmarshal([]byte(text), &tc); err != nil {
				return nil, fmt.Errorf("scenario: trace line %d: %w", line, err)
			}
			tr.Cases = append(tr.Cases, tc)
		case api.RecordTraceSummary:
			var ts api.TraceSummary
			if err := json.Unmarshal([]byte(text), &ts); err != nil {
				return nil, fmt.Errorf("scenario: trace line %d: %w", line, err)
			}
			tr.Summary = &ts
		default:
			return nil, fmt.Errorf("scenario: trace line %d: unknown record %q", line, probe.Record)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("scenario: read trace: %w", err)
	}
	if tr.Header.Record == "" {
		return nil, fmt.Errorf("scenario: trace has no header record")
	}
	return tr, nil
}

// ReadTraceFile reads and decodes a trace file.
func ReadTraceFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	defer f.Close()
	tr, err := ReadTrace(f)
	if err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", path, err)
	}
	return tr, nil
}

// Write re-emits the trace as JSONL.
func (tr *Trace) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(tr.Header); err != nil {
		return err
	}
	for _, tc := range tr.Cases {
		if err := enc.Encode(tc); err != nil {
			return err
		}
	}
	if tr.Summary != nil {
		return enc.Encode(*tr.Summary)
	}
	return nil
}

// CompareTraces diffs two case sequences over the deterministic
// identity set — family, resolved params, arrival times, injected
// faults, verdicts, fault outcomes, per-config cycles and final states,
// and the memory and sink digests. With strict set (same backend on
// both sides) per-config event counts must match too; across backend
// kinds the cycle engine counts events differently, so they are
// excluded. An empty diff list means the runs are bit-identical over
// the compared set.
func CompareTraces(a, b []api.TraceCase, strict bool) []string {
	var diffs []string
	add := func(i int, field string, av, bv interface{}) {
		diffs = append(diffs, fmt.Sprintf("case %d: %s: %v != %v", i, field, av, bv))
	}
	if len(a) != len(b) {
		return []string{fmt.Sprintf("case count: %d != %d", len(a), len(b))}
	}
	for i := range a {
		x, y := &a[i], &b[i]
		if x.Family != y.Family {
			add(i, "family", x.Family, y.Family)
		}
		if x.Params != y.Params {
			add(i, "params", x.Params, y.Params)
		}
		if x.ArrivalNS != y.ArrivalNS {
			add(i, "arrival_ns", x.ArrivalNS, y.ArrivalNS)
		}
		if x.Policy != y.Policy {
			add(i, "policy", x.Policy, y.Policy)
		}
		if len(x.Faults) != len(y.Faults) {
			add(i, "faults", len(x.Faults), len(y.Faults))
		} else {
			for j := range x.Faults {
				if x.Faults[j] != y.Faults[j] {
					add(i, fmt.Sprintf("fault %d", j), x.Faults[j], y.Faults[j])
				}
			}
		}
		if x.Completed != y.Completed {
			add(i, "completed", x.Completed, y.Completed)
		}
		if x.Passed != y.Passed {
			add(i, "passed", x.Passed, y.Passed)
		}
		if x.PolicyOK != y.PolicyOK {
			add(i, "policy_ok", x.PolicyOK, y.PolicyOK)
		}
		if x.FaultOutcome != y.FaultOutcome {
			add(i, "fault_outcome", x.FaultOutcome, y.FaultOutcome)
		}
		if x.MemoryDigest != y.MemoryDigest {
			add(i, "memory_digest", x.MemoryDigest, y.MemoryDigest)
		}
		if x.SinkDigest != y.SinkDigest {
			add(i, "sink_digest", x.SinkDigest, y.SinkDigest)
		}
		if len(x.Configs) != len(y.Configs) {
			add(i, "configs", len(x.Configs), len(y.Configs))
			continue
		}
		for j := range x.Configs {
			cx, cy := x.Configs[j], y.Configs[j]
			if cx.ID != cy.ID {
				add(i, fmt.Sprintf("config %d id", j), cx.ID, cy.ID)
			}
			if cx.Cycles != cy.Cycles {
				add(i, fmt.Sprintf("config %s cycles", cx.ID), cx.Cycles, cy.Cycles)
			}
			if cx.FinalState != cy.FinalState {
				add(i, fmt.Sprintf("config %s final_state", cx.ID), cx.FinalState, cy.FinalState)
			}
			if strict && cx.Events != cy.Events {
				add(i, fmt.Sprintf("config %s events", cx.ID), cx.Events, cy.Events)
			}
		}
	}
	return diffs
}
