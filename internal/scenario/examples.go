package scenario

import (
	"bytes"
	"embed"
	"fmt"
	"sort"
	"strings"

	"repro/internal/workloads"
)

// The example specs ship twice: embedded here (so the bench harness and
// the server tests run them without touching the filesystem) and as
// checked-in files under examples/scenarios/ (so `testsuite -scenario`
// has something to point at). A repo-root test pins the two copies
// byte-identical.

//go:embed specs/*.json
var specFS embed.FS

// ExampleNames lists the embedded example specs, sorted.
func ExampleNames() []string {
	entries, _ := specFS.ReadDir("specs")
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names
}

// ExampleSpec returns the raw bytes of an embedded example spec (the
// file name, e.g. "erasure-recover.json").
func ExampleSpec(name string) ([]byte, bool) {
	b, err := specFS.ReadFile("specs/" + name)
	if err != nil {
		return nil, false
	}
	return b, true
}

// LoadExample loads an embedded example spec against a registry (nil
// means the default registry).
func LoadExample(name string, reg *workloads.Registry) (*Scenario, error) {
	b, ok := ExampleSpec(name)
	if !ok {
		return nil, fmt.Errorf("scenario: unknown example spec %q (have: %s)",
			name, strings.Join(ExampleNames(), ", "))
	}
	return Parse(bytes.NewReader(b), reg)
}
