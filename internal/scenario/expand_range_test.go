package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/api"
)

func faultSpec() *api.ScenarioSpec {
	return &api.ScenarioSpec{
		Name:  "f",
		Seed:  7,
		Cases: 6,
		Mix: []api.MixEntry{{Family: "erasure", Params: map[string]api.Dist{
			"k":       {Choice: []int{2, 3}},
			"stripes": {Const: intp(2)},
		}}},
		Arrival: &api.ArrivalSpec{Kind: api.ArrivalGamma, Rate: 50, Shape: 2},
		Faults:  &api.FaultPlan{Rate: 0.3, Policy: api.PolicyMustRecover},
	}
}

// TestExpandRangeMatchesFullExpand pins the sweep sharding invariant:
// every [lo, hi) slice of the sequence — with and without a fault plan,
// whose draw count depends on the built cases — matches the same slice
// of a full expansion exactly.
func TestExpandRangeMatchesFullExpand(t *testing.T) {
	for _, spec := range []*api.ScenarioSpec{validSpec(), faultSpec()} {
		sc, err := Load(spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		full, err := sc.Expand()
		if err != nil {
			t.Fatal(err)
		}
		for lo := 0; lo <= spec.Cases; lo++ {
			for hi := lo; hi <= spec.Cases; hi++ {
				part, err := sc.ExpandRange(lo, hi)
				if err != nil {
					t.Fatalf("%s: ExpandRange(%d, %d): %v", spec.Name, lo, hi, err)
				}
				if len(part) != hi-lo {
					t.Fatalf("%s: ExpandRange(%d, %d) returned %d cases", spec.Name, lo, hi, len(part))
				}
				for j, cr := range part {
					want := full[lo+j]
					if cr.Index != want.Index || cr.Family != want.Family ||
						cr.Params != want.Params || cr.ArrivalNS != want.ArrivalNS ||
						cr.Policy != want.Policy || !reflect.DeepEqual(cr.Faults, want.Faults) {
						t.Fatalf("%s: ExpandRange(%d, %d)[%d] differs from full expansion:\n%+v\nvs\n%+v",
							spec.Name, lo, hi, j, cr, want)
					}
				}
			}
		}
	}
}

func TestExpandRangeBounds(t *testing.T) {
	sc, err := Load(validSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]int{{-1, 2}, {0, sc.Spec.Cases + 1}, {3, 2}} {
		if _, err := sc.ExpandRange(r[0], r[1]); err == nil {
			t.Errorf("ExpandRange(%d, %d) accepted out-of-bounds range", r[0], r[1])
		}
	}
}

// TestExecutorShardedMatchesRun drives the same scenario once through
// Run and once as two executor-driven shards, and requires the shard
// path to reproduce Run's case records byte-for-byte and its summary
// via Summarize — the contract the sweep merge is built on.
func TestExecutorShardedMatchesRun(t *testing.T) {
	sc, err := Load(validSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res, err := sc.Run(context.Background(), Options{}, &buf)
	if err != nil {
		t.Fatal(err)
	}

	var recs []api.TraceCase
	for _, r := range [][2]int{{0, 2}, {2, 4}} {
		runs, err := sc.ExpandRange(r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		ex, err := NewExecutor(Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, cr := range runs {
			rec, err := ex.Execute(context.Background(), cr)
			if err != nil {
				t.Fatal(err)
			}
			recs = append(recs, *rec)
		}
	}

	if !reflect.DeepEqual(recs, res.Cases) {
		t.Fatalf("sharded executor records differ from Run:\n%+v\nvs\n%+v", recs, res.Cases)
	}
	lines := bytes.Split(bytes.TrimSuffix(buf.Bytes(), []byte("\n")), []byte("\n"))
	if len(lines) != 2+len(recs) {
		t.Fatalf("trace has %d lines, want %d", len(lines), 2+len(recs))
	}
	for i, rec := range recs {
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b, lines[1+i]) {
			t.Errorf("case %d re-encodes differently:\n%s\nvs trace line\n%s", i, b, lines[1+i])
		}
	}

	sum := Summarize(sc.Spec.Name, sc.Spec.Cases, recs, "")
	if sum != res.Summary {
		t.Errorf("Summarize differs from Run summary:\n%+v\nvs\n%+v", sum, res.Summary)
	}
}
