package scenario

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/api"
)

func intp(n int) *int { return &n }

func validSpec() *api.ScenarioSpec {
	return &api.ScenarioSpec{
		Name:  "t",
		Seed:  42,
		Cases: 4,
		Mix: []api.MixEntry{
			{Family: "hamming", Params: map[string]api.Dist{"words": {Choice: []int{8, 16}}}},
			{Family: "matmul", Weight: 0.5, Params: map[string]api.Dist{"n": {Const: intp(4)}}},
		},
		Arrival: &api.ArrivalSpec{Kind: api.ArrivalPoisson, Rate: 100},
	}
}

func TestLoadValidSpec(t *testing.T) {
	if _, err := Load(validSpec(), nil); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*api.ScenarioSpec)
		want string
	}{
		{"no name", func(s *api.ScenarioSpec) { s.Name = "" }, "needs a name"},
		{"zero cases", func(s *api.ScenarioSpec) { s.Cases = 0 }, "cases"},
		{"too many cases", func(s *api.ScenarioSpec) { s.Cases = MaxCases + 1 }, "cases"},
		{"empty mix", func(s *api.ScenarioSpec) { s.Mix = nil }, "empty mix"},
		{"unknown family", func(s *api.ScenarioSpec) { s.Mix[0].Family = "nope" }, "unknown workload"},
		{"negative weight", func(s *api.ScenarioSpec) { s.Mix[0].Weight = -1 }, "negative weight"},
		{"unknown param", func(s *api.ScenarioSpec) {
			s.Mix[0].Params["zzz"] = api.Dist{Const: intp(1)}
		}, "no parameter"},
		{"const out of range", func(s *api.ScenarioSpec) {
			s.Mix[0].Params["words"] = api.Dist{Const: intp(0)}
		}, "outside"},
		{"uniform out of range", func(s *api.ScenarioSpec) {
			s.Mix[0].Params["words"] = api.Dist{Uniform: &api.IntRange{Min: 0, Max: 8}}
		}, "outside"},
		{"choice out of range", func(s *api.ScenarioSpec) {
			s.Mix[0].Params["words"] = api.Dist{Choice: []int{8, 1 << 30}}
		}, "outside"},
		{"ambiguous dist", func(s *api.ScenarioSpec) {
			s.Mix[0].Params["words"] = api.Dist{Const: intp(8), Choice: []int{8}}
		}, "exactly one"},
		{"bad arrival kind", func(s *api.ScenarioSpec) { s.Arrival = &api.ArrivalSpec{Kind: "weird"} }, "arrival kind"},
		{"deterministic no interval", func(s *api.ScenarioSpec) {
			s.Arrival = &api.ArrivalSpec{Kind: api.ArrivalDeterministic}
		}, "interval_ns"},
		{"gamma no shape", func(s *api.ScenarioSpec) {
			s.Arrival = &api.ArrivalSpec{Kind: api.ArrivalGamma, Rate: 10}
		}, "shape"},
		{"fault rate out of range", func(s *api.ScenarioSpec) {
			s.Faults = &api.FaultPlan{Rate: 1.5}
		}, "rate"},
		{"fault bits out of range", func(s *api.ScenarioSpec) {
			s.Faults = &api.FaultPlan{Rate: 0.1, Bits: 40}
		}, "bits"},
		{"bad policy", func(s *api.ScenarioSpec) {
			s.Faults = &api.FaultPlan{Rate: 0.1, Policy: "hope"}
		}, "policy"},
		{"must-recover on non-erasure mix", func(s *api.ScenarioSpec) {
			s.Faults = &api.FaultPlan{Rate: 0.1, Policy: api.PolicyMustRecover}
		}, "erasure-only"},
	}
	for _, c := range cases {
		spec := validSpec()
		c.mut(spec)
		_, err := Load(spec, nil)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestExpandDeterministic(t *testing.T) {
	sc, err := Load(validSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sc.Expand()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sc.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != sc.Spec.Cases {
		t.Fatalf("expanded %d cases, want %d", len(a), sc.Spec.Cases)
	}
	for i := range a {
		if a[i].Family != b[i].Family || a[i].Params != b[i].Params ||
			a[i].ArrivalNS != b[i].ArrivalNS || !reflect.DeepEqual(a[i].Faults, b[i].Faults) {
			t.Fatalf("case %d differs across same-seed expansions: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestExpandSeedChangesDraws(t *testing.T) {
	s1 := validSpec()
	s2 := validSpec()
	s2.Seed = s1.Seed + 1
	s2.Cases = 32
	s1.Cases = 32
	sc1, err := Load(s1, nil)
	if err != nil {
		t.Fatal(err)
	}
	sc2, err := Load(s2, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := sc1.Expand()
	b, _ := sc2.Expand()
	same := true
	for i := range a {
		if a[i].Family != b[i].Family || a[i].Params != b[i].Params || a[i].ArrivalNS != b[i].ArrivalNS {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical 32-case expansions")
	}
}

func TestArrivalProcesses(t *testing.T) {
	for _, arr := range []*api.ArrivalSpec{
		{Kind: api.ArrivalDeterministic, IntervalNS: 1000},
		{Kind: api.ArrivalPoisson, Rate: 1000},
		{Kind: api.ArrivalGamma, Rate: 1000, Shape: 2},
	} {
		spec := validSpec()
		spec.Arrival = arr
		spec.Cases = 16
		sc, err := Load(spec, nil)
		if err != nil {
			t.Fatalf("%s: %v", arr.Kind, err)
		}
		runs, err := sc.Expand()
		if err != nil {
			t.Fatalf("%s: %v", arr.Kind, err)
		}
		last := int64(-1)
		for _, cr := range runs {
			if cr.ArrivalNS < last {
				t.Fatalf("%s: arrival times not monotone: %d after %d", arr.Kind, cr.ArrivalNS, last)
			}
			last = cr.ArrivalNS
		}
		if arr.Kind == api.ArrivalDeterministic && runs[15].ArrivalNS != 16*1000 {
			t.Fatalf("deterministic arrivals: case 15 at %dns, want 16000", runs[15].ArrivalNS)
		}
		if last == 0 {
			t.Fatalf("%s: all arrivals at zero", arr.Kind)
		}
	}
}

func TestMustRecoverFlipsOnlyErasedPositions(t *testing.T) {
	sc, err := LoadExample("erasure-recover.json", nil)
	if err != nil {
		t.Fatal(err)
	}
	runs, err := sc.Expand()
	if err != nil {
		t.Fatal(err)
	}
	flips := 0
	for _, cr := range runs {
		if len(cr.Faults) == 0 {
			t.Fatalf("case %d: must-recover planned no flips", cr.Index)
		}
		k := cr.Values["k"]
		epos := cr.Clean.Inputs["epos"]
		for _, f := range cr.Faults {
			flips++
			if f.Array != "in" {
				t.Fatalf("case %d: flip outside stimulus: %+v", cr.Index, f)
			}
			stripe, pos := f.Word/(k+1), f.Word%(k+1)
			if int(epos[stripe]) != pos {
				t.Fatalf("case %d: must-recover flip at survivor position %d of stripe %d (erased: %d)",
					cr.Index, pos, stripe, epos[stripe])
			}
		}
	}
	if flips == 0 {
		t.Fatal("no faults planned across the whole campaign")
	}
}

func TestExampleSpecsLoad(t *testing.T) {
	names := ExampleNames()
	if len(names) < 2 {
		t.Fatalf("expected at least 2 embedded example specs, have %v", names)
	}
	for _, name := range names {
		if _, err := LoadExample(name, nil); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := LoadExample("nope.json", nil); err == nil {
		t.Error("unknown example must error")
	}
}
