package scenario

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/api"
	"repro/internal/workloads"
)

// CaseRun is one materialized case of an expanded scenario: the
// resolved workload, its arrival time, and the planned fault
// injections. The clean case (inputs + reference expectations) is kept
// so the runner can compute both the model-consistency verdict on the
// faulted inputs and the fault outcome against the clean reference.
type CaseRun struct {
	Index     int
	Family    string
	Values    workloads.Values // fully resolved
	Params    string           // canonical Values.String()
	ArrivalNS int64
	Policy    string
	Faults    []api.FaultRecord

	Workload workloads.Workload
	Clean    *workloads.Case
}

// Key is the prepared-design cache key: two cases with the same key
// share one compiled, elaborated design (reseeded per case).
func (cr *CaseRun) Key() string { return cr.Family + "|" + cr.Params }

// Expand materializes the scenario's deterministic case sequence: for
// each case it picks a family from the weighted mix, draws every
// parameter from its distribution, samples the arrival process, builds
// the clean case, and plans the fault injections. Same spec + same seed
// always yields the same sequence.
func (sc *Scenario) Expand() ([]*CaseRun, error) {
	return sc.ExpandRange(0, sc.Spec.Cases)
}

// ExpandRange materializes cases [lo, hi) of the deterministic
// sequence — the shard-sized slice a sweep worker executes. The cases
// returned are identical (indices, draws, faults and all) to the same
// slice of a full Expand: the prefix before lo is still drawn from the
// sub-streams, just not returned. Fault planning consumes a draw count
// that depends on the built clean case, so with a fault plan the
// skipped prefix is built and planned too; without one the expensive
// workload build is skipped for cases before lo.
func (sc *Scenario) ExpandRange(lo, hi int) ([]*CaseRun, error) {
	if lo < 0 || hi > sc.Spec.Cases || lo > hi {
		return nil, fmt.Errorf("scenario: %s: case range [%d, %d) outside [0, %d)",
			sc.Spec.Name, lo, hi, sc.Spec.Cases)
	}
	var (
		mixR    = subStream(sc.Spec.Seed, "mix")
		paramsR = subStream(sc.Spec.Seed, "params")
		faultsR = subStream(sc.Spec.Seed, "faults")
		arrive  = arrivalSampler{spec: sc.Spec.Arrival, r: subStream(sc.Spec.Seed, "arrival")}
	)
	total := 0.0
	for _, m := range sc.mix {
		total += m.weight
	}
	out := make([]*CaseRun, 0, hi-lo)
	for i := 0; i < hi; i++ {
		entry := pickMix(sc.mix, total, mixR)
		v := workloads.Values{}
		for _, pd := range entry.dists {
			v[pd.name] = drawDist(pd.d, paramsR)
		}
		arrivalNS := arrive.next()
		if i < lo && sc.Spec.Faults == nil {
			continue
		}
		rv, err := workloads.Resolve(entry.w, v)
		if err != nil {
			return nil, fmt.Errorf("scenario: %s: case %d: %w", sc.Spec.Name, i, err)
		}
		clean, err := workloads.BuildWorkload(entry.w, rv)
		if err != nil {
			return nil, fmt.Errorf("scenario: %s: case %d: %w", sc.Spec.Name, i, err)
		}
		cr := &CaseRun{
			Index:     i,
			Family:    entry.w.Name(),
			Values:    rv,
			Params:    rv.String(),
			ArrivalNS: arrivalNS,
			Workload:  entry.w,
			Clean:     clean,
		}
		if f := sc.Spec.Faults; f != nil {
			cr.Policy = f.Policy
			if cr.Policy == "" {
				cr.Policy = api.PolicyObserve
			}
			cr.Faults, err = planFaults(f, cr, faultsR)
			if err != nil {
				return nil, fmt.Errorf("scenario: %s: case %d: %w", sc.Spec.Name, i, err)
			}
		}
		if i < lo {
			continue
		}
		out = append(out, cr)
	}
	return out, nil
}

func pickMix(mix []mixEntry, total float64, r *rand.Rand) *mixEntry {
	u := r.Float64() * total
	cum := 0.0
	for i := range mix {
		cum += mix[i].weight
		if u < cum {
			return &mix[i]
		}
	}
	return &mix[len(mix)-1]
}

func drawDist(d api.Dist, r *rand.Rand) int {
	switch {
	case d.Const != nil:
		return *d.Const
	case d.Uniform != nil:
		return d.Uniform.Min + r.Intn(d.Uniform.Max-d.Uniform.Min+1)
	default:
		return d.Choice[r.Intn(len(d.Choice))]
	}
}

// arrivalSampler accumulates virtual arrival time across cases.
type arrivalSampler struct {
	spec *api.ArrivalSpec
	r    *rand.Rand
	now  int64
}

func (a *arrivalSampler) next() int64 {
	if a.spec == nil {
		return 0
	}
	switch a.spec.Kind {
	case api.ArrivalDeterministic:
		a.now += a.spec.IntervalNS
	case api.ArrivalPoisson:
		a.now += int64(expDraw(a.r) / a.spec.Rate * 1e9)
	case api.ArrivalGamma:
		// Gamma(shape, 1) scaled so the mean inter-arrival stays 1/rate.
		a.now += int64(gammaDraw(a.r, a.spec.Shape) / (a.spec.Rate * a.spec.Shape) * 1e9)
	}
	return a.now
}

// faultSite is one (array, word) flip candidate.
type faultSite struct {
	array string
	word  int
}

// planFaults draws this case's bit flips from the fault stream. For the
// observe policy, candidates are every word of the targeted arrays (the
// plan's list, or every input array). For must-recover, candidates are
// exactly the erased symbol positions of the erasure stimulus — flips
// the (k+1, k) MDS decoder must absorb; for must-fail they are the
// survivor positions, whose flips must propagate into the decoded
// output. The must-* policies guarantee at least one flip per case so
// the policy check is never vacuous.
func planFaults(plan *api.FaultPlan, cr *CaseRun, r *rand.Rand) ([]api.FaultRecord, error) {
	candidates, err := faultCandidates(plan, cr)
	if err != nil {
		return nil, err
	}
	if len(candidates) == 0 {
		return nil, nil
	}
	bits := plan.Bits
	if bits == 0 {
		bits = 8
	}
	var recs []api.FaultRecord
	flipped := map[faultSite]bool{}
	flip := func(s faultSite) {
		flipped[s] = true
		before := int64(0)
		if in := cr.Clean.Inputs[s.array]; s.word < len(in) {
			before = in[s.word]
		}
		bit := r.Intn(bits)
		recs = append(recs, api.FaultRecord{
			Array: s.array, Word: s.word, Bit: bit,
			Before: before, After: before ^ (1 << bit),
		})
	}
	for _, s := range candidates {
		if plan.MaxFlips > 0 && len(recs) >= plan.MaxFlips {
			break
		}
		if r.Float64() < plan.Rate {
			flip(s)
		}
	}
	if len(recs) == 0 && (plan.Policy == api.PolicyMustRecover || plan.Policy == api.PolicyMustFail) {
		flip(candidates[r.Intn(len(candidates))])
	}
	return recs, nil
}

// faultCandidates lists the case's flip sites in deterministic order.
func faultCandidates(plan *api.FaultPlan, cr *CaseRun) ([]faultSite, error) {
	if plan.Policy == api.PolicyMustRecover || plan.Policy == api.PolicyMustFail {
		return erasureCandidates(plan.Policy, cr)
	}
	arrays := plan.Arrays
	if len(arrays) == 0 {
		for name := range cr.Clean.Inputs {
			arrays = append(arrays, name)
		}
		sort.Strings(arrays)
	}
	var out []faultSite
	for _, name := range arrays {
		depth, ok := cr.Clean.ArraySizes[name]
		if !ok {
			return nil, fmt.Errorf("fault plan targets unknown array %q of %s (have: %s)",
				name, cr.Family, arrayNames(cr.Clean.ArraySizes))
		}
		for w := 0; w < depth; w++ {
			out = append(out, faultSite{array: name, word: w})
		}
	}
	return out, nil
}

// erasureCandidates splits the erasure stimulus into erased and
// survivor symbol positions. Stripe s of the "in" array holds k+1
// received symbols at [s*(k+1), s*(k+1)+k]; epos[s] names the erased
// position the decoder reconstructs, so flips there are invisible to
// the output (must recover) and flips anywhere else reach it (must
// fail).
func erasureCandidates(policy string, cr *CaseRun) ([]faultSite, error) {
	k := cr.Values["k"]
	n := cr.Values["stripes"]
	epos := cr.Clean.Inputs["epos"]
	if cr.Family != "erasure" || k < 2 || n < 1 || len(epos) < n {
		return nil, fmt.Errorf("policy %q needs an erasure case with epos stimulus, got %s(%s)",
			policy, cr.Family, cr.Params)
	}
	var out []faultSite
	for s := 0; s < n; s++ {
		base := s * (k + 1)
		e := int(epos[s])
		for d := 0; d <= k; d++ {
			erased := d == e
			if erased == (policy == api.PolicyMustRecover) {
				out = append(out, faultSite{array: "in", word: base + d})
			}
		}
	}
	return out, nil
}

func arrayNames(sizes map[string]int) string {
	names := make([]string, 0, len(sizes))
	for name := range sizes {
		names = append(names, name)
	}
	sort.Strings(names)
	s := ""
	for i, n := range names {
		if i > 0 {
			s += ", "
		}
		s += n
	}
	return s
}

// applyFaults clones the targeted arrays (padded to full depth) and
// applies every flip; untouched arrays are shared with the clean case.
func applyFaults(clean map[string][]int64, sizes map[string]int, faults []api.FaultRecord) map[string][]int64 {
	out := make(map[string][]int64, len(clean))
	for name, words := range clean {
		out[name] = words
	}
	for _, f := range faults {
		words := out[f.Array]
		if len(words) < sizes[f.Array] || sameSlice(words, clean[f.Array]) {
			padded := make([]int64, sizes[f.Array])
			copy(padded, words)
			words = padded
			out[f.Array] = words
		}
		words[f.Word] = f.After
	}
	return out
}

// sameSlice reports whether two slices share their backing array start.
func sameSlice(a, b []int64) bool {
	return len(a) > 0 && len(b) > 0 && &a[0] == &b[0]
}

// checkFaultRecords validates recorded flips against a rebuilt clean
// case — the replay-path guard that a trace matches the registry it is
// replayed against.
func checkFaultRecords(cr *CaseRun, faults []api.FaultRecord) error {
	for _, f := range faults {
		depth, ok := cr.Clean.ArraySizes[f.Array]
		if !ok {
			return fmt.Errorf("fault targets unknown array %q", f.Array)
		}
		if f.Word < 0 || f.Word >= depth {
			return fmt.Errorf("fault word %d outside array %q depth %d", f.Word, f.Array, depth)
		}
		if f.Bit < 0 || f.Bit > 63 {
			return fmt.Errorf("fault bit %d outside [0, 63]", f.Bit)
		}
		before := int64(0)
		if in := cr.Clean.Inputs[f.Array]; f.Word < len(in) {
			before = in[f.Word]
		}
		if f.Before != before {
			return fmt.Errorf("fault %s[%d]: trace records before=%d but the rebuilt case has %d (trace does not match this registry)",
				f.Array, f.Word, f.Before, before)
		}
		if f.After != f.Before^(1<<f.Bit) {
			return fmt.Errorf("fault %s[%d]: after=%d is not before=%d with bit %d flipped",
				f.Array, f.Word, f.After, f.Before, f.Bit)
		}
	}
	return nil
}
