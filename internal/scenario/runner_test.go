package scenario

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/api"
	"repro/internal/workloads"
)

func runExample(t *testing.T, name string, opts Options) (*Result, *bytes.Buffer) {
	t.Helper()
	sc, err := LoadExample(name, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res, err := sc.Run(context.Background(), opts, &buf)
	if err != nil {
		t.Fatal(err)
	}
	return res, &buf
}

// Two same-seed runs of the same spec must produce byte-identical
// traces — the seed-discipline pin: no wall clock, no global rand, no
// map-order dependence anywhere in the trace path.
func TestSameSeedRunsByteIdentical(t *testing.T) {
	_, a := runExample(t, "mixed-poisson.json", Options{})
	_, b := runExample(t, "mixed-poisson.json", Options{})
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("same-seed traces differ:\n--- run 1:\n%s\n--- run 2:\n%s", a.Bytes(), b.Bytes())
	}
}

func TestMixedCampaignPasses(t *testing.T) {
	res, buf := runExample(t, "mixed-poisson.json", Options{})
	if !res.OK() {
		t.Fatalf("mixed campaign not ok: %+v", res.Summary)
	}
	if res.Summary.Cases != 10 || res.Summary.Passed != 10 {
		t.Fatalf("want 10/10 passed, got %+v", res.Summary)
	}
	tr, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Cases) != 10 || tr.Summary == nil || !tr.Summary.OK {
		t.Fatalf("trace round trip: %d cases, summary %+v", len(tr.Cases), tr.Summary)
	}
	if diffs := CompareTraces(tr.Cases, res.Cases, true); len(diffs) != 0 {
		t.Fatalf("trace file differs from in-memory result: %v", diffs)
	}
}

// Erasure must-recover: flips land only on erased symbols, so the MDS
// decoder reconstructs every output word — each case must pass
// verification AND match the clean reference bit for bit.
func TestMustRecoverFaultsRecover(t *testing.T) {
	res, _ := runExample(t, "erasure-recover.json", Options{})
	if !res.OK() {
		t.Fatalf("must-recover campaign not ok: %+v", res.Summary)
	}
	if res.Summary.FaultsInjected == 0 {
		t.Fatal("no faults injected")
	}
	for _, tc := range res.Cases {
		if tc.FaultOutcome != api.OutcomeRecovered || !tc.PolicyOK || !tc.Passed {
			t.Fatalf("case %d: outcome %q policy_ok %v passed %v", tc.Index, tc.FaultOutcome, tc.PolicyOK, tc.Passed)
		}
	}
	if res.Summary.Recovered != res.Summary.Cases || res.Summary.Diverged != 0 {
		t.Fatalf("recovery counts: %+v", res.Summary)
	}
}

// Cross-check the recovery claim against the MDS reference decoder
// directly: decoding the faulted stimulus must equal decoding the clean
// one, for every materialized case.
func TestMustRecoverAgreesWithMDSReference(t *testing.T) {
	sc, err := LoadExample("erasure-recover.json", nil)
	if err != nil {
		t.Fatal(err)
	}
	runs, err := sc.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for _, cr := range runs {
		k, n := cr.Values["k"], cr.Values["stripes"]
		faulted := applyFaults(cr.Clean.Inputs, cr.Clean.ArraySizes, cr.Faults)
		clean := workloads.RefErasure(cr.Clean.Inputs["in"], cr.Clean.Inputs["epos"], n, k)
		hurt := workloads.RefErasure(faulted["in"], faulted["epos"], n, k)
		for i := range clean {
			if clean[i] != hurt[i] {
				t.Fatalf("case %d: MDS decode diverged at word %d despite erased-only flips", cr.Index, i)
			}
		}
	}
}

// Erasure must-fail: flips land on survivor symbols, which the decoder
// copies (or xors) straight into the output — every case must diverge
// from the clean reference while still passing model-consistency
// verification (sim == interpreter == reference on the same faulted
// stimulus).
func TestMustFailFaultsDiverge(t *testing.T) {
	res, _ := runExample(t, "erasure-fail.json", Options{})
	if !res.OK() {
		t.Fatalf("must-fail campaign not ok: %+v", res.Summary)
	}
	for _, tc := range res.Cases {
		if tc.FaultOutcome != api.OutcomeDiverged || !tc.PolicyOK || !tc.Passed {
			t.Fatalf("case %d: outcome %q policy_ok %v passed %v", tc.Index, tc.FaultOutcome, tc.PolicyOK, tc.Passed)
		}
	}
}

// The prepared-design cache must not leak one case's faulted inputs
// into the next case with the same parameters: a faulted case followed
// by a clean same-key case must leave the clean case green.
func TestFaultedCaseDoesNotPoisonCache(t *testing.T) {
	spec := &api.ScenarioSpec{
		Name:  "poison",
		Seed:  3,
		Cases: 6,
		Mix: []api.MixEntry{{Family: "erasure", Params: map[string]api.Dist{
			"k": {Const: intp(4)}, "stripes": {Const: intp(8)},
		}}},
		Faults: &api.FaultPlan{Arrays: []string{"in"}, Rate: 0.1, Policy: api.PolicyMustFail, MaxFlips: 1},
	}
	sc, err := Load(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Run(context.Background(), Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("campaign not ok: %+v", res.Summary)
	}
	// All six cases share one resolved key; each must diverge on its own
	// faults only, which the per-case digests prove: a poisoned reseed
	// would make two different fault sets yield the same memories.
	if res.Summary.Diverged != 6 {
		t.Fatalf("want 6 diverged cases, got %+v", res.Summary)
	}
}

func TestObservePolicyRecordsWithoutJudging(t *testing.T) {
	spec := &api.ScenarioSpec{
		Name:  "observe",
		Seed:  5,
		Cases: 3,
		Mix: []api.MixEntry{{Family: "hamming", Params: map[string]api.Dist{
			"words": {Const: intp(16)},
		}}},
		Faults: &api.FaultPlan{Rate: 0.2, Policy: api.PolicyObserve, MaxFlips: 2},
	}
	sc, err := Load(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Run(context.Background(), Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.PolicyViolations != 0 {
		t.Fatalf("observe policy must never violate: %+v", res.Summary)
	}
	for _, tc := range res.Cases {
		if !tc.Passed {
			t.Fatalf("case %d: model consistency broke under observed faults", tc.Index)
		}
		if len(tc.Faults) > 0 && tc.FaultOutcome == "" {
			t.Fatalf("case %d: faults injected but no outcome recorded", tc.Index)
		}
	}
}

func TestRunnerErrorStillWritesSummary(t *testing.T) {
	sc, err := Load(validSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, err = sc.Run(context.Background(), Options{Backend: "no-such-backend"}, &buf)
	if err == nil {
		t.Fatal("expected backend error")
	}
	tr, rerr := ReadTrace(bytes.NewReader(buf.Bytes()))
	if rerr != nil {
		t.Fatalf("error trace unreadable: %v", rerr)
	}
	if tr.Summary == nil || tr.Summary.Error == "" || tr.Summary.OK {
		t.Fatalf("summary must carry the error: %+v", tr.Summary)
	}
}
