package scenario

import (
	"fmt"
	"io"
)

// Report renders the campaign outcome as the CLI's human-readable
// summary: one line per case, then the aggregate.
func (r *Result) Report(w io.Writer) {
	fmt.Fprintf(w, "scenario %q seed %d backend %s: %d cases\n",
		r.Header.Scenario, r.Header.Seed, r.Header.Backend, r.Header.Cases)
	for i := range r.Cases {
		tc := &r.Cases[i]
		status := "PASS"
		switch {
		case !tc.Completed:
			status = "INCOMPLETE"
		case !tc.Passed:
			status = "FAIL"
		}
		var cycles uint64
		for _, c := range tc.Configs {
			cycles += c.Cycles
		}
		fmt.Fprintf(w, "  [%s] case %2d t=%-12s %s(%s) configs=%d cycles=%d",
			status, tc.Index, fmt.Sprintf("%dns", tc.ArrivalNS), tc.Family, tc.Params, len(tc.Configs), cycles)
		if len(tc.Faults) > 0 || tc.FaultOutcome != "" {
			fmt.Fprintf(w, " faults=%d outcome=%s", len(tc.Faults), orDash(tc.FaultOutcome))
			if tc.Policy != "" {
				fmt.Fprintf(w, " policy=%s ok=%v", tc.Policy, tc.PolicyOK)
			}
		}
		fmt.Fprintln(w)
	}
	s := &r.Summary
	fmt.Fprintf(w, "  %d/%d passed", s.Passed, s.Cases)
	if s.FaultsInjected > 0 {
		fmt.Fprintf(w, ", %d faults (%d recovered, %d diverged, %d policy violations)",
			s.FaultsInjected, s.Recovered, s.Diverged, s.PolicyViolations)
	}
	fmt.Fprintf(w, ", %d configs, %d cycles, %d events", s.Configs, s.Cycles, s.Events)
	if s.Error != "" {
		fmt.Fprintf(w, ", ERROR: %s", s.Error)
	}
	fmt.Fprintf(w, " => ok=%v\n", s.OK)
}
