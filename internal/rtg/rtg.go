// Package rtg executes a Reconfiguration Transition Graph: it sequences
// the temporal partitions of a multi-configuration design, running each
// configuration to completion and carrying shared memory contents
// across reconfigurations — the role of the generated rtg.java in the
// paper's flow ("Java code that controls the execution of the
// simulation through the set of temporal partitions").
//
// The paper's flow pays a full reconfiguration — fresh simulator plus
// complete netlist elaboration — on every configuration visit. The
// controller instead keeps a replay cache: the first visit of a
// configuration elaborates and remembers the wired component graph, and
// every later visit (RTG revisit, repeated Execute) resets and replays
// it, which is trace-identical to a fresh build
// (TestReplayMatchesFreshElaboration) at a fraction of the cost.
// Options.DisableReplay restores the elaborate-every-visit behavior.
//
// # Concurrency
//
// A Controller owns live simulators (the replay cache) and a mutable
// shared-memory store, so its walks are inherently serial — but the
// controller itself is safe for concurrent use: Execute, ExecuteContext,
// LoadMemory, Memory and SetContext all serialize on an internal mutex,
// so N goroutines hammering one controller interleave whole operations
// instead of racing (TestConcurrentExecuteIsSerializedAndRaceFree).
// Callers that need a reseed and a walk to be atomic with respect to
// other goroutines (a verification round) must add that atomicity one
// level up — flow.PreparedDesign and flow.Session do. For parallel
// walks, build one controller per goroutine: the elaboration caches are
// fully independent.
package rtg

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/hades"
	"repro/internal/netlist"
	"repro/internal/operators"
	"repro/internal/xmlspec"
)

// Options tunes RTG execution.
//
// ClockPeriod, MaxCycles and MaxConfigs are required: this package
// deliberately has no numeric defaults of its own. The single source of
// truth for defaulting is internal/flow (flow.DefaultClockPeriod and
// friends); every production caller reaches the controller through a
// flow.Pipeline, which always fills these in.
type Options struct {
	Registry    *operators.Registry // nil: operators.DefaultRegistry()
	ClockPeriod hades.Time          // required; > 0
	MaxCycles   uint64              // per configuration; required
	MaxConfigs  int                 // reconfiguration bound; required
	// NewSimulator builds the event kernel for each configuration
	// (nil: hades.NewSimulator). The legacy hook, kept for direct
	// controller users; it is ignored when Engine is set.
	NewSimulator func() *hades.Simulator
	// Engine selects the execution engine. nil wraps NewSimulator (or
	// the default kernel) in a SimulatorEngine — the event path. A
	// CycleEngine switches the controller to compiled clock-by-clock
	// execution: configurations are levelized once and replayed with no
	// event queue, and ExecuteGang runs them in lockstep across lanes.
	Engine Engine
	// LocalInit seeds non-shared memories/stimuli per configuration id
	// and operator id (contents typically come from the I/O files).
	LocalInit map[string]map[string][]int64
	// Observer, when set, is called with each configuration's live
	// elaboration before the run starts (probe/VCD attachment hook).
	Observer func(cfgID string, el *netlist.Elaboration)
	// AfterConfig, when set, is called with each configuration's run
	// record as soon as that configuration completes — the streaming
	// progress hook behind flow observers, fired even when a later
	// configuration fails.
	AfterConfig func(run ConfigRun)
	// Context, when set, cancels execution: it is checked before each
	// configuration and polled by the event kernel once per simulated
	// instant, so per-case timeouts stop a running simulation promptly.
	Context context.Context
	// DisableReplay forces every configuration visit onto a fresh
	// simulator with a full netlist elaboration — the paper's original
	// reconfiguration cost, and the seed behavior. By default the
	// controller keeps a per-configuration elaboration cache: a
	// revisited configuration (RTG revisit, repeated Execute) is reset
	// and replayed on its cached simulator instead of rebuilt, which is
	// trace-identical (TestReplayMatchesFreshElaboration) and removes
	// elaboration from the repeat path. The ablation/cross-check hook.
	DisableReplay bool
}

func (o *Options) withDefaults() (Options, error) {
	out := *o
	if out.Registry == nil {
		out.Registry = operators.DefaultRegistry()
	}
	if out.NewSimulator == nil {
		out.NewSimulator = hades.NewSimulator
	}
	switch e := out.Engine.(type) {
	case nil:
		out.Engine = &SimulatorEngine{New: out.NewSimulator}
	case EventEngine:
		out.NewSimulator = e.NewSimulator
	case CycleEngine:
		// compiled path; NewSimulator is unused.
	default:
		return out, fmt.Errorf("rtg: Options.Engine %q is neither an EventEngine nor a CycleEngine", e.EngineName())
	}
	if out.ClockPeriod <= 0 {
		return out, fmt.Errorf("rtg: Options.ClockPeriod must be positive (construct options through internal/flow, which supplies the defaults)")
	}
	if out.MaxCycles == 0 {
		return out, fmt.Errorf("rtg: Options.MaxCycles must be set (construct options through internal/flow, which supplies the defaults)")
	}
	if out.MaxConfigs <= 0 {
		return out, fmt.Errorf("rtg: Options.MaxConfigs must be positive (construct options through internal/flow, which supplies the defaults)")
	}
	return out, nil
}

// ConfigRun reports one executed configuration.
type ConfigRun struct {
	ID         string
	Cycles     uint64
	EndTime    hades.Time
	Completed  bool
	FinalState string
	Events     uint64
	Stats      hades.Stats        // full kernel counters for this configuration
	Kernel     string             // kernel the configuration ran on
	Wall       time.Duration      // host wall-clock time of the simulation
	Sinks      map[string][]int64 // recorded sink streams by operator id
}

// ExecResult reports a full RTG execution.
type ExecResult struct {
	Runs        []ConfigRun
	TotalCycles uint64
	Completed   bool // every configuration reached done
}

// Controller owns the shared-memory store and walks the RTG.
type Controller struct {
	design *xmlspec.Design
	opts   Options
	// mu serializes every operation that touches the store, the replay
	// cache, or the options: walks are serial by construction (the cache
	// holds live simulators), and the mutex makes concurrent misuse
	// safe instead of racy. Never held across calls out to user code
	// other than the Observer/AfterConfig hooks — those must not call
	// back into the controller.
	mu    sync.Mutex
	store map[string][]int64
	// cache holds one live elaboration per configuration id — the
	// controller's kernel factory and registry are fixed, so within a
	// controller the configuration id alone keys (configuration,
	// kernel, registry). nil when Options.DisableReplay is set.
	cache map[string]*netlist.Elaboration
	// progs and insts are the cycle-engine replay caches: one compiled
	// program per configuration id and one instance per (configuration,
	// lane count). nil when Options.DisableReplay is set.
	progs map[string]ConfigProgram
	insts map[string]ConfigInstance
	// seedBuf reuses per-operator seed-copy buffers across runs so the
	// replay path's mandatory copies (see runConfiguration) do not
	// allocate in the steady state.
	seedBuf map[string][]int64
}

// NewController validates the design and prepares the shared store
// (zero-filled; use LoadMemory to seed contents from files).
func NewController(design *xmlspec.Design, opts Options) (*Controller, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := xmlspec.ValidateDesign(design, o.Registry); err != nil {
		return nil, err
	}
	c := &Controller{design: design, opts: o, store: map[string][]int64{}, seedBuf: map[string][]int64{}}
	if !o.DisableReplay {
		c.cache = map[string]*netlist.Elaboration{}
		c.progs = map[string]ConfigProgram{}
		c.insts = map[string]ConfigInstance{}
	}
	for _, m := range design.RTG.Memories {
		c.store[m.ID] = make([]int64, m.Depth)
	}
	return c, nil
}

// Options returns the effective (defaulted) options the controller
// runs with; the flow defaults test observes them here.
func (c *Controller) Options() Options {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.opts
}

// SetContext replaces the controller's default cancellation context —
// the one Execute polls when no per-walk context is given. Prepare-time
// contexts must not outlive the preparation (flow.PrepareContext
// restores the pipeline context here once elaboration is done).
func (c *Controller) SetContext(ctx context.Context) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.opts.Context = ctx
}

// LoadMemory seeds a shared memory's contents before execution.
func (c *Controller) LoadMemory(id string, words []int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	buf, ok := c.store[id]
	if !ok {
		return fmt.Errorf("rtg: unknown shared memory %q", id)
	}
	for i := range buf {
		if i < len(words) {
			buf[i] = words[i]
		} else {
			buf[i] = 0
		}
	}
	return nil
}

// Memory returns a copy of a shared memory's current contents.
func (c *Controller) Memory(id string) ([]int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	buf, ok := c.store[id]
	if !ok {
		return nil, fmt.Errorf("rtg: unknown shared memory %q", id)
	}
	out := make([]int64, len(buf))
	copy(out, buf)
	return out, nil
}

// MemoryIDs lists the shared memories.
func (c *Controller) MemoryIDs() []string {
	out := make([]string, 0, len(c.store))
	for _, m := range c.design.RTG.Memories {
		out = append(out, m.ID)
	}
	return out
}

// Execute walks the RTG from its start configuration: each node is
// reconfigured (elaborated on first visit, reset-and-replayed from the
// cache after), seeded with the shared store, run until its FSM
// completes, and its shared memory contents written back to the store.
// Execute may be called repeatedly; reseed inputs with LoadMemory
// between runs. It polls the controller's configured context; use
// ExecuteContext for a per-walk one.
func (c *Controller) Execute() (*ExecResult, error) {
	return c.ExecuteContext(nil)
}

// ExecuteContext is Execute under a per-walk cancellation context: when
// ctx is non-nil it overrides the controller's configured context for
// this walk only — the session shape, where one long-lived controller
// serves requests that each carry their own deadline. A nil ctx falls
// back to the configured context.
func (c *Controller) ExecuteContext(ctx context.Context) (*ExecResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ctx == nil {
		ctx = c.opts.Context
	}
	return c.walkLocked(ctx)
}

// walkLocked performs one full RTG walk against the current store. The
// caller holds c.mu and has already resolved the effective context.
func (c *Controller) walkLocked(ctx context.Context) (*ExecResult, error) {
	res := &ExecResult{Completed: true}
	cur := c.design.RTG.Start
	for steps := 0; cur != ""; steps++ {
		if steps >= c.opts.MaxConfigs {
			return res, fmt.Errorf("rtg: %s: reconfiguration bound %d exceeded (cycle in RTG?)",
				c.design.RTG.Name, c.opts.MaxConfigs)
		}
		cfg, ok := c.design.RTG.FindConfiguration(cur)
		if !ok {
			return res, fmt.Errorf("rtg: unknown configuration %q", cur)
		}
		if ctx != nil && ctx.Err() != nil {
			return res, fmt.Errorf("rtg: %s: canceled before configuration %q: %w",
				c.design.RTG.Name, cur, ctx.Err())
		}
		run, err := c.runConfiguration(cfg, ctx)
		if err != nil {
			return res, err
		}
		res.Runs = append(res.Runs, *run)
		if c.opts.AfterConfig != nil {
			c.opts.AfterConfig(*run)
		}
		res.TotalCycles += run.Cycles
		if !run.Completed {
			res.Completed = false
			return res, nil
		}
		cur = c.design.RTG.Successor(cur)
	}
	return res, nil
}

// seedCopy copies words into a reused per-(configuration, operator)
// buffer. Seeds must never alias their source: elaboration hands the
// slice straight to the component (a stimulus keeps it as its vector),
// so an aliased seed would let an in-place mutation of the caller's
// LocalInit — or the store's own write-back — rewrite a live or cached
// configuration's inputs mid-flight.
func (c *Controller) seedCopy(cfgID, opID string, words []int64) []int64 {
	key := cfgID + "\x00" + opID
	buf := c.seedBuf[key]
	if cap(buf) < len(words) {
		buf = make([]int64, len(words))
		c.seedBuf[key] = buf
	}
	buf = buf[:len(words)]
	copy(buf, words)
	return buf
}

// configInit builds one configuration's InitData against the given
// shared store: locals from LocalInit, shared refs from the store —
// every seed copied (see seedCopy).
func (c *Controller) configInit(cfg *xmlspec.Configuration, store map[string][]int64) (map[string][]int64, error) {
	dp := c.design.Datapaths[cfg.Datapath]
	init := map[string][]int64{}
	for id, words := range c.opts.LocalInit[cfg.ID] {
		init[id] = c.seedCopy(cfg.ID, id, words)
	}
	for i := range dp.Operators {
		op := &dp.Operators[i]
		if op.Ref != "" {
			words, ok := store[op.Ref]
			if !ok {
				return nil, fmt.Errorf("rtg: configuration %q: unknown shared memory %q", cfg.ID, op.Ref)
			}
			init[op.ID] = c.seedCopy(cfg.ID, op.ID, words)
		}
	}
	return init, nil
}

func (c *Controller) runConfiguration(cfg *xmlspec.Configuration, ctx context.Context) (*ConfigRun, error) {
	if ce, ok := c.opts.Engine.(CycleEngine); ok {
		return c.runConfigurationCycle(ce, cfg, ctx)
	}
	dp := c.design.Datapaths[cfg.Datapath]
	fsm := c.design.FSMs[cfg.FSM]

	init, err := c.configInit(cfg, c.store)
	if err != nil {
		return nil, err
	}

	// The reconfiguration: a cached configuration is reset and replayed
	// on its existing simulator; otherwise the fabric is built fresh —
	// and remembered, so the next visit of this node replays.
	el := c.cache[cfg.ID]
	if el != nil {
		el.Reset(init)
	} else {
		sim := c.opts.NewSimulator()
		clk := sim.NewSignal(cfg.ID+".clk", 1)
		var err error
		el, err = netlist.Elaborate(sim, clk, dp, fsm, netlist.Options{
			Registry: c.opts.Registry,
			InitData: init,
		})
		if err != nil {
			return nil, fmt.Errorf("rtg: configuration %q: %w", cfg.ID, err)
		}
		if c.cache != nil {
			c.cache[cfg.ID] = el
		}
	}
	sim := el.Sim
	// Install (or clear) the interrupt hook for this walk's context: a
	// cached simulator may carry a hook from an earlier walk's context.
	if ctx != nil {
		sim.Interrupt = func() bool { return ctx.Err() != nil }
	} else {
		sim.Interrupt = nil
	}
	if c.opts.Observer != nil {
		c.opts.Observer(cfg.ID, el)
	}
	start := time.Now()
	rr, err := el.RunToCompletion(c.opts.ClockPeriod, c.opts.MaxCycles)
	if err != nil {
		return nil, fmt.Errorf("rtg: configuration %q: %w", cfg.ID, err)
	}
	wall := time.Since(start)

	// Write back shared memories (the fabric is about to be reconfigured;
	// only the SRAM contents survive). CopyContents writes straight into
	// the store's buffers, so the write-back allocates nothing.
	for ref, ram := range el.Shared {
		ram.CopyContents(c.store[ref])
	}

	run := &ConfigRun{
		ID:         cfg.ID,
		Cycles:     rr.Cycles,
		EndTime:    rr.EndTime,
		Completed:  rr.Completed,
		FinalState: rr.FinalState,
		Events:     sim.Stats().Events,
		Stats:      sim.Stats(),
		Kernel:     sim.Kernel(),
		Wall:       wall,
		Sinks:      map[string][]int64{},
	}
	for id, sink := range el.Sinks {
		// Copy: the sink's buffer is reused by the next replay round.
		run.Sinks[id] = append([]int64(nil), sink.Recorded()...)
	}
	return run, nil
}

// cycleInstance resolves (and on the replay path caches) the compiled
// program and lane-count instance for one configuration.
func (c *Controller) cycleInstance(ce CycleEngine, cfg *xmlspec.Configuration, lanes int) (ConfigInstance, error) {
	key := fmt.Sprintf("%s\x00%d", cfg.ID, lanes)
	if c.insts != nil {
		if inst, ok := c.insts[key]; ok {
			return inst, nil
		}
	}
	prog := c.progs[cfg.ID]
	if prog == nil {
		var err error
		prog, err = ce.CompileConfiguration(c.design.Datapaths[cfg.Datapath], c.design.FSMs[cfg.FSM], c.opts.Registry)
		if err != nil {
			return nil, err
		}
		if c.progs != nil {
			c.progs[cfg.ID] = prog
		}
	}
	inst := prog.Instantiate(lanes)
	if c.insts != nil {
		c.insts[key] = inst
	}
	return inst, nil
}

// runConfigurationCycle is runConfiguration on a CycleEngine: compile
// (or fetch) the levelized program, reset a single lane from the store,
// and execute clock-by-clock with no event queue.
func (c *Controller) runConfigurationCycle(ce CycleEngine, cfg *xmlspec.Configuration, ctx context.Context) (*ConfigRun, error) {
	inst, err := c.cycleInstance(ce, cfg, 1)
	if err != nil {
		return nil, fmt.Errorf("rtg: configuration %q: %w", cfg.ID, err)
	}
	init, err := c.configInit(cfg, c.store)
	if err != nil {
		return nil, err
	}
	inst.Reset(0, init)
	var interrupt func() bool
	if ctx != nil {
		interrupt = func() bool { return ctx.Err() != nil }
	}
	start := time.Now()
	if err := inst.Run(c.opts.ClockPeriod, c.opts.MaxCycles, interrupt); err != nil {
		return nil, fmt.Errorf("rtg: configuration %q: %w", cfg.ID, err)
	}
	wall := time.Since(start)
	dp := c.design.Datapaths[cfg.Datapath]
	for i := range dp.Operators {
		op := &dp.Operators[i]
		if op.Ref != "" {
			inst.CopyShared(0, op.Ref, c.store[op.Ref])
		}
	}
	return c.laneRunRecord(ce, cfg.ID, inst, 0, wall), nil
}

// laneRunRecord converts one lane's results into a ConfigRun record.
func (c *Controller) laneRunRecord(ce CycleEngine, cfgID string, inst ConfigInstance, lane int, wall time.Duration) *ConfigRun {
	lr := inst.Result(lane)
	run := &ConfigRun{
		ID:         cfgID,
		Cycles:     lr.Cycles,
		EndTime:    lr.EndTime,
		Completed:  lr.Completed,
		FinalState: lr.FinalState,
		Events:     lr.Stats.Events,
		Stats:      lr.Stats,
		Kernel:     ce.EngineName(),
		Wall:       wall,
		Sinks:      map[string][]int64{},
	}
	for id, rec := range inst.Sinks(lane) {
		run.Sinks[id] = append([]int64(nil), rec...)
	}
	return run
}

// GangLane reports one lane of a gang execution: the lane's full RTG
// walk and its final shared-memory contents. Gang lanes never touch the
// controller's own store.
type GangLane struct {
	Exec     ExecResult
	Memories map[string][]int64
}

// ExecuteGang is ExecuteGangContext with the controller's configured
// context.
func (c *Controller) ExecuteGang(laneSeeds []map[string][]int64) ([]GangLane, error) {
	return c.ExecuteGangContext(nil, laneSeeds)
}

// ExecuteGangContext walks the RTG once for a whole population of
// lanes. Each lane starts from a private snapshot of the current shared
// store, overlaid with its laneSeeds entry (keyed by shared-memory id;
// a seeded memory is loaded LoadMemory-style, missing ids keep the
// store contents; a nil map keeps the store as-is).
//
// On a CycleEngine the lanes execute in lockstep: every configuration
// is compiled once, instantiated for the lane count, and evaluated
// struct-of-arrays — the walk and the per-node bookkeeping amortize
// over the population. Event engines fall back to one sequential walk
// per lane (sharing the replay cache), which is the baseline gang
// benchmarks compare against. Per-configuration AfterConfig/Observer
// hooks do not fire during gang walks.
//
// A lane whose configuration misses the cycle cap stops walking
// (Exec.Completed false) without affecting the other lanes; hard errors
// abort the whole gang.
func (c *Controller) ExecuteGangContext(ctx context.Context, laneSeeds []map[string][]int64) ([]GangLane, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ctx == nil {
		ctx = c.opts.Context
	}
	lanes := len(laneSeeds)
	if lanes == 0 {
		return nil, fmt.Errorf("rtg: %s: gang execution needs at least one lane", c.design.RTG.Name)
	}
	stores := make([]map[string][]int64, lanes)
	for l := range stores {
		for id := range laneSeeds[l] {
			if _, ok := c.store[id]; !ok {
				return nil, fmt.Errorf("rtg: gang lane %d: unknown shared memory %q", l, id)
			}
		}
		st := make(map[string][]int64, len(c.store))
		for id, words := range c.store {
			buf := make([]int64, len(words))
			if seed, ok := laneSeeds[l][id]; ok {
				for i := range buf {
					if i < len(seed) {
						buf[i] = seed[i]
					}
				}
			} else {
				copy(buf, words)
			}
			st[id] = buf
		}
		stores[l] = st
	}
	if ce, ok := c.opts.Engine.(CycleEngine); ok {
		return c.gangLockstep(ce, ctx, stores)
	}
	return c.gangSequential(ctx, stores)
}

// gangSequential runs one full walk per lane on the event engine,
// swapping the lane's private store in for the walk. The replay cache
// is shared across lanes — each configuration elaborates at most once
// for the whole gang.
func (c *Controller) gangSequential(ctx context.Context, stores []map[string][]int64) ([]GangLane, error) {
	out := make([]GangLane, len(stores))
	saved := c.store
	defer func() { c.store = saved }()
	for l := range stores {
		c.store = stores[l]
		res, err := c.walkLocked(ctx)
		if err != nil {
			return out, fmt.Errorf("rtg: gang lane %d: %w", l, err)
		}
		out[l] = GangLane{Exec: *res, Memories: stores[l]}
	}
	return out, nil
}

// gangLockstep walks the RTG once, evaluating every active lane of each
// configuration in lockstep on the compiled program.
func (c *Controller) gangLockstep(ce CycleEngine, ctx context.Context, stores []map[string][]int64) ([]GangLane, error) {
	lanes := len(stores)
	out := make([]GangLane, lanes)
	active := make([]bool, lanes)
	for l := range out {
		out[l] = GangLane{Exec: ExecResult{Completed: true}, Memories: stores[l]}
		active[l] = true
	}
	var interrupt func() bool
	if ctx != nil {
		interrupt = func() bool { return ctx.Err() != nil }
	}
	cur := c.design.RTG.Start
	for steps := 0; cur != ""; steps++ {
		if steps >= c.opts.MaxConfigs {
			return out, fmt.Errorf("rtg: %s: reconfiguration bound %d exceeded (cycle in RTG?)",
				c.design.RTG.Name, c.opts.MaxConfigs)
		}
		cfg, ok := c.design.RTG.FindConfiguration(cur)
		if !ok {
			return out, fmt.Errorf("rtg: unknown configuration %q", cur)
		}
		if ctx != nil && ctx.Err() != nil {
			return out, fmt.Errorf("rtg: %s: canceled before configuration %q: %w",
				c.design.RTG.Name, cur, ctx.Err())
		}
		inst, err := c.cycleInstance(ce, cfg, lanes)
		if err != nil {
			return out, fmt.Errorf("rtg: configuration %q: %w", cfg.ID, err)
		}
		running := 0
		for l := range active {
			if !active[l] {
				continue
			}
			init, err := c.configInit(cfg, stores[l])
			if err != nil {
				return out, err
			}
			inst.Reset(l, init)
			running++
		}
		if running == 0 {
			break
		}
		start := time.Now()
		if err := inst.Run(c.opts.ClockPeriod, c.opts.MaxCycles, interrupt); err != nil {
			return out, fmt.Errorf("rtg: configuration %q: %w", cfg.ID, err)
		}
		wall := time.Since(start) / time.Duration(running)
		dp := c.design.Datapaths[cfg.Datapath]
		for l := range active {
			if !active[l] {
				continue
			}
			for i := range dp.Operators {
				op := &dp.Operators[i]
				if op.Ref != "" {
					inst.CopyShared(l, op.Ref, stores[l][op.Ref])
				}
			}
			run := c.laneRunRecord(ce, cfg.ID, inst, l, wall)
			out[l].Exec.Runs = append(out[l].Exec.Runs, *run)
			out[l].Exec.TotalCycles += run.Cycles
			if !run.Completed {
				out[l].Exec.Completed = false
				active[l] = false
			}
		}
		cur = c.design.RTG.Successor(cur)
	}
	return out, nil
}
