package rtg

import (
	"strings"
	"testing"

	"repro/internal/hades"
	"repro/internal/netlist"
	"repro/internal/xmlspec"
)

// mapLoopConfig builds a datapath/FSM pair computing, over N elements,
//
//	dst[i] = src[i] <op> k
//
// with a two-state (CHECK/BODY) loop FSM, the control style the compiler
// generates: the body state is only entered when the guard holds, so no
// spurious trailing write occurs.
func mapLoopConfig(name, srcRef, dstRef, op string, k int64, n int64) (*xmlspec.Datapath, *xmlspec.FSM) {
	dp := &xmlspec.Datapath{
		Name:  name,
		Width: 32,
		Operators: []xmlspec.Operator{
			{ID: "r_i", Type: "reg"},
			{ID: "c1", Type: "const", Value: 1},
			{ID: "ck", Type: "const", Value: k},
			{ID: "cn", Type: "const", Value: n},
			{ID: "inc", Type: "add"},
			{ID: "lt0", Type: "lt"},
			{ID: "f0", Type: op},
			{ID: "m_src", Type: "ram", Depth: int(n), Ref: srcRef},
			{ID: "m_dst", Type: "ram", Depth: int(n), Ref: dstRef},
		},
		Connections: []xmlspec.Connection{
			{From: "r_i.q", To: "inc.a"},
			{From: "c1.y", To: "inc.b"},
			{From: "inc.y", To: "r_i.d"},
			{From: "r_i.q", To: "lt0.a"},
			{From: "cn.y", To: "lt0.b"},
			{From: "r_i.q", To: "m_src.addr"},
			{From: "r_i.q", To: "m_dst.addr"},
			{From: "m_src.dout", To: "f0.a"},
			{From: "ck.y", To: "f0.b"},
			{From: "f0.y", To: "m_dst.din"},
		},
		Controls: []xmlspec.Control{
			{Name: "en_i", Targets: []xmlspec.ControlTo{{Port: "r_i.en"}}},
			{Name: "we", Targets: []xmlspec.ControlTo{{Port: "m_dst.we"}}},
		},
		Statuses: []xmlspec.Status{{Name: "i_lt_n", From: "lt0.y"}},
	}
	fsm := &xmlspec.FSM{
		Name:    name + "_ctl",
		Inputs:  []xmlspec.FSMSignal{{Name: "i_lt_n"}},
		Outputs: []xmlspec.FSMSignal{{Name: "en_i"}, {Name: "we"}, {Name: "done"}},
		States: []xmlspec.State{
			{
				Name: "CHECK", Initial: true,
				Transitions: []xmlspec.Transition{
					{Cond: "i_lt_n", Next: "BODY"},
					{Next: "END"},
				},
			},
			{
				Name: "BODY",
				Assigns: []xmlspec.Assign{
					{Signal: "en_i", Value: 1},
					{Signal: "we", Value: 1},
				},
				Transitions: []xmlspec.Transition{{Next: "CHECK"}},
			},
			{Name: "END", Final: true, Assigns: []xmlspec.Assign{{Signal: "done", Value: 1}}},
		},
	}
	return dp, fsm
}

// twoPartitionDesign: cfg1 computes mb = ma*2, cfg2 computes mc = mb+1.
func twoPartitionDesign(n int64) *xmlspec.Design {
	d := xmlspec.NewDesign(&xmlspec.RTG{
		Name:  "pipe",
		Start: "cfg1",
		Memories: []xmlspec.SharedMemory{
			{ID: "ma", Depth: int(n)},
			{ID: "mb", Depth: int(n)},
			{ID: "mc", Depth: int(n)},
		},
		Transitions: []xmlspec.RTGTransition{{From: "cfg1", To: "cfg2", On: "done"}},
	})
	dp1, f1 := mapLoopConfig("p1", "ma", "mb", "mul", 2, n)
	dp2, f2 := mapLoopConfig("p2", "mb", "mc", "add", 1, n)
	d.AddConfiguration("cfg1", dp1, f1)
	d.AddConfiguration("cfg2", dp2, f2)
	return d
}

func TestTwoPartitionPipeline(t *testing.T) {
	const n = 8
	d := twoPartitionDesign(n)
	c, err := NewController(d, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	in := make([]int64, n)
	for i := range in {
		in[i] = int64(i + 1)
	}
	if err := c.LoadMemory("ma", in); err != nil {
		t.Fatal(err)
	}
	res, err := c.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || len(res.Runs) != 2 {
		t.Fatalf("res=%+v", res)
	}
	if res.Runs[0].ID != "cfg1" || res.Runs[1].ID != "cfg2" {
		t.Fatalf("order=%v,%v", res.Runs[0].ID, res.Runs[1].ID)
	}
	mb, err := c.Memory("mb")
	if err != nil {
		t.Fatal(err)
	}
	mc, err := c.Memory("mc")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if mb[i] != in[i]*2 {
			t.Errorf("mb[%d]=%d want %d", i, mb[i], in[i]*2)
		}
		if mc[i] != in[i]*2+1 {
			t.Errorf("mc[%d]=%d want %d", i, mc[i], in[i]*2+1)
		}
	}
	// 2 cycles per element + prologue/epilogue slack.
	for _, run := range res.Runs {
		if run.Cycles < 2*n || run.Cycles > 2*n+4 {
			t.Errorf("%s cycles=%d", run.ID, run.Cycles)
		}
	}
	if res.TotalCycles != res.Runs[0].Cycles+res.Runs[1].Cycles {
		t.Error("TotalCycles mismatch")
	}
}

func TestSharedMemoryPersistsOnlyThroughStore(t *testing.T) {
	// Running twice with fresh inputs must not leak previous contents.
	const n = 4
	d := twoPartitionDesign(n)
	c, err := NewController(d, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.LoadMemory("ma", []int64{10, 20, 30, 40}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Execute(); err != nil {
		t.Fatal(err)
	}
	first, _ := c.Memory("mc")
	if err := c.LoadMemory("ma", []int64{1, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Execute(); err != nil {
		t.Fatal(err)
	}
	second, _ := c.Memory("mc")
	if first[0] != 21 || second[0] != 3 {
		t.Fatalf("first=%v second=%v", first, second)
	}
}

func TestMemoryReturnsCopy(t *testing.T) {
	d := twoPartitionDesign(4)
	c, err := NewController(d, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	m, _ := c.Memory("ma")
	m[0] = 999
	m2, _ := c.Memory("ma")
	if m2[0] != 0 {
		t.Fatal("Memory must return a copy")
	}
}

func TestLoadMemoryErrors(t *testing.T) {
	d := twoPartitionDesign(4)
	c, _ := NewController(d, testOptions())
	if err := c.LoadMemory("ghost", nil); err == nil {
		t.Fatal("unknown memory must error")
	}
	if _, err := c.Memory("ghost"); err == nil {
		t.Fatal("unknown memory must error")
	}
}

func TestLoadMemoryClearsTail(t *testing.T) {
	d := twoPartitionDesign(4)
	c, _ := NewController(d, testOptions())
	if err := c.LoadMemory("ma", []int64{7, 7, 7, 7}); err != nil {
		t.Fatal(err)
	}
	if err := c.LoadMemory("ma", []int64{5}); err != nil {
		t.Fatal(err)
	}
	m, _ := c.Memory("ma")
	if m[0] != 5 || m[1] != 0 || m[3] != 0 {
		t.Fatalf("m=%v", m)
	}
}

func TestIncompleteRunReported(t *testing.T) {
	d := twoPartitionDesign(8)
	c, err := NewController(d, func() Options { o := testOptions(); o.MaxCycles = 3; return o }())
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("must report incomplete under tiny cycle cap")
	}
	if len(res.Runs) != 1 {
		t.Fatalf("must stop at first incomplete configuration, runs=%d", len(res.Runs))
	}
}

func TestRTGCycleBound(t *testing.T) {
	d := twoPartitionDesign(4)
	// Make the graph loop: cfg2 -> cfg1.
	d.RTG.Transitions = append(d.RTG.Transitions,
		xmlspec.RTGTransition{From: "cfg2", To: "cfg1"})
	c, err := NewController(d, func() Options { o := testOptions(); o.MaxConfigs = 5; return o }())
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Execute()
	if err == nil || !strings.Contains(err.Error(), "reconfiguration bound") {
		t.Fatalf("err=%v", err)
	}
}

func TestObserverHookSeesEveryConfiguration(t *testing.T) {
	d := twoPartitionDesign(4)
	var seen []string
	opts := testOptions()
	opts.Observer = func(id string, el *netlist.Elaboration) {
		seen = append(seen, id)
		if el.Machine == nil {
			t.Error("observer got unbound elaboration")
		}
	}
	c, err := NewController(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Execute(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[0] != "cfg1" || seen[1] != "cfg2" {
		t.Fatalf("seen=%v", seen)
	}
}

func TestMemoryIDs(t *testing.T) {
	d := twoPartitionDesign(4)
	c, _ := NewController(d, testOptions())
	ids := c.MemoryIDs()
	if len(ids) != 3 || ids[0] != "ma" || ids[2] != "mc" {
		t.Fatalf("ids=%v", ids)
	}
}

func TestInvalidDesignRejected(t *testing.T) {
	d := twoPartitionDesign(4)
	d.RTG.Start = "nope"
	if _, err := NewController(d, testOptions()); err == nil {
		t.Fatal("invalid design must be rejected")
	}
}

// testOptions supplies the explicit bounds the controller requires —
// generous enough never to bind in these tests. It intentionally does
// NOT claim to be the flow defaults: the canonical values live only in
// internal/flow (an import cycle for this in-package test), and
// flow_test.TestRTGObservesFlowDefaults checks that a flow-built
// controller carries them.
func testOptions() Options {
	return Options{ClockPeriod: 10, MaxCycles: 10_000_000, MaxConfigs: 1024}
}

func TestOptionsRequireExplicitBounds(t *testing.T) {
	d := twoPartitionDesign(4)
	for name, opts := range map[string]Options{
		"zero":        {},
		"no-period":   {MaxCycles: 1000, MaxConfigs: 4},
		"no-cycles":   {ClockPeriod: 10, MaxConfigs: 4},
		"no-configs":  {ClockPeriod: 10, MaxCycles: 1000},
		"neg-period":  {ClockPeriod: -1, MaxCycles: 1000, MaxConfigs: 4},
		"neg-configs": {ClockPeriod: 10, MaxCycles: 1000, MaxConfigs: -2},
	} {
		if _, err := NewController(d, opts); err == nil {
			t.Errorf("%s: underspecified options must be rejected", name)
		} else if !strings.Contains(err.Error(), "internal/flow") {
			t.Errorf("%s: error must point at the flow defaults, got %v", name, err)
		}
	}
}

func TestEffectiveOptionsExposed(t *testing.T) {
	d := twoPartitionDesign(4)
	c, err := NewController(d, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	o := c.Options()
	want := testOptions()
	if o.ClockPeriod != want.ClockPeriod || o.MaxCycles != want.MaxCycles || o.MaxConfigs != want.MaxConfigs {
		t.Fatalf("effective options %+v, want the values passed in", o)
	}
	if o.Registry == nil || o.NewSimulator == nil {
		t.Fatal("Registry and NewSimulator must be defaulted")
	}
}

func TestAfterConfigStreamsRuns(t *testing.T) {
	d := twoPartitionDesign(4)
	opts := testOptions()
	var streamed []string
	opts.AfterConfig = func(run ConfigRun) {
		streamed = append(streamed, run.ID)
		if run.Kernel == "" || run.Stats.Events == 0 || !run.Completed {
			t.Errorf("run %s missing kernel/stats: %+v", run.ID, run)
		}
	}
	c, err := NewController(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.LoadMemory("ma", []int64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	res, err := c.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(res.Runs) || streamed[0] != "cfg1" || streamed[1] != "cfg2" {
		t.Fatalf("streamed=%v runs=%d", streamed, len(res.Runs))
	}
}

func TestNewSimulatorHookSelectsKernel(t *testing.T) {
	d := twoPartitionDesign(4)
	opts := testOptions()
	opts.NewSimulator = hades.NewHeapRefSimulator
	c, err := NewController(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.LoadMemory("ma", []int64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	res, err := c.Execute()
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range res.Runs {
		if run.Kernel != hades.KernelHeapRef {
			t.Fatalf("run %s on kernel %q, want heapref", run.ID, run.Kernel)
		}
	}
}
