package rtg

import (
	"repro/internal/hades"
	"repro/internal/operators"
	"repro/internal/xmlspec"
)

// Engine is the execution strategy a controller runs configurations on.
// Two shapes exist today: EventEngine (a discrete-event kernel factory,
// the paper's model) and CycleEngine (a compiled clock-by-clock
// evaluator with no event queue). The flow backend registry hands the
// controller an Engine through Options.Engine; event backends arrive
// wrapped in a SimulatorEngine.
type Engine interface {
	// EngineName identifies the engine in run records (ConfigRun.Kernel
	// for cycle engines; event engines report the kernel's own name).
	EngineName() string
}

// EventEngine is an Engine backed by a hades event kernel: the
// controller elaborates each configuration as a component graph on a
// simulator from NewSimulator and replays it via reset.
type EventEngine interface {
	Engine
	NewSimulator() *hades.Simulator
}

// SimulatorEngine adapts a bare event-kernel factory — the shape every
// pre-engine backend registered — to the Engine interface.
type SimulatorEngine struct {
	Kernel string // reported name; "" falls back to "event"
	New    func() *hades.Simulator
}

// EngineName returns the configured kernel name.
func (e *SimulatorEngine) EngineName() string {
	if e.Kernel == "" {
		return "event"
	}
	return e.Kernel
}

// NewSimulator builds one event kernel instance.
func (e *SimulatorEngine) NewSimulator() *hades.Simulator { return e.New() }

// CycleEngine is an Engine that compiles a configuration once into a
// levelized clock-by-clock program and instantiates it for one or many
// lanes (gang simulation evaluates N configuration instances of the
// same program in lockstep, struct-of-arrays).
type CycleEngine interface {
	Engine
	// CompileConfiguration levelizes one datapath/FSM pair. The registry
	// resolves operator port shapes; engines reject operator types they
	// have no compiled model for.
	CompileConfiguration(dp *xmlspec.Datapath, fsm *xmlspec.FSM, reg *operators.Registry) (ConfigProgram, error)
}

// ConfigProgram is a compiled configuration, instantiable for any lane
// count. Programs are immutable and safe to share.
type ConfigProgram interface {
	// Instantiate allocates runnable state for the given number of
	// lanes (lockstep copies of the configuration).
	Instantiate(lanes int) ConfigInstance
}

// LaneRun reports one lane's execution of one configuration — the
// cycle-engine counterpart of netlist.RunResult plus kernel counters.
type LaneRun struct {
	Cycles     uint64
	EndTime    hades.Time
	Completed  bool
	FinalState string
	Stats      hades.Stats
}

// ConfigInstance is runnable per-lane state of a compiled
// configuration. The controller resets the lanes it wants to run (a
// reset arms the lane), runs all armed lanes in lockstep, then reads
// results and memory contents back per lane.
type ConfigInstance interface {
	// Lanes returns the lane count the instance was built with.
	Lanes() int
	// Reset rewinds one lane to the program's initial state, reseeding
	// memories and stimuli from init (keyed by operator id; missing ids
	// zero-fill / reload nothing, mirroring netlist.Elaboration.Reset).
	// Implementations must copy init contents: callers reuse the
	// backing slices. Reset arms the lane for the next Run.
	Reset(lane int, init map[string][]int64)
	// Run executes every armed lane clock-by-clock until its FSM
	// asserts done (or maxCycles), disarming lanes as they finish.
	// interrupt, when non-nil, is polled once per cycle; a true return
	// aborts with hades.ErrInterrupted.
	Run(period hades.Time, maxCycles uint64, interrupt func() bool) error
	// Result reports a lane's last run.
	Result(lane int) LaneRun
	// Sinks returns a lane's sink recordings by operator id. The slices
	// are live instance buffers; callers must copy before the next Reset.
	Sinks(lane int) map[string][]int64
	// CopyShared writes a lane's contents of the RAM bound to the given
	// RTG shared-memory ref into dst (sign-extended words), reporting
	// whether the ref exists.
	CopyShared(lane int, ref string, dst []int64) bool
}
