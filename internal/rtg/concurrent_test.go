package rtg

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestConcurrentExecuteIsSerializedAndRaceFree is the replay-cache
// concurrency audit pinned as a test: one controller — one replay
// cache, one shared store — driven by 8 goroutines, each doing the
// reseed-execute-readback round a pooled session serves. The mutex must
// serialize whole walks (every goroutine sees a consistent, completed
// result computed from some round's inputs), and `go test -race` must
// stay silent. Run with -race in CI.
func TestConcurrentExecuteIsSerializedAndRaceFree(t *testing.T) {
	const (
		goroutines = 8
		rounds     = 4
		n          = 8
	)
	ctl, err := NewController(twoPartitionDesign(n), testOptions())
	if err != nil {
		t.Fatal(err)
	}

	// expected final "mc" contents for round r: the two-partition pipe
	// computes mc[i] = (ma[i]*2) + 1 elementwise.
	expect := func(in []int64) []int64 {
		out := make([]int64, len(in))
		for i, v := range in {
			out[i] = v*2 + 1
		}
		return out
	}
	// Every coherent store state is one goroutine-round's seed (for ma)
	// or that seed pushed through the pipe (for mc); a torn mix of two
	// rounds matches neither set.
	seedSet := map[string]bool{}
	outSet := map[string]bool{}
	for k := 0; k < goroutines*rounds; k++ {
		in := propInputs(k, n)
		seedSet[fmt.Sprint(in)] = true
		outSet[fmt.Sprint(expect(in))] = true
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines*rounds)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				in := propInputs(g*rounds+r, n)
				// The reseed and the walk are two separately-locked
				// operations: another goroutine's reseed may land
				// between them, so this goroutine's walk may compute
				// from any goroutine's inputs — but never from a torn
				// mix, and the walk itself must always complete.
				if err := ctl.LoadMemory("ma", in); err != nil {
					errs <- err
					return
				}
				res, err := ctl.ExecuteContext(context.Background())
				if err != nil {
					errs <- err
					return
				}
				if !res.Completed || len(res.Runs) != 2 {
					errs <- fmt.Errorf("goroutine %d round %d: incomplete result %+v", g, r, res)
					return
				}
				ma, err := ctl.Memory("ma")
				if err != nil {
					errs <- err
					return
				}
				mc, err := ctl.Memory("mc")
				if err != nil {
					errs <- err
					return
				}
				// The two reads are separately locked, so ma and mc may
				// come from different rounds — but each must be one
				// round's coherent value, never a torn mix of two.
				if !seedSet[fmt.Sprint(ma)] {
					errs <- fmt.Errorf("goroutine %d round %d: ma is a torn mix of seeds: %v", g, r, ma)
					return
				}
				if !outSet[fmt.Sprint(mc)] {
					errs <- fmt.Errorf("goroutine %d round %d: mc is not any round's output: %v", g, r, mc)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The replay cache served every walk after the two first-visit
	// elaborations: lifetime counters on a final serial walk pin it.
	res, err := ctl.Execute()
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range res.Runs {
		if run.Stats.Elaborations != 1 {
			t.Errorf("configuration %s elaborated %d times under concurrency; the cache should have replayed",
				run.ID, run.Stats.Elaborations)
		}
		if run.Stats.Resets != goroutines*rounds {
			t.Errorf("configuration %s served %d resets, want %d", run.ID, run.Stats.Resets, goroutines*rounds)
		}
	}
}

// TestExecuteContextOverridesConfiguredContext pins the per-walk
// context: a canceled per-walk context stops the walk even though the
// controller's configured context is live, and a nil per-walk context
// falls back to the configured one.
func TestExecuteContextOverridesConfiguredContext(t *testing.T) {
	opts := testOptions()
	opts.Context = context.Background()
	ctl, err := NewController(twoPartitionDesign(4), opts)
	if err != nil {
		t.Fatal(err)
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ctl.ExecuteContext(canceled); err == nil {
		t.Fatal("canceled per-walk context did not stop the walk")
	}
	if res, err := ctl.ExecuteContext(nil); err != nil || !res.Completed {
		t.Fatalf("nil per-walk context should fall back to the configured one: %v %+v", err, res)
	}

	// SetContext swaps the fallback: a canceled default now stops
	// Execute, and a fresh per-walk context overrides it back.
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer cancel2()
	ctl.SetContext(expired)
	if _, err := ctl.Execute(); err == nil {
		t.Fatal("canceled default context did not stop Execute")
	}
	if res, err := ctl.ExecuteContext(context.Background()); err != nil || !res.Completed {
		t.Fatalf("live per-walk context should override the canceled default: %v %+v", err, res)
	}
}
