package rtg

import (
	"testing"

	"repro/internal/hades"
	"repro/internal/netlist"
	"repro/internal/xmlspec"
)

// streamConfig is a stimulus-fed accumulator with a sink capture whose
// stimulus contents come from LocalInit — the streaming shape that
// exercises stimulus rewind, sink clearing and local-seed copying on
// the replay path.
func streamConfig(name string) (*xmlspec.Datapath, *xmlspec.FSM) {
	dp := &xmlspec.Datapath{
		Name:  name,
		Width: 32,
		Operators: []xmlspec.Operator{
			{ID: "s_in", Type: "stim"},
			{ID: "r_acc", Type: "reg"},
			{ID: "add0", Type: "add"},
			{ID: "cap", Type: "sink"},
		},
		Connections: []xmlspec.Connection{
			{From: "r_acc.q", To: "add0.a"},
			{From: "s_in.out", To: "add0.b"},
			{From: "add0.y", To: "r_acc.d"},
			{From: "r_acc.q", To: "cap.in"},
		},
		Controls: []xmlspec.Control{
			{Name: "en_acc", Targets: []xmlspec.ControlTo{{Port: "r_acc.en"}}},
			{Name: "en_cap", Targets: []xmlspec.ControlTo{{Port: "cap.en"}}},
		},
		Statuses: []xmlspec.Status{{Name: "s_last", From: "s_in.last"}},
	}
	fsm := &xmlspec.FSM{
		Name:    name + "_ctl",
		Inputs:  []xmlspec.FSMSignal{{Name: "s_last"}},
		Outputs: []xmlspec.FSMSignal{{Name: "en_acc"}, {Name: "en_cap"}, {Name: "done"}},
		States: []xmlspec.State{
			{
				Name: "RUN", Initial: true,
				Assigns: []xmlspec.Assign{
					{Signal: "en_acc", Value: 1},
					{Signal: "en_cap", Value: 1},
				},
				Transitions: []xmlspec.Transition{
					{Cond: "!s_last", Next: "RUN"},
					{Next: "END"},
				},
			},
			{Name: "END", Final: true, Assigns: []xmlspec.Assign{{Signal: "done", Value: 1}}},
		},
	}
	return dp, fsm
}

// replayPropertyDesign is the repeat-heavy shape the cache targets: the
// two-partition memory pipeline plus a streaming configuration, so one
// Execute touches shared RAMs, local stimuli, sinks and the FSMs.
func replayPropertyDesign(n int64) *xmlspec.Design {
	d := twoPartitionDesign(n)
	dp3, f3 := streamConfig("p3")
	d.RTG.Transitions = append(d.RTG.Transitions,
		xmlspec.RTGTransition{From: "cfg2", To: "cfg3", On: "done"})
	d.AddConfiguration("cfg3", dp3, f3)
	return d
}

func propInputs(round, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64((i*13 + round*7 + 1) % 101)
	}
	return out
}

// sameRuns compares two ExecResults field by field, ignoring host wall
// times and the lifetime Elaborations/Resets counters (which differ by
// design between the fresh and replay arms).
func sameRuns(t *testing.T, label string, a, b *ExecResult) {
	t.Helper()
	if a.Completed != b.Completed || a.TotalCycles != b.TotalCycles || len(a.Runs) != len(b.Runs) {
		t.Fatalf("%s: result shape diverged: %+v vs %+v", label, a, b)
	}
	for i := range a.Runs {
		x, y := a.Runs[i], b.Runs[i]
		if x.ID != y.ID || x.Cycles != y.Cycles || x.EndTime != y.EndTime ||
			x.Completed != y.Completed || x.FinalState != y.FinalState ||
			x.Events != y.Events || x.Kernel != y.Kernel {
			t.Fatalf("%s: run %d diverged:\n%+v\n%+v", label, i, x, y)
		}
		xs, ys := x.Stats, y.Stats
		if xs.Events != ys.Events || xs.Deltas != ys.Deltas ||
			xs.Reactions != ys.Reactions || xs.Instants != ys.Instants {
			t.Fatalf("%s: run %d kernel stats diverged:\n%+v\n%+v", label, i, xs, ys)
		}
		if len(x.Sinks) != len(y.Sinks) {
			t.Fatalf("%s: run %d sink sets diverged", label, i)
		}
		for id, rec := range x.Sinks {
			other := y.Sinks[id]
			if len(rec) != len(other) {
				t.Fatalf("%s: run %d sink %s length %d vs %d", label, i, id, len(rec), len(other))
			}
			for j := range rec {
				if rec[j] != other[j] {
					t.Fatalf("%s: run %d sink %s[%d]=%d vs %d", label, i, id, j, rec[j], other[j])
				}
			}
		}
	}
}

// TestReplayMatchesFreshElaboration is the property test pinning the
// tentpole: across repeated Execute rounds with fresh inputs, a
// replaying controller is trace-identical — cycles, end times, per-run
// kernel stats, sink streams, final memories — to one that rebuilds
// every configuration from scratch, on both kernels.
func TestReplayMatchesFreshElaboration(t *testing.T) {
	kernels := []struct {
		name string
		mk   func() *hades.Simulator
	}{
		{hades.KernelTwoLevel, hades.NewSimulator},
		{hades.KernelHeapRef, hades.NewHeapRefSimulator},
	}
	const n = 8
	for _, k := range kernels {
		t.Run(k.name, func(t *testing.T) {
			mkOpts := func(disable bool) Options {
				o := testOptions()
				o.NewSimulator = k.mk
				o.DisableReplay = disable
				o.LocalInit = map[string]map[string][]int64{
					"cfg3": {"s_in": propInputs(99, 16)},
				}
				return o
			}
			freshCtl, err := NewController(replayPropertyDesign(n), mkOpts(true))
			if err != nil {
				t.Fatal(err)
			}
			replayCtl, err := NewController(replayPropertyDesign(n), mkOpts(false))
			if err != nil {
				t.Fatal(err)
			}
			for round := 0; round < 4; round++ {
				in := propInputs(round, n)
				var results [2]*ExecResult
				for i, ctl := range []*Controller{freshCtl, replayCtl} {
					if err := ctl.LoadMemory("ma", in); err != nil {
						t.Fatal(err)
					}
					res, err := ctl.Execute()
					if err != nil {
						t.Fatal(err)
					}
					if !res.Completed || len(res.Runs) != 3 {
						t.Fatalf("round %d ctl %d: %+v", round, i, res)
					}
					results[i] = res
				}
				sameRuns(t, k.name, results[0], results[1])
				for _, id := range []string{"ma", "mb", "mc"} {
					a, _ := freshCtl.Memory(id)
					b, _ := replayCtl.Memory(id)
					for j := range a {
						if a[j] != b[j] {
							t.Fatalf("round %d: memory %s[%d]=%d vs %d", round, id, j, a[j], b[j])
						}
					}
				}
				// The arms must actually be doing what their names say.
				for _, run := range results[0].Runs {
					if run.Stats.Elaborations != 1 || run.Stats.Resets != 0 {
						t.Fatalf("fresh arm replayed: %+v", run.Stats)
					}
				}
				for _, run := range results[1].Runs {
					if run.Stats.Elaborations != 1 || run.Stats.Resets != uint64(round) {
						t.Fatalf("round %d: replay arm lifetime counters %+v", round, run.Stats)
					}
				}
			}
		})
	}
}

// TestSeedsAreCopiedNotAliased is the regression test for the
// shared-slice seeding bug: the controller used to hand the caller's
// LocalInit slices (and the store's own backing arrays) straight to
// elaboration, where a stimulus keeps the slice as its live vector — so
// mutating the caller's slice mid-run rewrote the inputs the hardware
// was consuming. Seeds are now copied; the mid-run mutation must be
// invisible, on the fresh run and on a replay.
func TestSeedsAreCopiedNotAliased(t *testing.T) {
	const words = 8
	vec := propInputs(0, words)
	mkDesign := func() *xmlspec.Design {
		d := xmlspec.NewDesign(&xmlspec.RTG{Name: "alias", Start: "cfg"})
		dp, fsm := streamConfig("p")
		d.AddConfiguration("cfg", dp, fsm)
		return d
	}

	// Baseline: the stream the design records when nobody mutates.
	baseOpts := testOptions()
	baseOpts.LocalInit = map[string]map[string][]int64{"cfg": {"s_in": append([]int64(nil), vec...)}}
	baseCtl, err := NewController(mkDesign(), baseOpts)
	if err != nil {
		t.Fatal(err)
	}
	baseRes, err := baseCtl.Execute()
	if err != nil {
		t.Fatal(err)
	}
	want := baseRes.Runs[0].Sinks["cap"]
	if len(want) < words {
		t.Fatalf("baseline recorded %d samples", len(want))
	}

	local := append([]int64(nil), vec...)
	opts := testOptions()
	opts.LocalInit = map[string]map[string][]int64{"cfg": {"s_in": local}}
	opts.Observer = func(_ string, el *netlist.Elaboration) {
		edges := 0
		el.Clk.Listen(&hades.ReactorFunc{Label: "mutator", Fn: func(*hades.Simulator) {
			if edges++; edges == 4 { // mid-run: a few edges in, well before the stream ends
				for i := range local {
					local[i] = -999
				}
			}
		}})
	}
	c, err := NewController(mkDesign(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ { // fresh elaboration, then a replay
		copy(local, vec) // restore the caller-side slice the observer clobbers
		res, err := c.Execute()
		if err != nil {
			t.Fatal(err)
		}
		rec := res.Runs[0].Sinks["cap"]
		if len(rec) != len(want) {
			t.Fatalf("round %d: recorded %d samples, want %d", round, len(rec), len(want))
		}
		for i := range want {
			if rec[i] != want[i] {
				t.Fatalf("round %d: mid-run mutation leaked into the stream: cap[%d]=%d want %d (rec=%v)",
					round, i, rec[i], want[i], rec)
			}
		}
	}
}

// TestDisableReplayRebuildsEveryVisit pins the ablation hook.
func TestDisableReplayRebuildsEveryVisit(t *testing.T) {
	opts := testOptions()
	opts.DisableReplay = true
	c, err := NewController(twoPartitionDesign(4), opts)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		res, err := c.Execute()
		if err != nil {
			t.Fatal(err)
		}
		for _, run := range res.Runs {
			if run.Stats.Elaborations != 1 || run.Stats.Resets != 0 {
				t.Fatalf("round %d: DisableReplay still replayed: %+v", round, run.Stats)
			}
		}
	}
}

// TestReplayExecuteAllocs locks in the steady-state cheapness of the
// replay path at the controller level: once the cache is warm, a full
// Execute round allocates orders of magnitude less than the
// fresh-elaboration path (run records and sink copies remain; wired
// graphs, signals and events do not).
func TestReplayExecuteAllocs(t *testing.T) {
	run := func(disable bool) float64 {
		opts := testOptions()
		opts.DisableReplay = disable
		c, err := NewController(twoPartitionDesign(8), opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Execute(); err != nil { // warm caches either way
			t.Fatal(err)
		}
		return testing.AllocsPerRun(10, func() {
			if _, err := c.Execute(); err != nil {
				t.Fatal(err)
			}
		})
	}
	replay, fresh := run(false), run(true)
	if replay > 100 {
		t.Fatalf("replay Execute allocates %v objects, want near-zero (<=100)", replay)
	}
	if fresh < 5*replay {
		t.Fatalf("replay (%v allocs) should be far below fresh elaboration (%v allocs)", replay, fresh)
	}
}
