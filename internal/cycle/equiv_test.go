package cycle_test

import (
	"fmt"
	"testing"

	"repro/internal/compiler"
	"repro/internal/cycle"
	"repro/internal/hades"
	"repro/internal/lang"
	"repro/internal/netlist"
	"repro/internal/workloads"
	"repro/internal/xmlspec"
)

// equivParams shrinks each family so the full cross-engine trace matrix
// stays fast; every one of the 7 registered families is covered.
var equivParams = map[string]workloads.Values{
	"erasure": {"k": 4, "stripes": 8},
	"fdct1":   {"pixels": 128},
	"fdct2":   {"pixels": 128},
	"fir":     {"n": 64, "taps": 4},
	"hamming": {"words": 16},
	"matmul":  {"n": 6},
	"newton":  {"n": 32, "iters": 8},
}

const equivMaxCycles = 2_000_000

// visit is one configuration execution, engine-agnostic: the run
// summary, the sink recordings, and the per-clock-edge trace keyed by
// signal name.
type visit struct {
	id         string
	cycles     uint64
	endTime    hades.Time
	completed  bool
	finalState string
	sinks      map[string][]int64
	keys       []string
	rows       [][]netlist.EdgeSample
}

// compileDesign materializes one workload case into its design bundle.
func compileDesign(t *testing.T, cs *workloads.Case) *xmlspec.Design {
	t.Helper()
	prog, err := lang.Parse(cs.Source)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := compiler.Compile(prog, cs.Func, compiler.Config{
		ArraySizes: cs.ArraySizes,
		ScalarArgs: cs.ScalarArgs,
	})
	if err != nil {
		t.Fatal(err)
	}
	return comp.Design
}

// newStore seeds the shared-memory store from the case inputs, the same
// images the flow loads before a walk.
func newStore(cs *workloads.Case) map[string][]int64 {
	store := map[string][]int64{}
	for name, depth := range cs.ArraySizes {
		words := make([]int64, depth)
		copy(words, cs.Inputs[name])
		store[name] = words
	}
	return store
}

// configSeeds mirrors rtg's per-configuration InitData: every operator
// bound to a shared memory is seeded from the store (copied).
func configSeeds(dp *xmlspec.Datapath, store map[string][]int64) map[string][]int64 {
	init := map[string][]int64{}
	for i := range dp.Operators {
		op := &dp.Operators[i]
		if op.Ref != "" {
			init[op.ID] = append([]int64(nil), store[op.Ref]...)
		}
	}
	return init
}

// walkEvent executes the design's RTG on a fresh event kernel per
// configuration, tracing every rising clock edge.
func walkEvent(t *testing.T, design *xmlspec.Design, store map[string][]int64, period hades.Time) []visit {
	t.Helper()
	var visits []visit
	for cur := design.RTG.Start; cur != ""; {
		cfg, ok := design.RTG.FindConfiguration(cur)
		if !ok {
			t.Fatalf("unknown configuration %q", cur)
		}
		dp := design.Datapaths[cfg.Datapath]
		fsm := design.FSMs[cfg.FSM]
		sim := hades.NewSimulator()
		clk := sim.NewSignal(cfg.ID+".clk", 1)
		el, err := netlist.Elaborate(sim, clk, dp, fsm, netlist.Options{InitData: configSeeds(dp, store)})
		if err != nil {
			t.Fatal(err)
		}
		tr := el.AttachEdgeTrace()
		rr, err := el.RunToCompletion(period, equivMaxCycles)
		if err != nil {
			t.Fatal(err)
		}
		for ref, ram := range el.Shared {
			ram.CopyContents(store[ref])
		}
		v := visit{
			id: cfg.ID, cycles: rr.Cycles, endTime: rr.EndTime,
			completed: rr.Completed, finalState: rr.FinalState,
			sinks: map[string][]int64{}, keys: tr.Keys(), rows: tr.Rows(),
		}
		for id, sink := range el.Sinks {
			v.sinks[id] = append([]int64(nil), sink.Recorded()...)
		}
		visits = append(visits, v)
		if !rr.Completed {
			break
		}
		cur = design.RTG.Successor(cur)
	}
	return visits
}

// walkCycle executes the same RTG on the compiled cycle engine, tracing
// every slot each clock edge.
func walkCycle(t *testing.T, design *xmlspec.Design, store map[string][]int64, period hades.Time) []visit {
	t.Helper()
	var visits []visit
	for cur := design.RTG.Start; cur != ""; {
		cfg, ok := design.RTG.FindConfiguration(cur)
		if !ok {
			t.Fatalf("unknown configuration %q", cur)
		}
		dp := design.Datapaths[cfg.Datapath]
		prog, err := cycle.Compile(dp, design.FSMs[cfg.FSM], nil)
		if err != nil {
			t.Fatal(err)
		}
		inst := prog.NewInstance(1)
		inst.EnableTrace()
		inst.Reset(0, configSeeds(dp, store))
		if err := inst.Run(period, equivMaxCycles, nil); err != nil {
			t.Fatal(err)
		}
		for i := range dp.Operators {
			if ref := dp.Operators[i].Ref; ref != "" {
				inst.CopyShared(0, ref, store[ref])
			}
		}
		lr := inst.Result(0)
		v := visit{
			id: cfg.ID, cycles: lr.Cycles, endTime: lr.EndTime,
			completed: lr.Completed, finalState: lr.FinalState,
			sinks: map[string][]int64{}, keys: prog.SlotNames(),
		}
		for id, rec := range inst.Sinks(0) {
			v.sinks[id] = append([]int64(nil), rec...)
		}
		for _, row := range inst.TraceRows(0) {
			er := make([]netlist.EdgeSample, len(row))
			for i, s := range row {
				er[i] = netlist.EdgeSample{Val: s.Val, Valid: s.Valid}
			}
			v.rows = append(v.rows, er)
		}
		visits = append(visits, v)
		if !lr.Completed {
			break
		}
		cur = design.RTG.Successor(cur)
	}
	return visits
}

// compareWalks asserts the cross-engine contract: same configuration
// sequence, same run summaries, same sink recordings, and — signal by
// signal, clock edge by clock edge — identical pre-edge values on every
// wire and control line the event elaboration names.
func compareWalks(t *testing.T, ev, cy []visit) {
	t.Helper()
	if len(ev) != len(cy) {
		t.Fatalf("visit counts diverge: event %d, cycle %d", len(ev), len(cy))
	}
	for i := range ev {
		e, c := ev[i], cy[i]
		if e.id != c.id {
			t.Fatalf("visit %d: config %q vs %q", i, e.id, c.id)
		}
		if e.cycles != c.cycles || e.endTime != c.endTime || e.completed != c.completed || e.finalState != c.finalState {
			t.Fatalf("%s: run summary diverges:\nevent (cycles=%d end=%d completed=%v state=%q)\ncycle (cycles=%d end=%d completed=%v state=%q)",
				e.id, e.cycles, e.endTime, e.completed, e.finalState,
				c.cycles, c.endTime, c.completed, c.finalState)
		}
		if len(e.sinks) != len(c.sinks) {
			t.Fatalf("%s: sink sets diverge: %v vs %v", e.id, e.sinks, c.sinks)
		}
		for id, rec := range e.sinks {
			if fmt.Sprint(rec) != fmt.Sprint(c.sinks[id]) {
				t.Fatalf("%s: sink %q diverges:\nevent %v\ncycle %v", e.id, id, rec, c.sinks[id])
			}
		}
		slot := map[string]int{}
		for idx, name := range c.keys {
			slot[name] = idx
		}
		if len(e.rows) != len(c.rows) {
			t.Fatalf("%s: trace lengths diverge: event %d rows, cycle %d rows", e.id, len(e.rows), len(c.rows))
		}
		for ki, key := range e.keys {
			si, ok := slot[key]
			if !ok {
				t.Fatalf("%s: event signal %q has no compiled slot", e.id, key)
			}
			for row := range e.rows {
				es, cs := e.rows[row][ki], c.rows[row][si]
				if es.Valid != cs.Valid || (es.Valid && es.Val != cs.Val) {
					t.Fatalf("%s: edge %d signal %q diverges: event (val=%d valid=%v), cycle (val=%d valid=%v)",
						e.id, row+1, key, es.Val, es.Valid, cs.Val, cs.Valid)
				}
			}
		}
	}
}

// TestClockEdgeTraceEquivalence is the cross-kernel property test of the
// compiled engine: for every registered workload family, the event
// kernel and the cycle engine must agree on every wire and control line
// at every rising clock edge of every configuration — plus run
// summaries, sink recordings, and the final shared-memory images.
func TestClockEdgeTraceEquivalence(t *testing.T) {
	for _, name := range workloads.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			cs, err := workloads.Build(name, equivParams[name])
			if err != nil {
				t.Fatal(err)
			}
			design := compileDesign(t, cs)
			evStore, cyStore := newStore(cs), newStore(cs)
			ev := walkEvent(t, design, evStore, 10)
			cy := walkCycle(t, design, cyStore, 10)
			compareWalks(t, ev, cy)
			for id, want := range evStore {
				if fmt.Sprint(want) != fmt.Sprint(cyStore[id]) {
					t.Fatalf("shared memory %q diverges:\nevent %v\ncycle %v", id, want, cyStore[id])
				}
			}
		})
	}
}

// TestOddPeriodEquivalence pins the clock arithmetic for periods whose
// half is rounded: edge times, cycle counts and cap end-times must match
// the event kernel's hades.Clock for odd periods too.
func TestOddPeriodEquivalence(t *testing.T) {
	for _, period := range []hades.Time{3, 7, 11} {
		period := period
		t.Run(fmt.Sprintf("period%d", period), func(t *testing.T) {
			cs, err := workloads.Build("hamming", workloads.Values{"words": 8})
			if err != nil {
				t.Fatal(err)
			}
			design := compileDesign(t, cs)
			evStore, cyStore := newStore(cs), newStore(cs)
			compareWalks(t,
				walkEvent(t, design, evStore, period),
				walkCycle(t, design, cyStore, period))
		})
	}
}
