package cycle

import (
	"fmt"

	"repro/internal/hades"
	"repro/internal/rtg"
)

// Sample is one traced slot observation: the raw masked value and its
// definedness, exactly what a hades.Signal holds pre-edge.
type Sample struct {
	Val   uint64
	Valid bool
}

// Instance is runnable per-lane state of a compiled Program. All value
// state is struct-of-arrays indexed slot-major (slot*lanes+lane), so a
// gang of lanes evaluates each node over a contiguous stripe. An
// Instance is not safe for concurrent use; the controller serializes.
type Instance struct {
	p     *Program
	lanes int

	vals  []uint64 // slot-major value planes
	valid []bool

	mems    [][]uint64 // per memSpec, lane-major: mem[lane*depth+addr]
	stimVec [][]int64  // per (stim, lane): private copy of the vector
	stimPos []int
	sinkRec [][]int64 // per (sink, lane)

	state     []int
	cycles    []uint64
	endTime   []hades.Time
	completed []bool
	armed     []bool
	doneWas   []bool // pre-publish done level, for transition detection

	// per-run counters (rewound by Reset) and the lifetime reset count,
	// mirroring the hades.Stats split.
	events    []uint64
	reactions []uint64
	instants  []uint64
	resets    []uint64

	// Deferred-publication scratch: phase A samples against pre-edge
	// slot values and parks results here; publish() then applies them,
	// which is what makes register chains and RAM read-after-write match
	// the event kernel's next-delta Set semantics.
	regNext     []int64
	regSet      []bool
	ramNext     []int64
	ramSet      []bool
	stimOut     []int64
	stimOutSet  []bool
	stimLast    []int64
	stimLastSet []bool

	traceOn bool
	traces  [][][]Sample // per lane, per cycle: one Sample per slot
}

// NewInstance allocates state for the given lane count (minimum 1).
func (p *Program) NewInstance(lanes int) *Instance {
	if lanes < 1 {
		lanes = 1
	}
	in := &Instance{p: p, lanes: lanes}
	n := len(p.slots) * lanes
	in.vals = make([]uint64, n)
	in.valid = make([]bool, n)
	in.mems = make([][]uint64, len(p.mems))
	for m := range p.mems {
		in.mems[m] = make([]uint64, p.mems[m].depth*lanes)
	}
	in.stimVec = make([][]int64, len(p.stims)*lanes)
	in.stimPos = make([]int, len(p.stims)*lanes)
	in.sinkRec = make([][]int64, len(p.sinks)*lanes)
	in.state = make([]int, lanes)
	in.cycles = make([]uint64, lanes)
	in.endTime = make([]hades.Time, lanes)
	in.completed = make([]bool, lanes)
	in.armed = make([]bool, lanes)
	in.doneWas = make([]bool, lanes)
	in.events = make([]uint64, lanes)
	in.reactions = make([]uint64, lanes)
	in.instants = make([]uint64, lanes)
	in.resets = make([]uint64, lanes)
	in.regNext = make([]int64, len(p.regs)*lanes)
	in.regSet = make([]bool, len(p.regs)*lanes)
	in.ramNext = make([]int64, len(p.rams)*lanes)
	in.ramSet = make([]bool, len(p.rams)*lanes)
	in.stimOut = make([]int64, len(p.stims)*lanes)
	in.stimOutSet = make([]bool, len(p.stims)*lanes)
	in.stimLast = make([]int64, len(p.stims)*lanes)
	in.stimLastSet = make([]bool, len(p.stims)*lanes)
	in.traces = make([][][]Sample, lanes)
	return in
}

// Lanes returns the lane count.
func (in *Instance) Lanes() int { return in.lanes }

// EnableTrace records every slot's pre-edge value each cycle, the
// cycle-engine side of the cross-engine clock-edge trace comparison.
func (in *Instance) EnableTrace() { in.traceOn = true }

// TraceRows returns a lane's recorded trace: one row per executed
// cycle, indexed by slot (see Program.SlotNames). Rows are live until
// the lane's next Reset.
func (in *Instance) TraceRows(lane int) [][]Sample { return in.traces[lane] }

// Slot value accessors. Reads mirror hades.Signal exactly: Int
// sign-extends from the producing slot's width, Bool is bit 0 of the
// raw value (an undefined slot reads 0, hence false), Uint is raw.

func (in *Instance) validAt(slot, lane int) bool  { return in.valid[slot*in.lanes+lane] }
func (in *Instance) uintAt(slot, lane int) uint64 { return in.vals[slot*in.lanes+lane] }
func (in *Instance) boolAt(slot, lane int) bool   { return in.vals[slot*in.lanes+lane]&1 == 1 }
func (in *Instance) intAt(slot, lane int) int64 {
	return hades.SignExtend(in.vals[slot*in.lanes+lane], in.p.slots[slot].width)
}

// set publishes a value into a slot, masked to the slot width; a change
// of value or definedness counts one event, like the kernel's batch
// apply.
func (in *Instance) set(slot, lane int, v int64) {
	i := slot*in.lanes + lane
	m := hades.Mask(uint64(v), in.p.slots[slot].width)
	if !in.valid[i] || in.vals[i] != m {
		in.vals[i], in.valid[i] = m, true
		in.events[lane]++
	}
}

// laneEnv adapts one lane's status slots to the fsmsim guard Env.
type laneEnv struct {
	in   *Instance
	lane int
}

// Truth is true when the named status is defined and non-zero.
func (e laneEnv) Truth(name string) bool {
	s, ok := e.in.p.statusSlot[name]
	if !ok {
		return false
	}
	i := s*e.in.lanes + e.lane
	return e.in.valid[i] && e.in.vals[i] != 0
}

// Reset rewinds one lane to the program's initial state and arms it:
// slots undefined, ground and constants driven, registers at their
// power-on values, the FSM in its initial state with that state's
// outputs asserted, memories and stimuli reseeded from init (keyed by
// operator id; missing ids zero-fill), sinks cleared — then one
// combinational settle pass, the compiled counterpart of the event
// kernel's time-zero delta cascade. init contents are copied.
func (in *Instance) Reset(lane int, init map[string][]int64) {
	L := in.lanes
	in.resets[lane]++
	in.events[lane], in.reactions[lane], in.instants[lane] = 0, 0, 0
	for s := range in.p.slots {
		i := s*L + lane
		in.vals[i], in.valid[i] = 0, false
	}
	if in.p.gnd >= 0 {
		in.valid[in.p.gnd*L+lane] = true
	}
	for _, cs := range in.p.consts {
		in.set(cs.slot, lane, cs.val)
	}
	for r := range in.p.regs {
		in.set(in.p.regs[r].q, lane, in.p.regs[r].init)
		in.regSet[r*L+lane] = false
	}
	in.state[lane] = in.p.initial
	st := &in.p.states[in.p.initial]
	for o, slot := range in.p.ctlSlots {
		in.set(slot, lane, st.outs[o])
	}
	for m := range in.p.mems {
		ms := &in.p.mems[m]
		mem := in.mems[m][lane*ms.depth : (lane+1)*ms.depth]
		words, ok := init[ms.id]
		if !ok {
			words = ms.init
		}
		for i := range mem {
			if i < len(words) {
				mem[i] = hades.Mask(uint64(words[i]), ms.width)
			} else {
				mem[i] = 0
			}
		}
	}
	for m := range in.p.rams {
		in.ramSet[m*L+lane] = false
	}
	for s := range in.p.stims {
		i := s*L + lane
		src, ok := init[in.p.stims[s].id]
		if !ok {
			src = in.p.stims[s].init
		}
		vec := in.stimVec[i]
		if cap(vec) < len(src) {
			vec = make([]int64, len(src))
		}
		vec = vec[:len(src)]
		copy(vec, src)
		in.stimVec[i] = vec
		in.stimPos[i] = 0
		in.stimOutSet[i], in.stimLastSet[i] = false, false
	}
	for s := range in.p.sinks {
		i := s*L + lane
		in.sinkRec[i] = in.sinkRec[i][:0]
	}
	in.cycles[lane], in.endTime[lane], in.completed[lane] = 0, 0, false
	in.armed[lane] = true
	if in.traceOn {
		in.traces[lane] = in.traces[lane][:0]
	}
	in.settleLane(lane)
}

// Run executes every armed lane clock-by-clock. The horizon mirrors the
// event kernel's clock arithmetic exactly: with half = period/2, rising
// edge k falls at (2k-1)*half, and edges run while that stays within
// maxCycles*period — so cycle counts and end times agree with a
// hades.Clock for every period, odd ones included. A lane completes
// when its done control transitions to 1 (the watchdog condition) and
// is disarmed; at the horizon the remaining lanes complete if their FSM
// sits in a final state or holds done high.
func (in *Instance) Run(period hades.Time, maxCycles uint64, interrupt func() bool) error {
	if period < 2 {
		return fmt.Errorf("cycle: clock period must be at least 2 ticks")
	}
	half := period / 2
	limit := hades.Time(maxCycles) * period
	edges := uint64((limit/half + 1) / 2)
	capEnd := (limit / half) * half
	for cyc := uint64(1); cyc <= edges; cyc++ {
		any := false
		for l := 0; l < in.lanes; l++ {
			if in.armed[l] {
				any = true
				break
			}
		}
		if !any {
			return nil
		}
		if interrupt != nil && interrupt() {
			return hades.ErrInterrupted
		}
		if in.traceOn {
			in.snapshot()
		}
		in.phaseA()
		// Completion is the *transition* of done to 1: the event kernel's
		// watchdog only reacts to a change, so a done held high from the
		// initial state never trips it — capture the pre-publish level.
		if in.p.done >= 0 {
			for l := 0; l < in.lanes; l++ {
				in.doneWas[l] = in.doneLevel(l)
			}
		}
		in.publish()
		in.settleAll()
		for l := 0; l < in.lanes; l++ {
			if !in.armed[l] {
				continue
			}
			in.cycles[l] = cyc
			in.instants[l]++
			if in.p.done >= 0 && !in.doneWas[l] && in.doneLevel(l) {
				in.completed[l] = true
				in.endTime[l] = hades.Time(2*(cyc-1))*half + half
				in.armed[l] = false
			}
		}
	}
	for l := 0; l < in.lanes; l++ {
		if !in.armed[l] {
			continue
		}
		in.endTime[l] = capEnd
		in.completed[l] = in.p.states[in.state[l]].final || in.doneLevel(l)
		in.armed[l] = false
	}
	return nil
}

// doneLevel reports whether a lane's done control is defined and holds 1.
func (in *Instance) doneLevel(l int) bool {
	if in.p.done < 0 {
		return false
	}
	i := in.p.done*in.lanes + l
	return in.valid[i] && in.vals[i]&1 == 1
}

// snapshot records every armed lane's pre-edge slot values.
func (in *Instance) snapshot() {
	for l := 0; l < in.lanes; l++ {
		if !in.armed[l] {
			continue
		}
		row := make([]Sample, len(in.p.slots))
		for s := range in.p.slots {
			i := s*in.lanes + l
			row[s] = Sample{Val: in.vals[i], Valid: in.valid[i]}
		}
		in.traces[l] = append(in.traces[l], row)
	}
}

// phaseA evaluates every sequential element against the pre-edge slot
// values: register sampling, FSM transition, RAM write + read-port
// refresh, stimulus advance and sink capture. Nothing publishes here —
// results park in the deferred scratch so every element of the same
// edge observes the same pre-edge state, exactly like the event
// kernel's delta-0 reactions.
func (in *Instance) phaseA() {
	L := in.lanes
	for r := range in.p.regs {
		rg := &in.p.regs[r]
		for l := 0; l < L; l++ {
			if !in.armed[l] {
				continue
			}
			in.reactions[l]++
			i := r*L + l
			if rg.rst >= 0 && in.boolAt(rg.rst, l) {
				in.regNext[i], in.regSet[i] = rg.init, true
				continue
			}
			if rg.en >= 0 && !in.boolAt(rg.en, l) {
				continue
			}
			if in.validAt(rg.d, l) {
				in.regNext[i], in.regSet[i] = in.intAt(rg.d, l), true
			}
		}
	}
	for l := 0; l < L; l++ {
		if !in.armed[l] {
			continue
		}
		in.reactions[l]++
		st := &in.p.states[in.state[l]]
		env := laneEnv{in: in, lane: l}
		for _, tr := range st.trans {
			if tr.cond.Eval(env) {
				in.state[l] = tr.next
				break
			}
		}
	}
	for m := range in.p.rams {
		rn := &in.p.rams[m]
		ms := &in.p.mems[rn.mem]
		mem := in.mems[rn.mem]
		for l := 0; l < L; l++ {
			if !in.armed[l] {
				continue
			}
			in.reactions[l]++
			if in.boolAt(rn.we, l) && in.validAt(rn.addr, l) && in.validAt(rn.din, l) {
				if a := int(in.uintAt(rn.addr, l)); a < ms.depth {
					mem[l*ms.depth+a] = hades.Mask(in.uintAt(rn.din, l), ms.width)
				}
			}
			// Read-port refresh from the pre-edge address over the
			// post-write contents (the event RAM does both in one React).
			if in.validAt(rn.addr, l) {
				if a := int(in.uintAt(rn.addr, l)); a < ms.depth {
					i := m*L + l
					in.ramNext[i] = hades.SignExtend(mem[l*ms.depth+a], ms.width)
					in.ramSet[i] = true
				}
			}
		}
	}
	for s := range in.p.stims {
		for l := 0; l < L; l++ {
			if !in.armed[l] {
				continue
			}
			in.reactions[l]++
			i := s*L + l
			vec := in.stimVec[i]
			if len(vec) == 0 {
				in.stimLast[i], in.stimLastSet[i] = 1, true
				continue
			}
			pos := in.stimPos[i]
			idx := pos
			if idx >= len(vec) {
				idx = len(vec) - 1
			}
			in.stimOut[i], in.stimOutSet[i] = vec[idx], true
			if pos >= len(vec)-1 {
				in.stimLast[i] = 1
			} else {
				in.stimLast[i] = 0
			}
			in.stimLastSet[i] = true
			if pos < len(vec) {
				in.stimPos[i] = pos + 1
			}
		}
	}
	for s := range in.p.sinks {
		sn := &in.p.sinks[s]
		for l := 0; l < L; l++ {
			if !in.armed[l] {
				continue
			}
			in.reactions[l]++
			if sn.en >= 0 && !in.boolAt(sn.en, l) {
				continue
			}
			if in.validAt(sn.in, l) {
				i := s*L + l
				in.sinkRec[i] = append(in.sinkRec[i], in.intAt(sn.in, l))
			}
		}
	}
}

// publish applies the deferred phase-A results to the slots.
func (in *Instance) publish() {
	L := in.lanes
	for r := range in.p.regs {
		rg := &in.p.regs[r]
		for l := 0; l < L; l++ {
			i := r*L + l
			if in.regSet[i] {
				in.set(rg.q, l, in.regNext[i])
				in.regSet[i] = false
			}
		}
	}
	for l := 0; l < L; l++ {
		if !in.armed[l] {
			continue
		}
		st := &in.p.states[in.state[l]]
		for o, slot := range in.p.ctlSlots {
			in.set(slot, l, st.outs[o])
		}
	}
	for m := range in.p.rams {
		rn := &in.p.rams[m]
		for l := 0; l < L; l++ {
			i := m*L + l
			if in.ramSet[i] {
				in.set(rn.dout, l, in.ramNext[i])
				in.ramSet[i] = false
			}
		}
	}
	for s := range in.p.stims {
		sn := &in.p.stims[s]
		for l := 0; l < L; l++ {
			i := s*L + l
			if in.stimOutSet[i] {
				in.set(sn.out, l, in.stimOut[i])
				in.stimOutSet[i] = false
			}
			if in.stimLastSet[i] {
				in.set(sn.last, l, in.stimLast[i])
				in.stimLastSet[i] = false
			}
		}
	}
}

// evalNode evaluates one combinational node for one lane, with the
// event operators' hold-on-undefined semantics: a node whose inputs are
// not all defined (or whose select/address is out of range) keeps its
// previous output.
func (in *Instance) evalNode(n *combNode, l int) {
	in.reactions[l]++
	switch n.kind {
	case combUnary:
		if in.validAt(n.a, l) {
			in.set(n.y, l, n.un(in.intAt(n.a, l), n.width))
		}
	case combBinary:
		if in.validAt(n.a, l) && in.validAt(n.b, l) {
			in.set(n.y, l, n.bin(in.intAt(n.a, l), in.intAt(n.b, l), n.width))
		}
	case combMux:
		if !in.validAt(n.sel, l) {
			return
		}
		idx := int(in.uintAt(n.sel, l))
		if idx < 0 || idx >= len(n.ins) {
			return
		}
		src := n.ins[idx]
		if in.validAt(src, l) {
			in.set(n.y, l, in.intAt(src, l))
		}
	case combMemRead:
		if !in.validAt(n.a, l) {
			return
		}
		ms := &in.p.mems[n.mem]
		if a := int(in.uintAt(n.a, l)); a < ms.depth {
			in.set(n.y, l, hades.SignExtend(in.mems[n.mem][l*ms.depth+a], ms.width))
		}
	}
}

// settleAll runs the levelized combinational pass for every armed lane.
// One pass in topological order reaches the delta-cascade fixpoint.
func (in *Instance) settleAll() {
	for i := range in.p.comb {
		n := &in.p.comb[i]
		for l := 0; l < in.lanes; l++ {
			if in.armed[l] {
				in.evalNode(n, l)
			}
		}
	}
}

// settleLane is settleAll for a single lane (the Reset settle pass).
func (in *Instance) settleLane(l int) {
	for i := range in.p.comb {
		in.evalNode(&in.p.comb[i], l)
	}
}

// Result reports a lane's last run, with hades-shaped counters: Events,
// Reactions and Instants are per-run, Elaborations is 1 (the program
// compiles once) and Resets counts replay rounds — the first Reset is
// part of instantiation, matching the event path where a configuration's
// first visit elaborates (Resets 0) and repeat visits reset-and-replay.
func (in *Instance) Result(lane int) rtg.LaneRun {
	replays := in.resets[lane]
	if replays > 0 {
		replays--
	}
	return rtg.LaneRun{
		Cycles:     in.cycles[lane],
		EndTime:    in.endTime[lane],
		Completed:  in.completed[lane],
		FinalState: in.p.states[in.state[lane]].name,
		Stats: hades.Stats{
			Events:       in.events[lane],
			Deltas:       in.instants[lane],
			Reactions:    in.reactions[lane],
			Instants:     in.instants[lane],
			Elaborations: 1,
			Resets:       replays,
		},
	}
}

// Sinks returns a lane's sink recordings by operator id. The slices are
// live buffers, valid until the lane's next Reset.
func (in *Instance) Sinks(lane int) map[string][]int64 {
	out := make(map[string][]int64, len(in.p.sinks))
	for s := range in.p.sinks {
		out[in.p.sinks[s].id] = in.sinkRec[s*in.lanes+lane]
	}
	return out
}

// CopyShared writes a lane's contents of the RAM bound to the given RTG
// shared-memory ref into dst as sign-extended words, reporting whether
// the ref exists in this configuration.
func (in *Instance) CopyShared(lane int, ref string, dst []int64) bool {
	m, ok := in.p.memByRef[ref]
	if !ok {
		return false
	}
	ms := &in.p.mems[m]
	mem := in.mems[m][lane*ms.depth : (lane+1)*ms.depth]
	n := ms.depth
	if len(dst) < n {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		dst[i] = hades.SignExtend(mem[i], ms.width)
	}
	return true
}
