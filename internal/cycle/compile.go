// Package cycle compiles a datapath/FSM configuration into a levelized
// clock-by-clock evaluation program — the repository's first non-event
// execution engine. Where the hades kernel discovers evaluation order
// dynamically through delta cycles, this package fixes it at compile
// time: sequential elements (registers, RAM write ports, the FSM,
// stimuli, sinks) cut the signal graph, and the remaining combinational
// nodes are topologically sorted once. Each clock cycle then evaluates
// in two phases — sample every sequential element against the pre-edge
// slot values, publish, and settle the combinational network in level
// order — which reproduces the event kernel's signal values at every
// rising clock edge (the cross-engine property tests pin this) with no
// event queue at all.
//
// A compiled Program is immutable and can be instantiated for N lanes:
// gang simulation runs N independently seeded copies of the same
// configuration in lockstep, struct-of-arrays, amortizing the per-node
// bookkeeping over the whole population.
package cycle

import (
	"fmt"
	"sort"

	"repro/internal/fsmsim"
	"repro/internal/operators"
	"repro/internal/rtg"
	"repro/internal/xmlspec"
)

// Engine is the compiled cycle-based execution engine, satisfying
// rtg.CycleEngine.
type Engine struct{}

// New returns the compiled engine.
func New() *Engine { return &Engine{} }

// EngineName identifies the engine in run records.
func (e *Engine) EngineName() string { return "compiled" }

// CompileConfiguration levelizes one configuration for the controller.
func (e *Engine) CompileConfiguration(dp *xmlspec.Datapath, fsm *xmlspec.FSM, reg *operators.Registry) (rtg.ConfigProgram, error) {
	return Compile(dp, fsm, reg)
}

// slotInfo describes one value slot — the compiled counterpart of a
// hades.Signal. Names match the event elaboration's wire keys
// ("op.port" producer endpoints, "ctl.<name>" control lines, "gnd"), so
// traces from both engines compare by name.
type slotInfo struct {
	name  string
	width int
}

type combKind uint8

const (
	combUnary combKind = iota
	combBinary
	combMux
	combMemRead
)

// combNode is one combinational operator in topological order.
type combNode struct {
	kind  combKind
	width int // operator word width passed to the fn
	y     int // output slot
	a, b  int // unary/memread: a; binary: a and b
	sel   int
	ins   []int
	un    operators.UnaryFn
	bin   operators.BinaryFn
	mem   int // combMemRead: memory index
}

// regNode is an edge-triggered register; en/rst are -1 when unconnected.
type regNode struct {
	id      string
	d, q    int
	en, rst int
	init    int64
}

// ramNode is a RAM's clocked port set; its read path is additionally a
// combMemRead node on the same dout slot.
type ramNode struct {
	id                  string
	mem                 int
	addr, din, we, dout int
}

// memSpec is the backing storage of one ram/rom instance. init is the
// elaboration-time contents (the operator's XML data): Reset falls back
// to it when the caller's init map has no entry for the id, exactly as
// the event elaboration reseeds components absent from a replay's init.
type memSpec struct {
	id    string
	ref   string // RTG shared-memory ref, "" for locals and ROMs
	width int
	depth int
	init  []int64
}

type stimNode struct {
	id        string
	out, last int
	init      []int64 // XML-baked vector, the Reset fallback
}

type sinkNode struct {
	id     string
	in, en int // en -1: sample every edge
}

type fsmTrans struct {
	cond fsmsim.Cond
	next int
}

// fsmState precomputes one state's Moore outputs over the declared
// output order (unassigned outputs are 0, as fsmsim drives them).
type fsmState struct {
	name  string
	final bool
	outs  []int64
	trans []fsmTrans
}

type constSet struct {
	slot int
	val  int64
}

// Program is a compiled configuration: the slot table, the sequential
// element lists, the FSM transition tables and the combinational nodes
// in evaluation order. Programs are immutable and safe to share across
// instances and goroutines.
type Program struct {
	name  string
	slots []slotInfo
	gnd   int // -1 when no input needed tying

	consts []constSet
	comb   []combNode // topological order
	regs   []regNode
	rams   []ramNode
	mems   []memSpec
	stims  []stimNode
	sinks  []sinkNode

	states     []fsmState
	initial    int
	ctlSlots   []int // per declared FSM output, in declaration order
	statusSlot map[string]int
	done       int // ctl slot of the "done" output, -1 when undeclared

	memByRef map[string]int
}

// Name returns the datapath name the program was compiled from.
func (p *Program) Name() string { return p.name }

// SlotNames returns every slot name in slot order — the key for
// cross-engine trace comparison.
func (p *Program) SlotNames() []string {
	out := make([]string, len(p.slots))
	for i, s := range p.slots {
		out[i] = s.name
	}
	return out
}

// Instantiate allocates runnable state for the given lane count.
func (p *Program) Instantiate(lanes int) rtg.ConfigInstance { return p.NewInstance(lanes) }

// tieDefaults mirrors netlist's list of input ports that may be left
// undriven and are tied to constant zero.
var tieDefaults = map[string][]string{
	"ram":  {"we", "din"},
	"sink": {"en"},
}

func tieable(typ, port string) bool {
	for _, p := range tieDefaults[typ] {
		if p == port {
			return true
		}
	}
	return false
}

var unaryFns = map[string]operators.UnaryFn{
	"neg":  operators.WordNeg,
	"not":  operators.WordNot,
	"lnot": operators.WordLNot,
	"b2i":  operators.WordB2I,
}

var binaryFns = map[string]operators.BinaryFn{
	"add": operators.WordAdd, "sub": operators.WordSub, "mul": operators.WordMul,
	"div": operators.WordDiv, "mod": operators.WordMod,
	"and": operators.WordAnd, "or": operators.WordOr, "xor": operators.WordXor,
	"shl": operators.WordShl, "shr": operators.WordShr, "sra": operators.WordSra,
	"eq": operators.WordEq, "ne": operators.WordNe, "lt": operators.WordLt,
	"le": operators.WordLe, "gt": operators.WordGt, "ge": operators.WordGe,
}

func opWidth(p operators.Params) int {
	if p.Width <= 0 {
		return 32
	}
	return p.Width
}

// Compile levelizes a configuration. The registry resolves operator
// port shapes exactly as netlist elaboration does; operator types
// without a compiled model (custom registry entries) are rejected —
// they exist only as event-kernel reactors.
func Compile(dp *xmlspec.Datapath, fsm *xmlspec.FSM, reg *operators.Registry) (*Program, error) {
	if reg == nil {
		reg = operators.DefaultRegistry()
	}
	if err := xmlspec.ValidateDatapath(dp, reg); err != nil {
		return nil, err
	}
	if err := xmlspec.ValidateFSM(fsm); err != nil {
		return nil, err
	}

	p := &Program{
		name:       dp.Name,
		gnd:        -1,
		done:       -1,
		statusSlot: map[string]int{},
		memByRef:   map[string]int{},
	}
	slotOf := map[string]int{} // producer endpoint -> slot
	addSlot := func(name string, width int) int {
		p.slots = append(p.slots, slotInfo{name: name, width: width})
		return len(p.slots) - 1
	}

	// Pass 1: one slot per operator output port, mirroring the event
	// elaboration's per-output signals.
	type pend struct {
		op    *xmlspec.Operator
		param operators.Params
		ports []operators.PortSpec
	}
	var todo []pend
	for i := range dp.Operators {
		op := &dp.Operators[i]
		spec, _ := reg.Lookup(op.Type)
		param := xmlspec.ParamsOf(op, dp.Width)
		ports := spec.Ports(param)
		for _, ps := range ports {
			if ps.Dir == operators.Out {
				ep := op.ID + "." + ps.Name
				slotOf[ep] = addSlot(ep, ps.Width)
			}
		}
		todo = append(todo, pend{op: op, param: param, ports: ports})
	}

	// Control slots: one per FSM output, widened to the datapath's
	// declared control width when that is larger.
	ctlWidth := map[string]int{}
	for _, c := range dp.Controls {
		ctlWidth[c.Name] = c.ControlWidth()
	}
	ctlSlot := map[string]int{}
	for _, out := range fsm.Outputs {
		w := out.SignalWidth()
		if dw, ok := ctlWidth[out.Name]; ok && dw > w {
			w = dw
		}
		ctlSlot[out.Name] = addSlot("ctl."+out.Name, w)
	}
	for _, c := range dp.Controls {
		if _, ok := ctlSlot[c.Name]; !ok {
			return nil, fmt.Errorf("cycle: %s: control %q has no FSM output", dp.Name, c.Name)
		}
	}

	// Drive map: input endpoint -> driving slot.
	drive := map[string]int{}
	for _, cn := range dp.Connections {
		src, ok := slotOf[cn.From]
		if !ok {
			return nil, fmt.Errorf("cycle: %s: connect from unknown output %q", dp.Name, cn.From)
		}
		drive[cn.To] = src
	}
	for _, c := range dp.Controls {
		for _, to := range c.Targets {
			drive[to.Port] = ctlSlot[c.Name]
		}
	}

	// Status lines alias operator outputs.
	for _, st := range dp.Statuses {
		src, ok := slotOf[st.From]
		if !ok {
			return nil, fmt.Errorf("cycle: %s: status %q from unknown output %q", dp.Name, st.Name, st.From)
		}
		p.statusSlot[st.Name] = src
	}

	ground := func() int {
		if p.gnd < 0 {
			p.gnd = addSlot("gnd", 64)
		}
		return p.gnd
	}
	need := func(op *xmlspec.Operator, port string) (int, error) {
		ep := op.ID + "." + port
		if s, ok := drive[ep]; ok {
			return s, nil
		}
		if tieable(op.Type, port) {
			return ground(), nil
		}
		return -1, fmt.Errorf("cycle: %s: instance %q: port %q not connected", dp.Name, op.ID, port)
	}
	opt := func(op *xmlspec.Operator, port string) int {
		if s, ok := drive[op.ID+"."+port]; ok {
			return s
		}
		return -1
	}

	// Pass 2: compile each operator to its node.
	for _, pd := range todo {
		op, param := pd.op, pd.param
		switch {
		case op.Type == "const":
			p.consts = append(p.consts, constSet{slot: slotOf[op.ID+".y"], val: param.Value})

		case unaryFns[op.Type] != nil:
			a, err := need(op, "a")
			if err != nil {
				return nil, err
			}
			p.comb = append(p.comb, combNode{
				kind: combUnary, width: opWidth(param),
				a: a, y: slotOf[op.ID+".y"], un: unaryFns[op.Type],
			})

		case binaryFns[op.Type] != nil:
			a, err := need(op, "a")
			if err != nil {
				return nil, err
			}
			b, err := need(op, "b")
			if err != nil {
				return nil, err
			}
			p.comb = append(p.comb, combNode{
				kind: combBinary, width: opWidth(param),
				a: a, b: b, y: slotOf[op.ID+".y"], bin: binaryFns[op.Type],
			})

		case op.Type == "mux":
			n := param.Inputs
			if n < 2 {
				n = 2
			}
			node := combNode{kind: combMux, y: slotOf[op.ID+".y"]}
			for i := 0; i < n; i++ {
				in, err := need(op, fmt.Sprintf("in%d", i))
				if err != nil {
					return nil, err
				}
				node.ins = append(node.ins, in)
			}
			sel, err := need(op, "sel")
			if err != nil {
				return nil, err
			}
			node.sel = sel
			p.comb = append(p.comb, node)

		case op.Type == "reg":
			d, err := need(op, "d")
			if err != nil {
				return nil, err
			}
			p.regs = append(p.regs, regNode{
				id: op.ID, d: d, q: slotOf[op.ID+".q"],
				en: opt(op, "en"), rst: opt(op, "rst"), init: param.Value,
			})

		case op.Type == "ram":
			if param.Depth <= 0 {
				return nil, fmt.Errorf("cycle: %s: ram %q needs a positive depth", dp.Name, op.ID)
			}
			addr, err := need(op, "addr")
			if err != nil {
				return nil, err
			}
			din, err := need(op, "din")
			if err != nil {
				return nil, err
			}
			we, err := need(op, "we")
			if err != nil {
				return nil, err
			}
			mem := len(p.mems)
			p.mems = append(p.mems, memSpec{id: op.ID, ref: op.Ref, width: opWidth(param), depth: param.Depth, init: param.Init})
			if op.Ref != "" {
				p.memByRef[op.Ref] = mem
			}
			dout := slotOf[op.ID+".dout"]
			p.rams = append(p.rams, ramNode{id: op.ID, mem: mem, addr: addr, din: din, we: we, dout: dout})
			p.comb = append(p.comb, combNode{kind: combMemRead, a: addr, y: dout, mem: mem})

		case op.Type == "rom":
			if param.Depth <= 0 {
				return nil, fmt.Errorf("cycle: %s: rom %q needs a positive depth", dp.Name, op.ID)
			}
			addr, err := need(op, "addr")
			if err != nil {
				return nil, err
			}
			mem := len(p.mems)
			p.mems = append(p.mems, memSpec{id: op.ID, width: opWidth(param), depth: param.Depth, init: param.Init})
			p.comb = append(p.comb, combNode{kind: combMemRead, a: addr, y: slotOf[op.ID+".dout"], mem: mem})

		case op.Type == "stim":
			p.stims = append(p.stims, stimNode{id: op.ID, out: slotOf[op.ID+".out"], last: slotOf[op.ID+".last"], init: param.Init})

		case op.Type == "sink":
			in, err := need(op, "in")
			if err != nil {
				return nil, err
			}
			en, err := need(op, "en") // tied to gnd when unconnected, as netlist does
			if err != nil {
				return nil, err
			}
			p.sinks = append(p.sinks, sinkNode{id: op.ID, in: in, en: en})

		default:
			return nil, fmt.Errorf("cycle: %s: operator %q: type %q has no compiled model", dp.Name, op.ID, op.Type)
		}
	}

	// Bind the FSM: transition guards over status slots, Moore outputs
	// precomputed per state over the declared output order.
	known := map[string]bool{}
	for _, in := range fsm.Inputs {
		if _, ok := p.statusSlot[in.Name]; !ok {
			return nil, fmt.Errorf("cycle: %s: FSM input %q has no datapath status", dp.Name, in.Name)
		}
		known[in.Name] = true
	}
	for _, out := range fsm.Outputs {
		p.ctlSlots = append(p.ctlSlots, ctlSlot[out.Name])
	}
	byName := map[string]int{}
	for i, st := range fsm.States {
		byName[st.Name] = i
	}
	for _, st := range fsm.States {
		fs := fsmState{name: st.Name, final: st.Final, outs: make([]int64, len(fsm.Outputs))}
		for o, sig := range fsm.Outputs {
			for _, a := range st.Assigns {
				if a.Signal == sig.Name {
					fs.outs[o] = a.Value
					break
				}
			}
		}
		for _, tr := range st.Transitions {
			cond, err := fsmsim.ParseCond(tr.Cond, known)
			if err != nil {
				return nil, fmt.Errorf("cycle: %s state %s: %w", fsm.Name, st.Name, err)
			}
			fs.trans = append(fs.trans, fsmTrans{cond: cond, next: byName[tr.Next]})
		}
		p.states = append(p.states, fs)
		if st.Initial {
			p.initial = len(p.states) - 1
		}
	}
	if d, ok := ctlSlot["done"]; ok {
		p.done = d
	}

	if err := p.levelize(); err != nil {
		return nil, err
	}
	return p, nil
}

// levelize topologically sorts the combinational nodes (Kahn's
// algorithm, FIFO seeded in node order for determinism). Sequential
// elements publish into slots no comb node produces, so they never
// appear as edges; a leftover node means combinational feedback, which
// the event kernel would also reject (ErrMaxDeltas) — here it is a
// compile error.
func (p *Program) levelize() error {
	prodBy := map[int]int{} // slot -> producing comb node
	for i := range p.comb {
		prodBy[p.comb[i].y] = i
	}
	nodeInputs := func(n *combNode) []int {
		switch n.kind {
		case combUnary, combMemRead:
			return []int{n.a}
		case combBinary:
			return []int{n.a, n.b}
		default: // combMux
			return append(append([]int(nil), n.ins...), n.sel)
		}
	}
	indeg := make([]int, len(p.comb))
	succs := make([][]int, len(p.comb))
	for i := range p.comb {
		for _, s := range nodeInputs(&p.comb[i]) {
			if j, ok := prodBy[s]; ok {
				succs[j] = append(succs[j], i)
				indeg[i]++
			}
		}
	}
	queue := make([]int, 0, len(p.comb))
	for i := range p.comb {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	order := make([]combNode, 0, len(p.comb))
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		order = append(order, p.comb[i])
		for _, j := range succs[i] {
			indeg[j]--
			if indeg[j] == 0 {
				queue = append(queue, j)
			}
		}
	}
	if len(order) < len(p.comb) {
		var loop []string
		for i := range p.comb {
			if indeg[i] > 0 {
				loop = append(loop, p.slots[p.comb[i].y].name)
			}
		}
		sort.Strings(loop)
		return fmt.Errorf("cycle: %s: combinational loop through %v", p.name, loop)
	}
	p.comb = order
	return nil
}
