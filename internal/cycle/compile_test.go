package cycle_test

import (
	"strings"
	"testing"

	"repro/internal/cycle"
	"repro/internal/hades"
	"repro/internal/operators"
	"repro/internal/xmlspec"
)

// loopFSM is the smallest control unit binding one status line.
func loopFSM(status string) *xmlspec.FSM {
	return &xmlspec.FSM{
		Name:    "ctl",
		Inputs:  []xmlspec.FSMSignal{{Name: status}},
		Outputs: []xmlspec.FSMSignal{{Name: "done"}},
		States: []xmlspec.State{
			{Name: "S", Initial: true, Transitions: []xmlspec.Transition{{Next: "E"}}},
			{Name: "E", Final: true, Assigns: []xmlspec.Assign{{Signal: "done", Value: 1}}},
		},
	}
}

// TestCompileRejectsCombinationalLoop: two unary operators feeding each
// other form a cycle no levelization can order — the compiler must name
// the slots on the loop instead of looping itself.
func TestCompileRejectsCombinationalLoop(t *testing.T) {
	dp := &xmlspec.Datapath{
		Name:  "looped",
		Width: 32,
		Operators: []xmlspec.Operator{
			{ID: "n0", Type: "not"},
			{ID: "n1", Type: "not"},
		},
		Connections: []xmlspec.Connection{
			{From: "n0.y", To: "n1.a"},
			{From: "n1.y", To: "n0.a"},
		},
		Statuses: []xmlspec.Status{{Name: "s", From: "n0.y"}},
	}
	_, err := cycle.Compile(dp, loopFSM("s"), nil)
	if err == nil || !strings.Contains(err.Error(), "combinational loop") {
		t.Fatalf("want combinational-loop error, got %v", err)
	}
	if !strings.Contains(err.Error(), "n0.y") || !strings.Contains(err.Error(), "n1.y") {
		t.Fatalf("loop error must name the looped slots, got %v", err)
	}
}

// TestCompileRejectsUnmodeledOperator: custom registry entries exist
// only as event-kernel reactors; the cycle compiler must reject them
// rather than silently miscompute.
func TestCompileRejectsUnmodeledOperator(t *testing.T) {
	reg := operators.DefaultRegistry()
	reg.Register(&operators.Spec{
		Type: "mystery",
		Ports: func(p operators.Params) []operators.PortSpec {
			return []operators.PortSpec{{Name: "y", Dir: operators.Out, Width: 32}}
		},
		Build: func(sim *hades.Simulator, id string, p operators.Params, conn map[string]*hades.Signal) (hades.Reactor, error) {
			return &hades.ReactorFunc{Label: id, Fn: func(*hades.Simulator) {}}, nil
		},
	})
	dp := &xmlspec.Datapath{
		Name:      "custom",
		Width:     32,
		Operators: []xmlspec.Operator{{ID: "x0", Type: "mystery"}},
		Statuses:  []xmlspec.Status{{Name: "s", From: "x0.y"}},
	}
	_, err := cycle.Compile(dp, loopFSM("s"), reg)
	if err == nil || !strings.Contains(err.Error(), "no compiled model") {
		t.Fatalf("want no-compiled-model error, got %v", err)
	}
}

// TestRunRejectsShortPeriod mirrors hades.NewClock's period floor as an
// error instead of a panic.
func TestRunRejectsShortPeriod(t *testing.T) {
	dp := &xmlspec.Datapath{
		Name:      "tiny",
		Width:     32,
		Operators: []xmlspec.Operator{{ID: "c0", Type: "const", Value: 1}},
		Statuses:  []xmlspec.Status{{Name: "s", From: "c0.y"}},
	}
	prog, err := cycle.Compile(dp, loopFSM("s"), nil)
	if err != nil {
		t.Fatal(err)
	}
	inst := prog.NewInstance(1)
	inst.Reset(0, nil)
	if err := inst.Run(1, 10, nil); err == nil {
		t.Fatal("period 1 must error")
	}
}
