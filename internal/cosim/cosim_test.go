package cosim

import (
	"testing"

	"repro/internal/workloads"
)

// The canonical co-simulation scenario: software (the "microprocessor")
// encodes a nibble stream with Hamming(7,4) and injects errors, the
// reconfigurable hardware decodes it, software checks the result — three
// phases over one shared memory pool.

const encodeSrc = `
// Software side: encode nibbles and inject a single-bit error into every
// second codeword (bit position cycles with the index).
void encode(int[] data, int[] chan_mem, int n) {
  for (int i = 0; i < n; i = i + 1) {
    int d1 = (data[i] >> 3) & 1;
    int d2 = (data[i] >> 2) & 1;
    int d3 = (data[i] >> 1) & 1;
    int d4 = data[i] & 1;
    int p1 = d1 ^ d2 ^ d4;
    int p2 = d1 ^ d3 ^ d4;
    int p3 = d2 ^ d3 ^ d4;
    int cw = p1 * 64 + p2 * 32 + d1 * 16 + p3 * 8 + d2 * 4 + d3 * 2 + d4;
    if (i % 2 == 0) {
      cw = cw ^ (1 << (i % 7));
    }
    chan_mem[i] = cw;
  }
}
`

const checkSrc = `
// Software side: compare decoded nibbles against the originals.
void check(int[] data, int[] out, int[] status, int n) {
  int errors = 0;
  for (int i = 0; i < n; i = i + 1) {
    if (out[i] != data[i]) { errors = errors + 1; }
  }
  status[0] = errors;
}
`

const decodeHW = `
// Hardware side: Hamming(7,4) decoder over the channel memory.
void decode(int[] chan_mem, int[] out, int n) {
  int i;
  for (i = 0; i < n; i = i + 1) {
    int c = chan_mem[i];
    int b1 = (c >> 6) & 1;
    int b2 = (c >> 5) & 1;
    int b3 = (c >> 4) & 1;
    int b4 = (c >> 3) & 1;
    int b5 = (c >> 2) & 1;
    int b6 = (c >> 1) & 1;
    int b7 = c & 1;
    int s1 = b1 ^ b3 ^ b5 ^ b7;
    int s2 = b2 ^ b3 ^ b6 ^ b7;
    int s4 = b4 ^ b5 ^ b6 ^ b7;
    int syn = s4 * 4 + s2 * 2 + s1;
    if (syn != 0) {
      c = c ^ (1 << (7 - syn));
    }
    out[i] = ((c >> 4) & 1) * 8 + ((c >> 2) & 1) * 4 + ((c >> 1) & 1) * 2 + (c & 1);
  }
}
`

func TestSoftwareHardwareSoftwarePipeline(t *testing.T) {
	const n = 24
	sys := NewSystem(map[string]int{
		"data": n, "chan_mem": n, "out": n, "status": 1,
	})
	data := make([]int64, n)
	for i := range data {
		data[i] = int64((i * 7) % 16)
	}
	if err := sys.Load("data", data); err != nil {
		t.Fatal(err)
	}
	args := map[string]int64{"n": n}
	if err := sys.RunSoftware(encodeSrc, "encode", args); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunHardware(decodeHW, "decode", args); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunSoftware(checkSrc, "check", args); err != nil {
		t.Fatal(err)
	}
	status, err := sys.Memory("status")
	if err != nil {
		t.Fatal(err)
	}
	if status[0] != 0 {
		out, _ := sys.Memory("out")
		t.Fatalf("software check found %d decode errors; out=%v data=%v", status[0], out, data)
	}
	log := sys.Log()
	if len(log) != 3 || log[0].Kind != "software" || log[1].Kind != "hardware" || log[2].Kind != "software" {
		t.Fatalf("log=%+v", log)
	}
	if log[1].Cycles == 0 {
		t.Fatal("hardware phase must report cycles")
	}
	if log[0].Steps == 0 || log[2].Steps == 0 {
		t.Fatal("software phases must report steps")
	}
}

func TestHardwarePhaseMatchesLibraryEncoder(t *testing.T) {
	// The hardware decoder must agree with the Go reference encoder used
	// by the workloads package (no error injection here).
	const n = 16
	sys := NewSystem(map[string]int{"chan_mem": n, "out": n})
	codewords := make([]int64, n)
	for i := range codewords {
		codewords[i] = workloads.HammingEncode(int64(i % 16))
	}
	if err := sys.Load("chan_mem", codewords); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunHardware(decodeHW, "decode", map[string]int64{"n": n}); err != nil {
		t.Fatal(err)
	}
	out, _ := sys.Memory("out")
	for i := range out {
		if out[i] != int64(i%16) {
			t.Fatalf("out=%v", out)
		}
	}
}

func TestErrors(t *testing.T) {
	sys := NewSystem(map[string]int{"a": 4})
	if _, err := sys.Memory("ghost"); err == nil {
		t.Error("unknown memory must error")
	}
	if err := sys.Load("ghost", nil); err == nil {
		t.Error("unknown memory must error")
	}
	if err := sys.RunSoftware("void f(int[] zz) {}", "f", nil); err == nil {
		t.Error("unbound software array must error")
	}
	if err := sys.RunSoftware("void f(int[] a) {}", "g", nil); err == nil {
		t.Error("unknown function must error")
	}
	if err := sys.RunHardware("void f(int[] zz) { zz[0] = 1; }", "f", nil); err == nil {
		t.Error("unbound hardware array must error")
	}
	if err := sys.RunSoftware("not minij", "f", nil); err == nil {
		t.Error("parse error must propagate")
	}
}
