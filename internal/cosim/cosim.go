// Package cosim implements the paper's stated further work: "functional
// simulation of a microprocessor tightly coupled to reconfigurable
// hardware components". A System alternates software phases (MiniJ
// functions executed behaviourally, standing in for code running on the
// coupled microprocessor) and hardware phases (compiled designs executed
// on the event-driven simulator through the RTG controller), all sharing
// one memory pool — the same-language co-simulation argument the paper
// makes (no specialised co-simulation environment needed when both sides
// are modelled in one language).
package cosim

import (
	"fmt"
	"time"

	"repro/internal/flow"
	"repro/internal/interp"
	"repro/internal/lang"
)

// System is a software/hardware co-simulation session around a shared
// memory pool.
type System struct {
	mems map[string][]int64
	log  []PhaseReport
}

// PhaseReport records one executed phase.
type PhaseReport struct {
	Kind   string // "software" or "hardware"
	Name   string
	Wall   time.Duration
	Cycles uint64 // hardware phases only
	Steps  uint64 // software phases only
}

// NewSystem creates a co-simulation system with the given shared
// memories (name → depth).
func NewSystem(memories map[string]int) *System {
	s := &System{mems: map[string][]int64{}}
	for name, depth := range memories {
		s.mems[name] = make([]int64, depth)
	}
	return s
}

// Memory returns the live shared memory (not a copy): software phases
// mutate it directly, as a microprocessor would its DMA window.
func (s *System) Memory(name string) ([]int64, error) {
	m, ok := s.mems[name]
	if !ok {
		return nil, fmt.Errorf("cosim: unknown memory %q", name)
	}
	return m, nil
}

// Load copies words into a shared memory.
func (s *System) Load(name string, words []int64) error {
	m, err := s.Memory(name)
	if err != nil {
		return err
	}
	for i := range m {
		if i < len(words) {
			m[i] = words[i]
		} else {
			m[i] = 0
		}
	}
	return nil
}

// Log returns the executed phase reports in order.
func (s *System) Log() []PhaseReport { return s.log }

// RunSoftware executes a MiniJ function behaviourally over the shared
// pool: every array parameter binds to the shared memory of the same
// name.
func (s *System) RunSoftware(src, funcName string, scalarArgs map[string]int64) error {
	prog, err := lang.Parse(src)
	if err != nil {
		return err
	}
	if _, err := lang.Analyze(prog); err != nil {
		return err
	}
	f, ok := prog.FindFunc(funcName)
	if !ok {
		return fmt.Errorf("cosim: no function %q", funcName)
	}
	arrays := map[string][]int64{}
	for _, p := range f.Params {
		if !p.IsArray {
			continue
		}
		m, err := s.Memory(p.Name)
		if err != nil {
			return fmt.Errorf("cosim: software phase %s: %w", funcName, err)
		}
		arrays[p.Name] = m
	}
	start := time.Now()
	res, err := interp.Run(f, arrays, scalarArgs, interp.Options{})
	if err != nil {
		return err
	}
	s.log = append(s.log, PhaseReport{
		Kind: "software", Name: funcName, Wall: time.Since(start), Steps: res.Steps,
	})
	return nil
}

// RunHardware compiles a MiniJ function and executes the generated
// architecture on the simulator through the flow pipeline, with its
// SRAMs seeded from — and written back to — the shared pool. The
// options select the backend, clock, cycle caps and observers; the flow
// defaults apply when none are given.
func (s *System) RunHardware(src, funcName string, scalarArgs map[string]int64, opts ...flow.Option) error {
	prog, err := lang.Parse(src)
	if err != nil {
		return err
	}
	f, ok := prog.FindFunc(funcName)
	if !ok {
		return fmt.Errorf("cosim: no function %q", funcName)
	}
	source := flow.Source{
		Name:       funcName,
		Text:       src,
		Func:       funcName,
		ArraySizes: map[string]int{},
		ScalarArgs: scalarArgs,
		Inputs:     map[string][]int64{},
	}
	for _, p := range f.Params {
		if !p.IsArray {
			continue
		}
		m, err := s.Memory(p.Name)
		if err != nil {
			return fmt.Errorf("cosim: hardware phase %s: %w", funcName, err)
		}
		source.ArraySizes[p.Name] = len(m)
		source.Inputs[p.Name] = m
	}
	pipe, err := flow.New(opts...)
	if err != nil {
		return err
	}
	c, err := pipe.Compile(source)
	if err != nil {
		return err
	}
	e, err := pipe.Elaborate(c)
	if err != nil {
		return err
	}
	start := time.Now()
	res, err := pipe.Simulate(e)
	if err != nil {
		return err
	}
	if !res.Completed {
		return fmt.Errorf("cosim: hardware phase %s did not complete", funcName)
	}
	for name := range source.ArraySizes {
		copy(s.mems[name], res.Memories[name])
	}
	s.log = append(s.log, PhaseReport{
		Kind: "hardware", Name: funcName, Wall: time.Since(start), Cycles: res.TotalCycles,
	})
	return nil
}
