package xmlspec

import (
	"fmt"
	"strings"

	"repro/internal/operators"
)

// ValidationError aggregates every problem found in a document so the
// compiler author sees them all at once.
type ValidationError struct {
	Doc      string
	Problems []string
}

// Error joins the problems.
func (e *ValidationError) Error() string {
	return fmt.Sprintf("xmlspec: %s: %d problem(s):\n  %s",
		e.Doc, len(e.Problems), strings.Join(e.Problems, "\n  "))
}

type checker struct {
	doc      string
	problems []string
}

func (c *checker) addf(format string, args ...interface{}) {
	c.problems = append(c.problems, fmt.Sprintf(format, args...))
}

func (c *checker) err() error {
	if len(c.problems) == 0 {
		return nil
	}
	return &ValidationError{Doc: c.doc, Problems: c.problems}
}

// endpoint splits "inst.port"; the port part may itself not contain dots.
func endpoint(s string) (inst, port string, ok bool) {
	i := strings.LastIndex(s, ".")
	if i <= 0 || i == len(s)-1 {
		return "", "", false
	}
	return s[:i], s[i+1:], true
}

// ValidateDatapath checks structural sanity against the operator registry:
// known types, unique ids, endpoints referencing real instance ports with
// compatible directions, and single drivers per sink port.
func ValidateDatapath(d *Datapath, reg *operators.Registry) error {
	c := &checker{doc: "datapath " + d.Name}
	ports := map[string]map[string]operators.PortSpec{} // inst -> port -> spec
	for i := range d.Operators {
		op := &d.Operators[i]
		if op.ID == "" {
			c.addf("operator %d has no id", i)
			continue
		}
		if _, dup := ports[op.ID]; dup {
			c.addf("duplicate operator id %q", op.ID)
			continue
		}
		spec, ok := reg.Lookup(op.Type)
		if !ok {
			c.addf("operator %q has unknown type %q", op.ID, op.Type)
			continue
		}
		pm := map[string]operators.PortSpec{}
		for _, ps := range spec.Ports(paramsOf(op, d.Width)) {
			pm[ps.Name] = ps
		}
		ports[op.ID] = pm
	}

	driven := map[string]string{} // sink endpoint -> driver description
	sinkOK := func(ep, what string) {
		inst, port, ok := endpoint(ep)
		if !ok {
			c.addf("%s: malformed endpoint %q", what, ep)
			return
		}
		pm, ok := ports[inst]
		if !ok {
			c.addf("%s: unknown instance %q", what, inst)
			return
		}
		spec, ok := pm[port]
		if !ok {
			c.addf("%s: instance %q has no port %q", what, inst, port)
			return
		}
		if spec.Dir != operators.In {
			c.addf("%s: endpoint %q is not an input", what, ep)
			return
		}
		if prev, dup := driven[ep]; dup {
			c.addf("%s: endpoint %q already driven by %s", what, ep, prev)
			return
		}
		driven[ep] = what
	}
	srcOK := func(ep, what string) {
		inst, port, ok := endpoint(ep)
		if !ok {
			c.addf("%s: malformed endpoint %q", what, ep)
			return
		}
		pm, ok := ports[inst]
		if !ok {
			c.addf("%s: unknown instance %q", what, inst)
			return
		}
		spec, ok := pm[port]
		if !ok {
			c.addf("%s: instance %q has no port %q", what, inst, port)
			return
		}
		if spec.Dir != operators.Out {
			c.addf("%s: endpoint %q is not an output", what, ep)
		}
	}

	for _, cn := range d.Connections {
		srcOK(cn.From, "connect from="+cn.From)
		sinkOK(cn.To, "connect to="+cn.To)
	}
	ctlSeen := map[string]bool{}
	for _, ctl := range d.Controls {
		if ctlSeen[ctl.Name] {
			c.addf("duplicate control %q", ctl.Name)
		}
		ctlSeen[ctl.Name] = true
		if len(ctl.Targets) == 0 {
			c.addf("control %q has no targets", ctl.Name)
		}
		for _, to := range ctl.Targets {
			sinkOK(to.Port, "control "+ctl.Name)
		}
	}
	stSeen := map[string]bool{}
	for _, st := range d.Statuses {
		if stSeen[st.Name] {
			c.addf("duplicate status %q", st.Name)
		}
		stSeen[st.Name] = true
		srcOK(st.From, "status "+st.Name)
	}
	return c.err()
}

// paramsOf converts an operator element to elaboration parameters.
func paramsOf(op *Operator, defaultWidth int) operators.Params {
	w := op.Width
	if w <= 0 {
		w = defaultWidth
	}
	if w <= 0 {
		w = 32
	}
	return operators.Params{Width: w, Value: op.Value, Depth: op.Depth, Inputs: op.Inputs}
}

// ParamsOf exposes the operator→params conversion for elaboration.
func ParamsOf(op *Operator, defaultWidth int) operators.Params {
	return paramsOf(op, defaultWidth)
}

// ValidateFSM checks the control unit: exactly one initial state, unique
// state names, transitions to known states, assignments to declared
// outputs, no duplicate declarations, and at least one final state.
func ValidateFSM(f *FSM) error {
	c := &checker{doc: "fsm " + f.Name}
	states := map[string]bool{}
	initials, finals := 0, 0
	for _, s := range f.States {
		if states[s.Name] {
			c.addf("duplicate state %q", s.Name)
		}
		states[s.Name] = true
		if s.Initial {
			initials++
		}
		if s.Final {
			finals++
		}
	}
	if initials != 1 {
		c.addf("need exactly one initial state, have %d", initials)
	}
	if finals == 0 {
		c.addf("need at least one final state")
	}
	inputs := map[string]bool{}
	for _, in := range f.Inputs {
		if inputs[in.Name] {
			c.addf("duplicate input %q", in.Name)
		}
		inputs[in.Name] = true
	}
	outputs := map[string]bool{}
	for _, out := range f.Outputs {
		if outputs[out.Name] {
			c.addf("duplicate output %q", out.Name)
		}
		outputs[out.Name] = true
	}
	for _, s := range f.States {
		for _, a := range s.Assigns {
			if !outputs[a.Signal] {
				c.addf("state %q assigns undeclared output %q", s.Name, a.Signal)
			}
		}
		for i, tr := range s.Transitions {
			if !states[tr.Next] {
				c.addf("state %q transition to unknown state %q", s.Name, tr.Next)
			}
			if tr.Cond == "" && i != len(s.Transitions)-1 {
				c.addf("state %q has an unconditional transition that is not last", s.Name)
			}
		}
		if !s.Final && len(s.Transitions) == 0 {
			c.addf("non-final state %q has no transitions", s.Name)
		}
	}
	return c.err()
}

// ValidateRTG checks the reconfiguration graph: start node exists,
// transitions reference known configurations, configuration ids unique,
// shared memories unique with positive depth.
func ValidateRTG(r *RTG) error {
	c := &checker{doc: "rtg " + r.Name}
	cfgs := map[string]bool{}
	for _, cfg := range r.Configurations {
		if cfgs[cfg.ID] {
			c.addf("duplicate configuration %q", cfg.ID)
		}
		cfgs[cfg.ID] = true
		if cfg.Datapath == "" || cfg.FSM == "" {
			c.addf("configuration %q must reference a datapath and an fsm", cfg.ID)
		}
	}
	if len(r.Configurations) == 0 {
		c.addf("rtg has no configurations")
	}
	if !cfgs[r.Start] {
		c.addf("start configuration %q not defined", r.Start)
	}
	from := map[string]bool{}
	for _, t := range r.Transitions {
		if !cfgs[t.From] {
			c.addf("transition from unknown configuration %q", t.From)
		}
		if !cfgs[t.To] {
			c.addf("transition to unknown configuration %q", t.To)
		}
		if from[t.From] {
			c.addf("configuration %q has more than one outgoing transition", t.From)
		}
		from[t.From] = true
	}
	mems := map[string]bool{}
	for _, m := range r.Memories {
		if mems[m.ID] {
			c.addf("duplicate memory %q", m.ID)
		}
		mems[m.ID] = true
		if m.Depth <= 0 {
			c.addf("memory %q needs a positive depth", m.ID)
		}
	}
	return c.err()
}

// ValidateDesign validates the RTG, every referenced document, and the
// cross-references between them (configuration→datapath/fsm resolution,
// ram Ref→shared memory). Control/status name alignment is checked at
// elaboration time where the FSM is bound to a datapath.
func ValidateDesign(d *Design, reg *operators.Registry) error {
	c := &checker{doc: "design " + d.RTG.Name}
	if err := ValidateRTG(d.RTG); err != nil {
		c.addf("%v", err)
	}
	for _, cfg := range d.RTG.Configurations {
		dp, ok := d.Datapaths[cfg.Datapath]
		if !ok {
			c.addf("configuration %q references missing datapath %q", cfg.ID, cfg.Datapath)
			continue
		}
		fsm, ok := d.FSMs[cfg.FSM]
		if !ok {
			c.addf("configuration %q references missing fsm %q", cfg.ID, cfg.FSM)
			continue
		}
		if err := ValidateDatapath(dp, reg); err != nil {
			c.addf("%v", err)
		}
		if err := ValidateFSM(fsm); err != nil {
			c.addf("%v", err)
		}
		for i := range dp.Operators {
			op := &dp.Operators[i]
			if op.Ref != "" {
				if _, ok := d.RTG.FindMemory(op.Ref); !ok {
					c.addf("datapath %q: operator %q references unknown shared memory %q",
						dp.Name, op.ID, op.Ref)
				}
			}
		}
	}
	return c.err()
}
